(* kv_index: a concurrent KV index three ways — the paper's CRF skip
   list against the classic HS skip list it improves on, then the
   resizable split-ordered hash map serving skewed point lookups.

     dune exec examples/kv_index.exe

   Scenario from the paper's §5: a long-running service whose index sees
   continuous insert/delete churn while readers scan.  With HS-skip a
   single slow reader can pin an arbitrarily long chain of removed nodes
   (the authors measured 19 GB); CRF-skip isolates removed nodes, so the
   same slow reader pins O(1) memory.

   The split-ordered map is the point-lookup counterpart: zipfian
   YCSB-B traffic hammers a few hot keys while the long tail of inserts
   drives directory doublings, all observable live through the
   orcgc_map_* gauges the map registers with [Obs.Metrics.default]. *)

open Atomicx

module Hs = Ds.Orc_hs_skiplist.Make ()
module Crf = Ds.Orc_crf_skiplist.Make ()
module Smap = Ds.Orc_split_map.Make ()

let run_service name ~add ~remove ~contains ~live ~flush ~destroy =
  (* populate the index *)
  let n = 4_000 in
  let rng = Rng.create 7 in
  for _ = 1 to n do
    ignore (add (1 + Rng.int rng 100_000))
  done;

  (* mixed service traffic: 2 writers, 2 readers *)
  let stop = Atomic.make false in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let rng = Rng.create ((i + 1) * 39916801) in
                let ops = ref 0 in
                while not (Atomic.get stop) do
                  let k = 1 + Rng.int rng 100_000 in
                  if i < 2 then
                    if Rng.bool rng then ignore (add k) else ignore (remove k)
                  else ignore (contains k);
                  incr ops
                done;
                !ops)))
  in
  Thread.delay 0.3;
  Atomic.set stop true;
  let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  flush ();
  Printf.printf "  %-8s %7d ops, %6d objects live after churn\n" name total
    (live ());
  destroy ();
  flush ()

let () =
  print_endline "ordered index under mixed service traffic:";
  let hs = Hs.create () in
  run_service "hs-skip" ~add:(Hs.add hs) ~remove:(Hs.remove hs)
    ~contains:(Hs.contains hs)
    ~live:(fun () -> Memdom.Alloc.live (Hs.alloc hs))
    ~flush:(fun () -> Hs.flush hs)
    ~destroy:(fun () -> Hs.destroy hs);
  let crf = Crf.create () in
  run_service "crf-skip" ~add:(Crf.add crf) ~remove:(Crf.remove crf)
    ~contains:(Crf.contains crf)
    ~live:(fun () -> Memdom.Alloc.live (Crf.alloc crf))
    ~flush:(fun () -> Crf.flush crf)
    ~destroy:(fun () -> Crf.destroy crf);

  (* The same service over the resizable split-ordered map: point
     lookups instead of ordered scans, zipfian instead of uniform, and
     the map's registered gauges polled live mid-traffic. *)
  print_endline
    "\nsplit-ordered map under zipfian YCSB-B (95% read) traffic:";
  let sm = Smap.create () in
  let keyspace = 100_000 in
  let stop = Atomic.make false in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let kg =
                  Harness.Keygen.create
                    (Harness.Keygen.Zipfian
                       { theta = Harness.Keygen.default_theta })
                    ~n:keyspace
                    ~seed:((i + 1) * 39916801)
                in
                let coin = Rng.create ((i + 1) * 7919) in
                let ops = ref 0 in
                while not (Atomic.get stop) do
                  let k = 1 + Harness.Keygen.next kg in
                  (match Harness.Keygen.next_op kg Harness.Keygen.mix_b with
                  | Harness.Keygen.Read -> ignore (Smap.contains sm k)
                  | Harness.Keygen.Update ->
                      if Rng.bool coin then ignore (Smap.add sm k)
                      else ignore (Smap.remove sm k));
                  incr ops
                done;
                !ops)))
  in
  Thread.delay 0.3;
  Atomic.set stop true;
  let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  Smap.flush sm;
  Printf.printf "  %-10s %7d ops, %d directory doublings -> %d buckets\n"
    "split-orc" total (Smap.grows sm) (Smap.buckets sm);
  (* the gauges the map registered at create, as any scraper sees them;
     probes only land in the exported series at a sampler pass, so take
     one by hand — a live deployment's Obs.Sampler does this on a timer *)
  Obs.Metrics.sample Obs.Metrics.default ~tick:1;
  print_endline "  live orcgc_map_* gauges (prometheus exposition):";
  String.split_on_char '\n' (Obs.Metrics.to_prometheus Obs.Metrics.default)
  |> List.iter (fun line ->
         let has_sub sub =
           let n = String.length line and m = String.length sub in
           let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
           go 0
         in
         if has_sub "orcgc_map" && not (String.starts_with ~prefix:"#" line)
         then Printf.printf "    %s\n" line);
  Smap.destroy sm;
  Smap.flush sm;

  (* The stalled-reader scenario, deterministically (cf. bench "mem"). *)
  print_endline "\nstalled reader pinning the head of a removed chain:";
  let rows = Harness.Experiments.mem_footprint
      { Harness.Experiments.default with big_keys = 4_000; duration = 0.05 }
  in
  List.iter
    (fun m ->
      Printf.printf "  %-8s pinned-chain live=%-6d after-unpin=%d\n"
        m.Harness.Experiments.m_structure m.m_pinned_live m.m_pinned_after)
    rows
