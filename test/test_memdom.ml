(* Unit tests for the explicit-lifecycle heap: the substrate all
   reclamation guarantees are checked against. *)

open Util

let test_lifecycle () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  check_bool "starts live" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Live);
  Memdom.Hdr.check_access h;
  Memdom.Hdr.mark_retired h;
  check_bool "retired" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Retired);
  (* retired objects are still accessible (obstacle 2 of the paper) *)
  Memdom.Hdr.check_access h;
  Memdom.Alloc.free a h;
  check_bool "freed" true (Memdom.Hdr.is_freed h)

let test_use_after_free () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  Alcotest.check_raises "strict access after free"
    (Memdom.Hdr.Use_after_free "t#0") (fun () -> Memdom.Hdr.check_access h)

let test_pool_mode_tolerates_uaf () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  (* type-stable pool memory: reading freed objects is defined *)
  Memdom.Hdr.check_access h;
  check_bool "still freed" true (Memdom.Hdr.is_freed h)

let test_double_free () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  Alcotest.check_raises "double free" (Memdom.Hdr.Double_free "t#0") (fun () ->
      Memdom.Alloc.free a h)

let test_double_retire () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Hdr.mark_retired h;
  Alcotest.check_raises "double retire" (Memdom.Hdr.Double_retire "t#0")
    (fun () -> Memdom.Hdr.mark_retired h)

let test_unretire () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Hdr.mark_retired h;
  Memdom.Hdr.unretire h;
  check_bool "live again" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Live);
  (* unretire of an already-live header is a tolerated race *)
  Memdom.Hdr.unretire h;
  Memdom.Hdr.mark_retired h;
  check_bool "retire after unretire" true
    (Memdom.Hdr.lifecycle h = Memdom.Hdr.Retired)

let test_generation_bumps () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  let g0 = Memdom.Hdr.generation h in
  Memdom.Hdr.mark_retired h;
  Memdom.Hdr.unretire h;
  Memdom.Alloc.free a h;
  check_bool "generation grows" true (Memdom.Hdr.generation h > g0)

let test_counters () =
  let a = Memdom.Alloc.create "t" in
  let hs = List.init 10 (fun _ -> Memdom.Alloc.hdr a ()) in
  check_int "allocated" 10 (Memdom.Alloc.allocated a);
  check_int "live" 10 (Memdom.Alloc.live a);
  List.iteri (fun i h -> if i < 4 then Memdom.Alloc.free a h) hs;
  check_int "freed" 4 (Memdom.Alloc.freed a);
  check_int "live after free" 6 (Memdom.Alloc.live a)

let test_uids_unique_across_domains () =
  let a = Memdom.Alloc.create "t" in
  let per_domain = 1000 in
  let uid_lists =
    run_domains 4 (fun ~i:_ ~tid:_ ->
        List.init per_domain (fun _ -> (Memdom.Alloc.hdr a ()).Memdom.Hdr.uid))
  in
  let all = List.concat uid_lists in
  let sorted = List.sort_uniq compare all in
  check_int "no duplicate uids" (4 * per_domain) (List.length sorted);
  check_int "allocated counter" (4 * per_domain) (Memdom.Alloc.allocated a)

let test_era_clock () =
  let a = Memdom.Alloc.create "t" in
  let e0 = Memdom.Alloc.era a in
  let e1 = Memdom.Alloc.bump_era a in
  check_bool "bump advances" true (e1 = e0 + 1);
  let h = Memdom.Alloc.hdr a () in
  check_int "birth era snapshots clock" e1 (Memdom.Hdr.birth_era h)

let test_concurrent_free_single_winner () =
  (* Two domains racing to free the same header: exactly one wins, the
     other gets Double_free. *)
  for _ = 1 to 50 do
    let a = Memdom.Alloc.create "t" in
    let h = Memdom.Alloc.hdr a () in
    let outcomes =
      run_domains 2 (fun ~i:_ ~tid:_ ->
          match Memdom.Alloc.free a h with
          | () -> `Freed
          | exception Memdom.Hdr.Double_free _ -> `Lost)
    in
    let winners = List.filter (( = ) `Freed) outcomes in
    check_int "one winner" 1 (List.length winners)
  done

let test_stats_fake_clock () =
  (* [?clock] makes interval math deterministic: no sleeping, no
     wall-clock slop in the [diff] interval. *)
  let t = ref 10.0 in
  let clock () =
    let now = !t in
    t := now +. 2.5;
    now
  in
  let a = Memdom.Alloc.create "t" in
  let h1 = Memdom.Alloc.hdr a () in
  let s0 = Memdom.Stats.take ~clock a in
  let _h2 = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h1;
  let s1 = Memdom.Stats.take ~clock a in
  check_bool "fake clock stamps at" true (s0.Memdom.Stats.at = 10.0);
  check_bool "fake clock advances" true (s1.Memdom.Stats.at = 12.5);
  let d = Memdom.Stats.diff s0 s1 in
  check_int "allocated delta" 1 d.Memdom.Stats.allocated;
  check_int "freed delta" 1 d.Memdom.Stats.freed;
  check_int "live delta" 0 d.Memdom.Stats.live;
  check_bool "interval is exact" true (d.Memdom.Stats.at = 2.5)

(* ------------------------------------------------------------------ *)
(* Type-stable pool allocator.                                         *)

(* Every lifecycle CAS advances the generation word by exactly one —
   the whitebox property behind "a reader can detect any interleaved
   transition by comparing generations". *)
let test_gen_bumps_once_per_transition () =
  let h = Memdom.Hdr.make ~uid:1 ~label:"w" ~strict:false ~birth_era:1 in
  let step name g f =
    f ();
    check_int name (g + 1) (Memdom.Hdr.generation h);
    g + 1
  in
  let g = Memdom.Hdr.generation h in
  let g = step "retire bumps once" g (fun () -> Memdom.Hdr.mark_retired h) in
  let g = step "unretire bumps once" g (fun () -> Memdom.Hdr.unretire h) in
  let g = step "free bumps once" g (fun () -> Memdom.Hdr.mark_freed h) in
  let _ =
    step "recycle bumps once" g (fun () ->
        Memdom.Hdr.recycle h ~uid:2 ~birth_era:3)
  in
  check_bool "recycle revives" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Live);
  check_int "recycle restamps uid" 2 h.Memdom.Hdr.uid;
  check_int "recycle restamps birth era" 3 (Memdom.Hdr.birth_era h)

let test_recycle_live_raises () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let h = Memdom.Alloc.hdr a () in
  check_bool "recycling a live header is a double free" true
    (match Memdom.Hdr.recycle h ~uid:99 ~birth_era:1 with
    | () -> false
    | exception Memdom.Hdr.Double_free _ -> true);
  Memdom.Hdr.mark_retired h;
  check_bool "recycling a retired header is a double free" true
    (match Memdom.Hdr.recycle h ~uid:99 ~birth_era:1 with
    | () -> false
    | exception Memdom.Hdr.Double_free _ -> true)

(* The tentpole contract: the pool hands back the same physical header
   (no allocation), with a fresh uid and a strictly monotone generation
   across its whole pooled lifetime. *)
let test_pool_recycles_same_header () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let h0 = Memdom.Alloc.hdr a () in
  let gens = ref [ Memdom.Hdr.generation h0 ] in
  let uids = ref [ h0.Memdom.Hdr.uid ] in
  Memdom.Alloc.free a h0;
  for _ = 1 to 50 do
    let h = Memdom.Alloc.hdr a () in
    check_bool "physically the same header" true (h == h0);
    gens := Memdom.Hdr.generation h :: !gens;
    uids := h.Memdom.Hdr.uid :: !uids;
    Memdom.Alloc.free a h
  done;
  let strictly_decreasing l =
    (* gens were consed newest-first *)
    fst
      (List.fold_left
         (fun (ok, prev) g ->
           match prev with
           | None -> (ok, Some g)
           | Some p -> (ok && g < p, Some g))
         (true, None) l)
  in
  check_bool "generation strictly monotone across recycles" true
    (strictly_decreasing !gens);
  check_int "uids never repeat" 51 (List.length (List.sort_uniq compare !uids));
  check_int "one miss (the first build)" 1 (Memdom.Alloc.pool_misses a);
  check_int "fifty hits" 50 (Memdom.Alloc.pool_hits a);
  check_bool "hit rate" true (Memdom.Alloc.hit_rate a > 0.97);
  check_int "allocated counts recycled hand-outs" 51 (Memdom.Alloc.allocated a)

(* Remote free: a different domain returns the header, which lands on
   the allocating slot's transfer stack and comes back to the owner on
   its next (batched) refill. *)
let test_pool_remote_free () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let owner_tid = Atomicx.Registry.tid () in
  let h = Memdom.Alloc.hdr a () in
  (match
     run_domains 1 (fun ~i:_ ~tid ->
         check_bool "freeing from a different slot" true (tid <> owner_tid);
         Memdom.Alloc.free a h)
   with
  | [ () ] -> ()
  | _ -> assert false);
  check_int "routed through the transfer stack" 1 (Memdom.Alloc.remote_frees a);
  let h2 = Memdom.Alloc.hdr a () in
  check_bool "owner recycles the remotely freed header" true (h2 == h);
  check_int "one batched refill" 1 (Memdom.Alloc.refills a);
  check_int "counted as a hit" 1 (Memdom.Alloc.pool_hits a)

(* Domain death: the dying slot's free-list is published to the orphan
   pool by the quarantine cleaner, and a survivor's first dry acquire
   adopts it — no header is ever stranded. *)
let test_pool_orphan_adoption () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let n = 8 in
  let dead =
    run_domains 1 (fun ~i:_ ~tid:_ ->
        let hs = List.init n (fun _ -> Memdom.Alloc.hdr a ()) in
        (* local frees: they sit on this domain's own free-list when it
           dies *)
        List.iter (Memdom.Alloc.free a) hs;
        hs)
    |> List.concat
  in
  let adopted = List.init n (fun _ -> Memdom.Alloc.hdr a ()) in
  List.iter
    (fun h ->
      check_bool "adopted from the dead domain's free-list" true
        (List.memq h dead))
    adopted;
  check_int "all hits after adoption" n (Memdom.Alloc.pool_hits a);
  check_bool "gens still monotone: every adoptee is live again" true
    (List.for_all
       (fun h -> Memdom.Hdr.lifecycle h = Memdom.Hdr.Live)
       adopted)

let contains_substr hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pool_stats_and_pp () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  ignore (Memdom.Alloc.hdr a ());
  let s = Memdom.Stats.take a in
  check_int "snapshot hits" 1 s.Memdom.Stats.pool_hits;
  check_int "snapshot misses" 1 s.Memdom.Stats.pool_misses;
  check_bool "snapshot hit rate" true (Memdom.Stats.hit_rate s = 0.5);
  let printed = Format.asprintf "%a" Memdom.Alloc.pp_stats a in
  check_bool "pp_stats prints hit rate" true (contains_substr printed "hit-rate");
  (* System allocators stay pool-silent in both stats and pp *)
  let sys = Memdom.Alloc.create "s" in
  ignore (Memdom.Alloc.hdr sys ());
  check_int "system has no pool traffic" 0
    (Memdom.Stats.take sys).Memdom.Stats.pool_hits;
  let sys_printed = Format.asprintf "%a" Memdom.Alloc.pp_stats sys in
  check_bool "system pp omits pool section" true
    (not (contains_substr sys_printed "pool"))

let suite =
  [
    ( "memdom",
      [
        Alcotest.test_case "lifecycle transitions" `Quick test_lifecycle;
        Alcotest.test_case "use-after-free raises (System)" `Quick
          test_use_after_free;
        Alcotest.test_case "pool mode tolerates stale access" `Quick
          test_pool_mode_tolerates_uaf;
        Alcotest.test_case "double free raises" `Quick test_double_free;
        Alcotest.test_case "double retire raises" `Quick test_double_retire;
        Alcotest.test_case "unretire" `Quick test_unretire;
        Alcotest.test_case "generation bumps" `Quick test_generation_bumps;
        Alcotest.test_case "alloc counters" `Quick test_counters;
        Alcotest.test_case "uids unique across domains" `Quick
          test_uids_unique_across_domains;
        Alcotest.test_case "era clock" `Quick test_era_clock;
        Alcotest.test_case "concurrent double-free detected" `Quick
          test_concurrent_free_single_winner;
        Alcotest.test_case "stats snapshots with a fake clock" `Quick
          test_stats_fake_clock;
        Alcotest.test_case "generation bumps once per transition" `Quick
          test_gen_bumps_once_per_transition;
        Alcotest.test_case "recycling a non-freed header raises" `Quick
          test_recycle_live_raises;
        Alcotest.test_case "pool recycles the same physical header" `Quick
          test_pool_recycles_same_header;
        Alcotest.test_case "pool remote free via transfer stack" `Quick
          test_pool_remote_free;
        Alcotest.test_case "pool orphan adoption on domain death" `Quick
          test_pool_orphan_adoption;
        Alcotest.test_case "pool counters, stats and pp" `Quick
          test_pool_stats_and_pp;
      ] );
  ]
