(* Unit tests for the explicit-lifecycle heap: the substrate all
   reclamation guarantees are checked against. *)

open Util

let test_lifecycle () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  check_bool "starts live" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Live);
  Memdom.Hdr.check_access h;
  Memdom.Hdr.mark_retired h;
  check_bool "retired" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Retired);
  (* retired objects are still accessible (obstacle 2 of the paper) *)
  Memdom.Hdr.check_access h;
  Memdom.Alloc.free a h;
  check_bool "freed" true (Memdom.Hdr.is_freed h)

let test_use_after_free () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  Alcotest.check_raises "strict access after free"
    (Memdom.Hdr.Use_after_free "t#0") (fun () -> Memdom.Hdr.check_access h)

let test_pool_mode_tolerates_uaf () =
  let a = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool "p" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  (* type-stable pool memory: reading freed objects is defined *)
  Memdom.Hdr.check_access h;
  check_bool "still freed" true (Memdom.Hdr.is_freed h)

let test_double_free () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h;
  Alcotest.check_raises "double free" (Memdom.Hdr.Double_free "t#0") (fun () ->
      Memdom.Alloc.free a h)

let test_double_retire () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Hdr.mark_retired h;
  Alcotest.check_raises "double retire" (Memdom.Hdr.Double_retire "t#0")
    (fun () -> Memdom.Hdr.mark_retired h)

let test_unretire () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  Memdom.Hdr.mark_retired h;
  Memdom.Hdr.unretire h;
  check_bool "live again" true (Memdom.Hdr.lifecycle h = Memdom.Hdr.Live);
  (* unretire of an already-live header is a tolerated race *)
  Memdom.Hdr.unretire h;
  Memdom.Hdr.mark_retired h;
  check_bool "retire after unretire" true
    (Memdom.Hdr.lifecycle h = Memdom.Hdr.Retired)

let test_generation_bumps () =
  let a = Memdom.Alloc.create "t" in
  let h = Memdom.Alloc.hdr a () in
  let g0 = Memdom.Hdr.generation h in
  Memdom.Hdr.mark_retired h;
  Memdom.Hdr.unretire h;
  Memdom.Alloc.free a h;
  check_bool "generation grows" true (Memdom.Hdr.generation h > g0)

let test_counters () =
  let a = Memdom.Alloc.create "t" in
  let hs = List.init 10 (fun _ -> Memdom.Alloc.hdr a ()) in
  check_int "allocated" 10 (Memdom.Alloc.allocated a);
  check_int "live" 10 (Memdom.Alloc.live a);
  List.iteri (fun i h -> if i < 4 then Memdom.Alloc.free a h) hs;
  check_int "freed" 4 (Memdom.Alloc.freed a);
  check_int "live after free" 6 (Memdom.Alloc.live a)

let test_uids_unique_across_domains () =
  let a = Memdom.Alloc.create "t" in
  let per_domain = 1000 in
  let uid_lists =
    run_domains 4 (fun ~i:_ ~tid:_ ->
        List.init per_domain (fun _ -> (Memdom.Alloc.hdr a ()).Memdom.Hdr.uid))
  in
  let all = List.concat uid_lists in
  let sorted = List.sort_uniq compare all in
  check_int "no duplicate uids" (4 * per_domain) (List.length sorted);
  check_int "allocated counter" (4 * per_domain) (Memdom.Alloc.allocated a)

let test_era_clock () =
  let a = Memdom.Alloc.create "t" in
  let e0 = Memdom.Alloc.era a in
  let e1 = Memdom.Alloc.bump_era a in
  check_bool "bump advances" true (e1 = e0 + 1);
  let h = Memdom.Alloc.hdr a () in
  check_int "birth era snapshots clock" e1 h.Memdom.Hdr.birth_era

let test_concurrent_free_single_winner () =
  (* Two domains racing to free the same header: exactly one wins, the
     other gets Double_free. *)
  for _ = 1 to 50 do
    let a = Memdom.Alloc.create "t" in
    let h = Memdom.Alloc.hdr a () in
    let outcomes =
      run_domains 2 (fun ~i:_ ~tid:_ ->
          match Memdom.Alloc.free a h with
          | () -> `Freed
          | exception Memdom.Hdr.Double_free _ -> `Lost)
    in
    let winners = List.filter (( = ) `Freed) outcomes in
    check_int "one winner" 1 (List.length winners)
  done

let test_stats_fake_clock () =
  (* [?clock] makes interval math deterministic: no sleeping, no
     wall-clock slop in the [diff] interval. *)
  let t = ref 10.0 in
  let clock () =
    let now = !t in
    t := now +. 2.5;
    now
  in
  let a = Memdom.Alloc.create "t" in
  let h1 = Memdom.Alloc.hdr a () in
  let s0 = Memdom.Stats.take ~clock a in
  let _h2 = Memdom.Alloc.hdr a () in
  Memdom.Alloc.free a h1;
  let s1 = Memdom.Stats.take ~clock a in
  check_bool "fake clock stamps at" true (s0.Memdom.Stats.at = 10.0);
  check_bool "fake clock advances" true (s1.Memdom.Stats.at = 12.5);
  let d = Memdom.Stats.diff s0 s1 in
  check_int "allocated delta" 1 d.Memdom.Stats.allocated;
  check_int "freed delta" 1 d.Memdom.Stats.freed;
  check_int "live delta" 0 d.Memdom.Stats.live;
  check_bool "interval is exact" true (d.Memdom.Stats.at = 2.5)

let suite =
  [
    ( "memdom",
      [
        Alcotest.test_case "lifecycle transitions" `Quick test_lifecycle;
        Alcotest.test_case "use-after-free raises (System)" `Quick
          test_use_after_free;
        Alcotest.test_case "pool mode tolerates stale access" `Quick
          test_pool_mode_tolerates_uaf;
        Alcotest.test_case "double free raises" `Quick test_double_free;
        Alcotest.test_case "double retire raises" `Quick test_double_retire;
        Alcotest.test_case "unretire" `Quick test_unretire;
        Alcotest.test_case "generation bumps" `Quick test_generation_bumps;
        Alcotest.test_case "alloc counters" `Quick test_counters;
        Alcotest.test_case "uids unique across domains" `Quick
          test_uids_unique_across_domains;
        Alcotest.test_case "era clock" `Quick test_era_clock;
        Alcotest.test_case "concurrent double-free detected" `Quick
          test_concurrent_free_single_winner;
        Alcotest.test_case "stats snapshots with a fake clock" `Quick
          test_stats_fake_clock;
      ] );
  ]
