(* Adaptive reclamation controller: the Tuning knob surface and its
   per-scheme threshold plumbing, Channel/Reclaimer live retuning and
   edge cases, the Switchable mode machine's safety-relevant
   transitions, Controller hysteresis driven by deterministic manual
   ticks, and the end-to-end chaos battery (escalate under a stall,
   mid-switch domain kills, relax on calm, zero leaks). *)

open Util
open Atomicx

type tnode = { hdr : Memdom.Hdr.t; mutable v : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Hp = Reclaim.Hp.Make (TN)
module Ebr = Reclaim.Ebr.Make (TN)
module Sw = Reclaim.Switchable.Make (TN)

let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); v }

(* ------------------------------------------------------------------ *)
(* Tuning *)

let test_tuning_clamps () =
  let tn = Reclaim.Tuning.create () in
  check_int "default scale" Reclaim.Tuning.default_r_scale_pct
    (Reclaim.Tuning.scale_pct tn);
  check_int "default bg batch" Reclaim.Tuning.default_bg_batch
    (Reclaim.Tuning.bg_batch tn);
  Reclaim.Tuning.set_scale_pct tn 1;
  check_int "scale clamps low" Reclaim.Tuning.min_r_scale_pct
    (Reclaim.Tuning.scale_pct tn);
  Reclaim.Tuning.set_scale_pct tn 100_000;
  check_int "scale clamps high" Reclaim.Tuning.max_r_scale_pct
    (Reclaim.Tuning.scale_pct tn);
  Reclaim.Tuning.set_bg_batch tn 0;
  check_int "batch clamps low" Reclaim.Tuning.min_bg_batch
    (Reclaim.Tuning.bg_batch tn);
  Reclaim.Tuning.set_bg_batch tn 100_000;
  check_int "batch clamps high" Reclaim.Tuning.max_bg_batch
    (Reclaim.Tuning.bg_batch tn);
  let tn2 = Reclaim.Tuning.create ~r_scale_pct:50 ~r_floor:7 () in
  (* threshold = 2·hps·active · 50% with the floor honored *)
  Registry.reserve 1;
  let active = max 1 (Registry.active ()) in
  check_int "scaled threshold"
    (max 7 (2 * 4 * active * 50 / 100))
    (Reclaim.Tuning.threshold tn2 ~hps:4)

let test_scheme_threshold_scaling () =
  (* halving the scale must make a scheme scan at half the retires: with
     scale 25 the cached R refreshes to a quarter of the paper floor, so
     a retire burst that would sit below the default threshold triggers
     a scan and frees everything unprotected *)
  Registry.reserve 1;
  let tid = Registry.tid () in
  let alloc = Memdom.Alloc.create "tuning-scale" in
  let s = Hp.create ~max_hps:4 alloc in
  let tn = Hp.tuning s in
  Reclaim.Tuning.set_scale_pct tn 25;
  (* force the cached threshold through a refresh *)
  Hp.set_tuning s tn;
  let active = max 1 (Registry.active ()) in
  let r = max 2 (2 * 4 * active * 25 / 100) in
  for k = 1 to r + 1 do
    Hp.retire s ~tid (mk alloc k)
  done;
  check_bool "tightened threshold scanned early" true
    (Hp.unreclaimed s < r + 1);
  Hp.flush s;
  check_int "leak-free" 0 (Memdom.Alloc.live alloc)

let test_threshold_refreshes_on_quarantine () =
  (* the cached R derives from Registry.active (); a quarantine pass
     (domain death) must refresh it, not just a crossing.  Park a wide
     active population, prime the cache, let the helpers die, and check
     the very next crossing test uses the narrowed width. *)
  let alloc = Memdom.Alloc.create "tuning-quarantine" in
  let s = Ebr.create ~max_hps:4 alloc in
  Registry.reserve 1;
  let tid = Registry.tid () in
  (* prime the cache under a wide population *)
  run_domains_exn 8 (fun ~i:_ ~tid:wtid ->
      Ebr.begin_op s ~tid:wtid;
      Ebr.end_op s ~tid:wtid;
      (* one retire each primes the cached threshold at this width *)
      Ebr.retire s ~tid:wtid (mk alloc 0));
  (* helpers have released: the quarantine hooks must have re-derived
     the threshold at the narrow width, so a burst sized for the narrow
     R scans instead of pooling up to the stale wide R *)
  let narrow = Reclaim.Tuning.threshold (Ebr.tuning s) ~hps:4 in
  for k = 1 to narrow + 1 do
    Ebr.retire s ~tid (mk alloc k)
  done;
  check_bool "scan fired at the narrowed threshold" true
    (Ebr.pending s ~tid < narrow + 1);
  Ebr.flush s;
  Ebr.flush s;
  check_int "leak-free" 0 (Memdom.Alloc.live alloc)

(* ------------------------------------------------------------------ *)
(* Channel edge cases (satellite: capacity-1, resize-under-load, depth
   accuracy across kill/recover) *)

let test_channel_capacity_one () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  let ch = Reclaim.Channel.create ~bound:1 () in
  let noop ~tid:_ = () in
  check_bool "first object fits" true
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_bool "second refused at capacity 1" false
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_int "depth exact" 1 (Reclaim.Channel.depth ch);
  check_int "drain recovers the single object" 1
    (Reclaim.Channel.drain ch ~tid);
  check_bool "slot free again" true
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_int "final drain" 1 (Reclaim.Channel.drain ch ~tid)

let test_channel_set_bound_under_load () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  let ch = Reclaim.Channel.create ~bound:64 () in
  let noop ~tid:_ = () in
  check_bool "fills under the wide bound" true
    (Reclaim.Channel.send ch ~tid ~count:60 noop);
  (* shrink below the standing depth: no objects are dropped, sends
     refuse until the drain catches up *)
  Reclaim.Channel.set_bound ch 16;
  check_int "shrink drops nothing" 60 (Reclaim.Channel.depth ch);
  check_bool "over-bound send refuses" false
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_int "backlog drains fully" 60 (Reclaim.Channel.drain ch ~tid);
  check_bool "small sends flow under the new bound" true
    (Reclaim.Channel.send ch ~tid ~count:16 noop);
  check_bool "new bound enforced" false
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  (* grow it back: immediately usable *)
  Reclaim.Channel.set_bound ch 64;
  check_bool "regrown bound accepts" true
    (Reclaim.Channel.send ch ~tid ~count:40 noop);
  check_int "depth exact across resizes" 56 (Reclaim.Channel.depth ch);
  ignore (Reclaim.Channel.drain ch ~tid);
  check_bool "set_bound rejects < 1" true
    (match Reclaim.Channel.set_bound ch 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_channel_depth_after_kill_recover () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  let ch = Reclaim.Channel.create ~bound:1024 () in
  let reclaimer = Reclaim.Reclaimer.start ~interval:0.5 ch in
  (* the reclaimer sleeps its first long interval: land a backlog, kill
     it, and the depth gauge must still equal exactly what recover
     replays *)
  let landed = ref 0 in
  for k = 1 to 5 do
    if Reclaim.Channel.send ch ~tid ~count:k (fun ~tid:_ -> ()) then
      landed := !landed + k
  done;
  Reclaim.Reclaimer.kill reclaimer;
  check_bool "reclaimer dead" false (Reclaim.Reclaimer.alive reclaimer);
  let backlog = Reclaim.Channel.depth ch in
  let recovered = Reclaim.Reclaimer.recover reclaimer ~tid in
  check_int "recover replays the full depth" backlog recovered;
  check_int "depth zero after recover" 0 (Reclaim.Channel.depth ch);
  check_int "drained accounts every landed object" !landed
    (Reclaim.Channel.drained ch)

let test_reclaimer_set_interval () =
  let ch = Reclaim.Channel.create () in
  let reclaimer = Reclaim.Reclaimer.start ~interval:0.001 ch in
  check_bool "interval readable" true
    (abs_float (Reclaim.Reclaimer.interval reclaimer -. 0.001) < 1e-9);
  Reclaim.Reclaimer.set_interval reclaimer 0.0005;
  check_bool "interval retuned" true
    (abs_float (Reclaim.Reclaimer.interval reclaimer -. 0.0005) < 1e-9);
  Reclaim.Reclaimer.stop reclaimer

(* ------------------------------------------------------------------ *)
(* Switchable *)

let test_switchable_mode_machine () =
  Registry.reserve 1;
  let alloc = Memdom.Alloc.create "switchable-modes" in
  let s = Sw.create ~max_hps:4 alloc in
  check_int "starts fast" Reclaim.Switchable.fast (Sw.mode s);
  check_bool "relax from fast is a no-op" false (Sw.relax s);
  check_bool "escalate from fast" true (Sw.escalate s);
  check_int "escalating" Reclaim.Switchable.escalating (Sw.mode s);
  check_bool "double escalate refused" false (Sw.escalate s);
  (* no reader is active: the grace period completes immediately *)
  check_bool "grace period completes when quiescent" true
    (Sw.try_complete s);
  check_int "robust" Reclaim.Switchable.robust (Sw.mode s);
  check_int "escalation counted" 1 (Sw.escalations s);
  check_bool "relax returns to fast" true (Sw.relax s);
  check_int "fast again" Reclaim.Switchable.fast (Sw.mode s);
  check_int "relaxation counted" 1 (Sw.relaxations s)

let test_switchable_grace_blocks_on_reader () =
  (* an op that began in Fast (epoch-only protection) must hold the
     grace period open until it finishes — promoting early would let HP
     frees ignore it *)
  Registry.reserve 2;
  let alloc = Memdom.Alloc.create "switchable-grace" in
  let s = Sw.create ~max_hps:4 alloc in
  let in_guard = Atomic.make false and release = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        Registry.with_tid (fun tid ->
            Sw.begin_op s ~tid;
            Atomic.set in_guard true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            Sw.end_op s ~tid))
  in
  while not (Atomic.get in_guard) do
    Domain.cpu_relax ()
  done;
  check_bool "escalate with reader parked" true (Sw.escalate s);
  check_bool "grace period parked behind the fast reader" false
    (Sw.try_complete s);
  check_int "still escalating" Reclaim.Switchable.escalating (Sw.mode s);
  Atomic.set release true;
  Domain.join reader;
  check_bool "grace period completes once the reader left" true
    (Sw.try_complete s);
  check_int "robust after grace" Reclaim.Switchable.robust (Sw.mode s)

let test_switchable_retires_leak_free_across_switch () =
  (* retire through every mode, including the residue drains both ways,
     and end with nothing live *)
  Registry.reserve 1;
  let tid = Registry.tid () in
  let alloc = Memdom.Alloc.create "switchable-churn" in
  let s = Sw.create ~max_hps:4 alloc in
  let burst n =
    for k = 1 to n do
      Sw.begin_op s ~tid;
      Sw.end_op s ~tid;
      Sw.retire s ~tid (mk alloc k)
    done
  in
  burst 100;
  check_bool "escalate" true (Sw.escalate s);
  burst 100;
  check_bool "complete" true (Sw.try_complete s);
  burst 100;
  (* robust → fast with HP residue parked: fast retires must still
     drain it via the gated hazard scans *)
  check_bool "relax" true (Sw.relax s);
  burst 400;
  Sw.flush s;
  check_int "unreclaimed zero after flush" 0 (Sw.unreclaimed s);
  check_int "leak-free across both switches" 0 (Memdom.Alloc.live alloc)

(* ------------------------------------------------------------------ *)
(* Controller (manual ticks — fully deterministic) *)

let test_controller_hysteresis () =
  Registry.reserve 1;
  let tn = Reclaim.Tuning.create () in
  let unreclaimed = ref 0 and stall = ref 0 in
  let mode = ref Reclaim.Switchable.fast in
  let escalated = ref 0 and relaxed = ref 0 in
  let cfg =
    {
      Reclaim.Controller.unreclaimed_hi = 1000;
      unreclaimed_lo = 100;
      stall_age_hi = 3;
      calm_ticks = 4;
    }
  in
  let ctrl =
    Reclaim.Controller.create ~cfg ~registry:(Obs.Metrics.create ())
      [
        Reclaim.Controller.target ~label:"t"
          ~mode:(fun () -> !mode)
          ~escalate:(fun () ->
            incr escalated;
            mode := Reclaim.Switchable.escalating;
            true)
          ~try_complete:(fun () ->
            mode := Reclaim.Switchable.robust;
            true)
          ~relax:(fun () ->
            incr relaxed;
            mode := Reclaim.Switchable.fast;
            true)
          ~tuning:tn
          ~unreclaimed:(fun () -> !unreclaimed)
          ~stall_age:(fun () -> !stall)
          ();
      ]
  in
  (* calm steady state: no decisions, scale untouched *)
  unreclaimed := 500 (* between lo and hi: neither calm nor pressured *);
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  check_int "no decisions in the dead band" 0
    (Reclaim.Controller.decisions ctrl);
  (* pressure: multiplicative tighten + the escalation ladder *)
  unreclaimed := 5000;
  Reclaim.Controller.tick ctrl;
  check_int "tighten halved the scale" 50 (Reclaim.Tuning.scale_pct tn);
  check_int "escalated on first pressured tick" 1 !escalated;
  Reclaim.Controller.tick ctrl;
  check_int "second tick completes the grace period"
    Reclaim.Switchable.robust !mode;
  check_int "tighten saturates at the clamp floor" 25
    (Reclaim.Tuning.scale_pct tn);
  (* calm must be sustained: three quiet ticks change nothing *)
  unreclaimed := 10;
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  check_int "hysteresis holds through calm_ticks - 1" 0 !relaxed;
  check_int "mode still robust" Reclaim.Switchable.robust !mode;
  (* the fourth consecutive calm tick widens and relaxes *)
  Reclaim.Controller.tick ctrl;
  check_int "relaxed after sustained calm" 1 !relaxed;
  check_int "additive widen" 50 (Reclaim.Tuning.scale_pct tn);
  (* a pressure blip resets the calm streak *)
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  unreclaimed := 5000;
  Reclaim.Controller.tick ctrl (* blip: tighten + escalate again *);
  unreclaimed := 10;
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  Reclaim.Controller.tick ctrl;
  check_int "streak restarted by the blip" 1 !relaxed;
  Reclaim.Controller.tick ctrl;
  check_int "relaxes only after a fresh full streak" 2 !relaxed

let test_controller_stall_signal () =
  Registry.reserve 1;
  let tn = Reclaim.Tuning.create () in
  let stall = ref 0 in
  let cfg =
    {
      Reclaim.Controller.unreclaimed_hi = max_int;
      unreclaimed_lo = 0;
      stall_age_hi = 3;
      calm_ticks = 1;
    }
  in
  let ctrl =
    Reclaim.Controller.create ~cfg ~registry:(Obs.Metrics.create ())
      [
        Reclaim.Controller.target ~tuning:tn
          ~unreclaimed:(fun () -> 0)
          ~stall_age:(fun () -> !stall)
          ();
      ]
  in
  stall := 2;
  Reclaim.Controller.tick ctrl;
  check_int "below the age bound: untouched" 100
    (Reclaim.Tuning.scale_pct tn);
  stall := 3;
  Reclaim.Controller.tick ctrl;
  check_int "stall age alone tightens" 50 (Reclaim.Tuning.scale_pct tn)

(* ------------------------------------------------------------------ *)
(* End to end *)

let test_adaptive_battery () =
  let r = Chaos.run_adaptive ~interval:0.001 () in
  if not (Chaos.adaptive_ok r) then
    Alcotest.failf "adaptive battery: %a" Chaos.pp_adaptive_report r;
  check_bool "mid-switch kills exercised" true (r.Chaos.ad_kills > 0);
  check_bool "controller took decisions" true (r.Chaos.ad_decisions > 0)

let suite =
  [
    ( "adaptive",
      [
        Alcotest.test_case "tuning: defaults and clamps" `Quick
          test_tuning_clamps;
        Alcotest.test_case "tuning: scale tightens a scheme's threshold"
          `Quick test_scheme_threshold_scaling;
        Alcotest.test_case "tuning: threshold refreshes on quarantine"
          `Quick test_threshold_refreshes_on_quarantine;
        Alcotest.test_case "channel: capacity one" `Quick
          test_channel_capacity_one;
        Alcotest.test_case "channel: set_bound under load" `Quick
          test_channel_set_bound_under_load;
        Alcotest.test_case "channel: depth accuracy across kill/recover"
          `Quick test_channel_depth_after_kill_recover;
        Alcotest.test_case "reclaimer: live interval retune" `Quick
          test_reclaimer_set_interval;
        Alcotest.test_case "switchable: mode machine" `Quick
          test_switchable_mode_machine;
        Alcotest.test_case "switchable: grace period blocks on a reader"
          `Quick test_switchable_grace_blocks_on_reader;
        Alcotest.test_case "switchable: leak-free across switches" `Quick
          test_switchable_retires_leak_free_across_switch;
        Alcotest.test_case "controller: AIMD + hysteresis" `Quick
          test_controller_hysteresis;
        Alcotest.test_case "controller: stall-age signal" `Quick
          test_controller_stall_signal;
        Alcotest.test_case "battery: escalate under stall, relax on calm"
          `Slow test_adaptive_battery;
      ] );
  ]
