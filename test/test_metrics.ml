(* Live metrics plane tests: registry semantics (dedup, weak probes,
   aggregation, ring retention), gauge high-water marks, Prometheus and
   JSON exposition, watchdog stamp/validate/clear lifecycle, the
   sampler domain end to end, and the chaos stall-injection battery. *)

open Util
open Atomicx

let find_serie reg name =
  List.find_opt
    (fun (s : Obs.Metrics.series) -> s.Obs.Metrics.name = name)
    (Obs.Metrics.series reg)

let get_serie reg name =
  match find_serie reg name with
  | Some s -> s
  | None -> Alcotest.failf "series %s missing" name

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_counter_gauge_sample () =
  (* Shard.get sums the registered slots, so the explicit ~tid writes
     below need the high-water mark raised over them *)
  Registry.reserve 2;
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "reqs_total" in
  let g = Obs.Metrics.gauge reg "depth" in
  Shard.add c ~tid:0 5;
  Shard.incr c ~tid:1;
  Obs.Metrics.set g 42;
  Obs.Metrics.sample reg ~tick:1;
  let sc = get_serie reg "reqs_total" in
  check_int "counter sum across shards" 6 sc.Obs.Metrics.last;
  check_bool "counter kind" true sc.Obs.Metrics.is_counter;
  let sg = get_serie reg "depth" in
  check_int "gauge value" 42 sg.Obs.Metrics.last;
  check_bool "gauge kind" false sg.Obs.Metrics.is_counter;
  (* dedup: same identity hands back the same underlying source *)
  let c' = Obs.Metrics.counter reg "reqs_total" in
  Shard.incr c' ~tid:0;
  Obs.Metrics.sample reg ~tick:2;
  check_int "second handle fed the same series" 7
    (get_serie reg "reqs_total").Obs.Metrics.last

let test_gauge_hwm_survives_sampling_gap () =
  let reg = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge reg "spiky" in
  (* the spike happens entirely between two samples: the set-time CAS-max
     must surface it in the series hwm anyway *)
  Obs.Metrics.set g 1_000;
  Obs.Metrics.set g 3;
  Obs.Metrics.sample reg ~tick:1;
  let s = get_serie reg "spiky" in
  check_int "last is the settled value" 3 s.Obs.Metrics.last;
  check_int "hwm caught the spike" 1_000 s.Obs.Metrics.hwm

let test_probe_aggregation_and_weakness () =
  let reg = Obs.Metrics.create () in
  let a = ref 10 and b = ref 32 in
  let fb () = !b in
  (* the transient probe's closure never escapes this scope, so after
     the call returns only the registry's weak cell points at it *)
  let register_transient () =
    let fa () = !a in
    Obs.Metrics.probe reg "live" fa
  in
  register_transient ();
  Obs.Metrics.probe reg "live" fb;
  Obs.Metrics.sample reg ~tick:1;
  check_int "two sources summed" 42 (get_serie reg "live").Obs.Metrics.last;
  Gc.full_major ();
  Gc.full_major ();
  Obs.Metrics.sample reg ~tick:2;
  let s = get_serie reg "live" in
  check_int "collected probe dropped from the sum" 32 s.Obs.Metrics.last;
  ignore (Sys.opaque_identity (fb ()))

let test_ring_retention () =
  let reg = Obs.Metrics.create ~history:4 () in
  let g = Obs.Metrics.gauge reg "r" in
  for t = 1 to 10 do
    Obs.Metrics.set g (100 + t);
    Obs.Metrics.sample reg ~tick:t
  done;
  let s = get_serie reg "r" in
  check_int "ring keeps history points" 4 (Array.length s.Obs.Metrics.points);
  Array.iteri
    (fun i (tick, v) ->
      check_int "oldest-first ticks" (7 + i) tick;
      check_int "values follow ticks" (107 + i) v)
    s.Obs.Metrics.points;
  check_int "hwm spans evicted points" 110 s.Obs.Metrics.hwm

let test_exposition () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg ~labels:[ ("scheme", "hp") ] "ops_total" in
  Shard.add c ~tid:0 9;
  Obs.Metrics.sample reg ~tick:1;
  let prom = Obs.Metrics.to_prometheus reg in
  let contains needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "TYPE line" true (contains "# TYPE ops_total counter");
  check_bool "sample line" true (contains "ops_total{scheme=\"hp\"} 9");
  check_bool "hwm companion" true (contains "ops_total_hwm{scheme=\"hp\"} 9");
  match Obs.Metrics.to_json reg with
  | Obs.Json.List (_ :: _) -> ()
  | _ -> Alcotest.fail "to_json should be a non-empty list"

(* ------------------------------------------------------------------ *)
(* Watchdog *)

let test_watchdog_lifecycle () =
  let wd = Obs.Watchdog.create () in
  (* row validation needs an Active slot with a stable generation *)
  Registry.with_tid @@ fun tid ->
  let base = Obs.Watchdog.advance () in
  Obs.Watchdog.enter wd ~tid;
  (* age the guard past the threshold *)
  ignore (Obs.Watchdog.advance ());
  ignore (Obs.Watchdog.advance ());
  ignore (Obs.Watchdog.advance ());
  let flagged = Obs.Watchdog.check ~max_age:3 () in
  check_bool "stalled guard flagged" true (List.mem_assoc tid flagged);
  check_bool "age counts ticks since enter" true
    (List.assoc tid flagged >= 3);
  check_bool "per-table max sees it" true
    (Obs.Watchdog.stall_age_max wd >= 3);
  (* nesting: an inner enter/leave must not clear the outer stamp *)
  Obs.Watchdog.enter wd ~tid;
  Obs.Watchdog.leave wd ~tid;
  check_bool "still flagged while outer guard open" true
    (List.mem_assoc tid (Obs.Watchdog.check ~max_age:3 ()));
  Obs.Watchdog.leave wd ~tid;
  check_bool "cleared on outermost leave" false
    (List.mem_assoc tid (Obs.Watchdog.check ~max_age:1 ()));
  ignore base

let test_watchdog_quarantine_clears () =
  let wd = Obs.Watchdog.create () in
  ignore (Obs.Watchdog.advance ());
  let stalled_tid = ref (-1) in
  (* the domain dies inside the guard; its slot quarantine must clear
     the row rather than leaving a forever-stall *)
  run_domains_exn 1 (fun ~i:_ ~tid ->
      stalled_tid := tid;
      Obs.Watchdog.enter wd ~tid);
  ignore (Obs.Watchdog.advance ());
  ignore (Obs.Watchdog.advance ());
  ignore (Obs.Watchdog.advance ());
  ignore (Obs.Watchdog.advance ());
  check_bool "quarantined slot not flagged" false
    (List.mem_assoc !stalled_tid (Obs.Watchdog.check ~max_age:3 ()));
  ignore (Sys.opaque_identity wd)

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler_end_to_end () =
  let reg = Obs.Metrics.create () in
  let sampler = Obs.Sampler.start ~interval:0.002 ~registry:reg () in
  let deadline = Unix.gettimeofday () +. 5. in
  while Obs.Sampler.ticks sampler < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Obs.Sampler.stop sampler;
  check_bool "sampler ticked" true (Obs.Sampler.ticks sampler >= 3);
  check_bool "built-in registry gauge sampled" true
    (find_serie reg "orcgc_registry_active" <> None);
  check_bool "stall counter registered" true
    (find_serie reg "orcgc_stalls_total" <> None);
  let ticks_after = Obs.Sampler.ticks sampler in
  Unix.sleepf 0.02;
  check_int "no ticks after stop" ticks_after (Obs.Sampler.ticks sampler)

(* ------------------------------------------------------------------ *)
(* Stall injection battery *)

let test_stall_battery () =
  let r = Chaos.run_stall () in
  if not (Chaos.stall_ok r) then
    Alcotest.failf "stall battery failed: %s"
      (Format.asprintf "%a" Chaos.pp_stall_report r);
  check_bool "at least one validated stall report" true (r.Chaos.st_stalls >= 1);
  check_bool "age reached the threshold" true (r.Chaos.st_age_max >= 3)

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "counter/gauge sample" `Quick
          test_counter_gauge_sample;
        Alcotest.test_case "gauge hwm survives sampling gap" `Quick
          test_gauge_hwm_survives_sampling_gap;
        Alcotest.test_case "probe aggregation and weakness" `Quick
          test_probe_aggregation_and_weakness;
        Alcotest.test_case "ring retention" `Quick test_ring_retention;
        Alcotest.test_case "prometheus/json exposition" `Quick
          test_exposition;
        Alcotest.test_case "watchdog lifecycle" `Quick test_watchdog_lifecycle;
        Alcotest.test_case "watchdog quarantine clears" `Quick
          test_watchdog_quarantine_clears;
        Alcotest.test_case "sampler end to end" `Quick
          test_sampler_end_to_end;
        Alcotest.test_case "stall injection battery" `Quick
          test_stall_battery;
      ] );
  ]
