(* Scan-overhaul tests: the [Reclaim.Scan_set] scratch structure, the
   snapshot-scan rewiring of the batching schemes (one slot visit per
   scan, not one per retired node), read-side publication elision, and
   the ablation refs that restore the legacy paths. *)

open Util
open Atomicx
module Scan_set = Reclaim.Scan_set

type tnode = { hdr : Memdom.Hdr.t; mutable value : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Hp = Reclaim.Hp.Make (TN)
module Ptb = Reclaim.Ptb.Make (TN)
module He = Reclaim.He.Make (TN)
module Ibr = Reclaim.Ibr.Make (TN)
module Ptp = Orc_core.Ptp.Make (TN)

let read_value n =
  Memdom.Hdr.check_access n.hdr;
  n.value

let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); value = v }

(* Pin both ablation refs for the duration of [f]. *)
let with_knobs ~snapshot ~elide f =
  let s = !Scan_set.snapshot_scan and e = !Scan_set.elide_publish in
  Fun.protect ~finally:(fun () ->
      Scan_set.snapshot_scan := s;
      Scan_set.elide_publish := e)
  @@ fun () ->
  Scan_set.snapshot_scan := snapshot;
  Scan_set.elide_publish := elide;
  f ()

(* ------------------------------------------------------------------ *)
(* Scan_set as a data structure *)

let test_scan_set_points () =
  let s = Scan_set.create () in
  (* enough keys to force growth past the initial capacity, inserted
     unsorted and with duplicates *)
  for i = 199 downto 0 do
    Scan_set.add s ((i * 37) mod 100)
  done;
  Scan_set.seal s;
  for k = 0 to 99 do
    check_bool (Printf.sprintf "mem %d" k) true (Scan_set.mem s k)
  done;
  check_bool "absent above" false (Scan_set.mem s 100);
  check_bool "absent below" false (Scan_set.mem s (-1));
  Scan_set.reset s;
  Scan_set.seal s;
  check_bool "empty after reset" false (Scan_set.mem s 0);
  check_int "size after reset" 0 (Scan_set.size s)

let test_scan_set_find () =
  let s = Scan_set.create () in
  Scan_set.add_kv s ~key:42 ~value:7;
  Scan_set.add_kv s ~key:17 ~value:3;
  Scan_set.seal s;
  check_int "payload for 42" 7 (Scan_set.find s 42);
  check_int "payload for 17" 3 (Scan_set.find s 17);
  check_int "missing key" (-1) (Scan_set.find s 99)

let test_scan_set_ranges () =
  let s = Scan_set.create () in
  List.iter (fun e -> Scan_set.add s e) [ 10; 20; 30 ];
  Scan_set.seal s;
  (* a point inside [lo, hi] <=> protected under HE semantics *)
  check_bool "era inside" true (Scan_set.mem_range s ~lo:15 ~hi:25);
  check_bool "era at edge" true (Scan_set.mem_range s ~lo:30 ~hi:40);
  check_bool "gap" false (Scan_set.mem_range s ~lo:21 ~hi:29);
  check_bool "below all" false (Scan_set.mem_range s ~lo:0 ~hi:9);
  check_bool "above all" false (Scan_set.mem_range s ~lo:31 ~hi:1000)

let test_scan_set_intervals () =
  let s = Scan_set.create () in
  (* unsorted, with a long interval shadowing a later lower bound —
     the running-max seal must still see it *)
  Scan_set.add_interval s ~lo:50 ~hi:60;
  Scan_set.add_interval s ~lo:10 ~hi:45;
  Scan_set.add_interval s ~lo:20 ~hi:25;
  Scan_set.seal_intervals s;
  check_bool "overlap inside long interval" true
    (Scan_set.overlaps s ~lo:40 ~hi:42);
  check_bool "overlap across the gap" false (Scan_set.overlaps s ~lo:46 ~hi:49);
  check_bool "overlap second cluster" true (Scan_set.overlaps s ~lo:58 ~hi:99);
  check_bool "below all" false (Scan_set.overlaps s ~lo:0 ~hi:9);
  check_bool "touching lower bound" true (Scan_set.overlaps s ~lo:0 ~hi:10)

(* ------------------------------------------------------------------ *)
(* Snapshot scans: each batching scan builds exactly one snapshot and
   visits each published slot once — scan_slots is bounded by
   scans x (rows x slots-per-row), not by retired x rows x slots. *)

module Snapshot_scan (S : Reclaim.Scheme_intf.S with type node = tnode) =
struct
  (* [pin] stages a protection for [tid] covering [n]; [unpin] drops
     it.  Pointer schemes publish the pointer; IBR pins the thread's
     reservation interval (its protect_raw is a no-op). *)
  let test ~slots_per_row ~pin ~unpin () =
    Registry.reserve 8;
    with_knobs ~snapshot:true ~elide:true @@ fun () ->
    let alloc = Memdom.Alloc.create (S.name ^ "-snap") in
    let s = S.create ~max_hps:4 alloc in
    let pinned = mk alloc 1 in
    pin s ~tid:5 pinned;
    S.retire s ~tid:0 pinned;
    let retires = 200 in
    for i = 1 to retires do
      S.retire s ~tid:0 (mk alloc i)
    done;
    let st = (S.stats s : Reclaim.Scheme_intf.stats) in
    check_bool "scans happened" true (st.scans > 0);
    check_int "one snapshot per scan" st.scans st.snapshot_builds;
    check_bool "pinned node found in snapshots" true (st.snapshot_hits > 0);
    (* the linear-scan invariant: every slot visit belongs to a
       snapshot build, so the total is one row-walk per scan.  The
       legacy walk re-traverses the table per retired node and would
       sit far above this. *)
    let per_scan = Registry.registered () * slots_per_row s in
    check_bool
      (Printf.sprintf "scan_slots %d within %d scans x %d slots"
         st.scan_slots st.scans per_scan)
      true
      (st.scan_slots <= st.scans * per_scan);
    check_bool "pinned survived the churn" false
      (Memdom.Hdr.is_freed pinned.hdr);
    unpin s ~tid:5;
    S.flush s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s)
end

module Snap_hp = Snapshot_scan (Hp)
module Snap_ptb = Snapshot_scan (Ptb)
module Snap_he = Snapshot_scan (He)
module Snap_ibr = Snapshot_scan (Ibr)

let pin_ptr (type a) (module S : Reclaim.Scheme_intf.S
                       with type node = tnode
                        and type t = a) (s : a) ~tid n =
  S.protect_raw s ~tid ~idx:0 (Some n)

let unpin_all (type a) (module S : Reclaim.Scheme_intf.S
                         with type node = tnode
                          and type t = a) (s : a) ~tid =
  S.end_op s ~tid

let test_snapshot_hp =
  Snap_hp.test
    ~slots_per_row:(fun s -> Hp.max_hps s)
    ~pin:(pin_ptr (module Hp))
    ~unpin:(unpin_all (module Hp))

let test_snapshot_ptb =
  Snap_ptb.test
    ~slots_per_row:(fun s -> Ptb.max_hps s)
    ~pin:(pin_ptr (module Ptb))
    ~unpin:(unpin_all (module Ptb))

let test_snapshot_he =
  Snap_he.test
    ~slots_per_row:(fun s -> He.max_hps s)
    ~pin:(pin_ptr (module He))
    ~unpin:(unpin_all (module He))

(* IBR reserves one interval per row, so a snapshot visits one slot per
   row; pinning goes through [begin_op] (protect_raw is a no-op). *)
let test_snapshot_ibr =
  Snap_ibr.test
    ~slots_per_row:(fun _ -> 1)
    ~pin:(fun s ~tid _n -> Ibr.begin_op s ~tid)
    ~unpin:(unpin_all (module Ibr))

(* The snapshot path must also reclaim strictly cheaper than the legacy
   walk on the same workload — the tentpole's point, checked on HP. *)
let test_snapshot_cheaper_than_legacy () =
  Registry.reserve 8;
  let run ~snapshot =
    with_knobs ~snapshot ~elide:false @@ fun () ->
    let alloc = Memdom.Alloc.create "hp-ab" in
    let s = Hp.create ~max_hps:4 alloc in
    for i = 1 to 200 do
      Hp.retire s ~tid:0 (mk alloc i)
    done;
    Hp.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live alloc);
    (Hp.stats s : Reclaim.Scheme_intf.stats)
  in
  let legacy = run ~snapshot:false and snap = run ~snapshot:true in
  check_int "same workload" legacy.retires snap.retires;
  check_bool
    (Printf.sprintf "snapshot visits fewer slots (%d < %d)" snap.scan_slots
       legacy.scan_slots)
    true
    (snap.scan_slots < legacy.scan_slots)

(* ------------------------------------------------------------------ *)
(* Publication elision *)

(* Deterministic single-thread elision: the second protected read of an
   unchanged link skips the publish, and a moved link still
   re-publishes the new target. *)
let test_elision_hp () =
  with_knobs ~snapshot:true ~elide:true @@ fun () ->
  let alloc = Memdom.Alloc.create "hp-elide" in
  let s = Hp.create ~max_hps:4 alloc in
  let tid = Registry.tid () in
  Hp.begin_op s ~tid;
  let a = mk alloc 1 and b = mk alloc 2 in
  let link = Link.make (Link.Ptr a) in
  ignore (Hp.get_protected s ~tid ~idx:0 link);
  check_int "first read publishes" 0 (Hp.stats s).elided;
  ignore (Hp.get_protected s ~tid ~idx:0 link);
  check_int "second read elides" 1 (Hp.stats s).elided;
  (* the elided read must still protect: retire [a] and confirm it
     survives until the slot clears *)
  Link.set link (Link.Ptr b);
  ignore (Hp.get_protected s ~tid ~idx:0 link);
  check_int "moved link re-publishes" 1 (Hp.stats s).elided;
  Hp.retire s ~tid a;
  Hp.retire s ~tid b;
  Hp.flush s;
  check_bool "a reclaimable once unprotected" true (Memdom.Hdr.is_freed a.hdr);
  check_bool "b still protected" false (Memdom.Hdr.is_freed b.hdr);
  Hp.end_op s ~tid;
  Hp.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

let test_elision_he () =
  with_knobs ~snapshot:true ~elide:true @@ fun () ->
  let alloc = Memdom.Alloc.create "he-elide" in
  let s = He.create ~max_hps:4 alloc in
  let tid = Registry.tid () in
  He.begin_op s ~tid;
  let a = mk alloc 1 in
  let link = Link.make (Link.Ptr a) in
  ignore (He.get_protected s ~tid ~idx:0 link);
  let first = (He.stats s).elided in
  ignore (He.get_protected s ~tid ~idx:0 link);
  check_bool "stable era elides" true ((He.stats s).elided > first);
  He.end_op s ~tid;
  He.retire s ~tid a;
  He.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* Elided publishes never unprotect a live node: readers hammer the
   same slots (maximizing elision hits) while writers swap and retire
   underneath them.  Any premature free trips check_access in a
   worker. *)
module Elision_stress (S : Reclaim.Scheme_intf.S with type node = tnode) =
struct
  let test () =
    with_knobs ~snapshot:true ~elide:true @@ fun () ->
    let alloc = Memdom.Alloc.create (S.name ^ "-elide-stress") in
    let s = S.create ~max_hps:4 alloc in
    let nslots = 8 in
    let iters = 3_000 in
    let table =
      Array.init nslots (fun i -> Link.make (Link.Ptr (mk alloc i)))
    in
    run_domains_exn 4 (fun ~i ~tid ->
        let rng = Rng.create ((i * 7919) + 13) in
        for k = 1 to iters do
          let slot = table.(Rng.int rng nslots) in
          S.begin_op s ~tid;
          if i land 1 = 0 then begin
            let n = mk alloc k in
            S.protect_raw s ~tid ~idx:0 (Some n);
            let old = Link.exchange slot (Link.Ptr n) in
            S.end_op s ~tid;
            match Link.target old with
            | Some o -> S.retire s ~tid o
            | None -> ()
          end
          else begin
            (* double protected read of the same link: the second is
               the elision fast path unless a writer moved it *)
            ignore (S.get_protected s ~tid ~idx:0 slot);
            let st = S.get_protected s ~tid ~idx:0 slot in
            (match Link.target st with
            | Some n -> ignore (read_value n)
            | None -> ());
            S.end_op s ~tid
          end
        done);
    check_bool "elision fired under stress" true ((S.stats s).elided > 0);
    Array.iter
      (fun slot ->
        match Link.target (Link.exchange slot Link.Null) with
        | Some n -> S.retire s ~tid:(Registry.tid ()) n
        | None -> ())
      table;
    S.flush s;
    S.flush s;
    check_int "no leak after stress" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s)
end

module Stress_hp = Elision_stress (Hp)
module Stress_ptp = Elision_stress (Ptp)

(* ------------------------------------------------------------------ *)
(* Ablation: both refs off must restore the legacy paths exactly — no
   snapshots, no elisions, reclamation still complete. *)

module Ablation (S : Reclaim.Scheme_intf.S with type node = tnode) = struct
  let test () =
    with_knobs ~snapshot:false ~elide:false @@ fun () ->
    let alloc = Memdom.Alloc.create (S.name ^ "-ablate") in
    let s = S.create ~max_hps:4 alloc in
    let tid = Registry.tid () in
    for i = 1 to 500 do
      S.begin_op s ~tid;
      let n = mk alloc i in
      let link = Link.make (Link.Ptr n) in
      (* double read: would elide with the knob on *)
      ignore (S.get_protected s ~tid ~idx:0 link);
      ignore (S.get_protected s ~tid ~idx:0 link);
      Link.set link Link.Null;
      S.end_op s ~tid;
      S.retire s ~tid n
    done;
    S.flush s;
    let st = (S.stats s : Reclaim.Scheme_intf.stats) in
    check_int "no snapshots in legacy mode" 0 st.snapshot_builds;
    check_int "no snapshot hits in legacy mode" 0 st.snapshot_hits;
    check_int "no elisions in legacy mode" 0 st.elided;
    check_bool "legacy scans ran" true (st.scans > 0);
    check_int "all reclaimed" 0 (Memdom.Alloc.live alloc)
end

module Ablate_hp = Ablation (Hp)
module Ablate_ptb = Ablation (Ptb)
module Ablate_he = Ablation (He)
module Ablate_ibr = Ablation (Ibr)
module Ablate_ptp = Ablation (Ptp)

let suite =
  [
    ( "scan_set",
      [
        Alcotest.test_case "points: add/seal/mem with growth" `Quick
          test_scan_set_points;
        Alcotest.test_case "payloads: add_kv/find" `Quick test_scan_set_find;
        Alcotest.test_case "ranges: point-in-interval queries" `Quick
          test_scan_set_ranges;
        Alcotest.test_case "intervals: overlap with running max" `Quick
          test_scan_set_intervals;
      ] );
    ( "snapshot_scan",
      [
        Alcotest.test_case "hp: one slot visit per scan" `Quick
          test_snapshot_hp;
        Alcotest.test_case "ptb: one slot visit per liberate" `Quick
          test_snapshot_ptb;
        Alcotest.test_case "he: one era visit per scan" `Quick
          test_snapshot_he;
        Alcotest.test_case "ibr: one interval visit per scan" `Quick
          test_snapshot_ibr;
        Alcotest.test_case "hp: snapshot cheaper than legacy walk" `Quick
          test_snapshot_cheaper_than_legacy;
      ] );
    ( "elision",
      [
        Alcotest.test_case "hp: stable link elides, moved link republishes"
          `Quick test_elision_hp;
        Alcotest.test_case "he: stable era elides" `Quick test_elision_he;
        Alcotest.test_case "hp: elision safe under concurrent retire" `Slow
          Stress_hp.test;
        Alcotest.test_case "ptp: elision safe under concurrent retire" `Slow
          Stress_ptp.test;
      ] );
    ( "scan_ablation",
      [
        Alcotest.test_case "hp: refs off restore legacy" `Quick
          Ablate_hp.test;
        Alcotest.test_case "ptb: refs off restore legacy" `Quick
          Ablate_ptb.test;
        Alcotest.test_case "he: refs off restore legacy" `Quick
          Ablate_he.test;
        Alcotest.test_case "ibr: refs off restore legacy" `Quick
          Ablate_ibr.test;
        Alcotest.test_case "ptp: refs off restore legacy" `Quick
          Ablate_ptp.test;
      ] );
  ]
