(* Unit and property tests for the atomic-utilities substrate. *)

open Util
open Atomicx

let test_backoff_monotone () =
  let b = Backoff.create ~min:1 ~max:8 () in
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b;
  check_bool "usable after reset" true true

let test_backoff_invalid () =
  Alcotest.check_raises "min<1" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Backoff.create ~min:0 ()));
  Alcotest.check_raises "max<min" (Invalid_argument "Backoff.create")
    (fun () -> ignore (Backoff.create ~min:10 ~max:2 ()))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 c) in
  check_bool "split stream differs" true (xs <> ys)

let prop_rng_int_in_bounds =
  qtest "Rng.int stays in bounds"
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      0 <= v && v < bound)

let prop_rng_float_in_unit =
  qtest "Rng.float in [0,1)" QCheck2.Gen.int (fun seed ->
      let r = Rng.create seed in
      let f = Rng.float r in
      0.0 <= f && f < 1.0)

let test_registry_distinct_tids () =
  let tids = run_domains 8 (fun ~i:_ ~tid -> tid) in
  let uniq = List.sort_uniq compare tids in
  check_int "distinct tids" 8 (List.length uniq);
  List.iter
    (fun tid ->
      check_bool "in range" true (tid >= 0 && tid < Registry.max_threads))
    tids

let test_registry_reuse_after_release () =
  let round () = List.sort compare (run_domains 4 (fun ~i:_ ~tid -> tid)) in
  let r1 = round () in
  let r2 = round () in
  (* with_tid releases slots, so a second wave reuses the same pool *)
  check_bool "slots recycled" true (r1 = r2)

let test_registry_stable_within_domain () =
  run_domains_exn 2 (fun ~i:_ ~tid ->
      for _ = 1 to 10 do
        check_int "stable" tid (Registry.tid ())
      done)

(* Slot release bumps the generation: a recycled tid is distinguishable
   from its previous life. *)
let test_registry_generation_bumps () =
  let tid, gen =
    Domain.join
      (Domain.spawn (fun () ->
           Registry.with_tid (fun tid -> (tid, Registry.generation tid))))
  in
  check_bool "released" true (Registry.slot_state tid = `Free);
  check_bool "generation bumped on release" true (Registry.generation tid > gen)

(* The quarantine pass runs registered cleaners while the slot is still
   Quarantined (so the tid cannot be re-issued mid-cleanup), then frees
   it. *)
let test_registry_quarantine_runs_cleaners () =
  let seen = ref [] in
  let cleaner tid = seen := (tid, Registry.slot_state tid) :: !seen in
  Registry.on_quarantine cleaner;
  let tid =
    Domain.join (Domain.spawn (fun () -> Registry.with_tid (fun tid -> tid)))
  in
  check_bool "cleaner saw the dying tid quarantined" true
    (List.mem (tid, `Quarantined) !seen);
  check_bool "slot free afterwards" true (Registry.slot_state tid = `Free);
  (* keep the closure alive until here: registration is weak *)
  ignore (Sys.opaque_identity (Some cleaner))

(* [abandon] models abrupt death: the slot stays Active (still pinned
   by whatever the dead thread published) until a survivor proves the
   owner gone and calls [force_release], which runs the same quarantine
   pass on the caller. *)
let test_registry_abandon_and_force_release () =
  let cleaned = ref [] in
  let cleaner tid = cleaned := tid :: !cleaned in
  Registry.on_quarantine cleaner;
  let tid =
    Domain.join
      (Domain.spawn (fun () -> Registry.with_tid (fun _ -> Registry.abandon ())))
  in
  check_bool "abandoned slot stays Active" true
    (Registry.slot_state tid = `Active);
  check_bool "no cleanup yet" true (not (List.mem tid !cleaned));
  check_bool "force_release reclaims" true (Registry.force_release tid);
  check_bool "cleaner ran on the survivor" true (List.mem tid !cleaned);
  check_bool "slot free" true (Registry.slot_state tid = `Free);
  check_bool "second force_release is a no-op" false (Registry.force_release tid);
  ignore (Sys.opaque_identity (Some cleaner))

(* [active] counts Active slots, scanning only up to the watermark. *)
let test_registry_active_counts () =
  let n = 4 in
  let barrier = Barrier.create n in
  let doms =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                Barrier.wait barrier;
                let a = Registry.active () in
                Barrier.wait barrier;
                a)))
  in
  let counts = List.map Domain.join doms in
  List.iter
    (fun a ->
      check_bool "sees all concurrent registrants" true (a >= n);
      check_bool "bounded by watermark" true (a <= Registry.high_water ()))
    counts

(* Exhaustion raises a diagnostic, and force_release recovers from it:
   the registry survives a full wipe-out of leaked slots. *)
let test_registry_too_many_threads_diagnostic () =
  let leaked = ref [] in
  (try
     while true do
       let tid =
         Domain.join
           (Domain.spawn (fun () ->
                match Registry.with_tid (fun _ -> Registry.abandon ()) with
                | tid -> Ok tid
                | exception e -> Error e))
       in
       match tid with Ok t -> leaked := t :: !leaked | Error e -> raise e
     done
   with Registry.Too_many_threads msg ->
     check_bool "message names max_threads" true
       (let sub = Printf.sprintf "max_threads=%d" Registry.max_threads in
      let len = String.length sub in
      let ok = ref false in
      for i = 0 to String.length msg - len do
        if String.sub msg i len = sub then ok := true
      done;
      !ok));
  List.iter
    (fun t -> check_bool "recovered" true (Registry.force_release t))
    !leaked;
  (* the pool is usable again *)
  let tid =
    Domain.join (Domain.spawn (fun () -> Registry.with_tid (fun t -> t)))
  in
  check_bool "slots re-issued after recovery" true
    (tid >= 0 && tid < Registry.max_threads)

let test_bitmask_sequential_acquire () =
  let b = Bitmask.create 10 in
  check_int "capacity" 10 (Bitmask.capacity b);
  for i = 0 to 9 do
    check_bool "lowest free" true (Bitmask.acquire b ~from:0 = Some i)
  done;
  check_bool "exhausted" true (Bitmask.acquire b ~from:0 = None);
  check_int "all taken" 10 (Bitmask.count b)

let test_bitmask_release_reuses_lowest () =
  let b = Bitmask.create 8 in
  for _ = 0 to 7 do
    ignore (Bitmask.acquire b ~from:0)
  done;
  Bitmask.release b 5;
  Bitmask.release b 2;
  check_bool "freed 2 not taken" false (Bitmask.mem b 2);
  check_bool "lowest freed wins" true (Bitmask.acquire b ~from:0 = Some 2);
  check_bool "then the next" true (Bitmask.acquire b ~from:0 = Some 5);
  check_bool "full again" true (Bitmask.acquire b ~from:0 = None)

let test_bitmask_from_floor () =
  let b = Bitmask.create 8 in
  check_bool "respects from" true (Bitmask.acquire b ~from:3 = Some 3);
  check_bool "0 still free below the floor" false (Bitmask.mem b 0);
  check_bool "skips taken 3" true (Bitmask.acquire b ~from:3 = Some 4);
  check_bool "negative from is 0" true (Bitmask.acquire b ~from:(-5) = Some 0);
  check_bool "from at capacity" true (Bitmask.acquire b ~from:8 = None)

let test_bitmask_cross_word () =
  (* 100 > 62 bits: exercises the multi-word carry path *)
  let b = Bitmask.create 100 in
  for i = 0 to 99 do
    check_bool "dense fill" true (Bitmask.acquire b ~from:0 = Some i)
  done;
  check_bool "exhausted" true (Bitmask.acquire b ~from:0 = None);
  Bitmask.release b 63;
  Bitmask.release b 99;
  check_bool "free slot in word 1" true (Bitmask.acquire b ~from:0 = Some 63);
  check_bool "last slot" true (Bitmask.acquire b ~from:70 = Some 99);
  check_bool "exhausted again" true (Bitmask.acquire b ~from:0 = None)

let test_bitmask_invalid () =
  Alcotest.check_raises "capacity<1" (Invalid_argument "Bitmask.create")
    (fun () -> ignore (Bitmask.create 0));
  let b = Bitmask.create 4 in
  Alcotest.check_raises "release out of range"
    (Invalid_argument "Bitmask.release") (fun () -> Bitmask.release b 4);
  Alcotest.check_raises "release negative"
    (Invalid_argument "Bitmask.release") (fun () -> Bitmask.release b (-1))

module IntSet = Set.Make (Int)

let prop_bitmask_matches_set_model =
  qtest ~count:100 "Bitmask matches free-set model"
    QCheck2.Gen.(
      pair (int_range 1 130)
        (list_size (int_range 1 200) (pair (int_range 0 1) (int_range 0 129))))
    (fun (cap, ops) ->
      let b = Bitmask.create cap in
      let taken = ref IntSet.empty in
      List.for_all
        (fun (op, k) ->
          if op = 0 then begin
            (* acquire from k: model says lowest i >= k not taken *)
            let from = k mod cap in
            let expect =
              let rec go i =
                if i >= cap then None
                else if IntSet.mem i !taken then go (i + 1)
                else Some i
              in
              go from
            in
            let got = Bitmask.acquire b ~from in
            (match got with
            | Some i -> taken := IntSet.add i !taken
            | None -> ());
            got = expect
          end
          else begin
            let i = k mod cap in
            if IntSet.mem i !taken then begin
              Bitmask.release b i;
              taken := IntSet.remove i !taken
            end;
            Bitmask.count b = IntSet.cardinal !taken
          end)
        ops)

let test_shard_aggregates_across_domains () =
  let s = Shard.create () in
  let per = 10_000 in
  run_domains_exn 4 (fun ~i ~tid ->
      for _ = 1 to per do
        Shard.incr s ~tid
      done;
      (* negative deltas from a different pattern per domain *)
      Shard.add s ~tid (-i));
  check_int "sum of all cells" ((4 * per) - (0 + 1 + 2 + 3)) (Shard.get s)

let test_shard_fetch_incr_tickets () =
  let s = Shard.create () in
  let tickets =
    run_domains 4 (fun ~i:_ ~tid ->
        List.init 1_000 (fun _ -> Shard.fetch_incr s ~tid))
  in
  (* per-thread tickets are each a dense 0..n-1 sequence *)
  List.iter
    (fun ts -> check_bool "dense per-cell" true (ts = List.init 1_000 Fun.id))
    tickets;
  check_int "total" 4_000 (Shard.get s)

let test_barrier_aligns () =
  let n = 6 in
  let counter = Atomic.make 0 in
  let b = Barrier.create n in
  let seen =
    run_domains n (fun ~i:_ ~tid:_ ->
        ignore (Atomic.fetch_and_add counter 1);
        Barrier.wait b;
        (* after the barrier, every arrival increment must be visible *)
        Atomic.get counter)
  in
  List.iter (fun c -> check_int "all arrived" n c) seen

let test_barrier_reusable () =
  let n = 4 in
  let b = Barrier.create n in
  run_domains_exn n (fun ~i:_ ~tid:_ ->
      for _ = 1 to 100 do
        Barrier.wait b
      done)

let test_link_basics () =
  let l = Link.make Link.Null in
  check_bool "null" true (Link.get l = Link.Null);
  let n = ref 1 in
  Link.set l (Link.Ptr n);
  (match Link.target (Link.get l) with
  | Some x -> check_bool "target" true (x == n)
  | None -> Alcotest.fail "no target");
  check_bool "not marked" false (Link.is_marked (Link.get l));
  Link.set l (Link.Mark n);
  check_bool "marked" true (Link.is_marked (Link.get l));
  check_bool "poison" true (Link.is_poison Link.Poison)

let test_link_cas_physical () =
  let n = ref 1 in
  let l = Link.make (Link.Ptr n) in
  let seen = Link.get l in
  (* CAS against a *fresh* box with equal content must fail... *)
  check_bool "fresh box fails" false (Link.cas l (Link.Ptr n) (Link.Null));
  (* ...while CAS against the loaded box succeeds. *)
  check_bool "loaded box succeeds" true (Link.cas l seen Link.Null);
  check_bool "null now" true (Link.get l = Link.Null)

let test_link_same () =
  let n = ref 1 and m = ref 2 in
  check_bool "null=null" true (Link.same Link.Null Link.Null);
  check_bool "ptr same target" true (Link.same (Link.Ptr n) (Link.Ptr n));
  check_bool "ptr diff target" false (Link.same (Link.Ptr n) (Link.Ptr m));
  check_bool "ptr vs mark" false (Link.same (Link.Ptr n) (Link.Mark n));
  check_bool "poison" true (Link.same Link.Poison Link.Poison)

let test_link_exchange () =
  let n = ref 1 in
  let l = Link.make (Link.Ptr n) in
  let old = Link.exchange l Link.Poison in
  check_bool "old returned" true (Link.same old (Link.Ptr n));
  check_bool "new visible" true (Link.is_poison (Link.get l))

let test_link_cas_parallel_single_winner () =
  (* n domains CAS the same expected box: exactly one must win. *)
  let v = ref 0 in
  let l = Link.make (Link.Ptr v) in
  let seen = Link.get l in
  let winners =
    run_domains 6 (fun ~i ~tid:_ ->
        if Link.cas l seen (Link.Mark (ref i)) then 1 else 0)
  in
  check_int "single winner" 1 (List.fold_left ( + ) 0 winners)

let suite =
  [
    ( "atomicx",
      [
        Alcotest.test_case "backoff monotone+reset" `Quick test_backoff_monotone;
        Alcotest.test_case "backoff rejects bad args" `Quick test_backoff_invalid;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng split independent" `Quick
          test_rng_split_independent;
        prop_rng_int_in_bounds;
        prop_rng_float_in_unit;
        Alcotest.test_case "registry distinct tids" `Quick
          test_registry_distinct_tids;
        Alcotest.test_case "registry reuses released slots" `Quick
          test_registry_reuse_after_release;
        Alcotest.test_case "registry generation bumps" `Quick
          test_registry_generation_bumps;
        Alcotest.test_case "registry quarantine runs cleaners" `Quick
          test_registry_quarantine_runs_cleaners;
        Alcotest.test_case "registry abandon + force_release" `Quick
          test_registry_abandon_and_force_release;
        Alcotest.test_case "registry active counts" `Quick
          test_registry_active_counts;
        Alcotest.test_case "registry exhaustion diagnostic" `Quick
          test_registry_too_many_threads_diagnostic;
        Alcotest.test_case "registry stable within domain" `Quick
          test_registry_stable_within_domain;
        Alcotest.test_case "bitmask sequential acquire" `Quick
          test_bitmask_sequential_acquire;
        Alcotest.test_case "bitmask release reuses lowest" `Quick
          test_bitmask_release_reuses_lowest;
        Alcotest.test_case "bitmask from floor" `Quick test_bitmask_from_floor;
        Alcotest.test_case "bitmask cross word" `Quick test_bitmask_cross_word;
        Alcotest.test_case "bitmask rejects bad args" `Quick
          test_bitmask_invalid;
        prop_bitmask_matches_set_model;
        Alcotest.test_case "shard aggregates across domains" `Quick
          test_shard_aggregates_across_domains;
        Alcotest.test_case "shard fetch_incr dense tickets" `Quick
          test_shard_fetch_incr_tickets;
        Alcotest.test_case "barrier aligns" `Quick test_barrier_aligns;
        Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
        Alcotest.test_case "link basics" `Quick test_link_basics;
        Alcotest.test_case "link CAS is physical" `Quick test_link_cas_physical;
        Alcotest.test_case "link same" `Quick test_link_same;
        Alcotest.test_case "link exchange" `Quick test_link_exchange;
        Alcotest.test_case "link CAS single winner" `Quick
          test_link_cas_parallel_single_winner;
      ] );
  ]
