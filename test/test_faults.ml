(* Failure injection: exceptions thrown at awkward points, workers dying
   mid-workload, and stalled readers.  The substrate and guard scopes
   must contain each fault: no lost protections, no leaks, and — for the
   stalled-reader case — exactly the per-scheme memory behaviour the
   paper's Table 1 predicts (EBR blocks all reclamation; PTP pins only
   what is actually protected). *)

open Util
open Atomicx

exception Boom

type tnode = { hdr : Memdom.Hdr.t; mutable value : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Ebr = Reclaim.Ebr.Make (TN)
module Ptp = Orc_core.Ptp.Make (TN)

type onode = { hdr : Memdom.Hdr.t; v : int; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let mk v hdr = { hdr; v; next = Link.make Link.Null }

(* An exception inside a guard must release every protection: the node
   loaded before the crash is reclaimable afterwards. *)
let test_exception_in_guard_releases () =
  let alloc = Memdom.Alloc.create "faults" in
  let o = O.create alloc in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 1) in
      O.store g root (O.Ptr.state p));
  (match
     O.with_guard o (fun g ->
         let h = O.ptr g in
         O.load g root h;
         O.store g root Link.Null;
         (* node pinned by h; now die *)
         raise Boom)
   with
  | () -> Alcotest.fail "should have raised"
  | exception Boom -> ());
  (* the crashed guard's protections are gone: node reclaimed *)
  check_int "no leak after crash" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* A failing node constructor must not leak its header. *)
let test_exception_in_constructor () =
  let alloc = Memdom.Alloc.create "faults" in
  let o = O.create alloc in
  (match O.with_guard o (fun g -> ignore (O.alloc_node g (fun _ -> raise Boom)))
   with
  | () -> Alcotest.fail "should have raised"
  | exception Boom -> ());
  check_int "constructor failure leaks nothing" 0 (Memdom.Alloc.live alloc)

(* Workers dying randomly mid-workload: survivors keep operating, and
   the structure remains coherent and leak-free. *)
module L = Ds.Orc_michael_list.Make ()

let test_worker_deaths_mid_workload () =
  let s = L.create () in
  let results =
    run_domains 6 (fun ~i ~tid:_ ->
        let rng = Rng.create ((i + 1) * 433) in
        match
          for k = 1 to 3_000 do
            let key = 1 + Rng.int rng 128 in
            (match Rng.int rng 3 with
            | 0 -> ignore (L.add s key)
            | 1 -> ignore (L.remove s key)
            | _ -> ignore (L.contains s key));
            (* a third of the workers die a third of the way in *)
            if i mod 3 = 0 && k = 1_000 then raise Boom
          done
        with
        | () -> `Survived
        | exception Boom -> `Died)
  in
  check_int "two workers died" 2
    (List.length (List.filter (( = ) `Died) results));
  let l = L.to_list s in
  check_bool "coherent after deaths" true (List.sort_uniq compare l = l);
  L.destroy s;
  L.flush s;
  check_int "no leak after deaths" 0 (Memdom.Alloc.live (L.alloc s))

(* The paper's EBR indictment, §2: "the retire is always blocking" — a
   single reader that never goes quiescent blocks ALL reclamation, while
   a pointer-based scheme pins only what that reader actually protects. *)
let stalled_reader_growth (module S : Reclaim.Scheme_intf.S
                            with type node = tnode) name =
  (* tid 9 is staged, not acquired: reserve it so protection scans
     treat its row as in use *)
  Atomicx.Registry.reserve 10;
  let alloc = Memdom.Alloc.create name in
  let s = S.create ~max_hps:4 alloc in
  (* the stalled reader: enters an operation (EBR) / protects one node
     (PTP) and never finishes *)
  let stalled = { hdr = Memdom.Alloc.hdr alloc (); value = 0 } in
  let link = Link.make (Link.Ptr stalled) in
  S.begin_op s ~tid:9;
  ignore (S.get_protected s ~tid:9 ~idx:0 link);
  (* churn: retire a thousand unrelated nodes *)
  for i = 1 to 1_000 do
    let n = { hdr = Memdom.Alloc.hdr alloc (); value = i } in
    S.retire s ~tid:0 n
  done;
  S.flush s;
  let pinned = S.unreclaimed s in
  (* release the reader: everything must drain *)
  S.end_op s ~tid:9;
  Link.set link Link.Null;
  S.retire s ~tid:0 stalled;
  S.flush s;
  check_int (name ^ ": drains after release") 0 (S.unreclaimed s);
  check_int (name ^ ": no leak") 0 (Memdom.Alloc.live alloc);
  pinned

let test_stalled_reader_ebr_vs_ptp () =
  let ebr_pinned = stalled_reader_growth (module Ebr) "ebr-stall" in
  let ptp_pinned = stalled_reader_growth (module Ptp) "ptp-stall" in
  (* EBR: the stalled epoch pins (essentially) all 1000 retired nodes.
     PTP: only the one protected node could ever be pinned — and it was
     not even retired, so nothing is. *)
  check_bool
    (Printf.sprintf "EBR pins ~everything (%d)" ebr_pinned)
    true (ebr_pinned > 900);
  check_bool
    (Printf.sprintf "PTP pins ~nothing (%d)" ptp_pinned)
    true (ptp_pinned <= 1)

(* Same story at the data-structure level with OrcGC: a guard that stalls
   holding one handle pins O(1), not O(churn). *)
let test_stalled_orc_guard_pins_o1 () =
  let alloc = Memdom.Alloc.create "faults" in
  let o = O.create alloc in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 0) in
      O.store g root (O.Ptr.state p));
  let release = Atomic.make false in
  let pinned_during = Atomic.make (-1) in
  run_domains_exn 2 (fun ~i ~tid:_ ->
      if i = 0 then
        O.with_guard o (fun g ->
            let h = O.ptr g in
            O.load g root h;
            (* stall holding the handle *)
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done)
      else begin
        (* churn: replace the root node many times *)
        O.with_guard o (fun g ->
            let p = O.ptr g in
            for k = 1 to 1_000 do
              let n = O.alloc_node_into g p (mk k) in
              O.store g root (Link.Ptr n)
            done);
        Atomic.set pinned_during (Memdom.Alloc.live alloc);
        Atomic.set release true
      end);
  (* while stalled: the churned nodes were reclaimed as they went —
     live stayed O(1), not O(1000) *)
  check_bool
    (Printf.sprintf "pinned O(1) during stall (%d)"
       (Atomic.get pinned_during))
    true
    (Atomic.get pinned_during < 16);
  O.with_guard o (fun g -> O.store g root Link.Null);
  O.flush o;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "exception in guard releases protections" `Quick
          test_exception_in_guard_releases;
        Alcotest.test_case "exception in constructor leaks nothing" `Quick
          test_exception_in_constructor;
        Alcotest.test_case "worker deaths mid-workload" `Slow
          test_worker_deaths_mid_workload;
        Alcotest.test_case "stalled reader: EBR blocks, PTP does not" `Quick
          test_stalled_reader_ebr_vs_ptp;
        Alcotest.test_case "stalled orc guard pins O(1)" `Slow
          test_stalled_orc_guard_pins_o1;
      ] );
  ]
