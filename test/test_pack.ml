(* Word-packing tests: exact zero-allocation guarantees of the packed
   header + tagged link hot paths, the bit-layout boundaries of the
   packed words ([Hdr.state], the [_orc] word), generation monotonicity
   across pooled recycling, and the ablation refs ([Memdom.Hdr.packed],
   [Atomicx.Link.tagged]) restoring the boxed behaviour unchanged.

   The zero-alloc assertions are exact ([delta = 0.], not "small"):
   [Gc.minor_words] itself allocates the boxed float it returns after
   reading the counter, so a two-call calibration measures that fixed
   overhead and the remaining delta is precisely what the measured
   region allocated.  Every measured loop runs once as a warmup first,
   so one-time lazy costs (arena chunks, counter shards) are paid
   outside the window. *)

open Util
open Atomicx

type pnode = { p_hdr : Memdom.Hdr.t; p_next : pnode Link.t }

module PN = struct
  type t = pnode

  let hdr n = n.p_hdr
end

module Hp = Reclaim.Hp.Make (PN)

module ON = struct
  type t = pnode

  let hdr n = n.p_hdr
  let iter_links n f = f n.p_next
end

module Orc = Orc_core.Orc.Make (ON)
module Orc_hp = Orc_core.Orc_hp.Make (ON)

(* Pin both packing knobs for the duration of [f]. *)
let with_pack ~on f =
  let sp = !Memdom.Hdr.packed and st = !Link.tagged in
  Fun.protect ~finally:(fun () ->
      Memdom.Hdr.packed := sp;
      Link.tagged := st)
  @@ fun () ->
  Memdom.Hdr.packed := on;
  Link.tagged := on;
  f ()

(* Minor words allocated by [f], with the boxed-float overhead of
   [Gc.minor_words] itself calibrated out. *)
let minor_delta f =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let overhead = b -. a in
  let w0 = Gc.minor_words () in
  f ();
  let w1 = Gc.minor_words () in
  w1 -. w0 -. overhead

let check_zero name f =
  f () (* warmup: lazy one-time costs land outside the window *);
  let d = minor_delta f in
  if d <> 0. then Alcotest.failf "%s allocated %.0f minor words" name d

(* ------------------------------------------------------------------ *)
(* Zero-allocation: protected reads *)

let chain_len = 32

let test_zero_alloc_hp () =
  with_pack ~on:true @@ fun () ->
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null "pack-test-hp" in
  let s = Hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  let arena = Memdom.Handle.arena ~hdr:(fun n -> n.p_hdr) () in
  let tail =
    { p_hdr = Memdom.Alloc.hdr alloc (); p_next = Link.make_in arena Link.Null }
  in
  let head = ref tail in
  for _ = 2 to chain_len do
    head :=
      {
        p_hdr = Memdom.Alloc.hdr alloc ();
        p_next = Link.make_in arena (Link.Ptr !head);
      }
  done;
  let root = Link.make_in arena (Link.Ptr !head) in
  Hp.begin_op s ~tid:0;
  let rec walk link idx =
    let v = Hp.get_protected_v s ~tid:0 ~idx link in
    if Link.v_has_target v then walk (Link.v_target_exn link v).p_next (1 - idx)
  in
  check_zero "hp packed protected walk" (fun () ->
      for _ = 1 to 50 do
        walk root 0
      done);
  Hp.end_op s ~tid:0

(* Shared shape for the two orc cores (both satisfy it structurally). *)
module type PACK_ORC = sig
  type t
  type guard

  module Ptr : sig
    type t

    val view : t -> pnode Link.view
    val node_exn : t -> pnode
  end

  val create :
    ?max_hps:int ->
    ?sink:Obs.Sink.t ->
    ?arena:pnode Link.arena ->
    Memdom.Alloc.t ->
    t

  val with_guard : t -> (guard -> 'a) -> 'a
  val ptr : guard -> Ptr.t
  val load : guard -> pnode Link.t -> Ptr.t -> unit
  val assign : guard -> Ptr.t -> Ptr.t -> unit
  val alloc_node_into : guard -> Ptr.t -> (Memdom.Hdr.t -> pnode) -> pnode
  val new_link : guard -> pnode Link.state -> pnode Link.t
  val store_v : guard -> pnode Link.t -> pnode Link.view -> unit
  val v_ptr : t -> pnode -> pnode Link.view
  val flush : t -> unit
end

let orc_zero_alloc (module O : PACK_ORC) name () =
  with_pack ~on:true @@ fun () ->
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null ("pack-test-" ^ name) in
  let arena = Memdom.Handle.arena ~hdr:(fun n -> n.p_hdr) () in
  let o = O.create ~sink:Obs.Sink.null ~arena alloc in
  O.with_guard o (fun g ->
      let root = O.new_link g Link.Null in
      let np = O.ptr g in
      for _ = 1 to chain_len do
        let n =
          O.alloc_node_into g np (fun hdr ->
              { p_hdr = hdr; p_next = O.new_link g Link.Null })
        in
        O.store_v g n.p_next (Link.view root);
        O.store_v g root (O.v_ptr o n)
      done;
      let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
      check_zero
        (name ^ " packed protected walk")
        (fun () ->
          for _ = 1 to 50 do
            O.load g root curr;
            while Link.v_has_target (O.Ptr.view curr) do
              let c = O.Ptr.node_exn curr in
              O.load g c.p_next next;
              O.assign g prev curr;
              O.assign g curr next
            done
          done));
  O.flush o

(* ------------------------------------------------------------------ *)
(* Zero-allocation: header lifecycle transitions *)

let test_zero_alloc_hdr () =
  with_pack ~on:true @@ fun () ->
  let h = Memdom.Hdr.make ~uid:1 ~label:"pack" ~strict:true ~birth_era:0 in
  check_zero "mark_retired/unretire" (fun () ->
      for _ = 1 to 100 do
        Memdom.Hdr.mark_retired h;
        Memdom.Hdr.unretire h
      done);
  let uid = ref 2 in
  check_zero "retire/free/recycle cycle" (fun () ->
      for _ = 1 to 100 do
        Memdom.Hdr.mark_retired h;
        Memdom.Hdr.set_death_era h 7;
        Memdom.Hdr.mark_freed h;
        Memdom.Hdr.recycle h ~uid:!uid ~birth_era:3;
        incr uid
      done)

(* ------------------------------------------------------------------ *)
(* Bit-layout boundaries of the [_orc] word (mirrors lib/core/orc.ml:
   bits 0-21 count biased at bit 22, bit 23 BRETIRED, sequence above) *)

let seq_unit = 1 lsl 24
let bretired = 1 lsl 23
let orc_zero = 1 lsl 22
let ocnt x = x land (seq_unit - 1)
let oseq x = x lsr 24

let test_orc_word_bits () =
  check_int "orc_initial is the count bias" orc_zero Memdom.Hdr.orc_initial;
  (* count saturation boundary: the largest biased count that does not
     spill into BRETIRED *)
  let maxed = orc_zero + (1 lsl 22) - 1 in
  check_int "max count fills bits 0-22" ((1 lsl 23) - 1) maxed;
  check_int "max count stays below BRETIRED" 0 (maxed land bretired);
  check_int "ocnt extracts the saturated count" maxed (ocnt maxed);
  (* sequence increments ride above the count field *)
  let w = (5 * seq_unit) lor bretired lor orc_zero in
  check_int "seq extraction" 5 (oseq w);
  check_int "seq add preserves count+retired" (ocnt w) (ocnt (w + seq_unit));
  check_int "seq add bumps seq" 6 (oseq (w + seq_unit));
  (* count arithmetic preserves the sequence (no carry at the bias) *)
  check_int "increment preserves seq" 5 (oseq (w + 1));
  check_int "decrement preserves seq" 5 (oseq (w - 1));
  check_int "BRETIRED flip preserves seq" 5 (oseq (w - bretired));
  check_int "BRETIRED flip preserves count" orc_zero (ocnt (w - bretired) lxor 0);
  (* a negative count (transient, Algorithm 3) borrows from the bias,
     never from the sequence *)
  let zero = 5 * seq_unit lor orc_zero in
  check_int "decrement below zero stays in field" 5 (oseq (zero - 1));
  check_int "biased -1" (orc_zero - 1) (ocnt (zero - 1));
  (* retire's combined delta (seq+1, count+1) decomposes *)
  let after = zero + seq_unit + 1 in
  check_int "retire delta: seq" 6 (oseq after);
  check_int "retire delta: count" (orc_zero + 1) (ocnt after)

(* ------------------------------------------------------------------ *)
(* Generation monotonicity and packed/boxed transition equivalence *)

let lifecycle_name h =
  match Memdom.Hdr.lifecycle h with
  | Memdom.Hdr.Live -> "live"
  | Memdom.Hdr.Retired -> "retired"
  | Memdom.Hdr.Freed -> "freed"

let gen_trace () =
  let h = Memdom.Hdr.make ~uid:1 ~label:"gen" ~strict:true ~birth_era:0 in
  let trace = ref [ (lifecycle_name h, Memdom.Hdr.generation h) ] in
  let step name =
    trace := (name ^ ":" ^ lifecycle_name h, Memdom.Hdr.generation h) :: !trace
  in
  Memdom.Hdr.mark_retired h;
  step "retire";
  Memdom.Hdr.unretire h;
  step "unretire";
  Memdom.Hdr.mark_retired h;
  step "retire2";
  Memdom.Hdr.mark_freed h;
  step "free";
  Memdom.Hdr.recycle h ~uid:2 ~birth_era:5;
  step "recycle";
  let raised =
    try
      Memdom.Hdr.mark_retired h;
      Memdom.Hdr.mark_retired h;
      false
    with Memdom.Hdr.Double_retire _ -> true
  in
  (List.rev !trace, raised, h.Memdom.Hdr.uid, Memdom.Hdr.death_era h)

let test_generation_monotone () =
  let run ~packed =
    let sp = !Memdom.Hdr.packed in
    Fun.protect ~finally:(fun () -> Memdom.Hdr.packed := sp) @@ fun () ->
    Memdom.Hdr.packed := packed;
    gen_trace ()
  in
  let packed_t, packed_raised, packed_uid, packed_death = run ~packed:true in
  let boxed_t, boxed_raised, boxed_uid, boxed_death = run ~packed:false in
  (* strictly monotone generations across every transition incl. recycle *)
  let gens = List.map snd packed_t in
  ignore
    (List.fold_left
       (fun prev g ->
         check_bool "generation strictly monotone" true (g > prev);
         g)
       (-1) gens);
  check_bool "double retire detected (packed)" true packed_raised;
  check_bool "double retire detected (boxed)" true boxed_raised;
  check_int "recycle restamps uid" 2 packed_uid;
  check_bool "recycle clears death era" true (packed_death = max_int);
  (* the two modes produce the identical observable trace *)
  check_bool "packed/boxed traces agree" true (packed_t = boxed_t);
  check_int "uids agree" packed_uid boxed_uid;
  check_bool "death eras agree" true (packed_death = boxed_death)

(* ------------------------------------------------------------------ *)
(* Ablation equivalence: same operation sequence, knobs on vs off *)

module L_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module L_orc = Ds.Orc_michael_list.Make ()

(* xorshift so both runs see the same op sequence *)
let op_sequence n =
  let x = ref 0x2545F491 in
  List.init n (fun _ ->
      x := !x lxor (!x lsl 13);
      x := !x lxor (!x lsr 7);
      x := !x lxor (!x lsl 17);
      (!x land 3, 1 + (abs !x mod 64)))

module type SET_OPS = sig
  type t

  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val to_list : t -> int list
end

let run_ops (module M : SET_OPS) ops =
  let l = M.create () in
  let results =
    List.map
      (fun (op, key) ->
        match op with
        | 0 -> M.add l key
        | 1 -> M.remove l key
        | _ -> M.contains l key)
      ops
  in
  (results, M.to_list l)

let equivalence (module M : SET_OPS) name () =
  let ops = op_sequence 400 in
  let on_r, on_l = with_pack ~on:true (fun () -> run_ops (module M) ops) in
  let off_r, off_l = with_pack ~on:false (fun () -> run_ops (module M) ops) in
  check_bool (name ^ ": op results agree") true (on_r = off_r);
  check_bool (name ^ ": final contents agree") true (on_l = off_l);
  (* sanity: the sequence actually exercised the list *)
  check_bool (name ^ ": non-trivial run") true (on_l <> [])

let suite =
  [
    ( "pack_zero_alloc",
      [
        Alcotest.test_case "hp: packed protected walk allocates nothing"
          `Quick test_zero_alloc_hp;
        Alcotest.test_case "orc: packed guarded traversal allocates nothing"
          `Quick
          (orc_zero_alloc (module Orc) "orc");
        Alcotest.test_case "orc-hp: packed guarded traversal allocates nothing"
          `Quick
          (orc_zero_alloc (module Orc_hp) "orc-hp");
        Alcotest.test_case "hdr: packed lifecycle transitions allocate nothing"
          `Quick test_zero_alloc_hdr;
      ] );
    ( "pack_bits",
      [
        Alcotest.test_case "orc word: count/seq/BRETIRED boundaries" `Quick
          test_orc_word_bits;
        Alcotest.test_case "hdr: generation monotone, packed = boxed" `Quick
          test_generation_monotone;
      ] );
    ( "pack_ablation",
      [
        Alcotest.test_case "michael list (hp): tagged = boxed" `Quick
          (equivalence (module L_hp) "hp list");
        Alcotest.test_case "michael list (orc): tagged = boxed" `Quick
          (equivalence (module L_orc) "orc list");
      ] );
  ]
