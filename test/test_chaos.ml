(* Domain-lifecycle chaos: waves of short-lived domains — an order of
   magnitude more than [Registry.max_threads] across the run — dying at
   randomized adversarial points while hammering every scheme.  The
   lifecycle contract under test: no [Use_after_free] / [Double_free] /
   [Too_many_threads] ever, zero live objects once the run quiesces,
   orphaned retire lists adopted by survivors, and abandoned (abruptly
   dead) slots reclaimed by [force_release].

   A failing battery is re-run once under an active [Obs] sink via
   [Util.trace_retry], which dumps the retire->free / adopt latency
   histograms and the event-ring tail before the test fails. *)

open Util
open Atomicx

type tnode = { hdr : Memdom.Hdr.t; mutable value : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Ptp = Orc_core.Ptp.Make (TN)

type onode = { hdr : Memdom.Hdr.t; v : int; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); value = v }
let omk v hdr = { hdr; v; next = Link.make Link.Null }

(* The full churn soak, one battery per scheme.  Default cfg spawns
   8 batteries x 20 waves x 8 domains = 1280 short-lived domains — ten
   times [Registry.max_threads] — on a fixed seed.  A battery that
   breaks its contract is re-run under a live sink for forensics. *)
let test_churn_all_schemes () =
  List.iter
    (fun (name, battery) ->
      let r = battery Chaos.default in
      let failed =
        trace_retry
          ~name:("chaos " ^ name)
          ~bound:1
          ~first:(if Chaos.ok r then 0 else 1)
          (fun () ->
            let r2 = battery { Chaos.default with sink = !Obs.Sink.default } in
            Format.eprintf "%a@." Chaos.pp_report r2;
            ((if Chaos.ok r2 then 0 else 1), [ r2.Chaos.peak_unreclaimed ]))
      in
      if failed > 0 then
        Alcotest.failf "%s: lifecycle contract violated:@.%a" name
          Chaos.pp_report r;
      check_bool (name ^ " spawned its share of churn") true
        (r.Chaos.domains = Chaos.default.waves * Chaos.default.domains_per_wave);
      check_bool (name ^ " actually killed domains") true (r.Chaos.killed > 0);
      (* pool batteries must actually exercise the recycler: headers
         recycled across domain deaths, some through remote frees
         (dying writers' evictees freed by survivors) *)
      let is_pool =
        String.length name > 5
        && String.sub name (String.length name - 5) 5 = "-pool"
      in
      if is_pool then begin
        check_bool (name ^ " recycled headers under churn") true
          (r.Chaos.pool_hits > 0);
        check_bool (name ^ " saw remote frees") true (r.Chaos.remote_frees > 0)
      end
      else
        check_bool (name ^ " system battery has no pool traffic") true
          (r.Chaos.pool_hits = 0 && r.Chaos.pool_misses = 0))
    Chaos.batteries

(* Abrupt death must stay contained for PTP: a dead thread's published
   hazard pins at most the objects it protected (here: one).  The pin
   holds — parked in the dead row's handover slot — until the
   controller proves the owner gone and force-releases, at which point
   the quarantine cleaner re-runs the handover scan and frees it. *)
let test_ptp_abrupt_death_containment () =
  let alloc = Memdom.Alloc.create "ptp-chaos" in
  let s = Ptp.create ~max_hps:4 alloc in
  let n = mk alloc 7 in
  let link = Link.make (Link.Ptr n) in
  let dead_tid =
    Domain.join
      (Domain.spawn (fun () ->
           Registry.with_tid (fun tid ->
               Ptp.begin_op s ~tid;
               ignore (Ptp.get_protected s ~tid ~idx:0 link);
               (* die with the hazard still published *)
               Registry.abandon ())))
  in
  check_bool "slot still Active" true (Registry.slot_state dead_tid = `Active);
  let tid = Registry.tid () in
  Link.set link Link.Null;
  Ptp.retire s ~tid n;
  (* the dead hazard trapped it: parked, not freed — the O(Ht) bound *)
  check_int "parked on the dead row" 1 (Ptp.unreclaimed s);
  check_bool "not freed while trapped" false (Memdom.Hdr.is_freed n.hdr);
  check_bool "force_release reclaims the slot" true
    (Registry.force_release dead_tid);
  check_int "handover drained by quarantine" 0 (Ptp.unreclaimed s);
  check_int "no leak" 0 (Memdom.Alloc.live alloc);
  check_bool "slot recycled" true (Registry.slot_state dead_tid = `Free)

(* A domain dying inside an OrcGC guard: the guard unwinds its
   protections, the exit hook adopts whatever the row still owned, and
   the tid comes back with a bumped generation. *)
let test_orc_death_in_guard () =
  let alloc = Memdom.Alloc.create "orc-chaos" in
  let o = O.create alloc in
  let root =
    O.with_guard o (fun g ->
        let p = O.alloc_node g (omk 1) in
        O.new_link g (O.Ptr.state p))
  in
  let dead_tid, gen_before =
    Domain.join
      (Domain.spawn (fun () ->
           Registry.with_tid (fun tid ->
               let gen = Registry.generation tid in
               match
                 O.with_guard o (fun g ->
                     let p = O.ptr g in
                     O.load g root p;
                     (* unlink while protecting: the node retires onto
                        this dying row *)
                     O.store g root Link.Null;
                     raise Exit)
               with
               | () -> Alcotest.fail "guard should have raised"
               | exception Exit -> (tid, gen))))
  in
  check_bool "slot recycled on exit" true
    (Registry.slot_state dead_tid = `Free);
  check_bool "generation bumped" true
    (Registry.generation dead_tid > gen_before);
  O.flush o;
  check_int "no leak after death" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* Directory doubling under domain death: domains die right after
   witnessing a doubling (some abruptly), leaving freshly split buckets
   uninitialized; survivors must finish the lazy bucket init and adopt
   the dead domains' backlogs, and the quiesced map must be intact. *)
let test_split_grow () =
  List.iter
    (fun r ->
      Format.eprintf "%a@." Chaos.pp_split_report r;
      if not (Chaos.split_ok r) then
        Alcotest.failf "%s: split-grow contract violated:@.%a" r.Chaos.sp_name
          Chaos.pp_split_report r;
      check_bool (r.Chaos.sp_name ^ " killed domains mid-grow") true
        (r.Chaos.sp_mid_grow > 0);
      check_bool (r.Chaos.sp_name ^ " saw abrupt deaths") true
        (r.Chaos.sp_abandoned > 0))
    (Chaos.run_split_grow ())

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "churn across all schemes" `Slow
          test_churn_all_schemes;
        Alcotest.test_case "split map grows under domain death" `Slow
          test_split_grow;
        Alcotest.test_case "ptp abrupt-death containment" `Quick
          test_ptp_abrupt_death_containment;
        Alcotest.test_case "orc death inside a guard" `Quick
          test_orc_death_in_guard;
      ] );
  ]
