(* Shared test battery for set-like structures (lists, trees, skip
   lists): sequential semantics, randomized model check, deterministic
   concurrent disjoint-range check, and contention stress with
   use-after-free detection and leak accounting. *)

open Util

module type SET = sig
  type t

  val scheme_name : string
  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val to_list : t -> int list
  val size : t -> int
  val destroy : t -> unit
  val unreclaimed : t -> int
  val flush : t -> unit
  val alloc : t -> Memdom.Alloc.t
end

module IntSet = Set.Make (Int)

module Battery (L : sig
  val name : string
end)
(S : SET) =
struct
  let test_sequential_semantics () =
    let s = S.create () in
    check_bool "empty" false (S.contains s 5);
    check_bool "add new" true (S.add s 5);
    check_bool "add dup" false (S.add s 5);
    check_bool "present" true (S.contains s 5);
    check_bool "add more" true (S.add s 3);
    check_bool "add more" true (S.add s 9);
    check_bool "sorted" true (S.to_list s = [ 3; 5; 9 ]);
    check_bool "remove" true (S.remove s 5);
    check_bool "remove absent" false (S.remove s 5);
    check_bool "gone" false (S.contains s 5);
    check_bool "others intact" true (S.contains s 3 && S.contains s 9);
    check_int "size" 2 (S.size s);
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s))

  let prop_matches_model =
    qtest ~count:50
      (L.name ^ " matches set model")
      QCheck2.Gen.(
        list_size (int_range 1 250) (pair (int_range 0 2) (int_range 1 40)))
      (fun ops ->
        let s = S.create () in
        let model = ref IntSet.empty in
        let ok =
          List.for_all
            (fun (op, k) ->
              match op with
              | 0 ->
                  let expect = not (IntSet.mem k !model) in
                  model := IntSet.add k !model;
                  S.add s k = expect
              | 1 ->
                  let expect = IntSet.mem k !model in
                  model := IntSet.remove k !model;
                  S.remove s k = expect
              | _ -> S.contains s k = IntSet.mem k !model)
            ops
        in
        let ok = ok && S.to_list s = IntSet.elements !model in
        S.destroy s;
        S.flush s;
        ok && Memdom.Alloc.live (S.alloc s) = 0)

  (* Disjoint key ranges per domain: each domain's final state is
     deterministic, so the union is checkable after the join. *)
  let test_concurrent_disjoint_ranges () =
    let s = S.create () in
    let domains = 4 and span = 50 and iters = 2_000 in
    let models =
      run_domains domains (fun ~i ~tid:_ ->
          let base = (i + 1) * 1_000 in
          let rng = Atomicx.Rng.create ((i + 1) * 6151) in
          let model = ref IntSet.empty in
          for _ = 1 to iters do
            let k = base + Atomicx.Rng.int rng span in
            match Atomicx.Rng.int rng 3 with
            | 0 ->
                let expect = not (IntSet.mem k !model) in
                model := IntSet.add k !model;
                if S.add s k <> expect then Alcotest.failf "add %d" k
            | 1 ->
                let expect = IntSet.mem k !model in
                model := IntSet.remove k !model;
                if S.remove s k <> expect then Alcotest.failf "remove %d" k
            | _ ->
                if S.contains s k <> IntSet.mem k !model then
                  Alcotest.failf "contains %d" k
          done;
          !model)
    in
    let expected =
      List.fold_left IntSet.union IntSet.empty models |> IntSet.elements
    in
    check_bool "final set is the union of per-domain models" true
      (S.to_list s = expected);
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s))

  (* Shared hot keys: heavy add/remove/contains contention on few keys.
     Correct reclamation means no Use_after_free escapes a worker and the
     structure stays a sorted set. *)
  let test_concurrent_contention () =
    let s = S.create () in
    run_domains_exn 4 (fun ~i ~tid:_ ->
        let rng = Atomicx.Rng.create ((i + 1) * 2237) in
        for _ = 1 to 2_500 do
          let k = 1 + Atomicx.Rng.int rng 8 in
          match Atomicx.Rng.int rng 3 with
          | 0 -> ignore (S.add s k)
          | 1 -> ignore (S.remove s k)
          | _ -> ignore (S.contains s k)
        done);
    let l = S.to_list s in
    check_bool "sorted strictly increasing" true
      (List.sort_uniq compare l = l);
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s));
    check_int "nothing pending" 0 (S.unreclaimed s)

  (* A single key cycled rapidly by one writer while readers poll it:
     exercises the retire/reuse fast path and the reinsertion behaviour
     (obstacle 3) at maximum frequency. *)
  let test_single_key_cycling () =
    let s = S.create () in
    run_domains_exn 3 (fun ~i ~tid:_ ->
        if i = 0 then
          for _ = 1 to 4_000 do
            ignore (S.add s 7);
            ignore (S.remove s 7)
          done
        else
          for _ = 1 to 4_000 do
            ignore (S.contains s 7)
          done);
    check_bool "key absent or present, set coherent" true
      (match S.to_list s with [] | [ 7 ] -> true | _ -> false);
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s))

  (* Read-only traversals racing a churning writer must never observe a
     freed node (the whole point of a reclamation scheme): any violation
     raises Use_after_free out of the reader domain. *)
  let test_readers_vs_churn () =
    let s = S.create () in
    for k = 1 to 64 do
      ignore (S.add s k)
    done;
    run_domains_exn 4 (fun ~i ~tid:_ ->
        let rng = Atomicx.Rng.create ((i + 1) * 65537) in
        if i = 0 then
          for _ = 1 to 4_000 do
            let k = 1 + Atomicx.Rng.int rng 64 in
            ignore (S.remove s k);
            ignore (S.add s k)
          done
        else
          for _ = 1 to 4_000 do
            ignore (S.contains s (1 + Atomicx.Rng.int rng 64))
          done);
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s))

  (* Memory stays bounded while the structure churns: sample live objects
     mid-run; they must stay within reachable + the scheme's slack, not
     grow with the operation count. *)
  let live_objects_run () =
    let s = S.create () in
    let keys = 32 in
    for k = 1 to keys do
      ignore (S.add s k)
    done;
    let stop = Atomic.make false in
    let peak = ref 0 in
    let series = ref [] in
    let watcher =
      Domain.spawn (fun () ->
          let ticks = ref 0 in
          while not (Atomic.get stop) do
            let l = Memdom.Alloc.live (S.alloc s) in
            if l > !peak then peak := l;
            incr ticks;
            if !ticks land 1023 = 0 then series := l :: !series;
            Domain.cpu_relax ()
          done)
    in
    run_domains_exn 2 (fun ~i ~tid:_ ->
        let rng = Atomicx.Rng.create ((i + 1) * 97) in
        for _ = 1 to 8_000 do
          let k = 1 + Atomicx.Rng.int rng keys in
          if Atomicx.Rng.bool rng then ignore (S.add s k)
          else ignore (S.remove s k)
        done);
    Atomic.set stop true;
    Domain.join watcher;
    S.destroy s;
    S.flush s;
    check_int "no leak" 0 (Memdom.Alloc.live (S.alloc s));
    (!peak, List.rev !series)

  let live_objects_peak () = fst (live_objects_run ())

  let test_live_objects_bounded () =
    (* generous slack: sentinels, per-thread scan thresholds, skip-list
       towers; the point is that 16k ops on 32 keys don't accumulate.
       A blown bound gets one traced retry; see [Util.trace_retry]. *)
    let peak = live_objects_peak () in
    let peak = trace_retry ~name:L.name ~bound:4_096 ~first:peak live_objects_run in
    check_bool
      (Printf.sprintf "peak live %d bounded (not O(ops))" peak)
      true (peak < 4_096)

  let cases =
    [
      Alcotest.test_case (L.name ^ ": sequential semantics") `Quick
        test_sequential_semantics;
      prop_matches_model;
      Alcotest.test_case
        (L.name ^ ": concurrent disjoint ranges")
        `Slow test_concurrent_disjoint_ranges;
      Alcotest.test_case
        (L.name ^ ": contention stress, no UAF, no leak")
        `Slow test_concurrent_contention;
      Alcotest.test_case
        (L.name ^ ": single-key cycling (obstacle 3)")
        `Slow test_single_key_cycling;
      Alcotest.test_case
        (L.name ^ ": readers vs churn, no UAF")
        `Slow test_readers_vs_churn;
      Alcotest.test_case
        (L.name ^ ": live objects bounded under churn")
        `Slow test_live_objects_bounded;
    ]
end

