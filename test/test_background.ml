(* Background reclamation pipeline: transfer-channel semantics
   (bounded depth, refusal = backpressure, closed = degradation),
   neutralization (generation bump + pending-flag handshake, wake-up
   raising, quarantine interplay), per-scheme background drain modes,
   and the reclaimer fault-tolerance batteries (stalled-guard
   neutralization, kill-the-reclaimer). *)

open Util
open Atomicx

(* ------------------------------------------------------------------ *)
(* Channel *)

let test_channel_send_drain () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  let ch = Reclaim.Channel.create ~bound:100 () in
  let ran = ref [] in
  let send tag count =
    Reclaim.Channel.send ch ~tid ~count (fun ~tid:_ -> ran := tag :: !ran)
  in
  check_bool "send accepted" true (send `A 10);
  check_bool "second send accepted" true (send `B 20);
  check_int "depth counts objects, not jobs" 30 (Reclaim.Channel.depth ch);
  check_int "drain returns the object count" 30
    (Reclaim.Channel.drain ch ~tid);
  check_bool "jobs ran in send order" true (!ran = [ `B; `A ]);
  check_int "depth drained" 0 (Reclaim.Channel.depth ch);
  check_int "drain on empty is free" 0 (Reclaim.Channel.drain ch ~tid);
  check_int "sent counts objects" 30 (Reclaim.Channel.sent ch);
  check_int "drained counts objects" 30 (Reclaim.Channel.drained ch)

let test_channel_bound_and_close () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  let ch = Reclaim.Channel.create ~bound:32 () in
  let noop ~tid:_ = () in
  check_bool "fits the bound" true (Reclaim.Channel.send ch ~tid ~count:30 noop);
  check_bool "overflow refused" false
    (Reclaim.Channel.send ch ~tid ~count:3 noop);
  check_int "refusal counted as fallback" 1 (Reclaim.Channel.fallbacks ch);
  check_int "refused objects never entered" 30 (Reclaim.Channel.depth ch);
  Reclaim.Channel.close ch;
  check_bool "closed refuses even fitting sends" false
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_int "backlog still drainable after close" 30
    (Reclaim.Channel.drain ch ~tid);
  Reclaim.Channel.reopen ch;
  check_bool "reopen accepts again" true
    (Reclaim.Channel.send ch ~tid ~count:1 noop);
  check_int "reopened backlog" 1 (Reclaim.Channel.drain ch ~tid)

let test_channel_concurrent_senders () =
  let ch = Reclaim.Channel.create ~bound:max_int () in
  let n = 4 and per = 200 in
  run_domains_exn n (fun ~i:_ ~tid ->
      for _ = 1 to per do
        if not (Reclaim.Channel.send ch ~tid ~count:1 (fun ~tid:_ -> ()))
        then failwith "unbounded send refused"
      done);
  let tid = Registry.tid () in
  check_int "every concurrent send arrived" (n * per)
    (Reclaim.Channel.drain ch ~tid);
  check_int "depth zero after drain" 0 (Reclaim.Channel.depth ch)

(* ------------------------------------------------------------------ *)
(* Neutralization primitive *)

(* Park a registered domain, run [f vtid] against it from the main
   thread, then release and join.  [exit_clean] selects whether the
   victim acknowledges through an entry-point-free exit (pure
   [with_tid] return) or not — the quarantine path must clear the
   pending flag either way. *)
let with_parked_victim f =
  let victim_tid = Atomic.make (-1) in
  let release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Registry.with_tid (fun tid ->
            Atomic.set victim_tid tid;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while Atomic.get victim_tid < 0 do
    Domain.cpu_relax ()
  done;
  let r = f (Atomic.get victim_tid) in
  Atomic.set release true;
  Domain.join d;
  r

let test_neutralize_generation_bump () =
  Registry.reserve 1;
  let by = Registry.tid () in
  with_parked_victim (fun vtid ->
      Reclaim.Neutralize.arm ();
      Fun.protect ~finally:Reclaim.Neutralize.disarm (fun () ->
          let gen0 = Registry.generation vtid in
          check_bool "fire succeeds on an Active slot" true
            (Reclaim.Neutralize.fire ~by ~tid:vtid ~age:1 ());
          check_int "generation bumped" (gen0 + 1) (Registry.generation vtid);
          check_bool "slot stays in use" true (Registry.in_use vtid);
          check_bool "pending flag raised" true
            (Reclaim.Neutralize.is_pending ~tid:vtid)));
  (* the victim exited without touching any scheme entry point: the
     quarantine hook must have cleared the flag *)
  check_int "no pending flag survives quarantine" 0
    (Reclaim.Neutralize.pending_count ())

let test_neutralize_requires_active () =
  Registry.reserve 1;
  let by = Registry.tid () in
  Reclaim.Neutralize.arm ();
  Fun.protect ~finally:Reclaim.Neutralize.disarm (fun () ->
      (* a slot nobody holds is Free (or at least not Active): firing at
         it must refuse and leave no pending flag behind *)
      let free_tid = Registry.max_threads - 1 in
      if not (Registry.in_use free_tid) then begin
        check_bool "fire refused on a non-Active slot" false
          (Reclaim.Neutralize.fire ~by ~tid:free_tid ~age:1 ());
        check_bool "no pending flag left behind" false
          (Reclaim.Neutralize.is_pending ~tid:free_tid)
      end)

let test_check_raises_ack_silent () =
  Registry.reserve 1;
  let by = Registry.tid () in
  with_parked_victim (fun vtid ->
      Reclaim.Neutralize.arm ();
      Fun.protect ~finally:Reclaim.Neutralize.disarm (fun () ->
          let acked0 = Reclaim.Neutralize.acknowledgements () in
          check_bool "fire" true (Reclaim.Neutralize.fire ~by ~tid:vtid ~age:1 ());
          (match Reclaim.Neutralize.check ~tid:vtid with
          | () -> Alcotest.fail "check must raise on a pending flag"
          | exception Reclaim.Neutralize.Neutralized t ->
              check_int "exception names the victim" vtid t);
          check_bool "check consumed the flag" false
            (Reclaim.Neutralize.is_pending ~tid:vtid);
          check_int "check acknowledged" (acked0 + 1)
            (Reclaim.Neutralize.acknowledgements ());
          (* a second check is silent: flag already consumed *)
          Reclaim.Neutralize.check ~tid:vtid;
          (* ack path: refire, then consume silently *)
          check_bool "refire" true
            (Reclaim.Neutralize.fire ~by ~tid:vtid ~age:1 ());
          Reclaim.Neutralize.ack ~tid:vtid;
          check_bool "ack consumed the flag" false
            (Reclaim.Neutralize.is_pending ~tid:vtid)))

let test_disarmed_is_inert () =
  Registry.reserve 1;
  let tid = Registry.tid () in
  check_bool "not armed" false (Reclaim.Neutralize.enabled ());
  (* with no reclaimer armed, checks never raise even if a stale flag
     existed — the armed refcount gates the whole handshake *)
  Reclaim.Neutralize.check ~tid;
  Reclaim.Neutralize.ack ~tid

(* ------------------------------------------------------------------ *)
(* Scheme background drain + wake-after-neutralize handshake *)

type bnode = { hdr : Memdom.Hdr.t; mutable payload : int }

module BN = struct
  type t = bnode

  let hdr n = n.hdr
end

let _read_payload n =
  Memdom.Hdr.check_access n.hdr;
  n.payload

module Hp = Reclaim.Hp.Make (BN)

(* Background drain, manual scheme: retires routed through the channel
   are reclaimed by the reclaimer domain; stopping the reclaimer and
   flushing accounts for every object. *)
let test_hp_background_drain () =
  let alloc = Memdom.Alloc.create "bg-hp" in
  let s = Hp.create ~max_hps:4 alloc in
  let ch = Reclaim.Channel.create () in
  let reclaimer = Reclaim.Reclaimer.start ~interval:0.001 ch in
  Hp.set_background s (Some ch);
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let table = Array.init 4 (fun i -> Link.make (Link.Ptr (mk i))) in
  run_domains_exn 3 (fun ~i ~tid ->
      let rng = Rng.create (0xB0 + i) in
      for k = 1 to 500 do
        Hp.begin_op s ~tid;
        let n = mk k in
        Hp.protect_raw s ~tid ~idx:0 (Some n);
        let old = Link.exchange table.(Rng.int rng 4) (Link.Ptr n) in
        Hp.end_op s ~tid;
        match Link.target old with
        | Some o -> Hp.retire s ~tid o
        | None -> ()
      done);
  Reclaim.Reclaimer.stop reclaimer;
  check_bool "reclaimer exited" false (Reclaim.Reclaimer.alive reclaimer);
  check_bool "reclaimer made passes" true
    (Reclaim.Reclaimer.passes reclaimer > 0);
  check_int "stopped channel holds nothing" 0 (Reclaim.Channel.depth ch);
  Hp.set_background s None;
  let tid = Registry.tid () in
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Hp.retire s ~tid n
      | None -> ())
    table;
  Hp.flush s;
  check_int "no object leaked through the pipeline" 0
    (Memdom.Alloc.live alloc);
  check_int "unreclaimed zero" 0 (Hp.unreclaimed s)

(* Neutralize-vs-orphan interplay: a victim neutralized mid-guard with
   a retired backlog then dies without touching another entry point.
   The quarantine path must still publish its backlog to the orphan
   pool (adopted by a survivor's next scan), the pending flag must be
   cleared by quarantine rather than leaking onto the tid's next
   owner, and nothing may be freed twice. *)
let test_neutralize_orphan_interplay () =
  let alloc = Memdom.Alloc.create "bg-orphan" in
  let s = Hp.create ~max_hps:4 alloc in
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let hot = Link.make (Link.Ptr (mk 0)) in
  let by = Registry.tid () in
  Reclaim.Neutralize.arm ();
  Fun.protect ~finally:Reclaim.Neutralize.disarm (fun () ->
      let victim_tid = Atomic.make (-1) in
      let release = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Registry.with_tid (fun tid ->
                Hp.begin_op s ~tid;
                ignore (Hp.get_protected s ~tid ~idx:0 hot);
                (* a backlog below the scan threshold: stays parked on
                   the retired list until quarantine publishes it *)
                for j = 1 to 8 do
                  Hp.retire s ~tid (mk (-j))
                done;
                Atomic.set victim_tid tid;
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done
                (* dies here: no end_op, no ack — the exit path owns
                   both the orphan hand-off and the flag *)))
      in
      while Atomic.get victim_tid < 0 do
        Domain.cpu_relax ()
      done;
      let vtid = Atomic.get victim_tid in
      check_bool "fire" true (Reclaim.Neutralize.fire ~by ~tid:vtid ~age:1 ());
      Atomic.set release true;
      Domain.join d;
      check_int "quarantine cleared the pending flag" 0
        (Reclaim.Neutralize.pending_count ());
      check_bool "backlog published for adoption" true (Hp.orphaned s > 0);
      (* a survivor's scan adopts the orphans; flush plays that role *)
      (match Link.target (Link.exchange hot Link.Null) with
      | Some n -> Hp.retire s ~tid:by n
      | None -> ());
      Hp.flush s;
      check_int "orphans adopted" 0 (Hp.orphaned s);
      check_int "no leak, no double free" 0 (Memdom.Alloc.live alloc))

(* Automatic scheme: orc guards under a background reclaimer.  The
   channel carries BRETIRED batches; stop + flush accounts for every
   node including cascades through the structure's links. *)
type onode = { hdr : Memdom.Hdr.t; ov : int; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let _read_ov n =
  Memdom.Hdr.check_access n.hdr;
  n.ov

let test_orc_background_drain () =
  let alloc = Memdom.Alloc.create "bg-orc" in
  let o = O.create alloc in
  let ch = Reclaim.Channel.create () in
  let reclaimer = Reclaim.Reclaimer.start ~interval:0.001 ch in
  O.set_background o (Some ch);
  let amk v hdr = { hdr; ov = v; next = Link.make Link.Null } in
  let table = Array.init 4 (fun _ -> Link.make Link.Null) in
  run_domains_exn 3 (fun ~i ~tid:_ ->
      let rng = Rng.create (0x0C + i) in
      for k = 1 to 400 do
        O.with_guard o (fun g ->
            let slot = table.(Rng.int rng 4) in
            let p = O.ptr g in
            O.load g slot p;
            let np = O.alloc_node g (amk k) in
            O.store g slot (O.Ptr.state np))
      done);
  Reclaim.Reclaimer.stop reclaimer;
  O.set_background o None;
  O.with_guard o (fun g ->
      Array.iter (fun slot -> O.store g slot Link.Null) table);
  O.flush o;
  check_int "orc background pipeline leaked nothing" 0
    (Memdom.Alloc.live alloc);
  check_int "orc unreclaimed zero" 0 (O.unreclaimed o)

(* ------------------------------------------------------------------ *)
(* Batteries *)

let test_neutralize_battery () =
  let r = Chaos.run_neutralize () in
  if not (Chaos.bg_ok r) then
    Alcotest.fail (Format.asprintf "%a" Chaos.pp_bg_report r);
  check_bool "victim was neutralized" true r.Chaos.bg_neutralized;
  check_bool "waking victim raised Neutralized" true r.Chaos.bg_victim_raised;
  check_bool "pinned node freed with victim still parked" true
    r.Chaos.bg_pinned_freed;
  check_bool "pipeline carried batches" true (r.Chaos.bg_sent > 0)

let test_reclaimer_kill_battery () =
  let r = Chaos.run_reclaimer_kill () in
  if not (Chaos.bg_ok r) then
    Alcotest.fail (Format.asprintf "%a" Chaos.pp_bg_report r);
  check_int "kill battery leaked nothing" 0 r.Chaos.bg_leaked;
  check_bool "degradation observed: inline fallbacks or recovered backlog"
    true
    (r.Chaos.bg_fallbacks > 0 || r.Chaos.bg_recovered > 0)

let suite =
  [
    ( "background",
      [
        Alcotest.test_case "channel: send/drain order and depth" `Quick
          test_channel_send_drain;
        Alcotest.test_case "channel: bound refusal, close, reopen" `Quick
          test_channel_bound_and_close;
        Alcotest.test_case "channel: concurrent senders" `Quick
          test_channel_concurrent_senders;
        Alcotest.test_case "neutralize: generation bump + quarantine clears"
          `Quick test_neutralize_generation_bump;
        Alcotest.test_case "neutralize: refuses non-Active slots" `Quick
          test_neutralize_requires_active;
        Alcotest.test_case "neutralize: check raises, ack is silent" `Quick
          test_check_raises_ack_silent;
        Alcotest.test_case "neutralize: disarmed handshake is inert" `Quick
          test_disarmed_is_inert;
        Alcotest.test_case "hp: background drain leaks nothing" `Quick
          test_hp_background_drain;
        Alcotest.test_case "hp: neutralize vs orphan adoption" `Quick
          test_neutralize_orphan_interplay;
        Alcotest.test_case "orc: background drain leaks nothing" `Quick
          test_orc_background_drain;
        Alcotest.test_case "battery: stalled guard neutralized" `Slow
          test_neutralize_battery;
        Alcotest.test_case "battery: reclaimer killed mid-run" `Slow
          test_reclaimer_kill_battery;
      ] );
  ]
