(* Observability subsystem tests: ring wraparound and concurrent
   snapshot soundness, null-sink zero-cost, histogram quantiles, JSON
   parsing, Chrome-trace export/validation, and the unified scheme
   stats counters. *)

open Util
open Atomicx

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:8 () in
  let tid = Registry.tid () in
  for i = 0 to 19 do
    Obs.Ring.emit r ~tid ~ts:i ~kind:Obs.Event.Alloc ~uid:i ~arg:(2 * i)
  done;
  check_int "emitted counts every event" 20 (Obs.Ring.emitted r ~tid);
  let snap = Obs.Ring.snapshot r ~tid in
  (* a wrapped snapshot yields capacity - 1 entries: the slot aliasing
     the writer's possible in-flight emit is conservatively dropped *)
  check_int "snapshot capped at capacity" 7 (Array.length snap);
  Array.iteri
    (fun k (e : Obs.Event.t) ->
      check_int "seq is the suffix" (13 + k) e.seq;
      check_int "uid survived the wrap" e.seq e.uid;
      check_int "ts survived the wrap" e.seq e.ts;
      check_int "arg survived the wrap" (2 * e.seq) e.arg)
    snap

let test_ring_capacity_validation () =
  Alcotest.check_raises "capacity must be a power of two"
    (Invalid_argument "Obs.Ring.create: capacity must be a positive power of two")
    (fun () -> ignore (Obs.Ring.create ~capacity:3 ()))

(* One writer emits [ts = uid = seq] as fast as it can; a concurrent
   reader snapshots throughout.  Every snapshot must be an untorn,
   gap-free, monotonically-timestamped suffix: contiguous seqs with
   [uid = ts = seq] (a torn entry would mix fields of two seqs). *)
let test_ring_concurrent_snapshot () =
  let r = Obs.Ring.create ~capacity:64 () in
  let writer_tid = Atomic.make (-1) in
  let done_ = Atomic.make false in
  let n = 50_000 in
  let check_snapshot snap =
    Array.iteri
      (fun k (e : Obs.Event.t) ->
        if e.uid <> e.seq || e.ts <> e.seq then
          Alcotest.failf "torn entry: seq=%d uid=%d ts=%d" e.seq e.uid e.ts;
        if k > 0 && e.seq <> snap.(k - 1).Obs.Event.seq + 1 then
          Alcotest.failf "gap: seq %d after %d" e.seq snap.(k - 1).Obs.Event.seq)
      snap
  in
  run_domains_exn 2 (fun ~i ~tid ->
      if i = 0 then begin
        Atomic.set writer_tid tid;
        for s = 0 to n - 1 do
          Obs.Ring.emit r ~tid ~ts:s ~kind:Obs.Event.Retire ~uid:s ~arg:0
        done;
        Atomic.set done_ true
      end
      else begin
        let wtid = ref (Atomic.get writer_tid) in
        while !wtid < 0 do
          Domain.cpu_relax ();
          wtid := Atomic.get writer_tid
        done;
        while not (Atomic.get done_) do
          check_snapshot (Obs.Ring.snapshot r ~tid:!wtid)
        done;
        let final = Obs.Ring.snapshot r ~tid:!wtid in
        check_snapshot final;
        check_int "final snapshot is full" 63 (Array.length final);
        check_int "final snapshot ends at the last event" (n - 1)
          final.(Array.length final - 1).Obs.Event.seq
      end)

(* ------------------------------------------------------------------ *)
(* Null sink: compiled-in hooks must cost one branch — no events, no
   allocation. *)

let test_null_sink_zero_cost () =
  let s = Obs.Sink.null in
  let tid = Registry.tid () in
  check_bool "is_null" true (Obs.Sink.is_null s);
  let spin () =
    for i = 1 to 1_000 do
      Obs.Sink.on_alloc s ~tid ~uid:i;
      let ts = Obs.Sink.on_retire s ~tid ~uid:i in
      Obs.Sink.on_free s ~tid ~uid:i ~retired_ns:ts;
      Obs.Sink.on_handover s ~tid ~uid:i;
      Obs.Sink.on_cascade s ~tid ~uid:i;
      Obs.Sink.on_recycle s ~tid ~uid:i ~gen:i;
      Obs.Sink.on_refill s ~tid ~count:i;
      Obs.Sink.guard_begin s ~tid;
      Obs.Sink.guard_end s ~tid;
      let began = Obs.Sink.scan_begin s in
      Obs.Sink.scan_end s ~tid ~slots:3 ~began
    done
  in
  spin () (* warm up: promote any one-time allocation out of the meter *);
  let before = Gc.minor_words () in
  spin ();
  let after = Gc.minor_words () in
  check_bool
    (Printf.sprintf "null hooks allocate nothing (%.0f words)"
       (after -. before))
    true
    (after -. before = 0.);
  check_bool "no events" true (Obs.Sink.events s = []);
  check_bool "no hists" true (Obs.Sink.hists s = [])

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_hist_buckets () =
  check_int "bucket_of 0" 0 (Obs.Hist.bucket_of 0);
  check_int "bucket_of 1" 0 (Obs.Hist.bucket_of 1);
  check_int "bucket_of 2" 1 (Obs.Hist.bucket_of 2);
  check_int "bucket_of 1000" 9 (Obs.Hist.bucket_of 1000);
  check_int "bucket_floor 0" 0 (Obs.Hist.bucket_floor 0);
  check_int "bucket_floor 9" 512 (Obs.Hist.bucket_floor 9)

let test_hist_quantiles () =
  let h = Obs.Hist.create () in
  let tid = Registry.tid () in
  for _ = 1 to 100 do
    Obs.Hist.record h ~tid 1_000
  done;
  Obs.Hist.record h ~tid 1_000_000;
  let r = Obs.Hist.report h in
  check_int "count" 101 r.Obs.Hist.count;
  check_int "p50 is the common bucket's floor" 512 r.Obs.Hist.p50;
  check_int "p99 still inside the common bucket" 512 r.Obs.Hist.p99;
  check_int "max is exact" 1_000_000 r.Obs.Hist.max;
  check_bool "mean between the modes" true
    (r.Obs.Hist.mean > 1_000. && r.Obs.Hist.mean < 1_000_000.)

let test_hist_merges_shards () =
  let h = Obs.Hist.create () in
  run_domains_exn 4 (fun ~i:_ ~tid ->
      for _ = 1 to 1_000 do
        Obs.Hist.record h ~tid 64
      done);
  check_int "all shards merged" 4_000 (Obs.Hist.count h)

let test_hist_empty_report () =
  let h = Obs.Hist.create () in
  let r = Obs.Hist.report h in
  check_int "count" 0 r.Obs.Hist.count;
  check_int "p50" 0 r.Obs.Hist.p50;
  check_int "p99" 0 r.Obs.Hist.p99;
  check_int "p999" 0 r.Obs.Hist.p999;
  check_int "max" 0 r.Obs.Hist.max;
  check_bool "mean" true (r.Obs.Hist.mean = 0.);
  check_bool "no buckets" true (r.Obs.Hist.by_bucket = [])

let test_hist_single_sample () =
  let h = Obs.Hist.create () in
  Obs.Hist.record h ~tid:(Registry.tid ()) 777;
  let r = Obs.Hist.report h in
  (* the one sample occupies the top bucket, so every quantile
     interpolates all the way to the exact recorded value *)
  check_int "count" 1 r.Obs.Hist.count;
  check_int "p50 is exact" 777 r.Obs.Hist.p50;
  check_int "p99 is exact" 777 r.Obs.Hist.p99;
  check_int "p999 is exact" 777 r.Obs.Hist.p999;
  check_int "max" 777 r.Obs.Hist.max

let test_hist_negative_clamp () =
  let h = Obs.Hist.create () in
  let tid = Registry.tid () in
  Obs.Hist.record h ~tid (-5);
  Obs.Hist.record h ~tid min_int;
  let r = Obs.Hist.report h in
  check_int "count" 2 r.Obs.Hist.count;
  check_int "clamped to 0" 0 r.Obs.Hist.max;
  check_int "p50 0" 0 r.Obs.Hist.p50;
  check_bool "one bucket at floor 0" true (r.Obs.Hist.by_bucket = [ (0, 2) ])

(* The saturation fix: a distribution living entirely in its top bucket
   must not pin every upper quantile at the bucket floor (2^20 here). *)
let test_hist_top_bucket_quantiles () =
  let h = Obs.Hist.create () in
  let tid = Registry.tid () in
  for _ = 1 to 1_000 do
    Obs.Hist.record h ~tid 1_500_000
  done;
  let r = Obs.Hist.report h in
  let floor = 1 lsl 20 in
  check_bool "p50 above the bucket floor" true (r.Obs.Hist.p50 > floor);
  check_bool "p99 above p50" true (r.Obs.Hist.p99 >= r.Obs.Hist.p50);
  check_bool "p999 above p99" true (r.Obs.Hist.p999 >= r.Obs.Hist.p99);
  check_bool "p999 within the recorded max" true
    (r.Obs.Hist.p999 <= r.Obs.Hist.max);
  check_int "max exact" 1_500_000 r.Obs.Hist.max;
  (* interpolation endpoints: rank 1000 of 1000 lands on the max *)
  check_bool "p999 close to max" true
    (r.Obs.Hist.max - r.Obs.Hist.p999 < (r.Obs.Hist.max - floor) / 100)

let test_hist_concurrent_record_report () =
  let h = Obs.Hist.create () in
  let per_domain = 20_000 in
  run_domains_exn 3 (fun ~i ~tid ->
      if i = 0 then
        (* reader: reports must never tear (count monotone, quantiles
           within the recorded range) while writers are mid-flight *)
        let last = ref 0 in
        for _ = 1 to 200 do
          let r = Obs.Hist.report h in
          if r.Obs.Hist.count < !last then
            Alcotest.failf "count went backwards: %d after %d"
              r.Obs.Hist.count !last;
          last := r.Obs.Hist.count;
          if r.Obs.Hist.count > 0 then begin
            if r.Obs.Hist.p999 > r.Obs.Hist.max then
              Alcotest.failf "p999 %d above max %d" r.Obs.Hist.p999
                r.Obs.Hist.max;
            if r.Obs.Hist.p50 > r.Obs.Hist.p999 then
              Alcotest.failf "p50 %d above p999 %d" r.Obs.Hist.p50
                r.Obs.Hist.p999
          end
        done
      else
        for k = 1 to per_domain do
          Obs.Hist.record h ~tid (k land 4095)
        done);
  check_int "all writer samples merged" (2 * per_domain) (Obs.Hist.count h)

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 42);
        ("b", Obs.Json.List [ Obs.Json.Null; Obs.Json.Bool true ]);
        ("c", Obs.Json.Str "quote\"back\\slash\nnl");
        ("d", Obs.Json.Float 2.5);
      ]
  in
  let j' = Obs.Json.of_string (Obs.Json.to_string j) in
  check_bool "roundtrip" true
    (Obs.Json.to_string j = Obs.Json.to_string j');
  (match Obs.Json.member "a" j' with
  | Some (Obs.Json.Int 42) -> ()
  | _ -> Alcotest.fail "member lookup");
  check_bool "missing member" true (Obs.Json.member "zz" j' = None);
  match Obs.Json.of_string "{\"unterminated\": tru" with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

(* ------------------------------------------------------------------ *)
(* Trace export *)

(* A deterministic active sink driven through the public hooks. *)
let fake_clock () =
  let t = ref 0 in
  fun () ->
    incr t;
    !t * 100

let test_trace_export_validates () =
  let s = Obs.Sink.make ~capacity:64 ~clock:(fake_clock ()) () in
  let tid = Registry.tid () in
  Obs.Sink.guard_begin s ~tid;
  Obs.Sink.on_alloc s ~tid ~uid:1;
  let ts = Obs.Sink.on_retire s ~tid ~uid:1 in
  check_bool "retire returns a timestamp" true (ts > 0);
  let began = Obs.Sink.scan_begin s in
  Obs.Sink.scan_end s ~tid ~slots:5 ~began;
  Obs.Sink.on_free s ~tid ~uid:1 ~retired_ns:ts;
  Obs.Sink.guard_end s ~tid;
  (* an unterminated guard: the exporter must close it *)
  Obs.Sink.guard_begin s ~tid;
  let doc = Obs.Trace.to_json ~process_name:"test" s in
  (match Obs.Trace.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "export should validate: %s" e);
  (* and it round-trips through the parser *)
  match Obs.Trace.validate (Obs.Json.of_string (Obs.Json.to_string doc)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reparsed export should validate: %s" e

let test_trace_validate_rejects () =
  let ev ph =
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str "guard");
        ("ph", Obs.Json.Str ph);
        ("ts", Obs.Json.Float 1.0);
        ("pid", Obs.Json.Int 1);
        ("tid", Obs.Json.Int 0);
      ]
  in
  (match Obs.Trace.validate (Obs.Trace.wrap [ ev "E" ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "E without B must be rejected");
  (match Obs.Trace.validate (Obs.Trace.wrap [ ev "B" ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unterminated B must be rejected");
  match Obs.Trace.validate (Obs.Json.Obj []) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing traceEvents must be rejected"

(* ------------------------------------------------------------------ *)
(* Unified scheme stats + sink plumbing through a real scheme. *)

type tnode = { hdr : Memdom.Hdr.t }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Hp = Reclaim.Hp.Make (TN)
module Ptp = Orc_core.Ptp.Make (TN)

let churn (type t) (module S : Reclaim.Scheme_intf.S
            with type node = tnode
             and type t = t) (s : t) alloc ~n =
  let tid = Registry.tid () in
  for _ = 1 to n do
    S.begin_op s ~tid;
    let node = { hdr = Memdom.Alloc.hdr alloc () } in
    let link = Link.make (Link.Ptr node) in
    ignore (S.get_protected s ~tid ~idx:0 link);
    Link.set link Link.Null;
    S.end_op s ~tid;
    S.retire s ~tid node
  done;
  S.flush s

let test_scheme_stats_hp () =
  let alloc = Memdom.Alloc.create "obs-stats-hp" in
  let s = Hp.create ~max_hps:4 alloc in
  churn (module Hp) s alloc ~n:2_000;
  let st = Hp.stats s in
  check_int "retires counted" 2_000 st.Reclaim.Scheme_intf.retires;
  check_int "frees counted" 2_000 st.Reclaim.Scheme_intf.frees;
  check_bool "scans happened" true (st.Reclaim.Scheme_intf.scans > 0);
  check_bool "scans visited slots" true
    (st.Reclaim.Scheme_intf.scan_slots >= st.Reclaim.Scheme_intf.scans);
  check_int "unreclaimed derives from the counters" 0 (Hp.unreclaimed s);
  let out = Format.asprintf "%a" Hp.pp_stats s in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  check_bool "pp_stats mentions retires" true (contains ~affix:"retires=2000" out)

(* The sink threaded through [create ?sink] sees retires, frees with
   latency samples, scans and guards from a real scheme run. *)
let test_scheme_sink_events () =
  let clock = fake_clock () in
  let sink = Obs.Sink.make ~capacity:(1 lsl 12) ~clock () in
  let alloc = Memdom.Alloc.create ~sink "obs-sink-ptp" in
  let s = Ptp.create ~max_hps:4 alloc in
  churn (module Ptp) s alloc ~n:500;
  let kinds = Hashtbl.create 8 in
  List.iter
    (Array.iter (fun (e : Obs.Event.t) ->
         Hashtbl.replace kinds e.kind
           (1 + Option.value ~default:0 (Hashtbl.find_opt kinds e.kind))))
    (Obs.Sink.events sink);
  let count k = Option.value ~default:0 (Hashtbl.find_opt kinds k) in
  check_bool "alloc events" true (count Obs.Event.Alloc > 0);
  check_bool "retire events" true (count Obs.Event.Retire > 0);
  check_bool "free events" true (count Obs.Event.Free > 0);
  check_bool "scan events" true (count Obs.Event.Scan > 0);
  check_bool "guard events" true (count Obs.Event.Guard_begin > 0);
  (match Obs.Sink.retire_free_hist sink with
  | Some h -> check_bool "retire->free latencies recorded" true
                (Obs.Hist.count h > 0)
  | None -> Alcotest.fail "active sink has hists");
  match Obs.Trace.validate (Obs.Trace.to_json sink) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scheme-driven trace should validate: %s" e

(* Pool allocators report recycled hand-outs as Recycle instead of
   Alloc, so trace tallies can compute the hit rate as
   recycle / (alloc + recycle). *)
let test_pool_sink_events () =
  let sink = Obs.Sink.make () in
  let alloc = Memdom.Alloc.create ~mode:Memdom.Alloc.Pool ~sink "obs-pool" in
  let h = Memdom.Alloc.hdr alloc () in
  Memdom.Alloc.free alloc h;
  let h2 = Memdom.Alloc.hdr alloc () in
  let kinds = Hashtbl.create 8 in
  List.iter
    (Array.iter (fun (e : Obs.Event.t) ->
         Hashtbl.replace kinds e.kind
           (1 + Option.value ~default:0 (Hashtbl.find_opt kinds e.kind))))
    (Obs.Sink.events sink);
  let count k = Option.value ~default:0 (Hashtbl.find_opt kinds k) in
  check_int "one fresh alloc event" 1 (count Obs.Event.Alloc);
  check_int "one recycle event instead of a second alloc" 1
    (count Obs.Event.Recycle);
  check_int "one free event" 1 (count Obs.Event.Free);
  let recycle_ev =
    List.concat_map Array.to_list (Obs.Sink.events sink)
    |> List.find (fun (e : Obs.Event.t) -> e.kind = Obs.Event.Recycle)
  in
  check_int "recycle carries the new uid" h2.Memdom.Hdr.uid recycle_ev.uid;
  check_int "recycle arg is the bumped generation"
    (Memdom.Hdr.generation h2) recycle_ev.arg

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "ring capacity validation" `Quick
          test_ring_capacity_validation;
        Alcotest.test_case "ring concurrent snapshot" `Quick
          test_ring_concurrent_snapshot;
        Alcotest.test_case "null sink costs nothing" `Quick
          test_null_sink_zero_cost;
        Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
        Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
        Alcotest.test_case "hist merges shards" `Quick test_hist_merges_shards;
        Alcotest.test_case "hist empty report" `Quick test_hist_empty_report;
        Alcotest.test_case "hist single sample" `Quick test_hist_single_sample;
        Alcotest.test_case "hist negative clamp" `Quick
          test_hist_negative_clamp;
        Alcotest.test_case "hist top-bucket quantiles" `Quick
          test_hist_top_bucket_quantiles;
        Alcotest.test_case "hist concurrent record/report" `Quick
          test_hist_concurrent_record_report;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "trace export validates" `Quick
          test_trace_export_validates;
        Alcotest.test_case "trace validate rejects" `Quick
          test_trace_validate_rejects;
        Alcotest.test_case "scheme stats (hp)" `Quick test_scheme_stats_hp;
        Alcotest.test_case "scheme sink events (ptp)" `Quick
          test_scheme_sink_events;
        Alcotest.test_case "pool recycle/refill events" `Quick
          test_pool_sink_events;
      ] );
  ]
