let () =
  Alcotest.run "orcgc"
    (Test_atomicx.suite @ Test_memdom.suite @ Test_reclaim.suite
   @ Test_orc.suite @ Test_queues.suite @ Test_lists.suite @ Test_trees.suite @ Test_skiplists.suite @ Test_harness.suite @ Test_extras.suite @ Test_whitebox.suite @ Test_faults.suite @ Test_orc_hp.suite @ Test_obs.suite
   @ Test_scan.suite @ Test_chaos.suite)
