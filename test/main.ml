let () =
  (* ORCGC_PACKED=0 runs the whole suite under the boxed ablation
     (CAS-loop header transitions, boxed link states): the packing is
     an optimization, so every test must pass in both settings.  Tests
     that pin the knobs themselves (test_pack, parts of test_scan) are
     unaffected. *)
  (match Sys.getenv_opt "ORCGC_PACKED" with
  | Some ("0" | "false") ->
      Memdom.Hdr.packed := false;
      Atomicx.Link.tagged := false
  | Some _ | None -> ());
  Alcotest.run "orcgc"
    (Test_atomicx.suite @ Test_memdom.suite @ Test_reclaim.suite
   @ Test_orc.suite @ Test_queues.suite @ Test_lists.suite @ Test_trees.suite @ Test_skiplists.suite @ Test_harness.suite @ Test_extras.suite @ Test_whitebox.suite @ Test_faults.suite @ Test_orc_hp.suite @ Test_obs.suite @ Test_metrics.suite
   @ Test_scan.suite @ Test_pack.suite @ Test_background.suite
   @ Test_adaptive.suite @ Test_chaos.suite @ Test_split.suite)
