(* White-box tests: drive the PTP handover machinery and the OrcGC
   hazard-index allocator through exact scenarios by manipulating
   per-thread slots directly (the scheme APIs take explicit [~tid], so a
   single test thread can stage multi-thread configurations
   deterministically). *)

open Util
open Atomicx

type tnode = { hdr : Memdom.Hdr.t; mutable value : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Ptp = Orc_core.Ptp.Make (TN)

let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); value = v }

(* Algorithm 2's defining behaviour: a retired-but-protected object is
   *passed forward* through the protecting slots in scan order, and
   freed the moment the last protection disappears. *)
(* These tests stage slots for tids the suite never registers (e.g. 5,
   7).  The handover scan only covers [0, Registry.registered ()), so
   reserve the watermark explicitly rather than relying on earlier
   suites having registered enough domains. *)
let reserve_staged_tids () = Registry.reserve 8

let test_ptp_passes_the_pointer_forward () =
  reserve_staged_tids ();
  let alloc = Memdom.Alloc.create "ptp-wb" in
  let s = Ptp.create ~max_hps:4 alloc in
  let n = mk alloc 1 in
  (* protections in two distinct "threads" *)
  Ptp.protect_raw s ~tid:2 ~idx:1 (Some n);
  Ptp.protect_raw s ~tid:5 ~idx:0 (Some n);
  Ptp.retire s ~tid:0 n;
  check_bool "parked, not freed" false (Memdom.Hdr.is_freed n.hdr);
  check_int "pending" 1 (Ptp.unreclaimed s);
  (* drop the first protection: clear drains the handover and pushes the
     object forward to the remaining protector *)
  Ptp.clear s ~tid:2 ~idx:1;
  check_bool "still parked at the later protector" false
    (Memdom.Hdr.is_freed n.hdr);
  check_int "still pending" 1 (Ptp.unreclaimed s);
  (* drop the last protection: now it must be freed *)
  Ptp.clear s ~tid:5 ~idx:0;
  check_bool "freed at last clear" true (Memdom.Hdr.is_freed n.hdr);
  check_int "nothing pending" 0 (Ptp.unreclaimed s);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* The handover slot holds at most one object: retiring a second object
   protected by the same slot evicts the first, which continues its scan
   and, with no other protection, is freed. *)
let test_ptp_handover_eviction () =
  reserve_staged_tids ();
  let alloc = Memdom.Alloc.create "ptp-wb" in
  let s = Ptp.create ~max_hps:4 alloc in
  let a = mk alloc 1 and b = mk alloc 2 in
  Ptp.protect_raw s ~tid:3 ~idx:2 (Some a);
  Ptp.retire s ~tid:0 a;
  check_bool "a parked" false (Memdom.Hdr.is_freed a.hdr);
  (* repoint the hazard to b, then retire b: b parks, evicting a, and a
     (no longer protected) is freed by the continuing scan *)
  Ptp.protect_raw s ~tid:3 ~idx:2 (Some b);
  Ptp.retire s ~tid:0 b;
  check_bool "a freed by eviction" true (Memdom.Hdr.is_freed a.hdr);
  check_bool "b parked" false (Memdom.Hdr.is_freed b.hdr);
  check_int "one pending" 1 (Ptp.unreclaimed s);
  Ptp.clear s ~tid:3 ~idx:2;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* Linear-bound saturation: fill every slot of several threads with
   protected retired objects — pending equals the protected population,
   and one more unprotected retire still frees immediately. *)
let test_ptp_bound_saturation () =
  reserve_staged_tids ();
  let alloc = Memdom.Alloc.create "ptp-wb" in
  let hps = 3 in
  let s = Ptp.create ~max_hps:hps alloc in
  let tids = [ 1; 4; 7 ] in
  let nodes =
    List.concat_map
      (fun tid ->
        List.init hps (fun idx ->
            let n = mk alloc ((tid * 10) + idx) in
            Ptp.protect_raw s ~tid ~idx (Some n);
            Ptp.retire s ~tid:0 n;
            n))
      tids
  in
  check_int "every protected object parked"
    (List.length nodes)
    (Ptp.unreclaimed s);
  let extra = mk alloc 999 in
  Ptp.retire s ~tid:0 extra;
  check_bool "unprotected retire frees through a full park" true
    (Memdom.Hdr.is_freed extra.hdr);
  List.iter (fun tid -> Ptp.end_op s ~tid) tids;
  check_int "all reclaimed after clears" 0 (Ptp.unreclaimed s);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* ------------------------------------------------------------------ *)
(* OrcGC hazard-index management *)

type onode = { hdr : Memdom.Hdr.t; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let test_orc_index_exhaustion_raises () =
  let alloc = Memdom.Alloc.create "orc-wb" in
  let o = O.create alloc in
  O.with_guard o (fun g ->
      Alcotest.check_raises "more handles than slots"
        Orc_core.Orc.Out_of_hazard_indexes (fun () ->
          for _ = 1 to Orc_core.Orc.max_haz + 1 do
            ignore (O.ptr g)
          done))

let test_orc_indexes_recycle_across_guards () =
  let alloc = Memdom.Alloc.create "orc-wb" in
  let o = O.create alloc in
  (* many guards each taking many handles: if indexes leaked, this would
     exhaust the 64-slot array after two iterations *)
  for _ = 1 to 100 do
    O.with_guard o (fun g ->
        for _ = 1 to 40 do
          ignore (O.ptr g)
        done)
  done;
  check_bool "indexes recycled" true true

let test_orc_stats_counters () =
  let alloc = Memdom.Alloc.create "orc-wb" in
  let o = O.create alloc in
  let root = Link.make Link.Null in
  let mk hdr = { hdr; next = Link.make Link.Null } in
  (* build a chain of 100, then drop it: cascades must show up *)
  O.with_guard o (fun g ->
      let p = O.ptr g and q = O.ptr g in
      for _ = 1 to 100 do
        O.load g root q;
        let n = O.alloc_node_into g p mk in
        (match O.Ptr.state q with
        | Link.Null -> ()
        | st -> O.store g n.next st);
        O.store g root (Link.Ptr n)
      done);
  O.with_guard o (fun g -> O.store g root Link.Null);
  let st = O.stats o in
  check_bool "retires counted" true (st.O.retires >= 100);
  check_bool "cascade drained recursively" true (st.O.cascades >= 90);
  check_int "all reclaimed" 0 (Memdom.Alloc.live alloc);
  (* a pinned unlink must count a handover *)
  O.with_guard o (fun g ->
      let p = O.alloc_node g mk in
      O.store g root (O.Ptr.state p);
      let h = O.ptr g in
      O.load g root h;
      O.store g root Link.Null (* p pinned by h: parked via handover *));
  let st2 = O.stats o in
  check_bool "handover counted" true (st2.O.handovers > st.O.handovers);
  check_int "reclaimed after guard exit" 0 (Memdom.Alloc.live alloc)

(* The acceptance check for the bounded-scan rework: tryHandover's cost
   per invocation is [registered () * hazard_watermark] slots, not
   [max_threads * max_haz].  The counters are read after the run, and
   both [registered] and the watermark are monotone, so the product is a
   sound upper bound on every individual scan. *)
let test_orc_scan_cost_bounded () =
  let alloc = Memdom.Alloc.create "orc-wb" in
  let o = O.create alloc in
  let root = Link.make Link.Null in
  let mk hdr = { hdr; next = Link.make Link.Null } in
  O.with_guard o (fun g ->
      let p = O.ptr g and q = O.ptr g in
      for _ = 1 to 200 do
        O.load g root q;
        let n = O.alloc_node_into g p mk in
        (match O.Ptr.state q with
        | Link.Null -> ()
        | st -> O.store g n.next st);
        O.store g root (Link.Ptr n)
      done);
  O.with_guard o (fun g -> O.store g root Link.Null);
  let st = O.stats o in
  check_bool "retires drove scans" true (st.O.scans >= 200);
  let per_scan_bound = Registry.registered () * O.hazard_watermark o in
  check_bool
    (Printf.sprintf "scan slots %d <= scans %d * registered*watermark %d"
       st.O.scan_slots st.O.scans per_scan_bound)
    true
    (st.O.scan_slots <= st.O.scans * per_scan_bound);
  (* the old code visited max_threads rows per scan regardless of how
     many threads exist; the new cost must sit far below that *)
  check_bool
    (Printf.sprintf "scan slots %d < scans %d * max_threads %d"
       st.O.scan_slots st.O.scans Registry.max_threads)
    true
    (st.O.scan_slots < st.O.scans * Registry.max_threads);
  check_int "all reclaimed" 0 (Memdom.Alloc.live alloc)

(* ------------------------------------------------------------------ *)
(* Hdr lifecycle automaton vs a reference model *)

type model = MLive | MRetired | MFreed

let prop_hdr_matches_model =
  qtest ~count:200 "Hdr lifecycle = reference automaton"
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 2))
    (fun ops ->
      let a = Memdom.Alloc.create "hdr-model" in
      let h = Memdom.Alloc.hdr a () in
      let model = ref MLive in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              (* retire *)
              let expect_exn = !model <> MLive in
              match Memdom.Hdr.mark_retired h with
              | () ->
                  model := MRetired;
                  not expect_exn
              | exception (Memdom.Hdr.Double_retire _ | Memdom.Hdr.Use_after_free _)
                ->
                  expect_exn)
          | 1 -> (
              (* unretire *)
              let expect_exn = !model = MFreed in
              match Memdom.Hdr.unretire h with
              | () ->
                  if !model = MRetired then model := MLive;
                  not expect_exn
              | exception Memdom.Hdr.Use_after_free _ -> expect_exn)
          | _ -> (
              (* free *)
              let expect_exn = !model = MFreed in
              match Memdom.Alloc.free a h with
              | () ->
                  model := MFreed;
                  not expect_exn
              | exception Memdom.Hdr.Double_free _ -> expect_exn))
        ops)

let suite =
  [
    ( "whitebox",
      [
        Alcotest.test_case "ptp passes the pointer forward" `Quick
          test_ptp_passes_the_pointer_forward;
        Alcotest.test_case "ptp handover eviction" `Quick
          test_ptp_handover_eviction;
        Alcotest.test_case "ptp bound saturation" `Quick
          test_ptp_bound_saturation;
        Alcotest.test_case "orc index exhaustion raises" `Quick
          test_orc_index_exhaustion_raises;
        Alcotest.test_case "orc indexes recycle across guards" `Quick
          test_orc_indexes_recycle_across_guards;
        Alcotest.test_case "orc stats counters" `Quick test_orc_stats_counters;
        Alcotest.test_case "orc scan cost bounded by registered threads"
          `Quick test_orc_scan_cost_bounded;
        prop_hdr_matches_model;
      ] );
  ]
