(* Split-ordered map invariants: the so-key encoding (bit-reversal
   round trip, split-ordering of dummies vs regular keys), the shared
   set battery over three schemes, dummy-node-never-retired, and
   grow-under-churn across multiple doublings with exact leak
   accounting.  The chaos battery (domain killed mid-grow) lives in
   Chaos.run_split_grow and is driven from test_chaos. *)

open Util
open Set_battery
module So = Ds.Split_order

module Sm_hp = Ds.Split_map.Make (Reclaim.Hp.Make)
module Sm_ebr = Ds.Split_map.Make (Reclaim.Ebr.Make)
module Sm_orc = Ds.Orc_split_map.Make ()
module Sm_orc_hp = Ds.Orc_split_map.Make_hp ()

module B_hp = Battery (struct let name = "splitmap-hp" end) (Sm_hp)
module B_ebr = Battery (struct let name = "splitmap-ebr" end) (Sm_ebr)
module B_orc = Battery (struct let name = "splitmap-orc" end) (Sm_orc)
module B_orc_hp = Battery (struct let name = "splitmap-orc-hp" end) (Sm_orc_hp)

(* {2 so-key encoding} *)

let test_rev60_roundtrip () =
  let cases = [ 0; 1; 2; 3; 0xff; 0xdeadbeef; So.max_key; So.max_key - 1 ] in
  List.iter
    (fun h -> check_int "rev60 involution" h (So.rev60 (So.rev60 h)))
    cases;
  check_int "rev60 0" 0 (So.rev60 0);
  check_int "rev60 1 = msb" (1 lsl (So.hash_bits - 1)) (So.rev60 1)

let prop_rev60_roundtrip =
  qtest "rev60 is an involution on the 60-bit domain"
    QCheck2.Gen.(int_range 0 So.max_key)
    (fun h -> So.rev60 (So.rev60 h) = h)

let prop_split_ordering =
  (* For every key and table size: the key's bucket dummy precedes it,
     and the dummy that splits the bucket at the doubled size falls on
     the correct side of the key — the invariant that makes directory
     doubling sound without moving any node. *)
  qtest "dummies split buckets in so-key order"
    QCheck2.Gen.(pair (int_range 0 So.max_key) (int_range 1 19))
    (fun (key, log_size) ->
      let size = 1 lsl log_size in
      let h = So.hash key in
      let b = So.bucket_of ~hash:h ~size in
      let so = So.regular h in
      let split = b + size in
      let splits_left = So.bucket_of ~hash:h ~size:(2 * size) = b in
      So.dummy b < so
      && (if splits_left then so < So.dummy split else so > So.dummy split)
      && (b = 0 || So.dummy (So.parent b) < So.dummy b))

let prop_so_keys_unique =
  qtest "distinct keys have distinct so-keys"
    QCheck2.Gen.(pair (int_range 0 So.max_key) (int_range 0 So.max_key))
    (fun (a, b) ->
      a = b || So.regular (So.hash a) <> So.regular (So.hash b))

(* {2 dummy-node-never-retired} *)

let test_dummy_never_retired () =
  let s = Sm_hp.create () in
  let keys = 600 in
  for k = 1 to keys do
    ignore (Sm_hp.add s k)
  done;
  check_bool "grew" true (Sm_hp.buckets s > Ds.Split_map.initial_buckets);
  for k = 1 to keys do
    ignore (Sm_hp.remove s k)
  done;
  Sm_hp.flush s;
  let st = Sm_hp.stats s in
  (* every retire was a successful remove: no dummy ever retired *)
  check_int "retires = removes" keys st.Reclaim.Scheme_intf.retires;
  check_bool "empty but structure intact" true (Sm_hp.to_list s = []);
  check_bool "invariant holds with all dummies in place" true
    (Sm_hp.invariant s);
  (* live objects now = the dummies + tail, all freed only by destroy *)
  check_bool "dummies still live" true (Memdom.Alloc.live (Sm_hp.alloc s) > 0);
  Sm_hp.destroy s;
  Sm_hp.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Sm_hp.alloc s))

(* {2 grow under churn} *)

let grow_under_churn (type t) (module M : Ds.Orc_split_map.MAP with type t = t)
    name =
  let s = M.create () in
  let domains = 4 and span = 3_000 and iters = 6_000 in
  run_domains_exn domains (fun ~i ~tid:_ ->
      let rng = Atomicx.Rng.create ((i + 1) * 7919) in
      for _ = 1 to iters do
        let k = 1 + Atomicx.Rng.int rng span in
        match Atomicx.Rng.int rng 4 with
        | 0 | 1 -> ignore (M.add s k)
        | 2 -> ignore (M.remove s k)
        | _ -> ignore (M.contains s k)
      done);
  (* enough inserts survive that the table must have doubled ≥ 3× *)
  check_bool
    (name ^ ": >= 3 doublings")
    true
    (M.grows s >= 3 && M.buckets s >= 8 * Ds.Orc_split_map.initial_buckets);
  check_bool (name ^ ": invariant after storm") true (M.invariant s);
  let l = M.to_list s in
  check_bool (name ^ ": sorted strictly increasing") true
    (List.sort_uniq compare l = l);
  M.destroy s;
  M.flush s;
  check_int (name ^ ": no leak") 0 (Memdom.Alloc.live (M.alloc s));
  check_int (name ^ ": nothing unreclaimed") 0 (M.unreclaimed s)

let test_grow_under_churn_orc () =
  grow_under_churn (module Sm_orc) "splitmap-orc"

let test_grow_under_churn_hp () =
  grow_under_churn (module Sm_hp) "splitmap-hp"

(* {2 load-factor knob drives the grow policy} *)

let test_load_factor_knob () =
  (* a high load factor defers growth; the default grows eagerly *)
  let lazy_map = Sm_hp.create () in
  Reclaim.Tuning.set_load_factor (Sm_hp.tuning lazy_map) 64;
  for k = 1 to 500 do
    ignore (Sm_hp.add lazy_map k)
  done;
  let eager = Sm_hp.create () in
  for k = 1 to 500 do
    ignore (Sm_hp.add eager k)
  done;
  check_bool "higher load factor => fewer buckets" true
    (Sm_hp.buckets lazy_map < Sm_hp.buckets eager);
  List.iter
    (fun s ->
      Sm_hp.destroy s;
      Sm_hp.flush s;
      check_int "no leak" 0 (Memdom.Alloc.live (Sm_hp.alloc s)))
    [ lazy_map; eager ]

let suite =
  [
    ( "split:encoding",
      [
        Alcotest.test_case "rev60 round trip (edges)" `Quick
          test_rev60_roundtrip;
        prop_rev60_roundtrip;
        prop_split_ordering;
        prop_so_keys_unique;
      ] );
    ("splitmap:hp", B_hp.cases);
    ("splitmap:ebr", B_ebr.cases);
    ("splitmap:orc", B_orc.cases);
    ("splitmap:orc-hp", B_orc_hp.cases);
    ( "split:invariants",
      [
        Alcotest.test_case "dummy nodes are never retired" `Slow
          test_dummy_never_retired;
        Alcotest.test_case "grow under churn (orc, 4 domains)" `Slow
          test_grow_under_churn_orc;
        Alcotest.test_case "grow under churn (hp, 4 domains)" `Slow
          test_grow_under_churn_hp;
        Alcotest.test_case "load-factor knob defers growth" `Quick
          test_load_factor_knob;
      ] );
  ]
