(* Queue tests, generic over reclamation scheme: the same battery runs on
   the Michael-Scott queue under HP, PTB, EBR, HE, PTP, Leak — and on the
   OrcGC queue, which has no retire calls at all. *)

open Util

module type QUEUE = sig
  type t

  val scheme_name : string
  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
  val destroy : t -> unit
  val unreclaimed : t -> int
  val flush : t -> unit
  val alloc : t -> Memdom.Alloc.t
end

module Int_item = struct
  type t = int
end

module Q_hp = Ds.Ms_queue.Make (Int_item) (Reclaim.Hp.Make)
module Q_ptb = Ds.Ms_queue.Make (Int_item) (Reclaim.Ptb.Make)
module Q_ebr = Ds.Ms_queue.Make (Int_item) (Reclaim.Ebr.Make)
module Q_he = Ds.Ms_queue.Make (Int_item) (Reclaim.He.Make)
module Q_ibr = Ds.Ms_queue.Make (Int_item) (Reclaim.Ibr.Make)
module Q_ptp = Ds.Ms_queue.Make (Int_item) (Orc_core.Ptp.Make)
module Q_leak = Ds.Ms_queue.Make (Int_item) (Reclaim.None_scheme.Leak)
module Q_orc = Ds.Orc_ms_queue.Make (Int_item)
module Q_kp = Ds.Orc_kp_queue.Make (Int_item)
module Q_lcrq_hp = Ds.Lcrq.Make (Int_item) (Reclaim.Hp.Make)
module Q_lcrq_ptp = Ds.Lcrq.Make (Int_item) (Orc_core.Ptp.Make)
module Q_lcrq_orc = Ds.Orc_lcrq.Make (Int_item)
module Q_turn = Ds.Orc_turn_queue.Make (Int_item)

module Battery (Q : QUEUE) = struct
  let test_fifo_sequential () =
    let q = Q.create () in
    check_bool "empty at start" true (Q.dequeue q = None);
    for i = 1 to 100 do
      Q.enqueue q i
    done;
    for i = 1 to 100 do
      check_bool "fifo order" true (Q.dequeue q = Some i)
    done;
    check_bool "empty at end" true (Q.dequeue q = None);
    Q.destroy q;
    check_int "no leak" 0 (Memdom.Alloc.live (Q.alloc q))

  let prop_matches_model =
    qtest ~count:60
      (Q.scheme_name ^ " queue matches FIFO model")
      QCheck2.Gen.(list_size (int_range 1 200) (int_range (-10) 100))
      (fun ops ->
        let q = Q.create () in
        let model = Queue.create () in
        let ok =
          List.for_all
            (fun op ->
              if op >= 0 then begin
                Q.enqueue q op;
                Queue.add op model;
                true
              end
              else
                let expected = Queue.take_opt model in
                Q.dequeue q = expected)
            ops
        in
        Q.destroy q;
        ok && Memdom.Alloc.live (Q.alloc q) = 0)

  let test_spsc_order () =
    let q = Q.create () in
    let n = 5_000 in
    run_domains_exn 2 (fun ~i ~tid:_ ->
        if i = 0 then
          for k = 1 to n do
            Q.enqueue q k
          done
        else begin
          let expected = ref 1 in
          while !expected <= n do
            match Q.dequeue q with
            | Some v ->
                if v <> !expected then
                  Alcotest.failf "out of order: got %d expected %d" v !expected;
                incr expected
            | None -> Domain.cpu_relax ()
          done
        end);
    Q.destroy q;
    check_int "no leak" 0 (Memdom.Alloc.live (Q.alloc q))

  let test_mpmc_conservation () =
    let q = Q.create () in
    let producers = 3 and consumers = 3 in
    let per_producer = 2_000 in
    let total = producers * per_producer in
    let received = Atomic.make 0 in
    let results =
      run_domains (producers + consumers) (fun ~i ~tid:_ ->
          if i < producers then begin
            for k = 0 to per_producer - 1 do
              Q.enqueue q ((i * per_producer) + k)
            done;
            []
          end
          else begin
            let mine = ref [] in
            while Atomic.get received < total do
              match Q.dequeue q with
              | Some v ->
                  ignore (Atomic.fetch_and_add received 1);
                  mine := v :: !mine
              | None -> Domain.cpu_relax ()
            done;
            !mine
          end)
    in
    let all = List.concat results |> List.sort_uniq compare in
    check_int "every item exactly once" total (List.length all);
    check_bool "drained" true (Q.dequeue q = None);
    Q.destroy q;
    check_int "no leak" 0 (Memdom.Alloc.live (Q.alloc q))

  (* Teardown with items still queued must not leak them. *)
  let test_destroy_nonempty () =
    let q = Q.create () in
    for i = 1 to 500 do
      Q.enqueue q i
    done;
    Q.destroy q;
    Q.flush q;
    check_int "no leak with items queued" 0 (Memdom.Alloc.live (Q.alloc q))

  (* Bursty producers/consumers: phases of pure enqueue then pure
     dequeue stress grow-then-shrink reclamation. *)
  let test_burst_phases () =
    let q = Q.create () in
    run_domains_exn 4 (fun ~i ~tid:_ ->
        for _phase = 1 to 5 do
          if i land 1 = 0 then
            for k = 1 to 300 do
              Q.enqueue q k
            done
          else
            for _ = 1 to 300 do
              ignore (Q.dequeue q)
            done
        done);
    let rec drain n = match Q.dequeue q with Some _ -> drain (n + 1) | None -> n in
    ignore (drain 0);
    Q.destroy q;
    Q.flush q;
    check_int "no leak after bursts" 0 (Memdom.Alloc.live (Q.alloc q))

  (* Steady-state memory: pairs of enq/deq must not accumulate nodes. *)
  let steady_state_run () =
    let q = Q.create () in
    let stop = Atomic.make false in
    let peak = ref 0 in
    let series = ref [] in
    let watcher =
      Domain.spawn (fun () ->
          let ticks = ref 0 in
          while not (Atomic.get stop) do
            let l = Memdom.Alloc.live (Q.alloc q) in
            if l > !peak then peak := l;
            incr ticks;
            if !ticks land 1023 = 0 then series := l :: !series;
            Domain.cpu_relax ()
          done)
    in
    run_domains_exn 2 (fun ~i:_ ~tid:_ ->
        for k = 1 to 5_000 do
          Q.enqueue q k;
          ignore (Q.dequeue q)
        done);
    Atomic.set stop true;
    Domain.join watcher;
    Q.destroy q;
    Q.flush q;
    check_int "no leak" 0 (Memdom.Alloc.live (Q.alloc q));
    (!peak, List.rev !series)

  let steady_state_peak () = fst (steady_state_run ())

  let test_steady_state_bounded () =
    let peak = steady_state_peak () in
    (* the Leak control is the negative witness that this check bites:
       it must blow straight through the bound the real schemes obey *)
    if Q.scheme_name = "leak" then
      check_bool
        (Printf.sprintf "leak control unbounded (peak %d)" peak)
        true (peak > 4_096)
    else begin
      (* a blown bound gets one traced retry; see [Util.trace_retry] *)
      let peak =
        trace_retry
          ~name:("msq-" ^ Q.scheme_name)
          ~bound:4_096 ~first:peak steady_state_run
      in
      check_bool
        (Printf.sprintf "peak live %d bounded (not O(ops))" peak)
        true (peak < 4_096)
    end

  let cases =
    [
      Alcotest.test_case (Q.scheme_name ^ ": fifo sequential") `Quick
        test_fifo_sequential;
      prop_matches_model;
      Alcotest.test_case (Q.scheme_name ^ ": spsc order") `Slow test_spsc_order;
      Alcotest.test_case
        (Q.scheme_name ^ ": mpmc conservation + leak-free")
        `Slow test_mpmc_conservation;
      Alcotest.test_case
        (Q.scheme_name ^ ": destroy while non-empty")
        `Quick test_destroy_nonempty;
      Alcotest.test_case (Q.scheme_name ^ ": burst phases") `Slow
        test_burst_phases;
      Alcotest.test_case
        (Q.scheme_name ^ ": steady-state memory bounded")
        `Slow test_steady_state_bounded;
    ]
end

module B_hp = Battery (Q_hp)
module B_ptb = Battery (Q_ptb)
module B_ebr = Battery (Q_ebr)
module B_he = Battery (Q_he)
module B_ibr = Battery (Q_ibr)
module B_ptp = Battery (Q_ptp)
module B_leak = Battery (Q_leak)
module B_orc = Battery (Q_orc)

module B_kp = Battery (struct
  include Q_kp

  let scheme_name = "kp-orc"
end)

module B_lcrq_hp = Battery (struct
  include Q_lcrq_hp

  let scheme_name = "lcrq-hp"
end)

module B_lcrq_ptp = Battery (struct
  include Q_lcrq_ptp

  let scheme_name = "lcrq-ptp"
end)

module B_lcrq_orc = Battery (struct
  include Q_lcrq_orc

  let scheme_name = "lcrq-orc"
end)

module B_turn = Battery (struct
  include Q_turn

  let scheme_name = "turn-orc"
end)

(* OrcGC-specific: the queue reclaims as it goes — after a large run the
   number of unreclaimed nodes must stay small, not grow with the run. *)
let test_orc_queue_reclaims_inline () =
  let q = Q_orc.create () in
  for i = 1 to 10_000 do
    Q_orc.enqueue q i;
    ignore (Q_orc.dequeue q)
  done;
  let live = Memdom.Alloc.live (Q_orc.alloc q) in
  check_bool
    (Printf.sprintf "live %d stays O(1), not O(n)" live)
    true (live <= 4);
  Q_orc.destroy q;
  check_int "no leak" 0 (Memdom.Alloc.live (Q_orc.alloc q))

let suite =
  [
    ("queue:hp", B_hp.cases);
    ("queue:ptb", B_ptb.cases);
    ("queue:ebr", B_ebr.cases);
    ("queue:he", B_he.cases);
    ("queue:ibr", B_ibr.cases);
    ("queue:ptp", B_ptp.cases);
    ("queue:leak", B_leak.cases);
    ("queue:orc", B_orc.cases);
    ("queue:kp-orc", B_kp.cases);
    ("queue:lcrq-hp", B_lcrq_hp.cases);
    ("queue:lcrq-ptp", B_lcrq_ptp.cases);
    ("queue:lcrq-orc", B_lcrq_orc.cases);
    ("queue:turn-orc", B_turn.cases);
    ( "queue:orc-specific",
      [
        Alcotest.test_case "orc queue reclaims inline" `Quick
          test_orc_queue_reclaims_inline;
      ] );
  ]
