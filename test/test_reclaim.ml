(* Scheme-generic tests: every manual scheme (baselines and PTP) must
   satisfy the same protect/retire contract, checked against the memdom
   substrate.  The same functor runs over HP, PTB, EBR, HE and PTP. *)

open Util
open Atomicx

type tnode = { hdr : Memdom.Hdr.t; mutable value : int }

module TN = struct
  type t = tnode

  let hdr n = n.hdr
end

module Hp = Reclaim.Hp.Make (TN)
module Ptb = Reclaim.Ptb.Make (TN)
module Ebr = Reclaim.Ebr.Make (TN)
module He = Reclaim.He.Make (TN)
module Ibr = Reclaim.Ibr.Make (TN)
module Ptp = Orc_core.Ptp.Make (TN)
module Leak = Reclaim.None_scheme.Leak (TN)
module Unsafe = Reclaim.None_scheme.Unsafe (TN)

let read_value n =
  Memdom.Hdr.check_access n.hdr;
  n.value

module Generic (S : Reclaim.Scheme_intf.S with type node = tnode) = struct
  let fresh () =
    let alloc = Memdom.Alloc.create (S.name ^ "-test") in
    (alloc, S.create ~max_hps:4 alloc)

  let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); value = v }

  (* A protected node survives retirement; clearing releases it. *)
  let test_protect_blocks_reclaim () =
    let alloc, s = fresh () in
    let tid = Registry.tid () in
    S.begin_op s ~tid;
    let n = mk alloc 7 in
    let link = Link.make (Link.Ptr n) in
    let st = S.get_protected s ~tid ~idx:0 link in
    (match Link.target st with
    | Some m -> check_bool "protected target" true (m == n)
    | None -> Alcotest.fail "lost target");
    Link.set link Link.Null;
    S.retire s ~tid n;
    S.flush s;
    check_bool "still alive while protected" false (Memdom.Hdr.is_freed n.hdr);
    check_int "still readable" 7 (read_value n);
    S.end_op s ~tid;
    S.flush s;
    check_bool "freed after clear" true (Memdom.Hdr.is_freed n.hdr);
    check_int "no leak" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s)

  (* Unprotected retirement reclaims everything eventually. *)
  let test_churn_reclaims_all () =
    let alloc, s = fresh () in
    let tid = Registry.tid () in
    for i = 1 to 2_000 do
      S.begin_op s ~tid;
      let n = mk alloc i in
      let link = Link.make (Link.Ptr n) in
      ignore (S.get_protected s ~tid ~idx:0 link);
      Link.set link Link.Null;
      S.end_op s ~tid;
      S.retire s ~tid n
    done;
    S.flush s;
    check_int "all reclaimed" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s)

  (* get_protected must chase a moving link until it validates. *)
  let test_get_protected_validates () =
    let alloc, s = fresh () in
    let tid = Registry.tid () in
    S.begin_op s ~tid;
    let a = mk alloc 1 and b = mk alloc 2 in
    let link = Link.make (Link.Ptr a) in
    Link.set link (Link.Ptr b);
    let st = S.get_protected s ~tid ~idx:0 link in
    (match Link.target st with
    | Some m -> check_int "sees latest" 2 (read_value m)
    | None -> Alcotest.fail "null");
    S.end_op s ~tid;
    Memdom.Alloc.free alloc a.hdr;
    Memdom.Alloc.free alloc b.hdr

  (* Concurrent stress: writers replace-and-retire nodes in a shared
     table while readers traverse them under protection.  Any premature
     free raises Use_after_free out of a worker and fails the test. *)
  let test_concurrent_stress () =
    let alloc, s = fresh () in
    let nslots = 16 in
    let iters = 3_000 in
    let table =
      Array.init nslots (fun i -> Link.make (Link.Ptr (mk alloc i)))
    in
    run_domains_exn 4 (fun ~i ~tid ->
        let rng = Rng.create (i * 7919) in
        for k = 1 to iters do
          let slot = table.(Rng.int rng nslots) in
          S.begin_op s ~tid;
          if i land 1 = 0 then begin
            (* writer: swap in a fresh node, retire the old one *)
            let n = mk alloc k in
            S.protect_raw s ~tid ~idx:0 (Some n);
            let old = Link.exchange slot (Link.Ptr n) in
            S.end_op s ~tid;
            match Link.target old with
            | Some o -> S.retire s ~tid o
            | None -> ()
          end
          else begin
            (* reader: protect, then dereference *)
            let st = S.get_protected s ~tid ~idx:0 slot in
            (match Link.target st with
            | Some n -> ignore (read_value n)
            | None -> ());
            S.end_op s ~tid
          end
        done);
    (* quiesce: drop the table and drain *)
    Array.iter
      (fun slot ->
        match Link.target (Link.exchange slot Link.Null) with
        | Some n -> S.retire s ~tid:(Registry.tid ()) n
        | None -> ())
      table;
    S.flush s;
    check_int "no leak after stress" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s)

  (* Tid recycling: the first life dies mid-operation — protection
     published, retires pending below any scan threshold, no [end_op].
     The exit path must orphan the backlog and clear the hazards, so
     the second life (same slot, bumped generation) starts from a
     clean slate and nothing is lost once the scheme quiesces. *)
  let test_tid_recycling () =
    let alloc, s = fresh () in
    let node = mk alloc 1 in
    let link = Link.make (Link.Ptr node) in
    let tid1, gen1 =
      Domain.join
        (Domain.spawn (fun () ->
             Registry.with_tid (fun tid ->
                 S.begin_op s ~tid;
                 ignore (S.get_protected s ~tid ~idx:0 link);
                 Link.set link Link.Null;
                 S.retire s ~tid node;
                 for i = 1 to 8 do
                   S.retire s ~tid (mk alloc i)
                 done;
                 (* die here: no end_op, no explicit cleanup *)
                 (tid, Registry.generation tid))))
    in
    let tid2, gen2 =
      Domain.join
        (Domain.spawn (fun () ->
             Registry.with_tid (fun tid ->
                 (* the recycled slot must behave like a fresh one *)
                 S.begin_op s ~tid;
                 let st = S.get_protected s ~tid ~idx:0 link in
                 check_bool "sees the unlinked table" true
                   (Link.target st = None);
                 S.end_op s ~tid;
                 (tid, Registry.generation tid))))
    in
    check_int "same slot re-issued" tid1 tid2;
    check_bool "generation bumped across lives" true (gen2 > gen1);
    S.flush s;
    check_int "nothing lost across recycling" 0 (Memdom.Alloc.live alloc);
    check_int "nothing pending" 0 (S.unreclaimed s);
    check_int "orphan pool drained" 0 (S.orphaned s)

  let cases =
    [
      Alcotest.test_case
        (S.name ^ ": protect blocks reclamation")
        `Quick test_protect_blocks_reclaim;
      Alcotest.test_case
        (S.name ^ ": churn reclaims all")
        `Quick test_churn_reclaims_all;
      Alcotest.test_case
        (S.name ^ ": get_protected validates")
        `Quick test_get_protected_validates;
      Alcotest.test_case
        (S.name ^ ": concurrent stress, no UAF, no leak")
        `Slow test_concurrent_stress;
      Alcotest.test_case
        (S.name ^ ": tid recycling starts clean")
        `Quick test_tid_recycling;
    ]
end

module Gen_hp = Generic (Hp)
module Gen_ptb = Generic (Ptb)
module Gen_ebr = Generic (Ebr)
module Gen_he = Generic (He)
module Gen_ibr = Generic (Ibr)
module Gen_ptp = Generic (Ptp)

(* The Unsafe control frees at retire: proves the substrate detects the
   use-after-free the real schemes must prevent. *)
let test_unsafe_detected () =
  let alloc = Memdom.Alloc.create "unsafe-test" in
  let s = Unsafe.create alloc in
  let tid = Registry.tid () in
  let n = { hdr = Memdom.Alloc.hdr alloc (); value = 1 } in
  let link = Link.make (Link.Ptr n) in
  ignore (Unsafe.get_protected s ~tid ~idx:0 link);
  Link.set link Link.Null;
  Unsafe.retire s ~tid n;
  (match read_value n with
  | _ -> Alcotest.fail "use-after-free not detected"
  | exception Memdom.Hdr.Use_after_free _ -> ());
  Unsafe.end_op s ~tid

(* The Leak control never frees until flushed. *)
let test_leak_defers_everything () =
  let alloc = Memdom.Alloc.create "leak-test" in
  let s = Leak.create alloc in
  let tid = Registry.tid () in
  for i = 1 to 100 do
    let n = { hdr = Memdom.Alloc.hdr alloc (); value = i } in
    Leak.retire s ~tid n
  done;
  check_int "everything pending" 100 (Leak.unreclaimed s);
  check_int "nothing freed" 100 (Memdom.Alloc.live alloc);
  Leak.flush s;
  check_int "flush reclaims" 0 (Memdom.Alloc.live alloc)

(* PTP-specific: the linear bound of §3.1.  With all hazard slots empty,
   retire must free immediately (no retired list); with k protected
   objects, at most t*(H+1) can ever be pending. *)
let test_ptp_immediate_free_when_unprotected () =
  let alloc = Memdom.Alloc.create "ptp-test" in
  let s = Ptp.create ~max_hps:4 alloc in
  let tid = Registry.tid () in
  let n = { hdr = Memdom.Alloc.hdr alloc (); value = 1 } in
  Ptp.retire s ~tid n;
  (* no scan threshold, no retired list: freed on the spot *)
  check_bool "freed immediately" true (Memdom.Hdr.is_freed n.hdr);
  check_int "live" 0 (Memdom.Alloc.live alloc)

let test_ptp_handover_parks_then_clear_frees () =
  let alloc = Memdom.Alloc.create "ptp-test" in
  let s = Ptp.create ~max_hps:4 alloc in
  let tid = Registry.tid () in
  let n = { hdr = Memdom.Alloc.hdr alloc (); value = 1 } in
  let link = Link.make (Link.Ptr n) in
  ignore (Ptp.get_protected s ~tid ~idx:2 link);
  Link.set link Link.Null;
  Ptp.retire s ~tid n;
  (* parked in our handover slot, not freed *)
  check_bool "parked, not freed" false (Memdom.Hdr.is_freed n.hdr);
  check_int "one pending" 1 (Ptp.unreclaimed s);
  Ptp.clear s ~tid ~idx:2;
  check_bool "freed on clear" true (Memdom.Hdr.is_freed n.hdr);
  check_int "none pending" 0 (Ptp.unreclaimed s)

let test_ptp_linear_bound_under_stress () =
  let alloc = Memdom.Alloc.create "ptp-bound" in
  let hps = 4 in
  let s = Ptp.create ~max_hps:hps alloc in
  let nslots = 8 in
  let table =
    Array.init nslots (fun i ->
        Link.make (Link.Ptr { hdr = Memdom.Alloc.hdr alloc (); value = i }))
  in
  let workers = 4 in
  let stop = Atomic.make false in
  let max_seen = Atomic.make 0 in
  let watcher =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let u = Ptp.unreclaimed s in
          let rec bump () =
            let m = Atomic.get max_seen in
            if u > m && not (Atomic.compare_and_set max_seen m u) then bump ()
          in
          bump ();
          Domain.cpu_relax ()
        done)
  in
  run_domains_exn workers (fun ~i ~tid ->
      let rng = Rng.create (i * 31337) in
      for k = 1 to 4_000 do
        let slot = table.(Rng.int rng nslots) in
        if i land 1 = 0 then begin
          let n = { hdr = Memdom.Alloc.hdr alloc (); value = k } in
          match Link.target (Link.exchange slot (Link.Ptr n)) with
          | Some o -> Ptp.retire s ~tid o
          | None -> ()
        end
        else begin
          let idx = Rng.int rng hps in
          ignore (Ptp.get_protected s ~tid ~idx slot);
          if Rng.bool rng then Ptp.clear s ~tid ~idx
        end;
        Ptp.end_op s ~tid
      done);
  Atomic.set stop true;
  Domain.join watcher;
  (* linear bound: t*(H+1), with t = workers + watcher + main slack;
     use the registry-wide worst case to be conservative *)
  let bound = (workers + 2) * (hps + 1) in
  check_bool
    (Printf.sprintf "max pending %d <= linear bound %d"
       (Atomic.get max_seen) bound)
    true
    (Atomic.get max_seen <= bound);
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Ptp.retire s ~tid:(Registry.tid ()) n
      | None -> ())
    table;
  Ptp.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

let suite =
  [
    ("scheme:hp", Gen_hp.cases);
    ("scheme:ptb", Gen_ptb.cases);
    ("scheme:ebr", Gen_ebr.cases);
    ("scheme:he", Gen_he.cases);
    ("scheme:ibr", Gen_ibr.cases);
    ("scheme:ptp", Gen_ptp.cases);
    ( "scheme:controls",
      [
        Alcotest.test_case "unsafe control is detected" `Quick
          test_unsafe_detected;
        Alcotest.test_case "leak control defers everything" `Quick
          test_leak_defers_everything;
      ] );
    ( "ptp:bounds",
      [
        Alcotest.test_case "unprotected retire frees immediately" `Quick
          test_ptp_immediate_free_when_unprotected;
        Alcotest.test_case "handover parks until clear" `Quick
          test_ptp_handover_parks_then_clear_frees;
        Alcotest.test_case "linear bound under stress" `Slow
          test_ptp_linear_bound_under_stress;
      ] );
  ]
