(* Shared helpers for the test suites. *)

open Atomicx

(* Run [f ~i ~tid] on [n] domains, all released from a barrier at the
   same instant, and return their results in spawn order. *)
let run_domains n f =
  let barrier = Barrier.create n in
  let doms =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun tid ->
                Barrier.wait barrier;
                f ~i ~tid)))
  in
  List.map Domain.join doms

(* Same, but ignore results and re-raise the first worker exception. *)
let run_domains_exn n f =
  let results =
    run_domains n (fun ~i ~tid ->
        match f ~i ~tid with
        | () -> Ok ()
        | exception e -> Error e)
  in
  List.iter (function Ok () -> () | Error e -> raise e) results

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Trace-assisted retry for the steady-state memory-bound tests.  A
   scheduler stall of the reclaiming thread on an oversubscribed host
   can pin a quantum's worth of churn without the scheme being at
   fault, so a blown bound gets one clean retry — but blind retries
   hide real regressions, so the retry reruns under an active [Obs]
   sink and, if the bound blows again, dumps the retire→free latency
   histogram and the sampled live-object series before the caller
   fails: enough to tell "reclamation stalled" from "nothing was ever
   freed".  [run] must build its structures inside the callback so they
   pick up the ambient sink; it returns (peak, live series). *)
let trace_retry ~name ~bound ~first run =
  if first < bound then first
  else begin
    Printf.eprintf
      "%s: peak live %d blew the bound %d; retrying under an active trace \
       sink\n\
       %!"
      name first bound;
    let sink = Obs.Sink.make () in
    let peak, series = Obs.Sink.with_default sink run in
    if peak >= bound then begin
      (match Obs.Sink.retire_free_hist sink with
      | Some h when Obs.Hist.count h > 0 ->
          Format.eprintf "%s: retire->free latency on the failing run:@.%a@."
            name
            (Obs.Hist.pp ~unit_label:"ns")
            h
      | _ ->
          Format.eprintf
            "%s: no retire->free samples on the failing run (nothing was \
             freed)@."
            name);
      Format.eprintf "%s: live-object series (sampled): %s@." name
        (String.concat " " (List.map string_of_int series));
      (* the event-ring tail is the play-by-play right before the
         bound blew — orphan publishes with no matching adopts, scans
         that stopped visiting slots, and so on *)
      match Obs.Sink.ring sink with
      | None -> ()
      | Some ring ->
          let tail =
            List.concat_map Array.to_list (Obs.Ring.snapshot_all ring)
            |> List.sort (fun (a : Obs.Event.t) b -> compare a.ts b.ts)
          in
          let n = List.length tail in
          let skip = max 0 (n - 64) in
          Format.eprintf "%s: last %d of %d ring events:@." name (n - skip) n;
          List.iteri
            (fun i e -> if i >= skip then Format.eprintf "  %a@." Obs.Event.pp e)
            tail
    end;
    peak
  end

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
