(* Soak test: hammer every structure × scheme combination at once with
   randomized mixed workloads for a configurable duration, then verify
   coherence and leak-freedom of each.  The idea is to find the bugs a
   20-second unit test can't: rare interleavings in helping protocols,
   slow leaks through handover slots, claim chains, stale-helper races.

     dune exec bin/soak.exe -- --seconds 60 --workers 6

   Exits non-zero on the first violated invariant (an exception escaping
   a worker — e.g. Use_after_free — or a leak after teardown). *)

open Cmdliner
open Atomicx

module Int_item = struct
  type t = int
end

(* One soak target: closures over a live structure instance. *)
type target = {
  name : string;
  op : Rng.t -> unit; (* one random operation *)
  teardown : unit -> unit;
  live : unit -> int;
  coherent : unit -> bool; (* cheap structural invariant, quiesced *)
  stats : unit -> string; (* [Alloc.pp_stats] incl. pool hit rate *)
}

let queue_target (type a) ?mode name
    (module Q : Ds.Intf.QUEUE with type item = int and type t = a) =
  let q = Q.create ?mode () in
  {
    name;
    op =
      (fun rng ->
        if Rng.bool rng then Q.enqueue q (Rng.int rng 1_000_000)
        else ignore (Q.dequeue q));
    teardown =
      (fun () ->
        Q.destroy q;
        Q.flush q);
    live = (fun () -> Memdom.Alloc.live (Q.alloc q));
    coherent = (fun () -> true);
    stats = (fun () -> Format.asprintf "%a" Memdom.Alloc.pp_stats (Q.alloc q));
  }

let set_target (type a) ?mode name ~keys
    (module S : Ds.Intf.SET with type t = a) =
  let s = S.create ?mode () in
  {
    name;
    op =
      (fun rng ->
        let k = 1 + Rng.int rng keys in
        match Rng.int rng 3 with
        | 0 -> ignore (S.add s k)
        | 1 -> ignore (S.remove s k)
        | _ -> ignore (S.contains s k));
    teardown =
      (fun () ->
        S.destroy s;
        S.flush s);
    live = (fun () -> Memdom.Alloc.live (S.alloc s));
    coherent =
      (fun () ->
        let l = S.to_list s in
        List.sort_uniq compare l = l);
    stats = (fun () -> Format.asprintf "%a" Memdom.Alloc.pp_stats (S.alloc s));
  }

module Msq_hp = Ds.Ms_queue.Make (Int_item) (Reclaim.Hp.Make)
module Msq_ptp = Ds.Ms_queue.Make (Int_item) (Orc_core.Ptp.Make)
module Msq_orc = Ds.Orc_ms_queue.Make (Int_item)
module Lcrq_orc = Ds.Orc_lcrq.Make (Int_item)
module Kpq = Ds.Orc_kp_queue.Make (Int_item)
module Turn = Ds.Orc_turn_queue.Make (Int_item)
module Ml_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module Ml_ptp = Ds.Michael_list.Make (Orc_core.Ptp.Make)
module Ml_orc = Ds.Orc_michael_list.Make ()
module Harris = Ds.Orc_harris_list.Make ()
module Hsl = Ds.Orc_hs_list.Make ()
module Tbkp = Ds.Orc_tbkp_list.Make ()
module Nm_hp = Ds.Nm_tree.Make (Reclaim.Hp.Make)
module Nm_orc = Ds.Orc_nm_tree.Make ()
module Skip_hs = Ds.Orc_hs_skiplist.Make ()
module Skip_crf = Ds.Orc_crf_skiplist.Make ()
module Hm_hp = Ds.Hash_map.Make (Reclaim.Hp.Make)
module Hm_orc = Ds.Orc_hash_map.Make ()
module Sp_hp = Ds.Split_map.Make (Reclaim.Hp.Make)
module Sp_ebr = Ds.Split_map.Make (Reclaim.Ebr.Make)
module Sp_orc = Ds.Orc_split_map.Make ()
module Sp_orc_hp = Ds.Orc_split_map.Make_hp ()

let targets ?mode () =
  [
    queue_target ?mode "ms-hp" (module Msq_hp);
    queue_target ?mode "ms-ptp" (module Msq_ptp);
    queue_target ?mode "ms-orc" (module Msq_orc);
    queue_target ?mode "lcrq-orc" (module Lcrq_orc);
    queue_target ?mode "kp-orc" (module Kpq);
    queue_target ?mode "turn-orc" (module Turn);
    set_target ?mode "michael-hp" ~keys:256 (module Ml_hp);
    set_target ?mode "michael-ptp" ~keys:256 (module Ml_ptp);
    set_target ?mode "michael-orc" ~keys:256 (module Ml_orc);
    set_target ?mode "harris-orc" ~keys:256 (module Harris);
    set_target ?mode "hs-orc" ~keys:256 (module Hsl);
    set_target ?mode "tbkp-orc" ~keys:64 (module Tbkp);
    set_target ?mode "nmtree-hp" ~keys:1024 (module Nm_hp);
    set_target ?mode "nmtree-orc" ~keys:1024 (module Nm_orc);
    set_target ?mode "hs-skip" ~keys:1024 (module Skip_hs);
    set_target ?mode "crf-skip" ~keys:1024 (module Skip_crf);
    set_target ?mode "hashmap-hp" ~keys:1024 (module Hm_hp);
    set_target ?mode "hashmap-orc" ~keys:1024 (module Hm_orc);
  ]

(* KV soak (--kv): zipfian YCSB-B traffic over the resizable
   split-ordered maps — one per scheme twin, all growing from two
   buckets under load — until the time budget runs out.  Unlike the
   uniform main soak, the skewed draw concentrates contention on a few
   hot keys while the long tail keeps forcing directory doublings;
   teardown asserts every map actually grew, holds its structural
   invariant, and leaks nothing. *)
type kv_tgt = {
  k_name : string;
  k_add : int -> bool;
  k_remove : int -> bool;
  k_contains : int -> bool;
  k_coherent : unit -> bool;
  k_grows : unit -> int;
  k_teardown : unit -> unit;
  k_live : unit -> int;
}

let kv_target (type a) name
    (module M : Ds.Orc_split_map.MAP with type t = a) =
  let s = M.create () in
  {
    k_name = name;
    k_add = M.add s;
    k_remove = M.remove s;
    k_contains = M.contains s;
    k_coherent =
      (fun () ->
        M.invariant s
        &&
        let l = M.to_list s in
        List.sort_uniq compare l = l);
    k_grows = (fun () -> M.grows s);
    k_teardown =
      (fun () ->
        M.destroy s;
        M.flush s);
    k_live = (fun () -> Memdom.Alloc.live (M.alloc s));
  }

let run_kv_soak seconds workers seed =
  let keys = 50_000 in
  let ts =
    [
      kv_target "split-hp" (module Sp_hp);
      kv_target "split-ebr" (module Sp_ebr);
      kv_target "split-orc" (module Sp_orc);
      kv_target "split-orc-hp" (module Sp_orc_hp);
    ]
  in
  Printf.printf
    "soak --kv: %d split maps, %d workers, %.0fs, %d-key zipfian keyspace, \
     seed %d\n%!"
    (List.length ts) workers seconds keys seed;
  let arr = Array.of_list ts in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let ops = Atomic.make 0 in
  let doms =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let kg =
                  Harness.Keygen.create
                    (Harness.Keygen.Zipfian
                       { theta = Harness.Keygen.default_theta })
                    ~n:keys
                    ~seed:(seed lxor ((i + 1) * 65599))
                in
                let rng = Rng.create (seed + ((i + 1) * 7919)) in
                try
                  while not (Atomic.get stop) do
                    let t = arr.(Rng.int rng (Array.length arr)) in
                    let k = 1 + Harness.Keygen.next kg in
                    (match Harness.Keygen.next_op kg Harness.Keygen.mix_b with
                    | Harness.Keygen.Read -> ignore (t.k_contains k)
                    | Harness.Keygen.Update ->
                        if Rng.bool rng then ignore (t.k_add k)
                        else ignore (t.k_remove k));
                    ignore (Atomic.fetch_and_add ops 1)
                  done
                with e ->
                  ignore (Atomic.fetch_and_add failures 1);
                  Printf.eprintf "worker %d: %s\n%!" i (Printexc.to_string e))))
  in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds && Atomic.get failures = 0 do
    Thread.delay 0.2
  done;
  Atomic.set stop true;
  List.iter Domain.join doms;
  Printf.printf "executed %d operations\n%!" (Atomic.get ops);
  let bad = ref (Atomic.get failures) in
  List.iter
    (fun t ->
      let grows = t.k_grows () in
      if grows < 3 then begin
        incr bad;
        Printf.eprintf "%s: only %d directory doublings under load\n%!"
          t.k_name grows
      end;
      if not (t.k_coherent ()) then begin
        incr bad;
        Printf.eprintf "%s: structural invariant violated\n%!" t.k_name
      end;
      t.k_teardown ();
      let live = t.k_live () in
      if live <> 0 then begin
        incr bad;
        Printf.eprintf "%s: %d objects leaked\n%!" t.k_name live
      end)
    ts;
  if !bad = 0 then begin
    Printf.printf
      "kv soak passed: every map grew, stayed coherent, and leaked nothing\n";
    0
  end
  else begin
    Printf.eprintf "kv soak FAILED: %d violations\n" !bad;
    1
  end

(* Domain-churn chaos mode (--churn): instead of long-lived workers,
   spawn waves of short-lived domains through the Chaos batteries until
   the time budget runs out, killing them at randomized points.  Every
   battery must hold the lifecycle contract on every repetition. *)
let run_churn seconds seed =
  Printf.printf "soak --churn: %.0fs budget, seed %d, %d batteries\n%!"
    seconds seed
    (List.length Chaos.batteries);
  let t0 = Unix.gettimeofday () in
  let bad = ref 0 in
  let round = ref 0 in
  let total_domains = ref 0 in
  while
    Unix.gettimeofday () -. t0 < seconds && (!bad = 0 || !round = 0)
  do
    incr round;
    let cfg = { Chaos.default with seed = seed + !round } in
    List.iter
      (fun (name, battery) ->
        let r = battery cfg in
        total_domains := !total_domains + r.Chaos.domains;
        if not (Chaos.ok r) then begin
          incr bad;
          Format.eprintf "round %d %s: lifecycle contract violated@.%a@."
            !round name Chaos.pp_report r
        end)
      Chaos.batteries
  done;
  Printf.printf "churned %d short-lived domains over %d rounds\n%!"
    !total_domains !round;
  if !bad = 0 then begin
    Printf.printf
      "churn passed: no UAF, no lost orphans, no slot exhaustion\n";
    0
  end
  else begin
    Printf.eprintf "churn FAILED: %d battery violations\n" !bad;
    1
  end

(* Background-pipeline soak (--background): repeat the reclaimer
   batteries — stalled-guard neutralization and kill-the-reclaimer —
   until the time budget runs out.  Every repetition must neutralize
   the parked guard, degrade gracefully past the dead reclaimer, and
   account for every retired object. *)
let run_background seconds =
  Printf.printf "soak --background: %.0fs budget\n%!" seconds;
  let t0 = Unix.gettimeofday () in
  let bad = ref 0 in
  let round = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds && (!bad = 0 || !round = 0) do
    incr round;
    let check r =
      if not (Chaos.bg_ok r) then begin
        incr bad;
        Format.eprintf "round %d %s: pipeline contract violated@.%a@." !round
          r.Chaos.bg_name Chaos.pp_bg_report r
      end
    in
    check (Chaos.run_neutralize ());
    check (Chaos.run_reclaimer_kill ())
  done;
  Printf.printf "ran %d neutralize + kill rounds\n%!" !round;
  if !bad = 0 then begin
    Printf.printf
      "background soak passed: every stall neutralized, every kill degraded \
       inline, no leaks\n";
    0
  end
  else begin
    Printf.eprintf "background soak FAILED: %d battery violations\n" !bad;
    1
  end

(* Adaptive-controller soak (--adaptive): repeat the mode-switch
   battery — calm, stall-driven escalation with mid-switch domain
   kills, relaxation — until the time budget runs out.  Every
   repetition must cycle the ladder both ways and account for every
   retired object. *)
let run_adaptive_soak seconds =
  Printf.printf "soak --adaptive: %.0fs budget\n%!" seconds;
  let t0 = Unix.gettimeofday () in
  let bad = ref 0 in
  let round = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds && (!bad = 0 || !round = 0) do
    incr round;
    let r = Chaos.run_adaptive ~interval:0.001 () in
    if not (Chaos.adaptive_ok r) then begin
      incr bad;
      Format.eprintf "round %d adaptive: ladder contract violated@.%a@."
        !round Chaos.pp_adaptive_report r
    end
  done;
  Printf.printf "ran %d adaptive ladder rounds\n%!" !round;
  if !bad = 0 then begin
    Printf.printf
      "adaptive soak passed: every stall escalated, every calm relaxed, \
       every mid-switch kill force-released, no leaks\n";
    0
  end
  else begin
    Printf.eprintf "adaptive soak FAILED: %d battery violations\n" !bad;
    1
  end

let run seconds workers seed churn background adaptive kv pool =
  if churn then run_churn seconds seed
  else if background then run_background seconds
  else if adaptive then run_adaptive_soak seconds
  else if kv then run_kv_soak seconds workers seed
  else
  let mode = if pool then Some Memdom.Alloc.Pool else None in
  let ts = targets ?mode () in
  Printf.printf "soak: %d structures, %d workers, %.0fs, seed %d%s\n%!"
    (List.length ts) workers seconds seed
    (if pool then ", pool allocators" else "");
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let ops = Atomic.make 0 in
  let arr = Array.of_list ts in
  let doms =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let rng = Rng.create (seed + ((i + 1) * 65599)) in
                try
                  while not (Atomic.get stop) do
                    let t = arr.(Rng.int rng (Array.length arr)) in
                    t.op rng;
                    ignore (Atomic.fetch_and_add ops 1)
                  done
                with e ->
                  ignore (Atomic.fetch_and_add failures 1);
                  Printf.eprintf "worker %d: %s\n%!" i (Printexc.to_string e))))
  in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds && Atomic.get failures = 0 do
    Thread.delay 0.2
  done;
  Atomic.set stop true;
  List.iter Domain.join doms;
  Printf.printf "executed %d operations\n%!" (Atomic.get ops);
  let bad = ref (Atomic.get failures) in
  List.iter
    (fun t ->
      if not (t.coherent ()) then begin
        incr bad;
        Printf.eprintf "%s: structural invariant violated\n%!" t.name
      end;
      t.teardown ();
      let live = t.live () in
      if live <> 0 then begin
        incr bad;
        Printf.eprintf "%s: %d objects leaked\n%!" t.name live
      end;
      if pool then Printf.printf "  %s\n%!" (t.stats ()))
    ts;
  if !bad = 0 then begin
    Printf.printf "soak passed: no UAF, no incoherence, no leaks\n";
    0
  end
  else begin
    Printf.eprintf "soak FAILED: %d violations\n" !bad;
    1
  end

let seconds_arg =
  Arg.(value & opt float 10.0 & info [ "seconds"; "s" ] ~doc:"Soak duration.")

let workers_arg =
  Arg.(value & opt int 6 & info [ "workers"; "w" ] ~doc:"Worker domains.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let churn_arg =
  Arg.(
    value & flag
    & info [ "churn" ]
        ~doc:
          "Domain-churn chaos mode: waves of short-lived domains dying at \
           randomized points, instead of long-lived workers.")

let background_arg =
  Arg.(
    value & flag
    & info [ "background" ]
        ~doc:
          "Background-pipeline mode: repeat the reclaimer batteries \
           (stalled-guard neutralization, kill-the-reclaimer) for the time \
           budget instead of running long-lived workers.")

let adaptive_arg =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Adaptive-controller mode: repeat the mode-switch battery \
           (stall-driven escalation with mid-switch kills, calm-driven \
           relaxation) for the time budget instead of running long-lived \
           workers.")

let kv_arg =
  Arg.(
    value & flag
    & info [ "kv" ]
        ~doc:
          "KV mode: zipfian YCSB-B traffic over the resizable \
           split-ordered maps (one per scheme twin), asserting directory \
           growth, structural coherence and leak-freedom at teardown.")

let pool_arg =
  Arg.(
    value & flag
    & info [ "pool" ]
        ~doc:
          "Build every structure over a type-stable Pool allocator instead \
           of System, and print per-target allocator stats (pool hit rate, \
           remote frees) at teardown.")

let cmd =
  Cmd.v
    (Cmd.info "soak" ~doc:"randomized cross-structure soak test")
    Term.(
      const run $ seconds_arg $ workers_arg $ seed_arg $ churn_arg
      $ background_arg $ adaptive_arg $ kv_arg $ pool_arg)

let () = exit (Cmd.eval' cmd)
