(* Guard the adaptive-controller invariants in a BENCH_orc.json
   produced by `bench/main.exe --adaptive --json` (optionally with
   --smoke).  The section A/Bs three contestants over the same
   steady → stall-injected → burst workload, aggregated over several
   interleaved rounds (per-phase max throughput, summed counters):

   - the adaptive stack must keep [calm_floor] of static EBR's calm
     throughput (the ISSUE target is 0.9x; the floor leaves margin for
     scheduler noise on small shared CI boxes — the measured median
     sits at ~0.9 with excursions both sides, see EXPERIMENTS.md),
   - its stall-phase unreclaimed high-water mark must stay under
     [stall_ceiling] of EBR's unbounded pile-up (the HP-class bound:
     once escalated, growth stops; EBR's only limit is that the stall
     also collapses its throughput),
   - the escalation ladder must actually run: >= 1 escalation and
     >= 1 relaxation summed over the rounds, final mode Fast, and the
     parked victim must have raised [Neutralized] (the controller +
     armed-reclaimer handshake, not a timeout),
   - recovery must drain: burst-phase hwm under [recovery_ceiling] of
     the stall hwm,
   - nothing may leak: leaked = 0 and unreclaimed_after = 0 for every
     contestant.

     dune exec tools/check_adaptive.exe -- BENCH_orc.json

   Exits 0 when every invariant holds, 1 otherwise. *)

open Tool_support

let calm_floor = 0.85
let stall_ceiling = 0.5
let recovery_ceiling = 0.5

let () =
  let path = usage_path ~tool:"check_adaptive" ~arg:"BENCH_orc.json" in
  let doc = load path in
  let sec = section doc ~path "adaptive" in
  let contestant name =
    match Obs.Json.member name sec with
    | Some row -> row
    | None -> fail "%s: adaptive section has no %S contestant" path name
  in
  let phase row name =
    match Obs.Json.member name row with
    | Some p -> p
    | None -> fail "%s: contestant row has no %S phase" path name
  in
  let ebr = contestant "ebr-static" in
  let adaptive = contestant "adaptive" in
  let mops row ph = field (phase row ph) "mops" in
  let hwm row ph = field (phase row ph) "unreclaimed_hwm" in

  (* calm throughput: the controller must be near-free while idle *)
  let ratio = mops adaptive "calm" /. Float.max 1e-9 (mops ebr "calm") in
  if ratio < calm_floor then
    problem "calm throughput %.3f Mops = %.2fx static EBR (< %.2fx floor)"
      (mops adaptive "calm") ratio calm_floor
  else
    Printf.printf "  ok   calm %.3f Mops = %.2fx static EBR\n"
      (mops adaptive "calm") ratio;

  (* stall containment: escalation must bound what EBR lets pile up *)
  let a_hwm = hwm adaptive "stall" and e_hwm = hwm ebr "stall" in
  if a_hwm > stall_ceiling *. e_hwm then
    problem "stall hwm %.0f > %.2fx EBR's %.0f" a_hwm stall_ceiling e_hwm
  else
    Printf.printf "  ok   stall hwm %.0f vs EBR %.0f (%.2fx)\n" a_hwm e_hwm
      (a_hwm /. Float.max 1. e_hwm);

  (* the ladder ran, both directions, and ended relaxed *)
  let esc = field adaptive "escalations"
  and rel = field adaptive "relaxations"
  and mode = field adaptive "mode_after" in
  if not (esc >= 1.) then problem "no escalation fired (%.0f)" esc;
  if not (rel >= 1.) then problem "no relaxation fired (%.0f)" rel;
  if mode <> 0. then problem "final mode %.0f, expected Fast (0)" mode;
  if esc >= 1. && rel >= 1. && mode = 0. then
    Printf.printf "  ok   ladder: %.0f escalations, %.0f relaxations, ended Fast\n"
      esc rel;
  (match bool_field adaptive "victim_raised" with
  | Some true -> Printf.printf "  ok   stalled victim neutralized and raised\n"
  | Some false | None -> problem "victim never raised Neutralized");
  if not (field adaptive "decisions" > 0.) then
    problem "controller recorded no decisions";

  (* recovery: the burst phase must not inherit the stall's backlog *)
  let b_hwm = hwm adaptive "burst" in
  if a_hwm > 0. && b_hwm > recovery_ceiling *. a_hwm then
    problem "burst hwm %.0f > %.2fx stall hwm %.0f (backlog not drained)"
      b_hwm recovery_ceiling a_hwm
  else Printf.printf "  ok   burst hwm %.0f (stall backlog drained)\n" b_hwm;

  (* zero-leak contract for every contestant *)
  List.iter
    (fun name ->
      let row = contestant name in
      let leaked = field row "leaked"
      and after = field row "unreclaimed_after" in
      if leaked <> 0. then problem "%s: leaked %.0f objects" name leaked;
      if after <> 0. then
        problem "%s: %.0f unreclaimed after flush" name after;
      if leaked = 0. && after = 0. then
        Printf.printf "  ok   %-12s zero leaks\n" name)
    [ "ebr-static"; "hp-static"; "adaptive" ];

  finish path ~what:"adaptive-controller" ~ok:"adaptive controller OK"
