(* orc_top: a `top`-style console for the live metrics plane.

   Two modes:

   - file mode (default): render the ["metrics"] section of a
     BENCH_orc.json (as written by `bench/main.exe --metrics --json`).
     Without [--once] it keeps polling the file and redraws whenever it
     changes, so a bench loop in another terminal gets a live view.
     When the file also carries an ["adaptive"] section (from
     `--adaptive --json`) its per-phase A/B summary prints below.

   - [--demo]: entirely in-process — starts a sampler domain over
     [Obs.Metrics.default], runs a guard + retire churn workload on a
     switchable scheme driven by a live adaptive controller, and
     renders the registry until [--seconds] elapse.  This is the
     end-to-end smoke of the whole plane: watchdog clock live,
     per-scheme probes, allocator gauges, ring-buffered series.

   Any [orcgc_ctrl_*] series are pulled out of the main table into a
   dedicated controller pane with the ladder state decoded
   (Fast/Escalating/Robust) — in the demo the staller forces real
   escalations, so the pane moves.

     dune exec tools/orc_top.exe -- [--once] [--interval=S] [FILE]
     dune exec tools/orc_top.exe -- --demo [--seconds=N] [--interval=S]

   FILE defaults to BENCH_orc.json. *)

open Tool_support

let arg_flag name = Array.exists (( = ) name) Sys.argv

let arg_value prefix default parse =
  Array.fold_left
    (fun acc a ->
      if String.starts_with ~prefix a then
        parse (String.sub a (String.length prefix)
                 (String.length a - String.length prefix))
      else acc)
    default Sys.argv

(* ------------------------------------------------------------------ *)
(* Rendering *)

type row = {
  r_name : string;
  r_labels : string;
  r_kind : string;
  r_last : int;
  r_hwm : int;
  r_points : int array;
}

let spark_chars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 32) pts =
  let n = Array.length pts in
  let pts = if n > width then Array.sub pts (n - width) width else pts in
  let mx = Array.fold_left max 1 pts in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v ->
            let i = v * (Array.length spark_chars - 1) / mx in
            spark_chars.(max 0 (min (Array.length spark_chars - 1) i)))
          pts))

let print_row r =
  Printf.printf "%-30s %-24s %-7s %10d %10d  %s\n" r.r_name r.r_labels
    r.r_kind r.r_last r.r_hwm (sparkline r.r_points)

let mode_name = function
  | 0 -> "Fast"
  | 1 -> "Escalating"
  | 2 -> "Robust"
  | _ -> "?"

let is_ctrl r = String.starts_with ~prefix:"orcgc_ctrl_" r.r_name

(* The controller pane: its series pulled out of the main table, plus a
   one-line decoded summary (mode names instead of raw ints) so the
   ladder state is readable at a glance. *)
let render_ctrl_pane rows =
  match List.filter is_ctrl rows with
  | [] -> ()
  | ctrl ->
      let find name =
        List.find_opt (fun r -> r.r_name = name) ctrl
      in
      Printf.printf "\n-- controller %s\n"
        (String.make 47 '-');
      (match (find "orcgc_ctrl_mode", find "orcgc_ctrl_scale_pct") with
      | Some m, Some sc ->
          Printf.printf
            "   mode %-10s  threshold scale %d%%  (hwm mode %s)\n"
            (mode_name m.r_last) sc.r_last (mode_name m.r_hwm)
      | Some m, None ->
          Printf.printf "   mode %-10s (hwm mode %s)\n" (mode_name m.r_last)
            (mode_name m.r_hwm)
      | None, _ -> ());
      (match
         ( find "orcgc_ctrl_escalations_total",
           find "orcgc_ctrl_relaxations_total",
           find "orcgc_ctrl_decisions_total" )
       with
      | Some e, Some r, d ->
          Printf.printf "   %d escalations, %d relaxations%s\n" e.r_last
            r.r_last
            (match d with
            | Some d -> Printf.sprintf ", %d decisions" d.r_last
            | None -> "")
      | _ -> ());
      List.iter print_row ctrl

let render ~clear ~title rows =
  if clear then print_string "\027[2J\027[H";
  Printf.printf "orc_top — %s\n" title;
  Printf.printf "%-30s %-24s %-7s %10s %10s  %s\n" "series" "labels" "kind"
    "last" "hwm" "recent";
  List.iter print_row (List.filter (fun r -> not (is_ctrl r)) rows);
  render_ctrl_pane rows;
  flush stdout

let labels_string kvs =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

(* ------------------------------------------------------------------ *)
(* File mode: rows out of the BENCH_orc.json metrics section *)

let rows_of_file path =
  let doc = load path in
  let m = section doc ~path "metrics" in
  let series =
    match Obs.Json.member "series" m with
    | Some (Obs.Json.List ss) -> ss
    | Some _ | None -> fail "%s: metrics.series missing or not a list" path
  in
  List.map
    (fun s ->
      let labels =
        match Obs.Json.member "labels" s with
        | Some (Obs.Json.Obj kvs) ->
            labels_string
              (List.filter_map
                 (fun (k, v) ->
                   match v with Obs.Json.Str v -> Some (k, v) | _ -> None)
                 kvs)
        | _ -> ""
      in
      let points =
        match Obs.Json.member "points" s with
        | Some (Obs.Json.List pts) ->
            Array.of_list
              (List.filter_map
                 (fun p ->
                   match p with
                   | Obs.Json.List [ _; Obs.Json.Int v ] -> Some v
                   | _ -> None)
                 pts)
        | _ -> [||]
      in
      {
        r_name = Option.value ~default:"?" (str_field s "name");
        r_labels = labels;
        r_kind = Option.value ~default:"?" (str_field s "kind");
        r_last = int_of_float (field s "last");
        r_hwm = int_of_float (field s "hwm");
        r_points = points;
      })
    series

(* When the file also carries an --adaptive A/B section, summarize it
   under the series table: per-contestant phase throughputs plus the
   ladder counters for the adaptive row. *)
let render_adaptive_section path =
  let doc = load path in
  match Obs.Json.member "adaptive" doc with
  | None | Some (Obs.Json.Null) -> ()
  | Some sec ->
      Printf.printf "\n-- adaptive A/B (steady | stall | burst, Mops) %s\n"
        (String.make 15 '-');
      List.iter
        (fun name ->
          match Obs.Json.member name sec with
          | None -> ()
          | Some row ->
              let ph p f =
                match Obs.Json.member p row with
                | Some q -> field q f
                | None -> nan
              in
              Printf.printf
                "   %-12s %7.3f | %7.3f | %7.3f   hwm %.0f | %.0f | %.0f%s\n"
                name (ph "calm" "mops") (ph "stall" "mops")
                (ph "burst" "mops")
                (ph "calm" "unreclaimed_hwm")
                (ph "stall" "unreclaimed_hwm")
                (ph "burst" "unreclaimed_hwm")
                (if field row "escalations" > 0. then
                   Printf.sprintf "   (%.0f esc, %.0f relax)"
                     (field row "escalations")
                     (field row "relaxations")
                 else ""))
        [ "ebr-static"; "hp-static"; "adaptive" ]

let file_mode path ~once ~interval =
  let show () =
    render ~clear:(not once) ~title:path (rows_of_file path);
    render_adaptive_section path
  in
  show ();
  if not once then begin
    let mtime () = try (Unix.stat path).Unix.st_mtime with _ -> 0. in
    let last = ref (mtime ()) in
    while true do
      Unix.sleepf interval;
      let m = mtime () in
      if m <> !last then begin
        last := m;
        show ()
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Demo mode: live in-process plane *)

type dnode = { d_hdr : Memdom.Hdr.t }

module DN = struct
  type t = dnode

  let hdr n = n.d_hdr
end

module Sw = Reclaim.Switchable.Make (DN)

let rows_of_registry reg =
  List.map
    (fun (s : Obs.Metrics.series) ->
      {
        r_name = s.Obs.Metrics.name;
        r_labels = labels_string s.labels;
        r_kind = (if s.is_counter then "counter" else "gauge");
        r_last = s.last;
        r_hwm = s.hwm;
        r_points = Array.map snd s.points;
      })
    (Obs.Metrics.series reg)

let demo_mode ~seconds ~interval =
  let alloc = Memdom.Alloc.create "orc-top-demo" in
  let s = Sw.create ~max_hps:4 alloc in
  (* background pipeline: retires travel the transfer channel to a
     reclaimer armed to neutralize, so the channel-depth gauge
     (orcgc_bg_depth), the bg counters and the neutralization totals
     all move during the demo alongside the per-scheme series *)
  let ch = Reclaim.Channel.create () in
  let reclaimer =
    Reclaim.Reclaimer.start ~interval:(interval /. 4.) ~neutralize_age:4 ch
  in
  Sw.set_background s (Some ch);
  (* the adaptive controller drives the Switchable ladder live: the
     staller pushes the stall age past [stall_age_hi] (kept strictly
     below the reclaimer's [neutralize_age] — neutralization bumps the
     victim's registry generation, which erases its watchdog row, so
     the controller must react first), the escalation shows in the
     controller pane, and sustained calm relaxes it back *)
  let ctrl =
    Reclaim.Controller.create
      ~cfg:
        {
          Reclaim.Controller.default_config with
          unreclaimed_lo = 512;
          stall_age_hi = 2;
          calm_ticks = 3;
        }
      ~reclaimer ~channel:ch
      [
        Reclaim.Controller.target ~label:"demo"
          ~mode:(fun () -> Sw.mode s)
          ~escalate:(fun () -> Sw.escalate s)
          ~try_complete:(fun () -> Sw.try_complete s)
          ~relax:(fun () -> Sw.relax s)
          ~tuning:(Sw.tuning s)
          ~unreclaimed:(fun () -> Sw.unreclaimed s)
          ~stall_age:(fun () -> Sw.stall_age_max s)
          ();
      ]
  in
  Reclaim.Controller.start ~interval:(interval /. 4.) ctrl;
  let stop = Atomic.make false in
  let churner () =
    Atomicx.Registry.with_tid @@ fun tid ->
    while not (Atomic.get stop) do
      (try
         Sw.begin_op s ~tid;
         for _ = 1 to 64 do
           Sw.retire s ~tid { d_hdr = Memdom.Alloc.hdr alloc () }
         done;
         Sw.end_op s ~tid
       with Reclaim.Neutralize.Neutralized _ -> ());
      Unix.sleepf 0.002
    done
  in
  (* a deliberate staller: parks inside a guard long enough for the
     stall-age gauge (orcgc_stall_age_max) to climb and the reclaimer
     to expire the guard, then recovers through the handshake and goes
     again *)
  let staller () =
    Atomicx.Registry.with_tid @@ fun tid ->
    while not (Atomic.get stop) do
      (try
         Sw.begin_op s ~tid;
         Unix.sleepf (interval *. 2.);
         Sw.end_op s ~tid
       with Reclaim.Neutralize.Neutralized _ -> ());
      Unix.sleepf (interval /. 2.)
    done
  in
  let sampler = Obs.Sampler.start ~interval:(interval /. 4.) () in
  let d = Domain.spawn churner in
  let st = Domain.spawn staller in
  let deadline = Unix.gettimeofday () +. seconds in
  while Unix.gettimeofday () < deadline do
    Unix.sleepf interval;
    render ~clear:true
      ~title:
        (Printf.sprintf "demo (switchable churn + controller + staller), %d sampler \
                         ticks"
           (Obs.Sampler.ticks sampler))
      (rows_of_registry Obs.Metrics.default)
  done;
  Atomic.set stop true;
  Domain.join d;
  Domain.join st;
  Reclaim.Controller.stop ctrl;
  Reclaim.Reclaimer.stop reclaimer;
  Sw.set_background s None;
  Obs.Sampler.stop sampler;
  ignore (Sw.relax s);
  Sw.flush s;
  render ~clear:false ~title:"demo final"
    (rows_of_registry Obs.Metrics.default)

let () =
  let interval = arg_value "--interval=" 1.0 float_of_string in
  if arg_flag "--demo" then
    demo_mode ~seconds:(arg_value "--seconds=" 5.0 float_of_string) ~interval
  else
    let path =
      Array.fold_left
        (fun acc a ->
          if a <> Sys.executable_name && not (String.starts_with ~prefix:"--" a)
          then a
          else acc)
        "BENCH_orc.json"
        (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
    in
    file_mode path ~once:(arg_flag "--once") ~interval
