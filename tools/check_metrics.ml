(* Guard the live-metrics-plane invariants in a BENCH_orc.json produced
   by `bench/main.exe --metrics --json` (optionally with `--smoke`):

   - sampler overhead on the guard-per-op list workload must stay within
     [overhead_ceiling_pct] of the sampler-off baseline (both sides of
     the A/B run with a second domain alive, so the number isolates the
     plane itself, not the runtime's multi-domain tax),
   - the gauge-set, counter-bump and guard-bracket hot paths must be
     allocation-free (minor words per op at most [words_ceiling], a
     rounding allowance on Gc.minor_words),
   - the stall battery must have detected the injected stalled-guard
     domain, seen it clear after release, and leaked nothing,
   - every exported series must be internally consistent: its high-water
     mark covers both the last sample and every retained point, and the
     retained ticks are strictly increasing,
   - the sampler's built-in registry series and at least one per-scheme
     series must be present, and the Prometheus rendering non-empty.

   When the document also carries a `background` section (from
   `bench/main.exe --background --json`), the background-pipeline
   invariants are guarded too:

   - the neutralization battery must have fired (victim neutralized,
     the pinned node freed with the victim still parked), the waking
     victim must have observed the expiry (raised [Neutralized], i.e.
     the flag cleared through the handshake), and the battery must
     leak nothing,
   - the reclaimer-kill battery must show graceful degradation (inline
     fallbacks or a recovered backlog) with zero leaks,
   - the latency A/B itself must account for every retired object
     (leaked 0) and must actually have exercised the channel.

     dune exec tools/check_metrics.exe -- BENCH_orc.json

   Exits 0 when every check passes, 1 otherwise. *)

open Tool_support

let overhead_ceiling_pct = 3.0
let words_ceiling = 0.001

let () =
  let path = usage_path ~tool:"check_metrics" ~arg:"BENCH_orc.json" in
  let doc = load path in
  let m = section doc ~path "metrics" in

  (* sampler overhead *)
  let overhead = section m ~path "overhead" in
  let pct = field overhead "overhead_pct" in
  if not (pct <= overhead_ceiling_pct) then
    problem "sampler overhead %.2f%% exceeds %.1f%% (off %.0f ns, on %.0f ns)"
      pct overhead_ceiling_pct
      (field overhead "off_ns_per_op")
      (field overhead "on_ns_per_op")
  else
    Printf.printf "  ok   sampler overhead %.2f%% (off %.0f ns, on %.0f ns)\n"
      pct
      (field overhead "off_ns_per_op")
      (field overhead "on_ns_per_op");

  (* hot-path allocation audit *)
  let words = section m ~path "hot_path_words_per_op" in
  List.iter
    (fun name ->
      let w = field words name in
      if not (w <= words_ceiling) then
        problem "%s hot path allocates %.4f words/op (> %.3f)" name w
          words_ceiling
      else Printf.printf "  ok   %s: %.4f words/op\n" name w)
    [ "gauge_set"; "counter_incr"; "guard_bracket" ];

  (* stall battery *)
  let stall = section m ~path "stall" in
  if bool_field stall "detected" <> Some true then
    problem "watchdog never flagged the injected stalled guard";
  if bool_field stall "cleared" <> Some true then
    problem "stalled slot still flagged after guard release";
  if bool_field stall "ok" <> Some true then
    problem "stall battery reported not-ok (errors or leak)";
  let leaked = field stall "leaked" in
  if leaked <> 0. then problem "stall battery leaked %.0f allocations" leaked;
  if field stall "stall_reports" < 1. then
    problem "no stall reports emitted during injection";
  if !failures = 0 then
    Printf.printf
      "  ok   stall battery: victim tid %.0f flagged (age max %.0f ticks), \
       cleared, 0 leaked\n"
      (field stall "victim_tid") (field stall "age_max");

  (* series consistency *)
  let series =
    match Obs.Json.member "series" m with
    | Some (Obs.Json.List ss) -> ss
    | Some _ | None -> fail "%s: metrics.series missing or not a list" path
  in
  if series = [] then problem "no series were sampled";
  let labels_of s =
    match Obs.Json.member "labels" s with
    | Some (Obs.Json.Obj kvs) -> kvs
    | _ -> []
  in
  List.iter
    (fun s ->
      let name = Option.value ~default:"?" (str_field s "name") in
      let last = field s "last" and hwm = field s "hwm" in
      if hwm < last then
        problem "%s: hwm %.0f below last sample %.0f" name hwm last;
      match Obs.Json.member "points" s with
      | Some (Obs.Json.List pts) ->
          let prev_tick = ref min_int in
          List.iter
            (fun p ->
              match p with
              | Obs.Json.List [ Obs.Json.Int t; Obs.Json.Int v ] ->
                  if t <= !prev_tick then
                    problem "%s: non-increasing tick %d after %d" name t
                      !prev_tick;
                  prev_tick := t;
                  if float_of_int v > hwm then
                    problem "%s: point %d above hwm %.0f" name v hwm
              | _ -> problem "%s: malformed point" name)
            pts
      | _ -> problem "%s: missing points" name)
    series;
  let has name pred =
    List.exists
      (fun s -> str_field s "name" = Some name && pred (labels_of s))
      series
  in
  if not (has "orcgc_registry_active" (fun _ -> true)) then
    problem "built-in registry series (orcgc_registry_active) missing";
  if
    not
      (List.exists
         (fun s -> List.mem_assoc "scheme" (labels_of s))
         series)
  then problem "no scheme-labelled series (scheme wiring missing)";
  if !failures = 0 then
    Printf.printf "  ok   %d series, hwm and tick ordering consistent\n"
      (List.length series);

  if field m "prometheus_lines" < 1. then
    problem "prometheus rendering was empty";

  (* background pipeline (only when the section was benched in) *)
  (match Obs.Json.member "background" doc with
  | None ->
      Printf.printf
        "  note background section absent (bench --background --json)\n"
  | Some bg ->
      let battery label b ~want_neutralize =
        if bool_field b "ok" <> Some true then
          problem "%s battery reported not-ok" label;
        if want_neutralize then begin
          if bool_field b "neutralized" <> Some true then
            problem "%s: stalled guard was never neutralized" label;
          if bool_field b "victim_raised" <> Some true then
            problem "%s: waking victim never observed the expiry" label;
          if bool_field b "pinned_freed" <> Some true then
            problem "%s: pinned node not freed while victim parked" label
        end
        else if field b "fallbacks" +. field b "recovered" < 1. then
          problem "%s: no degradation evidence (fallbacks + recovered = 0)"
            label;
        let leaked = field b "leaked" in
        if leaked <> 0. then
          problem "%s battery leaked %.0f allocations" label leaked;
        if field b "unreclaimed_after" <> 0. then
          problem "%s battery left objects unreclaimed" label
      in
      battery "neutralize"
        (section bg ~path "neutralize_battery")
        ~want_neutralize:true;
      battery "kill" (section bg ~path "kill_battery") ~want_neutralize:false;
      if field bg "leaked" <> 0. then
        problem "latency A/B leaked %.0f allocations" (field bg "leaked");
      if field (section bg ~path "channel") "sent" < 1. then
        problem "latency A/B never sent a batch through the channel";
      if !failures = 0 then
        Printf.printf
          "  ok   background: neutralize fired and cleared, kill degraded \
           inline, 0 leaked\n");

  finish path ~what:"metrics"
    ~ok:
      (Printf.sprintf "live metrics plane OK (%d series)"
         (List.length series))
