(* Guard the scan-overhaul invariants in a BENCH_orc.json produced by
   `bench/main.exe --scan --json` (or `--smoke --json`): for every
   batching scheme the A/B section must show

   - a snapshot built per batching scan (snapshot_builds = scans > 0),
   - overhaul scan_slots at most [ratio_ceiling] of the legacy walk's
     (the snapshot visits each hazard slot once per scan instead of
     once per retired node — the ratio sits near 1/R, so 0.75 is a
     deliberately generous regression ceiling, not a target),
   - read-side elision actually firing (elided > 0) for the schemes
     that implement it (hp and the era schemes; PTB's get_protected
     keeps the unconditional publish).

     dune exec tools/check_scan.exe -- BENCH_orc.json

   Exits 0 when every scheme passes, 1 otherwise. *)

open Tool_support

let ratio_ceiling = 0.75
let elision_schemes = [ "hp"; "he"; "ibr" ]

let () =
  let path = usage_path ~tool:"check_scan" ~arg:"BENCH_orc.json" in
  let doc = load path in
  let rows = list_section doc ~path "scan_overhaul" in
  let find scheme mode =
    List.find_opt
      (fun row ->
        str_field row "scheme" = Some scheme && str_field row "mode" = Some mode)
      rows
  in
  let schemes =
    List.sort_uniq compare
      (List.filter_map (fun row -> str_field row "scheme") rows)
  in
  if schemes = [] then fail "%s: scan_overhaul section is empty" path;
  List.iter
    (fun scheme ->
      match (find scheme "legacy", find scheme "overhaul") with
      | None, _ | _, None -> problem "%s: missing legacy/overhaul pair" scheme
      | Some legacy, Some overhaul ->
          let scans = field overhaul "scans"
          and builds = field overhaul "snapshot_builds"
          and slots = field overhaul "scan_slots"
          and legacy_slots = field legacy "scan_slots"
          and elided = field overhaul "elided" in
          if not (builds > 0. && builds = scans) then
            problem "%s: snapshot_builds=%.0f but scans=%.0f" scheme builds
              scans;
          if field legacy "snapshot_builds" <> 0. then
            problem "%s: legacy mode built snapshots (ablation ref leaked)"
              scheme;
          let ratio = slots /. Float.max 1. legacy_slots in
          if not (ratio <= ratio_ceiling) then
            problem "%s: scan_slots %.0f vs legacy %.0f (ratio %.2f > %.2f)"
              scheme slots legacy_slots ratio ratio_ceiling
          else
            Printf.printf "  ok   %-4s scan_slots %.0f vs legacy %.0f (%.2fx)%s\n"
              scheme slots legacy_slots ratio
              (if elided > 0. then
                 Printf.sprintf ", %.0f elided publishes" elided
               else "");
          if List.mem scheme elision_schemes && not (elided > 0.) then
            problem "%s: read-side elision never fired" scheme)
    schemes;
  finish path ~what:"scan-overhaul"
    ~ok:(Printf.sprintf "scan overhaul OK (%d schemes)" (List.length schemes))
