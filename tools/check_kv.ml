(* Guard the KV-service invariants in a BENCH_orc.json produced by
   `bench/main.exe --kv --json`: at the guard keyspace (the largest
   size with >= 1M keys, falling back to the largest present so smoke
   artifacts are still checkable)

   - for every scheme measured under both kinds, the split-ordered map
     must serve at least [speedup_floor] x the fixed map's throughput —
     the whole point of the resizable directory,
   - every split row must have actually grown (grows > 0) and ended
     with a power-of-two directory,
   - every split row's p99.9 must sit inside [p999_budget_ns] — a
     deliberately loose ceiling that catches reclamation stalls and
     scan storms, not scheduler noise,
   - no row may leak (leaked = 0), at any size.

     dune exec tools/check_kv.exe -- BENCH_orc.json

   Exits 0 when every check passes, 1 otherwise. *)

open Tool_support

let speedup_floor = 2.0
let p999_budget_ns = 20_000_000.

let () =
  let path = usage_path ~tool:"check_kv" ~arg:"BENCH_orc.json" in
  let doc = load path in
  let kv = section doc ~path "kv_service" in
  let sizes =
    match Obs.Json.member "sizes" kv with
    | Some (Obs.Json.List l) -> l
    | Some _ | None -> fail "%s: kv_service.sizes missing (or not a list)" path
  in
  if sizes = [] then fail "%s: kv_service.sizes is empty" path;
  let rows_of entry =
    match Obs.Json.member "rows" entry with
    | Some (Obs.Json.List rows) -> rows
    | Some _ | None -> []
  in
  (* leak check covers every size *)
  List.iter
    (fun entry ->
      let keys = field entry "keys" in
      List.iter
        (fun row ->
          if field row "leaked" <> 0. then
            problem "%s/%s at %.0f keys: leaked %.0f objects"
              (Option.value ~default:"?" (str_field row "scheme"))
              (Option.value ~default:"?" (str_field row "kind"))
              keys (field row "leaked"))
        (rows_of entry))
    sizes;
  (* guard size: largest >= 1M, else largest present *)
  let by_keys = List.sort (fun a b -> compare (field a "keys") (field b "keys")) sizes in
  let guard =
    match List.filter (fun e -> field e "keys" >= 1_000_000.) by_keys with
    | [] -> List.nth by_keys (List.length by_keys - 1)
    | big -> List.nth big (List.length big - 1)
  in
  let gkeys = field guard "keys" in
  let rows = rows_of guard in
  if rows = [] then fail "%s: guard size %.0f has no rows" path gkeys;
  let find scheme kind =
    List.find_opt
      (fun row ->
        str_field row "scheme" = Some scheme && str_field row "kind" = Some kind)
      rows
  in
  let schemes =
    List.sort_uniq compare
      (List.filter_map (fun row -> str_field row "scheme") rows)
  in
  List.iter
    (fun scheme ->
      (match (find scheme "fixed", find scheme "split") with
      | Some fixed, Some split ->
          let f = field fixed "mops" and s = field split "mops" in
          if not (s >= speedup_floor *. f) then
            problem
              "%s at %.0f keys: split %.3f Mops/s < %.1fx fixed %.3f Mops/s"
              scheme gkeys s speedup_floor f
          else
            Printf.printf "  ok   %-6s split %.3f vs fixed %.3f Mops/s (%.1fx)\n"
              scheme s f (s /. Float.max 1e-9 f)
      | _, None -> problem "%s: no split row at the guard size" scheme
      | None, Some _ -> ());
      match find scheme "split" with
      | None -> ()
      | Some split ->
          let grows = field split "grows" in
          if not (grows > 0.) then
            problem "%s at %.0f keys: split map never grew" scheme gkeys;
          let buckets = field split "buckets" in
          let b = int_of_float buckets in
          if b <= 0 || b land (b - 1) <> 0 then
            problem "%s at %.0f keys: buckets %d not a power of two" scheme
              gkeys b;
          let p999 = field split "p999_ns" in
          if not (p999 <= p999_budget_ns) then
            problem "%s at %.0f keys: split p99.9 %.0f ns > %.0f ns budget"
              scheme gkeys p999 p999_budget_ns)
    schemes;
  finish path ~what:"kv-service"
    ~ok:
      (Printf.sprintf "kv service OK (%d schemes at %.0f keys)"
         (List.length schemes) gkeys)
