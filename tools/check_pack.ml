(* Guard the word-packing invariants in a BENCH_orc.json produced by
   `bench/main.exe --pack --json` (optionally with `--smoke`): for every
   scheme in the pack A/B section

   - the packed protected-read path must be allocation-free
     (read_words_per_op at most [packed_words_ceiling], a rounding
     allowance for fixed costs amortized over the measured hops),
   - the boxed ablation must actually allocate (read_words_per_op at
     least [boxed_words_floor] — if it reads 0 the ablation ref leaked
     and the A/B compared packed against packed),
   - packed retire latency must be no worse than boxed within
     [retire_slack] (a noise allowance, not a target: the packed
     transitions are fetch-and-add against the boxed CAS loop),
   - where CAS retries are measured (the contended Michael-list run),
     both modes must have completed the run (retries present and
     non-negative).

     dune exec tools/check_pack.exe -- BENCH_orc.json

   Exits 0 when every scheme passes, 1 otherwise. *)

open Tool_support

let packed_words_ceiling = 0.05
let boxed_words_floor = 0.5
let retire_slack = 2.0

let () =
  let path = usage_path ~tool:"check_pack" ~arg:"BENCH_orc.json" in
  let doc = load path in
  let rows = list_section doc ~path "pack" in
  let find scheme mode =
    List.find_opt
      (fun row ->
        str_field row "scheme" = Some scheme && str_field row "mode" = Some mode)
      rows
  in
  let schemes =
    List.sort_uniq compare
      (List.filter_map (fun row -> str_field row "scheme") rows)
  in
  if schemes = [] then fail "%s: pack section is empty" path;
  List.iter
    (fun scheme ->
      match (find scheme "boxed", find scheme "packed") with
      | None, _ | _, None -> problem "%s: missing boxed/packed pair" scheme
      | Some boxed, Some packed ->
          let pw = field packed "read_words_per_op"
          and bw = field boxed "read_words_per_op"
          and pr = field packed "retire_ns"
          and br = field boxed "retire_ns" in
          if not (pw <= packed_words_ceiling) then
            problem "%s: packed read allocates %.3f words/op (> %.2f)" scheme
              pw packed_words_ceiling;
          if not (bw >= boxed_words_floor) then
            problem
              "%s: boxed read allocates only %.3f words/op (< %.2f) — \
               ablation ref leaked?"
              scheme bw boxed_words_floor;
          if not (pr <= br *. retire_slack) then
            problem "%s: packed retire %.0fns vs boxed %.0fns (> %.1fx)" scheme
              pr br retire_slack;
          (match
             (Obs.Json.member "cas_retries" packed,
              Obs.Json.member "cas_retries" boxed)
           with
          | Some Obs.Json.Null, Some Obs.Json.Null -> ()
          | Some (Obs.Json.Int p), Some (Obs.Json.Int b) ->
              if p < 0 || b < 0 then
                problem "%s: negative cas_retries (%d packed, %d boxed)" scheme
                  p b
          | _ -> problem "%s: malformed cas_retries" scheme);
          if !failures = 0 then
            Printf.printf
              "  ok   %-6s packed %.3f w/op vs boxed %.3f, retire %.0fns vs \
               %.0fns\n"
              scheme pw bw pr br)
    schemes;
  finish path ~what:"pack"
    ~ok:(Printf.sprintf "word packing OK (%d schemes)" (List.length schemes))
