(* Validate a Chrome-trace JSON file emitted by `bench/main.exe --trace`
   (or any [Obs.Trace] export): the document must parse, carry a
   well-formed [traceEvents] list, and pair every guard "B" with an "E"
   per (pid, tid) lane — the property Perfetto needs to render the guard
   slices instead of silently dropping them.

     dune exec tools/check_trace.exe -- trace.json

   Exits 0 on a valid trace, 1 otherwise. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: check_trace <trace.json>"
  in
  let doc =
    match Obs.Json.of_file path with
    | doc -> doc
    | exception Obs.Json.Parse_error e -> fail "%s: JSON parse error: %s" path e
    | exception Sys_error e -> fail "%s" e
  in
  match Obs.Trace.validate doc with
  | Error e -> fail "%s: invalid trace: %s" path e
  | Ok () ->
      let n =
        match Obs.Json.member "traceEvents" doc with
        | Some (Obs.Json.List evs) -> List.length evs
        | Some _ | None -> 0
      in
      Printf.printf "%s: OK (%d events, all guard begin/end pairs balanced)\n"
        path n
