(* Validate a Chrome-trace JSON file emitted by `bench/main.exe --trace`
   (or any [Obs.Trace] export): the document must parse, carry a
   well-formed [traceEvents] list, and pair every guard "B" with an "E"
   per (pid, tid) lane — the property Perfetto needs to render the guard
   slices instead of silently dropping them.  Also tallies the instant
   lifecycle events by name; when the trace carries pool-allocator
   traffic (recycle/refill), prints the effective pool hit rate
   [recycle / (alloc + recycle)] — the Recycle event replaces Alloc on
   the hit path, so the two tallies partition hand-outs.

     dune exec tools/check_trace.exe -- trace.json

   Exits 0 on a valid trace, 1 otherwise. *)

open Tool_support

let tally evs =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match (Obs.Json.member "ph" ev, Obs.Json.member "name" ev) with
      | Some (Obs.Json.Str "i"), Some (Obs.Json.Str name) ->
          Hashtbl.replace counts name
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
      | _ -> ())
    evs;
  counts

let () =
  let path = usage_path ~tool:"check_trace" ~arg:"trace.json" in
  let doc = load path in
  match Obs.Trace.validate doc with
  | Error e -> fail "%s: invalid trace: %s" path e
  | Ok () ->
      let evs =
        match Obs.Json.member "traceEvents" doc with
        | Some (Obs.Json.List evs) -> evs
        | Some _ | None -> []
      in
      Printf.printf "%s: OK (%d events, all guard begin/end pairs balanced)\n"
        path (List.length evs);
      let counts = tally evs in
      let count name = Option.value ~default:0 (Hashtbl.find_opt counts name) in
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
      |> List.sort compare
      |> List.iter (fun (name, n) -> Printf.printf "  %-10s %8d\n" name n);
      let alloc = count "alloc" and recycle = count "recycle" in
      if recycle + count "refill" > 0 then
        Printf.printf "  pool hit rate: %.1f%% (%d recycled of %d hand-outs)\n"
          (100. *. float_of_int recycle /. float_of_int (alloc + recycle))
          recycle (alloc + recycle);
      (* scan-overhaul forensics: snapshots built per batching scan and
         publishes skipped by the read-side fast path *)
      let snapshot = count "snapshot" and elide = count "elide" in
      if snapshot + elide > 0 then
        Printf.printf "  scan overhaul: %d snapshot builds, %d elided publishes\n"
          snapshot elide
