(* Shared plumbing for the tools/ executables: argv handling, JSON
   loading with uniform error reporting, section lookup, typed field
   access on rows, and the accumulate-failures-then-exit protocol the
   check_*.exe CI guards all follow. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

(* Failures accumulate so one run reports every violated invariant, not
   just the first; [finish] turns the tally into the exit status. *)
let failures = ref 0

let problem fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "  FAIL %s\n" s)
    fmt

let usage_path ~tool ~arg =
  match Sys.argv with
  | [| _; path |] -> path
  | _ -> fail "usage: %s <%s>" tool arg

let load path =
  match Obs.Json.of_file path with
  | doc -> doc
  | exception Obs.Json.Parse_error e -> fail "%s: JSON parse error: %s" path e
  | exception Sys_error e -> fail "%s" e

let section doc ~path name =
  match Obs.Json.member name doc with
  | Some j -> j
  | None -> fail "%s: no %s section" path name

let list_section doc ~path name =
  match Obs.Json.member name doc with
  | Some (Obs.Json.List rows) -> rows
  | Some _ | None -> fail "%s: no %s section (or not a list)" path name

let num = function
  | Some (Obs.Json.Int i) -> float_of_int i
  | Some (Obs.Json.Float f) -> f
  | _ -> nan

let field row name = num (Obs.Json.member name row)

let str_field row name =
  match Obs.Json.member name row with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

let bool_field row name =
  match Obs.Json.member name row with
  | Some (Obs.Json.Bool b) -> Some b
  | _ -> None

let finish path ~what ~ok =
  if !failures > 0 then begin
    Printf.printf "%s: %d %s check(s) failed\n" path !failures what;
    exit 1
  end
  else Printf.printf "%s: %s\n" path ok
