(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) with container-friendly defaults, plus a Bechamel
   micro-benchmark suite for single-threaded per-operation costs.

   Output sections map 1:1 onto the paper (see DESIGN.md §3):
     Fig 1/2  - queues, enq/deq pairs (raw and normalized)
     Fig 3/4  - Michael-Harris list across schemes, three mixes
     Fig 5/6  - the four OrcGC-only/annotated lists
     Fig 7/8  - NM-tree and skip lists, large key range
     Table 1  - measured peak unreclaimed objects vs theoretical bounds
     Mem      - HS-skip vs CRF-skip footprint
     Ablation - PTP publish instruction, handover drain on clear

   On this single-machine setup the Intel/AMD pair of each figure
   collapses to one series; EXPERIMENTS.md records the mapping. *)

open Bechamel
open Toolkit

let params =
  {
    Harness.Experiments.threads = [ 1; 2; 4 ];
    duration = 0.15;
    list_keys = 1_000;
    big_keys = 20_000;
    csv = None;
  }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per structure family, measuring the
   single-threaded per-operation cost that dominates the figures'
   1-thread data points. *)

module Q_orc = Ds.Orc_ms_queue.Make (struct
  type t = int
end)

module Q_ptp = Ds.Ms_queue.Make
    (struct
      type t = int
    end)
    (Orc_core.Ptp.Make)

module L_orc = Ds.Orc_michael_list.Make ()
module L_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module T_orc = Ds.Orc_nm_tree.Make ()
module S_crf = Ds.Orc_crf_skiplist.Make ()

let micro_tests () =
  let q_orc = Q_orc.create () in
  let q_ptp = Q_ptp.create () in
  let l_orc = L_orc.create () in
  let l_hp = L_hp.create () in
  let t_orc = T_orc.create () in
  let s_crf = S_crf.create () in
  for k = 1 to 512 do
    ignore (L_orc.add l_orc k);
    ignore (L_hp.add l_hp k);
    ignore (T_orc.add t_orc k);
    ignore (S_crf.add s_crf k)
  done;
  [
    Test.make ~name:"msq-orc enq+deq pair"
      (Staged.stage (fun () ->
           Q_orc.enqueue q_orc 1;
           ignore (Q_orc.dequeue q_orc)));
    Test.make ~name:"msq-ptp enq+deq pair"
      (Staged.stage (fun () ->
           Q_ptp.enqueue q_ptp 1;
           ignore (Q_ptp.dequeue q_ptp)));
    Test.make ~name:"list-orc contains"
      (Staged.stage (fun () -> ignore (L_orc.contains l_orc 256)));
    Test.make ~name:"list-hp contains"
      (Staged.stage (fun () -> ignore (L_hp.contains l_hp 256)));
    Test.make ~name:"nmtree-orc contains"
      (Staged.stage (fun () -> ignore (T_orc.contains t_orc 256)));
    Test.make ~name:"crf-skip contains"
      (Staged.stage (fun () -> ignore (S_crf.contains s_crf 256)));
  ]

let run_micro () =
  Format.printf "@.== Bechamel micro-benchmarks (single-threaded ns/op) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Format.printf "  %-28s %10.1f ns/op@." name est;
              rows := (name, est) :: !rows
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    (micro_tests ());
  List.rev !rows

(* ------------------------------------------------------------------ *)

let print_mix_tables title tables =
  List.iter
    (fun (mix, series) ->
      Harness.Report.print_table ~title:(title ^ " / " ^ mix) series)
    tables

(* `--json` additionally writes every result to BENCH_orc.json so CI (or
   the next PR) can diff throughput and peak-unreclaimed mechanically
   instead of scraping the tables above. *)
let json_out =
  if Array.exists (( = ) "--json") Sys.argv then Some "BENCH_orc.json"
  else None

let mixes_json tables =
  Harness.Json.Obj
    (List.map (fun (mix, series) -> (mix, Harness.Json.of_series series)) tables)

let () =
  let open Harness in
  Format.printf "OrcGC reproduction benchmarks (threads: %s, %.2fs/point)@."
    (String.concat "," (List.map string_of_int params.threads))
    params.duration;

  let fig1 = Experiments.fig1_queues params in
  Report.print_table ~title:"Fig 1/2: queues, enq/deq pairs" fig1;
  Report.print_table ~title:"Fig 1/2 normalized (vs ms-hp)"
    ~unit_label:"x vs ms-hp"
    (Report.normalize ~base_label:"ms-hp" fig1);

  let fig3 = Experiments.fig3_list_schemes params in
  print_mix_tables "Fig 3/4: Michael-Harris list, schemes" fig3;

  let fig5 = Experiments.fig5_orc_lists params in
  print_mix_tables "Fig 5/6: lists with OrcGC" fig5;

  let fig7 = Experiments.fig7_trees params in
  print_mix_tables "Fig 7/8: tree and skip lists" fig7;

  let table1 = Experiments.table1_bounds params in
  Format.printf "@.== Table 1 (measured): peak unreclaimed objects ==@.";
  Format.printf "  %-10s %8s %6s %16s %12s %12s@." "scheme" "threads" "H"
    "peak-unreclaimed" "bound" "bound-value";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8d %6d %16d %12s %12s@."
        r.Experiments.b_scheme r.b_threads r.b_hps r.b_max_unreclaimed
        r.b_bound
        (if r.b_bound_value < 0 then "-" else string_of_int r.b_bound_value))
    table1;

  Format.printf "@.== Memory footprint: HS-skip vs CRF-skip (5) ==@.";
  Format.printf "  %-12s %12s %12s %12s %14s %14s@." "structure" "peak-live"
    "final-live" "~reachable" "pinned-chain" "after-unpin";
  List.iter
    (fun m ->
      Format.printf "  %-12s %12d %12d %12d %14d %14d@."
        m.Experiments.m_structure m.m_peak_live m.m_final_live m.m_reachable
        m.m_pinned_live m.m_pinned_after)
    (Experiments.mem_footprint params);

  Report.print_table ~title:"Ablation: PTP publish instruction"
    (Experiments.ablation_publish params);

  Format.printf "@.== Ablation: handover drain on clear (Alg 2 l.16-19) ==@.";
  List.iter
    (fun (label, residual) ->
      Format.printf "  %-24s residual unreclaimed = %d@." label residual)
    (Experiments.ablation_clear_handover params);

  Report.print_table ~title:"Extension: Michael hash table (write-heavy)"
    (Experiments.ext_hashmap params);

  let backend = Experiments.ablation_backend params in
  Format.printf "@.== Ablation: OrcGC protection backend (4) ==@.";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8.3f Mops/s   peak-unreclaimed=%d@."
        r.Experiments.k_backend r.k_mops r.k_peak_unreclaimed)
    backend;

  let micro = run_micro () in

  (match json_out with
  | None -> ()
  | Some path ->
      let j =
        Json.Obj
          [
            ( "params",
              Json.Obj
                [
                  ( "threads",
                    Json.List (List.map (fun t -> Json.Int t) params.threads)
                  );
                  ("duration_s", Json.Float params.duration);
                  ("list_keys", Json.Int params.list_keys);
                  ("big_keys", Json.Int params.big_keys);
                ] );
            ("unit", Json.Str "Mops/s unless stated");
            ("fig1_queues", Json.of_series fig1);
            ("fig3_list_schemes", mixes_json fig3);
            ("fig5_orc_lists", mixes_json fig5);
            ("fig7_trees", mixes_json fig7);
            ( "table1_bounds",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("scheme", Json.Str r.Experiments.b_scheme);
                         ("threads", Json.Int r.b_threads);
                         ("hps", Json.Int r.b_hps);
                         ("peak_unreclaimed", Json.Int r.b_max_unreclaimed);
                         ("bound", Json.Str r.b_bound);
                         ( "bound_value",
                           if r.b_bound_value < 0 then Json.Null
                           else Json.Int r.b_bound_value );
                       ])
                   table1) );
            ( "ablation_backend",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("backend", Json.Str r.Experiments.k_backend);
                         ("mops", Json.Float r.k_mops);
                         ("peak_unreclaimed", Json.Int r.k_peak_unreclaimed);
                       ])
                   backend) );
            ( "micro_ns_per_op",
              Json.Obj (List.map (fun (n, e) -> (n, Json.Float e)) micro) );
          ]
      in
      Json.to_file path j;
      Format.printf "@.wrote %s@." path);
  Format.printf "@.done.@."
