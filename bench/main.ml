(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) with container-friendly defaults, plus a Bechamel
   micro-benchmark suite for single-threaded per-operation costs.

   Output sections map 1:1 onto the paper (see DESIGN.md §3):
     Fig 1/2  - queues, enq/deq pairs (raw and normalized)
     Fig 3/4  - Michael-Harris list across schemes, three mixes
     Fig 5/6  - the four OrcGC-only/annotated lists
     Fig 7/8  - NM-tree and skip lists, large key range
     Table 1  - measured peak unreclaimed objects vs theoretical bounds
     Mem      - HS-skip vs CRF-skip footprint
     Ablation - PTP publish instruction, handover drain on clear
     Tracing  - per-scheme retire→free latency + null-sink overhead

   Flags:
     --json         also write every result to BENCH_orc.json
     --trace=FILE   dump a Chrome-trace (Perfetto-loadable) of the traced
                    queue runs to FILE
     --smoke        seconds-not-minutes mode: only the traced runs, the
                    overhead check, the allocator comparison and the
                    micros — enough to exercise `--json --trace` end to
                    end
     --alloc        just the System-vs-Pool allocator comparison
                    (per-scheme throughput + minor-GC deltas at equal
                    op count)
     --scan         just the scan-overhaul A/B: snapshot scans and
                    publication elision vs the legacy walk, per scheme
     --pack         just the word-packing A/B: packed headers + tagged
                    links vs the boxed ablation (minor words/op on the
                    protected-read path, retire ns, CAS retries)
     --background   just the background-pipeline section: mutator
                    retire-path tail latency (p50/p99/p99.9) inline vs
                    routed through the transfer channel to a reclaimer
                    domain, plus the neutralization and reclaimer-kill
                    batteries

   On this single-machine setup the Intel/AMD pair of each figure
   collapses to one series; EXPERIMENTS.md records the mapping. *)

open Bechamel
open Toolkit

let arg_flag name = Array.exists (( = ) name) Sys.argv

let arg_value prefix =
  Array.fold_left
    (fun acc a ->
      if String.length a > String.length prefix && String.starts_with ~prefix a
      then Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
      else acc)
    None Sys.argv

let smoke = arg_flag "--smoke"
let churn_only = arg_flag "--churn"
let alloc_only = arg_flag "--alloc"
let scan_only = arg_flag "--scan"
let pack_only = arg_flag "--pack"
let metrics_only = arg_flag "--metrics"
let background_only = arg_flag "--background"
let adaptive_only = arg_flag "--adaptive"
let kv_only = arg_flag "--kv"
let trace_out = arg_value "--trace="

let json_out = if arg_flag "--json" then Some "BENCH_orc.json" else None

let params =
  if smoke then
    {
      Harness.Experiments.threads = [ 1; 2 ];
      duration = 0.05;
      list_keys = 200;
      big_keys = 1_000;
      csv = None;
    }
  else
    {
      Harness.Experiments.threads = [ 1; 2; 4 ];
      duration = 0.15;
      list_keys = 1_000;
      big_keys = 20_000;
      csv = None;
    }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per structure family, measuring the
   single-threaded per-operation cost that dominates the figures'
   1-thread data points. *)

module Q_orc = Ds.Orc_ms_queue.Make (struct
  type t = int
end)

module Q_ptp = Ds.Ms_queue.Make
    (struct
      type t = int
    end)
    (Orc_core.Ptp.Make)

module L_orc = Ds.Orc_michael_list.Make ()
module L_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module T_orc = Ds.Orc_nm_tree.Make ()
module S_crf = Ds.Orc_crf_skiplist.Make ()

let micro_tests () =
  let q_orc = Q_orc.create () in
  let q_ptp = Q_ptp.create () in
  let l_orc = L_orc.create () in
  let l_hp = L_hp.create () in
  let t_orc = T_orc.create () in
  let s_crf = S_crf.create () in
  for k = 1 to 512 do
    ignore (L_orc.add l_orc k);
    ignore (L_hp.add l_hp k);
    ignore (T_orc.add t_orc k);
    ignore (S_crf.add s_crf k)
  done;
  [
    Test.make ~name:"msq-orc enq+deq pair"
      (Staged.stage (fun () ->
           Q_orc.enqueue q_orc 1;
           ignore (Q_orc.dequeue q_orc)));
    Test.make ~name:"msq-ptp enq+deq pair"
      (Staged.stage (fun () ->
           Q_ptp.enqueue q_ptp 1;
           ignore (Q_ptp.dequeue q_ptp)));
    Test.make ~name:"list-orc contains"
      (Staged.stage (fun () -> ignore (L_orc.contains l_orc 256)));
    Test.make ~name:"list-hp contains"
      (Staged.stage (fun () -> ignore (L_hp.contains l_hp 256)));
    Test.make ~name:"nmtree-orc contains"
      (Staged.stage (fun () -> ignore (T_orc.contains t_orc 256)));
    Test.make ~name:"crf-skip contains"
      (Staged.stage (fun () -> ignore (S_crf.contains s_crf 256)));
  ]

let run_micro () =
  Format.printf "@.== Bechamel micro-benchmarks (single-threaded ns/op) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Format.printf "  %-28s %10.1f ns/op@." name est;
              rows := (name, est) :: !rows
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    (micro_tests ());
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* Reclamation tracing: traced queue runs + null-sink overhead.        *)

let hist_report get sink =
  Option.map (fun h -> Obs.Hist.report h) (get sink)

let run_tracing () =
  let open Harness in
  Format.printf "@.== Reclamation tracing (MS queue, enq/deq pairs) ==@.";
  let traced = Experiments.traced_queue_runs params in
  Format.printf "  %-10s %10s %14s %14s %12s@." "scheme" "Mops/s"
    "retire-free-p50" "retire-free-p99" "samples";
  List.iter
    (fun r ->
      match hist_report Obs.Sink.retire_free_hist r.Experiments.t_sink with
      | Some rep ->
          Format.printf "  %-10s %10.3f %12dns %12dns %12d@."
            r.Experiments.t_name r.t_mops rep.Obs.Hist.p50 rep.Obs.Hist.p99
            rep.Obs.Hist.count
      | None ->
          Format.printf "  %-10s %10.3f %14s %14s %12s@." r.Experiments.t_name
            r.t_mops "-" "-" "-")
    traced;
  let null_mops, active_mops = Experiments.tracing_overhead params in
  let overhead_pct =
    if active_mops > 0. then 100. *. (1. -. (active_mops /. null_mops)) else 0.
  in
  Format.printf
    "  null-sink %8.3f Mops/s   active-sink %8.3f Mops/s   capture cost \
     %.1f%%@."
    null_mops active_mops overhead_pct;
  (match trace_out with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Trace.combined
          (List.map
             (fun r -> (r.Experiments.t_name, r.Experiments.t_sink))
             traced)
      in
      (match Obs.Trace.validate doc with
      | Ok () -> ()
      | Error e -> Format.printf "  WARNING: trace failed validation: %s@." e);
      Obs.Json.to_file path doc;
      Format.printf "  wrote %s (load it at https://ui.perfetto.dev)@." path);
  (traced, null_mops, active_mops)

let tracing_json (traced, null_mops, active_mops) =
  let open Harness in
  let scheme_json r =
    let hist name get =
      match hist_report get r.Experiments.t_sink with
      | Some rep -> [ (name, Obs.Hist.report_to_json rep) ]
      | None -> []
    in
    Json.Obj
      ([
         ("scheme", Json.Str r.Experiments.t_name);
         ("mops", Json.Float r.t_mops);
       ]
      @ hist "retire_free_ns" Obs.Sink.retire_free_hist
      @ hist "guard_ns" Obs.Sink.guard_hist
      @ hist "scan_ns" Obs.Sink.scan_hist)
  in
  Json.Obj
    [
      ( "overhead",
        Json.Obj
          [
            ("null_sink_mops", Json.Float null_mops);
            ("active_sink_mops", Json.Float active_mops);
            ( "capture_cost_pct",
              Json.Float
                (if null_mops > 0. then
                   100. *. (1. -. (active_mops /. null_mops))
                 else 0.) );
          ] );
      ("schemes", Json.List (List.map scheme_json traced));
    ]

(* ------------------------------------------------------------------ *)
(* Domain churn: reclamation latency while short-lived domains die at
   random points.  The interesting number is the retire->free p99 —
   how long an object can linger when its retirer dies and a survivor
   has to adopt it — plus the orphan-publish -> adopt latency. *)

let run_churn () =
  Format.printf
    "@.== Domain churn: reclamation under thread death (%d domains/battery) \
     ==@."
    (Chaos.default.waves * Chaos.default.domains_per_wave);
  Format.printf "  %-8s %14s %14s %12s %10s %6s@." "scheme" "retire-free-p50"
    "retire-free-p99" "adopt-p99" "domains" "ok";
  List.map
    (fun (name, battery) ->
      let sink = Obs.Sink.make () in
      let r = battery { Chaos.default with sink } in
      let rf =
        match Obs.Sink.retire_free_hist sink with
        | Some h when Obs.Hist.count h > 0 -> Some (Obs.Hist.report h)
        | _ -> None
      in
      let ad =
        match Obs.Sink.adopt_hist sink with
        | Some h when Obs.Hist.count h > 0 -> Some (Obs.Hist.report h)
        | _ -> None
      in
      let p get = function
        | Some (rep : Obs.Hist.report) -> Printf.sprintf "%dns" (get rep)
        | None -> "-"
      in
      Format.printf "  %-8s %14s %14s %12s %10d %6b@." name
        (p (fun rep -> rep.Obs.Hist.p50) rf)
        (p (fun rep -> rep.Obs.Hist.p99) rf)
        (p (fun rep -> rep.Obs.Hist.p99) ad)
        r.Chaos.domains (Chaos.ok r);
      (name, r, rf, ad))
    Chaos.batteries

let churn_json results =
  let open Harness in
  Json.Obj
    (List.map
       (fun (name, (r : Chaos.report), rf, ad) ->
         ( name,
           Json.Obj
             ([
                ("domains", Json.Int r.Chaos.domains);
                ("killed", Json.Int r.Chaos.killed);
                ("abandoned", Json.Int r.Chaos.abandoned);
                ("peak_unreclaimed", Json.Int r.Chaos.peak_unreclaimed);
                ("ok", Json.Bool (Chaos.ok r));
              ]
             @ (match rf with
               | Some rep -> [ ("retire_free_ns", Obs.Hist.report_to_json rep) ]
               | None -> [])
             @
             match ad with
             | Some rep -> [ ("adopt_ns", Obs.Hist.report_to_json rep) ]
             | None -> []) ))
       results)

(* ------------------------------------------------------------------ *)
(* Allocator modes: System vs the type-stable Pool at equal op count.
   Single-domain runs so the per-domain Gc.quick_stat deltas (minor
   words / minor collections) are well-defined; the claim to observe is
   a ≥90% pool hit rate at steady state and strictly fewer minor
   collections than System. *)

let run_alloc () =
  let ops = if smoke then 50_000 else 200_000 in
  Format.printf
    "@.== Allocator: System vs type-stable Pool (%d ops, 1 domain) ==@." ops;
  let rows = Harness.Experiments.alloc_modes ~ops params in
  Format.printf "  %-10s %-8s %8s %9s %12s %14s %10s@." "workload" "mode"
    "Mops/s" "hit-rate" "remote-free" "minor-words" "minor-gcs";
  List.iter
    (fun r ->
      let open Harness.Experiments in
      Format.printf "  %-10s %-8s %8.3f %8.1f%% %12d %14.0f %10d@." r.a_workload
        r.a_mode r.a_mops
        (100. *. r.a_hit_rate)
        r.a_remote_frees r.a_minor_words r.a_minor_collections)
    rows;
  rows

let alloc_json rows =
  let open Harness in
  Json.List
    (List.map
       (fun r ->
         let open Experiments in
         Json.Obj
           [
             ("workload", Json.Str r.a_workload);
             ("mode", Json.Str r.a_mode);
             ("ops", Json.Int r.a_ops);
             ("mops", Json.Float r.a_mops);
             ("hit_rate", Json.Float r.a_hit_rate);
             ("pool_hits", Json.Int r.a_hits);
             ("pool_misses", Json.Int r.a_misses);
             ("remote_frees", Json.Int r.a_remote_frees);
             ("refills", Json.Int r.a_refills);
             ("minor_words", Json.Float r.a_minor_words);
             ("minor_collections", Json.Int r.a_minor_collections);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Scan overhaul: per-scheme scan cost and read-side publish cost,
   legacy walk vs snapshot scan + publication elision (A/B over the
   [Reclaim.Scan_set] ablation refs).  Each run drives a scheme
   directly: a few staged rows carry protections so scans have real
   hazard populations to walk, then unprotected nodes are retired until
   the scheme has performed a fixed number of batching scans.  The
   headline number is scan_slots per retire — O(H·t) per scan under the
   snapshot (≈ Ht/R per retire), O(R·H·t) under the legacy
   walk-per-node. *)

type snode = { s_hdr : Memdom.Hdr.t }

module SN = struct
  type t = snode

  let hdr n = n.s_hdr
end

module Scan_hp = Reclaim.Hp.Make (SN)
module Scan_ptb = Reclaim.Ptb.Make (SN)
module Scan_he = Reclaim.He.Make (SN)
module Scan_ibr = Reclaim.Ibr.Make (SN)

type scan_row = {
  sc_scheme : string;
  sc_mode : string; (* "legacy" | "overhaul" *)
  sc_retires : int;
  sc_scans : int;
  sc_scan_slots : int;
  sc_slots_per_retire : float;
  sc_snapshot_builds : int;
  sc_snapshot_hits : int;
  sc_elided : int;
  sc_retire_ns : float;
  sc_read_ns : float;
  sc_rf_p50 : int; (* retire->free latency, -1 when no samples *)
  sc_rf_p99 : int;
}

let scan_run (module M : Reclaim.Scheme_intf.S with type node = snode) name
    ~overhaul =
  let saved_snap = !Reclaim.Scan_set.snapshot_scan
  and saved_elide = !Reclaim.Scan_set.elide_publish in
  Fun.protect ~finally:(fun () ->
      Reclaim.Scan_set.snapshot_scan := saved_snap;
      Reclaim.Scan_set.elide_publish := saved_elide)
  @@ fun () ->
  Reclaim.Scan_set.snapshot_scan := overhaul;
  Reclaim.Scan_set.elide_publish := overhaul;
  (* stage a fixed watermark so every scan walks the same row count
     regardless of which sections ran before this one *)
  Atomicx.Registry.reserve 8;
  let sink = Obs.Sink.make () in
  (* the sink hangs off the allocator so frees land in the
     retire->free histogram *)
  let alloc = Memdom.Alloc.create ~sink ("scan-" ^ name) in
  let s = M.create ~max_hps:4 alloc in
  (* one protected retiree so snapshot membership gets real hits; for
     era/interval schemes the protection is the tid-1 reservation
     pinned by [begin_op], for pointer schemes the raw publish *)
  M.begin_op s ~tid:1;
  let pinned = { s_hdr = Memdom.Alloc.hdr alloc () } in
  M.protect_raw s ~tid:1 ~idx:0 (Some pinned);
  M.retire s ~tid:0 pinned;
  let open Reclaim.Scheme_intf in
  let target_scans = (M.stats s).scans + 6 in
  let cap = 200_000 in
  let retires = ref 0 in
  let t0 = Obs.Sink.now_ns () in
  while
    !retires < cap
    && ((!retires land 63) <> 0 || (M.stats s).scans < target_scans)
  do
    M.retire s ~tid:0 { s_hdr = Memdom.Alloc.hdr alloc () };
    incr retires
  done;
  let retire_ns =
    float_of_int (Obs.Sink.now_ns () - t0) /. float_of_int (max 1 !retires)
  in
  let st = M.stats s in
  (* read-side micro: repeated protected loads of an unchanging link —
     the elision fast path when the overhaul is on.  Run against a
     null-sink instance so the number is the production fast path, not
     the cost of tracing every elide into an active ring. *)
  let s2 = M.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  M.begin_op s2 ~tid:0;
  let n0 = { s_hdr = Memdom.Alloc.hdr alloc () } in
  let link = Atomicx.Link.make (Atomicx.Link.Ptr n0) in
  let reads = 50_000 in
  let t1 = Obs.Sink.now_ns () in
  for _ = 1 to reads do
    ignore (M.get_protected s2 ~tid:0 ~idx:0 link)
  done;
  let read_ns =
    float_of_int (Obs.Sink.now_ns () - t1) /. float_of_int reads
  in
  let elided = st.elided + (M.stats s2).elided in
  M.end_op s2 ~tid:0;
  M.end_op s ~tid:1;
  M.flush s;
  let rf_p50, rf_p99 =
    match Obs.Sink.retire_free_hist sink with
    | Some h when Obs.Hist.count h > 0 ->
        let rep = Obs.Hist.report h in
        (rep.Obs.Hist.p50, rep.Obs.Hist.p99)
    | _ -> (-1, -1)
  in
  {
    sc_scheme = name;
    sc_mode = (if overhaul then "overhaul" else "legacy");
    sc_retires = !retires;
    sc_scans = st.scans;
    sc_scan_slots = st.scan_slots;
    sc_slots_per_retire =
      float_of_int st.scan_slots /. float_of_int (max 1 !retires);
    sc_snapshot_builds = st.snapshot_builds;
    sc_snapshot_hits = st.snapshot_hits;
    sc_elided = elided;
    sc_retire_ns = retire_ns;
    sc_read_ns = read_ns;
    sc_rf_p50 = rf_p50;
    sc_rf_p99 = rf_p99;
  }

let run_scan () =
  Format.printf
    "@.== Scan overhaul: snapshot scans + publication elision (A/B) ==@.";
  Format.printf "  %-6s %-9s %8s %6s %11s %11s %6s %8s %10s %10s %12s@."
    "scheme" "mode" "retires" "scans" "scan-slots" "slots/ret" "snaps"
    "elided" "retire-ns" "read-ns" "rf-p99";
  let schemes =
    [
      ("hp", (module Scan_hp : Reclaim.Scheme_intf.S with type node = snode));
      ("ptb", (module Scan_ptb));
      ("he", (module Scan_he));
      ("ibr", (module Scan_ibr));
    ]
  in
  List.concat_map
    (fun (name, m) ->
      List.map
        (fun overhaul ->
          let r = scan_run m name ~overhaul in
          Format.printf
            "  %-6s %-9s %8d %6d %11d %11.2f %6d %8d %10.1f %10.1f %10dns@."
            r.sc_scheme r.sc_mode r.sc_retires r.sc_scans r.sc_scan_slots
            r.sc_slots_per_retire r.sc_snapshot_builds r.sc_elided
            r.sc_retire_ns r.sc_read_ns r.sc_rf_p99;
          r)
        [ false; true ])
    schemes

let scan_json rows =
  let open Harness in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("scheme", Json.Str r.sc_scheme);
             ("mode", Json.Str r.sc_mode);
             ("retires", Json.Int r.sc_retires);
             ("scans", Json.Int r.sc_scans);
             ("scan_slots", Json.Int r.sc_scan_slots);
             ("slots_per_retire", Json.Float r.sc_slots_per_retire);
             ("snapshot_builds", Json.Int r.sc_snapshot_builds);
             ("snapshot_hits", Json.Int r.sc_snapshot_hits);
             ("elided", Json.Int r.sc_elided);
             ("retire_ns", Json.Float r.sc_retire_ns);
             ("read_ns", Json.Float r.sc_read_ns);
             ( "retire_free_p50_ns",
               if r.sc_rf_p50 < 0 then Json.Null else Json.Int r.sc_rf_p50 );
             ( "retire_free_p99_ns",
               if r.sc_rf_p99 < 0 then Json.Null else Json.Int r.sc_rf_p99 );
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Word-packing A/B: packed headers + tagged-immediate links vs the
   boxed ablation ([Memdom.Hdr.packed] / [Atomicx.Link.tagged]).  The
   headline numbers are minor-heap words allocated per protected-read
   (exactly 0 in packed mode: views are immediates and HP-style schemes
   publish to the unboxed uid plane), the per-retire latency of the
   packed header transitions (fetch-and-add vs the boxed CAS loop), and
   the CAS-retry (restart) counts of a contended Michael list on the
   word-CAS vs box-identity planes. *)

type pnode = { p_hdr : Memdom.Hdr.t; p_next : pnode Atomicx.Link.t }

module Pack_hp = Reclaim.Hp.Make (struct
  type t = pnode

  let hdr n = n.p_hdr
end)

module type PACK_ORC = sig
  type t
  type guard

  module Ptr : sig
    type t

    val view : t -> pnode Atomicx.Link.view
    val node_exn : t -> pnode
  end

  val create :
    ?max_hps:int ->
    ?sink:Obs.Sink.t ->
    ?arena:pnode Atomicx.Link.arena ->
    Memdom.Alloc.t ->
    t

  val with_guard : t -> (guard -> 'a) -> 'a
  val ptr : guard -> Ptr.t
  val load : guard -> pnode Atomicx.Link.t -> Ptr.t -> unit
  val assign : guard -> Ptr.t -> Ptr.t -> unit
  val alloc_node_into : guard -> Ptr.t -> (Memdom.Hdr.t -> pnode) -> pnode
  val new_link : guard -> pnode Atomicx.Link.state -> pnode Atomicx.Link.t
  val store_v : guard -> pnode Atomicx.Link.t -> pnode Atomicx.Link.view -> unit
  val v_ptr : t -> pnode -> pnode Atomicx.Link.view
  val flush : t -> unit
end

module Pack_orc = Orc_core.Orc.Make (struct
  type t = pnode

  let hdr n = n.p_hdr
  let iter_links n f = f n.p_next
end)

module Pack_orc_hp = Orc_core.Orc_hp.Make (struct
  type t = pnode

  let hdr n = n.p_hdr
  let iter_links n f = f n.p_next
end)

module type PACK_SET = sig
  include Ds.Intf.SET

  val restarts : t -> int
end

module Pack_list_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)

type pack_row = {
  pk_scheme : string;
  pk_mode : string; (* "packed" | "boxed" *)
  pk_read_ns : float; (* per protected link hop *)
  pk_read_words : float; (* minor words per protected link hop *)
  pk_retire_ns : float;
  pk_cas_retries : int; (* michael-list restarts, -1 when not measured *)
}

let with_pack ~on f =
  let sp = !Memdom.Hdr.packed and st = !Atomicx.Link.tagged in
  Fun.protect ~finally:(fun () ->
      Memdom.Hdr.packed := sp;
      Atomicx.Link.tagged := st)
  @@ fun () ->
  Memdom.Hdr.packed := on;
  Atomicx.Link.tagged := on;
  f ()

(* Minor-words + wall-clock delta around [f].  [Gc.minor_words] itself
   allocates the boxed float it returns (after reading the counter), so
   one boxed-float overhead is calibrated out. *)
let measure_words_ns f =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let overhead = b -. a in
  let t0 = Obs.Sink.now_ns () in
  let w0 = Gc.minor_words () in
  f ();
  let w1 = Gc.minor_words () in
  let t1 = Obs.Sink.now_ns () in
  (Float.max 0. (w1 -. w0 -. overhead), float_of_int (t1 - t0))

let pack_chain = 64
let pack_reads = if smoke then 2_000 else 10_000
let pack_retires = if smoke then 5_000 else 20_000

let pack_hp_run ~packed =
  with_pack ~on:packed @@ fun () ->
  let open Atomicx in
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null "pack-hp" in
  let s = Pack_hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  let arena = Memdom.Handle.arena ~hdr:(fun n -> n.p_hdr) () in
  let tail =
    { p_hdr = Memdom.Alloc.hdr alloc (); p_next = Link.make_in arena Link.Null }
  in
  let head = ref tail in
  for _ = 2 to pack_chain do
    head :=
      {
        p_hdr = Memdom.Alloc.hdr alloc ();
        p_next = Link.make_in arena (Link.Ptr !head);
      }
  done;
  let root = Link.make_in arena (Link.Ptr !head) in
  Pack_hp.begin_op s ~tid:0;
  let rec walk link idx =
    let v = Pack_hp.get_protected_v s ~tid:0 ~idx link in
    if Link.v_has_target v then
      walk (Link.v_target_exn link v).p_next (1 - idx)
  in
  let words, ns =
    measure_words_ns (fun () ->
        for _ = 1 to pack_reads do
          walk root 0
        done)
  in
  let hops = float_of_int (pack_reads * pack_chain) in
  (* retire side: park-and-scan cycles through the packed transitions *)
  let t0 = Obs.Sink.now_ns () in
  for _ = 1 to pack_retires do
    Pack_hp.retire s ~tid:0
      { p_hdr = Memdom.Alloc.hdr alloc (); p_next = Link.make_in arena Link.Null }
  done;
  let retire_ns =
    float_of_int (Obs.Sink.now_ns () - t0) /. float_of_int pack_retires
  in
  Pack_hp.end_op s ~tid:0;
  Pack_hp.flush s;
  {
    pk_scheme = "hp";
    pk_mode = (if packed then "packed" else "boxed");
    pk_read_ns = ns /. hops;
    pk_read_words = words /. hops;
    pk_retire_ns = retire_ns;
    pk_cas_retries = -1;
  }

let pack_orc_run (module O : PACK_ORC) name ~packed =
  with_pack ~on:packed @@ fun () ->
  let open Atomicx in
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null ("pack-" ^ name) in
  let arena = Memdom.Handle.arena ~hdr:(fun n -> n.p_hdr) () in
  let o = O.create ~sink:Obs.Sink.null ~arena alloc in
  let row =
    O.with_guard o (fun g ->
        let root = O.new_link g Link.Null in
        let np = O.ptr g in
        for _ = 1 to pack_chain do
          let n =
            O.alloc_node_into g np (fun hdr ->
                { p_hdr = hdr; p_next = O.new_link g Link.Null })
          in
          (* prepend: n.next takes the old chain head, root takes n *)
          O.store_v g n.p_next (Link.view root);
          O.store_v g root (O.v_ptr o n)
        done;
        let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
        let words, ns =
          measure_words_ns (fun () ->
              for _ = 1 to pack_reads / 4 do
                O.load g root curr;
                while Link.v_has_target (O.Ptr.view curr) do
                  let c = O.Ptr.node_exn curr in
                  O.load g c.p_next next;
                  O.assign g prev curr;
                  O.assign g curr next
                done
              done)
        in
        let hops = float_of_int (pack_reads / 4 * pack_chain) in
        (* retire side: link in, unlink — the count hits zero under a
           live hazard, driving the full retire/handover machinery *)
        let sl = O.new_link g Link.Null in
        let t0 = Obs.Sink.now_ns () in
        for _ = 1 to pack_retires / 4 do
          let n =
            O.alloc_node_into g np (fun hdr ->
                { p_hdr = hdr; p_next = O.new_link g Link.Null })
          in
          O.store_v g sl (O.v_ptr o n);
          O.store_v g sl Link.v_null
        done;
        let retire_ns =
          float_of_int (Obs.Sink.now_ns () - t0)
          /. float_of_int (pack_retires / 4)
        in
        {
          pk_scheme = name;
          pk_mode = (if packed then "packed" else "boxed");
          pk_read_ns = ns /. hops;
          pk_read_words = words /. hops;
          pk_retire_ns = retire_ns;
          pk_cas_retries = -1;
        })
  in
  O.flush o;
  row

(* Contended Michael-list restarts: two domains hammer the same small
   key range; restarts count window-validation failures and lost CAS
   races — the packed plane must not retry more than the boxed one. *)
let pack_list_retries (module L : PACK_SET) ~packed =
  with_pack ~on:packed @@ fun () ->
  let l = L.create () in
  for k = 1 to 128 do
    ignore (L.add l k)
  done;
  let ops = if smoke then 5_000 else 20_000 in
  let worker seed () =
    let x = ref seed in
    for _ = 1 to ops do
      (* xorshift; keys land in [1, 128] *)
      x := !x lxor (!x lsl 13);
      x := !x lxor (!x lsr 7);
      x := !x lxor (!x lsl 17);
      let key = 1 + (!x land 127) in
      match !x land 3 with
      | 0 -> ignore (L.add l key)
      | 1 -> ignore (L.remove l key)
      | _ -> ignore (L.contains l key)
    done
  in
  let ds = List.map (fun seed -> Domain.spawn (worker seed)) [ 0x9E37; 0x79B9 ] in
  List.iter Domain.join ds;
  let r = L.restarts l in
  L.destroy l;
  L.flush l;
  r

let run_pack () =
  Format.printf
    "@.== Word packing: packed headers + tagged links vs boxed (A/B) ==@.";
  Format.printf "  %-8s %-8s %12s %14s %12s %12s@." "scheme" "mode" "read-ns"
    "words/read" "retire-ns" "cas-retries";
  let module L_orc_pack = Ds.Orc_michael_list.Make () in
  let rows =
    List.concat_map
      (fun packed ->
        let hp = pack_hp_run ~packed in
        let orc = pack_orc_run (module Pack_orc) "orc" ~packed in
        let orc_hp = pack_orc_run (module Pack_orc_hp) "orc-hp" ~packed in
        let hp_retries = pack_list_retries (module Pack_list_hp) ~packed in
        let orc_retries = pack_list_retries (module L_orc_pack) ~packed in
        [
          { hp with pk_cas_retries = hp_retries };
          { orc with pk_cas_retries = orc_retries };
          orc_hp;
        ])
      [ false; true ]
  in
  List.iter
    (fun r ->
      Format.printf "  %-8s %-8s %12.1f %14.3f %12.1f %12s@." r.pk_scheme
        r.pk_mode r.pk_read_ns r.pk_read_words r.pk_retire_ns
        (if r.pk_cas_retries < 0 then "-" else string_of_int r.pk_cas_retries))
    rows;
  rows

let pack_json rows =
  let open Harness in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("scheme", Json.Str r.pk_scheme);
             ("mode", Json.Str r.pk_mode);
             ("read_ns", Json.Float r.pk_read_ns);
             ("read_words_per_op", Json.Float r.pk_read_words);
             ("retire_ns", Json.Float r.pk_retire_ns);
             ( "cas_retries",
               if r.pk_cas_retries < 0 then Json.Null
               else Json.Int r.pk_cas_retries );
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Live metrics plane: sampler-overhead A/B on a guard-per-op list
   traversal, the raw watchdog-stamp cost on a bare guard bracket, a
   hot-path allocation audit (gauge set, counter bump, guard bracket —
   all must stay at exactly zero minor words), the chaos stall battery,
   and a snapshot of the sampled series. *)

type metrics_row = {
  mt_off_ns : float; (* list contains ns/op, plane off (inert sleeper) *)
  mt_on_ns : float; (* same loop, sampler running + watchdog stamping *)
  mt_overhead_pct : float;
  mt_bracket_idle_ns : float; (* bare begin/end bracket, plane off, 1 domain *)
  mt_bracket_off_ns : float; (* same bracket, inert sleeper, clock at zero *)
  mt_bracket_on_ns : float; (* same bracket, sampler on, clock live *)
  mt_gauge_words : float; (* minor words per op, must be 0 *)
  mt_counter_words : float;
  mt_guard_words : float;
  mt_stall : Chaos.stall_report;
  mt_series : Harness.Json.t;
  mt_prom_lines : int;
}

(* min over runs: the robust estimator for "how fast can this loop go",
   which is what an overhead comparison needs *)
let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let v = f () in
    if v < !best then best := v
  done;
  !best

let run_metrics () =
  Format.printf "@.== Live metrics plane: sampler, watchdog, gauges ==@.";
  Atomicx.Registry.reserve 8;
  (* thresholded workload: Michael-Harris list contains over hp — one
     guard bracket per op around a real traversal, the shape the ≤3%
     sampler-overhead budget is stated against *)
  let keys = 256 in
  let ops = if smoke then 8_000 else 20_000 in
  let reps = 12 in
  let l = L_hp.create () in
  for k = 1 to keys do
    ignore (L_hp.add l k)
  done;
  let time_ns_per_op () =
    let t0 = Obs.Sink.now_ns () in
    for k = 1 to ops do
      ignore (L_hp.contains l (1 + (k mod keys)))
    done;
    float_of_int (Obs.Sink.now_ns () - t0) /. float_of_int ops
  in
  (* raw stamp cost: a bare begin/end bracket, allocation-free, so the
     delta between matched configurations is exactly the watchdog's
     clock read + row stores *)
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null "metrics-bench" in
  let s = Scan_hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  let bracket_ops = 100_000 in
  let bracket_ns_per_op () =
    let t0 = Obs.Sink.now_ns () in
    for _ = 1 to bracket_ops do
      Scan_hp.begin_op s ~tid:0;
      Scan_hp.end_op s ~tid:0
    done;
    float_of_int (Obs.Sink.now_ns () - t0) /. float_of_int bracket_ops
  in
  (* Plane-off measurements first: once a sampler starts, the watchdog
     clock is live for the rest of the process.  The off-side runs keep
     an inert sleeper domain alive so both sides of the A/B pay the
     runtime's second-domain tax — measured at ~40 ns/op on fenced-store
     loops on this 1-CPU container even when the extra domain only
     sleeps — and the comparison isolates the metrics plane itself. *)
  let bracket_idle_ns = best_of reps bracket_ns_per_op in
  let stop_ctl = Atomic.make false in
  let ctl =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_ctl) do
          Unix.sleepf 0.005
        done)
  in
  let off_ns = best_of reps time_ns_per_op in
  let bracket_off_ns = best_of reps bracket_ns_per_op in
  Atomic.set stop_ctl true;
  Domain.join ctl;
  let sink = Obs.Sink.make () in
  let sampler =
    Obs.Sampler.start ~interval:0.005 ~registry:Obs.Metrics.default ~sink ()
  in
  let on_ns = best_of reps time_ns_per_op in
  let bracket_on_ns = best_of reps bracket_ns_per_op in
  let overhead_pct =
    Float.max 0. (100. *. (on_ns -. off_ns) /. Float.max 1e-9 off_ns)
  in
  (* hot-path allocation audit (the acceptance gate).  The guard loop
     here is the bare begin/end bracket — the part the watchdog added
     stores to; the protect path's allocation behaviour is the pack
     section's concern. *)
  let g = Obs.Metrics.gauge Obs.Metrics.default "orcgc_bench_gauge" in
  let c =
    Obs.Metrics.counter Obs.Metrics.default "orcgc_bench_counter_total"
  in
  let audit_ops = 10_000 in
  let gauge_words, _ =
    measure_words_ns (fun () ->
        for k = 1 to audit_ops do
          Obs.Metrics.set g k
        done)
  in
  let counter_words, _ =
    measure_words_ns (fun () ->
        for _ = 1 to audit_ops do
          Atomicx.Shard.incr c ~tid:0
        done)
  in
  let guard_words, _ =
    measure_words_ns (fun () ->
        for _ = 1 to audit_ops do
          Scan_hp.begin_op s ~tid:0;
          Scan_hp.end_op s ~tid:0
        done)
  in
  let per w = w /. float_of_int audit_ops in
  Obs.Sampler.stop sampler;
  (* stall injection (runs its own sampler over a fresh registry) *)
  let stall = Chaos.run_stall () in
  Format.printf
    "  list contains: off %.1f ns/op, on %.1f ns/op (sampler overhead \
     %.2f%%)@."
    off_ns on_ns overhead_pct;
  Format.printf
    "  guard bracket: idle %.1f, sleeper %.1f, stamping %.1f ns/op@."
    bracket_idle_ns bracket_off_ns bracket_on_ns;
  Format.printf "  hot-path words/op: gauge %.4f, counter %.4f, guard %.4f@."
    (per gauge_words) (per counter_words) (per guard_words);
  Format.printf "  stall battery: %a@." Chaos.pp_stall_report stall;
  let series = Obs.Metrics.to_json Obs.Metrics.default in
  let prom = Obs.Metrics.to_prometheus Obs.Metrics.default in
  let prom_lines =
    List.length
      (List.filter
         (fun l -> String.length l > 0)
         (String.split_on_char '\n' prom))
  in
  Scan_hp.flush s;
  {
    mt_off_ns = off_ns;
    mt_on_ns = on_ns;
    mt_overhead_pct = overhead_pct;
    mt_bracket_idle_ns = bracket_idle_ns;
    mt_bracket_off_ns = bracket_off_ns;
    mt_bracket_on_ns = bracket_on_ns;
    mt_gauge_words = per gauge_words;
    mt_counter_words = per counter_words;
    mt_guard_words = per guard_words;
    mt_stall = stall;
    mt_series = series;
    mt_prom_lines = prom_lines;
  }

let metrics_json (r : metrics_row) =
  let open Harness in
  Json.Obj
    [
      ( "overhead",
        Json.Obj
          [
            ("off_ns_per_op", Json.Float r.mt_off_ns);
            ("on_ns_per_op", Json.Float r.mt_on_ns);
            ("overhead_pct", Json.Float r.mt_overhead_pct);
          ] );
      ( "guard_bracket",
        Json.Obj
          [
            ("idle_ns_per_op", Json.Float r.mt_bracket_idle_ns);
            ("sleeper_ns_per_op", Json.Float r.mt_bracket_off_ns);
            ("stamping_ns_per_op", Json.Float r.mt_bracket_on_ns);
          ] );
      ( "hot_path_words_per_op",
        Json.Obj
          [
            ("gauge_set", Json.Float r.mt_gauge_words);
            ("counter_incr", Json.Float r.mt_counter_words);
            ("guard_bracket", Json.Float r.mt_guard_words);
          ] );
      ( "stall",
        Json.Obj
          [
            ("victim_tid", Json.Int r.mt_stall.Chaos.st_victim);
            ("ticks", Json.Int r.mt_stall.Chaos.st_ticks);
            ("stall_reports", Json.Int r.mt_stall.Chaos.st_stalls);
            ("age_max", Json.Int r.mt_stall.Chaos.st_age_max);
            ("detected", Json.Bool r.mt_stall.Chaos.st_detected);
            ("cleared", Json.Bool r.mt_stall.Chaos.st_cleared);
            ("leaked", Json.Int r.mt_stall.Chaos.st_leaked);
            ("ok", Json.Bool (Chaos.stall_ok r.mt_stall));
          ] );
      ("series", r.mt_series);
      ("prometheus_lines", Json.Int r.mt_prom_lines);
    ]

(* ------------------------------------------------------------------ *)
(* Background pipeline: mutator retire-path tail latency, inline vs
   routed through the transfer channel.  Same workload on both sides —
   a single mutator retires fresh unprotected nodes through hp, so
   every threshold crossing costs a full scan inline but only a channel
   send in background mode; the p99.9 is where that difference lives.
   The neutralization and reclaimer-kill batteries ride along so the
   JSON carries machine-checkable evidence for the fault-tolerance
   claims (check_metrics guards them). *)

type bg_lat = {
  bl_p50_ns : float;
  bl_p99_ns : float;
  bl_p999_ns : float;
  bl_max_ns : float;
}

type background_row = {
  bk_ops : int;
  bk_inline : bg_lat;
  bk_background : bg_lat;
  bk_sent : int;  (* objects that travelled the channel *)
  bk_fallbacks : int;  (* refused sends reclaimed inline *)
  bk_drained : int;  (* objects the reclaimer drained *)
  bk_leaked : int;  (* both allocators after teardown — must be 0 *)
  bk_neutralize : Chaos.bg_report;
  bk_kill : Chaos.bg_report;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let retire_latencies s alloc ~ops =
  let lat = Array.make ops 0. in
  for k = 0 to ops - 1 do
    let n = { s_hdr = Memdom.Alloc.hdr alloc () } in
    let t0 = Obs.Sink.now_ns () in
    Scan_hp.retire s ~tid:0 n;
    lat.(k) <- float_of_int (Obs.Sink.now_ns () - t0)
  done;
  Array.sort compare lat;
  {
    bl_p50_ns = percentile lat 0.5;
    bl_p99_ns = percentile lat 0.99;
    bl_p999_ns = percentile lat 0.999;
    bl_max_ns = lat.(ops - 1);
  }

let run_background () =
  Format.printf
    "@.== Background pipeline: retire tail latency, reclaimer batteries ==@.";
  Atomicx.Registry.reserve 8;
  let ops = if smoke then 20_000 else 60_000 in
  (* inline side *)
  let alloc_i = Memdom.Alloc.create ~sink:Obs.Sink.null "bg-bench-inline" in
  let s_i = Scan_hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc_i in
  let inline = retire_latencies s_i alloc_i ~ops in
  Scan_hp.flush s_i;
  (* background side: fresh scheme, channel + reclaimer domain *)
  let alloc_b = Memdom.Alloc.create ~sink:Obs.Sink.null "bg-bench-bg" in
  let s_b = Scan_hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc_b in
  let ch = Reclaim.Channel.create () in
  let reclaimer = Reclaim.Reclaimer.start ~interval:0.001 ch in
  Scan_hp.set_background s_b (Some ch);
  let bg = retire_latencies s_b alloc_b ~ops in
  Reclaim.Reclaimer.stop reclaimer;
  Scan_hp.set_background s_b None;
  Scan_hp.flush s_b;
  let leaked = Memdom.Alloc.live alloc_i + Memdom.Alloc.live alloc_b in
  let pp_lat label l =
    Format.printf "  %-12s p50 %7.0f ns   p99 %8.0f ns   p99.9 %9.0f ns   \
                   max %9.0f ns@."
      label l.bl_p50_ns l.bl_p99_ns l.bl_p999_ns l.bl_max_ns
  in
  pp_lat "inline" inline;
  pp_lat "background" bg;
  Format.printf
    "  channel: %d objects sent, %d fallbacks, %d drained; leaked %d@."
    (Reclaim.Channel.sent ch)
    (Reclaim.Channel.fallbacks ch)
    (Reclaim.Channel.drained ch)
    leaked;
  let neutralize = Chaos.run_neutralize () in
  Format.printf "  neutralize battery: %a@." Chaos.pp_bg_report neutralize;
  let kill = Chaos.run_reclaimer_kill () in
  Format.printf "  kill battery: %a@." Chaos.pp_bg_report kill;
  {
    bk_ops = ops;
    bk_inline = inline;
    bk_background = bg;
    bk_sent = Reclaim.Channel.sent ch;
    bk_fallbacks = Reclaim.Channel.fallbacks ch;
    bk_drained = Reclaim.Channel.drained ch;
    bk_leaked = leaked;
    bk_neutralize = neutralize;
    bk_kill = kill;
  }

let bg_report_json (r : Chaos.bg_report) =
  let open Harness in
  Json.Obj
    [
      ("name", Json.Str r.Chaos.bg_name);
      ("victim_tid", Json.Int r.Chaos.bg_victim);
      ("neutralized", Json.Bool r.Chaos.bg_neutralized);
      ("victim_raised", Json.Bool r.Chaos.bg_victim_raised);
      ("pinned_freed", Json.Bool r.Chaos.bg_pinned_freed);
      ("sent", Json.Int r.Chaos.bg_sent);
      ("fallbacks", Json.Int r.Chaos.bg_fallbacks);
      ("recovered", Json.Int r.Chaos.bg_recovered);
      ("unreclaimed_after", Json.Int r.Chaos.bg_unreclaimed_after);
      ("leaked", Json.Int r.Chaos.bg_leaked);
      ("ok", Json.Bool (Chaos.bg_ok r));
    ]

let background_json (r : background_row) =
  let open Harness in
  let lat l =
    Json.Obj
      [
        ("p50_ns", Json.Float l.bl_p50_ns);
        ("p99_ns", Json.Float l.bl_p99_ns);
        ("p999_ns", Json.Float l.bl_p999_ns);
        ("max_ns", Json.Float l.bl_max_ns);
      ]
  in
  Json.Obj
    [
      ("ops", Json.Int r.bk_ops);
      ( "retire_latency",
        Json.Obj
          [ ("inline", lat r.bk_inline); ("background", lat r.bk_background) ]
      );
      ( "channel",
        Json.Obj
          [
            ("sent", Json.Int r.bk_sent);
            ("fallbacks", Json.Int r.bk_fallbacks);
            ("drained", Json.Int r.bk_drained);
          ] );
      ("leaked", Json.Int r.bk_leaked);
      ("neutralize_battery", bg_report_json r.bk_neutralize);
      ("kill_battery", bg_report_json r.bk_kill);
    ]

(* ------------------------------------------------------------------ *)
(* Adaptive controller A/B: the same phase-shifting workload — steady
   churn, then a stall-injected phase (a victim parks inside a guard
   pinning a slot), then a retire-heavy burst — run over a static EBR
   deployment (no neutralization: the paper's blocking baseline), a
   static HP deployment (the robust baseline) and the adaptive stack
   (Switchable + Controller + armed neutralizing reclaimer).  The
   adaptive row must match EBR's calm throughput, keep the stall-phase
   unreclaimed high-water mark in HP territory instead of EBR's
   unbounded pile-up, and relax back once the stall clears
   (check_adaptive guards exactly that). *)

module Ad_ebr = Reclaim.Ebr.Make (SN)
module Ad_sw = Reclaim.Switchable.Make (SN)

type ad_phase = { ap_mops : float; ap_hwm : int }

type ad_row = {
  ar_name : string;
  ar_calm : ad_phase;
  ar_stall : ad_phase;
  ar_burst : ad_phase;
  ar_escalations : int;
  ar_relaxations : int;
  ar_mode_after : int; (* -1 for the static contestants *)
  ar_decisions : int;
  ar_victim_raised : bool;
  ar_leaked : int;
  ar_unreclaimed_after : int;
}

(* Closure bundle so one phase driver covers all three contestants
   without functor plumbing. *)
type ad_api = {
  aa_begin : tid:int -> unit;
  aa_end : tid:int -> unit;
  aa_protect : tid:int -> snode option -> unit;
  aa_get : tid:int -> snode Atomicx.Link.t -> unit;
  aa_retire : tid:int -> snode -> unit;
  aa_unreclaimed : unit -> int;
  aa_flush : unit -> unit;
  aa_tick : unit -> unit; (* controller tick; no-op for statics *)
  aa_teardown : unit -> unit;
  aa_escalations : unit -> int;
  aa_relaxations : unit -> int;
  aa_mode : unit -> int;
  aa_decisions : unit -> int;
}

let ad_phase_dur = if smoke then 0.1 else 0.2

(* One churn phase on the calling thread: swap fresh nodes into the
   table, retire the evictees ([extra] additional retires per op models
   the burst phase), tick the controller and sample the unreclaimed
   high-water mark every 64 ops. *)
let ad_churn api table alloc ~tid ~extra =
  let rng = ref 0x9E3779B9 in
  let next_slot () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 16) land 7
  in
  let ops = ref 0 and hwm = ref 0 in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. ad_phase_dur in
  while Unix.gettimeofday () < t_end do
    incr ops;
    api.aa_begin ~tid;
    (* paper-style read-mostly mix: two protected reads, one update *)
    api.aa_get ~tid table.(next_slot ());
    api.aa_get ~tid table.(next_slot ());
    let n = { s_hdr = Memdom.Alloc.hdr alloc () } in
    api.aa_protect ~tid (Some n);
    let old = Atomicx.Link.exchange table.(next_slot ()) (Atomicx.Link.Ptr n) in
    api.aa_end ~tid;
    (match Atomicx.Link.target old with
    | Some o -> api.aa_retire ~tid o
    | None -> ());
    for _ = 1 to extra do
      api.aa_retire ~tid { s_hdr = Memdom.Alloc.hdr alloc () }
    done;
    if !ops land 255 = 0 then begin
      hwm := max !hwm (api.aa_unreclaimed ());
      if !ops land 511 = 0 then api.aa_tick ()
    end
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ({ ap_mops = float_of_int !ops /. dt /. 1e6; ap_hwm = !hwm }, !ops)

let ad_contest ~name (mk_api : Memdom.Alloc.t -> ad_api) =
  (* level the field: earlier contestants leave a large major heap
     behind, and GC pause inheritance would bias the later rows *)
  Gc.compact ();
  let alloc = Memdom.Alloc.create ~sink:Obs.Sink.null ("adaptive-" ^ name) in
  let api = mk_api alloc in
  let tid = Atomicx.Registry.tid () in
  let table =
    Array.init 8 (fun _ ->
        Atomicx.Link.make (Atomicx.Link.Ptr { s_hdr = Memdom.Alloc.hdr alloc () }))
  in
  (* untimed warmup: domain spawns (reclaimer, controller state) and
     first-touch of the pool all land outside the measured windows *)
  let warm_end = Unix.gettimeofday () +. 0.02 in
  while Unix.gettimeofday () < warm_end do
    api.aa_begin ~tid;
    api.aa_protect ~tid None;
    api.aa_end ~tid
  done;
  (* phase 1: steady churn *)
  let calm, _ = ad_churn api table alloc ~tid ~extra:0 in
  (* phase 2: stall-injected churn *)
  let started = Atomic.make false in
  let release = Atomic.make false in
  let victim_raised = Atomic.make false in
  let victim =
    Domain.spawn (fun () ->
        Atomicx.Registry.with_tid (fun vtid ->
            api.aa_begin ~tid:vtid;
            (try api.aa_get ~tid:vtid table.(0)
             with Reclaim.Neutralize.Neutralized _ -> ());
            Atomic.set started true;
            while not (Atomic.get release) do
              Unix.sleepf 0.0005
            done;
            (* adaptive only: the wake-after-neutralize handshake *)
            (try api.aa_get ~tid:vtid table.(1)
             with Reclaim.Neutralize.Neutralized _ ->
               Atomic.set victim_raised true);
            api.aa_end ~tid:vtid))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let stall, _ = ad_churn api table alloc ~tid ~extra:0 in
  Atomic.set release true;
  Domain.join victim;
  (* phase 3: retire-heavy burst with the stall gone — the adaptive
     stack must relax back toward the fast policy in here *)
  let burst, _ = ad_churn api table alloc ~tid ~extra:3 in
  (* quiesce *)
  Array.iter
    (fun slot ->
      match Atomicx.Link.target (Atomicx.Link.exchange slot Atomicx.Link.Null)
      with
      | Some n -> api.aa_retire ~tid n
      | None -> ())
    table;
  api.aa_teardown ();
  api.aa_flush ();
  {
    ar_name = name;
    ar_calm = calm;
    ar_stall = stall;
    ar_burst = burst;
    ar_escalations = api.aa_escalations ();
    ar_relaxations = api.aa_relaxations ();
    ar_mode_after = api.aa_mode ();
    ar_decisions = api.aa_decisions ();
    ar_victim_raised = Atomic.get victim_raised;
    ar_leaked = Memdom.Alloc.live alloc;
    ar_unreclaimed_after = api.aa_unreclaimed ();
  }

let ad_static_none = fun () -> 0
let ad_static_mode = fun () -> -1

let ad_ebr_api alloc =
  let s = Ad_ebr.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  {
    aa_begin = (fun ~tid -> Ad_ebr.begin_op s ~tid);
    aa_end = (fun ~tid -> Ad_ebr.end_op s ~tid);
    aa_protect = (fun ~tid n -> Ad_ebr.protect_raw s ~tid ~idx:0 n);
    aa_get = (fun ~tid l -> ignore (Ad_ebr.get_protected s ~tid ~idx:0 l));
    aa_retire = (fun ~tid n -> Ad_ebr.retire s ~tid n);
    aa_unreclaimed = (fun () -> Ad_ebr.unreclaimed s);
    aa_flush = (fun () -> Ad_ebr.flush s);
    aa_tick = ignore;
    aa_teardown = ignore;
    aa_escalations = ad_static_none;
    aa_relaxations = ad_static_none;
    aa_mode = ad_static_mode;
    aa_decisions = ad_static_none;
  }

let ad_hp_api alloc =
  let s = Scan_hp.create ~max_hps:4 ~sink:Obs.Sink.null alloc in
  {
    aa_begin = (fun ~tid -> Scan_hp.begin_op s ~tid);
    aa_end = (fun ~tid -> Scan_hp.end_op s ~tid);
    aa_protect = (fun ~tid n -> Scan_hp.protect_raw s ~tid ~idx:0 n);
    aa_get = (fun ~tid l -> ignore (Scan_hp.get_protected s ~tid ~idx:0 l));
    aa_retire = (fun ~tid n -> Scan_hp.retire s ~tid n);
    aa_unreclaimed = (fun () -> Scan_hp.unreclaimed s);
    aa_flush = (fun () -> Scan_hp.flush s);
    aa_tick = ignore;
    aa_teardown = ignore;
    aa_escalations = ad_static_none;
    aa_relaxations = ad_static_none;
    aa_mode = ad_static_mode;
    aa_decisions = ad_static_none;
  }

let ad_adaptive_api alloc =
  let s = Ad_sw.create ~max_hps:4 alloc in
  let channel = Reclaim.Channel.create ~bound:512 () in
  Ad_sw.set_background s (Some channel);
  (* neutralize_age well above stall_age_hi: neutralization erases the
     victim's watchdog row (generation bump), so the controller's
     [2, 6) observation window must be wide enough that a scheduler
     preemption of this (ticking) thread cannot swallow it whole *)
  let reclaimer = Reclaim.Reclaimer.start ~neutralize_age:6 channel in
  let ctrl =
    Reclaim.Controller.create
      ~cfg:
        {
          Reclaim.Controller.unreclaimed_hi = 100_000;
          unreclaimed_lo = 2048;
          stall_age_hi = 2;
          calm_ticks = 3;
        }
      ~reclaimer ~channel
      [
        Reclaim.Controller.target ~label:"bench"
          ~mode:(fun () -> Ad_sw.mode s)
          ~escalate:(fun () -> Ad_sw.escalate s)
          ~try_complete:(fun () -> Ad_sw.try_complete s)
          ~relax:(fun () -> Ad_sw.relax s)
          ~tuning:(Ad_sw.tuning s)
          ~unreclaimed:(fun () -> Ad_sw.unreclaimed s)
          ~stall_age:(fun () -> Ad_sw.stall_age_max s)
          ();
      ]
  in
  {
    aa_begin = (fun ~tid -> Ad_sw.begin_op s ~tid);
    aa_end = (fun ~tid -> Ad_sw.end_op s ~tid);
    aa_protect = (fun ~tid n -> Ad_sw.protect_raw s ~tid ~idx:0 n);
    aa_get = (fun ~tid l -> ignore (Ad_sw.get_protected s ~tid ~idx:0 l));
    aa_retire = (fun ~tid n -> Ad_sw.retire s ~tid n);
    aa_unreclaimed = (fun () -> Ad_sw.unreclaimed s);
    aa_flush = (fun () -> Ad_sw.flush s);
    aa_tick = (fun () -> Reclaim.Controller.tick ctrl);
    aa_teardown =
      (fun () ->
        Reclaim.Reclaimer.stop reclaimer;
        Ad_sw.set_background s None;
        Reclaim.Channel.keep_alive channel);
    aa_escalations = (fun () -> Ad_sw.escalations s);
    aa_relaxations = (fun () -> Ad_sw.relaxations s);
    aa_mode = (fun () -> Ad_sw.mode s);
    aa_decisions = (fun () -> Reclaim.Controller.decisions ctrl);
  }

let ad_rounds = 5

(* Per-phase maxima across rounds: throughput noise on a shared box is
   one-sided (preemption only slows a phase down), so the max converges
   on the machine's true rate; counters and leak totals sum. *)
let ad_merge a b =
  let phase p q =
    { ap_mops = Float.max p.ap_mops q.ap_mops; ap_hwm = max p.ap_hwm q.ap_hwm }
  in
  {
    ar_name = a.ar_name;
    ar_calm = phase a.ar_calm b.ar_calm;
    ar_stall = phase a.ar_stall b.ar_stall;
    ar_burst = phase a.ar_burst b.ar_burst;
    ar_escalations = a.ar_escalations + b.ar_escalations;
    ar_relaxations = a.ar_relaxations + b.ar_relaxations;
    ar_mode_after = b.ar_mode_after;
    ar_decisions = a.ar_decisions + b.ar_decisions;
    ar_victim_raised = a.ar_victim_raised || b.ar_victim_raised;
    ar_leaked = a.ar_leaked + b.ar_leaked;
    ar_unreclaimed_after = a.ar_unreclaimed_after + b.ar_unreclaimed_after;
  }

let run_adaptive_bench () =
  Format.printf
    "@.== Adaptive controller A/B: steady -> stall -> burst (%.2fs/phase, \
     %d rounds) ==@."
    ad_phase_dur ad_rounds;
  Atomicx.Registry.reserve 8;
  (* start the global watchdog clock before any contestant runs: the
     adaptive rounds start it anyway (reclaimer self-clock), so an
     early static round must not get a stamp-free ride the later ones
     don't *)
  ignore (Obs.Watchdog.advance ());
  let round () =
    [
      ad_contest ~name:"ebr-static" ad_ebr_api;
      ad_contest ~name:"hp-static" ad_hp_api;
      ad_contest ~name:"adaptive" ad_adaptive_api;
    ]
  in
  let rows =
    List.fold_left
      (fun acc _ -> List.map2 ad_merge acc (round ()))
      (round ())
      (List.init (ad_rounds - 1) Fun.id)
  in
  Format.printf "  %-12s %10s %10s %10s %12s %12s %6s %6s@." "contestant"
    "calm-Mops" "stall-Mops" "burst-Mops" "stall-hwm" "burst-hwm" "esc"
    "relax";
  List.iter
    (fun r ->
      Format.printf "  %-12s %10.3f %10.3f %10.3f %12d %12d %6d %6d@."
        r.ar_name r.ar_calm.ap_mops r.ar_stall.ap_mops r.ar_burst.ap_mops
        r.ar_stall.ap_hwm r.ar_burst.ap_hwm r.ar_escalations r.ar_relaxations)
    rows;
  (match List.find_opt (fun r -> r.ar_name = "adaptive") rows with
  | Some r ->
      Format.printf
        "  adaptive: final mode %d, %d controller decisions, victim raised \
         %b, leaked %d@."
        r.ar_mode_after r.ar_decisions r.ar_victim_raised r.ar_leaked
  | None -> ());
  rows

let adaptive_json rows =
  let open Harness in
  let phase p =
    Json.Obj
      [ ("mops", Json.Float p.ap_mops); ("unreclaimed_hwm", Json.Int p.ap_hwm) ]
  in
  Json.Obj
    (List.map
       (fun r ->
         ( r.ar_name,
           Json.Obj
             [
               ("calm", phase r.ar_calm);
               ("stall", phase r.ar_stall);
               ("burst", phase r.ar_burst);
               ("escalations", Json.Int r.ar_escalations);
               ("relaxations", Json.Int r.ar_relaxations);
               ("mode_after", Json.Int r.ar_mode_after);
               ("decisions", Json.Int r.ar_decisions);
               ("victim_raised", Json.Bool r.ar_victim_raised);
               ("leaked", Json.Int r.ar_leaked);
               ("unreclaimed_after", Json.Int r.ar_unreclaimed_after);
             ] ))
       rows
    @ [ ("rounds", Json.Int ad_rounds) ])

(* ------------------------------------------------------------------ *)
(* KV serving: zipfian YCSB-B over the fixed-bucket Michael hash map
   vs the resizable split-ordered map, per scheme, at growing
   keyspaces.  The fixed map's 64 buckets degrade linearly with the
   keyspace while the split map doubles its directory to hold the load
   factor, so the headline is the crossover: at 1M keys the split map
   must serve at least 2x the fixed map's throughput (check_kv guards
   exactly that).  Preload inserts keys in descending order so the
   fixed map's sorted bucket lists always extend at the head — O(1)
   per insert instead of a half-bucket walk — which is what keeps the
   4M preload tractable; the split map is insensitive to insert order.
   Per-op latencies land in a sharded [Obs.Hist] (p50/p99/p99.9 are
   bucket-floor estimates, within 2x), and the unreclaimed high-water
   mark is sampled every 1024 ops per worker. *)

module Kv_fixed_hp = Ds.Hash_map.Make (Reclaim.Hp.Make)
module Kv_fixed_ebr = Ds.Hash_map.Make (Reclaim.Ebr.Make)
module Kv_fixed_orc = Ds.Orc_hash_map.Make ()
module Kv_split_hp = Ds.Split_map.Make (Reclaim.Hp.Make)
module Kv_split_ebr = Ds.Split_map.Make (Reclaim.Ebr.Make)
module Kv_split_orc = Ds.Orc_split_map.Make ()
module Kv_split_orc_hp = Ds.Orc_split_map.Make_hp ()

type kv_row = {
  kv_scheme : string;
  kv_kind : string; (* "fixed" | "split" *)
  kv_keys : int;
  kv_load_mops : float; (* preload throughput *)
  kv_mops : float;
  kv_ops : int;
  kv_p50 : int;
  kv_p99 : int;
  kv_p999 : int;
  kv_max : int;
  kv_hwm : int; (* peak unreclaimed sampled during the run *)
  kv_grows : int; (* -1 for the fixed map *)
  kv_buckets : int; (* -1 for the fixed map *)
  kv_leaked : int; (* after destroy + flush — must be 0 *)
}

let kv_workers = 2
let kv_dur = if smoke then 0.15 else 0.4
let kv_sizes = if smoke then [ 20_000 ] else [ 100_000; 1_000_000; 4_000_000 ]

let kv_drive ~scheme ~kind ~keys ~add ~remove ~contains ~unreclaimed ~grows
    ~buckets ~teardown =
  (* level the field: the previous contestant's heap is gone before the
     preload is timed *)
  Gc.compact ();
  let t0 = Obs.Sink.now_ns () in
  for k = keys downto 1 do
    ignore (add k)
  done;
  let load_mops =
    float_of_int keys *. 1e3 /. float_of_int (max 1 (Obs.Sink.now_ns () - t0))
  in
  (* zeta(n) is O(n): build each worker's generator before the clock
     starts so the measured window is all serving, no setup *)
  let kgs =
    List.init kv_workers (fun i ->
        Harness.Keygen.create
          (Harness.Keygen.Zipfian { theta = Harness.Keygen.default_theta })
          ~n:keys
          ~seed:(0x2C0FFEE lxor ((i + 1) * 0x9E3779B9)))
  in
  let hist = Obs.Hist.create () in
  let hwm = Atomic.make 0 in
  let bump_hwm u =
    let rec go () =
      let cur = Atomic.get hwm in
      if u > cur && not (Atomic.compare_and_set hwm cur u) then go ()
    in
    go ()
  in
  let total = Atomic.make 0 in
  let stop = Atomic.make false in
  let tm0 = Unix.gettimeofday () in
  let doms =
    List.mapi
      (fun i kg ->
        Domain.spawn (fun () ->
            Atomicx.Registry.with_tid (fun tid ->
                let coin = Atomicx.Rng.create (0xD1CE lxor ((i + 1) * 7919)) in
                let ops = ref 0 in
                while not (Atomic.get stop) do
                  let k = 1 + Harness.Keygen.next kg in
                  let t0 = Obs.Sink.now_ns () in
                  (match Harness.Keygen.next_op kg Harness.Keygen.mix_b with
                  | Harness.Keygen.Read -> ignore (contains k)
                  | Harness.Keygen.Update ->
                      if Atomicx.Rng.bool coin then ignore (add k)
                      else ignore (remove k));
                  Obs.Hist.record hist ~tid (Obs.Sink.now_ns () - t0);
                  incr ops;
                  if !ops land 1023 = 0 then bump_hwm (unreclaimed ())
                done;
                ignore (Atomic.fetch_and_add total !ops))))
      kgs
  in
  Unix.sleepf kv_dur;
  Atomic.set stop true;
  List.iter Domain.join doms;
  let dt = Unix.gettimeofday () -. tm0 in
  bump_hwm (unreclaimed ());
  let rep = Obs.Hist.report hist in
  let g = grows () and b = buckets () in
  let leaked = teardown () in
  {
    kv_scheme = scheme;
    kv_kind = kind;
    kv_keys = keys;
    kv_load_mops = load_mops;
    kv_mops = float_of_int (Atomic.get total) /. dt /. 1e6;
    kv_ops = Atomic.get total;
    kv_p50 = rep.Obs.Hist.p50;
    kv_p99 = rep.Obs.Hist.p99;
    kv_p999 = rep.Obs.Hist.p999;
    kv_max = rep.Obs.Hist.max;
    kv_hwm = Atomic.get hwm;
    kv_grows = g;
    kv_buckets = b;
    kv_leaked = leaked;
  }

let kv_run_fixed (module M : Ds.Intf.SET) ~scheme ~keys =
  let s = M.create () in
  kv_drive ~scheme ~kind:"fixed" ~keys
    ~add:(fun k -> M.add s k)
    ~remove:(fun k -> M.remove s k)
    ~contains:(fun k -> M.contains s k)
    ~unreclaimed:(fun () -> M.unreclaimed s)
    ~grows:(fun () -> -1)
    ~buckets:(fun () -> -1)
    ~teardown:(fun () ->
      M.destroy s;
      M.flush s;
      Memdom.Alloc.live (M.alloc s))

let kv_run_split (module M : Ds.Orc_split_map.MAP) ~scheme ~keys =
  let s = M.create () in
  kv_drive ~scheme ~kind:"split" ~keys
    ~add:(fun k -> M.add s k)
    ~remove:(fun k -> M.remove s k)
    ~contains:(fun k -> M.contains s k)
    ~unreclaimed:(fun () -> M.unreclaimed s)
    ~grows:(fun () -> M.grows s)
    ~buckets:(fun () -> M.buckets s)
    ~teardown:(fun () ->
      M.destroy s;
      M.flush s;
      Memdom.Alloc.live (M.alloc s))

(* Thunks, not a literal list of results: list literals evaluate
   right-to-left, and each contestant must fully tear down (and the
   preload must be timed) before the next one allocates its keyspace. *)
let kv_contestants keys =
  [
    (fun () -> kv_run_fixed (module Kv_fixed_hp) ~scheme:"hp" ~keys);
    (fun () -> kv_run_split (module Kv_split_hp) ~scheme:"hp" ~keys);
    (fun () -> kv_run_fixed (module Kv_fixed_ebr) ~scheme:"ebr" ~keys);
    (fun () -> kv_run_split (module Kv_split_ebr) ~scheme:"ebr" ~keys);
    (fun () -> kv_run_fixed (module Kv_fixed_orc) ~scheme:"orc" ~keys);
    (fun () -> kv_run_split (module Kv_split_orc) ~scheme:"orc" ~keys);
    (fun () -> kv_run_split (module Kv_split_orc_hp) ~scheme:"orc-hp" ~keys);
  ]

let run_kv () =
  Format.printf
    "@.== KV service: zipfian YCSB-B (theta %.2f), fixed Michael map vs \
     split-ordered map (%d workers, %.2fs/point) ==@."
    Harness.Keygen.default_theta kv_workers kv_dur;
  List.map
    (fun keys ->
      Format.printf "  -- %d keys --@." keys;
      Format.printf "  %-7s %-6s %9s %9s %9s %9s %11s %7s %6s %9s@." "scheme"
        "kind" "load-M/s" "Mops/s" "p50-ns" "p99-ns" "p99.9-ns" "hwm" "grows"
        "buckets";
      let rows =
        List.map
          (fun f ->
            let r = f () in
            Format.printf "  %-7s %-6s %9.3f %9.3f %9d %9d %11d %7d %6s %9s@."
              r.kv_scheme r.kv_kind r.kv_load_mops r.kv_mops r.kv_p50 r.kv_p99
              r.kv_p999 r.kv_hwm
              (if r.kv_grows < 0 then "-" else string_of_int r.kv_grows)
              (if r.kv_buckets < 0 then "-" else string_of_int r.kv_buckets);
            if r.kv_leaked <> 0 then
              Format.printf "  WARNING: %s/%s leaked %d objects@." r.kv_scheme
                r.kv_kind r.kv_leaked;
            r)
          (kv_contestants keys)
      in
      (keys, rows))
    kv_sizes

let kv_json sizes =
  let open Harness in
  let row_json r =
    Json.Obj
      [
        ("scheme", Json.Str r.kv_scheme);
        ("kind", Json.Str r.kv_kind);
        ("load_mops", Json.Float r.kv_load_mops);
        ("mops", Json.Float r.kv_mops);
        ("ops", Json.Int r.kv_ops);
        ("p50_ns", Json.Int r.kv_p50);
        ("p99_ns", Json.Int r.kv_p99);
        ("p999_ns", Json.Int r.kv_p999);
        ("max_ns", Json.Int r.kv_max);
        ("unreclaimed_hwm", Json.Int r.kv_hwm);
        ("grows", if r.kv_grows < 0 then Json.Null else Json.Int r.kv_grows);
        ( "buckets",
          if r.kv_buckets < 0 then Json.Null else Json.Int r.kv_buckets );
        ("leaked", Json.Int r.kv_leaked);
      ]
  in
  Json.Obj
    [
      ("mix", Json.Str "B");
      ("read_pct", Json.Int 95);
      ("theta", Json.Float Harness.Keygen.default_theta);
      ("workers", Json.Int kv_workers);
      ("duration_s", Json.Float kv_dur);
      ( "sizes",
        Json.List
          (List.map
             (fun (keys, rows) ->
               Json.Obj
                 [
                   ("keys", Json.Int keys);
                   ("rows", Json.List (List.map row_json rows));
                 ])
             sizes) );
    ]

let print_mix_tables title tables =
  List.iter
    (fun (mix, series) ->
      Harness.Report.print_table ~title:(title ^ " / " ^ mix) series)
    tables

let mixes_json tables =
  Harness.Json.Obj
    (List.map (fun (mix, series) -> (mix, Harness.Json.of_series series)) tables)

let params_json () =
  let open Harness in
  Json.Obj
    [
      ("threads", Json.List (List.map (fun t -> Json.Int t) params.threads));
      ("duration_s", Json.Float params.duration);
      ("list_keys", Json.Int params.list_keys);
      ("big_keys", Json.Int params.big_keys);
      ("smoke", Json.Bool smoke);
    ]

let run_smoke () =
  let open Harness in
  let tracing = run_tracing () in
  let allocator = run_alloc () in
  let scan = run_scan () in
  let micro = run_micro () in
  match json_out with
  | None -> ()
  | Some path ->
      Json.write_merged path
        [
          ("params", params_json ());
          ("unit", Json.Str "Mops/s unless stated");
          ("reclamation_tracing", tracing_json tracing);
          ("allocator", alloc_json allocator);
          ("scan_overhaul", scan_json scan);
          ( "micro_ns_per_op",
            Json.Obj (List.map (fun (n, e) -> (n, Json.Float e)) micro) );
        ];
      Format.printf "@.merged into %s@." path

let run_full () =
  let open Harness in
  let fig1 = Experiments.fig1_queues params in
  Report.print_table ~title:"Fig 1/2: queues, enq/deq pairs" fig1;
  Report.print_table ~title:"Fig 1/2 normalized (vs ms-hp)"
    ~unit_label:"x vs ms-hp"
    (Report.normalize ~base_label:"ms-hp" fig1);

  let fig3 = Experiments.fig3_list_schemes params in
  print_mix_tables "Fig 3/4: Michael-Harris list, schemes" fig3;

  let fig5 = Experiments.fig5_orc_lists params in
  print_mix_tables "Fig 5/6: lists with OrcGC" fig5;

  let fig7 = Experiments.fig7_trees params in
  print_mix_tables "Fig 7/8: tree and skip lists" fig7;

  let table1 = Experiments.table1_bounds params in
  Format.printf "@.== Table 1 (measured): peak unreclaimed objects ==@.";
  Format.printf "  %-10s %8s %6s %16s %12s %12s@." "scheme" "threads" "H"
    "peak-unreclaimed" "bound" "bound-value";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8d %6d %16d %12s %12s@."
        r.Experiments.b_scheme r.b_threads r.b_hps r.b_max_unreclaimed
        r.b_bound
        (if r.b_bound_value < 0 then "-" else string_of_int r.b_bound_value))
    table1;

  Format.printf "@.== Memory footprint: HS-skip vs CRF-skip (5) ==@.";
  Format.printf "  %-12s %12s %12s %12s %14s %14s@." "structure" "peak-live"
    "final-live" "~reachable" "pinned-chain" "after-unpin";
  List.iter
    (fun m ->
      Format.printf "  %-12s %12d %12d %12d %14d %14d@."
        m.Experiments.m_structure m.m_peak_live m.m_final_live m.m_reachable
        m.m_pinned_live m.m_pinned_after)
    (Experiments.mem_footprint params);

  Report.print_table ~title:"Ablation: PTP publish instruction"
    (Experiments.ablation_publish params);

  Format.printf "@.== Ablation: handover drain on clear (Alg 2 l.16-19) ==@.";
  List.iter
    (fun (label, residual) ->
      Format.printf "  %-24s residual unreclaimed = %d@." label residual)
    (Experiments.ablation_clear_handover params);

  Report.print_table ~title:"Extension: Michael hash table (write-heavy)"
    (Experiments.ext_hashmap params);

  let backend = Experiments.ablation_backend params in
  Format.printf "@.== Ablation: OrcGC protection backend (4) ==@.";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8.3f Mops/s   peak-unreclaimed=%d@."
        r.Experiments.k_backend r.k_mops r.k_peak_unreclaimed)
    backend;

  let tracing = run_tracing () in
  let churn = run_churn () in
  let allocator = run_alloc () in
  let scan = run_scan () in
  let micro = run_micro () in

  match json_out with
  | None -> ()
  | Some path ->
      Json.write_merged path
          [
            ("params", params_json ());
            ("unit", Json.Str "Mops/s unless stated");
            ("fig1_queues", Json.of_series fig1);
            ("fig3_list_schemes", mixes_json fig3);
            ("fig5_orc_lists", mixes_json fig5);
            ("fig7_trees", mixes_json fig7);
            ( "table1_bounds",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("scheme", Json.Str r.Experiments.b_scheme);
                         ("threads", Json.Int r.b_threads);
                         ("hps", Json.Int r.b_hps);
                         ("peak_unreclaimed", Json.Int r.b_max_unreclaimed);
                         ("bound", Json.Str r.b_bound);
                         ( "bound_value",
                           if r.b_bound_value < 0 then Json.Null
                           else Json.Int r.b_bound_value );
                       ])
                   table1) );
            ( "ablation_backend",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         ("backend", Json.Str r.Experiments.k_backend);
                         ("mops", Json.Float r.k_mops);
                         ("peak_unreclaimed", Json.Int r.k_peak_unreclaimed);
                       ])
                   backend) );
            ("reclamation_tracing", tracing_json tracing);
            ("domain_churn", churn_json churn);
            ("allocator", alloc_json allocator);
            ("scan_overhaul", scan_json scan);
            ( "micro_ns_per_op",
              Json.Obj (List.map (fun (n, e) -> (n, Json.Float e)) micro) );
          ];
      Format.printf "@.merged into %s@." path

(* Standalone section modes: `--churn`, `--alloc`, `--scan`, `--pack`
   and/or `--metrics` run just those sections (composable), fast enough
   to run on every change.  Each `--json` write merges into the existing
   BENCH_orc.json, so sequential invocations compose into one artifact. *)
let run_sections () =
  let open Harness in
  let sections =
    (if churn_only then [ ("domain_churn", churn_json (run_churn ())) ] else [])
    @ (if alloc_only then [ ("allocator", alloc_json (run_alloc ())) ] else [])
    @ (if scan_only then [ ("scan_overhaul", scan_json (run_scan ())) ] else [])
    @ (if pack_only then [ ("pack", pack_json (run_pack ())) ] else [])
    @ (if metrics_only then [ ("metrics", metrics_json (run_metrics ())) ]
       else [])
    @ (if background_only then
         [ ("background", background_json (run_background ())) ]
       else [])
    @ (if adaptive_only then
         [ ("adaptive", adaptive_json (run_adaptive_bench ())) ]
       else [])
    @ if kv_only then [ ("kv_service", kv_json (run_kv ())) ] else []
  in
  match json_out with
  | None -> ()
  | Some path ->
      Json.write_merged path (("params", params_json ()) :: sections);
      Format.printf "@.merged into %s@." path

let () =
  Format.printf
    "OrcGC reproduction benchmarks (threads: %s, %.2fs/point%s)@."
    (String.concat "," (List.map string_of_int params.threads))
    params.duration
    (if smoke then ", smoke" else "");
  if
    churn_only || alloc_only || scan_only || pack_only || metrics_only
    || background_only || adaptive_only || kv_only
  then run_sections ()
  else if smoke then run_smoke ()
  else run_full ();
  Format.printf "@.done.@."
