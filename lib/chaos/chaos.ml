(** Chaos harness: waves of short-lived domains dying at adversarial
    points, asserting the registry + orphan lifecycle contract.  See
    the mli for the model. *)

open Atomicx

type cfg = {
  waves : int;
  domains_per_wave : int;
  ops : int;
  kill_every : int;
  burst : int;
  slots : int;
  seed : int;
  sink : Obs.Sink.t;
}

let default =
  {
    waves = 20;
    domains_per_wave = 8;
    ops = 120;
    kill_every = 40;
    burst = 96;
    slots = 8;
    seed = 0xC11A05;
    sink = Obs.Sink.null;
  }

type report = {
  name : string;
  domains : int;
  killed : int;
  abandoned : int;
  force_released : int;
  peak_unreclaimed : int;
  leaked : int;
  unreclaimed_after : int;
  orphaned_after : int;
  pool_hits : int;
  pool_misses : int;
  remote_frees : int;
  errors : string list;
}

let ok r =
  r.errors = [] && r.leaked = 0 && r.unreclaimed_after = 0
  && r.orphaned_after = 0
  && r.force_released = r.abandoned

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v 2>%s: %d domains, %d killed (%d abandoned, %d force-released)@,\
     peak unreclaimed %d; after quiesce: leaked %d, unreclaimed %d, \
     orphaned %d%t%a@]"
    r.name r.domains r.killed r.abandoned r.force_released r.peak_unreclaimed
    r.leaked r.unreclaimed_after r.orphaned_after
    (fun fmt ->
      if r.pool_hits + r.pool_misses > 0 then
        Format.fprintf fmt "@,pool: hits %d, misses %d, remote frees %d"
          r.pool_hits r.pool_misses r.remote_frees)
    (fun fmt -> function
      | [] -> ()
      | es ->
          Format.fprintf fmt "@,errors:@,%a"
            (Format.pp_print_list Format.pp_print_string)
            es)
    r.errors

(* Deaths are modelled as this exception escaping the worker; the spawn
   wrapper eats it (and only it), exactly like a thread falling off its
   entry point mid-operation. *)
exception Killed

(* Wave controller shared by all batteries.  [worker] runs registered
   (inside [Registry.with_tid]); it reports how it died through [out]
   and may raise [Killed].  [sample] is read at every wave join for the
   peak-unreclaimed series. *)
let drive cfg ~worker ~sample =
  let rng0 = Rng.create cfg.seed in
  let killed = ref 0
  and abandoned = ref 0
  and forced = ref 0
  and peak = ref 0
  and errors = ref [] in
  for _wave = 1 to cfg.waves do
    let seeds =
      List.init cfg.domains_per_wave (fun _ -> Rng.int rng0 0x3FFF_FFFF)
    in
    let doms =
      List.map
        (fun seed ->
          Domain.spawn (fun () ->
              let out = ref `Done in
              (try
                 Registry.with_tid (fun tid ->
                     worker ~tid ~rng:(Rng.create seed) ~out)
               with
              | Killed -> ()
              | e -> out := `Error (Printexc.to_string e));
              !out))
        seeds
    in
    List.iter
      (fun d ->
        match Domain.join d with
        | `Done -> ()
        | `Killed -> incr killed
        | `Abandoned tid ->
            (* the domain is joined, so its owner is provably gone:
               reclaim the still-Active slot from here *)
            incr killed;
            incr abandoned;
            if Registry.force_release tid then incr forced
        | `Error msg -> errors := msg :: !errors)
      doms;
    peak := max !peak (sample ())
  done;
  (!killed, !abandoned, !forced, !peak, List.rev !errors)

(* ------------------------------------------------------------------ *)
(* Manual schemes (protect/retire API)                                 *)
(* ------------------------------------------------------------------ *)

type cnode = { hdr : Memdom.Hdr.t; mutable payload : int }

module CN = struct
  type t = cnode

  let hdr n = n.hdr
end

module Battery (S : Reclaim.Scheme_intf.S with type node = cnode) = struct
  let mk alloc v = { hdr = Memdom.Alloc.hdr alloc (); payload = v }

  let read n =
    Memdom.Hdr.check_access n.hdr;
    n.payload

  let worker s alloc table cfg ~tid ~rng ~out =
    let nslots = Array.length table in
    for k = 1 to cfg.ops do
      let slot = table.(Rng.int rng nslots) in
      let kill = cfg.kill_every > 0 && Rng.int rng cfg.kill_every = 0 in
      if kill then
        match Rng.int rng 3 with
        | 0 ->
            (* die inside the guard, protection published: the exit
               path must unpublish it or the node pins forever *)
            S.begin_op s ~tid;
            ignore (S.get_protected s ~tid ~idx:0 slot);
            out := `Killed;
            raise Killed
        | 1 ->
            (* die with a backlog of unscanned retires: the orphan
               protocol must hand them to survivors *)
            for j = 1 to cfg.burst do
              S.retire s ~tid (mk alloc (-j))
            done;
            out := `Killed;
            raise Killed
        | _ ->
            (* abrupt death: hazards up, slot left Active; only the
               controller's [force_release] can reclaim it *)
            S.begin_op s ~tid;
            ignore (S.get_protected s ~tid ~idx:0 slot);
            out := `Abandoned (Registry.abandon ());
            raise Killed
      else begin
        S.begin_op s ~tid;
        if Rng.bool rng then begin
          (* writer: swap in a fresh node, retire the evictee *)
          let n = mk alloc k in
          S.protect_raw s ~tid ~idx:0 (Some n);
          let old = Link.exchange slot (Link.Ptr n) in
          S.end_op s ~tid;
          match Link.target old with
          | Some o -> S.retire s ~tid o
          | None -> ()
        end
        else begin
          let st = S.get_protected s ~tid ~idx:(1 + Rng.int rng 3) slot in
          (match Link.target st with
          | Some n -> ignore (Sys.opaque_identity (read n))
          | None -> ());
          S.end_op s ~tid
        end
      end
    done

  let run ?(mode = Memdom.Alloc.System) cfg =
    let suffix = match mode with Memdom.Alloc.System -> "" | Pool -> "-pool" in
    let alloc =
      Memdom.Alloc.create ~mode ~sink:cfg.sink (S.name ^ suffix ^ "-chaos")
    in
    let s = S.create ~max_hps:4 ~sink:cfg.sink alloc in
    let table =
      Array.init cfg.slots (fun i -> Link.make (Link.Ptr (mk alloc i)))
    in
    let killed, abandoned, forced, peak, errors =
      drive cfg
        ~worker:(fun ~tid ~rng ~out -> worker s alloc table cfg ~tid ~rng ~out)
        ~sample:(fun () -> S.unreclaimed s)
    in
    (* quiesce: unlink the table, then drain retired lists, handovers
       and the orphan pool *)
    let tid = Registry.tid () in
    Array.iter
      (fun slot ->
        match Link.target (Link.exchange slot Link.Null) with
        | Some n -> S.retire s ~tid n
        | None -> ())
      table;
    S.flush s;
    {
      name = S.name ^ suffix;
      domains = cfg.waves * cfg.domains_per_wave;
      killed;
      abandoned;
      force_released = forced;
      peak_unreclaimed = peak;
      leaked = Memdom.Alloc.live alloc;
      unreclaimed_after = S.unreclaimed s;
      orphaned_after = S.orphaned s;
      pool_hits = Memdom.Alloc.pool_hits alloc;
      pool_misses = Memdom.Alloc.pool_misses alloc;
      remote_frees = Memdom.Alloc.remote_frees alloc;
      errors;
    }
end

module Hp = Battery (Reclaim.Hp.Make (CN))
module Ptb = Battery (Reclaim.Ptb.Make (CN))
module Ebr = Battery (Reclaim.Ebr.Make (CN))
module He = Battery (Reclaim.He.Make (CN))
module Ibr = Battery (Reclaim.Ibr.Make (CN))
module Ptp = Battery (Orc_core.Ptp.Make (CN))

(* ------------------------------------------------------------------ *)
(* Automatic schemes (guard API)                                       *)
(* ------------------------------------------------------------------ *)

type anode = { hdr : Memdom.Hdr.t; av : int; next : anode Link.t }

module AN = struct
  type t = anode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end

(* The slice of the Orc/Orc_hp interfaces the battery needs; both
   functors produce supermodules of this. *)
module type AUTO = sig
  type t
  type guard

  module Ptr : sig
    type t

    val state : t -> anode Link.state
    val node : t -> anode option
  end

  val name : string
  val create :
    ?max_hps:int ->
    ?sink:Obs.Sink.t ->
    ?arena:anode Link.arena ->
    Memdom.Alloc.t ->
    t

  val with_guard : t -> (guard -> 'a) -> 'a
  val ptr : guard -> Ptr.t
  val load : guard -> anode Link.t -> Ptr.t -> unit
  val store : guard -> anode Link.t -> anode Link.state -> unit
  val alloc_node : guard -> (Memdom.Hdr.t -> anode) -> Ptr.t
  val new_link : guard -> anode Link.state -> anode Link.t
  val unreclaimed : t -> int
  val flush : t -> unit
end

module Auto_battery (O : AUTO) = struct
  let amk v hdr = { hdr; av = v; next = Link.make Link.Null }

  (* [with_guard] scopes cannot be skipped the way manual [end_op]
     calls can, so the kill points are an exception escaping the guard
     (protections must unwind) and an abrupt between-guard abandon
     (the slot's hazard row must be reclaimed by [force_release]). *)
  let worker o table cfg ~tid:_ ~rng ~out =
    let nslots = Array.length table in
    for k = 1 to cfg.ops do
      let slot = table.(Rng.int rng nslots) in
      let kill = cfg.kill_every > 0 && Rng.int rng cfg.kill_every = 0 in
      if kill && Rng.int rng 3 = 0 then begin
        out := `Abandoned (Registry.abandon ());
        raise Killed
      end
      else
        O.with_guard o (fun g ->
            let p = O.ptr g in
            O.load g slot p;
            (match O.Ptr.node p with
            | Some n ->
                Memdom.Hdr.check_access n.hdr;
                ignore (Sys.opaque_identity n.av)
            | None -> ());
            if Rng.bool rng then begin
              let np = O.alloc_node g (amk k) in
              O.store g slot (O.Ptr.state np)
            end;
            if kill then begin
              out := `Killed;
              raise Killed
            end)
    done

  let run ?(mode = Memdom.Alloc.System) cfg =
    let suffix = match mode with Memdom.Alloc.System -> "" | Pool -> "-pool" in
    let alloc =
      Memdom.Alloc.create ~mode ~sink:cfg.sink (O.name ^ suffix ^ "-chaos")
    in
    let o = O.create ~sink:cfg.sink alloc in
    let table =
      O.with_guard o (fun g ->
          Array.init cfg.slots (fun i ->
              let p = O.alloc_node g (amk i) in
              O.new_link g (O.Ptr.state p)))
    in
    let killed, abandoned, forced, peak, errors =
      drive cfg
        ~worker:(fun ~tid ~rng ~out -> worker o table cfg ~tid ~rng ~out)
        ~sample:(fun () -> O.unreclaimed o)
    in
    O.with_guard o (fun g ->
        Array.iter (fun slot -> O.store g slot Link.Null) table);
    O.flush o;
    {
      name = O.name ^ suffix;
      domains = cfg.waves * cfg.domains_per_wave;
      killed;
      abandoned;
      force_released = forced;
      peak_unreclaimed = peak;
      leaked = Memdom.Alloc.live alloc;
      unreclaimed_after = O.unreclaimed o;
      orphaned_after = 0;
      pool_hits = Memdom.Alloc.pool_hits alloc;
      pool_misses = Memdom.Alloc.pool_misses alloc;
      remote_frees = Memdom.Alloc.remote_frees alloc;
      errors;
    }
end

module Orc = Auto_battery (Orc_core.Orc.Make (AN))
module Orc_hp = Auto_battery (Orc_core.Orc_hp.Make (AN))

(* Pool-mode batteries are a representative subset (one manual HP-style
   scheme, the paper's PTP, and automatic OrcGC) rather than all eight:
   the pool machinery under test is the same for every scheme, and the
   full cross-product would double the slowest test in the suite. *)
let batteries =
  [
    ("hp", fun cfg -> Hp.run cfg);
    ("ptb", fun cfg -> Ptb.run cfg);
    ("ebr", fun cfg -> Ebr.run cfg);
    ("he", fun cfg -> He.run cfg);
    ("ibr", fun cfg -> Ibr.run cfg);
    ("ptp", fun cfg -> Ptp.run cfg);
    ("orc", fun cfg -> Orc.run cfg);
    ("orc-hp", fun cfg -> Orc_hp.run cfg);
    ("hp-pool", fun cfg -> Hp.run ~mode:Memdom.Alloc.Pool cfg);
    ("ptp-pool", fun cfg -> Ptp.run ~mode:Memdom.Alloc.Pool cfg);
    ("orc-pool", fun cfg -> Orc.run ~mode:Memdom.Alloc.Pool cfg);
  ]

let run name cfg = (List.assoc name batteries) cfg
let run_all cfg = List.map (fun (_, f) -> f cfg) batteries

(* ------------------------------------------------------------------ *)
(* Stall injection (watchdog battery)                                  *)
(* ------------------------------------------------------------------ *)

type stall_report = {
  st_name : string;
  st_victim : int;  (* the parked domain's registry slot *)
  st_ticks : int;  (* sampler passes completed *)
  st_stalls : int;  (* validated stall reports emitted *)
  st_age_max : int;  (* oldest age (ticks) the victim was flagged at *)
  st_detected : bool;
  st_cleared : bool;
  st_leaked : int;
  st_errors : string list;
}

let stall_ok r =
  r.st_errors = [] && r.st_detected && r.st_cleared && r.st_leaked = 0

let pp_stall_report fmt r =
  Format.fprintf fmt
    "@[<v 2>%s: victim tid %d, %d ticks, %d stall reports (age max %d)@,\
     detected %b, cleared after release %b, leaked %d%a@]"
    r.st_name r.st_victim r.st_ticks r.st_stalls r.st_age_max r.st_detected
    r.st_cleared r.st_leaked
    (fun fmt -> function
      | [] -> ()
      | es ->
          Format.fprintf fmt "@,errors:@,%a"
            (Format.pp_print_list Format.pp_print_string)
            es)
    r.st_errors

module Stall_hp = Reclaim.Hp.Make (CN)

(* Park one domain inside a guard with a protection published on the
   hot slot while churners keep evicting and retiring — the stalled
   guard pins real memory, exactly the failure the watchdog exists to
   surface — then assert the sampler flags the victim's slot and stops
   flagging it once the guard is released and the slot quarantined. *)
let run_stall ?(interval = 0.002) ?(stall_age = 3) ?(churners = 2)
    ?(ops = 400) () =
  let errors_lock = Mutex.create () in
  let errors = ref [] in
  let err e =
    Mutex.lock errors_lock;
    errors := Printexc.to_string e :: !errors;
    Mutex.unlock errors_lock
  in
  let alloc = Memdom.Alloc.create "stall-chaos" in
  let s = Stall_hp.create ~max_hps:4 alloc in
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let table = Array.init 4 (fun i -> Link.make (Link.Ptr (mk i))) in
  let sink = Obs.Sink.make () in
  (* fresh registry: this battery's series never mix with the ambient
     default; the watchdog itself is process-global, which is the point
     — detection needs no per-battery wiring *)
  let registry = Obs.Metrics.create () in
  let sampler = Obs.Sampler.start ~interval ~registry ~sink ~stall_age () in
  (* the watchdog only stamps once the tick is live; make sure at least
     one sampler pass ran before the victim enters its guard *)
  let t0 = Obs.Watchdog.tick () in
  while Obs.Watchdog.tick () <= t0 do
    Unix.sleepf (interval /. 2.)
  done;
  let victim_tid = Atomic.make (-1) in
  let release = Atomic.make false in
  let victim =
    Domain.spawn (fun () ->
        try
          Registry.with_tid (fun tid ->
              (* entering the park can itself be neutralized: on a
                 loaded box the domain may be descheduled past
                 [neutralize_age] ticks right after [begin_op], and the
                 first protected read raises.  That is the handshake
                 working, not the scenario under test — retry from the
                 top under fresh state until the park settles *)
              let rec park () =
                try
                  Stall_hp.begin_op s ~tid;
                  ignore (Stall_hp.get_protected s ~tid ~idx:0 table.(0));
                  Atomic.set victim_tid tid;
                  while not (Atomic.get release) do
                    Unix.sleepf (interval /. 2.)
                  done
                with Reclaim.Neutralize.Neutralized _ -> park ()
              in
              park ();
              Stall_hp.end_op s ~tid)
        with e -> err e)
  in
  while Atomic.get victim_tid < 0 do
    Domain.cpu_relax ()
  done;
  let vtid = Atomic.get victim_tid in
  let churn =
    List.init churners (fun ci ->
        Domain.spawn (fun () ->
            try
              Registry.with_tid (fun tid ->
                  let rng = Rng.create (0xBEEF + ci) in
                  for k = 1 to ops do
                    Stall_hp.begin_op s ~tid;
                    let n = mk k in
                    Stall_hp.protect_raw s ~tid ~idx:0 (Some n);
                    let old =
                      Link.exchange table.(Rng.int rng 4) (Link.Ptr n)
                    in
                    Stall_hp.end_op s ~tid;
                    match Link.target old with
                    | Some o -> Stall_hp.retire s ~tid o
                    | None -> ()
                  done)
            with e -> err e))
  in
  (* wait (bounded) for the sampler to flag the victim *)
  let victim_stalls () =
    List.concat_map Array.to_list (Obs.Sink.events sink)
    |> List.filter (fun (e : Obs.Event.t) ->
           e.kind = Obs.Event.Stall && e.uid = vtid)
  in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await_detect () =
    if victim_stalls () <> [] then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf interval;
      await_detect ()
    end
  in
  let detected = await_detect () in
  List.iter Domain.join churn;
  Atomic.set release true;
  Domain.join victim;
  (* the victim's with_tid release quarantined its slot, which clears
     the stamp row and bumps the generation: the watchdog must stop
     reporting it within a couple of ticks *)
  let clear_deadline = Unix.gettimeofday () +. 5. in
  let rec await_clear () =
    let still =
      List.exists (fun (tid, _) -> tid = vtid) (Obs.Watchdog.check ~max_age:stall_age ())
    in
    if not still then true
    else if Unix.gettimeofday () > clear_deadline then false
    else begin
      Unix.sleepf interval;
      await_clear ()
    end
  in
  let cleared = await_clear () in
  let ticks = Obs.Sampler.ticks sampler in
  let stalls = Obs.Sampler.stalls sampler in
  Obs.Sampler.stop sampler;
  (* quiesce and check the pinned memory was all recovered *)
  let tid = Registry.tid () in
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Stall_hp.retire s ~tid n
      | None -> ())
    table;
  Stall_hp.flush s;
  let age_max =
    List.fold_left
      (fun acc (e : Obs.Event.t) -> max acc e.arg)
      0 (victim_stalls ())
  in
  {
    st_name = "stall-hp";
    st_victim = vtid;
    st_ticks = ticks;
    st_stalls = stalls;
    st_age_max = age_max;
    st_detected = detected;
    st_cleared = cleared;
    st_leaked = Memdom.Alloc.live alloc;
    st_errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)
(* Background pipeline (reclaimer batteries)                           *)
(* ------------------------------------------------------------------ *)

type bg_report = {
  bg_name : string;
  bg_victim : int;  (* parked domain's slot; -1 when the battery parks none *)
  bg_neutralized : bool;
  bg_victim_raised : bool;
  bg_pinned_freed : bool;
  bg_sent : int;
  bg_fallbacks : int;
  bg_recovered : int;
  bg_unreclaimed_after : int;
  bg_leaked : int;
  bg_errors : string list;
}

let bg_ok r =
  r.bg_errors = [] && r.bg_neutralized && r.bg_victim_raised
  && r.bg_pinned_freed
  && r.bg_unreclaimed_after = 0
  && r.bg_leaked = 0

let pp_bg_report fmt r =
  Format.fprintf fmt
    "@[<v 2>%s: victim tid %d, neutralized %b, victim raised %b, pinned \
     freed %b@,\
     channel: %d batches sent, %d fallbacks, %d objects recovered@,\
     after quiesce: leaked %d, unreclaimed %d%a@]"
    r.bg_name r.bg_victim r.bg_neutralized r.bg_victim_raised r.bg_pinned_freed
    r.bg_sent r.bg_fallbacks r.bg_recovered r.bg_leaked r.bg_unreclaimed_after
    (fun fmt -> function
      | [] -> ()
      | es ->
          Format.fprintf fmt "@,errors:@,%a"
            (Format.pp_print_list Format.pp_print_string)
            es)
    r.bg_errors

(* Park one domain inside a guard with a protection pinning a retired
   node while churners retire through the background channel.  The
   reclaimer (armed with [neutralize_age]) must validate the stall,
   expire the guard, and thereby let a later scan free the pinned node
   — returning the unreclaimed population to the running bound with
   the victim still asleep.  When the victim wakes, its very next
   protection acquisition must raise [Neutralized] instead of handing
   out a validated protection built on the expired slots. *)
let run_neutralize ?(interval = 0.002) ?(neutralize_age = 3) ?(churners = 2)
    () =
  let errors_lock = Mutex.create () in
  let errors = ref [] in
  let err e =
    Mutex.lock errors_lock;
    errors := Printexc.to_string e :: !errors;
    Mutex.unlock errors_lock
  in
  let alloc = Memdom.Alloc.create "neutralize-chaos" in
  let s = Stall_hp.create ~max_hps:4 alloc in
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let pinned = mk 0 in
  let table = Array.init 4 (fun i -> Link.make (Link.Ptr (if i = 0 then pinned else mk i))) in
  let sink = Obs.Sink.make () in
  let registry = Obs.Metrics.create () in
  let channel = Reclaim.Channel.create ~bound:128 ~registry () in
  Stall_hp.set_background s (Some channel);
  let reclaimer =
    Reclaim.Reclaimer.start ~interval ~neutralize_age ~sink ~registry channel
  in
  (* the watchdog only stamps once the tick is live; the reclaimer
     self-clocks it, so wait for its first advance before the victim
     enters the guard *)
  let t0 = Obs.Watchdog.tick () in
  let clock_deadline = Unix.gettimeofday () +. 5. in
  while
    Obs.Watchdog.tick () <= t0 && Unix.gettimeofday () < clock_deadline
  do
    Unix.sleepf (interval /. 2.)
  done;
  let victim_tid = Atomic.make (-1) in
  let release = Atomic.make false in
  let victim_raised = Atomic.make false in
  let victim =
    Domain.spawn (fun () ->
        try
          Registry.with_tid (fun tid ->
              (* entering the park can itself be neutralized: on a
                 loaded box the domain may be descheduled past
                 [neutralize_age] ticks right after [begin_op], and the
                 first protected read raises.  That is the handshake
                 working, not the scenario under test — retry from the
                 top under fresh state until the park settles *)
              let rec park () =
                try
                  Stall_hp.begin_op s ~tid;
                  ignore (Stall_hp.get_protected s ~tid ~idx:0 table.(0));
                  Atomic.set victim_tid tid;
                  while not (Atomic.get release) do
                    Unix.sleepf (interval /. 2.)
                  done
                with Reclaim.Neutralize.Neutralized _ -> park ()
              in
              park ();
              (* wake-after-neutralize handshake: the guard was expired
                 while we slept, so the wake-up protection acquisition
                 must refuse — handing out a validated protection here
                 would be a use-after-free in waiting *)
              (match Stall_hp.get_protected s ~tid ~idx:1 table.(1) with
              | _ -> ()
              | exception Reclaim.Neutralize.Neutralized _ ->
                  Atomic.set victim_raised true);
              Stall_hp.end_op s ~tid)
        with e -> err e)
  in
  while Atomic.get victim_tid < 0 do
    Domain.cpu_relax ()
  done;
  let vtid = Atomic.get victim_tid in
  (* churners run until told to stop: the reclaimer needs fresh batches
     arriving to re-scan, and the bound claim is about steady state *)
  let stop_churn = Atomic.make false in
  let churn =
    List.init churners (fun ci ->
        Domain.spawn (fun () ->
            try
              Registry.with_tid (fun tid ->
                  let rng = Rng.create (0xFACE + ci) in
                  let k = ref 0 in
                  (* a churner descheduled past [neutralize_age] ticks
                     mid-guard gets neutralized too; [retire] is the
                     raise point on this loop, and abandoning the
                     unlinked node there would read as a leak at
                     quiesce.  The raise consumed the pending flag, so
                     the immediate retry runs under fresh state *)
                  let rec retire_out o =
                    try Stall_hp.retire s ~tid o
                    with Reclaim.Neutralize.Neutralized _ -> retire_out o
                  in
                  while not (Atomic.get stop_churn) do
                    incr k;
                    Stall_hp.begin_op s ~tid;
                    let n = mk !k in
                    Stall_hp.protect_raw s ~tid ~idx:0 (Some n);
                    let old =
                      Link.exchange table.(Rng.int rng 4) (Link.Ptr n)
                    in
                    Stall_hp.end_op s ~tid;
                    (match Link.target old with
                    | Some o -> retire_out o
                    | None -> ());
                    if !k land 0x3F = 0 then Domain.cpu_relax ()
                  done)
            with e -> err e))
  in
  (* await the neutralization event naming the victim *)
  let victim_neutralized () =
    List.concat_map Array.to_list (Obs.Sink.events sink)
    |> List.exists (fun (e : Obs.Event.t) ->
           e.kind = Obs.Event.Neutralize && e.uid = vtid)
  in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await_neutralize () =
    if victim_neutralized () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf interval;
      await_neutralize ()
    end
  in
  let neutralized = await_neutralize () in
  (* with the victim's protections expired — and the victim still
     parked in its guard — churn must now be able to free the node the
     stall pinned, restoring the running O(Ht) bound *)
  let free_deadline = Unix.gettimeofday () +. 10. in
  let rec await_freed () =
    if Memdom.Hdr.is_freed pinned.hdr then true
    else if Unix.gettimeofday () > free_deadline then false
    else begin
      Unix.sleepf interval;
      await_freed ()
    end
  in
  let pinned_freed = neutralized && await_freed () in
  Atomic.set stop_churn true;
  List.iter Domain.join churn;
  Atomic.set release true;
  Domain.join victim;
  Reclaim.Reclaimer.stop reclaimer;
  Stall_hp.set_background s None;
  (* quiesce and check every object was recovered *)
  let tid = Registry.tid () in
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Stall_hp.retire s ~tid n
      | None -> ())
    table;
  Stall_hp.flush s;
  Reclaim.Channel.keep_alive channel;
  {
    bg_name = "neutralize-hp";
    bg_victim = vtid;
    bg_neutralized = neutralized;
    bg_victim_raised = Atomic.get victim_raised;
    bg_pinned_freed = pinned_freed;
    bg_sent = Reclaim.Channel.sent channel;
    bg_fallbacks = Reclaim.Channel.fallbacks channel;
    bg_recovered = 0;
    bg_unreclaimed_after = Stall_hp.unreclaimed s;
    bg_leaked = Memdom.Alloc.live alloc;
    bg_errors = List.rev !errors;
  }

(* Kill the reclaimer mid-run: sends keep landing in the open channel
   until the depth bound bites, then every retire falls back inline —
   the mutators never block and never leak.  [recover] then adopts the
   dead reclaimer's backlog, and the quiesced flush must account for
   every object.  The n/a victim fields are reported [true]/[-1] so
   [bg_ok] applies unchanged. *)
let run_reclaimer_kill ?(interval = 0.001) ?(churners = 3) ?(ops = 800)
    ?(bound = 96) () =
  let errors_lock = Mutex.create () in
  let errors = ref [] in
  let err e =
    Mutex.lock errors_lock;
    errors := Printexc.to_string e :: !errors;
    Mutex.unlock errors_lock
  in
  let alloc = Memdom.Alloc.create "reclaimer-kill-chaos" in
  let s = Stall_hp.create ~max_hps:4 alloc in
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let table = Array.init 4 (fun i -> Link.make (Link.Ptr (mk i))) in
  let channel = Reclaim.Channel.create ~bound () in
  Stall_hp.set_background s (Some channel);
  let reclaimer = Reclaim.Reclaimer.start ~interval channel in
  let churn =
    List.init churners (fun ci ->
        Domain.spawn (fun () ->
            try
              Registry.with_tid (fun tid ->
                  let rng = Rng.create (0xDEAD + ci) in
                  for k = 1 to ops do
                    Stall_hp.begin_op s ~tid;
                    let n = mk k in
                    Stall_hp.protect_raw s ~tid ~idx:0 (Some n);
                    let old =
                      Link.exchange table.(Rng.int rng 4) (Link.Ptr n)
                    in
                    Stall_hp.end_op s ~tid;
                    match Link.target old with
                    | Some o -> Stall_hp.retire s ~tid o
                    | None -> ()
                  done)
            with e -> err e))
  in
  (* kill once the pipeline has demonstrably carried traffic (bounded
     wait — under extreme scheduling the churners may finish first, in
     which case the kill degenerates to a stop-without-drain, which the
     recovery path must still reconcile) *)
  let kill_deadline = Unix.gettimeofday () +. 5. in
  while
    Reclaim.Channel.sent channel = 0
    && Unix.gettimeofday () < kill_deadline
  do
    Unix.sleepf interval
  done;
  Reclaim.Reclaimer.kill reclaimer;
  List.iter Domain.join churn;
  let tid = Registry.tid () in
  let recovered = Reclaim.Reclaimer.recover reclaimer ~tid in
  Stall_hp.set_background s None;
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Stall_hp.retire s ~tid n
      | None -> ())
    table;
  Stall_hp.flush s;
  Reclaim.Channel.keep_alive channel;
  {
    bg_name = "reclaimer-kill-hp";
    bg_victim = -1;
    bg_neutralized = true;
    bg_victim_raised = true;
    bg_pinned_freed = true;
    bg_sent = Reclaim.Channel.sent channel;
    bg_fallbacks = Reclaim.Channel.fallbacks channel;
    bg_recovered = recovered;
    bg_unreclaimed_after = Stall_hp.unreclaimed s;
    bg_leaked = Memdom.Alloc.live alloc;
    bg_errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)
(* Adaptive controller (mode-switch battery)                           *)
(* ------------------------------------------------------------------ *)

module Sw = Reclaim.Switchable.Make (CN)

type adaptive_report = {
  ad_victim : int;
  ad_escalations : int;
  ad_relaxations : int;
  ad_mode_after : int;
  ad_kills : int; (* domains killed mid-switch (abandoned abruptly) *)
  ad_forced : int; (* of those, slots reclaimed by force_release *)
  ad_hwm : int; (* peak unreclaimed sampled at controller ticks *)
  ad_decisions : int;
  ad_unreclaimed_after : int;
  ad_leaked : int;
  ad_errors : string list;
}

let adaptive_ok r =
  r.ad_errors = [] && r.ad_escalations > 0 && r.ad_relaxations > 0
  && r.ad_mode_after = Reclaim.Switchable.fast
  && r.ad_forced = r.ad_kills
  && r.ad_unreclaimed_after = 0 && r.ad_leaked = 0

let pp_adaptive_report fmt r =
  Format.fprintf fmt
    "@[<v 2>adaptive: victim tid %d, %d escalations, %d relaxations, final \
     mode %d@,\
     %d mid-switch kills (%d force-released), %d controller decisions, \
     unreclaimed hwm %d@,\
     after quiesce: leaked %d, unreclaimed %d%a@]"
    r.ad_victim r.ad_escalations r.ad_relaxations r.ad_mode_after r.ad_kills
    r.ad_forced r.ad_decisions r.ad_hwm r.ad_leaked r.ad_unreclaimed_after
    (fun fmt -> function
      | [] -> ()
      | es ->
          Format.fprintf fmt "@,errors:@,%a"
            (Format.pp_print_list Format.pp_print_string)
            es)
    r.ad_errors

(* Three phases over one Switchable-backed table, the controller ticked
   from this thread (deterministic on any core count):

   calm — churners run, mode must stay Fast;
   stall — a victim parks inside a guard holding an epoch protection.
   Retires pile up behind its announcement, the stall ages, the
   controller escalates, the armed reclaimer neutralizes the victim,
   and the grace period completes into Robust.  While the switch is in
   flight, extra domains die abruptly (slots Active, hazards up) and
   are force-released — the orphan machinery must absorb deaths at the
   most hostile moment;
   recovery — the victim wakes (raising [Neutralized]) and sustained
   calm must relax the mode back to Fast.

   Quiesce then asserts the usual zero-leak contract. *)
let run_adaptive ?(interval = 0.002) ?(neutralize_age = 3) ?(churners = 2)
    ?(kills = 2) () =
  let errors_lock = Mutex.create () in
  let errors = ref [] in
  let err e =
    Mutex.lock errors_lock;
    errors := Printexc.to_string e :: !errors;
    Mutex.unlock errors_lock
  in
  let alloc = Memdom.Alloc.create "adaptive-chaos" in
  let s = Sw.create ~max_hps:4 alloc in
  let mk v = { hdr = Memdom.Alloc.hdr alloc (); payload = v } in
  let table = Array.init 4 (fun i -> Link.make (Link.Ptr (mk i))) in
  let sink = Obs.Sink.make () in
  let registry = Obs.Metrics.create () in
  let channel = Reclaim.Channel.create ~bound:256 ~registry () in
  Sw.set_background s (Some channel);
  let reclaimer =
    Reclaim.Reclaimer.start ~interval ~neutralize_age ~sink ~registry channel
  in
  let ctrl =
    Reclaim.Controller.create
      ~cfg:
        {
          Reclaim.Controller.unreclaimed_hi = 1_000_000;
          (* escalation is driven purely by the stall in this battery *)
          unreclaimed_lo = 4096;
          (* strictly below [neutralize_age]: neutralization bumps the
             victim's registry generation, which erases its watchdog row
             from [stall_age_max] — the controller must react while the
             stall is still visible, with the neutralizer as the later
             backstop that unblocks the grace period *)
          stall_age_hi = max 1 (neutralize_age - 1);
          calm_ticks = 3;
        }
      ~reclaimer ~channel ~sink ~registry
      [
        Reclaim.Controller.target ~label:"adaptive-chaos"
          ~mode:(fun () -> Sw.mode s)
          ~escalate:(fun () -> Sw.escalate s)
          ~try_complete:(fun () -> Sw.try_complete s)
          ~relax:(fun () -> Sw.relax s)
          ~tuning:(Sw.tuning s)
          ~unreclaimed:(fun () -> Sw.unreclaimed s)
          ~stall_age:(fun () -> Sw.stall_age_max s)
          ();
      ]
  in
  let hwm = ref 0 in
  let tick () =
    Reclaim.Controller.tick ctrl;
    hwm := max !hwm (Sw.unreclaimed s)
  in
  (* wait for the reclaimer's self-clock so stall ages can grow *)
  let t0 = Obs.Watchdog.tick () in
  let clock_deadline = Unix.gettimeofday () +. 5. in
  while
    Obs.Watchdog.tick () <= t0 && Unix.gettimeofday () < clock_deadline
  do
    Unix.sleepf (interval /. 2.)
  done;
  let stop_churn = Atomic.make false in
  let churn =
    List.init churners (fun ci ->
        Domain.spawn (fun () ->
            try
              Registry.with_tid (fun tid ->
                  let rng = Rng.create (0xADA7 + ci) in
                  let k = ref 0 in
                  (* see the neutralize battery: [retire] is a raise
                     point, and a neutralized churner must retry it
                     rather than leak the unlinked node *)
                  let rec retire_out o =
                    try Sw.retire s ~tid o
                    with Reclaim.Neutralize.Neutralized _ -> retire_out o
                  in
                  while not (Atomic.get stop_churn) do
                    incr k;
                    Sw.begin_op s ~tid;
                    let n = mk !k in
                    Sw.protect_raw s ~tid ~idx:0 (Some n);
                    let old =
                      Link.exchange table.(Rng.int rng 4) (Link.Ptr n)
                    in
                    Sw.end_op s ~tid;
                    (match Link.target old with
                    | Some o -> retire_out o
                    | None -> ());
                    if !k land 0x3F = 0 then Domain.cpu_relax ()
                  done)
            with e -> err e))
  in
  (* phase: calm — the steady state must be Fast.  Not an instant
     assertion: on a preemptible box a churner descheduled past
     [stall_age_hi] watchdog ticks mid-guard is indistinguishable from
     a stall, and escalating on it is the controller working as
     specified.  What must hold is that sustained calm relaxes back —
     so tick past the phase until the mode settles, and fail only if
     it never does. *)
  let calm_until = Unix.gettimeofday () +. (10. *. interval) in
  while Unix.gettimeofday () < calm_until do
    tick ();
    Unix.sleepf (interval /. 2.)
  done;
  let settle_deadline = Unix.gettimeofday () +. 5. in
  while
    Sw.mode s <> Reclaim.Switchable.fast
    && Unix.gettimeofday () < settle_deadline
  do
    tick ();
    Unix.sleepf (interval /. 2.)
  done;
  if Sw.mode s <> Reclaim.Switchable.fast then
    err (Failure "calm phase never settled at Fast");
  (* phase: stall — park the victim, await the full escalation *)
  let victim_tid = Atomic.make (-1) in
  let release = Atomic.make false in
  let victim_raised = Atomic.make false in
  let victim =
    Domain.spawn (fun () ->
        try
          Registry.with_tid (fun tid ->
              (* retry the park if neutralized before it settles — see
                 the neutralize battery's victim *)
              let rec park () =
                try
                  Sw.begin_op s ~tid;
                  ignore (Sw.get_protected s ~tid ~idx:0 table.(0));
                  Atomic.set victim_tid tid;
                  while not (Atomic.get release) do
                    Unix.sleepf (interval /. 2.)
                  done
                with Reclaim.Neutralize.Neutralized _ -> park ()
              in
              park ();
              (match Sw.get_protected s ~tid ~idx:1 table.(1) with
              | _ -> ()
              | exception Reclaim.Neutralize.Neutralized _ ->
                  Atomic.set victim_raised true);
              Sw.end_op s ~tid)
        with e -> err e)
  in
  while Atomic.get victim_tid < 0 do
    Domain.cpu_relax ()
  done;
  let vtid = Atomic.get victim_tid in
  let deadline = Unix.gettimeofday () +. 10. in
  let killed = ref 0 and forced = ref 0 in
  let kills_fired = ref false in
  while
    Sw.mode s <> Reclaim.Switchable.robust
    && Unix.gettimeofday () < deadline
  do
    tick ();
    (* the moment the switch is in flight, throw domain deaths at it *)
    if (not !kills_fired) && Sw.mode s >= Reclaim.Switchable.escalating
    then begin
      kills_fired := true;
      let doomed =
        List.init kills (fun ki ->
            Domain.spawn (fun () ->
                try
                  let rng = Rng.create (0xDEAD + ki) in
                  let tid = Registry.tid () in
                  Sw.begin_op s ~tid;
                  ignore
                    (Sw.get_protected s ~tid ~idx:0 table.(Rng.int rng 4));
                  (* abrupt death: hazards up, slot left Active *)
                  Registry.abandon ()
                with e ->
                  err e;
                  -1))
      in
      List.iter
        (fun d ->
          match Domain.join d with
          | -1 -> ()
          | tid ->
              incr killed;
              if Registry.force_release tid then incr forced)
        doomed
    end;
    Unix.sleepf (interval /. 2.)
  done;
  if Sw.mode s <> Reclaim.Switchable.robust then
    err (Failure "never reached Robust under stall");
  (* phase: recovery — wake the victim, sustain calm, await relax *)
  Atomic.set release true;
  Domain.join victim;
  let relax_deadline = Unix.gettimeofday () +. 10. in
  while
    (Sw.mode s <> Reclaim.Switchable.fast || Sw.relaxations s = 0)
    && Unix.gettimeofday () < relax_deadline
  do
    tick ();
    Unix.sleepf (interval /. 2.)
  done;
  if Sw.mode s <> Reclaim.Switchable.fast then
    err (Failure "never relaxed back to Fast after calm");
  Atomic.set stop_churn true;
  List.iter Domain.join churn;
  Reclaim.Reclaimer.stop reclaimer;
  Sw.set_background s None;
  let tid = Registry.tid () in
  Array.iter
    (fun slot ->
      match Link.target (Link.exchange slot Link.Null) with
      | Some n -> Sw.retire s ~tid n
      | None -> ())
    table;
  Sw.flush s;
  Reclaim.Channel.keep_alive channel;
  {
    ad_victim = vtid;
    ad_escalations = Sw.escalations s;
    ad_relaxations = Sw.relaxations s;
    ad_mode_after = Sw.mode s;
    ad_kills = !killed;
    ad_forced = !forced;
    ad_hwm = !hwm;
    ad_decisions = Reclaim.Controller.decisions ctrl;
    ad_unreclaimed_after = Sw.unreclaimed s;
    ad_leaked = Memdom.Alloc.live alloc;
    ad_errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)
(* Split-ordered map growth (directory doubling under domain death)    *)
(* ------------------------------------------------------------------ *)

type split_report = {
  sp_name : string;
  sp_domains : int;
  sp_killed : int;
  sp_mid_grow : int;
  sp_abandoned : int;
  sp_force_released : int;
  sp_grows : int;
  sp_buckets : int;
  sp_size : int;
  sp_invariant : bool;
  sp_sorted : bool;
  sp_leaked : int;
  sp_unreclaimed_after : int;
  sp_errors : string list;
}

let split_ok r =
  r.sp_errors = [] && r.sp_grows >= 3 && r.sp_mid_grow > 0 && r.sp_invariant
  && r.sp_sorted
  && r.sp_force_released = r.sp_abandoned
  && r.sp_leaked = 0 && r.sp_unreclaimed_after = 0

let pp_split_report fmt r =
  Format.fprintf fmt
    "@[<v 2>%s: %d domains, %d killed (%d mid-grow, %d abandoned, %d \
     force-released)@,\
     %d grows -> %d buckets, %d keys; invariant %b, sorted %b; after \
     quiesce: leaked %d, unreclaimed %d%a@]"
    r.sp_name r.sp_domains r.sp_killed r.sp_mid_grow r.sp_abandoned
    r.sp_force_released r.sp_grows r.sp_buckets r.sp_size r.sp_invariant
    r.sp_sorted r.sp_leaked r.sp_unreclaimed_after
    (fun fmt -> function
      | [] -> ()
      | es ->
          Format.fprintf fmt "@,errors:@,%a"
            (Format.pp_print_list Format.pp_print_string)
            es)
    r.sp_errors

module Split_orc = Ds.Orc_split_map.Make ()
module Split_hp = Ds.Split_map.Make (Reclaim.Hp.Make)

(* Insert-heavy churn over a split-ordered map so the directory doubles
   repeatedly during the storm; a domain that witnesses a doubling
   usually dies on the spot — sometimes abruptly ([Registry.abandon],
   slot left Active) — leaving the freshly split buckets' directory
   entries still Null.  Survivors must complete the lazy recursive
   bucket initialization (adopt the half-finished grow), the scheme's
   orphan protocol must adopt the dead domains' retire backlogs, and
   the quiesced map must be structurally intact with zero leaks. *)
let split_battery (type t)
    (module M : Ds.Orc_split_map.MAP with type t = t) name cfg ~span =
  let s = M.create () in
  let mid_grow = Atomic.make 0 in
  let worker ~tid:_ ~rng ~out =
    for _ = 1 to cfg.ops do
      let k = 1 + Rng.int rng span in
      let g0 = M.grows s in
      (match Rng.int rng 8 with
      | 0 | 1 -> ignore (M.remove s k)
      | 2 -> ignore (M.contains s k)
      | _ -> ignore (M.add s k));
      if M.grows s > g0 && Rng.int rng 2 = 0 then begin
        (* die right after a doubling published the larger size *)
        Atomic.incr mid_grow;
        if Rng.int rng 3 = 0 then
          out := `Abandoned (Registry.abandon ())
        else out := `Killed;
        raise Killed
      end
      else if cfg.kill_every > 0 && Rng.int rng cfg.kill_every = 0 then begin
        out := `Killed;
        raise Killed
      end
    done
  in
  let killed, abandoned, forced, _peak, errors =
    drive cfg ~worker ~sample:(fun () -> M.unreclaimed s)
  in
  let l = M.to_list s in
  let sorted = List.sort_uniq compare l = l in
  let invariant = M.invariant s in
  let grows = M.grows s and buckets = M.buckets s in
  M.destroy s;
  M.flush s;
  {
    sp_name = name;
    sp_domains = cfg.waves * cfg.domains_per_wave;
    sp_killed = killed;
    sp_mid_grow = Atomic.get mid_grow;
    sp_abandoned = abandoned;
    sp_force_released = forced;
    sp_grows = grows;
    sp_buckets = buckets;
    sp_size = List.length l;
    sp_invariant = invariant;
    sp_sorted = sorted;
    sp_leaked = Memdom.Alloc.live (M.alloc s);
    sp_unreclaimed_after = M.unreclaimed s;
    sp_errors = errors;
  }

let run_split_grow ?(waves = 6) ?(domains_per_wave = 6) ?(ops = 1_500)
    ?(kill_every = 400) ?(span = 2_000) ?(seed = 0x5011D) () =
  let cfg =
    { default with waves; domains_per_wave; ops; kill_every; seed }
  in
  [
    split_battery (module Split_orc) "split-orc" cfg ~span;
    split_battery (module Split_hp) "split-hp" cfg ~span;
  ]
