(** Chaos harness for domain-lifecycle robustness.

    Spawns waves of short-lived domains — far more than
    {!Atomicx.Registry.max_threads} over a run — that hammer a shared
    table of nodes through a reclamation scheme while dying at
    randomized, adversarial points: inside a guard with protections
    published, right after retiring, after a burst of retires that has
    not been scanned yet, or abruptly ({!Atomicx.Registry.abandon}, so
    the slot is left Active with hazards up until the controller
    force-releases it).

    The harness asserts the lifecycle contract end to end: no
    [Use_after_free] / [Double_free] / [Too_many_threads], every retired
    object reclaimed once the run quiesces, and the registry's slot
    recycling + orphan adoption keeping memory bounded across arbitrary
    churn.  One battery per scheme; {!run_all} runs every battery and is
    what the [chaos] test alias and [soak --churn] drive. *)

type cfg = {
  waves : int;  (** join point between spawn bursts *)
  domains_per_wave : int;
      (** concurrent short-lived domains per wave (plus the controller) *)
  ops : int;  (** table operations attempted per domain *)
  kill_every : int;
      (** mean ops between kill events inside one domain; [0] disables
          killing entirely (pure churn) *)
  burst : int;  (** retire-burst size for the die-with-backlog kill *)
  slots : int;  (** width of the shared node table *)
  seed : int;  (** master seed; every domain derives its own stream *)
  sink : Obs.Sink.t;  (** receives retire/orphan/adopt/... events *)
}

val default : cfg
(** 20 waves x 8 domains x 120 ops, kill roughly every 40 ops.  One
    battery spawns 160 domains; the full {!run_all} (11 batteries)
    spawns [11 * 160 = 1760], well over ten times
    [Registry.max_threads]. *)

(** What one battery observed. *)
type report = {
  name : string;  (** scheme name *)
  domains : int;  (** domains spawned *)
  killed : int;  (** domains that died at a kill point *)
  abandoned : int;  (** of those, abrupt deaths (slot left Active) *)
  force_released : int;  (** abandoned slots reclaimed by the controller *)
  peak_unreclaimed : int;  (** max [S.unreclaimed] sampled at wave joins *)
  leaked : int;  (** [Alloc.live] after quiesce + flush — must be 0 *)
  unreclaimed_after : int;  (** [S.unreclaimed] after quiesce — must be 0 *)
  orphaned_after : int;  (** orphan-pool residue after quiesce — must be 0 *)
  pool_hits : int;  (** recycled hand-outs (0 for System batteries) *)
  pool_misses : int;  (** fresh builds under Pool mode *)
  remote_frees : int;  (** frees routed via a transfer stack *)
  errors : string list;
      (** unexpected exceptions from workers ([Use_after_free],
          [Too_many_threads], ...) — must be empty *)
}

val ok : report -> bool
(** No errors, nothing leaked, nothing left unreclaimed or orphaned,
    and every abandoned slot force-released. *)

val pp_report : Format.formatter -> report -> unit

val batteries : (string * (cfg -> report)) list
(** One battery per scheme: hp, ptb, ebr, he, ibr, ptp (manual
    protect/retire API) and orc, orc-hp (automatic guard API; their
    kill points are exceptions and between-guard abandons, since
    [with_guard] scopes cannot be skipped).  The hp-pool, ptp-pool and
    orc-pool batteries re-run a representative subset over a
    type-stable [Memdom.Alloc.Pool] allocator, so domain churn also
    exercises header recycling, remote frees, and the pool's own
    quarantine→orphan hand-off. *)

val run : string -> cfg -> report
(** Run the named battery.  Raises [Not_found] on an unknown name. *)

val run_all : cfg -> report list

(** {2 Stall injection}

    The watchdog battery: park a domain inside a guard with a live
    protection while churners evict and retire around it, and assert
    the metrics plane ({!Obs.Sampler} + {!Obs.Watchdog}) flags the
    parked slot — and stops flagging it once the guard is released and
    the slot quarantined. *)

type stall_report = {
  st_name : string;
  st_victim : int;  (** the parked domain's registry slot *)
  st_ticks : int;  (** sampler passes completed *)
  st_stalls : int;  (** validated stall reports emitted *)
  st_age_max : int;  (** oldest age (in ticks) the victim was flagged at *)
  st_detected : bool;  (** a [Stall] event named the victim's slot *)
  st_cleared : bool;  (** after release, the victim is no longer flagged *)
  st_leaked : int;  (** [Alloc.live] after quiesce — must be 0 *)
  st_errors : string list;
}

val stall_ok : stall_report -> bool
(** No errors, detected, cleared, nothing leaked. *)

val pp_stall_report : Format.formatter -> stall_report -> unit

val run_stall :
  ?interval:float ->
  ?stall_age:int ->
  ?churners:int ->
  ?ops:int ->
  unit ->
  stall_report
(** Run the battery.  [interval] is the sampler period (default 2 ms),
    [stall_age] the watchdog threshold in ticks (default 3), [churners]
    the number of evicting writer domains (default 2), [ops] their
    operation count (default 400). *)

(** {2 Background pipeline}

    Reclaimer batteries: the neutralization battery parks a domain
    inside a guard pinning a retired node while churners retire through
    the background {!Reclaim.Channel}, and asserts the armed
    {!Reclaim.Reclaimer} expires the guard (the pinned node frees with
    the victim still asleep) and that the waking victim's next
    protection acquisition raises [Neutralized].  The kill battery
    crashes the reclaimer mid-run and asserts mutators degrade to
    inline reclamation with zero leaks, and that {!Reclaim.Reclaimer.recover}
    reconciles the dead reclaimer's backlog. *)

type bg_report = {
  bg_name : string;
  bg_victim : int;
      (** the parked domain's registry slot; [-1] when the battery
          parks no victim (kill battery) *)
  bg_neutralized : bool;
      (** a [Neutralize] event named the victim ([true] when n/a) *)
  bg_victim_raised : bool;
      (** the waking victim's protection acquisition raised
          [Neutralized] ([true] when n/a) *)
  bg_pinned_freed : bool;
      (** the node the stalled guard pinned was freed after the
          neutralization, victim still parked ([true] when n/a) *)
  bg_sent : int;  (** batches that travelled the channel *)
  bg_fallbacks : int;  (** refused sends reclaimed inline *)
  bg_recovered : int;  (** objects adopted by [recover] (kill battery) *)
  bg_unreclaimed_after : int;  (** after quiesce — must be 0 *)
  bg_leaked : int;  (** [Alloc.live] after quiesce — must be 0 *)
  bg_errors : string list;
}

val bg_ok : bg_report -> bool
(** No errors, every asserted event observed, nothing leaked or left
    unreclaimed. *)

val pp_bg_report : Format.formatter -> bg_report -> unit

val run_neutralize :
  ?interval:float -> ?neutralize_age:int -> ?churners:int -> unit -> bg_report
(** Run the neutralization battery.  [interval] is the reclaimer pass
    period (default 2 ms), [neutralize_age] the validated stall age in
    watchdog ticks past which the guard is expired (default 3),
    [churners] the number of evicting writer domains (default 2). *)

val run_reclaimer_kill :
  ?interval:float ->
  ?churners:int ->
  ?ops:int ->
  ?bound:int ->
  unit ->
  bg_report
(** Run the kill battery.  [bound] (default 96) is the channel depth
    bound — small, so the post-kill backlog demonstrably trips the
    inline fallback before the churners finish their [ops]
    (default 800 each). *)

(** {2 Adaptive controller}

    The mode-switch battery: a {!Reclaim.Switchable}-backed table runs
    through three phases — calm (the mode must stay Fast), stall (a
    parked victim ages until the {!Reclaim.Controller} escalates, the
    armed reclaimer neutralizes the victim, and the grace period
    completes into Robust, with extra domains dying abruptly exactly
    while the switch is in flight) and recovery (the woken victim's
    protection raises [Neutralized], sustained calm relaxes the mode
    back to Fast).  Quiesce asserts the zero-leak contract across the
    whole ride. *)

type adaptive_report = {
  ad_victim : int;  (** the parked domain's registry slot *)
  ad_escalations : int;  (** completed Escalating→Robust promotions *)
  ad_relaxations : int;  (** completed relaxations *)
  ad_mode_after : int;  (** must be back at {!Reclaim.Switchable.fast} *)
  ad_kills : int;  (** domains killed abruptly mid-switch *)
  ad_forced : int;  (** of those, slots reclaimed by force-release *)
  ad_hwm : int;  (** peak unreclaimed sampled at controller ticks *)
  ad_decisions : int;  (** controller decisions taken *)
  ad_unreclaimed_after : int;  (** after quiesce — must be 0 *)
  ad_leaked : int;  (** [Alloc.live] after quiesce — must be 0 *)
  ad_errors : string list;
}

val adaptive_ok : adaptive_report -> bool
(** No errors, ≥1 escalation and ≥1 relaxation, mode back to Fast,
    every mid-switch kill force-released, nothing leaked or left
    unreclaimed. *)

val pp_adaptive_report : Format.formatter -> adaptive_report -> unit

val run_adaptive :
  ?interval:float ->
  ?neutralize_age:int ->
  ?churners:int ->
  ?kills:int ->
  unit ->
  adaptive_report
(** Run the battery.  [interval] is the reclaimer pass period (default
    2 ms), [neutralize_age] the validated stall age (in watchdog ticks)
    past which the victim's guard is expired (default 3) — the
    controller's escalation threshold is set one tick below it, since
    neutralization bumps the victim's generation and erases its
    watchdog row: the controller must see the stall before the
    neutralizer does.  [churners] is the evicting writer domains
    (default 2), [kills] the domains killed mid-switch (default 2). *)

(** {2 Split-ordered map growth}

    The directory-doubling battery: insert-heavy churn over
    {!Ds.Orc_split_map} (and the manual HP twin) forces repeated
    doublings while domains die right after witnessing one — sometimes
    abruptly, slot left Active — so the freshly split buckets'
    directory entries are still uninitialized when their initializer
    vanishes.  Survivors must complete the lazy recursive bucket
    initialization, adopt the dead domains' retire backlogs, and leave
    the quiesced map structurally intact with zero leaks. *)

type split_report = {
  sp_name : string;
  sp_domains : int;  (** domains spawned *)
  sp_killed : int;  (** domains that died at a kill point *)
  sp_mid_grow : int;  (** of those, deaths right after a doubling *)
  sp_abandoned : int;  (** abrupt deaths (slot left Active) *)
  sp_force_released : int;  (** abandoned slots reclaimed *)
  sp_grows : int;  (** directory doublings across the storm *)
  sp_buckets : int;  (** final bucket count *)
  sp_size : int;  (** surviving keys at quiesce *)
  sp_invariant : bool;  (** structural check after the storm *)
  sp_sorted : bool;  (** [to_list] strictly increasing, no duplicates *)
  sp_leaked : int;  (** [Alloc.live] after destroy + flush — must be 0 *)
  sp_unreclaimed_after : int;  (** after quiesce — must be 0 *)
  sp_errors : string list;
}

val split_ok : split_report -> bool
(** No errors, ≥3 doublings with ≥1 mid-grow death, invariant and
    ordering hold, every abandoned slot force-released, nothing leaked
    or left unreclaimed. *)

val pp_split_report : Format.formatter -> split_report -> unit

val run_split_grow :
  ?waves:int ->
  ?domains_per_wave:int ->
  ?ops:int ->
  ?kill_every:int ->
  ?span:int ->
  ?seed:int ->
  unit ->
  split_report list
(** Run the battery over the orc and hp split maps (defaults: 6 waves
    x 6 domains x 1500 ops over a 2000-key span, background kill
    roughly every 400 ops on top of the mid-grow deaths). *)
