(** Per-thread fixed-capacity event rings: one single-writer ring per
    registry tid, lock-free snapshot readers.

    The writer (always the owning thread) stores an event's payload into
    plain int arrays and then publishes the new head with a release
    store; it never blocks, never allocates after the ring exists, and
    wraps by overwriting the oldest entry.  A reader copies the window
    and uses a second head read to discard every entry the writer could
    have republished during the copy, so a snapshot taken under full
    writer traffic is still a gap-free, monotonically-timestamped suffix
    of that thread's history (same single-writer/merge-on-read soundness
    argument as [Atomicx.Shard]; see DESIGN.md §8).

    Rings are created lazily on a thread's first emit, so an idle
    [Registry] slot costs one padded word. *)

type t

val default_capacity : int
(** 4096 events (power of two). *)

val create : ?capacity:int -> unit -> t
(** [create ()] sizes every per-thread ring at [capacity] events
    (default {!default_capacity}).  Raises [Invalid_argument] unless
    [capacity] is a positive power of two. *)

val capacity : t -> int

val emit : t -> tid:int -> ts:int -> kind:Event.kind -> uid:int -> arg:int -> unit
(** Record one event.  MUST be called only by the thread owning registry
    slot [tid] (single-writer).  [ts] is clamped to be non-decreasing
    within the ring.  O(1), allocation-free after the tid's first
    call. *)

val emitted : t -> tid:int -> int
(** Events ever emitted by [tid] (not capped by capacity). *)

val snapshot : t -> tid:int -> Event.t array
(** The still-valid suffix of [tid]'s history, oldest first: contiguous
    [seq]s, non-decreasing [ts], at most [capacity] entries.  Safe to
    call from any thread at any time. *)

val snapshot_all : t -> Event.t array list
(** {!snapshot} of every registered tid with at least one event. *)
