(** Chrome trace-event export: merge a sink's per-thread rings into the
    JSON format Perfetto (https://ui.perfetto.dev) and chrome://tracing
    load directly.

    Guard_begin/Guard_end become "B"/"E" duration slices named "guard";
    every other lifecycle event becomes a thread-scoped instant event
    carrying the object uid.  Ring wraparound can orphan one side of a
    guard pair, so the exporter repairs pairing per thread (drops
    depth-0 "E"s, closes unterminated "B"s at the thread's last
    timestamp): an emitted trace always passes {!validate}. *)

val to_json : ?pid:int -> ?process_name:string -> Sink.t -> Json.t
(** The full trace document for one sink ([pid] defaults to 1). *)

val combined : (string * Sink.t) list -> Json.t
(** One document from several sinks, each as its own named process —
    how the bench emits one file covering every traced scheme. *)

val to_file : ?pid:int -> ?process_name:string -> string -> Sink.t -> unit

val wrap : Json.t list -> Json.t
(** Wrap pre-built trace events into a document. *)

val validate : Json.t -> (unit, string) result
(** Check a parsed trace document: [traceEvents] is a list, every event
    has name/ph/ts/pid/tid, and per (pid, tid) every "E" closes a "B"
    with none left open at the end. *)
