open Atomicx

(* 63 buckets cover the full non-negative int range: bucket b holds
   values whose highest set bit is b, i.e. [2^b, 2^(b+1)); bucket 0
   holds 0 and 1. *)
let buckets = 63

type shard = {
  counts : int array;
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_max : int;
}

type t = { shards : shard option Atomic.t array (* [tid], lazy *) }

let create () = { shards = Padded.atomic_array Registry.max_threads None }

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr b
    done;
    !b
  end

(* Lower edge of a bucket — what quantile estimates report.  With
   power-of-two buckets any estimate is within 2x of the true value,
   which is the right resolution for latency orders of magnitude. *)
let bucket_floor b = if b = 0 then 0 else 1 lsl b

let shard_of t ~tid =
  match Atomic.get t.shards.(tid) with
  | Some s -> s
  | None ->
      (* only the owning tid creates (and ever writes) its shard *)
      let s =
        { counts = Array.make buckets 0; s_count = 0; s_sum = 0; s_max = 0 }
      in
      Atomic.set t.shards.(tid) (Some s);
      s

let record t ~tid v =
  let v = if v < 0 then 0 else v in
  let s = shard_of t ~tid in
  let b = bucket_of v in
  s.counts.(b) <- s.counts.(b) + 1;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum + v;
  if v > s.s_max then s.s_max <- v

type report = {
  count : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
  max : int;
  by_bucket : (int * int) list;  (** (bucket floor, count), non-empty only *)
}

(* Merge-on-read: fold the registered shards.  Same caveat as
   [Shard.get] — concurrent with writers the view is exact to within one
   in-flight update per thread. *)
let merged t =
  let counts = Array.make buckets 0 in
  let count = ref 0 and sum = ref 0 and mx = ref 0 in
  for tid = 0 to Registry.registered () - 1 do
    match Atomic.get t.shards.(tid) with
    | None -> ()
    | Some s ->
        for b = 0 to buckets - 1 do
          counts.(b) <- counts.(b) + s.counts.(b)
        done;
        count := !count + s.s_count;
        sum := !sum + s.s_sum;
        if s.s_max > !mx then mx := s.s_max
  done;
  (counts, !count, !sum, !mx)

(* Quantile estimate over the merged buckets.  A rank landing in any
   bucket below the highest occupied one reports that bucket's floor
   (within 2x below the true value, the histogram's native resolution).
   A rank landing in the {e top occupied} bucket interpolates linearly
   between the bucket floor and the exact recorded maximum instead:
   without this, a distribution saturating its top bucket pins every
   upper quantile at the bucket floor no matter how far the tail
   actually reaches (smoke runs used to report retire_free_p99_ns
   frozen at 1048576 = 2^20 for exactly this reason). *)
let quantile_of counts total mx q =
  if total = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = if rank < 1 then 1 else rank in
    let top = ref 0 in
    for b = 0 to buckets - 1 do
      if counts.(b) > 0 then top := b
    done;
    let acc = ref 0 and result = ref 0 in
    (try
       for b = 0 to buckets - 1 do
         let before = !acc in
         acc := !acc + counts.(b);
         if !acc >= rank then begin
           let floor = bucket_floor b in
           (result :=
              if b = !top && mx > floor then
                let frac =
                  float_of_int (rank - before) /. float_of_int counts.(b)
                in
                floor + int_of_float (frac *. float_of_int (mx - floor))
              else floor);
           raise_notrace Exit
         end
       done
     with Exit -> ());
    !result
  end

let report t =
  let counts, count, sum, mx = merged t in
  let by_bucket = ref [] in
  for b = buckets - 1 downto 0 do
    if counts.(b) > 0 then by_bucket := (bucket_floor b, counts.(b)) :: !by_bucket
  done;
  {
    count;
    mean = (if count = 0 then 0. else float_of_int sum /. float_of_int count);
    p50 = quantile_of counts count mx 0.50;
    p99 = quantile_of counts count mx 0.99;
    p999 = quantile_of counts count mx 0.999;
    max = mx;
    by_bucket = !by_bucket;
  }

let count t =
  let _, count, _, _ = merged t in
  count

let pp ?(unit_label = "ns") fmt t =
  let r = report t in
  if r.count = 0 then Format.fprintf fmt "(empty)"
  else begin
    Format.fprintf fmt "n=%d mean=%.0f%s p50=%d%s p99=%d%s p99.9=%d%s max=%d%s@."
      r.count r.mean unit_label r.p50 unit_label r.p99 unit_label r.p999
      unit_label r.max unit_label;
    List.iter
      (fun (floor, n) ->
        Format.fprintf fmt "  >=%-12d %6d %s@." floor n
          (String.make (min 60 (60 * n / r.count)) '#'))
      r.by_bucket
  end

let report_to_json r =
  Json.Obj
    [
      ("count", Json.Int r.count);
      ("mean_ns", Json.Float r.mean);
      ("p50_ns", Json.Int r.p50);
      ("p99_ns", Json.Int r.p99);
      ("p999_ns", Json.Int r.p999);
      ("max_ns", Json.Int r.max);
      ( "buckets",
        Json.List
          (List.map
             (fun (floor, n) ->
               Json.Obj [ ("ge", Json.Int floor); ("n", Json.Int n) ])
             r.by_bucket) );
    ]

let to_json t = report_to_json (report t)
