(** Guard-stall watchdog: flags registry slots that hold a protection
    scope without progressing.

    A thread parked (or dead without quarantine) inside a guard pins
    every object retired after its protection snapshot — the unbounded
    failure mode the paper's Table-1 bounds assume away.  The watchdog
    makes it observable: each scheme owns a table of per-tid stamp rows;
    {!enter}/{!leave} bracket the scheme's guard hot path and stamp the
    current {e logical tick} (advanced by the {!Sampler}, never a clock
    syscall) on the outermost entry.  {!check} walks every live table
    and reports rows whose stamp has aged past a threshold.

    {b Cost when idle.}  The global tick starts at 0 and only the
    sampler advances it, so until a metrics plane starts, {!enter} and
    {!leave} are one shared atomic read and a branch — no stores, no
    allocation.

    {b False positives.}  The watchdog cannot distinguish "parked
    mid-guard" from "legitimately slow": a guard spanning [max_age]
    sampler intervals is flagged even if healthy.  Validation rules out
    the structural liars: a row counts only while its slot is still
    {!Atomicx.Registry.in_use} with the {e same generation} as when it
    stamped, and the quarantine pass clears rows, so recycled slots and
    cleanly-departed domains are never blamed.  An {e abandoned} Active
    slot (death without quarantine) keeps its stamp — exactly the leak
    the watchdog exists to surface. *)

type t

val create : unit -> t
(** A per-scheme stamp table.  Registers a quarantine cleaner and joins
    the process-wide table list; both hold the result {b weakly}, so the
    scheme must keep the returned [t] in its own record (the same
    contract as [Registry.on_quarantine]). *)

val tick : unit -> int
(** The global logical tick; 0 until a sampler first {!advance}s. *)

val advance : unit -> int
(** Bump the global tick and return its new value.  Called once per
    sampler interval; tests may drive it manually. *)

val enter : t -> tid:int -> unit
(** Guard acquisition: on the outermost nesting level, stamp the current
    tick and the slot's generation.  No-op while the tick is 0. *)

val leave : t -> tid:int -> unit
(** Guard release: clears the stamp when the outermost level exits. *)

val stall_age_max : t -> int
(** Oldest currently-valid stamp age in this table, in ticks — the
    per-scheme [stall_age_max] gauge.  0 when every row is idle. *)

val check : ?max_age:int -> unit -> (int * int) list
(** [(tid, age)] for every validated row across all live tables whose
    stamp is at least [max_age] (default 3) ticks old, deduplicated by
    tid keeping the oldest age, sorted by tid.  [[]] while the tick
    is 0. *)
