(** Power-of-two-bucket latency histograms, sharded per thread.

    Recording touches only the calling thread's lazily-created shard
    (single writer, like {!Ring} and [Atomicx.Shard]), so the hot paths
    the benchmarks measure stay uncontended; {!report} merges the
    registered shards on read.  Bucket [b] holds values in
    [2^b, 2^(b+1)), so any quantile estimate is within 2x of the true
    value — the right resolution for retire→free latencies, guard
    durations and scan costs that span orders of magnitude. *)

type t

val create : unit -> t

val record : t -> tid:int -> int -> unit
(** Record a non-negative sample (negatives clamp to 0) into the
    caller's shard.  [tid] must be the caller's registry id. *)

val bucket_of : int -> int
(** Bucket index of a value (index of its highest set bit). *)

val bucket_floor : int -> int
(** Smallest value landing in bucket [b]. *)

type report = {
  count : int;
  mean : float;
  p50 : int;  (** bucket-floor estimate: within 2x below the true p50 *)
  p99 : int;
  p999 : int;
      (** p99.9, for SLO reporting.  Like every quantile here it is a
          bucket-floor estimate, except when the rank lands in the top
          occupied bucket: there the estimate interpolates toward the
          exact {!max}, so saturating the top bucket no longer pins the
          tail quantiles at the bucket floor. *)
  max : int;  (** exact *)
  by_bucket : (int * int) list;  (** (bucket floor, count), non-empty only *)
}

val report : t -> report
(** Merge the shards and summarize.  Concurrent with writers the view is
    exact to within one in-flight sample per thread (same caveat as
    [Atomicx.Shard.get]). *)

val count : t -> int
val pp : ?unit_label:string -> Format.formatter -> t -> unit
val report_to_json : report -> Json.t
val to_json : t -> Json.t
