type kind =
  | Alloc
  | Retire
  | Handover
  | Cascade
  | Free
  | Scan
  | Guard_begin
  | Guard_end
  | Orphan
  | Adopt
  | Recycle
  | Refill
  | Snapshot
  | Elide
  | Stall
  | Neutralize
  | Ctrl

let to_int = function
  | Alloc -> 0
  | Retire -> 1
  | Handover -> 2
  | Cascade -> 3
  | Free -> 4
  | Scan -> 5
  | Guard_begin -> 6
  | Guard_end -> 7
  | Orphan -> 8
  | Adopt -> 9
  | Recycle -> 10
  | Refill -> 11
  | Snapshot -> 12
  | Elide -> 13
  | Stall -> 14
  | Neutralize -> 15
  | Ctrl -> 16

let of_int = function
  | 0 -> Alloc
  | 1 -> Retire
  | 2 -> Handover
  | 3 -> Cascade
  | 4 -> Free
  | 5 -> Scan
  | 6 -> Guard_begin
  | 7 -> Guard_end
  | 8 -> Orphan
  | 9 -> Adopt
  | 10 -> Recycle
  | 11 -> Refill
  | 12 -> Snapshot
  | 13 -> Elide
  | 14 -> Stall
  | 15 -> Neutralize
  | 16 -> Ctrl
  | n -> invalid_arg (Printf.sprintf "Obs.Event.of_int: %d" n)

let name = function
  | Alloc -> "alloc"
  | Retire -> "retire"
  | Handover -> "handover"
  | Cascade -> "cascade"
  | Free -> "free"
  | Scan -> "scan"
  | Guard_begin -> "guard_begin"
  | Guard_end -> "guard_end"
  | Orphan -> "orphan"
  | Adopt -> "adopt"
  | Recycle -> "recycle"
  | Refill -> "refill"
  | Snapshot -> "snapshot"
  | Elide -> "elide"
  | Stall -> "stall"
  | Neutralize -> "neutralize"
  | Ctrl -> "ctrl"

type t = {
  seq : int;  (** per-thread emission index, contiguous within a ring *)
  ts : int;  (** nanoseconds, monotone non-decreasing per thread *)
  tid : int;
  kind : kind;
  uid : int;  (** object uid, or 0 when the event has no subject *)
  arg : int;  (** kind-specific payload (e.g. slots visited by a scan) *)
}

let pp fmt e =
  Format.fprintf fmt "[%d.%d @%dns %s uid=%d arg=%d]" e.tid e.seq e.ts
    (name e.kind) e.uid e.arg
