open Atomicx

type t = {
  stop_flag : bool Atomic.t;
  ticks_done : int Atomic.t;
  stalls_seen : int Atomic.t;
  domain : unit Domain.t;
}

(* Built-in probes over the thread registry.  The closures are stored in
   this list solely to keep them reachable (Metrics holds probes
   weakly); one registration per registry instance is enough, and the
   sampler handle keeps the list alive. *)
let registry_probes reg =
  let quarantined () =
    let n = ref 0 in
    for tid = 0 to Registry.high_water () - 1 do
      match Registry.slot_state tid with
      | `Quarantined -> incr n
      | `Free | `Active | `Staged -> ()
    done;
    !n
  in
  let probes =
    [
      ("orcgc_registry_active", Registry.active);
      ("orcgc_registry_high_water", Registry.high_water);
      ("orcgc_registry_quarantined", quarantined);
    ]
  in
  List.iter (fun (name, f) -> Metrics.probe reg name f) probes;
  probes

let pass reg sink stall_counter ~max_age ~stalls_seen ~on_stall ~tid =
  let tick = Watchdog.advance () in
  Metrics.sample reg ~tick;
  let stalls = Watchdog.check ~max_age () in
  List.iter
    (fun (stalled, age) ->
      Shard.incr stall_counter ~tid;
      Atomic.incr stalls_seen;
      Sink.on_stall sink ~tid ~stalled ~age;
      match on_stall with
      | None -> ()
      | Some f -> ( try f ~tid:stalled ~age with _ -> ()))
    stalls

let start ?(interval = 0.01) ?(registry = Metrics.default) ?(sink = Sink.null)
    ?(stall_age = 3) ?on_stall () =
  let stop_flag = Atomic.make false in
  let ticks_done = Atomic.make 0 in
  let stalls_seen = Atomic.make 0 in
  let stall_counter = Metrics.counter registry "orcgc_stalls_total" in
  let domain =
    Domain.spawn (fun () ->
        Registry.with_tid (fun tid ->
            (* keep the built-in probes alive for the domain's lifetime *)
            let keep = registry_probes registry in
            while not (Atomic.get stop_flag) do
              Unix.sleepf interval;
              pass registry sink stall_counter ~max_age:stall_age ~stalls_seen
                ~on_stall ~tid;
              Atomic.incr ticks_done
            done;
            ignore (Sys.opaque_identity keep)))
  in
  { stop_flag; ticks_done; stalls_seen; domain }

let stop t =
  Atomic.set t.stop_flag true;
  Domain.join t.domain

let ticks t = Atomic.get t.ticks_done
let stalls t = Atomic.get t.stalls_seen
