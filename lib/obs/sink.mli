(** The tracing hook the reclamation hot paths call.

    Every instrumentation point in the allocator, the manual schemes and
    the OrcGC core routes through one of these functions.  A sink is
    either {!null} — a constant constructor, so each hook is a single
    branch that returns before touching the clock or allocating: tracing
    is compiled-in but zero-cost when disabled — or active, backed by
    per-thread {!Ring}s plus four {!Hist}s (retire→free latency, guard
    duration, scan cost, orphan-adoption latency).

    All per-event functions take the caller's registry [tid] and are
    single-writer per tid, like the rings and histograms beneath them. *)

type t

val null : t
(** The no-op sink; the default everywhere. *)

val now_ns : unit -> int
(** The default clock: wall-clock nanoseconds.  Rings additionally clamp
    timestamps to be non-decreasing per thread. *)

val make : ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** An active sink.  [capacity] sizes the per-thread rings (power of
    two, default {!Ring.default_capacity}); [clock] defaults to
    {!now_ns} and is injectable for deterministic tests. *)

val is_null : t -> bool
val enabled : t -> bool

val default : t ref
(** Ambient sink consulted by [Memdom.Alloc.create] when none is passed
    explicitly — the one knob a bench or test flips to trace every
    structure it builds.  {!null} unless opted in. *)

val with_default : t -> (unit -> 'a) -> 'a
(** Run [f] with {!default} rebound, restoring on exit. *)

val now : t -> int
(** [clock ()] of an active sink, [0] for {!null}. *)

(** {2 Instrumentation points} *)

val emit : t -> tid:int -> kind:Event.kind -> uid:int -> arg:int -> unit
(** Generic escape hatch; the typed wrappers below are preferred. *)

val on_alloc : t -> tid:int -> uid:int -> unit

val on_retire : t -> tid:int -> uid:int -> int
(** Records the Retire event and returns its timestamp (0 under
    {!null}).  The caller stamps it into the object header
    ([Memdom.Hdr.retired_ns]) so the free side — possibly another
    thread, much later — can measure retire→free latency without a
    shared lookup table. *)

val on_free : t -> tid:int -> uid:int -> retired_ns:int -> unit
(** Records the Free event; when [retired_ns > 0] also records
    [now - retired_ns] into the retire→free histogram. *)

val on_recycle : t -> tid:int -> uid:int -> gen:int -> unit
(** Records the Recycle event: the pool allocator handed out a recycled
    header ([uid] is its {e new} uid, [gen] its new generation).
    Emitted {e instead of} {!on_alloc}, so [alloc] events count fresh
    headers only and [recycle / (alloc + recycle)] is the pool hit
    rate. *)

val on_refill : t -> tid:int -> count:int -> unit
(** Records the Refill event: a pool owner moved a batch of [count]
    headers from its remote-free transfer stack (or an adopted orphan
    free-list) into its local LIFO. *)

val on_handover : t -> tid:int -> uid:int -> unit
val on_cascade : t -> tid:int -> uid:int -> unit

val on_orphan : t -> tid:int -> count:int -> int
(** Records the Orphan event ([arg] = batch size) for a departing
    thread publishing its pending retire list, and returns the
    publication timestamp (0 under {!null}).  The orphan pool keeps the
    timestamp with the batch so {!on_adopt} can measure adoption
    latency. *)

val on_adopt : t -> tid:int -> count:int -> published_ns:int -> unit
(** Records the Adopt event for a surviving thread adopting an orphan
    batch; when [published_ns > 0] also records [now - published_ns]
    into the adoption-latency histogram. *)

val on_snapshot : t -> tid:int -> entries:int -> unit
(** Records the Snapshot event: a batching scan captured the live
    protection rows into a scan-set ([arg] = entries captured). *)

val on_elide : t -> tid:int -> unit
(** Records the Elide event: a protection publish was skipped because
    the slot already held the target.  Only the pointer-based schemes
    emit this (HP/PTP/OrcGC); for era schemes elision is the common
    case and per-event tracing would swamp the rings. *)

val on_stall : t -> tid:int -> stalled:int -> age:int -> unit
(** Records the Stall event: the {!Watchdog} flagged registry slot
    [stalled] as holding a guard for [age] watchdog ticks without
    progress.  [tid] is the watchdog/sampler thread doing the
    flagging, not the stalled thread. *)

val on_neutralize : t -> tid:int -> stalled:int -> age:int -> unit
(** Records the Neutralize event: registry slot [stalled], validated as
    stalled for [age] watchdog ticks, had its generation bumped so its
    published protections no longer pin memory.  [tid] is the
    neutralizing (reclaimer or sampler) thread. *)

val on_ctrl : t -> tid:int -> decision:int -> value:int -> unit
(** Records a Ctrl event: the adaptive controller took decision
    [decision] (a {!Reclaim.Controller} decision code — tighten, widen,
    escalate, relax, ...) installing [value] (the new knob value or
    scheme mode).  [tid] is the controller's thread. *)

val scan_begin : t -> int
(** Timestamp token to pass to {!scan_end} (0 under {!null}). *)

val scan_end : t -> tid:int -> slots:int -> began:int -> unit
(** Records the Scan event ([arg] = hazard slots visited) and the scan
    duration into the scan histogram. *)

val guard_begin : t -> tid:int -> unit

val guard_end : t -> tid:int -> unit
(** Guards may nest; the duration histogram records the outermost span,
    the ring records every begin/end pair (event [arg] = depth). *)

(** {2 Introspection} *)

val ring : t -> Ring.t option
val retire_free_hist : t -> Hist.t option
val guard_hist : t -> Hist.t option
val scan_hist : t -> Hist.t option
val adopt_hist : t -> Hist.t option

val events : t -> Event.t array list
(** Snapshot of every thread's ring ([[]] for {!null}). *)

val hists : t -> (string * Hist.t) list
(** [("retire_free", h); ("guard", h); ("scan", h); ("adopt", h)] for an
    active sink, [[]] for {!null}. *)
