open Atomicx

(* One ring per thread, single writer (the owning tid), snapshot
   readers.  The payload lives in four plain int arrays indexed by
   [seq land mask]; [head] is the number of events ever emitted and is
   the only cross-thread synchronization: the writer stores the slot
   *before* publishing [head = seq + 1] (Atomic.set is a release on
   OCaml's memory model), so a reader that copies slots and then
   re-reads [head] knows exactly which copied entries the writer could
   have been overwriting — see [snapshot]. *)
type ring = {
  mask : int;
  ts : int array;
  kind : int array;
  uid : int array;
  arg : int array;
  head : int Atomic.t; (* events ever emitted by this thread *)
  mutable last_ts : int; (* owner-only: enforces per-ring monotonicity *)
}

type t = {
  capacity : int;
  rings : ring option Atomic.t array; (* [tid]; created lazily by owner *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Obs.Ring.create: capacity must be a positive power of two";
  { capacity; rings = Padded.atomic_array Registry.max_threads None }

let capacity t = t.capacity

let mk_ring capacity =
  {
    mask = capacity - 1;
    ts = Array.make capacity 0;
    kind = Array.make capacity 0;
    uid = Array.make capacity 0;
    arg = Array.make capacity 0;
    head = Atomic.make 0;
    last_ts = 0;
  }

(* Only the owning tid creates its ring, so the slot has a single
   writer and a plain [Atomic.set] publishes it. *)
let ring_of t ~tid =
  match Atomic.get t.rings.(tid) with
  | Some r -> r
  | None ->
      let r = mk_ring t.capacity in
      Atomic.set t.rings.(tid) (Some r);
      r

let emit t ~tid ~ts ~kind ~uid ~arg =
  let r = ring_of t ~tid in
  let ts = if ts > r.last_ts then ts else r.last_ts in
  r.last_ts <- ts;
  let seq = Atomic.get r.head in
  let i = seq land r.mask in
  r.ts.(i) <- ts;
  r.kind.(i) <- Event.to_int kind;
  r.uid.(i) <- uid;
  r.arg.(i) <- arg;
  Atomic.set r.head (seq + 1)

let emitted t ~tid =
  match Atomic.get t.rings.(tid) with
  | None -> 0
  | Some r -> Atomic.get r.head

(* Copy the ring's most recent events, then drop every copied entry the
   writer could have touched during the copy: after re-reading [head] as
   [h2], any seq < h2 - capacity aliases a slot the writer has already
   republished, and seq = h2 - capacity aliases the slot it may be
   writing right now (slot stores precede the head bump) — both go.
   What survives is a gap-free, per-thread-monotone suffix. *)
let snapshot_ring capacity r ~tid =
  let h1 = Atomic.get r.head in
  let lo = max 0 (h1 - capacity) in
  let count = h1 - lo in
  if count = 0 then [||]
  else begin
    let ts = Array.make count 0
    and kind = Array.make count 0
    and uid = Array.make count 0
    and arg = Array.make count 0 in
    for k = 0 to count - 1 do
      let i = (lo + k) land r.mask in
      ts.(k) <- r.ts.(i);
      kind.(k) <- r.kind.(i);
      uid.(k) <- r.uid.(i);
      arg.(k) <- r.arg.(i)
    done;
    let h2 = Atomic.get r.head in
    let safe_lo = max lo (h2 - capacity + 1) in
    Array.init (h1 - safe_lo) (fun k ->
        let j = safe_lo - lo + k in
        {
          Event.seq = safe_lo + k;
          ts = ts.(j);
          tid;
          kind = Event.of_int kind.(j);
          uid = uid.(j);
          arg = arg.(j);
        })
  end

let snapshot t ~tid =
  match Atomic.get t.rings.(tid) with
  | None -> [||]
  | Some r -> snapshot_ring t.capacity r ~tid

let snapshot_all t =
  let out = ref [] in
  for tid = Registry.registered () - 1 downto 0 do
    let evs = snapshot t ~tid in
    if Array.length evs > 0 then out := evs :: !out
  done;
  !out
