(** Background sampler domain: the heartbeat of the metrics plane.

    [start ()] spawns one domain that, every [interval] seconds,
    advances the {!Watchdog} tick, runs a {!Metrics.sample} pass over
    the registry (snapshotting every scheme's stats probes, the
    allocator economy and the thread-registry population into their
    time series), and runs {!Watchdog.check} — each validated stall
    increments the [orcgc_stalls_total] counter and emits a [Stall]
    event into [sink].

    The sampler owns a registry slot ([Registry.with_tid]) like any
    worker, so its own counter bumps ride the ordinary sharded paths.
    Sampling reads are exact to within one in-flight delta per thread
    (the [Shard.get] contract) — the plane observes the hot paths, it
    never synchronizes with them. *)

type t

val start :
  ?interval:float ->
  ?registry:Metrics.t ->
  ?sink:Sink.t ->
  ?stall_age:int ->
  ?on_stall:(tid:int -> age:int -> unit) ->
  unit ->
  t
(** Spawn the sampler domain.  [interval] defaults to 0.01 s,
    [registry] to {!Metrics.default}, [sink] to {!Sink.null},
    [stall_age] (ticks before a guard counts as stalled) to 3.
    [on_stall] is called from the sampler domain once per validated
    stall, after the counter bump and sink event — the reaction hook
    the background reclamation pipeline uses to trigger
    neutralization (exceptions from it are swallowed: a buggy
    reaction must not kill the metrics heartbeat). *)

val stop : t -> unit
(** Signal and join the domain; returns once the final pass finished.
    The global watchdog tick keeps its value — guard paths stay in
    stamping mode for the rest of the process. *)

val ticks : t -> int
(** Completed sampler passes. *)

val stalls : t -> int
(** Total validated stall reports emitted so far. *)
