(* Chrome trace-event JSON (the format Perfetto and chrome://tracing
   load): a top-level object with a "traceEvents" list whose entries
   carry name/ph/ts(+dur)/pid/tid.  Guard_begin/Guard_end become "B"/"E"
   duration events; everything else becomes an instant event ("i",
   thread-scoped) with the object uid in args.  Timestamps are
   microseconds (floats), the unit the format mandates. *)

let us_of_ns ns = float_of_int ns /. 1e3

let instant_name kind = Event.name kind

let event_json ~pid (e : Event.t) =
  let base =
    [
      ("pid", Json.Int pid);
      ("tid", Json.Int e.tid);
      ("ts", Json.Float (us_of_ns e.ts));
    ]
  in
  match e.kind with
  | Event.Guard_begin ->
      Json.Obj (("name", Json.Str "guard") :: ("ph", Json.Str "B") :: base)
  | Event.Guard_end ->
      Json.Obj (("name", Json.Str "guard") :: ("ph", Json.Str "E") :: base)
  | kind ->
      Json.Obj
        (("name", Json.Str (instant_name kind))
        :: ("ph", Json.Str "i")
        :: ("s", Json.Str "t")
        :: base
        @ [
            ( "args",
              Json.Obj [ ("uid", Json.Int e.uid); ("arg", Json.Int e.arg) ] );
          ])

let meta_json ~pid ~name ~value field =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ (field, Json.Str value) ]);
    ]

(* One process per sink.  Ring wraparound can orphan guard events — a
   Guard_begin overwritten while its Guard_end survives, or a trace cut
   mid-guard — so the exporter repairs pairing per thread: an "E" at
   depth 0 is dropped, and unterminated "B"s get synthetic closing "E"s
   at that thread's last timestamp.  The emitted file therefore always
   satisfies [validate]. *)
let events_of_sink ~pid ?process_name sink =
  let out = ref [] in
  (match process_name with
  | Some name ->
      out := [ meta_json ~pid ~name:"process_name" ~value:name "name" ]
  | None -> ());
  List.iter
    (fun evs ->
      let depth = ref 0 in
      let last_ts = ref 0 in
      Array.iter
        (fun (e : Event.t) ->
          last_ts := e.ts;
          match e.kind with
          | Event.Guard_begin ->
              incr depth;
              out := event_json ~pid e :: !out
          | Event.Guard_end ->
              if !depth > 0 then begin
                decr depth;
                out := event_json ~pid e :: !out
              end
          | _ -> out := event_json ~pid e :: !out)
        evs;
      (match evs with
      | [||] -> ()
      | evs ->
          let tid = evs.(0).Event.tid in
          for _ = 1 to !depth do
            out :=
              event_json ~pid
                {
                  Event.seq = 0;
                  ts = !last_ts;
                  tid;
                  kind = Event.Guard_end;
                  uid = 0;
                  arg = 0;
                }
              :: !out
          done))
    (Sink.events sink);
  List.rev !out

let wrap events =
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ns") ]

let to_json ?(pid = 1) ?process_name sink =
  wrap (events_of_sink ~pid ?process_name sink)

let combined sinks =
  wrap
    (List.concat
       (List.mapi
          (fun i (name, sink) ->
            events_of_sink ~pid:(i + 1) ~process_name:name sink)
          sinks))

let to_file ?pid ?process_name path sink =
  Json.to_file path (to_json ?pid ?process_name sink)

(* {2 Validation} — structural well-formedness plus guard pairing, used
   by tools/check_trace and the test suite. *)

let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> Error "traceEvents is not a list"
    | None -> Error "missing traceEvents"
  in
  let depths : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let check_event i ev =
    let field name =
      match Json.member name ev with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: missing %s" i name)
    in
    let* name = field "name" in
    let* ph = field "ph" in
    let* pid = field "pid" in
    let* tid = field "tid" in
    let* ph =
      match ph with
      | Json.Str s -> Ok s
      | _ -> Error (Printf.sprintf "event %d: ph is not a string" i)
    in
    (* metadata events carry no timestamp in the Chrome format *)
    let* _ts = if ph = "M" then Ok Json.Null else field "ts" in
    let* key =
      match (pid, tid) with
      | Json.Int p, Json.Int t -> Ok (p, t)
      | _ -> Error (Printf.sprintf "event %d: pid/tid not ints" i)
    in
    match ph with
    | "B" ->
        Hashtbl.replace depths key
          (1 + Option.value ~default:0 (Hashtbl.find_opt depths key));
        Ok ()
    | "E" ->
        let d = Option.value ~default:0 (Hashtbl.find_opt depths key) in
        if d <= 0 then
          Error
            (Printf.sprintf
               "event %d: guard_end without matching guard_begin (pid=%d \
                tid=%d)"
               i (fst key) (snd key))
        else begin
          Hashtbl.replace depths key (d - 1);
          Ok ()
        end
    | "i" | "I" | "M" | "X" -> Ok ()
    | _ ->
        Error
          (Printf.sprintf "event %d (%s): unsupported ph %S" i
             (Json.to_string name) ph)
  in
  let rec all i = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check_event i ev in
        all (i + 1) rest
  in
  let* () = all 0 events in
  Hashtbl.fold
    (fun (pid, tid) d acc ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          if d = 0 then Ok ()
          else
            Error
              (Printf.sprintf
                 "%d unterminated guard_begin(s) (pid=%d tid=%d)" d pid tid))
    depths (Ok ())
