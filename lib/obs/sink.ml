open Atomicx

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type active = {
  ring : Ring.t;
  retire_free : Hist.t;
  guard : Hist.t;
  scan : Hist.t;
  adopt : Hist.t; (* orphan publish -> adoption latency *)
  guard_begin_ns : int array; (* [tid]; owner-written nesting-outermost ts *)
  guard_depth : int array; (* [tid]; owner-written *)
  clock : unit -> int;
}

(* The null sink is a constant constructor: every instrumentation hook
   starts with a one-branch match and returns before touching the clock
   or allocating — compiled-in tracing at zero cost when disabled. *)
type t = Null | Active of active

let null = Null

let make ?capacity ?(clock = now_ns) () =
  Active
    {
      ring = Ring.create ?capacity ();
      retire_free = Hist.create ();
      guard = Hist.create ();
      scan = Hist.create ();
      adopt = Hist.create ();
      guard_begin_ns = Array.make Registry.max_threads 0;
      guard_depth = Array.make Registry.max_threads 0;
      clock;
    }

let is_null = function Null -> true | Active _ -> false
let enabled = function Null -> false | Active _ -> true

(* Ambient default, consulted by [Memdom.Alloc.create] (and therefore by
   every data structure that builds its own allocator) when no sink is
   passed explicitly.  Null unless a bench/test opts in. *)
let default = ref Null

let with_default sink f =
  let saved = !default in
  default := sink;
  Fun.protect ~finally:(fun () -> default := saved) f

let now = function Null -> 0 | Active a -> a.clock ()

let emit t ~tid ~kind ~uid ~arg =
  match t with
  | Null -> ()
  | Active a -> Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind ~uid ~arg

let on_alloc t ~tid ~uid =
  match t with
  | Null -> ()
  | Active a -> Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Alloc ~uid ~arg:0

(* Returns the retire timestamp (0 under the null sink); the scheme
   stamps it into the object header so that the free side — which may
   run on another thread long after — can measure retire→free latency
   without any shared lookup table. *)
let on_retire t ~tid ~uid =
  match t with
  | Null -> 0
  | Active a ->
      let ts = a.clock () in
      Ring.emit a.ring ~tid ~ts ~kind:Event.Retire ~uid ~arg:0;
      ts

let on_free t ~tid ~uid ~retired_ns =
  match t with
  | Null -> ()
  | Active a ->
      let ts = a.clock () in
      Ring.emit a.ring ~tid ~ts ~kind:Event.Free ~uid ~arg:0;
      if retired_ns > 0 then Hist.record a.retire_free ~tid (ts - retired_ns)

let on_recycle t ~tid ~uid ~gen =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Recycle ~uid ~arg:gen

let on_refill t ~tid ~count =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Refill ~uid:0
        ~arg:count

let on_handover t ~tid ~uid =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Handover ~uid ~arg:0

let on_cascade t ~tid ~uid =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Cascade ~uid ~arg:0

(* Returns the publication timestamp (0 under the null sink); the
   orphan pool keeps it with the batch so the adopting thread — another
   thread, arbitrarily later — can record publish→adopt latency. *)
let on_orphan t ~tid ~count =
  match t with
  | Null -> 0
  | Active a ->
      let ts = a.clock () in
      Ring.emit a.ring ~tid ~ts ~kind:Event.Orphan ~uid:0 ~arg:count;
      ts

let on_adopt t ~tid ~count ~published_ns =
  match t with
  | Null -> ()
  | Active a ->
      let ts = a.clock () in
      Ring.emit a.ring ~tid ~ts ~kind:Event.Adopt ~uid:0 ~arg:count;
      if published_ns > 0 then Hist.record a.adopt ~tid (ts - published_ns)

let on_snapshot t ~tid ~entries =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Snapshot ~uid:0
        ~arg:entries

let on_elide t ~tid =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Elide ~uid:0 ~arg:0

let on_stall t ~tid ~stalled ~age =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Stall ~uid:stalled
        ~arg:age

let on_neutralize t ~tid ~stalled ~age =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Neutralize
        ~uid:stalled ~arg:age

let on_ctrl t ~tid ~decision ~value =
  match t with
  | Null -> ()
  | Active a ->
      Ring.emit a.ring ~tid ~ts:(a.clock ()) ~kind:Event.Ctrl ~uid:decision
        ~arg:value

let scan_begin t = match t with Null -> 0 | Active a -> a.clock ()

let scan_end t ~tid ~slots ~began =
  match t with
  | Null -> ()
  | Active a ->
      let ts = a.clock () in
      Ring.emit a.ring ~tid ~ts ~kind:Event.Scan ~uid:0 ~arg:slots;
      Hist.record a.scan ~tid (ts - began)

(* Guards nest (orc guards via [with_guard], manual schemes via
   begin_op/end_op around helper calls); the duration histogram records
   the outermost span, the ring records every begin/end pair. *)
let guard_begin t ~tid =
  match t with
  | Null -> ()
  | Active a ->
      let ts = a.clock () in
      let d = a.guard_depth.(tid) in
      a.guard_depth.(tid) <- d + 1;
      if d = 0 then a.guard_begin_ns.(tid) <- ts;
      Ring.emit a.ring ~tid ~ts ~kind:Event.Guard_begin ~uid:0 ~arg:d

let guard_end t ~tid =
  match t with
  | Null -> ()
  | Active a ->
      let ts = a.clock () in
      let d = a.guard_depth.(tid) - 1 in
      let d = if d < 0 then 0 else d in
      a.guard_depth.(tid) <- d;
      if d = 0 && a.guard_begin_ns.(tid) > 0 then begin
        Hist.record a.guard ~tid (ts - a.guard_begin_ns.(tid));
        a.guard_begin_ns.(tid) <- 0
      end;
      Ring.emit a.ring ~tid ~ts ~kind:Event.Guard_end ~uid:0 ~arg:d

let ring = function Null -> None | Active a -> Some a.ring
let retire_free_hist = function Null -> None | Active a -> Some a.retire_free
let guard_hist = function Null -> None | Active a -> Some a.guard
let scan_hist = function Null -> None | Active a -> Some a.scan
let adopt_hist = function Null -> None | Active a -> Some a.adopt

let events t =
  match t with Null -> [] | Active a -> Ring.snapshot_all a.ring

let hists t =
  match t with
  | Null -> []
  | Active a ->
      [
        ("retire_free", a.retire_free);
        ("guard", a.guard);
        ("scan", a.scan);
        ("adopt", a.adopt);
      ]
