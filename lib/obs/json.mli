(** Minimal JSON construction, serialization and parsing — enough for
    machine-readable results ([BENCH_orc.json]), Chrome-trace export and
    trace validation without pulling a JSON dependency into the tree.
    [Harness.Json] re-exports this and adds benchmark-table helpers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/inf serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_file : string -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON document.  Raises {!Parse_error} with an offset on
    malformed input.  Non-ASCII [\u] escapes decode to ['?'] (the traces
    this validates are ASCII). *)

val of_file : string -> t

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)
