type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* JSON has no nan/inf; map them to null *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  write b j;
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* {2 Parsing} — a recursive-descent reader, enough to re-read what
   [to_string] writes (and any standard JSON) for trace validation. *)

exception Parse_error of string

let parse_fail pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_fail !pos (Printf.sprintf "expected %c, got %c" c c')
    | None -> parse_fail !pos (Printf.sprintf "expected %c, got end" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then parse_fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then parse_fail !pos "truncated \\u"
                   else begin
                     let hex = String.sub s (!pos + 1) 4 in
                     let code =
                       try int_of_string ("0x" ^ hex)
                       with _ -> parse_fail !pos ("bad \\u" ^ hex)
                     in
                     (* non-ASCII code points round-trip as '?'; the
                        traces we validate are ASCII *)
                     Buffer.add_char b
                       (if code < 0x80 then Char.chr code else '?');
                     pos := !pos + 4
                   end
               | c -> parse_fail !pos (Printf.sprintf "bad escape \\%c" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char b c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> parse_fail start ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail !pos "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
