open Atomicx

(* Global logical clock, advanced by the sampler domain.  Zero means the
   metrics plane never started: guard hot paths bail after one shared
   atomic read, so the watchdog is compiled-in but free when unused
   (same shape as the null {!Sink}). *)
let clock = Atomic.make 0

let tick () = Atomic.get clock
let advance () = 1 + Atomic.fetch_and_add clock 1

(* Per-tid rows live in one plain int array, one cache line per tid:
   stamp at [+0] (tick at outermost enter, 0 = idle), generation at
   [+1], nesting depth at [+2].  The stores are plain, not atomic —
   OCaml's [Atomic.set] is a sequentially-consistent (fenced) store, and
   three of those per guard roughly doubled the cost of a read-only op.
   Racy cross-domain reads are fine for a watchdog: a genuinely stalled
   guard keeps its stamp in place for many ticks, and {!check} only
   flags rows older than [max_age] ticks, so diagnostic-grade eventual
   visibility (helped along by the sampler's own atomic clock bump each
   pass) is all the detection needs. *)
let stride = 8

type t = {
  rows : int array;
  mutable cleaner : int -> unit;  (* keep-alive for the quarantine hook *)
}

(* Every live watchdog, held weakly so a collected scheme's table drops
   out of {!check} — the same idiom as [Registry.on_quarantine] (the
   scheme's record keeps its [t] reachable). *)
let tables : t Weak.t list ref = ref []
let tables_lock = Mutex.create ()

let live_tables () =
  Mutex.lock tables_lock;
  let live = List.filter_map (fun w -> Weak.get w 0) !tables in
  Mutex.unlock tables_lock;
  live

let create () =
  let t =
    { rows = Array.make (Registry.max_threads * stride) 0; cleaner = ignore }
  in
  (* A domain dying inside a guard (chaos kill points) must not read as
     a stall forever: the quarantine pass clears its row.  Abandoned
     slots (no quarantine pass) stay stamped — that is the stall the
     watchdog exists to flag. *)
  let cleaner tid =
    let base = tid * stride in
    t.rows.(base + 2) <- 0;
    t.rows.(base) <- 0
  in
  t.cleaner <- cleaner;
  Registry.on_quarantine cleaner;
  let w = Weak.create 1 in
  Weak.set w 0 (Some t);
  Mutex.lock tables_lock;
  tables := w :: List.filter (fun w -> Weak.check w 0) !tables;
  Mutex.unlock tables_lock;
  t

let enter t ~tid =
  let now = Atomic.get clock in
  if now > 0 then begin
    let base = tid * stride in
    let d = t.rows.(base + 2) in
    t.rows.(base + 2) <- d + 1;
    if d = 0 then begin
      t.rows.(base + 1) <- Registry.generation tid;
      t.rows.(base) <- now
    end
  end

let leave t ~tid =
  if Atomic.get clock > 0 then begin
    let base = tid * stride in
    (* clamp: the plane may have started between this guard's enter and
       leave, in which case enter never counted *)
    let d = t.rows.(base + 2) - 1 in
    let d = if d < 0 then 0 else d in
    t.rows.(base + 2) <- d;
    if d = 0 then t.rows.(base) <- 0
  end

(* A stamped row is a live stall only if the slot still belongs to the
   thread that stamped it: the slot must be in use and its generation
   unchanged (a recycled tid carries a bumped generation, so a new
   owner's row is never blamed for its predecessor's guard). *)
let row_age t now tid =
  let base = tid * stride in
  let stamp = t.rows.(base) in
  if
    stamp > 0 && stamp <= now
    && Registry.in_use tid
    && Registry.generation tid = t.rows.(base + 1)
  then now - stamp
  else -1

let stall_age_max t =
  let now = Atomic.get clock in
  let mx = ref 0 in
  for tid = 0 to Registry.registered () - 1 do
    let age = row_age t now tid in
    if age > !mx then mx := age
  done;
  !mx

let check ?(max_age = 3) () =
  let now = Atomic.get clock in
  if now = 0 then []
  else begin
    (* dedup by tid across tables, keeping the oldest age *)
    let worst = Hashtbl.create 8 in
    List.iter
      (fun t ->
        for tid = 0 to Registry.registered () - 1 do
          let age = row_age t now tid in
          if age >= max_age then
            match Hashtbl.find_opt worst tid with
            | Some a when a >= age -> ()
            | _ -> Hashtbl.replace worst tid age
        done)
      (live_tables ());
    Hashtbl.fold (fun tid age acc -> (tid, age) :: acc) worst []
    |> List.sort compare
  end
