(** Live gauge/counter registry: the name-indexed side of the metrics
    plane.

    A registry holds named {e sources} — sharded counters, set-style
    gauges and probe closures — each carrying Prometheus-style labels
    (e.g. [("scheme", "orc")]).  The background {!Sampler} calls
    {!sample} periodically; each pass reads every live source,
    aggregates sources sharing a (name, labels) identity by summing
    them, and appends the aggregate to a ring-buffered time series with
    a monotone high-water mark.  {!to_prometheus} and {!to_json} expose
    the current series.

    {b Hot-path cost.}  Updating a handle never touches the registry:
    counters are [Atomicx.Shard]s (uncontended per-thread cells), gauge
    {!set} is one atomic store plus a CAS-max, and probes cost nothing
    until sampled.  None of these allocate — the acceptance gate for the
    guard/retire paths that carry them.

    {b Lifetime.}  Probe closures are held {b weakly}, the same contract
    as [Atomicx.Registry.on_quarantine]: the caller keeps the closure
    reachable (schemes store it in their own record), and a collected
    probe silently drops out of the aggregate.  Counters and gauges are
    held strongly by the registry that created them. *)

type t

val create : ?history:int -> unit -> t
(** A fresh registry; [history] (default 240) bounds the per-series
    sample ring. *)

val default : t
(** The process-wide registry the schemes and the allocator register
    into when none is passed explicitly. *)

(** {2 Sources} *)

val counter : t -> ?labels:(string * string) list -> string -> Atomicx.Shard.t
(** Find-or-create the sharded counter with this identity; call sites
    asking for the same (name, labels) share one shard.  Update with
    [Shard.add]/[Shard.incr] directly. *)

type gauge

val gauge : t -> ?labels:(string * string) list -> string -> gauge
(** Find-or-create a gauge (deduplicated like {!counter}). *)

val set : gauge -> int -> unit
(** Store the gauge's current value and fold it into its set-time
    high-water mark.  Allocation-free. *)

val gauge_get : gauge -> int

val probe :
  t ->
  ?labels:(string * string) list ->
  ?counter:bool ->
  string ->
  (unit -> int) ->
  unit
(** Register a probe read at every {!sample}.  Never deduplicated — each
    registration is one source and sampling sums the live sources with
    the same identity.  Held weakly: {b the caller must keep [f]
    reachable} for as long as it wants the probe sampled.  A probe that
    raises contributes 0.  [counter] (default false) only affects the
    exported Prometheus TYPE — set it when [f] reads a monotone
    counter. *)

(** {2 Sampling and exposition} *)

val sample : t -> tick:int -> unit
(** One sampler pass: drop collected probes, read every source, sum by
    (name, labels), append [(tick, sum)] to each series ring and raise
    its high-water mark.  Called by the {!Sampler} domain; safe from any
    thread but intended to have a single caller. *)

type series = {
  name : string;
  labels : (string * string) list;
  is_counter : bool;
  last : int;  (** aggregate at the most recent sample *)
  hwm : int;  (** monotone max over all samples (and gauge set-time peaks) *)
  points : (int * int) array;  (** (tick, value), oldest first *)
}

val series : t -> series list
(** Snapshot of every aggregated series, in first-sampled order. *)

val clear : t -> unit
(** Drop all sources and series (test isolation). *)

val to_prometheus : t -> string
(** Prometheus text exposition of every series' latest value, plus a
    [<name>_hwm] companion gauge per series. *)

val series_to_json : series -> Json.t
val to_json : t -> Json.t
