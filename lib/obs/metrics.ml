open Atomicx

(* A registry entry is one *source* of a series: a sharded counter, a
   set-style gauge, or a weakly-held probe closure.  Several entries may
   share a (name, labels) identity — every scheme instance registers its
   own probes — and {!sample} aggregates them by summing the live
   sources, so the exported series describe the process, not one
   instance. *)

type gauge = { g_v : int Atomic.t; g_hwm : int Atomic.t }

type source =
  | Counter of Shard.t
  | Gauge of gauge
  | Probe of (unit -> int) Weak.t

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_source : source;
  e_counter : bool;  (* exported TYPE: counter vs gauge *)
}

(* Aggregated series, written only by {!sample} (single sampler thread);
   concurrent readers get a diagnostics-grade view. *)
type serie = {
  s_name : string;
  s_labels : (string * string) list;
  s_counter : bool;  (* any contributing source is a Counter *)
  ticks : int array;  (* ring, capacity = history *)
  values : int array;
  mutable s_n : int;  (* total samples ever taken *)
  mutable s_last : int;
  mutable s_hwm : int;  (* monotone max of sampled aggregates *)
}

type t = {
  lock : Mutex.t;
  history : int;
  mutable entries : entry list;
  mutable storage : serie list;  (* find-or-create at sample time *)
}

let create ?(history = 240) () =
  let history = max 1 history in
  { lock = Mutex.create (); history; entries = []; storage = [] }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let same_identity name labels e =
  String.equal e.e_name name && e.e_labels = labels

(* Counters and gauges deduplicate: asking twice for the same identity
   returns the same handle, so independent call sites accumulate into
   one series.  Probes never deduplicate — each registration is a
   distinct source and sampling sums them. *)
let counter t ?(labels = []) name =
  locked t (fun () ->
      let existing =
        List.find_opt
          (fun e ->
            same_identity name labels e
            && match e.e_source with Counter _ -> true | _ -> false)
          t.entries
      in
      match existing with
      | Some { e_source = Counter s; _ } -> s
      | _ ->
          let s = Shard.create () in
          t.entries <-
            {
              e_name = name;
              e_labels = labels;
              e_source = Counter s;
              e_counter = true;
            }
            :: t.entries;
          s)

let gauge t ?(labels = []) name =
  locked t (fun () ->
      let existing =
        List.find_opt
          (fun e ->
            same_identity name labels e
            && match e.e_source with Gauge _ -> true | _ -> false)
          t.entries
      in
      match existing with
      | Some { e_source = Gauge g; _ } -> g
      | _ ->
          let g = { g_v = Atomic.make 0; g_hwm = Atomic.make 0 } in
          t.entries <-
            {
              e_name = name;
              e_labels = labels;
              e_source = Gauge g;
              e_counter = false;
            }
            :: t.entries;
          g)

(* Gauge updates are the hot path the acceptance gate measures: one
   store plus a CAS-max, no allocation (the payloads are immediate ints
   and [bump_hwm] is top-level, so no closure is built per call). *)
let rec bump_hwm hwm v =
  let cur = Atomic.get hwm in
  if v > cur && not (Atomic.compare_and_set hwm cur v) then bump_hwm hwm v

let set g v =
  Atomic.set g.g_v v;
  bump_hwm g.g_hwm v

let gauge_get g = Atomic.get g.g_v

let probe_alive e =
  match e.e_source with
  | Probe w -> Weak.check w 0
  | Counter _ | Gauge _ -> true

let probe t ?(labels = []) ?(counter = false) name f =
  let w = Weak.create 1 in
  Weak.set w 0 (Some f);
  locked t (fun () ->
      (* registration also prunes collected probes, so a process that
         builds many short-lived schemes without ever sampling does not
         accumulate dead entries *)
      t.entries <-
        { e_name = name; e_labels = labels; e_source = Probe w;
          e_counter = counter }
        :: List.filter probe_alive t.entries)

let read_source = function
  | Counter s -> Shard.get s
  | Gauge g -> Atomic.get g.g_v
  | Probe w -> (
      match Weak.get w 0 with
      | None -> 0
      | Some f -> ( try f () with _ -> 0))

let find_serie t name labels =
  List.find_opt
    (fun s -> String.equal s.s_name name && s.s_labels = labels)
    t.storage

let sample t ~tick =
  locked t (fun () ->
      (* drop sources whose probe closures were collected *)
      t.entries <- List.filter probe_alive t.entries;
      (* aggregate by identity: sum every live source *)
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun e ->
          let key = (e.e_name, e.e_labels) in
          let v = read_source e.e_source in
          let is_counter = e.e_counter in
          (* fold set-time gauge high-water marks in as well, so spikes
             between two samples still surface *)
          let set_hwm =
            match e.e_source with Gauge g -> Atomic.get g.g_hwm | _ -> 0
          in
          match Hashtbl.find_opt groups key with
          | None ->
              Hashtbl.add groups key (ref v, ref is_counter, ref set_hwm);
              order := key :: !order
          | Some (sum, ctr, hwm) ->
              sum := !sum + v;
              ctr := !ctr || is_counter;
              hwm := !hwm + set_hwm)
        t.entries;
      List.iter
        (fun (name, labels) ->
          let sum, ctr, set_hwm = Hashtbl.find groups (name, labels) in
          let s =
            match find_serie t name labels with
            | Some s -> s
            | None ->
                let s =
                  {
                    s_name = name;
                    s_labels = labels;
                    s_counter = !ctr;
                    ticks = Array.make t.history 0;
                    values = Array.make t.history 0;
                    s_n = 0;
                    s_last = 0;
                    s_hwm = 0;
                  }
                in
                t.storage <- t.storage @ [ s ];
                s
          in
          let slot = s.s_n mod t.history in
          s.ticks.(slot) <- tick;
          s.values.(slot) <- !sum;
          s.s_n <- s.s_n + 1;
          s.s_last <- !sum;
          if !sum > s.s_hwm then s.s_hwm <- !sum;
          if !set_hwm > s.s_hwm then s.s_hwm <- !set_hwm)
        (List.rev !order))

type series = {
  name : string;
  labels : (string * string) list;
  is_counter : bool;
  last : int;
  hwm : int;
  points : (int * int) array;  (* (tick, value), chronological *)
}

let series_of t s =
  let kept = min s.s_n t.history in
  let points =
    Array.init kept (fun i ->
        (* oldest retained sample first *)
        let slot = (s.s_n - kept + i) mod t.history in
        (s.ticks.(slot), s.values.(slot)))
  in
  {
    name = s.s_name;
    labels = s.s_labels;
    is_counter = s.s_counter;
    last = s.s_last;
    hwm = s.s_hwm;
    points;
  }

let series t = locked t (fun () -> List.map (series_of t) t.storage)

let clear t =
  locked t (fun () ->
      t.entries <- [];
      t.storage <- [])

(* {2 Exposition} *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_labels labels =
  match labels with
  | [] -> ""
  | kvs ->
      let b = Buffer.create 32 in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize k);
          Buffer.add_string b "=\"";
          String.iter
            (fun c ->
              match c with
              | '"' -> Buffer.add_string b "\\\""
              | '\\' -> Buffer.add_string b "\\\\"
              | '\n' -> Buffer.add_string b "\\n"
              | c -> Buffer.add_char b c)
            v;
          Buffer.add_char b '"')
        kvs;
      Buffer.add_char b '}';
      Buffer.contents b

let to_prometheus t =
  let ss = series t in
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let name = sanitize s.name in
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.add typed name ();
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" name
             (if s.is_counter then "counter" else "gauge"))
      end;
      Buffer.add_string b
        (Printf.sprintf "%s%s %d\n" name (prom_labels s.labels) s.last))
    ss;
  (* high-water marks as companion gauges *)
  List.iter
    (fun s ->
      let name = sanitize s.name ^ "_hwm" in
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.add typed name ();
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name)
      end;
      Buffer.add_string b
        (Printf.sprintf "%s%s %d\n" name (prom_labels s.labels) s.hwm))
    ss;
  Buffer.contents b

let series_to_json s =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels));
      ("kind", Json.Str (if s.is_counter then "counter" else "gauge"));
      ("last", Json.Int s.last);
      ("hwm", Json.Int s.hwm);
      ( "points",
        Json.List
          (Array.to_list
             (Array.map
                (fun (tick, v) -> Json.List [ Json.Int tick; Json.Int v ])
                s.points)) );
    ]

let to_json t = Json.List (List.map series_to_json (series t))
