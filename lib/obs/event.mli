(** Typed reclamation lifecycle events.

    One constructor per moment the paper's algorithms reason about: an
    object is allocated, retired (enters the unreclaimed population the
    Table-1 bounds constrain), possibly handed over or cascaded, and
    finally freed; protection scopes open and close; retiring threads
    scan the published hazards.  Events are recorded into per-thread
    {!Ring}s by a {!Sink} and merged into Chrome-trace JSON by
    {!Trace}. *)

type kind =
  | Alloc  (** header handed out by the allocator *)
  | Retire  (** object entered the retired/unreclaimed state *)
  | Handover  (** retiring thread passed the object to a protector *)
  | Cascade  (** destructor-triggered recursive retire *)
  | Free  (** memory returned to the allocator *)
  | Scan  (** hazard scan; [arg] = slots visited *)
  | Guard_begin  (** protection scope opened *)
  | Guard_end  (** protection scope closed *)
  | Orphan
      (** departing thread published its retire list; [arg] = batch size *)
  | Adopt  (** surviving thread adopted an orphan batch; [arg] = size *)
  | Recycle
      (** pool allocator handed out a recycled header instead of building
          a fresh one ([Alloc] is {e not} also emitted); [arg] = the
          header's new generation *)
  | Refill
      (** pool owner drained a batch from its remote-free transfer stack
          (or adopted an orphaned free-list) into the local LIFO;
          [arg] = batch size *)
  | Snapshot
      (** batching scan built a scan-set snapshot of the live protection
          rows ([Reclaim.Scan_set]); [arg] = entries captured *)
  | Elide
      (** a protection publish was skipped because the slot already held
          the target (read-side fast path) *)
  | Stall
      (** the {!Watchdog} flagged a non-progressing guard: [uid] = the
          stalled registry slot, [arg] = its age in watchdog ticks *)
  | Neutralize
      (** a validated stalled guard was expired by a registry generation
          bump: [uid] = the neutralized slot, [arg] = its age in
          watchdog ticks at neutralization *)
  | Ctrl
      (** the adaptive controller took a decision: [uid] = decision code
          ({!Sink.on_ctrl}'s [decision]), [arg] = the new knob value or
          mode the decision installed *)

val to_int : kind -> int
(** Dense encoding in [0, 16] — what the rings store. *)

val of_int : int -> kind
(** Inverse of {!to_int}; raises [Invalid_argument] out of range. *)

val name : kind -> string

(** A decoded event, as returned by ring snapshots. *)
type t = {
  seq : int;  (** per-thread emission index, contiguous within a ring *)
  ts : int;  (** nanoseconds, monotone non-decreasing per thread *)
  tid : int;
  kind : kind;
  uid : int;  (** object uid, or 0 when the event has no subject *)
  arg : int;  (** kind-specific payload (e.g. slots visited by a scan) *)
}

val pp : Format.formatter -> t -> unit
