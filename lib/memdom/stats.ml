type snapshot = {
  label : string;
  allocated : int;
  freed : int;
  live : int;
  era : int;
  at : float;
}

(* The only wall-clock read in the module lives at this edge so that
   deterministic tests can inject a fake clock and exercise the
   interval math of [diff]. *)
let take ?(clock = Unix.gettimeofday) alloc =
  {
    label = Alloc.label alloc;
    allocated = Alloc.allocated alloc;
    freed = Alloc.freed alloc;
    live = Alloc.live alloc;
    era = Alloc.era alloc;
    at = clock ();
  }

let diff earlier later =
  {
    label = later.label;
    allocated = later.allocated - earlier.allocated;
    freed = later.freed - earlier.freed;
    live = later.live - earlier.live;
    era = later.era;
    at = later.at -. earlier.at;
  }

let pp fmt s =
  Format.fprintf fmt "%s: allocated=%d freed=%d live=%d era=%d" s.label
    s.allocated s.freed s.live s.era

let series_peak snaps =
  List.fold_left (fun acc s -> max acc s.live) 0 snaps
