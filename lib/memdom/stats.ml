type snapshot = {
  label : string;
  allocated : int;
  freed : int;
  live : int;
  era : int;
  pool_hits : int;
  pool_misses : int;
  remote_frees : int;
  refills : int;
  at : float;
}

(* The only wall-clock read in the module lives at this edge so that
   deterministic tests can inject a fake clock and exercise the
   interval math of [diff]. *)
let take ?(clock = Unix.gettimeofday) alloc =
  {
    label = Alloc.label alloc;
    allocated = Alloc.allocated alloc;
    freed = Alloc.freed alloc;
    live = Alloc.live alloc;
    era = Alloc.era alloc;
    pool_hits = Alloc.pool_hits alloc;
    pool_misses = Alloc.pool_misses alloc;
    remote_frees = Alloc.remote_frees alloc;
    refills = Alloc.refills alloc;
    at = clock ();
  }

let diff earlier later =
  {
    label = later.label;
    allocated = later.allocated - earlier.allocated;
    freed = later.freed - earlier.freed;
    live = later.live - earlier.live;
    era = later.era;
    pool_hits = later.pool_hits - earlier.pool_hits;
    pool_misses = later.pool_misses - earlier.pool_misses;
    remote_frees = later.remote_frees - earlier.remote_frees;
    refills = later.refills - earlier.refills;
    at = later.at -. earlier.at;
  }

let hit_rate s =
  let n = s.pool_hits + s.pool_misses in
  if n = 0 then 0. else float_of_int s.pool_hits /. float_of_int n

let pp fmt s =
  Format.fprintf fmt "%s: allocated=%d freed=%d live=%d era=%d" s.label
    s.allocated s.freed s.live s.era;
  if s.pool_hits + s.pool_misses > 0 then
    Format.fprintf fmt
      " pool: hits=%d misses=%d hit-rate=%.1f%% remote-frees=%d refills=%d"
      s.pool_hits s.pool_misses
      (100. *. hit_rate s)
      s.remote_frees s.refills

let series_peak snaps =
  List.fold_left (fun acc s -> max acc s.live) 0 snaps
