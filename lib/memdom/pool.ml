(* Type-stable header pool: per-registry-slot LIFO free-lists with a
   lock-free transfer stack for remote frees and orphan hand-off on
   domain death.  See the mli for the model. *)

open Atomicx

(* [local] is owner-only (the slot's current tid): plain mutable list,
   no atomics on the hit path.  [transfer] is the remote-free Treiber
   stack: any thread CAS-pushes, only the owner pops. *)
type slot = {
  mutable local : Hdr.t list;
  mutable local_size : int;
  transfer : Hdr.t list Atomic.t;
}

type t = {
  slots : slot array;
  orphans : Hdr.t Orphan.t;
  sink : Obs.Sink.t;
  hits : Shard.t;
  misses : Shard.t;
  remote : Shard.t;
  refills : Shard.t;
  _cleaner : int -> unit;
      (* strong reference: the registry holds quarantine cleaners
         weakly, so the registration lives exactly as long as the
         pool *)
}

let drain_batch = 64

(* Slots hold the owner's hottest mutable word; space them out the same
   way [Padded] spaces atomics so two owners' free-lists don't share a
   cache line. *)
let spacer_words = 16

let mk_slots () =
  Array.init Registry.max_threads (fun _ ->
      let s = { local = []; local_size = 0; transfer = Atomic.make [] } in
      ignore (Sys.opaque_identity (Array.make spacer_words 0));
      s)

(* The allocating owner, recovered from the uid encoding
   [local_ticket * max_threads + tid] that [Alloc] stamps. *)
let owner_of h = h.Hdr.uid mod Registry.max_threads

(* CAS-prepend with truncated exponential backoff under contention: the
   backoff state is only allocated after the first failure, keeping the
   uncontended remote free allocation-free on this path. *)
let push_transfer stack h =
  let cur = Atomic.get stack in
  if not (Atomic.compare_and_set stack cur (h :: cur)) then begin
    let b = Backoff.create () in
    let rec retry () =
      Backoff.once b;
      let cur = Atomic.get stack in
      if not (Atomic.compare_and_set stack cur (h :: cur)) then retry ()
    in
    retry ()
  end

(* Pop up to [drain_batch] headers in one CAS: take the current head
   list, split after K cells, and swing the head to the remainder.
   Only the owner drains, so the CAS fails only against concurrent
   pushers (then retry); physical equality makes the CAS ABA-free —
   cons cells are never reused. *)
let take_batch stack =
  let rec go b =
    match Atomic.get stack with
    | [] -> ([], 0)
    | cur ->
        let rec split n acc = function
          | rest when n = 0 -> (acc, n, rest)
          | [] -> (acc, n, [])
          | h :: tl -> split (n - 1) (h :: acc) tl
        in
        let taken, left, rest = split drain_batch [] cur in
        if Atomic.compare_and_set stack cur rest then
          (taken, drain_batch - left)
        else begin
          (* lost to a pusher burst: back off before rebuilding the
             split, which is O(drain_batch) wasted work per retry *)
          let b =
            match b with Some b -> b | None -> Backoff.create ()
          in
          Backoff.once b;
          go (Some b)
        end
  in
  go None

let release t ~tid h =
  let o = owner_of h in
  if o = tid then begin
    let s = t.slots.(tid) in
    s.local <- h :: s.local;
    s.local_size <- s.local_size + 1
  end
  else begin
    Shard.incr t.remote ~tid;
    push_transfer t.slots.(o).transfer h
  end

let acquire t ~tid =
  let s = t.slots.(tid) in
  let pop () =
    match s.local with
    | [] -> None
    | h :: rest ->
        s.local <- rest;
        s.local_size <- s.local_size - 1;
        Shard.incr t.hits ~tid;
        Some h
  in
  match pop () with
  | Some _ as r -> r
  | None -> (
      (* dry: amortized slow path — drain remote frees, then orphans *)
      let refill batch n =
        if n > 0 then begin
          s.local <- List.rev_append batch s.local;
          s.local_size <- s.local_size + n;
          Shard.incr t.refills ~tid;
          Obs.Sink.on_refill t.sink ~tid ~count:n
        end
      in
      let batch, n = take_batch s.transfer in
      refill batch n;
      if n = 0 then begin
        let adopted = Orphan.adopt t.orphans t.sink ~tid in
        refill adopted (List.length adopted)
      end;
      match pop () with
      | Some _ as r -> r
      | None ->
          Shard.incr t.misses ~tid;
          None)

let create sink =
  let slots = mk_slots () in
  let orphans = Orphan.create () in
  (* Quarantine cleaner: the dead tid's free-list and transfer stack
     are one batch for the orphan pool.  The slot is Quarantined while
     this runs (owner gone, not yet re-issuable), so [local] has no
     concurrent writer; a remote free racing the transfer-stack
     exchange can land a header after it — recovered by the slot's
     next owner's first miss, never lost. *)
  let cleaner dead =
    let s = slots.(dead) in
    let local = s.local in
    s.local <- [];
    s.local_size <- 0;
    let remote = Atomic.exchange s.transfer [] in
    Orphan.publish orphans sink ~tid:dead (List.rev_append local remote)
  in
  Registry.on_quarantine cleaner;
  {
    slots;
    orphans;
    sink;
    hits = Shard.create ();
    misses = Shard.create ();
    remote = Shard.create ();
    refills = Shard.create ();
    _cleaner = cleaner;
  }

let hits t = Shard.get t.hits
let misses t = Shard.get t.misses
let remote_frees t = Shard.get t.remote
let refills t = Shard.get t.refills
let orphaned t = Orphan.pending t.orphans
let local_size t ~tid = t.slots.(tid).local_size

let transfer_size t ~tid = List.length (Atomic.get t.slots.(tid).transfer)
