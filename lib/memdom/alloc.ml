type mode = System | Pool

(* Allocation and free totals are sharded per registry slot: every
   [hdr]/[free] touches only the calling thread's padded cell, so the
   allocator hot path carries no shared cache line (the era clock is
   global but only written by explicit [bump_era] calls).  The uid is
   derived from the same per-thread cell — [local * max_threads + tid]
   — which keeps it unique without a global counter: cells are
   monotonic and survive tid reuse across domains. *)
type t = {
  mode : mode;
  name : string;
  sink : Obs.Sink.t;
  n_alloc : Atomicx.Shard.t;
  n_freed : Atomicx.Shard.t;
  era_clock : int Atomic.t;
}

let create ?(mode = System) ?sink name =
  let sink = match sink with Some s -> s | None -> !Obs.Sink.default in
  {
    mode;
    name;
    sink;
    n_alloc = Atomicx.Shard.create ();
    n_freed = Atomicx.Shard.create ();
    era_clock = Atomic.make 1;
  }

let mode t = t.mode
let label t = t.name
let sink t = t.sink

let hdr t ?label () =
  let tid = Atomicx.Registry.tid () in
  let local = Atomicx.Shard.fetch_incr t.n_alloc ~tid in
  let uid = (local * Atomicx.Registry.max_threads) + tid in
  let label = Option.value label ~default:t.name in
  Obs.Sink.on_alloc t.sink ~tid ~uid;
  Hdr.make ~uid ~label ~strict:(t.mode = System) ~birth_era:(Atomic.get t.era_clock)

let free t h =
  Hdr.mark_freed h;
  let tid = Atomicx.Registry.tid () in
  Atomicx.Shard.incr t.n_freed ~tid;
  Obs.Sink.on_free t.sink ~tid ~uid:h.Hdr.uid ~retired_ns:h.Hdr.retired_ns

let era t = Atomic.get t.era_clock
let bump_era t = 1 + Atomic.fetch_and_add t.era_clock 1
let allocated t = Atomicx.Shard.get t.n_alloc
let freed t = Atomicx.Shard.get t.n_freed
(* Sequence allocated-first: both shards only grow, so reading [freed]
   second can only shrink the difference — a concurrent sampler never
   reports more live objects than actually existed at the first read.
   (`allocated t - freed t` evaluates right to left, and a sampler
   descheduled between the reads overcounts by everything allocated in
   the gap.) *)
let live t =
  let a = allocated t in
  let f = freed t in
  a - f

let pp_stats fmt t =
  Format.fprintf fmt "%s: allocated=%d freed=%d live=%d" t.name (allocated t)
    (freed t) (live t)
