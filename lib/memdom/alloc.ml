type mode = System | Pool

(* Allocation and free totals are sharded per registry slot: every
   [hdr]/[free] touches only the calling thread's padded cell, so the
   allocator hot path carries no shared cache line (the era clock is
   global but only written by explicit [bump_era] calls).  The uid is
   derived from the same per-thread cell — [local * max_threads + tid]
   — which keeps it unique without a global counter: cells are
   monotonic and survive tid reuse across domains.  Recycled headers
   draw a fresh ticket too, so uids never repeat even in Pool mode.

   [pool] is the type-stable free-list machinery behind Pool mode
   (Some iff mode = Pool): freed headers go back to per-slot LIFOs and
   come out again through [Hdr.recycle] instead of being rebuilt.
   System mode never touches it — strict headers, fresh records,
   poisoning on free — byte-for-byte the pre-pool behaviour. *)
type t = {
  mode : mode;
  name : string;
  sink : Obs.Sink.t;
  n_alloc : Atomicx.Shard.t;
  n_freed : Atomicx.Shard.t;
  era_clock : int Atomic.t;
  pool : Pool.t option;
  (* strong reference keeping the weakly-registered metrics probes
     alive exactly as long as this allocator *)
  mutable metrics : (string * (unit -> int)) list;
}

let create ?(mode = System) ?sink name =
  let sink = match sink with Some s -> s | None -> !Obs.Sink.default in
  let t =
    {
      mode;
      name;
      sink;
      n_alloc = Atomicx.Shard.create ();
      n_freed = Atomicx.Shard.create ();
      era_clock = Atomic.make 1;
      pool = (match mode with System -> None | Pool -> Some (Pool.create sink));
      metrics = [];
    }
  in
  (* Allocator-economy probes, labelled by allocator name; instances
     sharing a name aggregate by summation at sample time (the
     [Obs.Metrics.probe] contract).  Pool economics are only registered
     when a pool exists, so System-mode series do not export constant
     zeros. *)
  let labels = [ ("alloc", name) ] in
  let counters =
    [
      ("orcgc_alloc_total", fun () -> Atomicx.Shard.get t.n_alloc);
      ("orcgc_freed_total", fun () -> Atomicx.Shard.get t.n_freed);
    ]
    @
    match t.pool with
    | None -> []
    | Some p ->
        [
          ("orcgc_pool_hits_total", fun () -> Pool.hits p);
          ("orcgc_pool_misses_total", fun () -> Pool.misses p);
          ("orcgc_pool_remote_frees_total", fun () -> Pool.remote_frees p);
          ("orcgc_pool_refills_total", fun () -> Pool.refills p);
        ]
  in
  let gauges =
    [
      ( "orcgc_live",
        fun () ->
          let a = Atomicx.Shard.get t.n_alloc in
          let f = Atomicx.Shard.get t.n_freed in
          a - f );
    ]
  in
  List.iter
    (fun (n, f) ->
      Obs.Metrics.probe Obs.Metrics.default ~labels ~counter:true n f)
    counters;
  List.iter
    (fun (n, f) -> Obs.Metrics.probe Obs.Metrics.default ~labels n f)
    gauges;
  t.metrics <- counters @ gauges;
  t

let mode t = t.mode
let label t = t.name
let sink t = t.sink

let next_uid t ~tid =
  let local = Atomicx.Shard.fetch_incr t.n_alloc ~tid in
  (local * Atomicx.Registry.max_threads) + tid

let fresh t ~tid ?label () =
  let uid = next_uid t ~tid in
  let label = Option.value label ~default:t.name in
  Obs.Sink.on_alloc t.sink ~tid ~uid;
  Hdr.make ~uid ~label ~strict:(t.mode = System)
    ~birth_era:(Atomic.get t.era_clock)

let hdr t ?label () =
  let tid = Atomicx.Registry.tid () in
  match t.pool with
  | None -> fresh t ~tid ?label ()
  | Some p -> (
      match Pool.acquire p ~tid with
      | None -> fresh t ~tid ?label ()
      | Some h ->
          (* recycled hit: restamp the same header — one CAS plus field
             stores, no minor-heap allocation.  The first life's label
             is kept (per-call [?label] is a diagnostic nicety; the
             pool trades it for the alloc-free hit path). *)
          let uid = next_uid t ~tid in
          Hdr.recycle h ~uid ~birth_era:(Atomic.get t.era_clock);
          Obs.Sink.on_recycle t.sink ~tid ~uid ~gen:(Hdr.generation h);
          h)

let free t h =
  Hdr.mark_freed h;
  (* Freed ⇒ no scheme protects the object, so its tagged-link arena
     slot (if it ever got one) can be recycled for a future node. *)
  Hdr.release_slot h;
  let tid = Atomicx.Registry.tid () in
  Atomicx.Shard.incr t.n_freed ~tid;
  Obs.Sink.on_free t.sink ~tid ~uid:h.Hdr.uid ~retired_ns:h.Hdr.retired_ns;
  match t.pool with None -> () | Some p -> Pool.release p ~tid h

let era t = Atomic.get t.era_clock
let bump_era t = 1 + Atomic.fetch_and_add t.era_clock 1
let allocated t = Atomicx.Shard.get t.n_alloc
let freed t = Atomicx.Shard.get t.n_freed
(* Sequence allocated-first: both shards only grow, so reading [freed]
   second can only shrink the difference — a concurrent sampler never
   reports more live objects than actually existed at the first read.
   (`allocated t - freed t` evaluates right to left, and a sampler
   descheduled between the reads overcounts by everything allocated in
   the gap.) *)
let live t =
  let a = allocated t in
  let f = freed t in
  a - f

let pool_hits t = match t.pool with None -> 0 | Some p -> Pool.hits p
let pool_misses t = match t.pool with None -> 0 | Some p -> Pool.misses p

let remote_frees t =
  match t.pool with None -> 0 | Some p -> Pool.remote_frees p

let refills t = match t.pool with None -> 0 | Some p -> Pool.refills p

let hit_rate t =
  let h = pool_hits t and m = pool_misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let pp_stats fmt t =
  Format.fprintf fmt "%s: allocated=%d freed=%d live=%d" t.name (allocated t)
    (freed t) (live t);
  match t.pool with
  | None -> ()
  | Some p ->
      Format.fprintf fmt
        " pool: hits=%d misses=%d hit-rate=%.1f%% remote-frees=%d refills=%d"
        (Pool.hits p) (Pool.misses p)
        (100. *. hit_rate t)
        (Pool.remote_frees p) (Pool.refills p)
