(** Lock-free orphan pool for dead threads' unfinished bookkeeping.

    When a thread's registry slot is quarantined (domain exit, or
    [Atomicx.Registry.force_release] after abrupt death), whoever holds
    per-thread state for the departing tid publishes it here as one
    batch; survivors adopt the whole pool at a natural point in their
    own hot path, so a dead thread's backlog is absorbed within O(1)
    operations instead of leaking forever.  Two layers publish through
    it: every reclamation scheme orphans the dead tid's un-scanned
    retire list (adopted at the start of the next scan), and the pool
    allocator ({!Pool}) orphans the dead tid's recycled-header
    free-list (adopted on the next free-list miss).  The element type
    is per-publisher (EBR keeps its retire epochs, the pool keeps bare
    headers, everyone else bare nodes).

    Publish is a CAS-prepend, adopt a single exchange: a batch is
    adopted exactly once, by exactly one survivor.  Both emit sink
    events ([Orphan]/[Adopt]); adoption also records publish→adopt
    latency into the sink's adopt histogram. *)

type 'a t

val create : unit -> 'a t

val publish : 'a t -> Obs.Sink.t -> tid:int -> 'a list -> unit
(** Publish a departing thread's pending items as one batch ([tid] is
    the departing thread, for event attribution).  No-op on [[]]. *)

val adopt : 'a t -> Obs.Sink.t -> tid:int -> 'a list
(** Take every pending batch ([tid] is the adopter), concatenated.
    Returns [[]] without writing when the pool is empty. *)

val pending : 'a t -> int
(** Items currently awaiting adoption (diagnostics). *)
