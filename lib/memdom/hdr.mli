(** Object header: the explicit lifecycle every tracked object carries.

    This is the heart of the substitution that makes the paper
    reproducible in a garbage-collected language (see DESIGN.md §1).  A
    C++ node that is deleted too early causes undefined behaviour; here,
    every tracked object embeds a header whose lifecycle is

    {v Live --retire--> Retired --free--> Freed v}

    and data structures route field accesses through {!check_access}.  In
    [strict] mode (the "system allocator" of the paper, §2) touching a
    [Freed] object raises {!Use_after_free} — the analogue of the
    segfault.  In non-strict mode (type-stable custom allocator) the
    access is tolerated, and the [generation] counter lets tests detect
    ABA-style reuse.

    The header also hosts the per-object words the various schemes need,
    all of them word-packed (DESIGN.md, "Word-packed representation"):

    - [state]: lifecycle in the low 2 bits, generation above.  With
      {!packed} on (default) the Live↔Retired transitions are single
      [Atomic.fetch_and_add]s — no read-before-CAS, no loop, no
      allocation; with it off, the historical CAS loops.
    - [orc]: the OrcGC [_orc] word (22-bit count, BRETIRED, sequence,
      Algorithm 3) — always one word, manipulated by the orc schemes
      with mask arithmetic.
    - [eras]: birth and death hazard-era stamps packed 31+31 into one
      atomic word, so a reader gets a torn-free pair from one load and
      retire-side stamping never allocates.  Read through
      {!birth_era}/{!death_era}, written through {!set_death_era}.
    - [slot]/[slot_release]: the object's tagged-link arena slot (see
      {!Atomicx.Link.arena}), released exactly once by the allocator
      when the object is freed. *)

exception Use_after_free of string
exception Double_free of string
exception Double_retire of string

type lifecycle = Live | Retired | Freed

val packed : bool ref
(** Ablation switch (default [true]) for the fetch-and-add lifecycle
    fast paths; [false] restores the historical CAS-loop transitions
    (same observable behaviour, one extra atomic read per transition). *)

type t = {
  mutable uid : int;
      (** unique allocation id, for diagnostics.  Mutable only so
          {!recycle} can restamp a pooled header; uids never repeat —
          every hand-out (fresh or recycled) draws a new one. *)
  label : string;  (** type/owner label, for diagnostics *)
  strict : bool;  (** raise on access-after-free? *)
  state : int Atomic.t;  (** lifecycle in low bits, generation above *)
  orc : int Atomic.t;  (** OrcGC word: 22-bit count, BRETIRED, sequence *)
  eras : int Atomic.t;
      (** hazard eras, packed: birth in bits 0–30, death in bits 31–61
          (all-ones death = not retired).  Use the accessors. *)
  mutable retired_ns : int;
      (** tracing: timestamp of the last retire ([Obs.Sink.on_retire]),
          0 when never retired or traced with a null sink.  Written by
          the retiring thread, read by the freeing thread — the free
          side measures retire→free latency from it without any shared
          lookup table. *)
  mutable slot : int;
      (** tagged-link arena slot, -1 when unregistered.  Written by the
          registering thread while it still privately owns the node. *)
  mutable slot_release : int -> unit;
      (** how to hand [slot] back to its arena; installed at
          registration, reset by {!release_slot}. *)
}

val lifecycle : t -> lifecycle
val generation : t -> int

val birth_era : t -> int
val death_era : t -> int
(** [max_int] when the object has not been retired. *)

val set_death_era : t -> int -> unit
(** Stamp the death era (retiring thread only — the retire transition
    has a single owner, so the packed word needs no RMW loop). *)

val check_access : t -> unit
(** Validate that dereferencing this object is safe.  Raises
    {!Use_after_free} when the object is [Freed] and the header is
    strict.  Every field accessor of every data structure in this library
    calls it, so scheme bugs surface as exceptions in stress tests rather
    than silent corruption. *)

val mark_retired : t -> unit
(** [Live -> Retired].  Raises {!Double_retire} if already retired and
    {!Use_after_free} if already freed — retiring twice is a scheme bug
    the paper's algorithms must never exhibit.  One fetch-and-add when
    {!packed}. *)

val unretire : t -> unit
(** [Retired -> Live]: OrcGC can pull an object back out of the retired
    state when a new hard link appears (§4.1, [clearBitRetired]).  One
    fetch-and-add when {!packed}. *)

val mark_freed : t -> unit
(** [_ -> Freed].  Raises {!Double_free} on a second call. *)

val is_freed : t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Construction} — used by {!Alloc}; data structures should allocate
    through an allocator, not build headers directly. *)

val make : uid:int -> label:string -> strict:bool -> birth_era:int -> t

val recycle : t -> uid:int -> birth_era:int -> unit
(** [Freed -> Live], the type-stable pool allocator's reuse path: resets
    the header to a freshly allocated state — new [uid], new
    [birth_era], death era/[retired_ns] cleared, the [_orc] word back
    to {!orc_initial} — while {b bumping the generation}, which is
    carried across lives so it is strictly monotone over the header's
    whole pooled lifetime (the ABA/use-after-free batteries key on
    this).  The [label] of the first life is kept.  Raises
    {!Double_free} when the header is not [Freed]: recycling something
    still live (or racing another recycler for the same header) is a
    pool bug, reported with the same exception a double [free] gets. *)

val release_slot : t -> unit
(** Hand the arena slot (if any) back to its table, exactly once.
    Called by [Alloc.free] after the Freed transition; idempotent. *)

val orc_initial : int
(** Initial value of the [_orc] word ([ORC_ZERO], Algorithm 3 line 8). *)
