(** Object header: the explicit lifecycle every tracked object carries.

    This is the heart of the substitution that makes the paper
    reproducible in a garbage-collected language (see DESIGN.md §1).  A
    C++ node that is deleted too early causes undefined behaviour; here,
    every tracked object embeds a header whose lifecycle is

    {v Live --retire--> Retired --free--> Freed v}

    and data structures route field accesses through {!check_access}.  In
    [strict] mode (the "system allocator" of the paper, §2) touching a
    [Freed] object raises {!Use_after_free} — the analogue of the
    segfault.  In non-strict mode (type-stable custom allocator) the
    access is tolerated, and the [generation] counter lets tests detect
    ABA-style reuse.

    The header also hosts the per-object words the various schemes need:
    the OrcGC [_orc] word (count + BRETIRED + sequence, Algorithm 3) and
    the birth/death eras of hazard-eras-style schemes. *)

exception Use_after_free of string
exception Double_free of string
exception Double_retire of string

type lifecycle = Live | Retired | Freed

type t = {
  mutable uid : int;
      (** unique allocation id, for diagnostics.  Mutable only so
          {!recycle} can restamp a pooled header; uids never repeat —
          every hand-out (fresh or recycled) draws a new one. *)
  label : string;  (** type/owner label, for diagnostics *)
  strict : bool;  (** raise on access-after-free? *)
  state : int Atomic.t;  (** lifecycle in low bits, generation above *)
  orc : int Atomic.t;  (** OrcGC word: 22-bit count, BRETIRED, sequence *)
  mutable birth_era : int;  (** hazard-eras: era at allocation *)
  mutable death_era : int;  (** hazard-eras: era at retire *)
  mutable retired_ns : int;
      (** tracing: timestamp of the last retire ([Obs.Sink.on_retire]),
          0 when never retired or traced with a null sink.  Written by
          the retiring thread, read by the freeing thread — the free
          side measures retire→free latency from it without any shared
          lookup table. *)
}

val lifecycle : t -> lifecycle
val generation : t -> int

val check_access : t -> unit
(** Validate that dereferencing this object is safe.  Raises
    {!Use_after_free} when the object is [Freed] and the header is
    strict.  Every field accessor of every data structure in this library
    calls it, so scheme bugs surface as exceptions in stress tests rather
    than silent corruption. *)

val mark_retired : t -> unit
(** [Live -> Retired].  Raises {!Double_retire} if already retired and
    {!Use_after_free} if already freed — retiring twice is a scheme bug
    the paper's algorithms must never exhibit. *)

val unretire : t -> unit
(** [Retired -> Live]: OrcGC can pull an object back out of the retired
    state when a new hard link appears (§4.1, [clearBitRetired]). *)

val mark_freed : t -> unit
(** [_ -> Freed].  Raises {!Double_free} on a second call. *)

val is_freed : t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Construction} — used by {!Alloc}; data structures should allocate
    through an allocator, not build headers directly. *)

val make : uid:int -> label:string -> strict:bool -> birth_era:int -> t

val recycle : t -> uid:int -> birth_era:int -> unit
(** [Freed -> Live], the type-stable pool allocator's reuse path: resets
    the header to a freshly allocated state — new [uid], new
    [birth_era], [death_era]/[retired_ns] cleared, the [_orc] word back
    to {!orc_initial} — while {b bumping the generation}, which is
    carried across lives so it is strictly monotone over the header's
    whole pooled lifetime (the ABA/use-after-free batteries key on
    this).  The [label] of the first life is kept.  Raises
    {!Double_free} when the header is not [Freed]: recycling something
    still live (or racing another recycler for the same header) is a
    pool bug, reported with the same exception a double [free] gets. *)

val orc_initial : int
(** Initial value of the [_orc] word ([ORC_ZERO], Algorithm 3 line 8). *)
