(** Allocator contexts: who hands out headers and accounts for them.

    The paper distinguishes schemes that work with the *system allocator*
    (freed memory may leave the process; touching it segfaults) from
    those requiring *custom, type-stable allocators* (freed memory stays
    readable).  An [Alloc.t] models one such allocator:

    - {!mode} [System]: headers are strict — access after free raises
      [Hdr.Use_after_free] (the poisoning regime); every {!hdr} builds a
      fresh header.
    - {!mode} [Pool]: a real type-stable pool ({!Pool}).  [free]d
      headers go back to per-thread LIFO free-lists (remote frees via a
      lock-free per-slot transfer stack, drained in batches) and are
      handed out again by [Hdr.recycle] — same physical header, {b new
      uid}, new birth era, and a {b strictly monotone generation} across
      lives, so post-free reads are tolerated (type-stable memory) while
      ABA-style reuse stays observable to tests.  A dying domain's
      free-list is published to an orphan pool and adopted by survivors.

    It also keeps the counters the evaluation needs: objects allocated,
    freed, and currently live ("live" = allocated and not yet freed,
    which includes retired-but-unreclaimed objects — the quantity the
    paper's memory bounds are about).  In Pool mode, {!allocated} counts
    every hand-out (fresh or recycled), so the live/leak arithmetic is
    mode-independent. *)

type mode = System | Pool

type t

val create : ?mode:mode -> ?sink:Obs.Sink.t -> string -> t
(** [create label] makes an allocator named [label] (defaults to
    [System], the stricter checking).  [sink] receives Alloc/Free
    lifecycle events and the retire→free latency samples (measured
    against [Hdr.retired_ns], which the retiring scheme stamps); it
    defaults to the ambient [!Obs.Sink.default] — the null sink unless a
    bench or test opts in — and is what schemes created over this
    allocator inherit.  Pool mode additionally emits [Recycle]/[Refill]
    events and the orphan-handoff pair. *)

val mode : t -> mode
val label : t -> string

val sink : t -> Obs.Sink.t
(** The sink this allocator reports to (schemes default to it). *)

val hdr : t -> ?label:string -> unit -> Hdr.t
(** Allocate a header.  [label] defaults to the allocator's own.  The
    header's [birth_era] snapshots {!era}.  In Pool mode this is the
    free-list hit path: a recycled header keeps its first life's
    [label] but gets a fresh uid and a bumped generation
    ([Hdr.recycle]); only a miss builds a new record. *)

val free : t -> Hdr.t -> unit
(** Return an object to the allocator: marks it [Freed] (raising
    [Hdr.Double_free] on a second free) and updates the counters.  In
    Pool mode the header then re-enters the free-lists: pushed on the
    caller's own LIFO when the caller allocated it, CAS-pushed onto the
    allocating slot's transfer stack otherwise (a {e remote free}). *)

val era : t -> int
(** Current era of this allocator's era clock (used by hazard-eras). *)

val bump_era : t -> int
(** Atomically advance the era clock, returning the new era. *)

val allocated : t -> int
val freed : t -> int

val live : t -> int
(** [allocated - freed]: objects not yet returned.  After quiescing and
    draining a correct scheme this should equal the data structure's
    reachable size — the leak check used throughout the test suite. *)

(** {2 Pool counters} — all 0 for a [System] allocator. *)

val pool_hits : t -> int
(** Hand-outs served from a free-list (recycled headers). *)

val pool_misses : t -> int
(** Hand-outs that had to build a fresh header. *)

val remote_frees : t -> int
(** Frees routed through a transfer stack (freeing tid ≠ allocating
    tid). *)

val refills : t -> int
(** Batched drains into a local list (transfer-stack drains + orphan
    adoptions that yielded headers). *)

val hit_rate : t -> float
(** [hits / (hits + misses)] in [0, 1]; [0.] when the pool was never
    asked (including every System allocator). *)

val pp_stats : Format.formatter -> t -> unit
(** [label: allocated/freed/live], plus hits/misses/hit-rate/
    remote-frees/refills for Pool mode. *)
