(** Allocator contexts: who hands out headers and accounts for them.

    The paper distinguishes schemes that work with the *system allocator*
    (freed memory may leave the process; touching it segfaults) from
    those requiring *custom, type-stable allocators* (freed memory stays
    readable).  An [Alloc.t] models one such allocator:

    - {!mode} [System]: headers are strict — access after free raises
      [Hdr.Use_after_free].
    - {!mode} [Pool]: headers tolerate post-free reads, like type-stable
      pool memory; the generation counter still exposes reuse to tests.

    It also keeps the counters the evaluation needs: objects allocated,
    freed, and currently live ("live" = allocated and not yet freed,
    which includes retired-but-unreclaimed objects — the quantity the
    paper's memory bounds are about). *)

type mode = System | Pool

type t

val create : ?mode:mode -> ?sink:Obs.Sink.t -> string -> t
(** [create label] makes an allocator named [label] (defaults to
    [System], the stricter checking).  [sink] receives Alloc/Free
    lifecycle events and the retire→free latency samples (measured
    against [Hdr.retired_ns], which the retiring scheme stamps); it
    defaults to the ambient [!Obs.Sink.default] — the null sink unless a
    bench or test opts in — and is what schemes created over this
    allocator inherit. *)

val mode : t -> mode
val label : t -> string

val sink : t -> Obs.Sink.t
(** The sink this allocator reports to (schemes default to it). *)

val hdr : t -> ?label:string -> unit -> Hdr.t
(** Allocate a fresh header.  [label] defaults to the allocator's own.
    The header's [birth_era] snapshots {!era}. *)

val free : t -> Hdr.t -> unit
(** Return an object to the allocator: marks it [Freed] (raising
    [Hdr.Double_free] on a second free) and updates the counters. *)

val era : t -> int
(** Current era of this allocator's era clock (used by hazard-eras). *)

val bump_era : t -> int
(** Atomically advance the era clock, returning the new era. *)

val allocated : t -> int
val freed : t -> int

val live : t -> int
(** [allocated - freed]: objects not yet returned.  After quiescing and
    draining a correct scheme this should equal the data structure's
    reachable size — the leak check used throughout the test suite. *)

val pp_stats : Format.formatter -> t -> unit
