exception Use_after_free of string
exception Double_free of string
exception Double_retire of string

type lifecycle = Live | Retired | Freed

(* Lifecycle lives in the low two bits of [state]; the generation counter
   occupies the remaining bits and is bumped on every transition so that
   tests can detect reuse/ABA without extra fields.  The generation is
   carried across [recycle], so it is strictly monotone over a header's
   whole pooled lifetime: no two lives of the same header ever share a
   generation. *)

type t = {
  mutable uid : int;
  label : string;
  strict : bool;
  state : int Atomic.t;
  orc : int Atomic.t;
  mutable birth_era : int;
  mutable death_era : int;
  mutable retired_ns : int;
}

let orc_initial = 1 lsl 22

let live_bits = 0
let retired_bits = 1
let freed_bits = 2
let state_mask = 3

let make ~uid ~label ~strict ~birth_era =
  {
    uid;
    label;
    strict;
    state = Atomic.make live_bits;
    orc = Atomic.make orc_initial;
    birth_era;
    death_era = max_int;
    retired_ns = 0;
  }

let decode bits =
  match bits land state_mask with
  | 0 -> Live
  | 1 -> Retired
  | _ -> Freed

let lifecycle t = decode (Atomic.get t.state)
let generation t = Atomic.get t.state lsr 2

let describe t = Printf.sprintf "%s#%d" t.label t.uid

let check_access t =
  if t.strict && Atomic.get t.state land state_mask = freed_bits then
    raise (Use_after_free (describe t))

let is_freed t = Atomic.get t.state land state_mask = freed_bits

(* State transitions: a CAS loop per transition so concurrent
   double-free/retire attempts are reported rather than racing each
   other silently.  These are the hottest lifecycle paths (every
   retire, every free), so each is its own loop over direct bit tests —
   no lifecycle list, no per-call closure, no allocation.  Every
   successful CAS bumps the generation exactly once. *)

let next_state cur bits = (((cur lsr 2) + 1) lsl 2) lor bits

let rec mark_retired t =
  let cur = Atomic.get t.state in
  match cur land state_mask with
  | 0 (* Live *) ->
      if not (Atomic.compare_and_set t.state cur (next_state cur retired_bits))
      then mark_retired t
  | 1 (* Retired *) -> raise (Double_retire (describe t))
  | _ (* Freed *) -> raise (Use_after_free (describe t))

let rec unretire t =
  let cur = Atomic.get t.state in
  match cur land state_mask with
  | 1 (* Retired *) ->
      if not (Atomic.compare_and_set t.state cur (next_state cur live_bits))
      then unretire t
  | 0 (* Live *) -> () (* lost a race with another unretire; already live *)
  | _ (* Freed *) -> raise (Use_after_free (describe t))

let rec mark_freed t =
  let cur = Atomic.get t.state in
  match cur land state_mask with
  | 0 | 1 (* Live | Retired *) ->
      if not (Atomic.compare_and_set t.state cur (next_state cur freed_bits))
      then mark_freed t
  | _ (* Freed *) -> raise (Double_free (describe t))

(* Recycling (type-stable pool allocator): the Freed -> Live CAS is the
   authority — exactly one recycler wins it, so the per-object words are
   reset only by the winner, after the win.  A stale reader racing the
   reset can observe a torn (new state, old uid) combination; that is
   precisely the type-stable-pool semantics the generation counter
   exists to expose, and the generation itself is never torn (it lives
   in the same atomic word as the lifecycle). *)
let rec recycle t ~uid ~birth_era =
  let cur = Atomic.get t.state in
  if cur land state_mask <> freed_bits then raise (Double_free (describe t))
  else if not (Atomic.compare_and_set t.state cur (next_state cur live_bits))
  then recycle t ~uid ~birth_era
  else begin
    t.uid <- uid;
    t.birth_era <- birth_era;
    t.death_era <- max_int;
    t.retired_ns <- 0;
    Atomic.set t.orc orc_initial
  end

let pp fmt t =
  let lc =
    match lifecycle t with
    | Live -> "live"
    | Retired -> "retired"
    | Freed -> "freed"
  in
  Format.fprintf fmt "%s[%s gen=%d]" (describe t) lc (generation t)
