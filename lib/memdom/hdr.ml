exception Use_after_free of string
exception Double_free of string
exception Double_retire of string

type lifecycle = Live | Retired | Freed

(* Lifecycle lives in the low two bits of [state]; the generation counter
   occupies the remaining bits and is bumped on every transition so that
   tests can detect reuse/ABA without extra fields. *)

type t = {
  uid : int;
  label : string;
  strict : bool;
  state : int Atomic.t;
  orc : int Atomic.t;
  mutable birth_era : int;
  mutable death_era : int;
  mutable retired_ns : int;
}

let orc_initial = 1 lsl 22

let live_bits = 0
let retired_bits = 1
let freed_bits = 2

let make ~uid ~label ~strict ~birth_era =
  {
    uid;
    label;
    strict;
    state = Atomic.make live_bits;
    orc = Atomic.make orc_initial;
    birth_era;
    death_era = max_int;
    retired_ns = 0;
  }

let decode bits =
  match bits land 3 with
  | 0 -> Live
  | 1 -> Retired
  | _ -> Freed

let lifecycle t = decode (Atomic.get t.state)
let generation t = Atomic.get t.state lsr 2

let describe t = Printf.sprintf "%s#%d" t.label t.uid

let check_access t =
  if t.strict && decode (Atomic.get t.state) = Freed then
    raise (Use_after_free (describe t))

let is_freed t = decode (Atomic.get t.state) = Freed

(* Transition with a CAS loop so concurrent double-free attempts are
   reported rather than racing each other silently. *)
let rec transition t ~expect ~bits ~bad =
  let cur = Atomic.get t.state in
  let gen = cur lsr 2 in
  let cur_lc = decode cur in
  if not (List.mem cur_lc expect) then bad cur_lc
  else
    let next = ((gen + 1) lsl 2) lor bits in
    if not (Atomic.compare_and_set t.state cur next) then
      transition t ~expect ~bits ~bad

let mark_retired t =
  transition t ~expect:[ Live ] ~bits:retired_bits ~bad:(fun lc ->
      match lc with
      | Retired -> raise (Double_retire (describe t))
      | Freed -> raise (Use_after_free (describe t))
      | Live -> assert false)

let unretire t =
  transition t ~expect:[ Retired ] ~bits:live_bits ~bad:(fun lc ->
      match lc with
      | Freed -> raise (Use_after_free (describe t))
      | Live -> () (* lost a race with another unretire; already live *)
      | Retired -> assert false)

let mark_freed t =
  transition t ~expect:[ Live; Retired ] ~bits:freed_bits ~bad:(fun lc ->
      match lc with
      | Freed -> raise (Double_free (describe t))
      | Live | Retired -> assert false)

let pp fmt t =
  let lc =
    match lifecycle t with
    | Live -> "live"
    | Retired -> "retired"
    | Freed -> "freed"
  in
  Format.fprintf fmt "%s[%s gen=%d]" (describe t) lc (generation t)
