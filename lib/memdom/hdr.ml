exception Use_after_free of string
exception Double_free of string
exception Double_retire of string

type lifecycle = Live | Retired | Freed

(* Lifecycle lives in the low two bits of [state]; the generation counter
   occupies the remaining bits and is bumped on every transition so that
   tests can detect reuse/ABA without extra fields.  The generation is
   carried across [recycle], so it is strictly monotone over a header's
   whole pooled lifetime: no two lives of the same header ever share a
   generation.

   With [packed] on (the default), the Live->Retired and
   Retired->Live transitions are single [Atomic.fetch_and_add]s: the
   generation bump and the lifecycle bit change are one constant delta,
   so the retire hot path is one atomic RMW with no read-before-CAS and
   no loop.  An invalid prior state shows up in the returned old value;
   the add is then undone before raising, so the word is only ever
   transiently wrong during a transition that is itself a reported bug.
   With [packed] off, the historical CAS loops run instead —
   observationally identical, one extra atomic read per transition.

   The hazard-era birth/death stamps are packed unconditionally into
   one atomic word ([eras], 31 bits each, death all-ones = not yet
   retired): readers get a torn-free (birth, death) pair from a single
   load, and retire-side stamping allocates nothing.  [retired_ns]
   stays a plain field (single-writer diagnostic timestamp). *)

let packed = ref true

type t = {
  mutable uid : int;
  label : string;
  strict : bool;
  state : int Atomic.t;
  orc : int Atomic.t;
  eras : int Atomic.t;
  mutable retired_ns : int;
  mutable slot : int;
  mutable slot_release : int -> unit;
}

let orc_initial = 1 lsl 22

let live_bits = 0
let retired_bits = 1
let freed_bits = 2
let state_mask = 3

(* eras word: birth in bits 0..30, death in bits 31..61; death all-ones
   encodes "not retired" (read back as [max_int]). *)
let era_bits = 31
let era_mask = (1 lsl era_bits) - 1
let death_none = era_mask

let pack_eras ~birth ~death = (birth land era_mask) lor (death lsl era_bits)

let no_release (_ : int) = ()

let make ~uid ~label ~strict ~birth_era =
  {
    uid;
    label;
    strict;
    state = Atomic.make live_bits;
    orc = Atomic.make orc_initial;
    eras = Atomic.make (pack_eras ~birth:birth_era ~death:death_none);
    retired_ns = 0;
    slot = -1;
    slot_release = no_release;
  }

let decode bits =
  match bits land state_mask with
  | 0 -> Live
  | 1 -> Retired
  | _ -> Freed

let lifecycle t = decode (Atomic.get t.state)
let generation t = Atomic.get t.state lsr 2

let birth_era t = Atomic.get t.eras land era_mask

let death_era t =
  let d = (Atomic.get t.eras lsr era_bits) land era_mask in
  if d = death_none then max_int else d

(* Written only by the retiring thread (single owner of the retire
   transition), so a plain read-modify-write of the word suffices; the
   birth half rides along untouched. *)
let set_death_era t e =
  let d = if e < 0 || e >= death_none then death_none else e in
  let w = Atomic.get t.eras in
  Atomic.set t.eras ((w land era_mask) lor (d lsl era_bits))

let describe t = Printf.sprintf "%s#%d" t.label t.uid

let check_access t =
  if t.strict && Atomic.get t.state land state_mask = freed_bits then
    raise (Use_after_free (describe t))

let is_freed t = Atomic.get t.state land state_mask = freed_bits

(* State transitions.  Packed mode: one fetch_and_add whose delta bumps
   the generation and rewrites the lifecycle bits in a single RMW;
   invalid prior states are detected from the returned value and undone
   before raising.  Unpacked mode: the historical CAS loop per
   transition.  Both report concurrent double-free/retire attempts
   rather than racing silently, and both bump the generation exactly
   once per successful transition. *)

let next_state cur bits = (((cur lsr 2) + 1) lsl 2) lor bits

(* gen+1 with Live(00) -> Retired(01) *)
let retired_delta = (1 lsl 2) lor retired_bits

(* gen+1 with Retired(01) -> Live(00): (g+1)<<2 - (g<<2 | 1) = 3 *)
let unretire_delta = (1 lsl 2) - retired_bits

let rec mark_retired t =
  if !packed then begin
    let old = Atomic.fetch_and_add t.state retired_delta in
    match old land state_mask with
    | 0 (* Live *) -> ()
    | bits ->
        ignore (Atomic.fetch_and_add t.state (-retired_delta));
        if bits = retired_bits then raise (Double_retire (describe t))
        else raise (Use_after_free (describe t))
  end
  else
    let cur = Atomic.get t.state in
    match cur land state_mask with
    | 0 (* Live *) ->
        if not (Atomic.compare_and_set t.state cur (next_state cur retired_bits))
        then mark_retired t
    | 1 (* Retired *) -> raise (Double_retire (describe t))
    | _ (* Freed *) -> raise (Use_after_free (describe t))

let rec unretire t =
  if !packed then begin
    let old = Atomic.fetch_and_add t.state unretire_delta in
    match old land state_mask with
    | 1 (* Retired *) -> ()
    | 0 (* Live: lost a race with another unretire *) ->
        ignore (Atomic.fetch_and_add t.state (-unretire_delta))
    | _ (* Freed *) ->
        ignore (Atomic.fetch_and_add t.state (-unretire_delta));
        raise (Use_after_free (describe t))
  end
  else
    let cur = Atomic.get t.state in
    match cur land state_mask with
    | 1 (* Retired *) ->
        if not (Atomic.compare_and_set t.state cur (next_state cur live_bits))
        then unretire t
    | 0 (* Live *) -> () (* lost a race with another unretire; already live *)
    | _ (* Freed *) -> raise (Use_after_free (describe t))

let rec mark_freed t =
  let cur = Atomic.get t.state in
  match cur land state_mask with
  | 0 | 1 (* Live | Retired *) ->
      if not (Atomic.compare_and_set t.state cur (next_state cur freed_bits))
      then mark_freed t
  | _ (* Freed *) -> raise (Double_free (describe t))

(* Recycling (type-stable pool allocator): the Freed -> Live CAS is the
   authority — exactly one recycler wins it, so the per-object words are
   reset only by the winner, after the win.  A stale reader racing the
   reset can observe a torn (new state, old uid) combination; that is
   precisely the type-stable-pool semantics the generation counter
   exists to expose, and the generation itself is never torn (it lives
   in the same atomic word as the lifecycle).  The arena slot is not
   touched: it was released (and reset to -1) when the header was
   freed, and the next life re-registers on first publication. *)
let rec recycle t ~uid ~birth_era =
  let cur = Atomic.get t.state in
  if cur land state_mask <> freed_bits then raise (Double_free (describe t))
  else if not (Atomic.compare_and_set t.state cur (next_state cur live_bits))
  then recycle t ~uid ~birth_era
  else begin
    t.uid <- uid;
    Atomic.set t.eras (pack_eras ~birth:birth_era ~death:death_none);
    t.retired_ns <- 0;
    Atomic.set t.orc orc_initial
  end

(* Hand the header's arena slot back to its table, exactly once.  Called
   by [Alloc.free] after the Freed transition: at that point no scheme
   protects the object, so the slot may be recycled for a future node.
   (The slot keeps its last occupant until then — type-stable memory.) *)
let release_slot t =
  if t.slot >= 0 then begin
    let s = t.slot and release = t.slot_release in
    t.slot <- -1;
    t.slot_release <- no_release;
    release s
  end

let pp fmt t =
  let lc =
    match lifecycle t with
    | Live -> "live"
    | Retired -> "retired"
    | Freed -> "freed"
  in
  Format.fprintf fmt "%s[%s gen=%d]" (describe t) lc (generation t)
