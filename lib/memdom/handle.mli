(** Header-backed tagged-link arenas.

    [arena ~hdr ()] builds an {!Atomicx.Link.arena} whose slot storage
    is the node's {!Hdr.t} ([slot]/[slot_release] fields): registration
    stamps the header, and [Alloc.free] releases the slot via
    {!Hdr.release_slot} when the node's life ends.  Every tracked data
    structure that opts into tagged links builds its arena through
    this. *)

val arena : hdr:('a -> Hdr.t) -> unit -> 'a Atomicx.Link.arena
