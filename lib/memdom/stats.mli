(** Point-in-time snapshots of allocator state, for experiment reporting
    and leak forensics.

    The evaluation's memory claims (Table 1 bounds, the §5 skip-list
    footprint) are statements about *how many objects exist right now*;
    this module gives them a stable, comparable representation.  Pool
    allocators additionally expose their free-list economy
    (hits/misses/remote-frees/refills) so a soak or bench can print the
    hit rate alongside allocated/freed/live. *)

type snapshot = {
  label : string;
  allocated : int;
  freed : int;
  live : int;
  era : int;
  pool_hits : int;  (** recycled hand-outs (0 for System allocators) *)
  pool_misses : int;  (** fresh-header hand-outs in Pool mode *)
  remote_frees : int;  (** frees routed via a transfer stack *)
  refills : int;  (** batched drains into a local free-list *)
  at : float;  (** wall-clock seconds, [Unix.gettimeofday] *)
}

val take : ?clock:(unit -> float) -> Alloc.t -> snapshot
(** Snapshot an allocator's counters.  [clock] stamps [at] and defaults
    to [Unix.gettimeofday]; inject a fake clock to make interval math
    ({!diff}'s [at]) deterministic in tests. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff earlier later]: counter deltas over the interval (label and
    era taken from [later], [at] is the interval length). *)

val hit_rate : snapshot -> float
(** Pool hit rate in [0, 1] ([0.] when no pool traffic); meaningful on
    {!diff} results too. *)

val pp : Format.formatter -> snapshot -> unit
(** Prints the core counters, plus the pool section when the snapshot
    saw pool traffic. *)

val series_peak : snapshot list -> int
(** Largest [live] over a series of snapshots. *)
