(** Point-in-time snapshots of allocator state, for experiment reporting
    and leak forensics.

    The evaluation's memory claims (Table 1 bounds, the §5 skip-list
    footprint) are statements about *how many objects exist right now*;
    this module gives them a stable, comparable representation. *)

type snapshot = {
  label : string;
  allocated : int;
  freed : int;
  live : int;
  era : int;
  at : float;  (** wall-clock seconds, [Unix.gettimeofday] *)
}

val take : ?clock:(unit -> float) -> Alloc.t -> snapshot
(** Snapshot an allocator's counters.  [clock] stamps [at] and defaults
    to [Unix.gettimeofday]; inject a fake clock to make interval math
    ({!diff}'s [at]) deterministic in tests. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff earlier later]: counter deltas over the interval (label and
    era taken from [later], [at] is the interval length). *)

val pp : Format.formatter -> snapshot -> unit

val series_peak : snapshot list -> int
(** Largest [live] over a series of snapshots. *)
