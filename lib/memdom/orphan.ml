(* Lock-free orphan pool: a Treiber-style list of published batches.
   Publish is a CAS-prepend by the departing (or quarantining) thread;
   adopt is a single [Atomic.exchange] by a survivor, so a batch is
   adopted exactly once and the pool is wait-free to drain.  Batches
   carry their publication timestamp so adoption latency lands in the
   sink's adopt histogram.

   Lives in [memdom] (moved from [lib/reclaim]) because both layers
   publish through it: the reclamation schemes orphan a dead thread's
   pending retire list, and the pool allocator orphans a dead thread's
   recycled-header free-list.  [Reclaim.Orphan] re-exports it under the
   old name. *)

type 'a batch = { items : 'a list; count : int; published_ns : int }
type 'a t = 'a batch list Atomic.t

let create () = Atomic.make []

let pending t =
  List.fold_left (fun n b -> n + b.count) 0 (Atomic.get t)

let publish t sink ~tid items =
  match items with
  | [] -> ()
  | _ ->
      let count = List.length items in
      let published_ns = Obs.Sink.on_orphan sink ~tid ~count in
      let b = { items; count; published_ns } in
      let rec push () =
        let cur = Atomic.get t in
        if not (Atomic.compare_and_set t cur (b :: cur)) then push ()
      in
      push ()

let adopt t sink ~tid =
  (* Fast path: reading an empty pool costs one load and no write, so
     putting adoption at the head of every scan is free in the steady
     state with no churn. *)
  match Atomic.get t with
  | [] -> []
  | _ ->
      let batches = Atomic.exchange t [] in
      List.concat_map
        (fun b ->
          Obs.Sink.on_adopt sink ~tid ~count:b.count
            ~published_ns:b.published_ns;
          b.items)
        batches
