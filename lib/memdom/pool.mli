(** Type-stable pool of recycled headers: the real allocator behind
    [Alloc]'s [Pool] mode.

    The paper's custom-allocator regime (§2) keeps freed node memory
    inside the pool, readable and type-stable, so reclamation schemes
    may tolerate stale reads and the allocation hot path never touches
    the system allocator in the steady state.  This module is that
    regime for headers: [free]d headers are kept and handed back out by
    {!Hdr.recycle} instead of being rebuilt (a record plus two
    [Atomic.t] boxes per node on the hottest path otherwise).

    Layout, per registry slot (DEBRA-style per-thread bags with batched
    transfer):

    - a {b local LIFO free-list}, owner-only: push on same-thread free,
      pop on allocation — no atomics, no shared cache line on the hit
      path (slots are allocation-padded apart);
    - a {b lock-free Treiber transfer stack} for remote frees (freeing
      tid ≠ allocating tid): the freeing thread CAS-pushes onto the
      {e owner}'s stack, and the owner drains it into its local list in
      batches of at most {!drain_batch} only when the local list runs
      dry — remote frees are amortized, never on the hit path.

    The allocating owner of a header is recovered from its uid
    ([uid mod max_threads], the encoding [Alloc] uses), so no extra
    header field is needed.

    {b Domain churn.}  The pool registers a [Registry.on_quarantine]
    cleaner: when a tid dies, its local free-list and transfer stack
    are published as one batch to an {!Orphan} pool (the same machinery
    schemes use for retire lists) and adopted by whichever thread next
    misses — a dead domain's free-list feeds survivors instead of
    leaking.  A remote free can race the cleaner's drain and land in a
    quarantined slot's transfer stack; such headers are not lost, they
    are recovered by the slot's next owner's first miss.

    Counters ([hits]/[misses]/[remote_frees]/[refills]) are sharded per
    thread ({!Atomicx.Shard}); the sink sees [Recycle] and [Refill]
    events plus the [Orphan]/[Adopt] pair from the churn path. *)

type t

val create : Obs.Sink.t -> t
(** A pool reporting to the given sink.  Registers its quarantine
    cleaner; the registration lives exactly as long as [t] (the
    registry holds cleaners weakly and [t] keeps the closure). *)

val drain_batch : int
(** Maximum headers moved local-ward per transfer-stack drain (K). *)

val acquire : t -> tid:int -> Hdr.t option
(** Pop a recycled header for [tid]: local list first; on a dry list,
    drain up to {!drain_batch} remote frees, then try adopting orphaned
    free-lists.  [Some h] counts a hit ([h] is still [Freed] — the
    caller restamps it with {!Hdr.recycle}); [None] counts a miss and
    the caller builds a fresh header. *)

val release : t -> tid:int -> Hdr.t -> unit
(** Return a [Freed] header to the pool: local push when [tid] owns it,
    CAS-push onto the owner's transfer stack otherwise. *)

val hits : t -> int
val misses : t -> int
val remote_frees : t -> int

val refills : t -> int
(** Transfer-stack drains plus orphan adoptions that yielded headers. *)

val orphaned : t -> int
(** Headers published by dead tids, not yet adopted (diagnostics). *)

val local_size : t -> tid:int -> int
(** Length of a slot's local free-list (whitebox tests). *)

val transfer_size : t -> tid:int -> int
(** Length of a slot's transfer stack (whitebox tests). *)
