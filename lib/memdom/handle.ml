(* Glue between the tagged-link arenas of [Atomicx.Link] and the object
   headers of this layer: the header is where a node's arena slot lives
   (one [mutable int] plus the release callback), so the arena needs no
   side table and slot release costs no lookup.  See link.mli for the
   registration/release contract. *)

let arena (type n) ~(hdr : n -> Hdr.t) () : n Atomicx.Link.arena =
  Atomicx.Link.arena
    ~slot_of:(fun n -> (hdr n).Hdr.slot)
    ~on_register:(fun n s ~release ->
      let h = hdr n in
      h.Hdr.slot <- s;
      h.Hdr.slot_release <- release)
    ()
