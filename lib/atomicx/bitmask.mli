(** Free-slot index allocator over an int bitmask.

    The OrcGC hazard-index allocator (Algorithm 6 lines 119–132) needs
    "lowest free index ≥ start" on every pointer-handle creation; a
    linear scan of a used-count array makes that O(capacity) on the hot
    path.  Here a set bit means "in use" and the lowest clear bit is
    found arithmetically ([lnot] + [land] of the carry through the
    trailing ones), so acquire and release are O(1) in the word count —
    one or two words for any realistic hazard-array size.

    Not thread-safe: each instance belongs to one owner thread, exactly
    like the per-thread [used_haz] share counts it indexes for. *)

type t

val create : int -> t
(** [create capacity] — all indexes in [\[0, capacity)] initially free.
    Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int

val reset : t -> unit
(** Mark every index free again, as if freshly created.  Used by the
    registry quarantine pass so a recycled tid starts from an empty
    hazard-index mask. *)

val acquire : t -> from:int -> int option
(** [acquire t ~from]: mark and return the lowest free index [>= from],
    or [None] if every index in [\[from, capacity)] is taken.  Negative
    [from] is treated as 0. *)

val release : t -> int -> unit
(** Mark an index free again.  Raises [Invalid_argument] out of range. *)

val mem : t -> int -> bool
(** Is this index currently taken? *)

val count : t -> int
(** Number of taken indexes (O(capacity); diagnostics and tests). *)
