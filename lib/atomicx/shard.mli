(** Sharded counters: one padded cell per registry slot, aggregated on
    read.

    The reclamation hot paths bump observability counters (pending
    retires, allocation totals, …) on every operation; a single shared
    [Atomic.t] puts every thread's fetch-and-add on one cache line and
    serializes exactly the paths the benchmarks measure.  A [Shard.t]
    gives each registered thread its own cache-line-spaced cell —
    updates are uncontended — and {!get} folds the cells of the
    [\[0, Registry.registered ())] slots.

    A read concurrent with updates is not a linearizable snapshot: it
    can miss or double-see at most one in-flight delta per active
    thread, i.e. it is exact to within O(threads) — see DESIGN.md on why
    this preserves the paper's Table-1 bound measurements. *)

type t

val create : unit -> t
(** All cells zero; sized to [Registry.max_threads]. *)

val add : t -> tid:int -> int -> unit
(** Add a (possibly negative) delta to the caller's cell.  [tid] must be
    a registry id; any registered thread may carry any delta — only the
    total is meaningful. *)

val incr : t -> tid:int -> unit

val fetch_incr : t -> tid:int -> int
(** Increment the caller's cell and return its previous value — a
    per-thread monotone ticket (combine with [tid] for a process-unique
    id without a shared counter). *)

val get : t -> int
(** Sum over the registered slots (monotonic {!Registry.registered}
    bound, so no cell ever written is skipped). *)
