let max_threads = 128

exception Too_many_threads of string

(* Slot word: low 2 bits are the lifecycle state, the rest is a
   generation counter bumped every time the slot completes a
   Quarantined -> Free transition.  A reused tid therefore carries a
   fresh generation, and tests can assert "this is really a recycled
   slot, and its quarantine pass ran". *)
let st_free = 0

let st_active = 1
let st_quarantined = 2

(* [reserve]d on behalf of a thread that never acquires: visible to
   protection scans like Active, never claimable, never released. *)
let st_staged = 3
let state_bits = 3
let state_of v = v land state_bits
let gen_of v = v lsr 2
let slots = Array.init max_threads (fun _ -> Atomic.make 0)

(* 1 + highest tid ever handed out: lets per-thread scans stop early *)
let watermark = Atomic.make 0

(* -1 encodes "no slot held by this domain". *)
let key = Domain.DLS.new_key (fun () -> ref (-1))

(* Has this domain registered its at-exit release hook yet? *)
let exit_hooked = Domain.DLS.new_key (fun () -> ref false)

(* {2 Lifecycle hooks}

   Schemes register hooks at creation; lifecycle transitions run every
   live hook with the affected tid.  The registry is process-global but
   schemes are not, so hooks are held weakly: a scheme keeps its own
   closure alive (strong field in its record) and the entry evaporates
   with the scheme instead of pinning it forever.  Two independent
   planes share the machinery: quarantine cleaners (full drain, owner
   dead or departing) and neutralize hooks (atomic-state-only, owner
   possibly alive — see [neutralize]). *)
module Hooks = struct
  type t = { mutable entries : (int -> unit) Weak.t; lock : Mutex.t }

  let create () = { entries = Weak.create 16; lock = Mutex.create () }

  let add t f =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let w = t.entries in
        let len = Weak.length w in
        let rec free i =
          if i >= len then None
          else if Weak.check w i then free (i + 1)
          else Some i
        in
        match free 0 with
        | Some i -> Weak.set w i (Some f)
        | None ->
            let w' = Weak.create (2 * len) in
            Weak.blit w 0 w' 0 len;
            Weak.set w' len (Some f);
            t.entries <- w')

  (* Snapshot the live hooks under the lock, run them outside it (a
     hook may allocate, trace, even register further hooks).  Every
     hook runs even if one raises; the first exception is re-raised
     after the pass so a buggy scheme cannot leave another's state
     dirty. *)
  let run t arg =
    let fs =
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          let w = t.entries in
          let acc = ref [] in
          for i = 0 to Weak.length w - 1 do
            match Weak.get w i with Some f -> acc := f :: !acc | None -> ()
          done;
          !acc)
    in
    let first_exn = ref None in
    List.iter
      (fun f ->
        try f arg with e -> if !first_exn = None then first_exn := Some e)
      fs;
    match !first_exn with Some e -> raise e | None -> ()
end

let cleaners = Hooks.create ()
let neutralize_hooks = Hooks.create ()
let on_quarantine f = Hooks.add cleaners f
let on_neutralize f = Hooks.add neutralize_hooks f
let run_cleaners dead = Hooks.run cleaners dead

(* The quarantine pass proper: [i] is already Quarantined and owned by
   the caller.  Even if a cleaner raises, the slot still becomes Free
   (with a bumped generation) — the exception is the signal, a wedged
   slot would just turn one failure into registry exhaustion. *)
let quarantine_and_free i =
  Fun.protect
    ~finally:(fun () ->
      let v = Atomic.get slots.(i) in
      Atomic.set slots.(i) (((gen_of v + 1) lsl 2) lor st_free))
    (fun () -> run_cleaners i)

let acquire () =
  let rec scan i =
    if i >= max_threads then
      raise
        (Too_many_threads
           (Printf.sprintf
              "Registry.acquire: no free slot (max_threads=%d, watermark=%d, \
               active=%d, quarantined=%d); long-lived domains should release \
               with Registry.release / Registry.with_tid, and dead domains' \
               slots can be reclaimed with Registry.force_release"
              max_threads (Atomic.get watermark)
              (Array.fold_left
                 (fun n s ->
                   if state_of (Atomic.get s) = st_active then n + 1 else n)
                 0 slots)
              (Array.fold_left
                 (fun n s ->
                   if state_of (Atomic.get s) = st_quarantined then n + 1 else n)
                 0 slots)))
    else
      let v = Atomic.get slots.(i) in
      if state_of v = st_free && Atomic.compare_and_set slots.(i) v (v lor st_active)
      then begin
        let rec bump () =
          let w = Atomic.get watermark in
          if w <= i && not (Atomic.compare_and_set watermark w (i + 1)) then
            bump ()
        in
        bump ();
        i
      end
      else scan (i + 1)
  in
  scan 0

let release () =
  let r = Domain.DLS.get key in
  if !r >= 0 then begin
    let i = !r in
    (* Owner-only Active -> Quarantined, but CAS rather than plain set:
       a concurrent [neutralize] bumps an Active slot's generation, and
       a blind store here would clobber that bump and resurrect the
       expired protections it invalidated. *)
    let rec quarantine () =
      let v = Atomic.get slots.(i) in
      if
        not
          (Atomic.compare_and_set slots.(i) v
             (v land lnot state_bits lor st_quarantined))
      then quarantine ()
    in
    quarantine ();
    (* Cleaners run while the DLS ref still points at [i]: on the exit
       path a scheme's cleaner sees [tid () = i] and can retire into
       its own (still valid) per-thread state. *)
    Fun.protect ~finally:(fun () -> r := -1) (fun () -> quarantine_and_free i)
  end

let tid () =
  let r = Domain.DLS.get key in
  if !r >= 0 then !r
  else begin
    let id = acquire () in
    r := id;
    (* First acquisition by this domain: arrange for the slot to be
       quarantined even if the domain terminates without calling
       [release] — [release] is idempotent, so the Fun.protect path in
       [with_tid] and this hook compose. *)
    let hooked = Domain.DLS.get exit_hooked in
    if not !hooked then begin
      hooked := true;
      Domain.at_exit release
    end;
    id
  end

let with_tid f =
  let id = tid () in
  Fun.protect ~finally:release (fun () -> f id)

let force_release i =
  if i < 0 || i >= max_threads then invalid_arg "Registry.force_release";
  let v = Atomic.get slots.(i) in
  if
    state_of v = st_active
    && Atomic.compare_and_set slots.(i) v (v land lnot state_bits lor st_quarantined)
  then begin
    quarantine_and_free i;
    true
  end
  else false

(* Expire a (possibly alive) stalled owner's protections: bump the
   generation while the slot stays Active.  Every protection validated
   against the old generation is now invalid — watchdog rows stop
   matching, and an owner that wakes sees the bump via its scheme's
   handshake and retries.  Unlike [force_release] this never runs the
   quarantine cleaners (they drain owner-private plain state, which a
   waking owner may still be mutating); it runs only the [on_neutralize]
   hooks, which restrict themselves to the victim's atomic state. *)
let neutralize i =
  if i < 0 || i >= max_threads then invalid_arg "Registry.neutralize";
  let v = Atomic.get slots.(i) in
  state_of v = st_active
  && Atomic.compare_and_set slots.(i) v
       (((gen_of v + 1) lsl 2) lor st_active)
  && begin
       Hooks.run neutralize_hooks i;
       true
     end

let abandon () =
  let r = Domain.DLS.get key in
  let i = !r in
  if i >= 0 then r := -1;
  i

let active () =
  let n = ref 0 in
  for i = 0 to Atomic.get watermark - 1 do
    if state_of (Atomic.get slots.(i)) = st_active then incr n
  done;
  !n

let in_use i =
  if i < 0 || i >= max_threads then invalid_arg "Registry.in_use";
  state_of (Atomic.get slots.(i)) <> st_free

let generation i =
  if i < 0 || i >= max_threads then invalid_arg "Registry.generation";
  gen_of (Atomic.get slots.(i))

let slot_state i =
  if i < 0 || i >= max_threads then invalid_arg "Registry.slot_state";
  match state_of (Atomic.get slots.(i)) with
  | 0 -> `Free
  | 1 -> `Active
  | 2 -> `Quarantined
  | _ -> `Staged

let high_water () = Atomic.get watermark
let registered = high_water

let reserve n =
  if n < 0 || n > max_threads then invalid_arg "Registry.reserve";
  (* staged slots must look in-use, or protection scans would skip the
     rows the test is staging; Free -> Staged is one-way *)
  for i = 0 to n - 1 do
    let rec stage () =
      let v = Atomic.get slots.(i) in
      if
        state_of v = st_free
        && not
             (Atomic.compare_and_set slots.(i)
                (* keep the generation bits *)
                v
                (v land lnot state_bits lor st_staged))
      then stage ()
    in
    stage ()
  done;
  let rec bump () =
    let w = Atomic.get watermark in
    if w < n && not (Atomic.compare_and_set watermark w n) then bump ()
  in
  bump ()
