let max_threads = 128

exception Too_many_threads

let slots = Array.init max_threads (fun _ -> Atomic.make false)

(* 1 + highest tid ever handed out: lets per-thread scans stop early *)
let watermark = Atomic.make 0

(* -1 encodes "no slot held by this domain". *)
let key = Domain.DLS.new_key (fun () -> ref (-1))

let acquire () =
  let rec scan i =
    if i >= max_threads then raise Too_many_threads
    else if (not (Atomic.get slots.(i))) && Atomic.compare_and_set slots.(i) false true
    then begin
      let rec bump () =
        let w = Atomic.get watermark in
        if w <= i && not (Atomic.compare_and_set watermark w (i + 1)) then
          bump ()
      in
      bump ();
      i
    end
    else scan (i + 1)
  in
  scan 0

let tid () =
  let r = Domain.DLS.get key in
  if !r >= 0 then !r
  else begin
    let id = acquire () in
    r := id;
    id
  end

let release () =
  let r = Domain.DLS.get key in
  if !r >= 0 then begin
    Atomic.set slots.(!r) false;
    r := -1
  end

let with_tid f =
  let id = tid () in
  Fun.protect ~finally:release (fun () -> f id)

let active () =
  let n = ref 0 in
  Array.iter (fun s -> if Atomic.get s then incr n) slots;
  !n

let high_water () = Atomic.get watermark
let registered = high_water

let reserve n =
  if n < 0 || n > max_threads then invalid_arg "Registry.reserve";
  let rec bump () =
    let w = Atomic.get watermark in
    if w < n && not (Atomic.compare_and_set watermark w n) then bump ()
  in
  bump ()
