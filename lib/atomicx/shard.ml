type t = int Atomic.t array

let create () = Padded.atomic_array Registry.max_threads 0
let add t ~tid d = ignore (Atomic.fetch_and_add t.(tid) d)
let incr t ~tid = add t ~tid 1
let fetch_incr t ~tid = Atomic.fetch_and_add t.(tid) 1

let get t =
  let n = Registry.registered () in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    sum := !sum + Atomic.get t.(i)
  done;
  !sum
