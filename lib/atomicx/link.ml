(* Atomic links with two interchangeable representations:

   - Boxed: the historical ['a state Atomic.t] — every read returns a
     heap-allocated variant box, CAS compares boxes physically.
   - Tagged: an [int Atomic.t] holding the target's arena slot shifted
     left 3 plus mark/flag/tag bits, with Null = 0 and Poison = 1 —
     the C++ original's word-tagged pointer, CAS compares values.

   The representation is chosen per structure: links made through
   [make_in arena] follow the arena's snapshot of [!tagged]; links made
   through [make] are always Boxed, so structures that were never
   converted to the view API keep today's physical-equality semantics
   regardless of the ablation setting.

   Views ([!view] etc.) are the allocation-free read surface: a view of
   a Boxed link IS the state value it holds (block, or immediate 0/1
   for Null/Poison); a view of a Tagged link IS the raw word.  The two
   never collide: Null and Poison encode as the same immediates 0 and 1
   in both representations, and every other tagged word is >= 8 while
   every other boxed state is a block.  [Obj.is_int] therefore fully
   describes a view, except for dereferencing, which needs the arena. *)

type 'a state =
  | Null
  | Ptr of 'a
  | Mark of 'a
  | Flag of 'a
  | Tag of 'a
  | FlagTag of 'a
  | Poison

let tagged = ref true

(* {2 Arena: a per-structure lock-free handle table}

   Nodes are registered into fixed-size chunks (never moved, so a
   concurrent registration store can't be lost to a growth copy) and
   addressed by slot index.  Freed slots go through a version-counted
   Treiber free-list of ints; a slot keeps its last occupant until
   reuse, which is exactly the type-stable-memory semantics the paper's
   schemes assume. *)

let chunk_bits = 10
let chunk_size = 1 lsl chunk_bits
let n_chunks = 8192
let max_slots = n_chunks * chunk_size

(* free-list head packing: (version lsl slot1_bits) lor (slot + 1);
   slot+1 = 0 means empty.  24 bits cover max_slots + 1.  Sized for the
   KV-service scenario: a split-ordered map at 4M regular keys plus its
   dummy nodes must fit one arena (chunks are lazy, so a small structure
   still only materialises the slots it touches). *)
let slot1_bits = 24
let slot1_mask = (1 lsl slot1_bits) - 1

type chunk = { nodes : Obj.t array; free_next : int array }

type 'a arena = {
  use_tagged : bool; (* snapshot of [!tagged] at creation *)
  chunks : chunk option Atomic.t array;
  free_head : int Atomic.t;
  next_fresh : int Atomic.t;
  slot_of : Obj.t -> int;
  on_register : Obj.t -> int -> release:(int -> unit) -> unit;
  mutable release_fn : int -> unit;
  n_registered : int Atomic.t;
  n_released : int Atomic.t;
}

let rec chunk_for a b =
  match Atomic.get a.chunks.(b) with
  | Some c -> c
  | None ->
      let c =
        {
          nodes = Array.make chunk_size (Obj.repr 0);
          free_next = Array.make chunk_size (-1);
        }
      in
      if Atomic.compare_and_set a.chunks.(b) None (Some c) then c
      else chunk_for a b

(* Deref is the tagged read hot path: two atomic loads and one plain
   load, no allocation. *)
let deref a s =
  match Atomic.get a.chunks.(s lsr chunk_bits) with
  | Some c ->
      let n = c.nodes.(s land (chunk_size - 1)) in
      if Obj.is_int n then
        invalid_arg "Link.arena: dereference of unregistered slot"
      else Obj.obj n
  | None -> invalid_arg "Link.arena: dereference of unallocated chunk"

let set_free_next a s v =
  (chunk_for a (s lsr chunk_bits)).free_next.(s land (chunk_size - 1)) <- v

let get_free_next a s =
  match Atomic.get a.chunks.(s lsr chunk_bits) with
  | Some c -> c.free_next.(s land (chunk_size - 1))
  | None -> -1

(* Pop a recycled slot.  The version in the upper bits makes the CAS
   fail if any pop/push completed since [h] was read, so the stale
   [free_next] read cannot be installed (no ABA). *)
let rec pop_free a =
  let h = Atomic.get a.free_head in
  let s1 = h land slot1_mask in
  if s1 = 0 then -1
  else
    let s = s1 - 1 in
    let nxt = get_free_next a s in
    let h' = (((h lsr slot1_bits) + 1) lsl slot1_bits) lor (nxt + 1) in
    if Atomic.compare_and_set a.free_head h h' then s else pop_free a

let rec push_free a s =
  let h = Atomic.get a.free_head in
  set_free_next a s ((h land slot1_mask) - 1);
  let h' = (((h lsr slot1_bits) + 1) lsl slot1_bits) lor (s + 1) in
  if not (Atomic.compare_and_set a.free_head h h') then push_free a s

let release_slot a s =
  if s >= 0 && s < max_slots then begin
    Atomic.incr a.n_released;
    push_free a s
  end

let alloc_slot a =
  match pop_free a with
  | s when s >= 0 -> s
  | _ ->
      let s = Atomic.fetch_and_add a.next_fresh 1 in
      if s >= max_slots then failwith "Link.arena: slot table exhausted";
      ignore (chunk_for a (s lsr chunk_bits));
      s

(* Registration must be performed by the thread that owns the node
   privately (in practice: its allocator, before first publication), so
   it needs no synchronization against itself.  The slot's content
   store is published to other threads by the atomic link-word store
   that follows it. *)
let register a n =
  let s = alloc_slot a in
  (match Atomic.get a.chunks.(s lsr chunk_bits) with
  | Some c -> c.nodes.(s land (chunk_size - 1)) <- Obj.repr n
  | None -> assert false);
  Atomic.incr a.n_registered;
  a.on_register (Obj.repr n) s ~release:a.release_fn;
  s

let ensure_registered a n =
  let s = a.slot_of (Obj.repr n) in
  if s >= 0 then s else register a n

let arena (type n) ~(slot_of : n -> int)
    ~(on_register : n -> int -> release:(int -> unit) -> unit) () =
  let a =
    {
      use_tagged = !tagged;
      chunks = Array.init n_chunks (fun _ -> Atomic.make None);
      free_head = Atomic.make 0;
      next_fresh = Atomic.make 0;
      slot_of = (fun o -> slot_of (Obj.obj o));
      on_register = (fun o s ~release -> on_register (Obj.obj o) s ~release);
      release_fn = ignore;
      n_registered = Atomic.make 0;
      n_released = Atomic.make 0;
    }
  in
  a.release_fn <- (fun s -> release_slot a s);
  (Obj.magic a : n arena)

let arena_tagged (a : _ arena) = a.use_tagged
let arena_registered a = Atomic.get a.n_registered
let arena_released a = Atomic.get a.n_released
let arena_live a = arena_registered a - arena_released a
let arena_capacity a = Atomic.get a.next_fresh

(* {2 Word encoding}

   word = (slot + 1) lsl 3 lor bits, bits: 0 clean, 1 mark, 2 flag,
   4 tag, 6 flag+tag.  Null = 0, Poison = 1; words 2..7 never occur. *)

let b_clean = 0
let b_mark = 1
let b_flag = 2
let b_tag = 4
let b_flagtag = 6
let w_null = 0
let w_poison = 1

let word_of a n bits = ((ensure_registered a n + 1) lsl 3) lor bits

let encode a = function
  | Null -> w_null
  | Poison -> w_poison
  | Ptr n -> word_of a n b_clean
  | Mark n -> word_of a n b_mark
  | Flag n -> word_of a n b_flag
  | Tag n -> word_of a n b_tag
  | FlagTag n -> word_of a n b_flagtag

let decode a w =
  if w = w_null then Null
  else if w = w_poison then Poison
  else
    let n = deref a ((w lsr 3) - 1) in
    match w land 7 with
    | 0 -> Ptr n
    | 1 -> Mark n
    | 2 -> Flag n
    | 4 -> Tag n
    | 6 -> FlagTag n
    | _ -> assert false

(* {2 Links} *)

type 'a t =
  | B of 'a state Atomic.t
  | T of { word : int Atomic.t; arena : 'a arena }

let make st = B (Atomic.make st)

let make_in a st =
  if a.use_tagged then T { word = Atomic.make (encode a st); arena = a }
  else B (Atomic.make st)

let get = function B l -> Atomic.get l | T { word; arena } -> decode arena (Atomic.get word)

let set l st =
  match l with
  | B l -> Atomic.set l st
  | T { word; arena } -> Atomic.set word (encode arena st)

let cas l expected desired =
  match l with
  | B l -> Atomic.compare_and_set l expected desired
  | T { word; arena } ->
      (* genuine word compare-and-set: any state with the same target
         and bits matches, whatever box it came from *)
      Atomic.compare_and_set word (encode arena expected) (encode arena desired)

let exchange l st =
  match l with
  | B l -> Atomic.exchange l st
  | T { word; arena } -> decode arena (Atomic.exchange word (encode arena st))

let target = function
  | Null | Poison -> None
  | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> Some n

let is_marked = function
  | Mark _ -> true
  | Null | Ptr _ | Flag _ | Tag _ | FlagTag _ | Poison -> false

let is_flagged = function
  | Flag _ | FlagTag _ -> true
  | Null | Ptr _ | Mark _ | Tag _ | Poison -> false

let is_tagged = function
  | Tag _ | FlagTag _ -> true
  | Null | Ptr _ | Mark _ | Flag _ | Poison -> false

let is_poison = function
  | Poison -> true
  | Null | Ptr _ | Mark _ | Flag _ | Tag _ | FlagTag _ -> false

let with_tag = function
  | Ptr n -> Tag n
  | Flag n -> FlagTag n
  | (Tag _ | FlagTag _ | Null | Poison | Mark _) as st -> st

let clean = function
  | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> Ptr n
  | (Null | Poison) as st -> st

let same a b =
  match a, b with
  | Null, Null | Poison, Poison -> true
  | Ptr x, Ptr y | Mark x, Mark y | Flag x, Flag y | Tag x, Tag y
  | FlagTag x, FlagTag y ->
      x == y
  | (Null | Ptr _ | Mark _ | Flag _ | Tag _ | FlagTag _ | Poison), _ -> false

let pp pp_node fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Poison -> Format.pp_print_string fmt "poison"
  | Ptr n -> Format.fprintf fmt "ptr(%a)" pp_node n
  | Mark n -> Format.fprintf fmt "mark(%a)" pp_node n
  | Flag n -> Format.fprintf fmt "flag(%a)" pp_node n
  | Tag n -> Format.fprintf fmt "tag(%a)" pp_node n
  | FlagTag n -> Format.fprintf fmt "flagtag(%a)" pp_node n

(* {2 Views} *)

type 'a view = Obj.t

let view = function
  | B l -> Obj.repr (Atomic.get l)
  | T { word; _ } -> Obj.repr (Atomic.get word)

let view_eq (a : 'a view) (b : 'a view) = a == b
let v_null : 'a view = Obj.repr 0
let v_is_null (v : 'a view) = v == Obj.repr Null
let v_is_poison (v : 'a view) = v == Obj.repr Poison
let v_is_word (v : 'a view) = Obj.is_int v

let v_has_target (v : 'a view) =
  if Obj.is_int v then (Obj.obj v : int) >= 8 else true

let v_is_marked (v : 'a view) =
  if Obj.is_int v then
    let w : int = Obj.obj v in
    w >= 8 && w land 7 = b_mark
  else is_marked (Obj.obj v : _ state)

let v_is_flagged (v : 'a view) =
  if Obj.is_int v then
    let w : int = Obj.obj v in
    w >= 8 && w land b_flag <> 0
  else is_flagged (Obj.obj v : _ state)

let v_is_tagged (v : 'a view) =
  if Obj.is_int v then
    let w : int = Obj.obj v in
    w >= 8 && w land b_tag <> 0
  else is_tagged (Obj.obj v : _ state)

(* Strip mark/flag/tag, keep the target; Null/Poison unchanged.  On a
   word this is pure arithmetic; on a box it allocates the clean state
   (exactly what the boxed algorithms allocated before). *)
let v_clean (v : 'a view) : 'a view =
  if Obj.is_int v then
    let w : int = Obj.obj v in
    if w < 8 then v else Obj.repr (w land lnot 7)
  else Obj.repr (clean (Obj.obj v : _ state))

let v_mark (v : 'a view) : 'a view =
  if Obj.is_int v then
    let w : int = Obj.obj v in
    if w < 8 then v else Obj.repr ((w land lnot 7) lor b_mark)
  else
    match (Obj.obj v : _ state) with
    | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> Obj.repr (Mark n)
    | (Null | Poison) as st -> Obj.repr st

let v_same (a : 'a view) (b : 'a view) =
  if a == b then true
  else if Obj.is_int a || Obj.is_int b then false
  else same (Obj.obj a : _ state) (Obj.obj b : _ state)

let state_target_exn (st : _ state) =
  match st with
  | Ptr n | Mark n | Flag n | Tag n | FlagTag n -> n
  | Null | Poison -> invalid_arg "Link.v_target: no target"

let v_node a (v : 'a view) =
  if Obj.is_int v then begin
    let w : int = Obj.obj v in
    if w >= 8 then deref a ((w lsr 3) - 1)
    else invalid_arg "Link.v_target: no target"
  end
  else state_target_exn (Obj.obj v : _ state)

let v_target_exn l (v : 'a view) =
  if Obj.is_int v then begin
    let w : int = Obj.obj v in
    if w >= 8 then
      match l with
      | T { arena; _ } -> deref arena ((w lsr 3) - 1)
      | B _ -> invalid_arg "Link.v_target_exn: word view on boxed link"
    else invalid_arg "Link.v_target: no target"
  end
  else state_target_exn (Obj.obj v : _ state)

let v_node_in ao (v : 'a view) =
  if Obj.is_int v then begin
    let w : int = Obj.obj v in
    if w >= 8 then
      match ao with
      | Some a -> deref a ((w lsr 3) - 1)
      | None -> invalid_arg "Link.v_node_in: word view without arena"
    else invalid_arg "Link.v_target: no target"
  end
  else state_target_exn (Obj.obj v : _ state)

let v_ptr_in a (n : 'a) : 'a view =
  if a.use_tagged then Obj.repr (word_of a n b_clean) else Obj.repr (Ptr n)

let v_of_state_in ao (st : 'a state) : 'a view =
  match ao with
  | Some a when a.use_tagged -> Obj.repr (encode a st)
  | Some _ | None -> Obj.repr st

let v_state_in ao (v : 'a view) : 'a state =
  if Obj.is_int v then begin
    let w : int = Obj.obj v in
    if w < 8 then if w = w_null then Null else Poison
    else
      match ao with
      | Some a -> decode a w
      | None -> invalid_arg "Link.v_state_in: word view without arena"
  end
  else (Obj.obj v : _ state)

let v_state l (v : 'a view) : 'a state =
  if Obj.is_int v then begin
    let w : int = Obj.obj v in
    if w < 8 then if w = w_null then Null else Poison
    else
      match l with
      | T { arena; _ } -> decode arena w
      | B _ -> invalid_arg "Link.v_state: word view on boxed link"
  end
  else (Obj.obj v : _ state)

(* Encode [v] for writing into link [l], converting between
   representations when the view came from the other kind of link. *)
let repr_for l (v : 'a view) : Obj.t =
  match l with
  | B _ ->
      if Obj.is_int v then begin
        let w : int = Obj.obj v in
        if w = w_null then Obj.repr Null
        else if w = w_poison then Obj.repr Poison
        else invalid_arg "Link: word view written to boxed link"
      end
      else v
  | T { arena; _ } ->
      if Obj.is_int v then v else Obj.repr (encode arena (Obj.obj v : _ state))

let set_v l (v : 'a view) =
  match l with
  | B b -> Atomic.set b (Obj.obj (repr_for l v))
  | T { word; _ } -> Atomic.set word (Obj.obj (repr_for l v))

let cas_v l (expected : 'a view) (desired : 'a view) =
  match l with
  | B b ->
      (* boxed views are the boxes themselves: physical CAS, exactly
         the historical semantics *)
      Atomic.compare_and_set b
        (Obj.obj (repr_for l expected))
        (Obj.obj (repr_for l desired))
  | T { word; _ } ->
      Atomic.compare_and_set word
        (Obj.obj (repr_for l expected))
        (Obj.obj (repr_for l desired))

let exchange_v l (v : 'a view) : 'a view =
  match l with
  | B b -> Obj.repr (Atomic.exchange b (Obj.obj (repr_for l v)))
  | T { word; _ } -> Obj.repr (Atomic.exchange word (Obj.obj (repr_for l v)))

let make_of_view a (v : 'a view) =
  if a.use_tagged then
    let w =
      if Obj.is_int v then (Obj.obj v : int)
      else encode a (Obj.obj v : _ state)
    in
    T { word = Atomic.make w; arena = a }
  else B (Atomic.make (v_state_in (Some a) v))
