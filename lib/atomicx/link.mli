(** Atomic links between nodes, with mark/flag/tag bits and two
    interchangeable runtime representations.

    In the C++ original a link is a raw [std::atomic<Node*>] whose low
    bits carry deletion marks and whose CAS compares machine words.
    Historically this library rendered that as a boxed variant
    ([state]) in an [Atomic.t]; since the word-packing PR a link can
    also be a {e tagged immediate}: one [int Atomic.t] holding the
    target's arena-slot index shifted left 3 with the mark/flag/tag
    bits in the low bits ([Null] = 0, [Poison] = 1).  The tagged form
    is what the paper's O(1) cost model assumes — reads allocate
    nothing and CAS is a genuine word compare-and-set.

    {b Representation choice.}  Links built with {!make} are always
    boxed.  Links built with {!make_in} follow their {!arena}'s
    snapshot of {!tagged} taken at arena creation, so one structure
    never mixes representations mid-life and unconverted structures
    keep the historical semantics regardless of the ablation setting.

    {b CAS semantics.}  On a boxed link, [Atomic.compare_and_set]
    compares the box physically: a competitor writing a fresh box with
    the same logical content makes the CAS fail — a spurious retry,
    indistinguishable from contention, never a safety issue.  On a
    tagged link the comparison is by {e value}: any state that encodes
    to the same word matches, which eliminates that spurious-retry
    class entirely (see DESIGN.md, "Word-packed representation").

    {b Views} are the allocation-free read surface shared by both
    representations: a view of a boxed link is the state value itself
    and a view of a tagged link is the raw word, distinguished at
    runtime by immediacy.  {!view_eq} is physical equality, which on
    boxed views is exactly the historical box-identity validation and
    on tagged views is word equality. *)

type 'a state =
  | Null
  | Ptr of 'a
  | Mark of 'a
  | Flag of 'a
  | Tag of 'a
  | FlagTag of 'a
  | Poison

type 'a t
(** A link.  No longer concretely ['a state Atomic.t]: use the
    accessors below. *)

type 'a view
(** What a link currently holds, in its native representation: the
    state value of a boxed link, the raw word of a tagged link.
    Reading, comparing and bit-twiddling views never allocates.  See
    the {e Views} section below. *)

val tagged : bool ref
(** Ablation switch (default [true]): arenas created while [false]
    produce boxed links, restoring the historical behaviour for every
    structure created under that setting. *)

(** {2 Arenas (handle tables)}

    A tagged word names its target by index into a per-structure
    arena: a lock-free chunked table whose chunks never move (so a
    registration store cannot be lost to growth) with a version-counted
    free-list of recycled slots.  A slot keeps its last occupant until
    reuse — type-stable memory, the same assumption the paper's
    reclamation schemes already make.  Registration happens on the
    thread that still owns the node privately; release is wired through
    {!Memdom.Hdr.t} by the allocator when the node is freed. *)

type 'a arena

val arena :
  slot_of:('a -> int) ->
  on_register:('a -> int -> release:(int -> unit) -> unit) ->
  unit ->
  'a arena
(** [arena ~slot_of ~on_register ()] builds a handle table.  [slot_of]
    reads the node's stored slot (-1 when unregistered); [on_register]
    stores a freshly assigned slot and the [release] callback into the
    node (typically its header), to be invoked once when the node is
    freed. *)

val arena_tagged : 'a arena -> bool
(** The [!tagged] snapshot this arena took at creation. *)

val arena_registered : 'a arena -> int
val arena_released : 'a arena -> int
val arena_live : 'a arena -> int
val arena_capacity : 'a arena -> int
(** Diagnostics: total registrations, released slots, their
    difference, and the bump-allocated slot high-water. *)

(** {2 Construction} *)

val make : 'a state -> 'a t
(** Always boxed. *)

val make_in : 'a arena -> 'a state -> 'a t
(** Representation per [arena_tagged]; registers the target when the
    arena is tagged and the target was never registered. *)

val make_of_view : 'a arena -> 'a view -> 'a t
(** Like {!make_in} but seeded from a view (no decode round-trip). *)

(** {2 State API (compatibility layer)}

    On tagged links, [get]/[exchange] materialize a fresh state box per
    call and [set]/[cas] encode their arguments — correct but
    allocating; hot paths should use views. *)

val get : 'a t -> 'a state
val set : 'a t -> 'a state -> unit

val cas : 'a t -> 'a state -> 'a state -> bool
(** [cas l expected desired] — physical box comparison on boxed links,
    value comparison on tagged links (see the header comment). *)

val exchange : 'a t -> 'a state -> 'a state

val target : 'a state -> 'a option
val is_marked : 'a state -> bool
val is_flagged : 'a state -> bool
val is_tagged : 'a state -> bool
val is_poison : 'a state -> bool

val with_tag : 'a state -> 'a state
(** Set the tag bit, preserving target and flag ([Null]/[Poison]/[Mark]
    are returned unchanged — only BST edge states carry tags). *)

val clean : 'a state -> 'a state
(** Strip mark/flag/tag: [Ptr n] for any state targeting [n], [Null] or
    [Poison] unchanged. *)

val same : 'a state -> 'a state -> bool
(** Logical equality: same constructor and physically-equal target. *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a state -> unit

(** {2 Views — the allocation-free hot path} *)

val view : 'a t -> 'a view
val view_eq : 'a view -> 'a view -> bool
(** Physical equality: box identity for boxed views (the historical
    validation), word equality for tagged views. *)

val v_null : 'a view
val v_is_null : 'a view -> bool
val v_is_poison : 'a view -> bool
val v_is_marked : 'a view -> bool
val v_is_flagged : 'a view -> bool
val v_is_tagged : 'a view -> bool
val v_has_target : 'a view -> bool

val v_is_word : 'a view -> bool
(** [true] iff the view is a tagged word (always [false] for views of
    boxed links). *)

val v_clean : 'a view -> 'a view
(** Strip mark/flag/tag.  Pure arithmetic on words; allocates the clean
    state on boxes (as the boxed algorithms always did). *)

val v_mark : 'a view -> 'a view
(** Set the mark bit on a view with a target; identity otherwise. *)

val v_same : 'a view -> 'a view -> bool
(** {!same} lifted to views: value equality on words, logical equality
    on boxes.  Physically equal views are always [v_same]. *)

val v_target_exn : 'a t -> 'a view -> 'a
(** Dereference through the link's arena (any link of the same
    structure works).  Raises [Invalid_argument] on [Null]/[Poison].
    {b Stability:} the result is only guaranteed to stay the word's
    meaning while the caller's reclamation protection (hazard/era/orc
    count) pins the target — exactly the discipline the schemes already
    enforce for boxed states. *)

val v_node : 'a arena -> 'a view -> 'a
(** Like {!v_target_exn} with an explicit arena. *)

val v_node_in : 'a arena option -> 'a view -> 'a
(** Like {!v_node}; [None] is accepted for views that are provably
    boxed (raises [Invalid_argument] on a word view). *)

val v_ptr_in : 'a arena -> 'a -> 'a view
(** The clean-pointer view of [n] in the arena's representation
    (registers [n] when tagged). *)

val v_of_state_in : 'a arena option -> 'a state -> 'a view
val v_state_in : 'a arena option -> 'a view -> 'a state
val v_state : 'a t -> 'a view -> 'a state

val set_v : 'a t -> 'a view -> unit
val cas_v : 'a t -> 'a view -> 'a view -> bool
(** Physical CAS on boxed links, word CAS on tagged links.  Views
    produced by the other representation are converted on the way in
    (a word view can only be written to a boxed link when it is
    [Null]/[Poison]). *)

val exchange_v : 'a t -> 'a view -> 'a view
