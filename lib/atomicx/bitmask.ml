(* Bits live in an int array, [bits_per_word] per word.  OCaml ints have
   63 bits; using 62 makes [full] exactly [max_int] and keeps every
   intermediate (notably [occupied + 1]) inside the representable
   range. *)
let bits_per_word = 62
let full = max_int (* 62 set bits *)

type t = { words : int array; capacity : int }

let create capacity =
  if capacity < 1 then invalid_arg "Bitmask.create";
  let nwords = (capacity + bits_per_word - 1) / bits_per_word in
  let words = Array.make nwords 0 in
  (* pre-set the bits beyond [capacity] in the last word so acquire can
     never hand out an out-of-range index *)
  let valid_last = capacity - ((nwords - 1) * bits_per_word) in
  if valid_last < bits_per_word then
    words.(nwords - 1) <- full lxor ((1 lsl valid_last) - 1);
  { words; capacity }

let capacity t = t.capacity

let reset t =
  let nwords = Array.length t.words in
  Array.fill t.words 0 nwords 0;
  let valid_last = t.capacity - ((nwords - 1) * bits_per_word) in
  if valid_last < bits_per_word then
    t.words.(nwords - 1) <- full lxor ((1 lsl valid_last) - 1)

(* Index of a one-bit value, by constant-step binary descent. *)
let bit_index b =
  let n = ref 0 and b = ref b in
  if !b lsr 32 <> 0 then begin
    n := !n + 32;
    b := !b lsr 32
  end;
  if !b lsr 16 <> 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b lsr 8 <> 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b lsr 4 <> 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b lsr 2 <> 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b lsr 1 <> 0 then incr n;
  !n

let acquire t ~from =
  let from = if from < 0 then 0 else from in
  let nwords = Array.length t.words in
  let rec go w =
    if w >= nwords then None
    else
      let base = w * bits_per_word in
      (* treat bits below [from] as occupied in the first visited word *)
      let low_mask =
        if from <= base then 0 else (1 lsl (from - base)) - 1
      in
      let occupied = t.words.(w) lor low_mask in
      if occupied = full then go (w + 1)
      else begin
        (* lowest clear bit: [occupied + 1] carries through the trailing
           ones, [lnot occupied] keeps exactly the first zero *)
        let bit = lnot occupied land (occupied + 1) in
        t.words.(w) <- t.words.(w) lor bit;
        Some (base + bit_index bit)
      end
  in
  if from >= t.capacity then None else go (from / bits_per_word)

let release t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitmask.release";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitmask.mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let count t =
  let n = ref 0 in
  for i = 0 to t.capacity - 1 do
    if mem t i then incr n
  done;
  !n
