(** Domain-to-thread-id registry with lifecycle-aware slot recycling.

    All reclamation schemes in the paper index their per-thread state by a
    small dense integer [tid] in [\[0, max_threads)].  OCaml domains have
    no such id, so this registry hands them out: a domain acquires a slot
    on first use (cached in domain-local storage) and releases it when its
    work item finishes, allowing slot reuse across benchmark phases and
    across domain churn.

    Slots move through [Active -> Quarantined -> Free].  The quarantine
    pass between "owner gone" and "slot re-issuable" runs every cleaner
    registered with {!on_quarantine} — the reclamation schemes use this to
    force-clear the departing tid's hazards and publish its pending retire
    list to an orphan pool — so a reused tid never inherits stale
    protections, parked handovers or retire lists.  Each completed pass
    bumps the slot's {!generation}.

    {b Churn safety.}  Short-lived domains should wrap their work in
    {!with_tid} (release on return or exception).  Independently, the
    first [tid ()] in a domain installs a [Domain.at_exit] hook that
    releases the slot when the domain terminates, so even a worker that
    never calls [release] cannot leak its slot.  Only a domain that dies
    without running its at-exit hooks (killed process) — or one simulated
    with {!abandon} — leaves an Active slot behind; such slots are
    reclaimed by {!force_release} once the owner is provably dead (e.g.
    after [Domain.join]).

    The registry is process-global: every scheme instance sizes its arrays
    with [max_threads] and indexes them with [tid ()]. *)

val max_threads : int
(** Upper bound on simultaneously registered domains (128). *)

exception Too_many_threads of string
(** Raised by [tid ()] when every slot is Active or Quarantined.  The
    message reports the active count, quarantined count, watermark and
    [max_threads], and points at the churn-safe alternatives
    ({!with_tid}, release-on-exit, {!force_release}). *)

val tid : unit -> int
(** The calling domain's thread id, acquiring a slot on first call (and
    installing the at-exit release hook).  Raises {!Too_many_threads} if
    all slots are taken. *)

val release : unit -> unit
(** Give the calling domain's slot back: mark it Quarantined, run the
    {!on_quarantine} cleaners with this tid (the domain-local id is
    still valid while they run, so a scheme's cleaner may operate on the
    departing thread's own state), then free it with a bumped
    generation.  The next [tid ()] from this domain acquires a fresh
    slot.  No-op if the domain holds no slot; idempotent, so the
    [with_tid] finaliser and the at-exit hook compose. *)

val with_tid : (int -> 'a) -> 'a
(** [with_tid f] runs [f (tid ())] and releases the slot afterwards, even
    on exception.  Worker domains should wrap their body in this. *)

val on_quarantine : (int -> unit) -> unit
(** Register a lifecycle cleaner, called with the departing tid during
    every quarantine pass ({!release} and {!force_release}).  Cleaners
    are held {b weakly}: the caller must keep the closure reachable for
    as long as it wants callbacks (schemes store it in their own record,
    so the entry dies with the scheme).  Cleaners run outside the
    registry lock and must tolerate any registered tid, including ones
    their scheme never saw.  If a cleaner raises, the remaining cleaners
    still run, the slot is still freed, and the first exception is
    re-raised. *)

val on_neutralize : (int -> unit) -> unit
(** Register a neutralize hook, called with the victim tid after a
    successful {!neutralize} generation bump.  Same weak-reference
    contract as {!on_quarantine}.  Unlike quarantine cleaners, a
    neutralize hook runs while the victim {e may still be alive}: it
    must touch only the victim's {b atomic} state (hazard slots, epoch
    announcements, handover slots drained with [Atomic.exchange]) and
    never its owner-private plain fields (retire lists, scratch
    buffers). *)

val neutralize : int -> bool
(** [neutralize i] expires slot [i]'s published protections without
    freeing the slot: bumps the generation while the state stays
    Active, then runs the {!on_neutralize} hooks.  Protection scans
    validated against the old generation no longer count, and the
    watchdog row for [i] stops matching, so a validated stall clears.
    An owner that wakes detects the bump through its scheme's
    neutralization handshake, discards the invalid protection and
    retries.  Returns [false] if the slot was not Active or the CAS
    lost a race (owner released concurrently).  Call only on a stall
    {e validated} by the watchdog — neutralizing a merely slow thread
    is safe but forces it to redo its operation. *)

val force_release : int -> bool
(** [force_release i] quarantines and frees slot [i] on behalf of an
    owner that died without releasing it (e.g. simulated abrupt death
    via {!abandon}).  Runs the same cleaner pass as {!release}, from the
    calling thread.  Returns [false] if the slot was not Active.

    {b Precondition:} the owner must be provably dead (its domain
    joined) — forcing a live thread's slot hands its tid to someone else
    while it is still publishing protections. *)

val abandon : unit -> int
(** Simulate abrupt domain death for the chaos harness: drop the
    domain-local slot reference {i without} touching the slot state, so
    the slot stays Active with whatever hazards the caller published,
    and the at-exit hook becomes a no-op.  Returns the abandoned tid, or
    [-1] if the domain held no slot.  The slot is unreachable until
    {!force_release} reclaims it. *)

val active : unit -> int
(** Number of currently Active slots (diagnostics).  Scans only up to
    the high-water mark, not all [max_threads] slots. *)

val in_use : int -> bool
(** [in_use i] is true while slot [i] is Active or Quarantined — i.e.
    its protection rows may still carry published hazards or undrained
    handovers.  Protection scans skip rows that are not in use, so scan
    cost tracks the {e live} slot population rather than the monotone
    {!high_water} mark: after a churn burst recycles its slots, scans
    shrink back down.

    Skipping a row observed Free is safe under OCaml's SC atomics: a
    protection published {e before} the scanner's state read requires
    the slot's Free→Active transition to also precede it, so the
    scanner would have seen the slot in use; a protection published
    {e after} the read belongs to a thread whose validation re-reads
    the link and finds the object already unlinked (retire requires
    unreachability first), so it retries without ever dereferencing the
    freed object.  Drain paths (scheme [flush]/[orphan]) deliberately
    do {b not} skip: a racing scanner can park a handover into a row
    just after its quarantine drain, and only an exhaustive walk
    recovers it. *)

val generation : int -> int
(** Completed quarantine passes for this slot — bumps on every
    [Quarantined -> Free] transition, so a recycled tid carries a higher
    generation than its previous life. *)

val slot_state : int -> [ `Free | `Active | `Quarantined | `Staged ]
(** Current lifecycle state of a slot (tests, diagnostics).  [`Staged]
    slots were claimed by {!reserve} on behalf of threads that never
    acquire: in use for scan purposes, never issued by [tid ()]. *)

val high_water : unit -> int
(** [1 + highest tid ever handed out] — helper scans (e.g. the
    Kogan–Petrank state array) iterate to this instead of
    [max_threads]. *)

val registered : unit -> int
(** Synonym of {!high_water}, under the name the reclamation schemes
    use: the monotonic registered-thread bound.  Every per-thread slot
    ever written belongs to a tid in [\[0, registered ())] — slots are
    recycled but the mark never decreases — so hazard and handover scans
    bounded by it see every live protection while skipping the
    [max_threads - registered ()] slots no thread ever touched. *)

val reserve : int -> unit
(** [reserve n]: make tids [< n] visible to every protection scan —
    the high-water mark is raised to at least [n] and every slot below
    [n] still Free is marked [`Staged], a one-way transition that keeps
    it {!in_use} forever without ever being issued by [tid ()].  For
    whitebox tests that stage other threads' slots directly (explicit
    [~tid] without acquiring a slot); never needed in normal use, where
    ids come from {!tid}.  Raises [Invalid_argument] if [n] is negative
    or exceeds {!max_threads}. *)
