(** Domain-to-thread-id registry.

    All reclamation schemes in the paper index their per-thread state by a
    small dense integer [tid] in [\[0, max_threads)].  OCaml domains have
    no such id, so this registry hands them out: a domain acquires a slot
    on first use (cached in domain-local storage) and releases it when its
    work item finishes, allowing slot reuse across benchmark phases.

    The registry is process-global: every scheme instance sizes its arrays
    with [max_threads] and indexes them with [tid ()]. *)

val max_threads : int
(** Upper bound on simultaneously registered domains (128). *)

exception Too_many_threads

val tid : unit -> int
(** The calling domain's thread id, acquiring a slot on first call.
    Raises {!Too_many_threads} if all slots are taken. *)

val release : unit -> unit
(** Give the calling domain's slot back.  The next [tid ()] from this
    domain acquires a fresh slot.  No-op if the domain holds no slot. *)

val with_tid : (int -> 'a) -> 'a
(** [with_tid f] runs [f (tid ())] and releases the slot afterwards, even
    on exception.  Worker domains should wrap their body in this. *)

val active : unit -> int
(** Number of currently registered domains (diagnostics). *)

val high_water : unit -> int
(** [1 + highest tid ever handed out] — helper scans (e.g. the
    Kogan–Petrank state array) iterate to this instead of
    [max_threads]. *)

val registered : unit -> int
(** Synonym of {!high_water}, under the name the reclamation schemes
    use: the monotonic registered-thread bound.  Every per-thread slot
    ever written belongs to a tid in [\[0, registered ())] — slots are
    recycled but the mark never decreases — so hazard and handover scans
    bounded by it see every live protection while skipping the
    [max_threads - registered ()] slots no thread ever touched. *)

val reserve : int -> unit
(** [reserve n]: raise the high-water mark so tids [< n] fall inside
    every scan bounded by {!registered}.  For whitebox tests that stage
    other threads' slots directly (explicit [~tid] without acquiring a
    slot); never needed in normal use, where ids come from {!tid}.
    Raises [Invalid_argument] if [n] is negative or exceeds
    {!max_threads}. *)
