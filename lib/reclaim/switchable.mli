(** Mode-switching scheme wrapper — EBR speed, HP robustness, migrated
    at a safe boundary.

    Embeds one {!Ebr} and one {!Hp} instance and routes protection and
    retirement between them under a three-state machine driven by the
    adaptive {!Controller}:

    - {b Fast} (0): epoch-protected plain-load reads, EBR retires — the
      performance ceiling while the workload is calm.
    - {b Escalating} (1): a grace period.  New operations publish
      hazards; retires still go to EBR.  Entered by {!Make.escalate},
      left by {!Make.try_complete} once every active operation
      provably began after the flip.
    - {b Robust} (2): hazard-published reads, HP retires — unreclaimed
      memory bounded O(Ht²) even under a stalled reader (which the
      armed neutralizing reclaimer expires; adaptive mode is the
      controller {e plus} neutralization).

    Safety rests on one invariant: {e every} operation announces an
    epoch at [begin_op] in every mode, so EBR-side frees are always
    covered, and the escalation grace period (minimum announcement
    strictly above the recorded flip epoch) proves every active reader
    is hazard-publishing before HP-side frees begin.  See the [.ml]
    header for the full argument. *)

val fast : int
val escalating : int
val robust : int

module Make (N : Scheme_intf.NODE) : sig
  include Scheme_intf.S with type node = N.t

  (** {2 Mode machine — the controller's surface} *)

  val mode : t -> int
  (** Current mode: {!fast}, {!escalating} or {!robust}. *)

  val escalate : t -> bool
  (** Begin migrating to the robust policy: [fast → escalating] and
      record the flip epoch.  Also attaches the background channel (if
      one was given to [set_background]) to the EBR side — channel
      routing is mode-gated, so calm structures drain inline and only
      pressured ones ship batches to the reclaimer.  Returns [false]
      if not in [fast]. *)

  val try_complete : t -> bool
  (** One grace-period check (helping the epoch along): promotes
      [escalating → robust] and returns [true] exactly when every
      active operation announced an epoch above the flip — i.e. every
      active reader publishes hazards.  Call repeatedly; a stalled
      reader parks this until neutralization expires it. *)

  val relax : t -> bool
  (** Return to the fast policy, immediately ([robust → fast], or
      abandoning an in-flight [escalating → fast]), detaching the EBR
      side's background channel again.  HP-side residue is only ever
      hazard-protected and drains from the owners' retire paths and
      {!Scheme_intf.S.flush}. *)

  val escalations : t -> int
  (** Completed [escalating → robust] promotions (monotone). *)

  val relaxations : t -> int
  (** Completed relaxations (monotone). *)

  val stall_age_max : t -> int
  (** Oldest in-flight guard age in watchdog ticks across both
      embedded instances — the controller's escalation signal. *)
end
