(* The adaptive reclamation controller: a low-rate feedback loop that
   watches each target structure's reclamation signals and turns the
   knobs the rest of this library exposes — the Tuning record (retire
   threshold scale, background batch), the Reclaimer's drain cadence,
   the Channel's depth bound, and the Switchable wrapper's policy mode.

   Policy is AIMD with hysteresis.  Pressure (unreclaimed population
   above the high-water mark, or a guard stalled past the age bound)
   reacts multiplicatively and immediately: halve the threshold scale,
   halve the background batch, halve the drain interval, halve the
   channel bound, and climb the escalation ladder (Fast → Escalating →
   Robust).  Calm must be sustained — [calm_ticks] consecutive quiet
   observations — before the controller relaxes, and relief is
   additive: scale +25 pct-points, batch +8, interval and bound doubled
   back toward their resting values, mode relaxed to Fast.  The
   asymmetry is deliberate: memory blow-ups are expensive and fast,
   throughput recovery is cheap and gradual, and the hysteresis keeps a
   phase-boundary workload from flapping between policies.

   The loop itself is driven either by [tick] (deterministic tests,
   bench harnesses that interleave control with load) or by [start]'s
   background domain, which self-clocks the watchdog exactly like the
   Reclaimer: advance the tick only if nobody else (a Sampler) moved it
   since the last pass. *)

open Atomicx

(* Decision codes carried in the Ctrl event's [uid] field. *)
let d_tighten = 0
let d_widen = 1
let d_escalate = 2
let d_complete = 3
let d_relax = 4

let decision_name = function
  | 0 -> "tighten"
  | 1 -> "widen"
  | 2 -> "escalate"
  | 3 -> "complete"
  | 4 -> "relax"
  | _ -> "?"

type target = {
  label : string;
  tuning : Tuning.t;
  unreclaimed : unit -> int;
  stall_age : unit -> int;
  mode : unit -> int; (* -1: no mode machine (tuning-only target) *)
  escalate : unit -> bool;
  try_complete : unit -> bool;
  relax : unit -> bool;
  (* hysteresis state: consecutive calm observations *)
  mutable calm : int;
}

let target ?(label = "default") ?mode ?escalate ?try_complete ?relax ~tuning
    ~unreclaimed ~stall_age () =
  let none_b = fun () -> false in
  {
    label;
    tuning;
    unreclaimed;
    stall_age;
    mode = (match mode with Some f -> f | None -> fun () -> -1);
    escalate = Option.value escalate ~default:none_b;
    try_complete = Option.value try_complete ~default:none_b;
    relax = Option.value relax ~default:none_b;
    calm = 0;
  }

type config = {
  unreclaimed_hi : int;
  unreclaimed_lo : int;
  stall_age_hi : int;
  calm_ticks : int;
}

let default_config =
  {
    unreclaimed_hi = 4096;
    unreclaimed_lo = 256;
    stall_age_hi = 3;
    calm_ticks = 4;
  }

(* Drain-interval relief never widens past the resting default — the
   controller may only make the reclaimer more eager than the static
   deployment, not lazier. *)
let min_interval = 0.0002
let max_interval = Tuning.default_drain_interval
let min_bound = 64

type t = {
  cfg : config;
  targets : target list;
  reclaimer : Reclaimer.t option;
  channel : Channel.t option;
  resting_bound : int;
  sink : Obs.Sink.t;
  ticks : int Atomic.t;
  decisions : int Atomic.t;
  escalations : int Atomic.t;
  relaxations : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable metrics : (string * (unit -> int)) list;
}

let decide t ~tid ~decision ~value =
  Atomic.incr t.decisions;
  Obs.Sink.on_ctrl t.sink ~tid ~decision ~value

let tighten t ~tid tgt =
  tgt.calm <- 0;
  let tn = tgt.tuning in
  Tuning.set_scale_pct tn (Tuning.scale_pct tn / 2);
  Tuning.set_bg_batch tn (Tuning.bg_batch tn / 2);
  (* memory pressure also defers resizable-map directory doublings:
     a higher load factor trades chain length for footprint *)
  Tuning.set_load_factor tn (Tuning.load_factor tn * 2);
  (match t.reclaimer with
  | Some r -> Reclaimer.set_interval r (max min_interval (Reclaimer.interval r /. 2.))
  | None -> ());
  (match t.channel with
  | Some ch -> Channel.set_bound ch (max min_bound (Channel.bound ch / 2))
  | None -> ());
  decide t ~tid ~decision:d_tighten ~value:(Tuning.scale_pct tn)

let widen t ~tid tgt =
  let tn = tgt.tuning in
  Tuning.set_scale_pct tn (Tuning.scale_pct tn + 25);
  Tuning.set_bg_batch tn (Tuning.bg_batch tn + 8);
  (if Tuning.load_factor tn > Tuning.default_load_factor then
     Tuning.set_load_factor tn
       (max Tuning.default_load_factor (Tuning.load_factor tn / 2)));
  (match t.reclaimer with
  | Some r -> Reclaimer.set_interval r (min max_interval (Reclaimer.interval r *. 2.))
  | None -> ());
  (match t.channel with
  | Some ch -> Channel.set_bound ch (min t.resting_bound (Channel.bound ch * 2))
  | None -> ());
  decide t ~tid ~decision:d_widen ~value:(Tuning.scale_pct tn)

let step_target t ~tid tgt =
  let unreclaimed = tgt.unreclaimed () in
  let stall = tgt.stall_age () in
  let pressured =
    unreclaimed >= t.cfg.unreclaimed_hi || stall >= t.cfg.stall_age_hi
  in
  let calm = unreclaimed <= t.cfg.unreclaimed_lo && stall = 0 in
  if pressured then begin
    tighten t ~tid tgt;
    (* escalation ladder: request the robust policy, then help the
       grace period along on every subsequent tick *)
    match tgt.mode () with
    | 0 ->
        if tgt.escalate () then
          decide t ~tid ~decision:d_escalate ~value:Switchable.escalating
    | 1 ->
        if tgt.try_complete () then begin
          Atomic.incr t.escalations;
          decide t ~tid ~decision:d_complete ~value:Switchable.robust
        end
    | _ -> ()
  end
  else begin
    (* a pending grace period completes regardless of pressure: the
       flip already made new readers pay for hazards, so finishing is
       strictly better than lingering half-switched *)
    (if tgt.mode () = 1 && tgt.try_complete () then begin
       Atomic.incr t.escalations;
       decide t ~tid ~decision:d_complete ~value:Switchable.robust
     end);
    if calm then begin
      tgt.calm <- tgt.calm + 1;
      if tgt.calm >= t.cfg.calm_ticks then begin
        tgt.calm <- 0;
        widen t ~tid tgt;
        if tgt.mode () >= 1 && tgt.relax () then begin
          Atomic.incr t.relaxations;
          decide t ~tid ~decision:d_relax ~value:Switchable.fast
        end
      end
    end
    else tgt.calm <- 0
  end

let tick t =
  let tid = Registry.tid () in
  List.iter (fun tgt -> step_target t ~tid tgt) t.targets;
  Atomic.incr t.ticks

let run t ~interval =
  Registry.with_tid @@ fun _tid ->
  let last_tick = ref (Obs.Watchdog.tick ()) in
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf interval;
    (* self-clock the stall watchdog when no sampler is advancing it
       (same amortized idiom as the Reclaimer) *)
    let now = Obs.Watchdog.tick () in
    if now = !last_tick then last_tick := Obs.Watchdog.advance ()
    else last_tick := now;
    tick t
  done

let create ?(cfg = default_config) ?reclaimer ?channel
    ?(sink = Obs.Sink.null) ?(registry = Obs.Metrics.default) targets =
  let t =
    {
      cfg;
      targets;
      reclaimer;
      channel;
      resting_bound =
        (match channel with Some ch -> Channel.bound ch | None -> 0);
      sink;
      ticks = Atomic.make 0;
      decisions = Atomic.make 0;
      escalations = Atomic.make 0;
      relaxations = Atomic.make 0;
      stop_flag = Atomic.make false;
      domain = None;
      metrics = [];
    }
  in
  let counters =
    [
      ("orcgc_ctrl_ticks_total", fun () -> Atomic.get t.ticks);
      ("orcgc_ctrl_decisions_total", fun () -> Atomic.get t.decisions);
    ]
  and gauges =
    List.concat_map
      (fun tgt ->
        let labels = [ ("target", tgt.label) ] in
        let gs =
          [
            ("orcgc_ctrl_scale_pct", fun () -> Tuning.scale_pct tgt.tuning);
            ("orcgc_ctrl_bg_batch", fun () -> Tuning.bg_batch tgt.tuning);
            ("orcgc_ctrl_calm_streak", fun () -> tgt.calm);
          ]
        in
        List.iter
          (fun (nm, f) -> Obs.Metrics.probe registry ~labels nm f)
          gs;
        gs)
      targets
  in
  List.iter
    (fun (nm, f) -> Obs.Metrics.probe registry ~counter:true nm f)
    counters;
  t.metrics <- counters @ gauges;
  t

let start ?(interval = 0.001) t =
  match t.domain with
  | Some _ -> invalid_arg "Controller.start: already running"
  | None ->
      Atomic.set t.stop_flag false;
      t.domain <- Some (Domain.spawn (fun () -> run t ~interval))

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_flag true;
      Domain.join d;
      t.domain <- None

let ticks t = Atomic.get t.ticks
let decisions t = Atomic.get t.decisions
let escalations t = Atomic.get t.escalations
let relaxations t = Atomic.get t.relaxations
