(** Stalled-guard neutralization — the cooperative analog of DEBRA+'s
    signal-based neutralization (Brown, PODC'15 / arXiv 1712.01044).

    When the watchdog validates a stall past the configured age, the
    reclaimer {!fire}s: the victim's pending flag rises, its registry
    generation is bumped ([Atomicx.Registry.neutralize]) — clearing the
    watchdog row — and every scheme's [on_neutralize] hook force-clears
    the victim's {e atomic} protection state, so the parked guard stops
    pinning memory.  A victim that wakes detects the flag at its next
    scheme entry point and gets {!Neutralized} (the longjmp analog):
    it must discard every protection it held and restart the operation
    through the ordinary protect loop.

    Structure code does not usually catch {!Neutralized} — the harness
    or application-level retry loop does.  A thread that is never
    neutralized never pays more than one shared atomic load per entry
    point, and nothing at all while no reclaimer is {!arm}ed. *)

exception Neutralized of int
(** Raised at the victim's next raising entry point after its guard was
    expired; payload = its tid.  Protections held before the raise are
    invalid.  Restart the operation. *)

val arm : unit -> unit
(** Refcounted global switch: while armed, scheme entry points test the
    per-tid pending flag.  The reclaimer arms on start, disarms on
    stop. *)

val disarm : unit -> unit
val enabled : unit -> bool

val fire :
  ?sink:Obs.Sink.t -> by:int -> tid:int -> age:int -> unit -> bool
(** [fire ~by ~tid ~age ()] neutralizes [tid] (a stall of [age] ticks
    validated by the watchdog, executed by thread [by]): pending flag,
    then generation bump + scheme hooks, then the [Neutralize] sink
    event.  Returns [false] — and retracts the flag — if the slot was
    no longer Active (victim released concurrently; nothing to do).
    Only call on watchdog-validated stalls: neutralizing a live thread
    is safe but forces it to redo its current operation. *)

val check : tid:int -> unit
(** The raising handshake: if [tid] is flagged, acknowledge and raise
    {!Neutralized}.  Inlined into begin_op / protect / retire paths.
    One shared atomic load when disarmed. *)

val ack : tid:int -> unit
(** The silent handshake for entry points that must not raise (end_op /
    clear run on finalizer paths): acknowledge the flag, drop nothing. *)

val is_pending : tid:int -> bool
val neutralizations : unit -> int
val acknowledgements : unit -> int

val pending_count : unit -> int
(** Flags raised but not yet acknowledged (gauge). *)

val register_metrics :
  ?registry:Obs.Metrics.t -> unit -> (string * (unit -> int)) list
(** Register [orcgc_neutralizations_total], [orcgc_neutralize_acks_total]
    and the [orcgc_neutralize_pending] gauge as weak probes; the caller
    must keep the returned closures alive (reclaimer handle does). *)
