(** 2GEIBR — the two-global-epoch variant of interval-based reclamation
    (Wen et al. [30]), the one IBR flavour the paper credits with
    lock-free progress and bounded memory (Table 1).

    Each thread maintains a single *reservation interval* [lo, hi] of
    eras instead of per-pointer hazards: [begin_op] pins both ends at the
    current era and every validated read extends [hi].  A retired node
    whose lifetime interval [birth_era, death_era] overlaps no
    reservation is free.  Reads are cheap (no store per pointer once the
    era is pinned) at the price of the O(#L·H·t²)-class bound: every
    object alive during a reservation stays pinned. *)

open Atomicx

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    lo : int Atomic.t array; (* reservation lower bound, [tid] *)
    hi : int Atomic.t array; (* reservation upper bound, [tid] *)
    retired : node list ref array;
    retired_count : int ref array;
    retire_count : int ref array;
    scratch : Scan_set.t array; (* [tid]; per-scan reservation snapshots *)
    (* cached R = 2·H·t, refreshed on crossing (same amortization as
       hp/he).  The scan itself is O(t) — one interval per thread — but
       the *bound* the batch buys is still proportional to the live
       population, so a flat batch under-amortizes small runs and
       over-retains large ones. *)
    threshold : int Atomic.t;
    mutable tuning : Tuning.t;
    era_freq : int;
    counters : Scheme_intf.Counters.t;
    orphans : node Orphan.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Channel.t option Atomic.t; (* background drain route *)
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "ibr"
  let max_hps t = t.hps
  let no_reservation = max_int

  let begin_op t ~tid =
    Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    let e = Memdom.Alloc.era t.alloc in
    Atomic.set t.lo.(tid) e;
    Atomic.set t.hi.(tid) e;
    Obs.Sink.guard_begin t.sink ~tid

  let end_op t ~tid =
    Atomic.set t.lo.(tid) no_reservation;
    Atomic.set t.hi.(tid) 0;
    Neutralize.ack ~tid;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  (* Extend the reservation to cover the read: loop until the link is
     re-read under an era already covered by [hi]. *)
  let get_protected t ~tid ~idx:_ link =
    Neutralize.check ~tid;
    let rec loop () =
      let st = Link.get link in
      let e = Memdom.Alloc.era t.alloc in
      if e <= Atomic.get t.hi.(tid) then begin
        (* reservation already covers the read — IBR's native elision;
           counted (not traced: this is the common case) so bench can
           compare read sides across schemes *)
        if !Scan_set.elide_publish then
          Scheme_intf.Counters.elided t.counters ~tid;
        st
      end
      else begin
        Atomic.set t.hi.(tid) e;
        loop ()
      end
    in
    loop ()

  (* Same interval-extension protocol on the view plane; the node plays
     no part in a reservation, so the loop allocates nothing on either
     representation (hoisted to functor level: an inner [let rec] would
     cost a closure per call). *)
  let rec gpv_loop t ~tid link =
    let v = Link.view link in
    let e = Memdom.Alloc.era t.alloc in
    if e <= Atomic.get t.hi.(tid) then begin
      if !Scan_set.elide_publish then
        Scheme_intf.Counters.elided t.counters ~tid;
      v
    end
    else begin
      Atomic.set t.hi.(tid) e;
      gpv_loop t ~tid link
    end

  let get_protected_v t ~tid ~idx:_ link =
    Neutralize.check ~tid;
    gpv_loop t ~tid link

  let protect_raw _t ~tid:_ ~idx:_ _n = ()
  let copy_protection _t ~tid ~src:_ ~dst:_ = Neutralize.check ~tid
  let clear _t ~tid:_ ~idx:_ = ()

  let reserved_by_any t ~visited n =
    let h = N.hdr n in
    let birth = Memdom.Hdr.birth_era h and death = Memdom.Hdr.death_era h in
    let found = ref false in
    (try
       (* Free rows carry no interval reservation (cleared on
          quarantine) — skip them, see [Registry.in_use] *)
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then begin
           incr visited;
           let lo = Atomic.get t.lo.(it) and hi = Atomic.get t.hi.(it) in
           if birth <= hi && death >= lo then begin
             found := true;
             raise_notrace Exit
           end
         end
       done
     with Exit -> ());
    !found

  let free_node t ~tid n =
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Snapshot every live reservation interval once; a node is pinned
     iff its [birth, death] lifetime intersects some reservation, which
     the sealed interval set (sorted by lower bound, running-max upper
     bounds) answers in O(log t). *)
  let build_snapshot t ~tid ~visited =
    let s = t.scratch.(tid) in
    Scan_set.reset s;
    for it = 0 to Registry.registered () - 1 do
      if Registry.in_use it then begin
        incr visited;
        let lo = Atomic.get t.lo.(it) and hi = Atomic.get t.hi.(it) in
        if lo <= hi then Scan_set.add_interval s ~lo ~hi
      end
    done;
    Scan_set.seal_intervals s;
    Scheme_intf.Counters.snapshot_built t.counters ~tid;
    Obs.Sink.on_snapshot t.sink ~tid ~entries:(Scan_set.size s)

  let scan t ~tid =
    (match Orphan.adopt t.orphans t.sink ~tid with
    | [] -> ()
    | adopted ->
        t.retired.(tid) := List.rev_append adopted !(t.retired.(tid));
        t.retired_count.(tid) := !(t.retired_count.(tid)) + List.length adopted);
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let keep = ref [] and kept = ref 0 and release = ref [] in
    let reserved =
      if !Scan_set.snapshot_scan then begin
        build_snapshot t ~tid ~visited;
        let s = t.scratch.(tid) in
        fun n ->
          let h = N.hdr n in
          Scan_set.overlaps s ~lo:(Memdom.Hdr.birth_era h)
            ~hi:(Memdom.Hdr.death_era h)
          && begin
               Scheme_intf.Counters.snapshot_hit t.counters ~tid;
               true
             end
      end
      else fun n -> reserved_by_any t ~visited n
    in
    List.iter
      (fun n ->
        if reserved n then begin
          keep := n :: !keep;
          incr kept
        end
        else release := n :: !release)
      !(t.retired.(tid));
    t.retired.(tid) := !keep;
    t.retired_count.(tid) := !kept;
    List.iter (free_node t ~tid) !release;
    Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  (* The R = 2·H·t amortization ratio over the *Active* thread count,
     cached and refreshed only when the cached value is crossed —
     amortized O(1) per retire (see hp.ml for why Active, not the
     monotone registered high-water). *)
  let refresh_threshold t =
    Atomic.set t.threshold (Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~tid =
    !(t.retired_count.(tid)) >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         !(t.retired_count.(tid)) >= Atomic.get t.threshold
       end

  (* Background drain — see [Hp.drain_background].  Lifetime intervals
     are header stamps, so the shipped nodes carry everything the
     reclaimer-side scan needs. *)
  let drain_background t ~tid ch =
    let batch = !(t.retired.(tid)) and n = !(t.retired_count.(tid)) in
    t.retired.(tid) := [];
    t.retired_count.(tid) := 0;
    let job ~tid:rtid =
      t.retired.(rtid) := List.rev_append batch !(t.retired.(rtid));
      t.retired_count.(rtid) := !(t.retired_count.(rtid)) + n;
      scan t ~tid:rtid
    in
    if not (Channel.send ch ~tid ~count:n job) then begin
      t.retired.(tid) := batch;
      t.retired_count.(tid) := n;
      scan t ~tid
    end

  let set_background t ch = Atomic.set t.bg ch

  let retire t ~tid n =
    Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    Memdom.Hdr.set_death_era h (Memdom.Alloc.era t.alloc);
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := n :: !(t.retired.(tid));
    incr t.retired_count.(tid);
    incr t.retire_count.(tid);
    if !(t.retire_count.(tid)) mod t.era_freq = 0 then
      ignore (Memdom.Alloc.bump_era t.alloc);
    if threshold_crossed t ~tid then
      match Atomic.get t.bg with
      | None -> scan t ~tid
      | Some ch -> drain_background t ~tid ch

  (* Quarantine cleaner: retract the departing tid's reservation
     interval (a leftover [lo, hi] would pin every overlapping lifetime
     forever — the §2 stalled-reader failure made permanent) and
     publish its retired list for adoption. *)
  let orphan t ~tid =
    Atomic.set t.lo.(tid) no_reservation;
    Atomic.set t.hi.(tid) 0;
    refresh_threshold t;
    match !(t.retired.(tid)) with
    | [] -> ()
    | batch ->
        t.retired.(tid) := [];
        t.retired_count.(tid) := 0;
        Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  (* Neutralize hook: retract the victim's reservation interval — a
     parked [lo, hi] pins every overlapping lifetime, the exact failure
     the watchdog flagged. *)
  let neutralize_clear t ~tid =
    Atomic.set t.lo.(tid) no_reservation;
    Atomic.set t.hi.(tid) 0;
    refresh_threshold t

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        lo =
          Array.init Registry.max_threads (fun _ ->
              Atomic.make no_reservation);
        hi = Array.init Registry.max_threads (fun _ -> Atomic.make 0);
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        retired_count = Array.init Registry.max_threads (fun _ -> ref 0);
        retire_count = Array.init Registry.max_threads (fun _ -> ref 0);
        scratch = Array.init Registry.max_threads (fun _ -> Scan_set.create ());
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Tuning.create ();
        era_freq = 16;
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () -> Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)

  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let flush t =
    for tid = 0 to Registry.registered () - 1 do
      scan t ~tid
    done
end
