(** The single knob surface for reclamation aggressiveness.

    Every threshold that used to be a scattered per-scheme constant —
    the hp/ptb/he/ibr R caches, ebr's flat scan threshold, the orc
    family's background submit-buffer size — is derived from one of
    these records, so the adaptive {!Controller} has exactly one place
    to turn and a static deployment has exactly one place to read the
    defaults from.

    Knobs are atomics: the controller domain writes them while mutator
    retire paths read them, and a torn update is impossible (each knob
    is one word).  Reads on the retire hot path are amortized — schemes
    cache the derived threshold and refresh it only on crossing,
    quarantine or neutralization, exactly as they cached the 2·H·t
    product before. *)

type t

(** {2 Documented defaults} *)

val default_r_scale_pct : int
(** 100 — the paper-faithful R = 2·H·t, unscaled. *)

val min_r_scale_pct : int
(** 25 — the tightest the controller may clamp R (¼ of the paper
    floor: smaller batches, more scans, lower unreclaimed bound). *)

val max_r_scale_pct : int
(** 400 — the loosest the controller may stretch R (4× the paper
    floor: bigger batches, fewer scans, higher unreclaimed bound). *)

val default_r_floor : int
(** 2 — R never drops below this, whatever the scale and live thread
    count say (a zero threshold would scan on every retire).  Kept at
    the edge so the unscaled threshold is exactly the paper's 2·H·t. *)

val default_bg_batch : int
(** 32 — the orc-family background submit-buffer size (objects
    buffered thread-locally before a channel send). *)

val min_bg_batch : int
(** 8 *)

val max_bg_batch : int
(** 256 *)

val default_drain_interval : float
(** 0.002 s — the background reclaimer's pass period
    ({!Reclaimer.start}'s default). *)

val default_load_factor : int
(** 4 — target keys-per-bucket before a resizable map doubles its
    bucket directory (split-ordered maps read this per grow check). *)

val min_load_factor : int
(** 1 — the most aggressive growth the controller may request. *)

val max_load_factor : int
(** 64 — the laziest: under memory pressure the controller can raise
    the knob to defer directory doublings and bound bucket-array
    growth, trading longer chains for a smaller footprint. *)

(** {2 Records} *)

val create :
  ?r_scale_pct:int ->
  ?r_floor:int ->
  ?bg_batch:int ->
  ?load_factor:int ->
  unit ->
  t
(** A fresh knob record, defaults as documented above.  Out-of-range
    arguments are clamped, never rejected. *)

val scale_pct : t -> int

val set_scale_pct : t -> int -> unit
(** Clamped to [[min_r_scale_pct, max_r_scale_pct]]. *)

val bg_batch : t -> int

val set_bg_batch : t -> int -> unit
(** Clamped to [[min_bg_batch, max_bg_batch]]. *)

val load_factor : t -> int

val set_load_factor : t -> int -> unit
(** Clamped to [[min_load_factor, max_load_factor]].  Read on the map's
    grow-check path (one atomic load, amortized over adds). *)

val r_floor : t -> int

val threshold : t -> hps:int -> int
(** The scaled retire-batch threshold
    [max r_floor (2·hps·max 1 (Registry.active ()) · scale_pct / 100)]
    — the paper's R = 2·H·t with the controller's bounded multiplier
    applied.  O(registered): call on crossing / quarantine /
    neutralization and cache, not per retire. *)
