(* See the mli for the model.  One word per knob, so controller writes
   and mutator reads need no locking; clamping lives here so no caller
   can push a scheme outside the bounded multiplier the safety argument
   in DESIGN.md §15 assumes. *)

open Atomicx

let default_r_scale_pct = 100
let min_r_scale_pct = 25
let max_r_scale_pct = 400
let default_r_floor = 2
let default_bg_batch = 32
let min_bg_batch = 8
let max_bg_batch = 256
let default_drain_interval = 0.002
let default_load_factor = 4
let min_load_factor = 1
let max_load_factor = 64

type t = {
  scale_pct : int Atomic.t;
  bg_batch : int Atomic.t;
  load_factor : int Atomic.t;
  r_floor : int;
}

let clamp lo hi v = max lo (min hi v)

let create ?(r_scale_pct = default_r_scale_pct) ?(r_floor = default_r_floor)
    ?(bg_batch = default_bg_batch) ?(load_factor = default_load_factor) () =
  {
    scale_pct =
      Atomic.make (clamp min_r_scale_pct max_r_scale_pct r_scale_pct);
    bg_batch = Atomic.make (clamp min_bg_batch max_bg_batch bg_batch);
    load_factor =
      Atomic.make (clamp min_load_factor max_load_factor load_factor);
    r_floor = max 1 r_floor;
  }

let scale_pct t = Atomic.get t.scale_pct

let set_scale_pct t v =
  Atomic.set t.scale_pct (clamp min_r_scale_pct max_r_scale_pct v)

let bg_batch t = Atomic.get t.bg_batch
let set_bg_batch t v = Atomic.set t.bg_batch (clamp min_bg_batch max_bg_batch v)
let load_factor t = Atomic.get t.load_factor

let set_load_factor t v =
  Atomic.set t.load_factor (clamp min_load_factor max_load_factor v)

let r_floor t = t.r_floor

let threshold t ~hps =
  let base = 2 * hps * max 1 (Registry.active ()) in
  max t.r_floor (base * Atomic.get t.scale_pct / 100)
