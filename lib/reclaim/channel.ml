(* Lock-free MPSC transfer channel: the conveyor belt between mutator
   retire paths and the background reclaimer domain.

   Producers push {!job}s — closures that move a swapped-out retire
   batch into the running thread's per-tid state and scan — onto a
   Treiber stack (CAS-prepend with [Atomicx.Backoff] under contention,
   the same shape as the [Memdom.Pool] remote-free transfer stack but
   generalized over closures instead of header chains).  The consumer
   drains with one [Atomic.exchange] and runs the batch in FIFO order.

   Fault tolerance lives in [send]'s refusal paths: a channel that is
   [close]d (reclaimer dead or stopping) or whose depth — counted in
   retired objects, not jobs — is at the bound (reclaimer behind)
   rejects the job, and the caller reclaims inline.  That refusal is
   the backpressure mechanism: mutators never block on the channel and
   never queue unboundedly ahead of a slow consumer.

   [drain] is deliberately not consumer-private: after a reclaimer dies
   the recovery path (controller, chaos harness, [flush]) drains the
   backlog from any registered thread.  Concurrent drains are safe —
   the exchange hands each job to exactly one drainer. *)

open Atomicx

type job = { count : int; run : tid:int -> unit }

type t = {
  jobs : job list Atomic.t;
  depth : int Atomic.t;  (* objects currently queued, advisory bound *)
  bound : int Atomic.t;  (* controller-tunable; shrink-under-load just
                            makes sends refuse until the drain catches
                            up — depth above the new bound is legal *)
  closed : bool Atomic.t;
  sent : Shard.t;
  fallbacks : Shard.t;
  drained_objs : Shard.t;
  drains : Shard.t;
  keep : (string * (unit -> int)) list;  (* weak metric probes, kept here *)
}

let default_bound = 1024

let create ?(bound = default_bound) ?(registry = Obs.Metrics.default) () =
  if bound < 1 then invalid_arg "Channel.create: bound < 1";
  let depth = Atomic.make 0 in
  let sent = Shard.create () in
  let fallbacks = Shard.create () in
  let drained_objs = Shard.create () in
  let drains = Shard.create () in
  let counters =
    [
      ("orcgc_bg_sent_total", fun () -> Shard.get sent);
      ("orcgc_bg_fallback_total", fun () -> Shard.get fallbacks);
      ("orcgc_bg_drained_total", fun () -> Shard.get drained_objs);
      ("orcgc_bg_drains_total", fun () -> Shard.get drains);
    ]
  and gauges = [ ("orcgc_bg_depth", fun () -> Atomic.get depth) ] in
  List.iter
    (fun (name, f) -> Obs.Metrics.probe registry ~counter:true name f)
    counters;
  List.iter (fun (name, f) -> Obs.Metrics.probe registry name f) gauges;
  {
    jobs = Atomic.make [];
    depth;
    bound = Atomic.make bound;
    closed = Atomic.make false;
    sent;
    fallbacks;
    drained_objs;
    drains;
    keep = counters @ gauges;
  }

let push t j =
  let cur = Atomic.get t.jobs in
  if not (Atomic.compare_and_set t.jobs cur (j :: cur)) then begin
    let b = Backoff.create () in
    let rec retry () =
      Backoff.once b;
      let cur = Atomic.get t.jobs in
      if not (Atomic.compare_and_set t.jobs cur (j :: cur)) then retry ()
    in
    retry ()
  end

let send t ~tid ~count run =
  if Atomic.get t.closed || Atomic.get t.depth + count > Atomic.get t.bound
  then begin
    Shard.incr t.fallbacks ~tid;
    false
  end
  else begin
    (* Reserve depth before the push so a racing send observes the
       combined load; the bound stays advisory (two racing senders can
       overshoot by one batch each), which is all backpressure needs. *)
    ignore (Atomic.fetch_and_add t.depth count);
    push t { count; run };
    Shard.add t.sent ~tid count;
    true
  end

let drain t ~tid =
  match Atomic.get t.jobs with
  | [] -> 0
  | _ ->
      let batch = List.rev (Atomic.exchange t.jobs []) in
      Shard.incr t.drains ~tid;
      List.fold_left
        (fun n j ->
          (* Depth drops as each job leaves the queue, releasing
             backpressure progressively during a long drain.  The job
             runs after the decrement: once handed to [run], its
             objects are the running scheme's liability, not the
             channel's. *)
          ignore (Atomic.fetch_and_add t.depth (-j.count));
          Shard.add t.drained_objs ~tid j.count;
          j.run ~tid;
          n + j.count)
        0 batch

let close t = Atomic.set t.closed true
let reopen t = Atomic.set t.closed false
let closed t = Atomic.get t.closed
let depth t = Atomic.get t.depth
let bound t = Atomic.get t.bound

let set_bound t b =
  if b < 1 then invalid_arg "Channel.set_bound: bound < 1";
  Atomic.set t.bound b
let sent t = Shard.get t.sent
let fallbacks t = Shard.get t.fallbacks
let drained t = Shard.get t.drained_objs
let keep_alive t = ignore (Sys.opaque_identity t.keep)
