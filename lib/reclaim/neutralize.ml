(* Stalled-guard neutralization: the reaction half of the watchdog.

   DEBRA+ (Brown, PODC'15) neutralizes a stalled thread with a POSIX
   signal whose handler longjmps the victim back to a checkpoint.  OCaml
   domains have no equivalent, so this is the cooperative analog:

   - [fire] first raises the victim's per-tid pending flag, then bumps
     its registry generation ([Registry.neutralize]), which (a) clears
     the watchdog row (its recorded generation no longer matches), and
     (b) runs each scheme's [on_neutralize] hook, which force-clears the
     victim's {e atomic} protection state — hazard slots, epoch/era
     announcements, parked handovers — so the stalled guard stops
     pinning memory.

   - the victim, whenever it wakes, hits the handshake at its next
     scheme entry point: [check ~tid] (inlined into begin_op /
     get_protected / retire) sees the pending flag, acknowledges it,
     and raises {!Neutralized} — the role the signal's longjmp plays in
     DEBRA+.  The operation restarts from scratch, republishing through
     the scheme's ordinary protect loop; any protection validated
     before neutralization is dead (its slot was cleared) and must not
     be trusted.

   The flag-before-bump ordering matters: the hooks clear hazards only
   after the flag is visible, so a victim entering any scheme entry
   point after its hazards were cleared is guaranteed to see the flag.
   The residual window — a victim that validated a protection {e
   before} the flag rose and dereferences it {e before} its next entry
   point — is the cooperative granularity bound (DESIGN.md §14): in
   OCaml it is type-safe (nodes are GC-managed; "free" recycles the
   header, never unmaps), and the link-revalidation protocol every
   scheme already runs bounds the logical damage to a retried op.

   Armed-ness is a global refcount so the mutator-side check costs one
   shared atomic load when no reclaimer is running — the same
   pay-only-when-on shape as the watchdog clock. *)

open Atomicx

exception Neutralized of int

let armed = Atomic.make 0
let pending = Array.init Registry.max_threads (fun _ -> Atomic.make false)
let fired = Shard.create ()
let acked = Shard.create ()

(* Slot recycling must not leak a stale flag to the next owner: clear on
   every quarantine pass.  Module-level binding = strong root, so the
   weak hook entry never evaporates. *)
let quarantine_hook tid = Atomic.set pending.(tid) false
let () = Registry.on_quarantine quarantine_hook

let arm () = Atomic.incr armed

let disarm () =
  let rec dec () =
    let v = Atomic.get armed in
    if v > 0 && not (Atomic.compare_and_set armed v (v - 1)) then dec ()
  in
  dec ()

let enabled () = Atomic.get armed > 0
let is_pending ~tid = Atomic.get pending.(tid)

(* The scheme-side handshake. [check] raises; [ack] is the silent
   variant for entry points that must not raise (end_op runs on
   finalizer paths).  Both are free when no reclaimer is armed. *)
let ack ~tid =
  if Atomic.get armed > 0 && Atomic.get pending.(tid) then begin
    Atomic.set pending.(tid) false;
    Shard.incr acked ~tid
  end

let check ~tid =
  if Atomic.get armed > 0 && Atomic.get pending.(tid) then begin
    Atomic.set pending.(tid) false;
    Shard.incr acked ~tid;
    raise (Neutralized tid)
  end

let fire ?(sink = Obs.Sink.null) ~by ~tid ~age () =
  Atomic.set pending.(tid) true;
  if Registry.neutralize tid then begin
    Shard.incr fired ~tid:by;
    Obs.Sink.on_neutralize sink ~tid:by ~stalled:tid ~age;
    true
  end
  else begin
    (* Not Active (owner released / was force-released concurrently):
       nothing to expire, and the flag must not ambush the slot's next
       owner. *)
    Atomic.set pending.(tid) false;
    false
  end

let neutralizations () = Shard.get fired
let acknowledgements () = Shard.get acked

let pending_count () =
  let n = ref 0 in
  for tid = 0 to Registry.registered () - 1 do
    if Atomic.get pending.(tid) then incr n
  done;
  !n

let register_metrics ?(registry = Obs.Metrics.default) () =
  let counters =
    [
      ("orcgc_neutralizations_total", fun () -> Shard.get fired);
      ("orcgc_neutralize_acks_total", fun () -> Shard.get acked);
    ]
  and gauges = [ ("orcgc_neutralize_pending", pending_count) ] in
  List.iter
    (fun (name, f) -> Obs.Metrics.probe registry ~counter:true name f)
    counters;
  List.iter (fun (name, f) -> Obs.Metrics.probe registry name f) gauges;
  counters @ gauges
