(** Common interface of manual memory-reclamation schemes (§2, §3).

    Every scheme — the baselines here (hazard pointers, pass-the-buck,
    epoch-based, hazard eras) and the paper's pass-the-pointer in
    [Orc_core.Ptp] — exposes the same three operations the paper names:
    *protect* (via {!S.get_protected}), *retire* and *clear*, plus the
    per-operation brackets that quiescence-based schemes need.

    Schemes are functors over the node type so that the hazard arrays are
    fully typed: no [Obj], no existential trickery.  A data structure
    instantiates [Make (N)] with its own node record, which only has to
    expose its embedded {!Memdom.Hdr.t}. *)

open Atomicx

(** Unified introspection record: every scheme counts the same four
    monotonic quantities, so Table-1 bound measurements and forensics
    no longer special-case OrcGC's richer stats. *)
type stats = {
  retires : int;  (** objects handed to [retire] *)
  frees : int;  (** objects returned to the allocator *)
  scans : int;  (** protection-scan passes (HP scan, PTP handover walk,
                    PTB liberate, EBR/HE/IBR reclaim pass) *)
  scan_slots : int;  (** protection slots visited by those passes *)
  snapshot_builds : int;
      (** scan-set snapshots built (one per batching scan when
          {!Scan_set.snapshot_scan} is on; 0 under the legacy walk) *)
  snapshot_hits : int;
      (** retired nodes a snapshot membership test found protected *)
  elided : int;
      (** protection publishes skipped because the slot already held
          the target (see {!Scan_set.elide_publish}) *)
}

let pp_stats_record fmt s =
  Format.fprintf fmt
    "retires=%d frees=%d unreclaimed=%d scans=%d scan-slots=%d snapshots=%d \
     snapshot-hits=%d elided=%d"
    s.retires s.frees (s.retires - s.frees) s.scans s.scan_slots
    s.snapshot_builds s.snapshot_hits s.elided

(** The per-thread-sharded counter bundle behind {!stats}, shared by all
    scheme implementations (one padded cell per registry slot, merged on
    read — the [Atomicx.Shard] soundness caveat applies: a concurrent
    read is exact to within one in-flight delta per thread). *)
module Counters = struct
  type t = {
    retires : Shard.t;
    frees : Shard.t;
    scans : Shard.t;
    scan_slots : Shard.t;
    snapshot_builds : Shard.t;
    snapshot_hits : Shard.t;
    elided : Shard.t;
  }

  let create () =
    {
      retires = Shard.create ();
      frees = Shard.create ();
      scans = Shard.create ();
      scan_slots = Shard.create ();
      snapshot_builds = Shard.create ();
      snapshot_hits = Shard.create ();
      elided = Shard.create ();
    }

  let retired t ~tid = Shard.incr t.retires ~tid
  let freed t ~tid = Shard.incr t.frees ~tid

  let scanned t ~tid ~slots =
    Shard.incr t.scans ~tid;
    Shard.add t.scan_slots ~tid slots

  let snapshot_built t ~tid = Shard.incr t.snapshot_builds ~tid
  let snapshot_hit t ~tid = Shard.incr t.snapshot_hits ~tid
  let elided t ~tid = Shard.incr t.elided ~tid

  let stats t : stats =
    {
      retires = Shard.get t.retires;
      frees = Shard.get t.frees;
      scans = Shard.get t.scans;
      scan_slots = Shard.get t.scan_slots;
      snapshot_builds = Shard.get t.snapshot_builds;
      snapshot_hits = Shard.get t.snapshot_hits;
      elided = Shard.get t.elided;
    }

  (* retires and frees are monotonic and frees never outruns retires in
     quiescence, so the difference is the unreclaimed population.  The
     reads must be sequenced retires-first: both counters only grow, so
     reading [frees] second can only shrink the difference, and the
     report is bounded by the true population at the first read.  (The
     one-expression form read [frees] first — OCaml evaluates operands
     right to left — and a descheduled reader could see the whole
     workload retire in between, reporting thousands of phantom
     pending objects on a single-core host.) *)
  let unreclaimed t =
    let r = Shard.get t.retires in
    let f = Shard.get t.frees in
    max 0 (r - f)
end

(* Register one scheme instance's unified stats, unreclaimed population
   and watchdog stall age as probes in a metrics registry, labelled by
   scheme name.  Instances of the same scheme aggregate by summation at
   sample time (the [Metrics.probe] contract).  Returns the probe
   closures: they are held weakly, so the scheme MUST store the result
   in its own record — the same keep-alive idiom as the quarantine
   cleaner. *)
let register_metrics ?(registry = Obs.Metrics.default) ~scheme
    ~(stats : unit -> stats) ~(unreclaimed : unit -> int)
    ~(wd : Obs.Watchdog.t) () =
  let labels = [ ("scheme", scheme) ] in
  let counters =
    [
      ("orcgc_retires_total", fun () -> (stats ()).retires);
      ("orcgc_frees_total", fun () -> (stats ()).frees);
      ("orcgc_scans_total", fun () -> (stats ()).scans);
      ("orcgc_scan_slots_total", fun () -> (stats ()).scan_slots);
      ("orcgc_snapshot_builds_total", fun () -> (stats ()).snapshot_builds);
      ("orcgc_snapshot_hits_total", fun () -> (stats ()).snapshot_hits);
      ("orcgc_elided_total", fun () -> (stats ()).elided);
    ]
  and gauges =
    [
      ("orcgc_unreclaimed", unreclaimed);
      ("orcgc_stall_age_max", fun () -> Obs.Watchdog.stall_age_max wd);
    ]
  in
  List.iter
    (fun (name, f) -> Obs.Metrics.probe registry ~labels ~counter:true name f)
    counters;
  List.iter (fun (name, f) -> Obs.Metrics.probe registry ~labels name f) gauges;
  counters @ gauges

module type NODE = sig
  type t

  val hdr : t -> Memdom.Hdr.t
  (** The object header embedded in the node. *)
end

module type S = sig
  type node
  type t

  val name : string
  (** Short name used in benchmark tables ("hp", "ptp", ...). *)

  val create : ?max_hps:int -> ?sink:Obs.Sink.t -> Memdom.Alloc.t -> t
  (** [create alloc] builds scheme state sized for
      [Atomicx.Registry.max_threads] threads and [max_hps] hazardous
      pointers per thread (the paper's [H], default 8).  Freed nodes are
      returned to [alloc].  [sink] receives lifecycle events
      (retire/scan/guard) and defaults to [Memdom.Alloc.sink alloc], so
      a structure traced through its allocator needs no extra
      plumbing.  [create] also registers the scheme's {!orphan} hook
      with [Atomicx.Registry.on_quarantine], so domain exit and
      [force_release] clean up the departing tid automatically for the
      scheme's whole lifetime. *)

  val begin_op : t -> tid:int -> unit
  (** Enter a data-structure operation.  No-op for pointer-based schemes;
      epoch/era schemes mark the thread active here.

      {b Neutralization handshake} (see {!Neutralize}): while a
      neutralizing reclaimer is armed, every scheme checks the caller's
      pending flag at its entry points.  [begin_op], [end_op] and
      [clear] acknowledge silently (nothing published yet / finalizer
      paths must not raise); [get_protected], [get_protected_v],
      [copy_protection] and [retire] acknowledge and raise
      [Neutralize.Neutralized] — every protection validated before the
      neutralization is gone, so the operation must restart.  Unarmed,
      the check is one shared atomic load. *)

  val end_op : t -> tid:int -> unit
  (** Leave the operation: clears all this thread's protections. *)

  val get_protected :
    t -> tid:int -> idx:int -> node Atomicx.Link.t -> node Atomicx.Link.state
  (** Read [link] and protect its target in hazard slot [idx], looping
      until the published protection is validated against a re-read
      (Algorithm 2 lines 4–11).  Returns the validated link state, mark
      included.  Lock-free: a retry implies another thread made
      progress. *)

  val get_protected_v :
    t -> tid:int -> idx:int -> node Atomicx.Link.t -> node Atomicx.Link.view
  (** {!get_protected} on the allocation-free view plane: same protocol
      (publish, validate against a re-read, loop), but the result is the
      link's native {!Atomicx.Link.view} — a raw word for tagged links —
      and on tagged links the whole loop performs no minor-heap
      allocation for the pointer-publishing schemes that matter to the
      paper's cost model (hp, and the orc schemes' internal variants).
      On word views the validated publication additionally re-derefs the
      word after publishing: value equality of words does not imply the
      slot's meaning was stable, so the scheme confirms the decoded node
      is unchanged before trusting the protection (see DESIGN.md,
      "Word-packed representation"). *)

  val protect_raw : t -> tid:int -> idx:int -> node option -> unit
  (** Publish [node] at [idx] without validation — only legal when the
      caller already owns a safe reference (e.g. a node it just
      allocated and has not yet shared). *)

  val copy_protection : t -> tid:int -> src:int -> dst:int -> unit
  (** Duplicate the protection held at [src] into [dst] (both slots of
      the calling thread).  This is how traversals rotate their hazard
      slots: unlike [protect_raw] it preserves protection even for nodes
      already retired — essential for era-based schemes, where a freshly
      published era would *not* cover a node whose death era has already
      passed. *)

  val clear : t -> tid:int -> idx:int -> unit
  (** Drop the protection at [idx]. *)

  val retire : t -> tid:int -> node -> unit
  (** Hand an unreachable node to the scheme; it will be freed once no
      thread protects it.  Precondition (same as HP/PTB/HE, §3.1): the
      node is no longer reachable from any global reference. *)

  val tuning : t -> Tuning.t
  (** The knob record this instance derives its thresholds from.  Each
      [create] makes a fresh record at the documented defaults, so
      tuning one structure never perturbs another; the adaptive
      controller adjusts a structure through this handle. *)

  val set_tuning : t -> Tuning.t -> unit
  (** Swap in a shared knob record (e.g. one record steering several
      structures as a group).  Takes effect from the next threshold
      refresh — crossing, quarantine or neutralization. *)

  val set_background : t -> Channel.t option -> unit
  (** Background drain mode.  With [Some ch], a retire that crosses the
      scan threshold packages the swapped-out batch as a {!Channel.job}
      and sends it to the reclaimer instead of scanning inline; if the
      send is refused (channel closed or full — reclaimer dead or
      behind) the batch is restored and scanned inline, so backpressure
      and reclaimer death degrade to exactly the [None] behavior.
      [None] (the default) reclaims inline.  Setup/teardown-only knob:
      flip it while the scheme is quiescent or accept that racing
      retires may use either path for one batch.  [flush] only covers
      per-thread state — stop or recover the reclaimer first so queued
      jobs are replayed. *)

  val orphan : t -> tid:int -> unit
  (** Lifecycle cleaner for a departing thread: force-clear every
      protection slot [tid] published, drain anything parked on it, and
      publish its pending retire list to the scheme's orphan pool (or
      re-retire it through the handover path), so the next owner of a
      recycled [tid] starts from clean state and the dead thread's
      garbage is adopted by survivors within O(1) scans.  Registered
      with [Registry.on_quarantine] by [create]; runs on the departing
      thread during [Registry.release] and on the reclaiming thread
      during [force_release] (the owner provably dead).  Idempotent and
      safe for tids the scheme never saw. *)

  val orphaned : t -> int
  (** Nodes awaiting adoption in the orphan pool (diagnostics; always 0
      for schemes that drain through handover instead of pooling). *)

  val unreclaimed : t -> int
  (** Nodes retired but not yet freed — the quantity the paper's memory
      bounds constrain: O(Ht) for PTP, O(Ht²) for HP/PTB, unbounded for
      EBR. *)

  val stats : t -> stats
  (** Monotonic observability counters (sharded per thread, merged on
      read; exact to within one in-flight delta per thread). *)

  val pp_stats : Format.formatter -> t -> unit

  val flush : t -> unit
  (** Quiesced best-effort drain (all worker threads stopped): free
      whatever is no longer protected.  Used by tests and shutdown to
      verify leak-freedom; not part of the concurrent algorithm. *)

  val max_hps : t -> int
end

module type MAKER = functor (N : NODE) -> S with type node = N.t
