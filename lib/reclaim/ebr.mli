(** Epoch-based reclamation (Fraser [10], Hart et al. [13]) — the
    quiescence baseline.

    Threads announce the global epoch on [begin_op] and go quiescent on
    [end_op]; a node retired in epoch [e] is freed once every active
    thread has moved past it.  Protection is nearly free, but a single
    stalled reader blocks all reclamation: blocking retire, unbounded
    memory (Table 1).  Included as the performance ceiling the lock-free
    schemes are measured against. *)

module Make (N : Scheme_intf.NODE) : sig
  include Scheme_intf.S with type node = N.t

  (** {2 Extended surface for the {!Switchable} wrapper}

      Beyond {!Scheme_intf.S}: the adaptive scheme wrapper embeds an
      ebr instance as its fast policy and drives a grace period over
      the epoch machinery when escalating to the robust policy. *)

  val global_epoch : t -> int

  val min_announced_now : t -> int
  (** Minimum epoch announced by any in-use thread; [max_int] when
      every thread is quiescent.  O(registered). *)

  val try_advance_epoch : t -> unit
  (** One epoch-advance attempt (helping): bumps the global epoch when
      every active announcement has caught up.  Grace-period loops call
      this so the epoch keeps moving without waiting for a retire. *)

  val pending : t -> tid:int -> int
  (** Length of [tid]'s local retired list (owner-read only). *)

  val stall_age_max : t -> int
  (** Oldest in-flight guard age in watchdog ticks (0 when none) — the
      stall signal the adaptive controller escalates on. *)

  val scan : t -> tid:int -> unit
  (** One epoch-distance reclaim pass over [tid]'s retired list.
      Epoch-safe from any thread for [tid]-owned state — only [tid] (or
      a thread that provably owns the slot) may call it. *)
end
