(** Lock-free orphan pool for dead threads' pending retire lists.

    When a thread's registry slot is quarantined (domain exit, or
    [Registry.force_release] after abrupt death), each scheme publishes
    the departing tid's un-scanned retire list here as one batch;
    surviving threads adopt the whole pool at the start of their next
    scan, so a dead thread's garbage is reclaimed within O(1) scans
    instead of leaking forever.  The element type is per-scheme (EBR
    keeps its retire epochs, everyone else keeps bare nodes).

    Publish is a CAS-prepend, adopt a single exchange: a batch is
    adopted exactly once, by exactly one survivor.  Both emit sink
    events ([Orphan]/[Adopt]); adoption also records publish→adopt
    latency into the sink's adopt histogram. *)

type 'a t

val create : unit -> 'a t

val publish : 'a t -> Obs.Sink.t -> tid:int -> 'a list -> unit
(** Publish a departing thread's pending items as one batch ([tid] is
    the departing thread, for event attribution).  No-op on [[]]. *)

val adopt : 'a t -> Obs.Sink.t -> tid:int -> 'a list
(** Take every pending batch ([tid] is the adopter), concatenated.
    Returns [[]] without writing when the pool is empty. *)

val pending : 'a t -> int
(** Items currently awaiting adoption (diagnostics). *)
