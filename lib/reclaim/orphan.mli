(** Re-export of {!Memdom.Orphan} under the name the reclamation
    schemes use.  The pool lives in [memdom] (so the allocator layer
    can orphan dying domains' free-lists through the exact same
    machinery); see {!Memdom.Orphan} for the model: publish is a
    CAS-prepend by the departing thread, adopt a single exchange by one
    survivor, both emitting sink events with publish→adopt latency. *)

type 'a t = 'a Memdom.Orphan.t

val create : unit -> 'a t

val publish : 'a t -> Obs.Sink.t -> tid:int -> 'a list -> unit
(** Publish a departing thread's pending items as one batch ([tid] is
    the departing thread, for event attribution).  No-op on [[]]. *)

val adopt : 'a t -> Obs.Sink.t -> tid:int -> 'a list
(** Take every pending batch ([tid] is the adopter), concatenated.
    Returns [[]] without writing when the pool is empty. *)

val pending : 'a t -> int
(** Items currently awaiting adoption (diagnostics). *)
