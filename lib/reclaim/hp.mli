(** Hazard pointers (Michael [19]) — manual baseline scheme.

    Protection publishes the pointer in a per-thread hazard slot and
    re-validates against the source link.  Retiring pushes the node onto
    a thread-local retired list; once the list exceeds a scan threshold
    the thread scans all published hazards and frees every retired node
    not currently protected.  Memory bound: each thread can hold a
    retired list proportional to [H*t], hence O(Ht²) unreclaimed overall
    — the quadratic bound the paper's PTP improves on (Table 1). *)

module Make (N : Scheme_intf.NODE) : sig
  include Scheme_intf.S with type node = N.t

  (** {2 Extended surface for the {!Switchable} wrapper}

      Beyond {!Scheme_intf.S}: the adaptive scheme wrapper embeds an hp
      instance as its robust policy and needs to drain a thread's own
      retired list to fixpoint after relaxing back to the fast policy. *)

  val pending : t -> tid:int -> int
  (** Length of [tid]'s local retired list (owner-read only). *)

  val stall_age_max : t -> int
  (** Oldest in-flight guard age in watchdog ticks (0 when none). *)

  val scan : t -> tid:int -> unit
  (** One hazard scan of [tid]'s retired list.  Safe concurrently with
      other threads' operations — it reads the shared hazard planes and
      touches only [tid]-local plain state — but only [tid] (or a
      thread that provably owns the slot) may call it. *)
end
