(** Lock-free MPSC transfer channel between mutators and reclaimers.

    Mutator retire paths that cross their scan threshold package the
    swapped-out retire batch as a {e job} — a closure that splices the
    batch into the {b running} thread's per-tid state and scans — and
    {!send} it; a background reclaimer domain ({!Reclaimer}) {!drain}s
    and runs the jobs off the mutator critical path.  Producers use the
    [Memdom.Pool] transfer-stack idiom (Treiber CAS-prepend, with
    [Atomicx.Backoff] under contention); the consumer takes the whole
    stack with one [Atomic.exchange] and replays it in FIFO order.

    {b Graceful degradation is the caller's contract:} [send] returns
    [false] — never blocks, never queues past the bound — when the
    channel is closed (reclaimer dead/stopping) or its depth (in
    retired objects) would exceed the bound (reclaimer behind).  The
    caller must then reclaim inline, exactly as if background mode were
    off.  Rejections are counted as fallbacks. *)

type t

type job = { count : int; run : tid:int -> unit }
(** [count] retired objects travel with the closure; [run ~tid] must
    splice them into tid-local state of the thread executing it and
    may scan.  Jobs must not assume which thread runs them: the
    reclaimer normally, but any thread may {!drain} during recovery. *)

val default_bound : int
(** 1024 objects. *)

val create : ?bound:int -> ?registry:Obs.Metrics.t -> unit -> t
(** A fresh open channel.  [bound] (default {!default_bound}) caps the
    queued-object depth, triggering backpressure.  Registers the
    channel-depth gauge [orcgc_bg_depth] and the
    [orcgc_bg_{sent,fallback,drained,drains}_total] counters as weak
    probes in [registry] (default [Obs.Metrics.default]); the channel
    record keeps them alive. *)

val send : t -> tid:int -> count:int -> (tid:int -> unit) -> bool
(** [send t ~tid ~count run] enqueues the job unless the channel is
    closed or [count] more objects would exceed the bound, in which
    case it returns [false] and the caller reclaims inline.
    Lock-free; [tid] is the sending thread (sharded counters). *)

val drain : t -> tid:int -> int
(** Take the whole backlog and run it FIFO on the calling thread;
    returns objects processed.  Callable by any registered thread —
    the reclaimer on its tick, or a recovery path after the reclaimer
    died.  Concurrent drains hand each job to exactly one drainer. *)

val close : t -> unit
(** Make every subsequent [send] fail (degrade to inline).  Jobs
    already queued stay queued: the closer should {!drain} afterwards.
    Idempotent. *)

val reopen : t -> unit
(** Clear the closed flag (a restarted reclaimer resumes service). *)

val closed : t -> bool

val depth : t -> int
(** Objects currently queued. *)

val bound : t -> int

val set_bound : t -> int -> unit
(** Retune the depth bound (the {!Controller}'s backpressure knob).
    Raising it admits more queued work immediately; shrinking it below
    the current depth refuses every send until the drain catches up —
    objects already queued are never dropped.  Raises [Invalid_argument]
    below 1. *)

val sent : t -> int
val fallbacks : t -> int
val drained : t -> int

val keep_alive : t -> unit
(** [Sys.opaque_identity] on the probe closures — call sites that drop
    the channel record early can pin the metrics explicitly. *)
