(* Per-thread scratch snapshot of a protection table: sorted keys plus
   an optional parallel payload/interval array.  Owned by the scanning
   thread for the duration of one scan; storage is recycled across
   scans, so steady-state scans allocate nothing. *)

let snapshot_scan = ref true
let elide_publish = ref true

type t = {
  mutable keys : int array;
  mutable vals : int array; (* payloads, interval his, or running maxima *)
  mutable len : int;
}

let initial_capacity = 64

let create () =
  {
    keys = Array.make initial_capacity 0;
    vals = Array.make initial_capacity 0;
    len = 0;
  }

let reset t = t.len <- 0
let size t = t.len

let grow t =
  let cap = 2 * Array.length t.keys in
  let keys = Array.make cap 0 and vals = Array.make cap 0 in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.keys <- keys;
  t.vals <- vals

let add_kv t ~key ~value =
  if t.len = Array.length t.keys then grow t;
  t.keys.(t.len) <- key;
  t.vals.(t.len) <- value;
  t.len <- t.len + 1

let add t key = add_kv t ~key ~value:0
let add_interval t ~lo ~hi = add_kv t ~key:lo ~value:hi

(* In-place insertion sort over both parallel arrays.  Snapshot sizes
   are H·t (≤ a few hundred); insertion sort keeps the scratch
   allocation-free, and published protections arrive roughly in row
   order so runs are mostly sorted already. *)
let seal t =
  let keys = t.keys and vals = t.vals in
  for i = 1 to t.len - 1 do
    let k = keys.(i) and v = vals.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && keys.(!j) > k do
      keys.(!j + 1) <- keys.(!j);
      vals.(!j + 1) <- vals.(!j);
      decr j
    done;
    keys.(!j + 1) <- k;
    vals.(!j + 1) <- v
  done

let seal_intervals t =
  seal t;
  (* vals.(i) becomes max of the first i+1 interval upper bounds: the
     largest [hi] among all intervals whose [lo] sorts at or before i *)
  let vals = t.vals in
  for i = 1 to t.len - 1 do
    if vals.(i - 1) > vals.(i) then vals.(i) <- vals.(i - 1)
  done

(* Index of the largest key <= [k], or -1. *)
let floor_idx t k =
  let lo = ref 0 and hi = ref t.len in
  (* invariant: keys.(lo-1) <= k < keys.(hi) (virtual sentinels) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.keys.(mid) <= k then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* Index of the smallest key >= [k], or [len]. *)
let ceil_idx t k =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let mem t k =
  let i = floor_idx t k in
  i >= 0 && t.keys.(i) = k

let find t k =
  let i = floor_idx t k in
  if i >= 0 && t.keys.(i) = k then t.vals.(i) else -1

let mem_range t ~lo ~hi =
  let i = ceil_idx t lo in
  i < t.len && t.keys.(i) <= hi

let overlaps t ~lo ~hi =
  (* among intervals starting at or below [hi], does the farthest-
     reaching one extend to [lo]? *)
  let i = floor_idx t hi in
  i >= 0 && t.vals.(i) >= lo
