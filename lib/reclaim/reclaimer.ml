(* The background reclaimer domain: consumes the transfer channel,
   neutralizes validated stalls, and dies gracefully.

   Each pass: drain the channel (running the queued scan jobs on this
   domain's own registry tid — every scheme's scan touches only
   operating-tid-local scratch plus global atomics, so a batch retired
   by tid 3 reclaims fine under the reclaimer's tid); then, when
   neutralization is configured, run a watchdog check and fire on every
   validated stall.

   Clocking is amortized onto whoever is already ticking: if an
   [Obs.Sampler] is advancing the watchdog clock, the reclaimer rides
   its ticks; if the tick did not move since the last pass (no sampler),
   the reclaimer advances it itself.  Neutralization therefore works
   standalone, and never double-clocks next to a live metrics plane.

   Death is part of the contract.  [stop] closes the channel first —
   every in-flight mutator send from then on refuses and reclaims
   inline — then joins and recovers the backlog.  [kill] is the chaos
   path: the domain exits abruptly, channel left open and backlog
   unrecovered, exactly what a crashed reclaimer looks like; mutators
   degrade via the depth bound, and [recover] reconciles the backlog
   once the harness decides the reclaimer is dead. *)

open Atomicx

type t = {
  channel : Channel.t;
  stop_flag : bool Atomic.t;
  kill_flag : bool Atomic.t;
  dead : bool Atomic.t;
  passes : int Atomic.t;
  interval_us : int Atomic.t;  (* pass period; controller-tunable *)
  neutralize_age : int option;
  domain : unit Domain.t;
  keep : (string * (unit -> int)) list;
}

exception Killed

let run ~interval_us ~neutralize_age ~sink ~stop_flag ~kill_flag ~passes
    channel =
  Registry.with_tid @@ fun tid ->
  let last_tick = ref (Obs.Watchdog.tick ()) in
  (try
     while not (Atomic.get stop_flag) do
       Unix.sleepf (float_of_int (Atomic.get interval_us) /. 1e6);
       if Atomic.get kill_flag then raise Killed;
       ignore (Channel.drain channel ~tid);
       (match neutralize_age with
       | None -> ()
       | Some age ->
           let now = Obs.Watchdog.tick () in
           if now = !last_tick then last_tick := Obs.Watchdog.advance ()
           else last_tick := now;
           List.iter
             (fun (stalled, stall_age) ->
               if stalled <> tid then
                 ignore
                   (Neutralize.fire ~sink ~by:tid ~tid:stalled ~age:stall_age
                      ()))
             (Obs.Watchdog.check ~max_age:age ()));
       Atomic.incr passes
     done;
     (* Graceful exit: the channel is already closed (see [stop]), so
        this drain observes every job whose send succeeded. *)
     ignore (Channel.drain channel ~tid)
   with Killed -> ())

let start ?(interval = Tuning.default_drain_interval) ?neutralize_age
    ?(sink = Obs.Sink.null) ?(registry = Obs.Metrics.default) channel =
  let stop_flag = Atomic.make false in
  let kill_flag = Atomic.make false in
  let dead = Atomic.make false in
  let passes = Atomic.make 0 in
  let interval_us = Atomic.make (max 1 (int_of_float (interval *. 1e6))) in
  let keep =
    match neutralize_age with
    | Some _ ->
        Neutralize.arm ();
        Neutralize.register_metrics ~registry ()
    | None -> []
  in
  let domain =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.set dead true)
          (fun () ->
            run ~interval_us ~neutralize_age ~sink ~stop_flag ~kill_flag
              ~passes channel))
  in
  {
    channel;
    stop_flag;
    kill_flag;
    dead;
    passes;
    interval_us;
    neutralize_age;
    domain;
    keep;
  }

let disarm_once =
  (* stop and kill+recover may both run on one handle; disarm exactly
     once per start that armed. *)
  fun t ->
    if t.neutralize_age <> None && not (Atomic.get t.stop_flag) then
      Neutralize.disarm ()

let stop t =
  Channel.close t.channel;
  disarm_once t;
  Atomic.set t.stop_flag true;
  Domain.join t.domain;
  (* Belt and braces: a send could have slipped past the close check
     before the flag landed; adopt any straggler from the caller. *)
  if Channel.depth t.channel > 0 then
    Registry.with_tid (fun tid -> ignore (Channel.drain t.channel ~tid));
  ignore (Sys.opaque_identity t.keep)

let kill t =
  Atomic.set t.kill_flag true;
  Domain.join t.domain

let recover t ~tid =
  Channel.close t.channel;
  disarm_once t;
  Atomic.set t.stop_flag true;
  Channel.drain t.channel ~tid

let alive t = not (Atomic.get t.dead)
let passes t = Atomic.get t.passes
let channel t = t.channel
let interval t = float_of_int (Atomic.get t.interval_us) /. 1e6

let set_interval t s =
  Atomic.set t.interval_us (max 1 (int_of_float (s *. 1e6)))
