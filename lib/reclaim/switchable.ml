(** Mode-switching scheme wrapper: EBR speed with an HP escape hatch.

    The adaptive controller wants EBR's nearly-free protection while the
    workload is calm and HP's bounded memory when a reader stalls.  This
    wrapper embeds one instance of each and migrates between them at a
    safe boundary, so a structure pays for robustness only while it
    needs it.

    {2 The three-state machine}

    [Fast] (0) — reads are epoch-protected plain loads, retires go to
    the embedded EBR instance.  [Escalating] (1) — new operations
    publish hazards but retires still go to EBR; the state is a grace
    period, not a destination.  [Robust] (2) — reads publish hazards
    and retires go to the embedded HP instance.

    {2 Why each transition is safe}

    {b Every operation, in every mode, announces an epoch} — [begin_op]
    always enters the EBR instance before reading the mode.  EBR frees
    only nodes whose retire epoch every announcement has moved past, so
    EBR-side reclamation is safe regardless of how reads were routed:
    the epoch announcement covers the reader even when its protection
    plane is hazards.

    {b Escalation (0→1→2)} must not let an HP retire free a node that
    an epoch-only reader still holds.  [escalate] sets the mode to
    [Escalating] and records the then-current global epoch as the flip
    epoch.  An operation announces its epoch {e before} reading the
    mode, so (under OCaml's SC atomics) any operation that announced an
    epoch strictly above the flip epoch read the global epoch after it
    advanced past the flip — which happens after the mode store — and
    therefore saw [Escalating] and published hazards.  [try_complete]
    promotes to [Robust] exactly when the minimum announcement exceeds
    the flip epoch: from that point every active reader is
    hazard-publishing, so HP scans see every protection.  A stalled
    reader parks the grace period at its announced epoch; the
    neutralization machinery (the armed reclaimer forcing the victim's
    announcement quiescent, PR "stalled-guard neutralization") is what
    unblocks it — adaptive mode is the controller {e plus} a
    neutralizing reclaimer.

    {b Relaxation (2→0)} is immediate.  Every node on the HP instance's
    retired lists was unlinked while all active readers published
    hazards, and it was already unreachable from the structure when
    retired — an epoch-only reader admitted after the flip can never
    acquire a reference to it.  So hazard-honoring scans remain a sound
    way to drain the residue in any mode, and the owner thread drains
    its own leftover list to fixpoint from the retire path (gated to
    one scan attempt per [Tuning.bg_batch] retires so a long-pinned
    node cannot turn every retire into an O(Ht) scan). *)

open Atomicx

let fast = 0
let escalating = 1
let robust = 2

module Make (N : Scheme_intf.NODE) = struct
  module E = Ebr.Make (N)
  module H = Hp.Make (N)

  type node = N.t

  type t = {
    e : E.t;
    h : H.t;
    mode : int Atomic.t; (* fast | escalating | robust *)
    flip_epoch : int Atomic.t; (* global epoch recorded at [escalate] *)
    (* protection plane chosen at [begin_op]; owner-private plain state
       (each op routes its reads by what it saw at entry, not by the
       live mode, so a mid-op switch cannot strand a half-published
       protection) *)
    op_mode : int array;
    (* per-tid countdown between residue-drain attempts on the retire
       path; reloaded from [Tuning.bg_batch].  Plain unboxed ints: this
       is decremented on every retire and a boxed ref would put a
       pointer chase on the hot path *)
    gate : int array;
    escalations : int Atomic.t;
    relaxations : int Atomic.t;
    (* the background channel, held here rather than handed straight to
       the EBR instance: channel routing is itself mode-gated (see
       [set_background]) *)
    bg : Channel.t option Atomic.t;
    mutable tuning : Tuning.t;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "switchable"
  let max_hps t = E.max_hps t.e
  let mode t = Atomic.get t.mode

  let begin_op t ~tid =
    (* announce first — the escalation grace period depends on the
       epoch announcement being visible before the mode read *)
    E.begin_op t.e ~tid;
    let m = Atomic.get t.mode in
    (* the hazard plane is entered only when this op will publish
       through it; an op that snapshots [fast] never touches H, which
       keeps the fast path within a few loads of bare EBR.  Any op the
       grace period counts (epoch above the flip) read the mode after
       the flip store, so it took this branch and did enter H. *)
    if m <> fast then H.begin_op t.h ~tid;
    t.op_mode.(tid) <- m

  let end_op t ~tid =
    if t.op_mode.(tid) <> fast then H.end_op t.h ~tid;
    E.end_op t.e ~tid

  let get_protected t ~tid ~idx link =
    if t.op_mode.(tid) = fast then E.get_protected t.e ~tid ~idx link
    else H.get_protected t.h ~tid ~idx link

  let get_protected_v t ~tid ~idx link =
    if t.op_mode.(tid) = fast then E.get_protected_v t.e ~tid ~idx link
    else H.get_protected_v t.h ~tid ~idx link

  let protect_raw t ~tid ~idx n =
    if t.op_mode.(tid) = fast then E.protect_raw t.e ~tid ~idx n
    else H.protect_raw t.h ~tid ~idx n

  let copy_protection t ~tid ~src ~dst =
    if t.op_mode.(tid) = fast then E.copy_protection t.e ~tid ~src ~dst
    else H.copy_protection t.h ~tid ~src ~dst

  let clear t ~tid ~idx =
    if t.op_mode.(tid) = fast then E.clear t.e ~tid ~idx
    else H.clear t.h ~tid ~idx

  (* Owner-called residue drain: free whatever the {e other} policy
     still holds for this tid.  Sound in any mode (see the header), but
     gated so a pinned node cannot make every retire pay for a scan. *)
  let drain_residue t ~tid ~mode =
    let g = t.gate.(tid) - 1 in
    t.gate.(tid) <- g;
    if g <= 0 then begin
      t.gate.(tid) <- Tuning.bg_batch t.tuning;
      if mode = robust then begin
        if E.pending t.e ~tid > 0 then E.scan t.e ~tid
      end
      else if H.pending t.h ~tid > 0 then H.scan t.h ~tid
    end

  let retire t ~tid n =
    (* route by the live mode, not the op snapshot: in [Robust] every
       active reader is hazard-publishing (the grace period proved it),
       so HP may take over immediately; in [Fast]/[Escalating] the
       epoch announcement of every op keeps EBR retires safe *)
    let m = Atomic.get t.mode in
    if m = robust then H.retire t.h ~tid n else E.retire t.e ~tid n;
    drain_residue t ~tid ~mode:m

  let escalate t =
    Atomic.compare_and_set t.mode fast escalating
    && begin
         (* read the global epoch only after the mode store: any op
            announcing a strictly later epoch is then guaranteed to
            have seen [Escalating] *)
         Atomic.set t.flip_epoch (E.global_epoch t.e);
         (* under pressure the EBR side starts shipping batches to the
            background channel so the reclaimer (and its neutralization
            scan) takes over the drain work *)
         E.set_background t.e (Atomic.get t.bg);
         true
       end

  let try_complete t =
    Atomic.get t.mode = escalating
    && begin
         E.try_advance_epoch t.e;
         E.min_announced_now t.e > Atomic.get t.flip_epoch
         && Atomic.compare_and_set t.mode escalating robust
         && begin
              Atomic.incr t.escalations;
              true
            end
       end

  let relax t =
    if
      Atomic.compare_and_set t.mode robust fast
      || Atomic.compare_and_set t.mode escalating fast
    then begin
      Atomic.incr t.relaxations;
      (* calm again: retires drain inline on their owners — on a busy
         channel the remote-free round trip is pure overhead once
         nothing is stalled *)
      E.set_background t.e None;
      true
    end
    else false

  let escalations t = Atomic.get t.escalations
  let relaxations t = Atomic.get t.relaxations
  let stall_age_max t = max (E.stall_age_max t.e) (H.stall_age_max t.h)

  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    E.set_tuning t.e tn;
    H.set_tuning t.h tn

  (* Channel routing is mode-gated.  The HP side only ever retires in
     [Robust], so it may keep the channel unconditionally; the EBR side
     gets it on [escalate] and loses it on [relax] — while the workload
     is calm, inline owner-side scans beat the remote-free round trip
     through the reclaimer domain. *)
  let set_background t ch =
    Atomic.set t.bg ch;
    H.set_background t.h ch;
    if Atomic.get t.mode <> fast then E.set_background t.e ch
    else E.set_background t.e None

  (* The embedded instances registered their own quarantine and
     neutralize hooks at [create]; this entry point only exists for
     callers holding the wrapper. *)
  let orphan t ~tid =
    E.orphan t.e ~tid;
    H.orphan t.h ~tid

  let orphaned t = E.orphaned t.e + H.orphaned t.h
  let unreclaimed t = E.unreclaimed t.e + H.unreclaimed t.h

  let stats t : Scheme_intf.stats =
    let a = E.stats t.e and b = H.stats t.h in
    {
      retires = a.retires + b.retires;
      frees = a.frees + b.frees;
      scans = a.scans + b.scans;
      scan_slots = a.scan_slots + b.scan_slots;
      snapshot_builds = a.snapshot_builds + b.snapshot_builds;
      snapshot_hits = a.snapshot_hits + b.snapshot_hits;
      elided = a.elided + b.elided;
    }

  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)

  let flush t =
    E.flush t.e;
    H.flush t.h

  let create ?(max_hps = 8) ?sink alloc =
    let e = E.create ~max_hps ?sink alloc in
    let h = H.create ~max_hps ?sink alloc in
    let tn = Tuning.create () in
    E.set_tuning e tn;
    H.set_tuning h tn;
    let t =
      {
        e;
        h;
        mode = Atomic.make fast;
        flip_epoch = Atomic.make 0;
        op_mode = Array.make Registry.max_threads fast;
        gate = Array.make Registry.max_threads Tuning.default_bg_batch;
        escalations = Atomic.make 0;
        relaxations = Atomic.make 0;
        bg = Atomic.make None;
        tuning = tn;
        metrics = [];
      }
    in
    let labels = [ ("scheme", name) ] in
    let counters =
      [
        ("orcgc_ctrl_escalations_total", fun () -> escalations t);
        ("orcgc_ctrl_relaxations_total", fun () -> relaxations t);
      ]
    and gauges =
      [
        ("orcgc_ctrl_mode", fun () -> mode t);
        ("orcgc_unreclaimed", fun () -> unreclaimed t);
      ]
    in
    List.iter
      (fun (nm, f) ->
        Obs.Metrics.probe Obs.Metrics.default ~labels ~counter:true nm f)
      counters;
    List.iter
      (fun (nm, f) -> Obs.Metrics.probe Obs.Metrics.default ~labels nm f)
      gauges;
    t.metrics <- counters @ gauges;
    t
end
