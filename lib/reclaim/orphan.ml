(* The orphan pool moved into [lib/memdom] so the pool allocator can
   publish dying domains' free-lists through the same machinery the
   schemes use for retire lists; re-exported here so schemes keep
   addressing it as [Orphan] / [Reclaim.Orphan]. *)
include Memdom.Orphan
