(** Background reclaimer domain: drains the transfer {!Channel}, fires
    {!Neutralize} on watchdog-validated stalls, and degrades cleanly
    when stopped or killed.

    Clocking is amortized: next to a running [Obs.Sampler] the
    reclaimer rides the sampler's watchdog ticks; standalone it
    advances the clock itself (only when [neutralize_age] is set — a
    pure drain pipeline leaves the guard paths in cheap no-stamp
    mode). *)

type t

val start :
  ?interval:float ->
  ?neutralize_age:int ->
  ?sink:Obs.Sink.t ->
  ?registry:Obs.Metrics.t ->
  Channel.t ->
  t
(** Spawn the reclaimer over [channel].  [interval] (default
    {!Tuning.default_drain_interval}) is the pass period.  [neutralize_age], when given, arms
    {!Neutralize} and expires any guard the watchdog validates as
    stalled for that many ticks; omitted, the reclaimer only drains.
    Registers the neutralization probes in [registry] and keeps them
    alive for the handle's lifetime. *)

val stop : t -> unit
(** Graceful shutdown: close the channel (mutators fall back to inline
    from this point), join the domain after its final drain, and adopt
    any straggler job from the calling thread.  After [stop] the
    channel stays closed — zero objects remain queued. *)

val kill : t -> unit
(** Chaos: make the domain exit abruptly — channel left {e open},
    backlog unrecovered, exactly a crashed reclaimer.  Mutator sends
    keep succeeding until the depth bound bites, then fall back
    inline.  Call {!recover} to reconcile; without it the backlog is a
    leak, which is what the kill batteries assert against. *)

val recover : t -> tid:int -> int
(** Post-mortem reconciliation: close the channel, then drain the
    backlog on the calling thread.  Returns objects recovered.
    Idempotent. *)

val alive : t -> bool
(** False once the domain has exited (graceful or killed). *)

val passes : t -> int
(** Completed reclaimer passes (heartbeat). *)

val channel : t -> Channel.t

val interval : t -> float
(** Current pass period in seconds. *)

val set_interval : t -> float -> unit
(** Retune the pass period (the {!Controller}'s drain-cadence knob).
    Takes effect on the next pass; clamped to at least 1 µs. *)
