(** Degenerate schemes used as experimental controls.

    [Leak] never frees: the "no reclamation" series in the paper's plots
    (the performance ceiling — zero reclamation overhead, unbounded
    memory).  [Unsafe] frees at retire time, which is exactly the bug all
    real schemes exist to prevent; the negative stress tests use it to
    prove that the {!Memdom} substrate actually detects use-after-free
    (i.e. that the green tests of real schemes are meaningful). *)

open Atomicx

module Leak (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    retired : node list ref array;
    counters : Scheme_intf.Counters.t;
    orphans : node Orphan.t;
    mutable lifecycle : int -> unit;
    (* the controls have no thresholds; the record is carried so the
       knob surface is uniform across every Scheme_intf.S *)
    mutable tuning : Tuning.t;
  }

  let name = "leak"
  let max_hps t = t.hps

  (* Even the leak control participates in the lifecycle protocol: a
     recycled tid must start with an empty park list, and [flush] must
     still see (and free) what departed threads parked. *)
  let orphan t ~tid =
    match !(t.retired.(tid)) with
    | [] -> ()
    | batch ->
        t.retired.(tid) := [];
        Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        lifecycle = ignore;
        tuning = Tuning.create ();
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t

  let begin_op t ~tid = Obs.Sink.guard_begin t.sink ~tid
  let end_op t ~tid = Obs.Sink.guard_end t.sink ~tid
  let get_protected _ ~tid:_ ~idx:_ link = Link.get link
  let get_protected_v _ ~tid:_ ~idx:_ link = Link.view link
  let protect_raw _ ~tid:_ ~idx:_ _ = ()
  let copy_protection _ ~tid:_ ~src:_ ~dst:_ = ()
  let clear _ ~tid:_ ~idx:_ = ()

  let retire t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := n :: !(t.retired.(tid))

  (* Nothing to drain in the background: retire never scans. *)
  let set_background _ _ = ()
  let tuning t = t.tuning
  let set_tuning t tn = t.tuning <- tn

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)

  (* Quiesced: everything retired is reclaimable by definition. *)
  let flush t =
    for tid = 0 to Registry.registered () - 1 do
      let mine = !(t.retired.(tid)) in
      let all =
        List.rev_append (Orphan.adopt t.orphans t.sink ~tid) mine
      in
      List.iter
        (fun n ->
          Scheme_intf.Counters.freed t.counters ~tid;
          Memdom.Alloc.free t.alloc (N.hdr n))
        all;
      t.retired.(tid) := []
    done
end

module Unsafe (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    counters : Scheme_intf.Counters.t;
    mutable tuning : Tuning.t;
  }

  let name = "unsafe"
  let max_hps t = t.hps

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    {
      alloc;
      sink;
      hps = max_hps;
      counters = Scheme_intf.Counters.create ();
      tuning = Tuning.create ();
    }

  let begin_op t ~tid = Obs.Sink.guard_begin t.sink ~tid
  let end_op t ~tid = Obs.Sink.guard_end t.sink ~tid
  let get_protected _ ~tid:_ ~idx:_ link = Link.get link
  let get_protected_v _ ~tid:_ ~idx:_ link = Link.view link
  let protect_raw _ ~tid:_ ~idx:_ _ = ()
  let copy_protection _ ~tid:_ ~src:_ ~dst:_ = ()
  let clear _ ~tid:_ ~idx:_ = ()

  let retire t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Frees at retire; there is no batch to route anywhere. *)
  let set_background _ _ = ()
  let tuning t = t.tuning
  let set_tuning t tn = t.tuning <- tn

  (* Nothing is ever pending, so thread death leaves nothing behind. *)
  let orphan _ ~tid:_ = ()
  let orphaned _ = 0
  let unreclaimed _ = 0
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)
  let flush _ = ()
end
