(** Hazard pointers (Michael [19]) — manual baseline scheme.

    Protection publishes the pointer in a per-thread hazard slot and
    re-validates against the source link.  Retiring pushes the node onto a
    thread-local retired list; once the list exceeds a scan threshold the
    thread scans all published hazards and frees every retired node not
    currently protected.  Memory bound: each thread can hold a retired
    list proportional to [H * t], hence O(Ht²) unreclaimed overall —
    the quadratic bound PTP improves on (Table 1). *)

open Atomicx

module Make (N : Scheme_intf.NODE) = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    hp : node option Atomic.t array array; (* [tid][idx] *)
    (* Companion hazard plane for tagged links: [get_protected_v] on a
       word view publishes the target's uid here instead of boxing a
       [Some].  -1 = empty (uid 0 is a real uid: local 0 on tid 0).
       Scans consult both planes; uids never repeat, so uid membership
       is exactly the physical-identity test for any node still
       retirable (see [build_snapshot]). *)
    hp_uid : int Atomic.t array array; (* [tid][idx] *)
    retired : node list ref array; (* thread-local retired lists *)
    retired_count : int ref array;
    scratch : Scan_set.t array; (* [tid]; per-thread scan snapshots *)
    threshold : int Atomic.t;
    (* cached scaled R (Tuning.threshold), refreshed on crossing,
       quarantine and neutralization *)
    mutable tuning : Tuning.t;
    counters : Scheme_intf.Counters.t;
    orphans : node Orphan.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Channel.t option Atomic.t; (* background drain route *)
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "hp"
  let max_hps t = t.hps

  let begin_op t ~tid =
    Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid

  let protect_raw t ~tid ~idx n = Atomic.set t.hp.(tid).(idx) n

  let copy_protection t ~tid ~src ~dst =
    Neutralize.check ~tid;
    Atomic.set t.hp.(tid).(dst) (Atomic.get t.hp.(tid).(src));
    Atomic.set t.hp_uid.(tid).(dst) (Atomic.get t.hp_uid.(tid).(src))

  let clear t ~tid ~idx =
    Atomic.set t.hp.(tid).(idx) None;
    Atomic.set t.hp_uid.(tid).(idx) (-1)

  let end_op t ~tid =
    for idx = 0 to t.hps - 1 do
      clear t ~tid ~idx
    done;
    Neutralize.ack ~tid;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  let get_protected t ~tid ~idx link =
    Neutralize.check ~tid;
    let slot = t.hp.(tid).(idx) in
    let rec loop st =
      (match Link.target st with
      | None -> Atomic.set slot None
      | Some n ->
          (* Publication elision: when the slot already holds [n] (the
             common case on retry and re-traversal), the earlier seq-cst
             publish is still in force and every scanner already sees
             it, so the store — and the fresh [Some] cell it would
             allocate — can be skipped. *)
          if
            !Scan_set.elide_publish
            &&
            match Atomic.get slot with Some m -> m == n | None -> false
          then begin
            Scheme_intf.Counters.elided t.counters ~tid;
            Obs.Sink.on_elide t.sink ~tid
          end
          else Atomic.set slot (Some n));
      let st' = Link.get link in
      if st' == st then st else loop st'
    in
    loop (Link.get link)

  (* The view-plane protect loop.  Boxed views follow the legacy
     publish-and-revalidate protocol verbatim (box identity implies a
     stable target).  Word views publish the target's uid in [hp_uid] —
     no [Some] box, no allocation anywhere on the path — and then
     confirm not just that the link still holds the same word but that
     the word still decodes to the same node carrying the same uid: a
     slot can be released and re-issued between the deref and the
     publish, so word equality alone could pin a corpse while the
     link's actual target goes unprotected.  Once the triple
     (word, node, uid) re-reads stable after the publish, any later
     retire of that node observes the published uid.

     The loop lives at functor level with every free variable passed as
     an argument: an inner [let rec] capturing [slot]/[link] would cost
     a closure allocation per call, defeating the plane's entire point
     (measured: 9 minor words per protect on the otherwise
     allocation-free word path). *)
  let rec gpv_loop t ~tid slot uid_slot link v =
    if not (Link.v_has_target v) then begin
      Atomic.set slot None;
      Atomic.set uid_slot (-1);
      let v' = Link.view link in
      if Link.view_eq v' v then v else gpv_loop t ~tid slot uid_slot link v'
    end
    else if Link.v_is_word v then begin
      let n = Link.v_target_exn link v in
      let u = (N.hdr n).Memdom.Hdr.uid in
      if !Scan_set.elide_publish && Atomic.get uid_slot = u then begin
        Scheme_intf.Counters.elided t.counters ~tid;
        Obs.Sink.on_elide t.sink ~tid;
        let v' = Link.view link in
        if Link.view_eq v' v then v else gpv_loop t ~tid slot uid_slot link v'
      end
      else begin
        Atomic.set uid_slot u;
        let v' = Link.view link in
        if
          Link.view_eq v' v
          && Link.v_target_exn link v == n
          && (N.hdr n).Memdom.Hdr.uid = u
        then v
        else gpv_loop t ~tid slot uid_slot link v'
      end
    end
    else begin
      let n = Link.v_target_exn link v in
      if
        !Scan_set.elide_publish
        && match Atomic.get slot with Some m -> m == n | None -> false
      then begin
        Scheme_intf.Counters.elided t.counters ~tid;
        Obs.Sink.on_elide t.sink ~tid
      end
      else Atomic.set slot (Some n);
      let v' = Link.view link in
      if Link.view_eq v' v then v else gpv_loop t ~tid slot uid_slot link v'
    end

  let get_protected_v t ~tid ~idx link =
    Neutralize.check ~tid;
    gpv_loop t ~tid t.hp.(tid).(idx) t.hp_uid.(tid).(idx) link (Link.view link)

  let protected_by_any t ~visited n =
    let uid = (N.hdr n).Memdom.Hdr.uid in
    let found = ref false in
    (try
       (* bounded by the registered high-water, and rows whose registry
          slot is Free are skipped outright: a recycled slot's hazards
          are cleared before it is re-issued, so scan cost tracks the
          live slot population (see [Registry.in_use]).  Both hazard
          planes count as one visited slot: they are two encodings of
          the same protection. *)
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then
           for idx = 0 to t.hps - 1 do
             incr visited;
             if Atomic.get t.hp_uid.(it).(idx) = uid then begin
               found := true;
               raise_notrace Exit
             end;
             match Atomic.get t.hp.(it).(idx) with
             | Some m when m == n ->
                 found := true;
                 raise_notrace Exit
             | Some _ | None -> ()
           done
       done
     with Exit -> ());
    !found

  let free_node t ~tid n =
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Snapshot every live hazard row once into the caller's scratch set,
     keyed by node uid.  Uid membership coincides with the legacy
     physical-equality test for every node the scan examines: a retired
     node's uid is immutable until it is freed, and uids are never
     reused, so [mem snapshot uid] can only differ from [m == n] for
     slots whose target was recycled mid-snapshot — which keys a
     {e different} (live) object and at worst keeps a node one extra
     scan, never frees a protected one. *)
  let build_snapshot t ~tid ~visited =
    let s = t.scratch.(tid) in
    Scan_set.reset s;
    for it = 0 to Registry.registered () - 1 do
      if Registry.in_use it then
        for idx = 0 to t.hps - 1 do
          incr visited;
          let u = Atomic.get t.hp_uid.(it).(idx) in
          if u >= 0 then Scan_set.add s u;
          match Atomic.get t.hp.(it).(idx) with
          | Some m -> Scan_set.add s (N.hdr m).Memdom.Hdr.uid
          | None -> ()
        done
    done;
    Scan_set.seal s;
    Scheme_intf.Counters.snapshot_built t.counters ~tid;
    Obs.Sink.on_snapshot t.sink ~tid ~entries:(Scan_set.size s)

  let scan t ~tid =
    (match Orphan.adopt t.orphans t.sink ~tid with
    | [] -> ()
    | adopted ->
        t.retired.(tid) := List.rev_append adopted !(t.retired.(tid));
        t.retired_count.(tid) := !(t.retired_count.(tid)) + List.length adopted);
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let keep = ref [] and kept = ref 0 and release = ref [] in
    let protected_ =
      if !Scan_set.snapshot_scan then begin
        build_snapshot t ~tid ~visited;
        let s = t.scratch.(tid) in
        fun n ->
          Scan_set.mem s (N.hdr n).Memdom.Hdr.uid
          && begin
               Scheme_intf.Counters.snapshot_hit t.counters ~tid;
               true
             end
      end
      else fun n -> protected_by_any t ~visited n
    in
    List.iter
      (fun n ->
        if protected_ n then begin
          keep := n :: !keep;
          incr kept
        end
        else release := n :: !release)
      !(t.retired.(tid));
    t.retired.(tid) := !keep;
    t.retired_count.(tid) := !kept;
    List.iter (free_node t ~tid) !release;
    Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  (* The paper's R = 2·H·t amortization ratio (scaled by the tuning
     record's bounded multiplier), tracking the live thread population
     instead of a baked-in 8-thread default.  [t] is the {e Active}
     slot count, not the monotone [Registry.registered] high-water: the
     high-water never decreases, so a long-lived process that once ran
     many threads would batch forever.  Counting Active slots is
     O(registered), so the count is cached and refreshed only when the
     cached value is crossed — amortized O(1) per retire — plus on
     quarantine and neutralization, so the threshold shrinks promptly
     after domain death instead of waiting for the next crossing. *)
  let refresh_threshold t =
    Atomic.set t.threshold (Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~tid =
    !(t.retired_count.(tid)) >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         !(t.retired_count.(tid)) >= Atomic.get t.threshold
       end

  (* Background drain: swap this thread's whole batch out and ship it
     to the reclaimer as a job that splices it into the {e running}
     thread's list and scans there.  Single-owner safe: the batch
     leaves [retired.(tid)] before the send, and on refusal (closed or
     full channel — the degradation path) nothing else has touched the
     empty list, so restoring and scanning inline is exact. *)
  let drain_background t ~tid ch =
    let batch = !(t.retired.(tid)) and n = !(t.retired_count.(tid)) in
    t.retired.(tid) := [];
    t.retired_count.(tid) := 0;
    let job ~tid:rtid =
      t.retired.(rtid) := List.rev_append batch !(t.retired.(rtid));
      t.retired_count.(rtid) := !(t.retired_count.(rtid)) + n;
      scan t ~tid:rtid
    in
    if not (Channel.send ch ~tid ~count:n job) then begin
      t.retired.(tid) := batch;
      t.retired_count.(tid) := n;
      scan t ~tid
    end

  let set_background t ch = Atomic.set t.bg ch

  let retire t ~tid n =
    Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := n :: !(t.retired.(tid));
    incr t.retired_count.(tid);
    if threshold_crossed t ~tid then
      match Atomic.get t.bg with
      | None -> scan t ~tid
      | Some ch -> drain_background t ~tid ch

  (* Quarantine cleaner: force-clear the departing tid's hazards and
     publish its pending retired list for adoption at survivors' next
     scan.  On the exit path this runs on the departing thread itself;
     on the force path the owner is provably dead, so the plain-ref
     fields are single-owner either way. *)
  let orphan t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.hp.(tid).(idx) None;
      Atomic.set t.hp_uid.(tid).(idx) (-1)
    done;
    (* the quarantined slot has already left the Active count, so this
       re-derives the shrunk R immediately instead of batching against
       a dead population until the next crossing *)
    refresh_threshold t;
    match !(t.retired.(tid)) with
    | [] -> ()
    | batch ->
        t.retired.(tid) := [];
        t.retired_count.(tid) := 0;
        Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  (* Neutralize hook: the victim may still be alive, so only its atomic
     state may be touched — both hazard planes go empty (unpinning the
     stalled guard's targets), the plain retired list stays the owner's
     (bounded by R, so it cannot break the O(Ht) bound). *)
  let neutralize_clear t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.hp.(tid).(idx) None;
      Atomic.set t.hp_uid.(tid).(idx) (-1)
    done;
    refresh_threshold t

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_slots _ = Padded.atomic_array max_hps None in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        hp = Array.init Registry.max_threads mk_slots;
        hp_uid =
          Array.init Registry.max_threads (fun _ ->
              Padded.atomic_array max_hps (-1));
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        retired_count = Array.init Registry.max_threads (fun _ -> ref 0);
        scratch = Array.init Registry.max_threads (fun _ -> Scan_set.create ());
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Tuning.create ();
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () -> Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)
  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let pending t ~tid = !(t.retired_count.(tid))
  let stall_age_max t = Obs.Watchdog.stall_age_max t.wd

  let flush t =
    for tid = 0 to Registry.registered () - 1 do
      scan t ~tid
    done
end
