(** Pass-the-buck (Herlihy, Luchangco & Moir [14]) — manual baseline.

    Guards are hazard slots; what differs from HP is [liberate]: a retired
    value found trapped by a guard is *handed off* to that guard through a
    versioned handoff slot (the paper's DWCAS — here a CAS on an immutable
    [(value, version)] box, which is atomic over both fields for free).
    The previous occupant of the handoff re-enters the liberation
    worklist.  Clearing a guard drains its handoff back into the owner's
    retired list.

    Each liberating thread still gathers a list proportional to the
    number of trapped values, so the bound stays O(Ht²) (Table 1) — the
    handover idea is what PTP (Algorithm 2) sharpens into a linear bound
    by *pushing* pointers forward instead of gathering them. *)

open Atomicx

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t
  type handoff = { v : node option; ver : int }

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    post : node option Atomic.t array array; (* guards, [tid][idx] *)
    handoff : handoff Atomic.t array array;
    retired : node list ref array;
    scratch : Scan_set.t array; (* [tid]; per-liberate guard snapshots *)
    threshold : int Atomic.t;
    (* cached scaled R (Tuning.threshold), refreshed on crossing,
       quarantine and neutralization *)
    mutable tuning : Tuning.t;
    counters : Scheme_intf.Counters.t;
    orphans : node Orphan.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Channel.t option Atomic.t; (* background drain route *)
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "ptb"
  let max_hps t = t.hps

  let begin_op t ~tid =
    Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid

  let protect_raw t ~tid ~idx n = Atomic.set t.post.(tid).(idx) n

  let copy_protection t ~tid ~src ~dst =
    Neutralize.check ~tid;
    Atomic.set t.post.(tid).(dst) (Atomic.get t.post.(tid).(src))

  let get_protected t ~tid ~idx link =
    Neutralize.check ~tid;
    let slot = t.post.(tid).(idx) in
    let rec loop st =
      Atomic.set slot (Link.target st);
      let st' = Link.get link in
      if st' == st then st else loop st'
    in
    loop (Link.get link)

  (* View-plane posting: the guard still holds the node itself (the
     liberate walk compares physically), so a word view is derefed
     before posting and re-derefed after — word equality alone does not
     prove the slot's meaning was stable (see hp.ml). *)
  let get_protected_v t ~tid ~idx link =
    Neutralize.check ~tid;
    let slot = t.post.(tid).(idx) in
    let rec loop v =
      if not (Link.v_has_target v) then begin
        Atomic.set slot None;
        let v' = Link.view link in
        if Link.view_eq v' v then v else loop v'
      end
      else begin
        let n = Link.v_target_exn link v in
        Atomic.set slot (Some n);
        let v' = Link.view link in
        if
          Link.view_eq v' v
          && ((not (Link.v_is_word v)) || Link.v_target_exn link v == n)
        then v
        else loop v'
      end
    in
    loop (Link.view link)

  let free_node t ~tid n =
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Find a guard currently trapping [p].  Free rows post no guards
     (cleared on quarantine) — skip them, see [Registry.in_use]. *)
  let find_guard t ~visited p =
    let found = ref None in
    (try
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then
           for idx = 0 to t.hps - 1 do
             incr visited;
             match Atomic.get t.post.(it).(idx) with
             | Some m when m == p ->
                 found := Some (it, idx);
                 raise_notrace Exit
             | Some _ | None -> ()
           done
       done
     with Exit -> ());
    !found

  (* Snapshot every raised guard once, keyed by the trapped node's uid
     with the guard's coordinates packed into the payload, so each
     worklist item resolves its trapping guard in O(log Ht) instead of
     a fresh O(Ht) walk.  A guard raised after the snapshot belongs to
     a thread whose validation re-read finds the value already
     unlinked, and the legacy walk's single point-in-time read could
     equally miss it; a guard lowered after the snapshot at worst
     receives a handoff its owner's [clear] drains back — the same
     race the live walk has between [find_guard] and [hand]. *)
  let build_snapshot t ~tid ~visited =
    let s = t.scratch.(tid) in
    Scan_set.reset s;
    for it = 0 to Registry.registered () - 1 do
      if Registry.in_use it then
        for idx = 0 to t.hps - 1 do
          incr visited;
          match Atomic.get t.post.(it).(idx) with
          | Some m ->
              Scan_set.add_kv s ~key:(N.hdr m).Memdom.Hdr.uid
                ~value:((it * t.hps) + idx)
          | None -> ()
        done
    done;
    Scan_set.seal s;
    Scheme_intf.Counters.snapshot_built t.counters ~tid;
    Obs.Sink.on_snapshot t.sink ~tid ~entries:(Scan_set.size s)

  let liberate t ~tid values =
    let values =
      match Orphan.adopt t.orphans t.sink ~tid with
      | [] -> values
      | adopted -> List.rev_append adopted values
    in
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let snapshot = !Scan_set.snapshot_scan in
    if snapshot then build_snapshot t ~tid ~visited;
    let find_trap p =
      if snapshot then begin
        match Scan_set.find t.scratch.(tid) (N.hdr p).Memdom.Hdr.uid with
        | -1 -> None
        | packed ->
            Scheme_intf.Counters.snapshot_hit t.counters ~tid;
            Some (packed / t.hps, packed mod t.hps)
      end
      else find_guard t ~visited p
    in
    let work = Queue.create () in
    List.iter (fun p -> Queue.add p work) values;
    let budget = ref (Queue.length work + (Registry.max_threads * t.hps) + 8) in
    let leftovers = ref [] in
    while not (Queue.is_empty work) do
      let p = Queue.pop work in
      if !budget <= 0 then leftovers := p :: !leftovers
      else begin
        decr budget;
        match find_trap p with
        | None -> free_node t ~tid p
        | Some (it, idx) ->
            let slot = t.handoff.(it).(idx) in
            let rec hand () =
              let h = Atomic.get slot in
              if Atomic.compare_and_set slot h { v = Some p; ver = h.ver + 1 }
              then match h.v with Some q -> Queue.add q work | None -> ()
              else hand ()
            in
            hand ()
      end
    done;
    t.retired.(tid) := !leftovers @ !(t.retired.(tid));
    Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  let clear t ~tid ~idx =
    Atomic.set t.post.(tid).(idx) None;
    let slot = t.handoff.(tid).(idx) in
    let h = Atomic.get slot in
    match h.v with
    | None -> ()
    | Some _ ->
        let h' = Atomic.exchange slot { v = None; ver = h.ver + 1 } in
        (match h'.v with
        | Some q -> t.retired.(tid) := q :: !(t.retired.(tid))
        | None -> ())

  let end_op t ~tid =
    for idx = 0 to t.hps - 1 do
      clear t ~tid ~idx
    done;
    Neutralize.ack ~tid;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  (* R = 2·H·t from the live Active-slot population, cached and
     refreshed on crossing (see [Hp.threshold_crossed]). *)
  let refresh_threshold t =
    Atomic.set t.threshold (Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~count =
    count >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         count >= Atomic.get t.threshold
       end

  let set_background t ch = Atomic.set t.bg ch

  let retire t ~tid n =
    Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := n :: !(t.retired.(tid));
    if threshold_crossed t ~count:(List.length !(t.retired.(tid))) then begin
      let vs = !(t.retired.(tid)) in
      t.retired.(tid) := [];
      (* Background drain: the swapped-out worklist liberates on the
         reclaimer; a refused send (closed/full) liberates inline —
         see [Hp.drain_background] for the single-owner argument. *)
      let inline =
        match Atomic.get t.bg with
        | None -> true
        | Some ch ->
            let count = List.length vs in
            not
              (Channel.send ch ~tid ~count (fun ~tid:rtid ->
                   liberate t ~tid:rtid vs))
      in
      if inline then liberate t ~tid vs
    end

  (* Quarantine cleaner: lower the departing tid's guards, then drain
     its handoff slots — a value trapped in a dead guard's handoff has
     no owner left to [clear] it back into a retired list — and publish
     everything for adoption by the next liberator. *)
  let orphan t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.post.(tid).(idx) None
    done;
    refresh_threshold t;
    let trapped = ref [] in
    for idx = 0 to t.hps - 1 do
      let slot = t.handoff.(tid).(idx) in
      let h = Atomic.get slot in
      match h.v with
      | None -> ()
      | Some _ -> (
          let h' = Atomic.exchange slot { v = None; ver = h.ver + 1 } in
          match h'.v with
          | Some q -> trapped := q :: !trapped
          | None -> ())
    done;
    let batch = !trapped @ !(t.retired.(tid)) in
    t.retired.(tid) := [];
    Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  (* Neutralize hook: lower the victim's guards and drain its handoff
     slots — both atomic planes.  Values trapped in the handoffs go to
     the orphan pool (the victim's plain retired list is off-limits
     while it may be alive); the versioned exchange hands each value to
     exactly one drainer even if the victim wakes mid-pass and runs its
     own [clear]. *)
  let neutralize_clear t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.post.(tid).(idx) None
    done;
    refresh_threshold t;
    let trapped = ref [] in
    for idx = 0 to t.hps - 1 do
      let slot = t.handoff.(tid).(idx) in
      let h = Atomic.get slot in
      match h.v with
      | None -> ()
      | Some _ -> (
          let h' = Atomic.exchange slot { v = None; ver = h.ver + 1 } in
          match h'.v with
          | Some q -> trapped := q :: !trapped
          | None -> ())
    done;
    match !trapped with
    | [] -> ()
    | batch -> Orphan.publish t.orphans t.sink ~tid batch

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_posts _ = Padded.atomic_array max_hps None in
    let mk_handoffs _ =
      Array.init max_hps (fun _ -> Atomic.make { v = None; ver = 0 })
    in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        post = Array.init Registry.max_threads mk_posts;
        handoff = Array.init Registry.max_threads mk_handoffs;
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        scratch = Array.init Registry.max_threads (fun _ -> Scan_set.create ());
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Tuning.create ();
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () -> Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)

  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let flush t =
    for _ = 1 to 2 do
      for tid = 0 to Registry.registered () - 1 do
        let vs = !(t.retired.(tid)) in
        t.retired.(tid) := [];
        liberate t ~tid vs
      done
    done
end
