(** Adaptive reclamation controller: a feedback loop over the library's
    tuning knobs.

    Each tick reads a target structure's reclamation signals (the
    unreclaimed population and the oldest stalled-guard age) and reacts
    with AIMD-with-hysteresis policy:

    - {b Pressure} (unreclaimed ≥ [unreclaimed_hi], or a guard stalled
      ≥ [stall_age_hi] watchdog ticks) tightens multiplicatively and at
      once: halve the {!Tuning} threshold scale and background batch,
      halve the {!Reclaimer} drain interval, halve the {!Channel}
      bound, and climb the {!Switchable} ladder (escalate, then help
      the grace period complete on following ticks).
    - {b Calm} (unreclaimed ≤ [unreclaimed_lo] and no stall) must hold
      for [calm_ticks] consecutive observations before relief, which is
      additive and gradual: scale +25 pct-points, batch +8, interval
      and bound doubled back toward resting values, mode relaxed to
      Fast.

    Every decision is counted, exported through [orcgc_ctrl_*] metric
    probes, and emitted as a [Ctrl] event when a recording sink is
    supplied.  Drive the loop with {!tick} for deterministic tests and
    benches, or {!start} a background domain (which self-clocks the
    stall watchdog exactly like the Reclaimer when no Sampler runs). *)

(** {2 Decision codes} (the [Ctrl] event's [uid]) *)

val d_tighten : int
val d_widen : int
val d_escalate : int
val d_complete : int
val d_relax : int
val decision_name : int -> string

(** {2 Targets} *)

type target
(** One controlled structure: its knob record, its signal probes and —
    for {!Switchable}-backed structures — its mode-machine actions. *)

val target :
  ?label:string ->
  ?mode:(unit -> int) ->
  ?escalate:(unit -> bool) ->
  ?try_complete:(unit -> bool) ->
  ?relax:(unit -> bool) ->
  tuning:Tuning.t ->
  unreclaimed:(unit -> int) ->
  stall_age:(unit -> int) ->
  unit ->
  target
(** Closure-based so any scheme instance (each a distinct functor
    application) can be targeted without first-class-module plumbing.
    Omitting the mode actions yields a tuning-only target: the
    controller still scales thresholds, batches and cadence but never
    migrates policies. *)

(** {2 Policy configuration} *)

type config = {
  unreclaimed_hi : int;  (** tighten/escalate at or above (default 4096) *)
  unreclaimed_lo : int;  (** calm at or below (default 256) *)
  stall_age_hi : int;
      (** tighten/escalate when the oldest guard reaches this watchdog
          age (default 3) *)
  calm_ticks : int;
      (** consecutive calm observations before widening/relaxing
          (default 4) — the hysteresis that stops phase boundaries from
          flapping *)
}

val default_config : config

(** {2 The controller} *)

type t

val create :
  ?cfg:config ->
  ?reclaimer:Reclaimer.t ->
  ?channel:Channel.t ->
  ?sink:Obs.Sink.t ->
  ?registry:Obs.Metrics.t ->
  target list ->
  t
(** [create targets] also registers [orcgc_ctrl_*] probes (per-target
    gauges labelled [target=<label>]; global tick/decision counters)
    with [registry].  The probes live as long as the controller. *)

val tick : t -> unit
(** One observation/decision pass over every target, on the calling
    thread.  Deterministic: drive it from a test or a bench loop. *)

val start : ?interval:float -> t -> unit
(** Spawn the background control domain, one {!tick} per [interval]
    seconds (default 1 ms).  Raises [Invalid_argument] if already
    running. *)

val stop : t -> unit
(** Stop and join the background domain (no-op when none). *)

(** {2 Introspection} *)

val ticks : t -> int
val decisions : t -> int

val escalations : t -> int
(** Grace periods this controller completed (promotions to Robust). *)

val relaxations : t -> int
(** Relaxations this controller issued. *)
