(** Epoch-based reclamation (Fraser [10], Hart et al. [13]) — the
    quiescence baseline.

    Threads announce the global epoch on [begin_op] and go quiescent on
    [end_op].  A node retired in epoch [e] is free once every active
    thread has announced an epoch [> e]; the global epoch only advances
    when all active threads have caught up, so a single stalled reader
    blocks reclamation entirely — EBR's protect is cheap and wait-free,
    but its retire is blocking and its memory usage unbounded (Table 1).
    It is included as the performance upper bound the lock-free schemes
    are measured against. *)

open Atomicx

module Make (N : Scheme_intf.NODE) = struct
  type node = N.t

  let quiescent = max_int

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    global_epoch : int Atomic.t;
    announce : int Atomic.t array; (* [tid]; [quiescent] when outside an op *)
    retired : (node * int) list ref array; (* (node, retire epoch) *)
    retired_count : int ref array;
    (* cached scaled threshold (Tuning.threshold): ebr historically used
       a flat 128 here, which over-retained small runs and
       under-amortized large ones; it now rides the same 2·H·t-derived
       cache as the pointer schemes, refreshed on crossing, quarantine
       and neutralization *)
    threshold : int Atomic.t;
    mutable tuning : Tuning.t;
    counters : Scheme_intf.Counters.t;
    orphans : (node * int) Orphan.t; (* batches keep their retire epochs *)
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Channel.t option Atomic.t; (* background drain route *)
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "ebr"
  let max_hps t = t.hps

  let begin_op t ~tid =
    Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    Atomic.set t.announce.(tid) (Atomic.get t.global_epoch);
    Obs.Sink.guard_begin t.sink ~tid

  let end_op t ~tid =
    Atomic.set t.announce.(tid) quiescent;
    Neutralize.ack ~tid;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  (* Protection is implicit in the epoch announcement: a plain validated
     read suffices — but the neutralization check is load-bearing here:
     a neutralized reader's announcement went quiescent, so every
     subsequent read would be unprotected. *)
  let get_protected _t ~tid ~idx:_ link =
    Neutralize.check ~tid;
    Link.get link

  (* The epoch announced at [begin_op] already protects everything
     reachable; a read needs no per-pointer work, so the view plane is
     a single allocation-free load (plus the neutralization probe). *)
  let get_protected_v _t ~tid ~idx:_ link =
    Neutralize.check ~tid;
    Link.view link

  let protect_raw _t ~tid:_ ~idx:_ _n = ()
  let copy_protection _t ~tid ~src:_ ~dst:_ = Neutralize.check ~tid
  let clear _t ~tid:_ ~idx:_ = ()

  let min_announced t ~visited =
    let m = ref max_int in
    (* a Free row is quiescent by construction (the quarantine cleaner
       resets its announcement), so skipping it cannot hold the epoch
       back; a thread activating after our state read announces the
       current global epoch and cannot reach older retirees *)
    for it = 0 to Registry.registered () - 1 do
      if Registry.in_use it then begin
        incr visited;
        let e = Atomic.get t.announce.(it) in
        if e < !m then m := e
      end
    done;
    !m

  let try_advance t ~visited =
    let e = Atomic.get t.global_epoch in
    if min_announced t ~visited >= e then
      ignore (Atomic.compare_and_set t.global_epoch e (e + 1))

  let free_node t ~tid n =
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  let scan t ~tid =
    (match Orphan.adopt t.orphans t.sink ~tid with
    | [] -> ()
    | adopted ->
        t.retired.(tid) := List.rev_append adopted !(t.retired.(tid));
        t.retired_count.(tid) := !(t.retired_count.(tid)) + List.length adopted);
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    try_advance t ~visited;
    let safe = min (min_announced t ~visited) (Atomic.get t.global_epoch) in
    let keep = ref [] and kept = ref 0 and release = ref [] in
    List.iter
      (fun ((_, e) as r) ->
        if e >= safe - 1 then begin
          keep := r :: !keep;
          incr kept
        end
        else release := r :: !release)
      !(t.retired.(tid));
    t.retired.(tid) := !keep;
    t.retired_count.(tid) := !kept;
    List.iter (fun (n, _) -> free_node t ~tid n) !release;
    Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  (* Background drain — see [Hp.drain_background]; batches carry their
     retire epochs, so replaying them under the reclaimer's tid
     preserves the epoch-distance safety test exactly. *)
  let drain_background t ~tid ch =
    let batch = !(t.retired.(tid)) and n = !(t.retired_count.(tid)) in
    t.retired.(tid) := [];
    t.retired_count.(tid) := 0;
    let job ~tid:rtid =
      t.retired.(rtid) := List.rev_append batch !(t.retired.(rtid));
      t.retired_count.(rtid) := !(t.retired_count.(rtid)) + n;
      scan t ~tid:rtid
    in
    if not (Channel.send ch ~tid ~count:n job) then begin
      t.retired.(tid) := batch;
      t.retired_count.(tid) := n;
      scan t ~tid
    end

  let set_background t ch = Atomic.set t.bg ch

  let refresh_threshold t =
    Atomic.set t.threshold (Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~tid =
    !(t.retired_count.(tid)) >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         !(t.retired_count.(tid)) >= Atomic.get t.threshold
       end

  let retire t ~tid n =
    Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := (n, Atomic.get t.global_epoch) :: !(t.retired.(tid));
    incr t.retired_count.(tid);
    if threshold_crossed t ~tid then
      match Atomic.get t.bg with
      | None -> scan t ~tid
      | Some ch -> drain_background t ~tid ch

  (* Quarantine cleaner: a departing thread must go quiescent (a stale
     announcement would stall the global epoch — §2's blocked-reclamation
     failure made permanent) and its epoch-stamped retired list goes to
     the orphan pool, where survivors fold it into their next scan. *)
  let orphan t ~tid =
    Atomic.set t.announce.(tid) quiescent;
    refresh_threshold t;
    match !(t.retired.(tid)) with
    | [] -> ()
    | batch ->
        t.retired.(tid) := [];
        t.retired_count.(tid) := 0;
        Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  (* Neutralize hook: force the victim quiescent — the single stalled
     announcement that blocks the global epoch (§2's failure mode) is
     exactly what neutralization exists to break.  The epoch-stamped
     retired list is owner-private plain state and stays put. *)
  let neutralize_clear t ~tid =
    Atomic.set t.announce.(tid) quiescent;
    refresh_threshold t

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        global_epoch = Atomic.make 2;
        announce =
          Array.init Registry.max_threads (fun _ -> Atomic.make quiescent);
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        retired_count = Array.init Registry.max_threads (fun _ -> ref 0);
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Tuning.create ();
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () -> Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)
  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let pending t ~tid = !(t.retired_count.(tid))
  let stall_age_max t = Obs.Watchdog.stall_age_max t.wd
  let global_epoch t = Atomic.get t.global_epoch
  let min_announced_now t = min_announced t ~visited:(ref 0)
  let try_advance_epoch t = try_advance t ~visited:(ref 0)

  let flush t =
    for _ = 1 to 3 do
      for tid = 0 to Registry.registered () - 1 do
        scan t ~tid
      done
    done
end
