(** Hazard eras (Ramalhete & Correia [25]) — era baseline.

    Combines pointer-based protection with EBR-style epochs: instead of
    publishing the pointer, a thread publishes the current *era*; an
    object is protected by a published era [e] iff its lifetime interval
    [birth_era, death_era] contains [e].  Protection avoids a store per
    distinct pointer when the era has not moved, trading a much larger
    memory bound — O(#L·H·t²), every object alive at a protected era is
    pinned (Table 1).

    Eras come from the allocator's era clock: each allocation stamps
    [birth_era] and each retire stamps [death_era] and bumps the clock
    every [era_freq] retires. *)

open Atomicx

module Make (N : Scheme_intf.NODE) : Scheme_intf.S with type node = N.t = struct
  type node = N.t

  let none_era = 0

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    he : int Atomic.t array array; (* published eras, [tid][idx] *)
    retired : node list ref array;
    retired_count : int ref array;
    retire_count : int ref array;
    scratch : Scan_set.t array; (* [tid]; per-scan era snapshots *)
    threshold : int Atomic.t;
    (* cached scaled R (Tuning.threshold), refreshed on crossing,
       quarantine and neutralization *)
    mutable tuning : Tuning.t;
    era_freq : int;
    counters : Scheme_intf.Counters.t;
    orphans : node Orphan.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Channel.t option Atomic.t; (* background drain route *)
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "he"
  let max_hps t = t.hps

  let begin_op t ~tid =
    Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid

  let clear t ~tid ~idx = Atomic.set t.he.(tid).(idx) none_era

  let end_op t ~tid =
    for idx = 0 to t.hps - 1 do
      clear t ~tid ~idx
    done;
    Neutralize.ack ~tid;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  (* HE protect (also used by IBR 2GE): publish the era, then re-read the
     link; stable era + stable link validate the protection. *)
  let get_protected t ~tid ~idx link =
    Neutralize.check ~tid;
    let slot = t.he.(tid).(idx) in
    let prev = ref (Atomic.get slot) in
    let rec loop () =
      let st = Link.get link in
      let era = Memdom.Alloc.era t.alloc in
      if era = !prev then begin
        (* stable era: the published reservation already covers this
           read — era schemes' native elision; counted (not traced:
           this is their common case) so bench can compare read sides *)
        if !Scan_set.elide_publish then
          Scheme_intf.Counters.elided t.counters ~tid;
        st
      end
      else begin
        Atomic.set slot era;
        prev := era;
        loop ()
      end
    in
    loop ()

  (* Same era-publication protocol on the view plane: the node itself
     plays no part in an era reservation, so the loop is read-view /
     read-era / publish-era — allocation-free on both representations
     (hoisted to functor level: an inner [let rec] would cost a closure
     per call). *)
  let rec gpv_loop t ~tid slot link prev =
    let v = Link.view link in
    let era = Memdom.Alloc.era t.alloc in
    if era = prev then begin
      if !Scan_set.elide_publish then
        Scheme_intf.Counters.elided t.counters ~tid;
      v
    end
    else begin
      Atomic.set slot era;
      gpv_loop t ~tid slot link era
    end

  let get_protected_v t ~tid ~idx link =
    Neutralize.check ~tid;
    let slot = t.he.(tid).(idx) in
    gpv_loop t ~tid slot link (Atomic.get slot)

  let protect_raw t ~tid ~idx n =
    match n with
    | None -> ()
    | Some _ ->
        let era = Memdom.Alloc.era t.alloc in
        let slot = t.he.(tid).(idx) in
        (* same elision on the unvalidated path: a slot already
           publishing the current era protects everything it would
           after the store *)
        if !Scan_set.elide_publish && Atomic.get slot = era then
          Scheme_intf.Counters.elided t.counters ~tid
        else Atomic.set slot era

  (* copying must carry the original era: a fresh era would not cover a
     node already retired under an older one *)
  let copy_protection t ~tid ~src ~dst =
    Neutralize.check ~tid;
    Atomic.set t.he.(tid).(dst) (Atomic.get t.he.(tid).(src))

  let protected_by_any t ~visited n =
    let h = N.hdr n in
    let birth = Memdom.Hdr.birth_era h and death = Memdom.Hdr.death_era h in
    let found = ref false in
    (try
       (* Free rows carry no era reservations (cleared on quarantine) —
          skip them, see [Registry.in_use] *)
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then
           for idx = 0 to t.hps - 1 do
             incr visited;
             let e = Atomic.get t.he.(it).(idx) in
             if e <> none_era && birth <= e && e <= death then begin
               found := true;
               raise_notrace Exit
             end
           done
       done
     with Exit -> ());
    !found

  let free_node t ~tid n =
    Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Snapshot every published era once; a node is protected iff some
     published era falls inside its [birth, death] interval, which the
     sealed point set answers as a range-membership query. *)
  let build_snapshot t ~tid ~visited =
    let s = t.scratch.(tid) in
    Scan_set.reset s;
    for it = 0 to Registry.registered () - 1 do
      if Registry.in_use it then
        for idx = 0 to t.hps - 1 do
          incr visited;
          let e = Atomic.get t.he.(it).(idx) in
          if e <> none_era then Scan_set.add s e
        done
    done;
    Scan_set.seal s;
    Scheme_intf.Counters.snapshot_built t.counters ~tid;
    Obs.Sink.on_snapshot t.sink ~tid ~entries:(Scan_set.size s)

  let scan t ~tid =
    (match Orphan.adopt t.orphans t.sink ~tid with
    | [] -> ()
    | adopted ->
        t.retired.(tid) := List.rev_append adopted !(t.retired.(tid));
        t.retired_count.(tid) := !(t.retired_count.(tid)) + List.length adopted);
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let keep = ref [] and kept = ref 0 and release = ref [] in
    let protected_ =
      if !Scan_set.snapshot_scan then begin
        build_snapshot t ~tid ~visited;
        let s = t.scratch.(tid) in
        fun n ->
          let h = N.hdr n in
          Scan_set.mem_range s ~lo:(Memdom.Hdr.birth_era h)
            ~hi:(Memdom.Hdr.death_era h)
          && begin
               Scheme_intf.Counters.snapshot_hit t.counters ~tid;
               true
             end
      end
      else fun n -> protected_by_any t ~visited n
    in
    List.iter
      (fun n ->
        if protected_ n then begin
          keep := n :: !keep;
          incr kept
        end
        else release := n :: !release)
      !(t.retired.(tid));
    t.retired.(tid) := !keep;
    t.retired_count.(tid) := !kept;
    List.iter (free_node t ~tid) !release;
    Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  (* R = 2·H·t from the live Active-slot population, cached and
     refreshed on crossing (see [Hp.threshold_crossed]); HE previously
     used a flat 128, which under-batched past 8 threads. *)
  let refresh_threshold t =
    Atomic.set t.threshold (Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~tid =
    !(t.retired_count.(tid)) >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         !(t.retired_count.(tid)) >= Atomic.get t.threshold
       end

  (* Background drain — see [Hp.drain_background].  Death eras are
     header stamps, so the shipped nodes carry everything the
     reclaimer-side scan needs. *)
  let drain_background t ~tid ch =
    let batch = !(t.retired.(tid)) and n = !(t.retired_count.(tid)) in
    t.retired.(tid) := [];
    t.retired_count.(tid) := 0;
    let job ~tid:rtid =
      t.retired.(rtid) := List.rev_append batch !(t.retired.(rtid));
      t.retired_count.(rtid) := !(t.retired_count.(rtid)) + n;
      scan t ~tid:rtid
    in
    if not (Channel.send ch ~tid ~count:n job) then begin
      t.retired.(tid) := batch;
      t.retired_count.(tid) := n;
      scan t ~tid
    end

  let set_background t ch = Atomic.set t.bg ch

  let retire t ~tid n =
    Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    Memdom.Hdr.set_death_era h (Memdom.Alloc.era t.alloc);
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Scheme_intf.Counters.retired t.counters ~tid;
    t.retired.(tid) := n :: !(t.retired.(tid));
    incr t.retired_count.(tid);
    incr t.retire_count.(tid);
    if !(t.retire_count.(tid)) mod t.era_freq = 0 then
      ignore (Memdom.Alloc.bump_era t.alloc);
    if threshold_crossed t ~tid then
      match Atomic.get t.bg with
      | None -> scan t ~tid
      | Some ch -> drain_background t ~tid ch

  (* Quarantine cleaner: drop the departing tid's published eras (an
     era left behind would pin every object alive at it, forever) and
     publish its retired list for adoption.  Retire-epoch stamps live in
     the headers, so the bare nodes carry everything a survivor's scan
     needs. *)
  let orphan t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.he.(tid).(idx) none_era
    done;
    refresh_threshold t;
    match !(t.retired.(tid)) with
    | [] -> ()
    | batch ->
        t.retired.(tid) := [];
        t.retired_count.(tid) := 0;
        Orphan.publish t.orphans t.sink ~tid batch

  let orphaned t = Orphan.pending t.orphans

  (* Neutralize hook: drop the victim's published eras — each one pins
     every object whose lifetime interval contains it, which is the
     O(#L*H*t^2) worth of memory a stalled HE reader holds hostage. *)
  let neutralize_clear t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.he.(tid).(idx) none_era
    done;
    refresh_threshold t

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_slots _ = Padded.atomic_array max_hps none_era in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        he = Array.init Registry.max_threads mk_slots;
        retired = Array.init Registry.max_threads (fun _ -> ref []);
        retired_count = Array.init Registry.max_threads (fun _ -> ref 0);
        retire_count = Array.init Registry.max_threads (fun _ -> ref 0);
        scratch = Array.init Registry.max_threads (fun _ -> Scan_set.create ());
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Tuning.create ();
        era_freq = 16;
        counters = Scheme_intf.Counters.create ();
        orphans = Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () -> Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Scheme_intf.Counters.unreclaimed t.counters
  let stats t = Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Scheme_intf.pp_stats_record fmt (stats t)

  let tuning t = t.tuning

  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let flush t =
    for tid = 0 to Registry.registered () - 1 do
      scan t ~tid
    done
end
