(** Reusable scan snapshots: the batching schemes' O(Ht + R·log Ht)
    scan kernel (Michael's original HP paper, §3; DEBRA makes the same
    amortization argument).

    A batching scan (HP, PTB, HE, IBR) must answer "is this retired
    node protected?" for every node of a retired batch.  Walking every
    registered thread's protection rows once {e per node} costs
    O(R·H·t) slot reads per batch; this module snapshots the rows
    {e once} into a sorted scratch array and answers each membership
    query in O(log Ht), for O(Ht + R·log Ht) total.

    The snapshot-once discipline is safe for exactly the reason the
    per-node walk is: a protection of a node retired before the scan
    began was necessarily published (and validated against the source
    link) {e before} retirement, so it is visible to any complete pass
    over the slots — one pass or R passes read the same published
    values.  A protection published {e after} the snapshot belongs to a
    thread whose validation re-reads the link and finds the node
    already unlinked, so it retries without dereferencing.

    Buffers are per-thread scratch, owned by the scanning thread and
    recycled across scans (no allocation at steady state; capacity
    grows geometrically and never shrinks).  Three key shapes share the
    storage:

    - {e points} ({!add}/{!seal}/{!mem}): hazard-pointer uids (HP) or
      published eras (HE, via {!mem_range});
    - {e keyed points} ({!add_kv}/{!seal}/{!find}): uid → slot payload,
      for PTB's liberate, which must know {e which} guard traps a value;
    - {e intervals} ({!add_interval}/{!seal_intervals}/{!overlaps}):
      IBR's per-thread era reservations.

    Node uids are sound keys: a uid is never reused ([Memdom.Alloc]
    draws fresh tickets even in Pool mode) and a retired node's uid is
    immutable until it is freed, so uid equality coincides with
    physical equality for every node a scan tests. *)

type t

val snapshot_scan : bool ref
(** Ablation knob (default [true]): when [false], the batching schemes
    fall back to the legacy per-node O(R·H·t) protection walk.  Global
    and read at scan time, like {!Orc_core.Ptp.publish_with_exchange}. *)

val elide_publish : bool ref
(** Ablation knob (default [true]): when [false], the protecting
    schemes publish unconditionally on every protection, restoring the
    legacy store-always read side (no slot pre-read, no elision). *)

val create : unit -> t
(** A fresh scratch buffer (one per thread per scheme). *)

val reset : t -> unit
(** Empty the buffer, keeping its storage. *)

val size : t -> int
(** Entries currently held. *)

val add : t -> int -> unit
(** Append a point key (unsorted until {!seal}). *)

val add_kv : t -> key:int -> value:int -> unit
(** Append a key with a payload (retrieved by {!find}). *)

val add_interval : t -> lo:int -> hi:int -> unit
(** Append an interval (unsorted until {!seal_intervals}). *)

val seal : t -> unit
(** Sort points (and any payloads) by key; enables {!mem}, {!find} and
    {!mem_range}. *)

val seal_intervals : t -> unit
(** Sort intervals by lower bound and precompute the running maximum of
    upper bounds; enables {!overlaps}. *)

val mem : t -> int -> bool
(** [mem t k]: is the point [k] in the sealed set?  O(log n). *)

val find : t -> int -> int
(** [find t k]: the payload stored with key [k] (any one of them if the
    key was added several times), or [-1] if absent.  O(log n). *)

val mem_range : t -> lo:int -> hi:int -> bool
(** [mem_range t ~lo ~hi]: does the sealed point set intersect
    [\[lo, hi\]]?  (HE: "is any published era within this node's
    lifetime interval?")  O(log n). *)

val overlaps : t -> lo:int -> hi:int -> bool
(** [overlaps t ~lo ~hi]: does any sealed interval intersect
    [\[lo, hi\]]?  (IBR: "does any reservation overlap this node's
    lifetime?")  O(log n). *)
