(** OrcGC (paper §4, Algorithms 3–7): automatic lock-free memory
    reclamation by per-object reference counting of *hard links* plus
    pass-the-pointer protection of *local references*.

    Each tracked object's header carries the [_orc] word (Algorithm 3):
    bits 0–21 a signed hard-link count biased at [orc_zero], bit 23 the
    BRETIRED ownership bit, bits 24+ a sequence bumped on every count
    change.  Hard links are only mutated through {!store}, {!cas} and
    {!exchange}, which update the counts of the old and new targets; when
    a count returns to zero the mutator that observed it claims BRETIRED
    and runs [retire] (Algorithm 5), which may pass the object to a
    protecting thread ([tryHandover]), un-retire it if it became
    reachable again ([clearBitRetired]) or delete it — destructor
    included, which drops the object's own outgoing links and can cascade
    (drained iteratively through the recursive list to bound stack
    depth).

    Local references live in {!Ptr.t} handles owned by a per-operation
    {!with_guard} scope — the OCaml rendering of the C++ RAII [orc_ptr]
    (Algorithm 7), including the hazard-index sharing ([usedHaz]) and the
    copy-direction rule of the assignment operator.

    Deviations from the paper's listing, both required for leak-freedom
    and documented in DESIGN.md: (1) releasing a hazard index drains its
    handover slot (as PTP's clear does); (2) [decrementOrc] clears the
    scratch hazard slot 0 before invoking retire — safe because the
    BRETIRED bit, not the hazard, protects the object inside retire — so
    a retiring thread never hands an object to itself. *)

open Atomicx

let seq_unit = 1 lsl 24
let bretired = 1 lsl 23
let orc_zero = 1 lsl 22
let ocnt x = x land (seq_unit - 1)
let retired_zero = bretired lor orc_zero

(* Capacity of each thread's hazard array; the watermark below keeps
   scans proportional to the indexes actually used. *)
let max_haz = 64

exception Out_of_hazard_indexes

module type NODE = sig
  type t

  val hdr : t -> Memdom.Hdr.t
  (** The header embedded in the node. *)

  val iter_links : t -> (t Link.t -> unit) -> unit
  (** Visit every [orc_atomic] field of the node; the destructor uses it
      to drop the node's outgoing hard links. *)
end

module Make (N : NODE) = struct
  type node = N.t

  type tl_info = {
    hp : node option Atomic.t array; (* published hazardous pointers *)
    (* companion uid plane for tagged links: [load] on a word view
       publishes the target's uid here instead of boxing a [Some]
       (-1 = empty; uid 0 is a real uid).  Scans consult both planes. *)
    hp_uid : int Atomic.t array;
    handovers : node option Atomic.t array;
    used_haz : int array; (* orc_ptr share counts; owner-thread only *)
    free_idx : Bitmask.t; (* taken hazard indexes; owner-thread only *)
    mutable retire_started : bool;
    recursive : node Queue.t;
  }

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    (* the structure's tagged-link handle table, when it opted in via
       [create ?arena]; None keeps every view boxed (legacy behaviour) *)
    arena : node Link.arena option;
    tl : tl_info array;
    watermark : int Atomic.t; (* 1 + highest hazard index ever used *)
    pending : Shard.t; (* BRETIRED-marked objects not yet freed *)
    (* observability counters (monotonic, per-thread sharded) *)
    n_retires : Shard.t; (* objects that entered the retired state *)
    n_handovers : Shard.t; (* tryHandover successes *)
    n_cascades : Shard.t; (* destructor-triggered recursive retires *)
    n_scans : Shard.t; (* tryHandover invocations *)
    n_scan_slots : Shard.t; (* hazard slots visited by those scans *)
    n_elided : Shard.t; (* hazard publishes skipped in [load] *)
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    (* background drain: when set, freshly claimed BRETIRED nodes are
       buffered per thread and shipped to the reclaimer in batches;
       None (the default) retires inline *)
    bg : Reclaim.Channel.t option Atomic.t;
    bg_buf : node list ref array; (* owner-thread only *)
    bg_count : int ref array; (* owner-thread only *)
    (* knob record: the batch size is read per buffered retire so the
       controller can retune it live *)
    mutable tuning : Reclaim.Tuning.t;
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* same keep-alive contract for the neutralize hook *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  type stats = {
    retires : int;
    handovers : int;
    cascades : int;
    scans : int;
    scan_slots : int;
    elided : int;
  }

  (* [gen] snapshots the registry slot generation at guard entry: a
     mismatch at guard exit means a neutralization expired this guard's
     protections mid-flight (see [Reclaim.Neutralize]), and the exit
     path must not act on them. *)
  type guard = { t : t; tid : int; gen : int; mutable ptrs : ptr list }

  (* An orc_ptr holds the link *view* it read (a raw word for tagged
     structures — no box per load) plus the arena needed to decode it
     for the compatibility [Ptr.state]/[Ptr.node] accessors. *)
  and ptr = {
    mutable v : node Link.view;
    mutable idx : int;
    ar : node Link.arena option;
  }

  let name = "orc"
  let alloc_ctx t = t.alloc
  let orc_word n = (N.hdr n).Memdom.Hdr.orc

  (* Placeholder carried where a view has no target; only ever written
     or compared under a [v_has_target] guard, never dereferenced. *)
  let no_node : node = Obj.magic 0
  let target_of t v = Link.v_node_in t.arena v

  (* Clean-pointer view of a node the caller protects, in the
     structure's representation (registers the node in the arena when
     tagged — legal here because every call site still owns the node
     privately or holds it protected). *)
  let v_ptr t n =
    match t.arena with
    | Some a -> Link.v_ptr_in a n
    | None -> Link.v_of_state_in None (Link.Ptr n)
  let unreclaimed t = Shard.get t.pending
  let hazard_watermark t = Atomic.get t.watermark

  let stats t =
    {
      retires = Shard.get t.n_retires;
      handovers = Shard.get t.n_handovers;
      cascades = Shard.get t.n_cascades;
      scans = Shard.get t.n_scans;
      scan_slots = Shard.get t.n_scan_slots;
      elided = Shard.get t.n_elided;
    }

  let note_retired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Shard.incr t.pending ~tid;
    Shard.incr t.n_retires ~tid

  let note_unretired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.unretire h;
    (* unreachable-again objects are no longer "waiting to be freed": a
       later free must not report a latency measured from this aborted
       retire *)
    h.Memdom.Hdr.retired_ns <- 0;
    Shard.add t.pending ~tid (-1)

  (* {2 Retire (Algorithm 5) and its helpers (Algorithm 6)} *)

  (* Scan every published hazardous pointer for [p]; on a match, swap [p]
     into the paired handover slot and return the evictee.  The scan
     covers [registered () * watermark] slots, and rows whose registry
     slot is Free are skipped entirely — a recycled slot cannot hold a
     protection (see [Registry.in_use] for the memory-ordering
     argument), so after a churn burst the scan cost shrinks back to
     the live slot population instead of staying at the monotone
     high-water mark forever. *)
  let try_handover t ~tid p =
    let began = Obs.Sink.scan_begin t.sink in
    let wm = Atomic.get t.watermark in
    let nreg = Registry.registered () in
    let pu = (N.hdr p).Memdom.Hdr.uid in
    let visited = ref 0 in
    let result = ref None in
    (try
       for it = 0 to nreg - 1 do
         if Registry.in_use it then begin
           let tl = t.tl.(it) in
           for idx = 0 to wm - 1 do
             incr visited;
             let hit =
               Atomic.get tl.hp_uid.(idx) = pu
               ||
               match Atomic.get tl.hp.(idx) with
               | Some m -> m == p
               | None -> false
             in
             if hit then begin
               result := Some (Atomic.exchange tl.handovers.(idx) (Some p));
               Shard.incr t.n_handovers ~tid;
               Obs.Sink.on_handover t.sink ~tid ~uid:pu;
               raise_notrace Exit
             end
           done
         end
       done
     with Exit -> ());
    Shard.incr t.n_scans ~tid;
    Shard.add t.n_scan_slots ~tid !visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began;
    !result

  (* clearBitRetired (Algorithm 6 lines 147–158): give up BRETIRED
     ownership; if the count is back at zero immediately re-claim it.
     Returns the re-claimed [_orc] value, or 0 if ownership was lost. *)
  let clear_bit_retired t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (-bretired) - bretired in
    note_unretired t ~tid p;
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      Atomic.set tl.hp.(0) None;
      lorc + bretired
    end
    else begin
      Atomic.set tl.hp.(0) None;
      0
    end

  (* The destructor: drop the node's outgoing hard links (each drop may
     cascade through [dec]), then return the memory. *)
  let rec delete t ~tid p =
    N.iter_links p (fun l ->
        let old = Link.exchange_v l Link.v_null in
        (* the dropped hard link keeps the child alive until [dec] *)
        if Link.v_has_target old then dec t ~tid (Link.v_target_exn l old));
    Memdom.Alloc.free t.alloc (N.hdr p);
    Shard.add t.pending ~tid (-1)

  (* retire (Algorithm 5 lines 92–118).  Precondition: the caller owns
     [p]'s BRETIRED bit.  Reentrant calls (from the destructor's [dec])
     queue onto the recursive list and are drained here, keeping the
     stack depth constant no matter how long the unreachable chain is. *)
  and retire t ~tid p =
    let tl = t.tl.(tid) in
    if tl.retire_started then begin
      Shard.incr t.n_cascades ~tid;
      Obs.Sink.on_cascade t.sink ~tid ~uid:(N.hdr p).Memdom.Hdr.uid;
      Queue.add p tl.recursive
    end
    else begin
      tl.retire_started <- true;
      let cur = ref (Some p) in
      let outer_done = ref false in
      while not !outer_done do
        (try
           while true do
             match !cur with
             | None -> raise_notrace Exit
             | Some p ->
                 let lorc = ref (Atomic.get (orc_word p)) in
                 if ocnt !lorc <> retired_zero then begin
                   let l = clear_bit_retired t ~tid p in
                   if l = 0 then raise_notrace Exit;
                   lorc := l
                 end;
                 (match try_handover t ~tid p with
                 | Some evictee -> cur := evictee
                 | None ->
                     let lorc2 = Atomic.get (orc_word p) in
                     if lorc2 <> !lorc then begin
                       if ocnt !lorc <> retired_zero then
                         if clear_bit_retired t ~tid p = 0 then
                           raise_notrace Exit
                       (* else: revalidate from the top of the loop *)
                     end
                     else begin
                       delete t ~tid p;
                       raise_notrace Exit
                     end)
           done
         with Exit -> ());
        match Queue.take_opt tl.recursive with
        | None -> outer_done := true
        | Some q -> cur := Some q
      done;
      tl.retire_started <- false
    end

  (* Background split point: every non-lifecycle retirement funnels
     through here.  With a channel set, the freshly claimed node is
     buffered thread-locally and the batch shipped to the reclaimer as
     a job — BRETIRED ownership travels with the closure, and [retire]
     revalidates the count under the reclaimer's tid exactly as it
     would inline, so resurrection and handover behave identically.  A
     refused send (channel closed or full — reclaimer dead or behind)
     retires the batch inline: backpressure degrades to the [None]
     path.  The buffer is owner-private plain state, bounded by the
     bg batch knob, and drained by [thread_exit] and [flush]. *)
  and submit_retire t ~tid p =
    match Atomic.get t.bg with
    | None -> retire t ~tid p
    | Some ch ->
        let buf = t.bg_buf.(tid) and cnt = t.bg_count.(tid) in
        buf := p :: !buf;
        incr cnt;
        if !cnt >= Reclaim.Tuning.bg_batch t.tuning then begin
          let batch = !buf and n = !cnt in
          buf := [];
          cnt := 0;
          let job ~tid:rtid = List.iter (fun q -> retire t ~tid:rtid q) batch in
          if not (Reclaim.Channel.send ch ~tid ~count:n job) then
            List.iter (fun q -> retire t ~tid q) batch
        end

  (* incrementOrc (Algorithm 4 lines 38–43).  Caller must hold a
     protected reference to [p]. *)
  and inc t ~tid p =
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit + 1) + seq_unit + 1 in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        submit_retire t ~tid p
      end

  (* decrementOrc (Algorithm 4 lines 45–51): protects [p] in the scratch
     hazard slot 0 for the duration of the count update. *)
  and dec t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit - 1) + seq_unit - 1 in
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      (* Drop the scratch protection before retiring: BRETIRED ownership
         keeps [p] alive inside retire, and a live scratch hazard would
         make the scan hand [p] to ourselves. *)
      Atomic.set tl.hp.(0) None;
      submit_retire t ~tid p
    end
    else Atomic.set tl.hp.(0) None

  (* An orc_ptr stopped referencing [p] (Algorithm 5 lines 84–89): if its
     count sits at zero, claim BRETIRED and retire it. *)
  let maybe_retire t ~tid p =
    let lorc = Atomic.get (orc_word p) in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        submit_retire t ~tid p
      end

  let drain_handover t ~tid idx =
    let tl = t.tl.(tid) in
    match Atomic.get tl.handovers.(idx) with
    | None -> ()
    | Some _ -> (
        match Atomic.exchange tl.handovers.(idx) None with
        | Some q ->
            (* q carries BRETIRED: we own it now *)
            submit_retire t ~tid q
        | None -> ())

  (* Quarantine cleaner (registered with [Registry.on_quarantine] by
     [create]): make a departing tid's row safe to re-issue.  Hazards
     come down first — once the row is all-None, no concurrent
     [try_handover] can park anything new on it — then the owner-local
     hazard-index bookkeeping is reset so the next owner starts from an
     empty mask (scratch slot 0 re-reserved), and finally everything
     the dead row still owned is adopted: queued recursive retires
     (possible only under abrupt death mid-retire) and parked handovers
     all carry BRETIRED, so the operating thread — the departing thread
     itself on the exit path, the survivor under [force_release] —
     owns them the moment it takes them and can run them through the
     normal retire path. *)
  let thread_exit t ~tid =
    let tl = t.tl.(tid) in
    let wm = Atomic.get t.watermark in
    for idx = 0 to wm - 1 do
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1)
    done;
    Array.fill tl.used_haz 0 (Array.length tl.used_haz) 0;
    Bitmask.reset tl.free_idx;
    ignore (Bitmask.acquire tl.free_idx ~from:0);
    tl.retire_started <- false;
    let self = Registry.tid () in
    let rec drain_queue () =
      match Queue.take_opt tl.recursive with
      | Some q ->
          retire t ~tid:self q;
          drain_queue ()
      | None -> ()
    in
    drain_queue ();
    for idx = 0 to wm - 1 do
      match Atomic.exchange tl.handovers.(idx) None with
      | Some q -> retire t ~tid:self q
      | None -> ()
    done;
    (* the dead row's background buffer still owns its BRETIRED batch;
       retire it inline — quarantine must make progress even with the
       reclaimer gone, and the next owner of this tid starts empty *)
    (match !(t.bg_buf.(tid)) with
    | [] -> ()
    | batch ->
        t.bg_buf.(tid) := [];
        t.bg_count.(tid) := 0;
        List.iter (fun q -> retire t ~tid:self q) batch)

  (* Neutralize hook (registered with [Registry.on_neutralize] by
     [create]): expire a stalled tid's protections.  Only the row's
     {e atomic} planes are touched — hazards and uids come down so no
     scan can hand anything new to the row, then the parked handovers
     (sole ownership via exchange) are retired under the neutralizer's
     own tid.  Owner-private plain state (used_haz, free_idx, the
     recursive queue, the background buffer) is left alone: the victim
     may be alive and about to wake, and its buffer is bounded by
     [bg_batch].  The victim detects the generation bump at its next
     scheme entry point and restarts (see [Reclaim.Neutralize]). *)
  let neutralize_clear t ~tid =
    let tl = t.tl.(tid) in
    let wm = Atomic.get t.watermark in
    for idx = 0 to wm - 1 do
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1)
    done;
    let self = Registry.tid () in
    for idx = 0 to wm - 1 do
      match Atomic.exchange tl.handovers.(idx) None with
      | Some q -> retire t ~tid:self q
      | None -> ()
    done

  let set_background t ch = Atomic.set t.bg ch
  let tuning t = t.tuning
  let set_tuning t tn = t.tuning <- tn

  let create ?max_hps:_ ?sink ?arena alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_tl _ =
      let free_idx = Bitmask.create max_haz in
      (* slot 0 is the permanently-reserved scratch hazard *)
      ignore (Bitmask.acquire free_idx ~from:0);
      {
        hp = Padded.atomic_array max_haz None;
        hp_uid = Padded.atomic_array max_haz (-1);
        handovers = Padded.atomic_array max_haz None;
        used_haz = Array.make max_haz 0;
        free_idx;
        retire_started = false;
        recursive = Queue.create ();
      }
    in
    let t =
      {
        alloc;
        sink;
        arena;
        tl = Array.init Registry.max_threads mk_tl;
        watermark = Atomic.make 1;
        pending = Shard.create ();
        n_retires = Shard.create ();
        n_handovers = Shard.create ();
        n_cascades = Shard.create ();
        n_scans = Shard.create ();
        n_scan_slots = Shard.create ();
        n_elided = Shard.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        bg_buf = Array.init Registry.max_threads (fun _ -> ref []);
        bg_count = Array.init Registry.max_threads (fun _ -> ref 0);
        tuning = Reclaim.Tuning.create ();
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> thread_exit t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    (* OrcGC's stats record is richer than [Scheme_intf.stats], so the
       probes are registered directly rather than through
       [register_metrics]; same weak-probe keep-alive contract. *)
    let labels = [ ("scheme", name) ] in
    let counters =
      [
        ("orcgc_retires_total", fun () -> Shard.get t.n_retires);
        ("orcgc_handovers_total", fun () -> Shard.get t.n_handovers);
        ("orcgc_cascades_total", fun () -> Shard.get t.n_cascades);
        ("orcgc_scans_total", fun () -> Shard.get t.n_scans);
        ("orcgc_scan_slots_total", fun () -> Shard.get t.n_scan_slots);
        ("orcgc_elided_total", fun () -> Shard.get t.n_elided);
      ]
    and gauges =
      [
        ("orcgc_unreclaimed", fun () -> Shard.get t.pending);
        ("orcgc_stall_age_max", fun () -> Obs.Watchdog.stall_age_max t.wd);
      ]
    in
    List.iter
      (fun (n, f) ->
        Obs.Metrics.probe Obs.Metrics.default ~labels ~counter:true n f)
      counters;
    List.iter
      (fun (n, f) -> Obs.Metrics.probe Obs.Metrics.default ~labels n f)
      gauges;
    t.metrics <- counters @ gauges;
    t

  (* {2 Hazard-index management (Algorithm 6 lines 119–132)} *)

  let get_new_idx t ~tid ~start =
    let tl = t.tl.(tid) in
    match Bitmask.acquire tl.free_idx ~from:(max 1 start) with
    | None -> raise Out_of_hazard_indexes
    | Some idx ->
        tl.used_haz.(idx) <- 1;
        let rec bump () =
          let cur = Atomic.get t.watermark in
          if cur <= idx then
            if Atomic.compare_and_set t.watermark cur (idx + 1) then ()
            else bump ()
        in
        bump ();
        idx

  let using_idx t ~tid idx =
    if idx <> 0 then t.tl.(tid).used_haz.(idx) <- t.tl.(tid).used_haz.(idx) + 1

  (* clear (Algorithm 5 lines 80–90) extended with the handover drain:
     release one share of hazard slot [idx]; when the slot becomes free,
     unpublish it and adopt anything parked in its handover; finally give
     the no-longer-referenced object its zero-count check. *)
  let clear t ~tid v idx ~reuse =
    let tl = t.tl.(tid) in
    (* decode the view before unpublishing: once the hazard comes down
       the target can be freed and its arena slot re-issued, after
       which the word no longer means this node *)
    let had = Link.v_has_target v in
    let p = if had then target_of t v else no_node in
    let released =
      if (not reuse) && idx <> 0 then begin
        tl.used_haz.(idx) <- tl.used_haz.(idx) - 1;
        tl.used_haz.(idx) = 0
      end
      else false
    in
    if released then begin
      Bitmask.release tl.free_idx idx;
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1);
      drain_handover t ~tid idx
    end;
    if had then maybe_retire t ~tid p

  (* {2 Guards and orc_ptr handles (Algorithm 7)} *)

  module Ptr = struct
    type t = ptr

    let view p = p.v
    let state p = Link.v_state_in p.ar p.v
    let is_marked p = Link.v_is_marked p.v
    let is_poison p = Link.v_is_poison p.v
    let is_null p = Link.v_is_null p.v

    let node p =
      if Link.v_has_target p.v then Some (Link.v_node_in p.ar p.v) else None

    let node_exn p =
      if Link.v_has_target p.v then Link.v_node_in p.ar p.v
      else invalid_arg "Orc.Ptr.node_exn: null"

    let same_node a b =
      match Link.v_has_target a.v, Link.v_has_target b.v with
      | true, true -> Link.v_node_in a.ar a.v == Link.v_node_in b.ar b.v
      | false, false -> true
      | true, false | false, true -> false

    (* Replace the held view by another for the *same* target — used
       after a successful CAS to keep validating against the value
       actually installed in memory.  Protection is unchanged, so the
       targets must match. *)
    let retag_v p v' =
      let ok =
        match Link.v_has_target v', Link.v_has_target p.v with
        | true, true -> Link.v_node_in p.ar v' == Link.v_node_in p.ar p.v
        | false, false -> true
        | true, false | false, true -> false
      in
      if ok then p.v <- v'
      else invalid_arg "Orc.Ptr.retag: different target"

    let retag p st = retag_v p (Link.v_of_state_in p.ar st)
  end

  let ptr g =
    let p =
      { v = Link.v_null; idx = get_new_idx g.t ~tid:g.tid ~start:1; ar = g.t.arena }
    in
    g.ptrs <- p :: g.ptrs;
    p

  (* Give [p] sole ownership of a hazard slot so it may be overwritten. *)
  let ensure_exclusive g p =
    let tl = g.t.tl.(g.tid) in
    if p.idx = 0 || tl.used_haz.(p.idx) > 1 then begin
      if p.idx <> 0 then tl.used_haz.(p.idx) <- tl.used_haz.(p.idx) - 1;
      p.idx <- get_new_idx g.t ~tid:g.tid ~start:1
    end

  (* orc_atomic<T*>::load() (Algorithm 4 lines 76–79) fused with the
     orc_ptr move: protect [link]'s current state directly in [p]'s own
     hazard slot, with the publish-and-revalidate loop of Algorithm 2.
     The link must be reachable through a protected node or a root, and
     must not belong to the node [p] itself currently protects.

     The protect loop lives at functor level with its free variables as
     arguments: an inner [let rec] would allocate its closure on every
     load, spoiling the allocation-free word path. *)
  let rec load_loop t ~tid slot uid_slot link v =
    if not (Link.v_has_target v) then begin
      Atomic.set slot None;
      Atomic.set uid_slot (-1);
      let v' = Link.view link in
      if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
    end
    else if Link.v_is_word v then begin
      (* allocation-free publish: the target's uid goes to the uid
         plane, and the validation re-derefs the word — value-equal
         words do not guarantee a stable slot meaning (see hp.ml) *)
      let n = Link.v_target_exn link v in
      let u = (N.hdr n).Memdom.Hdr.uid in
      if !Reclaim.Scan_set.elide_publish && Atomic.get uid_slot = u then begin
        Shard.incr t.n_elided ~tid;
        Obs.Sink.on_elide t.sink ~tid;
        let v' = Link.view link in
        if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
      end
      else begin
        Atomic.set uid_slot u;
        (match Atomic.get slot with
        | Some _ -> Atomic.set slot None
        | None -> ());
        let v' = Link.view link in
        if
          Link.view_eq v' v
          && Link.v_target_exn link v == n
          && (N.hdr n).Memdom.Hdr.uid = u
        then v
        else load_loop t ~tid slot uid_slot link v'
      end
    end
    else begin
      let n = Link.v_target_exn link v in
      (if
         !Reclaim.Scan_set.elide_publish
         && match Atomic.get slot with Some m -> m == n | None -> false
       then begin
         (* slot already publishes [n] (retry, or a mark-only change):
            the earlier store still protects it for every scanner *)
         Shard.incr t.n_elided ~tid;
         Obs.Sink.on_elide t.sink ~tid
       end
       else Atomic.set slot (Some n));
      let v' = Link.view link in
      if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
    end

  let load g link p =
    Reclaim.Neutralize.check ~tid:g.tid;
    ensure_exclusive g p;
    let t = g.t and tid = g.tid in
    let tl = t.tl.(tid) in
    let old = p.v in
    let had_old = Link.v_has_target old in
    (* decode the outgoing target before its hazard slot is overwritten:
       after the overwrite the old word may stop meaning this node *)
    let old_n = if had_old then target_of t old else no_node in
    p.v <-
      load_loop t ~tid tl.hp.(p.idx) tl.hp_uid.(p.idx) link (Link.view link);
    if had_old && not (Link.v_same old p.v) then maybe_retire t ~tid old_n

  (* orc_ptr assignment (Algorithm 7 lines 182–194): copies between
     hazard slots may only travel in the scan direction (upward), so a
     copy to a lower slot re-publishes at a fresh higher index, while a
     copy to a higher slot shares the source's index. *)
  let assign g dst src =
    Reclaim.Neutralize.check ~tid:g.tid;
    if dst != src then begin
      let tl = g.t.tl.(g.tid) in
      let reuse = src.idx < dst.idx && tl.used_haz.(dst.idx) = 1 in
      clear g.t ~tid:g.tid dst.v dst.idx ~reuse;
      if src.idx < dst.idx then begin
        if not reuse then dst.idx <- get_new_idx g.t ~tid:g.tid ~start:(src.idx + 1);
        (* re-publish src's protection at dst's slot, keeping the two
           planes coherent; src's own slot protects the target across
           this window *)
        if not (Link.v_has_target src.v) then begin
          Atomic.set tl.hp.(dst.idx) None;
          Atomic.set tl.hp_uid.(dst.idx) (-1)
        end
        else begin
          let n = target_of g.t src.v in
          if Link.v_is_word src.v then begin
            Atomic.set tl.hp_uid.(dst.idx) (N.hdr n).Memdom.Hdr.uid;
            Atomic.set tl.hp.(dst.idx) None
          end
          else begin
            Atomic.set tl.hp.(dst.idx) (Some n);
            Atomic.set tl.hp_uid.(dst.idx) (-1)
          end
        end
      end
      else begin
        using_idx g.t ~tid:g.tid src.idx;
        dst.idx <- src.idx
      end;
      dst.v <- src.v
    end

  (* make_orc<T> (Algorithm 3 lines 31–36): allocate, then protect the
     not-yet-shared node in a fresh slot. *)
  let run_mk g mk hdr =
    match mk hdr with
    | n -> n
    | exception e ->
        (* constructor failed: the header must not leak *)
        Memdom.Alloc.free g.t.alloc hdr;
        raise e

  let alloc_node g mk =
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    let p = ptr g in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    p.v <- v_ptr g.t n;
    p

  (* make_orc into an existing handle, for loops that allocate many nodes
     under one guard without exhausting hazard indexes. *)
  let alloc_node_into g p mk =
    Reclaim.Neutralize.check ~tid:g.tid;
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    ensure_exclusive g p;
    let old = p.v in
    let had_old = Link.v_has_target old in
    let old_n = if had_old then target_of g.t old else no_node in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    Atomic.set g.t.tl.(g.tid).hp_uid.(p.idx) (-1);
    p.v <- v_ptr g.t n;
    if had_old && not (old_n == n) then maybe_retire g.t ~tid:g.tid old_n;
    n

  (* {2 orc_atomic mutators (Algorithm 4)} *)

  (* store (lines 63–67).  The target of [st], if any, must be protected
     by the caller (a live Ptr or a fresh node).

     All the mutators below start with a neutralization check: they act
     on the strength of the caller's protections, which a neutralized
     guard no longer holds (see [Reclaim.Neutralize]). *)
  let store g link st =
    Reclaim.Neutralize.check ~tid:g.tid;
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ()

  (* compare_exchange (lines 69–74): counts move only on success, and a
     pure mark/unmark transition on the same target leaves them alone. *)
  let cas g link ~expected ~desired =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.cas link expected desired then begin
      let te = Link.target expected and td = Link.target desired in
      (match te, td with
      | Some a, Some b when a == b -> ()
      | _ ->
          (match td with Some n -> inc g.t ~tid:g.tid n | None -> ());
          (match te with Some n -> dec g.t ~tid:g.tid n | None -> ()));
      true
    end
    else false

  let exchange g link st =
    Reclaim.Neutralize.check ~tid:g.tid;
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    (match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ());
    old

  (* View-plane mutators: same count discipline as above, but the old
     and new targets are decoded from views instead of boxed states —
     no allocation on tagged structures. *)

  let store_v g link v =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.v_has_target v then inc g.t ~tid:g.tid (Link.v_target_exn link v);
    let old = Link.exchange_v link v in
    (* the exchanged-out hard link is ours now; it keeps the old target
       alive until this dec *)
    if Link.v_has_target old then dec g.t ~tid:g.tid (Link.v_target_exn link old)

  let cas_v g link ~expected ~desired =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.cas_v link expected desired then begin
      let he = Link.v_has_target expected and hd = Link.v_has_target desired in
      let te = if he then Link.v_target_exn link expected else no_node in
      let td = if hd then Link.v_target_exn link desired else no_node in
      (if he && hd && te == td then ()
       else begin
         if hd then inc g.t ~tid:g.tid td;
         if he then dec g.t ~tid:g.tid te
       end);
      true
    end
    else false

  (* Build a link during single-threaded construction of a node or root
     whose initial target is private or otherwise protected. *)
  let new_link g st =
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    match g.t.arena with
    | Some a -> Link.make_in a st
    | None -> Link.make st

  let new_link_v g v =
    if Link.v_has_target v then inc g.t ~tid:g.tid (Link.v_node_in g.t.arena v);
    match g.t.arena with
    | Some a -> Link.make_of_view a v
    | None -> Link.make (Link.v_state_in None v)

  let with_guard t f =
    let tid = Registry.tid () in
    (* handshake: a pending neutralization from a previous guard is
       acknowledged silently here — nothing is protected yet — and again
       in [finally], which must not raise (it runs on exception paths,
       [Neutralized] included) *)
    Reclaim.Neutralize.ack ~tid;
    let g = { t; tid; gen = Registry.generation tid; ptrs = [] } in
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid;
    let finally () =
      Reclaim.Neutralize.ack ~tid;
      let tl = t.tl.(tid) in
      if Registry.generation tid = g.gen then
        List.iter (fun p -> clear t ~tid p.v p.idx ~reuse:false) g.ptrs
      else
        (* A neutralization expired this guard: the hazard planes are
           already down and the parked handovers were adopted by the
           neutralizer.  Skipping the per-handle [maybe_retire] is
           mandatory, not an optimization — the unprotected targets may
           already be freed and their headers re-issued, so a stale
           zero-count claim here would retire a {e live} object.  Any
           zero-count node this guard referenced is (or will be)
           claimed by the thread whose dec zeroed it, or was parked on
           this row and adopted.  Only the owner-local index
           bookkeeping is reset, plus a drain for stragglers parked by
           scanners that read the hazards before they came down. *)
        List.iter
          (fun p ->
            if p.idx <> 0 then begin
              tl.used_haz.(p.idx) <- tl.used_haz.(p.idx) - 1;
              if tl.used_haz.(p.idx) = 0 then begin
                Bitmask.release tl.free_idx p.idx;
                Atomic.set tl.hp.(p.idx) None;
                Atomic.set tl.hp_uid.(p.idx) (-1);
                drain_handover t ~tid p.idx
              end
            end)
          g.ptrs;
      g.ptrs <- [];
      Atomic.set tl.hp.(0) None;
      drain_handover t ~tid 0;
      Obs.Sink.guard_end t.sink ~tid;
      Obs.Watchdog.leave t.wd ~tid
    in
    Fun.protect ~finally (fun () -> f g)

  (* Quiesced drain for tests and shutdown: unpublish every hazard, adopt
     every parked object, and give every remaining BRETIRED owner-less
     object nothing — objects still pending after this are genuinely
     reachable (or leaked, which the tests assert against). *)
  let flush t =
    let tid = Registry.tid () in
    let wm = Atomic.get t.watermark in
    let nreg = Registry.registered () in
    for it = 0 to nreg - 1 do
      for idx = 0 to wm - 1 do
        Atomic.set t.tl.(it).hp.(idx) None;
        Atomic.set t.tl.(it).hp_uid.(idx) (-1)
      done
    done;
    for it = 0 to nreg - 1 do
      for idx = 0 to wm - 1 do
        match Atomic.exchange t.tl.(it).handovers.(idx) None with
        | Some q -> retire t ~tid q
        | None -> ()
      done
    done;
    (* background buffers: batches parked by [submit_retire] that never
       reached the channel threshold still carry BRETIRED.  A retire
       here can cascade through [dec] back into [submit_retire] and
       re-buffer under an active channel, hence the fixpoint. *)
    let rec drain_bufs () =
      let progress = ref false in
      for it = 0 to nreg - 1 do
        match !(t.bg_buf.(it)) with
        | [] -> ()
        | batch ->
            t.bg_buf.(it) := [];
            t.bg_count.(it) := 0;
            progress := true;
            List.iter (fun q -> retire t ~tid q) batch
      done;
      if !progress then drain_bufs ()
    in
    drain_bufs ()
end
