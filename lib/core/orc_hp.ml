(** OrcGC over a hazard-pointer backend — the paper's §4 remark made
    concrete: "Most of the existing pointer-based reclamation schemes
    [14, 19, 24, 25] can be used by OrcGC to protect the local
    references of type orc_ptr."

    This variant keeps the whole automatic layer of {!Orc} — the [_orc]
    word, [incrementOrc]/[decrementOrc], [clearBitRetired], guards and
    pointer handles — but replaces the pass-the-pointer retirement with
    classic HP-style *thread-local retired lists* scanned against the
    published hazards.  Two consequences, both intentional and measured
    by the ablation benchmark:

    - the unreclaimed-object bound degrades from PTP's linear O(Ht) to
      HP's quadratic O(Ht²) (each thread parks up to a scan threshold);
    - the recursive-list machinery of Algorithm 5 becomes unnecessary —
      a cascading destructor merely *pushes* to the retired list, which
      is already iterative.

    Everything else (Lemma 1's seq validation before delete, BRETIRED
    ownership, un-retiring on resurrection) is unchanged, demonstrating
    that OrcGC's automatic layer is genuinely backend-agnostic. *)

open Atomicx

let seq_unit = Orc.seq_unit
let bretired = Orc.bretired
let orc_zero = Orc.orc_zero
let ocnt = Orc.ocnt
let retired_zero = Orc.retired_zero
let max_haz = Orc.max_haz

module Make (N : Orc.NODE) = struct
  type node = N.t

  type tl_info = {
    hp : node option Atomic.t array;
    (* companion uid plane for tagged links: [load] on a word view
       publishes the target's uid here instead of boxing a [Some]
       (-1 = empty; uid 0 is a real uid).  Scans consult both planes. *)
    hp_uid : int Atomic.t array;
    used_haz : int array;
    free_idx : Bitmask.t;
    mutable retired : node list;
    mutable retired_count : int;
  }

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    (* the structure's tagged-link handle table, when it opted in via
       [create ?arena]; None keeps every view boxed (legacy behaviour) *)
    arena : node Link.arena option;
    tl : tl_info array;
    watermark : int Atomic.t;
    hps : int;
    threshold : int Atomic.t; (* cached scaled R, refreshed on crossing *)
    mutable tuning : Reclaim.Tuning.t;
    pending : Shard.t;
    n_elided : Shard.t; (* hazard publishes skipped in [load] *)
    orphans : node Reclaim.Orphan.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    (* background drain: when set, a threshold crossing ships the
       swapped-out retired list to the reclaimer instead of scanning
       inline; None (the default) scans inline *)
    bg : Reclaim.Channel.t option Atomic.t;
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* same keep-alive contract for the neutralize hook *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  (* [gen] snapshots the registry slot generation at guard entry: a
     mismatch at guard exit means a neutralization expired this guard's
     protections mid-flight (see [Reclaim.Neutralize]), and the exit
     path must not act on them. *)
  type guard = { t : t; tid : int; gen : int; mutable ptrs : ptr list }

  (* An orc_ptr holds the link *view* it read (a raw word for tagged
     structures — no box per load) plus the arena needed to decode it
     for the compatibility [Ptr.state]/[Ptr.node] accessors. *)
  and ptr = {
    mutable v : node Link.view;
    mutable idx : int;
    ar : node Link.arena option;
  }

  let name = "orc-hp"
  let alloc_ctx t = t.alloc
  let orc_word n = (N.hdr n).Memdom.Hdr.orc

  (* Placeholder carried where a view has no target; only ever written
     or compared under a [v_has_target] guard, never dereferenced. *)
  let no_node : node = Obj.magic 0
  let target_of t v = Link.v_node_in t.arena v

  let v_ptr t n =
    match t.arena with
    | Some a -> Link.v_ptr_in a n
    | None -> Link.v_of_state_in None (Link.Ptr n)

  let unreclaimed t = Shard.get t.pending
  let elided t = Shard.get t.n_elided

  (* R = 2·H·t (scaled by the knob record) from the live Active-slot
     population, cached and refreshed on crossing / quarantine /
     neutralization, matching the manual HP baseline (see
     [Reclaim.Hp.threshold_crossed]) *)
  let refresh_threshold t =
    Atomic.set t.threshold (Reclaim.Tuning.threshold t.tuning ~hps:t.hps)

  let threshold_crossed t ~count =
    count >= Atomic.get t.threshold
    && begin
         refresh_threshold t;
         count >= Atomic.get t.threshold
       end

  let note_retired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Shard.incr t.pending ~tid

  let note_unretired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.unretire h;
    h.Memdom.Hdr.retired_ns <- 0;
    Shard.add t.pending ~tid (-1)

  let protected_by_any t ~visited p =
    let wm = Atomic.get t.watermark in
    let pu = (N.hdr p).Memdom.Hdr.uid in
    let found = ref false in
    (try
       (* rows whose registry slot is Free cannot hold a protection —
          skip them so scan cost tracks live slots, not the monotone
          high-water mark (see [Registry.in_use]) *)
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then begin
           let tl = t.tl.(it) in
           for idx = 0 to wm - 1 do
             incr visited;
             let hit =
               (* uids never repeat, so uid equality is node identity *)
               Atomic.get tl.hp_uid.(idx) = pu
               ||
               match Atomic.get tl.hp.(idx) with
               | Some m -> m == p
               | None -> false
             in
             if hit then begin
               found := true;
               raise_notrace Exit
             end
           done
         end
       done
     with Exit -> ());
    !found

  (* clearBitRetired, identical to the PTP-backed version. *)
  let clear_bit_retired t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (-bretired) - bretired in
    note_unretired t ~tid p;
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      Atomic.set tl.hp.(0) None;
      lorc + bretired
    end
    else begin
      Atomic.set tl.hp.(0) None;
      0
    end

  (* Retiring = parking on the thread-local list; reclamation happens in
     [scan].  Cascades need no recursion guard: a destructor's [dec]
     just pushes more entries. *)
  let rec retire t ~tid p =
    let tl = t.tl.(tid) in
    tl.retired <- p :: tl.retired;
    tl.retired_count <- tl.retired_count + 1;
    if threshold_crossed t ~count:tl.retired_count then
      match Atomic.get t.bg with
      | None -> scan t ~tid
      | Some ch -> drain_background t ~tid ch

  (* Background split point: ship the swapped-out retired list to the
     reclaimer as a job that splices it into the {e running} thread's
     list and scans — the batch left this thread's list before the
     send, so exactly one owner ever touches it.  A refused send
     (channel closed or full — reclaimer dead or behind) restores the
     batch and scans inline: backpressure degrades to the [None]
     path. *)
  and drain_background t ~tid ch =
    let tl = t.tl.(tid) in
    let batch = tl.retired and n = tl.retired_count in
    tl.retired <- [];
    tl.retired_count <- 0;
    let job ~tid:rtid =
      let rl = t.tl.(rtid) in
      rl.retired <- List.rev_append batch rl.retired;
      rl.retired_count <- rl.retired_count + n;
      scan t ~tid:rtid
    in
    if not (Reclaim.Channel.send ch ~tid ~count:n job) then begin
      tl.retired <- List.rev_append batch tl.retired;
      tl.retired_count <- tl.retired_count + n;
      scan t ~tid
    end

  and scan t ~tid =
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let tl = t.tl.(tid) in
    (* fold dead threads' published lists into this scan's batch *)
    let batch =
      List.rev_append
        (Reclaim.Orphan.adopt t.orphans t.sink ~tid)
        tl.retired
    in
    tl.retired <- [];
    tl.retired_count <- 0;
    List.iter
      (fun p ->
        let keep () =
          tl.retired <- p :: tl.retired;
          tl.retired_count <- tl.retired_count + 1
        in
        let lorc = Atomic.get (orc_word p) in
        if ocnt lorc <> retired_zero then begin
          (* resurrected: release ownership; re-park only if re-claimed *)
          if clear_bit_retired t ~tid p <> 0 then keep ()
        end
        else if protected_by_any t ~visited p then keep ()
        else
          (* Lemma 1: the seq must not have moved across the hazard scan *)
          let lorc2 = Atomic.get (orc_word p) in
          if lorc2 <> lorc then keep () else delete t ~tid p)
      batch;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  and delete t ~tid p =
    N.iter_links p (fun l ->
        let old = Link.exchange_v l Link.v_null in
        (* the dropped hard link keeps the child alive until [dec] *)
        if Link.v_has_target old then dec t ~tid (Link.v_target_exn l old));
    Memdom.Alloc.free t.alloc (N.hdr p);
    Shard.add t.pending ~tid (-1)

  and inc t ~tid p =
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit + 1) + seq_unit + 1 in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        retire t ~tid p
      end

  and dec t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit - 1) + seq_unit - 1 in
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      Atomic.set tl.hp.(0) None;
      retire t ~tid p
    end
    else Atomic.set tl.hp.(0) None

  let maybe_retire t ~tid p =
    let lorc = Atomic.get (orc_word p) in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        retire t ~tid p
      end

  (* Quarantine cleaner: lower the departing tid's hazards (a leftover
     hazard would pin its target in every survivor's scan forever),
     reset the owner-local index bookkeeping for the next owner of this
     tid, and publish the retired list to the orphan pool — survivors
     fold it into their next [scan], which re-runs the full Lemma-1 /
     resurrection checks on every adopted node.  (Publishing rather
     than re-retiring matters on the exit path: re-retiring would just
     re-park onto the very list being vacated.) *)
  let thread_exit t ~tid =
    let tl = t.tl.(tid) in
    let wm = Atomic.get t.watermark in
    for idx = 0 to wm - 1 do
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1)
    done;
    Array.fill tl.used_haz 0 (Array.length tl.used_haz) 0;
    Bitmask.reset tl.free_idx;
    ignore (Bitmask.acquire tl.free_idx ~from:0);
    match tl.retired with
    | [] -> ()
    | batch ->
        tl.retired <- [];
        tl.retired_count <- 0;
        Reclaim.Orphan.publish t.orphans t.sink ~tid batch;
        refresh_threshold t

  (* Neutralize hook (registered with [Registry.on_neutralize] by
     [create]): expire a stalled tid's protections by lowering its
     hazard planes — the row's only {e atomic} state.  Owner-private
     plain state (used_haz, free_idx, the retired list) is left alone:
     the victim may be alive and about to wake, and its retired list
     is bounded by the scan threshold.  The victim detects the
     generation bump at its next scheme entry point and restarts (see
     [Reclaim.Neutralize]). *)
  let neutralize_clear t ~tid =
    let tl = t.tl.(tid) in
    let wm = Atomic.get t.watermark in
    for idx = 0 to wm - 1 do
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1)
    done;
    (* the Active population just changed shape: re-derive R so the
       cached value does not linger at a stale width *)
    refresh_threshold t

  let set_background t ch = Atomic.set t.bg ch
  let tuning t = t.tuning
  let set_tuning t tn =
    t.tuning <- tn;
    refresh_threshold t

  let create ?(max_hps = 8) ?sink ?arena alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_tl _ =
      let free_idx = Bitmask.create max_haz in
      ignore (Bitmask.acquire free_idx ~from:0) (* scratch slot 0 *);
      {
        hp = Padded.atomic_array max_haz None;
        hp_uid = Padded.atomic_array max_haz (-1);
        used_haz = Array.make max_haz 0;
        free_idx;
        retired = [];
        retired_count = 0;
      }
    in
    let t =
      {
        alloc;
        sink;
        arena;
        tl = Array.init Registry.max_threads mk_tl;
        watermark = Atomic.make 1;
        hps = max_hps;
        threshold = Atomic.make (max 2 (2 * max_hps));
        tuning = Reclaim.Tuning.create ();
        pending = Shard.create ();
        n_elided = Shard.create ();
        orphans = Reclaim.Orphan.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> thread_exit t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    let labels = [ ("scheme", name) ] in
    let counters =
      [ ("orcgc_elided_total", fun () -> Shard.get t.n_elided) ]
    and gauges =
      [
        ("orcgc_unreclaimed", fun () -> Shard.get t.pending);
        ("orcgc_stall_age_max", fun () -> Obs.Watchdog.stall_age_max t.wd);
      ]
    in
    List.iter
      (fun (n, f) ->
        Obs.Metrics.probe Obs.Metrics.default ~labels ~counter:true n f)
      counters;
    List.iter
      (fun (n, f) -> Obs.Metrics.probe Obs.Metrics.default ~labels n f)
      gauges;
    t.metrics <- counters @ gauges;
    t

  (* {2 Hazard-index management and pointer handles — identical to the
     PTP-backed implementation, minus the handover drains.} *)

  let get_new_idx t ~tid ~start =
    let tl = t.tl.(tid) in
    match Bitmask.acquire tl.free_idx ~from:(max 1 start) with
    | None -> raise Orc.Out_of_hazard_indexes
    | Some idx ->
        tl.used_haz.(idx) <- 1;
        let rec bump () =
          let cur = Atomic.get t.watermark in
          if cur <= idx then
            if Atomic.compare_and_set t.watermark cur (idx + 1) then ()
            else bump ()
        in
        bump ();
        idx

  let using_idx t ~tid idx =
    if idx <> 0 then t.tl.(tid).used_haz.(idx) <- t.tl.(tid).used_haz.(idx) + 1

  let clear t ~tid v idx ~reuse =
    let tl = t.tl.(tid) in
    (* decode the view before unpublishing: once the hazard comes down
       the target can be freed and its arena slot re-issued, after
       which the word no longer means this node *)
    let had = Link.v_has_target v in
    let p = if had then target_of t v else no_node in
    let released =
      if (not reuse) && idx <> 0 then begin
        tl.used_haz.(idx) <- tl.used_haz.(idx) - 1;
        tl.used_haz.(idx) = 0
      end
      else false
    in
    if released then begin
      Bitmask.release tl.free_idx idx;
      Atomic.set tl.hp.(idx) None;
      Atomic.set tl.hp_uid.(idx) (-1)
    end;
    if had then maybe_retire t ~tid p

  module Ptr = struct
    type t = ptr

    let view p = p.v
    let state p = Link.v_state_in p.ar p.v
    let is_marked p = Link.v_is_marked p.v
    let is_poison p = Link.v_is_poison p.v
    let is_null p = Link.v_is_null p.v

    let node p =
      if Link.v_has_target p.v then Some (Link.v_node_in p.ar p.v) else None

    let node_exn p =
      if Link.v_has_target p.v then Link.v_node_in p.ar p.v
      else invalid_arg "Orc_hp.Ptr.node_exn: null"

    let same_node a b =
      match Link.v_has_target a.v, Link.v_has_target b.v with
      | true, true -> Link.v_node_in a.ar a.v == Link.v_node_in b.ar b.v
      | false, false -> true
      | true, false | false, true -> false

    let retag_v p v' =
      let ok =
        match Link.v_has_target v', Link.v_has_target p.v with
        | true, true -> Link.v_node_in p.ar v' == Link.v_node_in p.ar p.v
        | false, false -> true
        | true, false | false, true -> false
      in
      if ok then p.v <- v'
      else invalid_arg "Orc_hp.Ptr.retag: different target"

    let retag p st = retag_v p (Link.v_of_state_in p.ar st)
  end

  let ptr g =
    let p =
      { v = Link.v_null; idx = get_new_idx g.t ~tid:g.tid ~start:1; ar = g.t.arena }
    in
    g.ptrs <- p :: g.ptrs;
    p

  let ensure_exclusive g p =
    let tl = g.t.tl.(g.tid) in
    if p.idx = 0 || tl.used_haz.(p.idx) > 1 then begin
      if p.idx <> 0 then tl.used_haz.(p.idx) <- tl.used_haz.(p.idx) - 1;
      p.idx <- get_new_idx g.t ~tid:g.tid ~start:1
    end

  (* The protect loop lives at functor level with its free variables as
     arguments: an inner [let rec] would allocate its closure on every
     load, spoiling the allocation-free word path. *)
  let rec load_loop t ~tid slot uid_slot link v =
    if not (Link.v_has_target v) then begin
      Atomic.set slot None;
      Atomic.set uid_slot (-1);
      let v' = Link.view link in
      if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
    end
    else if Link.v_is_word v then begin
      (* allocation-free publish: the target's uid goes to the uid
         plane, and the validation re-derefs the word — value-equal
         words do not guarantee a stable slot meaning (see hp.ml) *)
      let n = Link.v_target_exn link v in
      let u = (N.hdr n).Memdom.Hdr.uid in
      if !Reclaim.Scan_set.elide_publish && Atomic.get uid_slot = u then begin
        Shard.incr t.n_elided ~tid;
        Obs.Sink.on_elide t.sink ~tid;
        let v' = Link.view link in
        if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
      end
      else begin
        Atomic.set uid_slot u;
        (match Atomic.get slot with
        | Some _ -> Atomic.set slot None
        | None -> ());
        let v' = Link.view link in
        if
          Link.view_eq v' v
          && Link.v_target_exn link v == n
          && (N.hdr n).Memdom.Hdr.uid = u
        then v
        else load_loop t ~tid slot uid_slot link v'
      end
    end
    else begin
      let n = Link.v_target_exn link v in
      (if
         !Reclaim.Scan_set.elide_publish
         && match Atomic.get slot with Some m -> m == n | None -> false
       then begin
         (* slot already publishes [n] (retry, or a mark-only change):
            the earlier store still protects it for every scanner *)
         Shard.incr t.n_elided ~tid;
         Obs.Sink.on_elide t.sink ~tid
       end
       else Atomic.set slot (Some n));
      let v' = Link.view link in
      if Link.view_eq v' v then v else load_loop t ~tid slot uid_slot link v'
    end

  let load g link p =
    Reclaim.Neutralize.check ~tid:g.tid;
    ensure_exclusive g p;
    let t = g.t and tid = g.tid in
    let tl = t.tl.(tid) in
    let old = p.v in
    let had_old = Link.v_has_target old in
    (* decode the outgoing target before its hazard slot is overwritten:
       after the overwrite the old word may stop meaning this node *)
    let old_n = if had_old then target_of t old else no_node in
    p.v <-
      load_loop t ~tid tl.hp.(p.idx) tl.hp_uid.(p.idx) link (Link.view link);
    if had_old && not (Link.v_same old p.v) then maybe_retire t ~tid old_n

  let assign g dst src =
    Reclaim.Neutralize.check ~tid:g.tid;
    if dst != src then begin
      let tl = g.t.tl.(g.tid) in
      let reuse = src.idx < dst.idx && tl.used_haz.(dst.idx) = 1 in
      clear g.t ~tid:g.tid dst.v dst.idx ~reuse;
      if src.idx < dst.idx then begin
        if not reuse then dst.idx <- get_new_idx g.t ~tid:g.tid ~start:(src.idx + 1);
        (* re-publish src's protection at dst's slot, keeping the two
           planes coherent; src's own slot protects the target across
           this window *)
        if not (Link.v_has_target src.v) then begin
          Atomic.set tl.hp.(dst.idx) None;
          Atomic.set tl.hp_uid.(dst.idx) (-1)
        end
        else begin
          let n = target_of g.t src.v in
          if Link.v_is_word src.v then begin
            Atomic.set tl.hp_uid.(dst.idx) (N.hdr n).Memdom.Hdr.uid;
            Atomic.set tl.hp.(dst.idx) None
          end
          else begin
            Atomic.set tl.hp.(dst.idx) (Some n);
            Atomic.set tl.hp_uid.(dst.idx) (-1)
          end
        end
      end
      else begin
        using_idx g.t ~tid:g.tid src.idx;
        dst.idx <- src.idx
      end;
      dst.v <- src.v
    end

  let run_mk g mk hdr =
    match mk hdr with
    | n -> n
    | exception e ->
        Memdom.Alloc.free g.t.alloc hdr;
        raise e

  let alloc_node g mk =
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    let p = ptr g in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    p.v <- v_ptr g.t n;
    p

  let alloc_node_into g p mk =
    Reclaim.Neutralize.check ~tid:g.tid;
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    ensure_exclusive g p;
    let old = p.v in
    let had_old = Link.v_has_target old in
    let old_n = if had_old then target_of g.t old else no_node in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    Atomic.set g.t.tl.(g.tid).hp_uid.(p.idx) (-1);
    p.v <- v_ptr g.t n;
    if had_old && not (old_n == n) then maybe_retire g.t ~tid:g.tid old_n;
    n

  (* All the mutators below start with a neutralization check: they act
     on the strength of the caller's protections, which a neutralized
     guard no longer holds (see [Reclaim.Neutralize]). *)
  let store g link st =
    Reclaim.Neutralize.check ~tid:g.tid;
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ()

  let cas g link ~expected ~desired =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.cas link expected desired then begin
      let te = Link.target expected and td = Link.target desired in
      (match te, td with
      | Some a, Some b when a == b -> ()
      | _ ->
          (match td with Some n -> inc g.t ~tid:g.tid n | None -> ());
          (match te with Some n -> dec g.t ~tid:g.tid n | None -> ()));
      true
    end
    else false

  let exchange g link st =
    Reclaim.Neutralize.check ~tid:g.tid;
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    (match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ());
    old

  (* View-plane mutators: same count discipline as above, but the old
     and new targets are decoded from views instead of boxed states —
     no allocation on tagged structures. *)

  let store_v g link v =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.v_has_target v then inc g.t ~tid:g.tid (Link.v_target_exn link v);
    let old = Link.exchange_v link v in
    if Link.v_has_target old then dec g.t ~tid:g.tid (Link.v_target_exn link old)

  let cas_v g link ~expected ~desired =
    Reclaim.Neutralize.check ~tid:g.tid;
    if Link.cas_v link expected desired then begin
      let he = Link.v_has_target expected and hd = Link.v_has_target desired in
      let te = if he then Link.v_target_exn link expected else no_node in
      let td = if hd then Link.v_target_exn link desired else no_node in
      (if he && hd && te == td then ()
       else begin
         if hd then inc g.t ~tid:g.tid td;
         if he then dec g.t ~tid:g.tid te
       end);
      true
    end
    else false

  let new_link g st =
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    match g.t.arena with
    | Some a -> Link.make_in a st
    | None -> Link.make st

  let new_link_v g v =
    if Link.v_has_target v then inc g.t ~tid:g.tid (Link.v_node_in g.t.arena v);
    match g.t.arena with
    | Some a -> Link.make_of_view a v
    | None -> Link.make (Link.v_state_in None v)

  let with_guard t f =
    let tid = Registry.tid () in
    (* handshake: a pending neutralization from a previous guard is
       acknowledged silently here — nothing is protected yet — and again
       in [finally], which must not raise (it runs on exception paths,
       [Neutralized] included) *)
    Reclaim.Neutralize.ack ~tid;
    let g = { t; tid; gen = Registry.generation tid; ptrs = [] } in
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid;
    let finally () =
      Reclaim.Neutralize.ack ~tid;
      let tl = t.tl.(tid) in
      if Registry.generation tid = g.gen then
        List.iter (fun p -> clear t ~tid p.v p.idx ~reuse:false) g.ptrs
      else
        (* A neutralization expired this guard: the hazard planes are
           already down.  Skipping the per-handle [maybe_retire] is
           mandatory, not an optimization — the unprotected targets may
           already be freed and their headers re-issued, so a stale
           zero-count claim here would retire a {e live} object.  Any
           zero-count node this guard referenced is (or will be)
           claimed by the thread whose dec zeroed it.  Only the
           owner-local index bookkeeping is reset. *)
        List.iter
          (fun p ->
            if p.idx <> 0 then begin
              tl.used_haz.(p.idx) <- tl.used_haz.(p.idx) - 1;
              if tl.used_haz.(p.idx) = 0 then begin
                Bitmask.release tl.free_idx p.idx;
                Atomic.set tl.hp.(p.idx) None;
                Atomic.set tl.hp_uid.(p.idx) (-1)
              end
            end)
          g.ptrs;
      g.ptrs <- [];
      Atomic.set tl.hp.(0) None;
      Obs.Sink.guard_end t.sink ~tid;
      Obs.Watchdog.leave t.wd ~tid
    in
    Fun.protect ~finally (fun () -> f g)

  (* Quiesced drain: clear all hazards, then scan every thread's retired
     list to a fixed point (a delete can push new cascade entries). *)
  let flush t =
    let tid = Registry.tid () in
    let wm = Atomic.get t.watermark in
    let nreg = Registry.registered () in
    for it = 0 to nreg - 1 do
      for idx = 0 to wm - 1 do
        Atomic.set t.tl.(it).hp.(idx) None;
        Atomic.set t.tl.(it).hp_uid.(idx) (-1)
      done
    done;
    (* each round frees at least one level of any pending cascade chain,
       so loop until [pending] stops decreasing (guaranteed to
       terminate: it is non-negative and strictly decreases) *)
    let rec drain () =
      (* freeing a chain link retires its successor, so [pending] can
         stay flat while real progress happens — track the monotone
         freed counter instead *)
      let freed_before = Memdom.Alloc.freed t.alloc in
      for it = 0 to Registry.registered () - 1 do
        let tl = t.tl.(it) in
        let batch = tl.retired in
        tl.retired <- [];
        tl.retired_count <- 0;
        (* adopt every thread's parked objects into the caller's scan *)
        List.iter (fun p -> retire t ~tid p) batch
      done;
      scan t ~tid;
      if Memdom.Alloc.freed t.alloc > freed_before then drain ()
    in
    drain ()
end
