(** OrcGC over a hazard-pointer backend — the paper's §4 remark made
    concrete: "Most of the existing pointer-based reclamation schemes
    [14, 19, 24, 25] can be used by OrcGC to protect the local
    references of type orc_ptr."

    This variant keeps the whole automatic layer of {!Orc} — the [_orc]
    word, [incrementOrc]/[decrementOrc], [clearBitRetired], guards and
    pointer handles — but replaces the pass-the-pointer retirement with
    classic HP-style *thread-local retired lists* scanned against the
    published hazards.  Two consequences, both intentional and measured
    by the ablation benchmark:

    - the unreclaimed-object bound degrades from PTP's linear O(Ht) to
      HP's quadratic O(Ht²) (each thread parks up to a scan threshold);
    - the recursive-list machinery of Algorithm 5 becomes unnecessary —
      a cascading destructor merely *pushes* to the retired list, which
      is already iterative.

    Everything else (Lemma 1's seq validation before delete, BRETIRED
    ownership, un-retiring on resurrection) is unchanged, demonstrating
    that OrcGC's automatic layer is genuinely backend-agnostic. *)

open Atomicx

let seq_unit = Orc.seq_unit
let bretired = Orc.bretired
let orc_zero = Orc.orc_zero
let ocnt = Orc.ocnt
let retired_zero = Orc.retired_zero
let max_haz = Orc.max_haz

module Make (N : Orc.NODE) = struct
  type node = N.t

  type tl_info = {
    hp : node option Atomic.t array;
    used_haz : int array;
    free_idx : Bitmask.t;
    mutable retired : node list;
    mutable retired_count : int;
  }

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    tl : tl_info array;
    watermark : int Atomic.t;
    hps : int;
    threshold : int Atomic.t; (* cached R = 2·H·t, refreshed on crossing *)
    pending : Shard.t;
    n_elided : Shard.t; (* hazard publishes skipped in [load] *)
    orphans : node Reclaim.Orphan.t;
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
  }

  type guard = { t : t; tid : int; mutable ptrs : ptr list }
  and ptr = { mutable st : node Link.state; mutable idx : int }

  let name = "orc-hp"
  let alloc_ctx t = t.alloc
  let orc_word n = (N.hdr n).Memdom.Hdr.orc
  let unreclaimed t = Shard.get t.pending
  let elided t = Shard.get t.n_elided

  (* R = 2·H·t from the live Active-slot population, cached and
     refreshed on crossing, matching the manual HP baseline (see
     [Reclaim.Hp.threshold_crossed]) *)
  let threshold_crossed t ~count =
    count >= Atomic.get t.threshold
    && begin
         Atomic.set t.threshold (2 * t.hps * max 1 (Registry.active ()));
         count >= Atomic.get t.threshold
       end

  let note_retired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Shard.incr t.pending ~tid

  let note_unretired t ~tid n =
    let h = N.hdr n in
    Memdom.Hdr.unretire h;
    h.Memdom.Hdr.retired_ns <- 0;
    Shard.add t.pending ~tid (-1)

  let protected_by_any t ~visited p =
    let wm = Atomic.get t.watermark in
    let found = ref false in
    (try
       (* rows whose registry slot is Free cannot hold a protection —
          skip them so scan cost tracks live slots, not the monotone
          high-water mark (see [Registry.in_use]) *)
       for it = 0 to Registry.registered () - 1 do
         if Registry.in_use it then begin
           let tl = t.tl.(it) in
           for idx = 0 to wm - 1 do
             incr visited;
             match Atomic.get tl.hp.(idx) with
             | Some m when m == p ->
                 found := true;
                 raise_notrace Exit
             | Some _ | None -> ()
           done
         end
       done
     with Exit -> ());
    !found

  (* clearBitRetired, identical to the PTP-backed version. *)
  let clear_bit_retired t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (-bretired) - bretired in
    note_unretired t ~tid p;
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      Atomic.set tl.hp.(0) None;
      lorc + bretired
    end
    else begin
      Atomic.set tl.hp.(0) None;
      0
    end

  (* Retiring = parking on the thread-local list; reclamation happens in
     [scan].  Cascades need no recursion guard: a destructor's [dec]
     just pushes more entries. *)
  let rec retire t ~tid p =
    let tl = t.tl.(tid) in
    tl.retired <- p :: tl.retired;
    tl.retired_count <- tl.retired_count + 1;
    if threshold_crossed t ~count:tl.retired_count then scan t ~tid

  and scan t ~tid =
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let tl = t.tl.(tid) in
    (* fold dead threads' published lists into this scan's batch *)
    let batch =
      List.rev_append
        (Reclaim.Orphan.adopt t.orphans t.sink ~tid)
        tl.retired
    in
    tl.retired <- [];
    tl.retired_count <- 0;
    List.iter
      (fun p ->
        let keep () =
          tl.retired <- p :: tl.retired;
          tl.retired_count <- tl.retired_count + 1
        in
        let lorc = Atomic.get (orc_word p) in
        if ocnt lorc <> retired_zero then begin
          (* resurrected: release ownership; re-park only if re-claimed *)
          if clear_bit_retired t ~tid p <> 0 then keep ()
        end
        else if protected_by_any t ~visited p then keep ()
        else
          (* Lemma 1: the seq must not have moved across the hazard scan *)
          let lorc2 = Atomic.get (orc_word p) in
          if lorc2 <> lorc then keep () else delete t ~tid p)
      batch;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began

  and delete t ~tid p =
    N.iter_links p (fun l ->
        let st = Link.exchange l Link.Null in
        match Link.target st with Some child -> dec t ~tid child | None -> ());
    Memdom.Alloc.free t.alloc (N.hdr p);
    Shard.add t.pending ~tid (-1)

  and inc t ~tid p =
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit + 1) + seq_unit + 1 in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        retire t ~tid p
      end

  and dec t ~tid p =
    let tl = t.tl.(tid) in
    Atomic.set tl.hp.(0) (Some p);
    let lorc = Atomic.fetch_and_add (orc_word p) (seq_unit - 1) + seq_unit - 1 in
    if
      ocnt lorc = orc_zero
      && Atomic.compare_and_set (orc_word p) lorc (lorc + bretired)
    then begin
      note_retired t ~tid p;
      Atomic.set tl.hp.(0) None;
      retire t ~tid p
    end
    else Atomic.set tl.hp.(0) None

  let maybe_retire t ~tid p =
    let lorc = Atomic.get (orc_word p) in
    if ocnt lorc = orc_zero then
      if Atomic.compare_and_set (orc_word p) lorc (lorc + bretired) then begin
        note_retired t ~tid p;
        retire t ~tid p
      end

  (* Quarantine cleaner: lower the departing tid's hazards (a leftover
     hazard would pin its target in every survivor's scan forever),
     reset the owner-local index bookkeeping for the next owner of this
     tid, and publish the retired list to the orphan pool — survivors
     fold it into their next [scan], which re-runs the full Lemma-1 /
     resurrection checks on every adopted node.  (Publishing rather
     than re-retiring matters on the exit path: re-retiring would just
     re-park onto the very list being vacated.) *)
  let thread_exit t ~tid =
    let tl = t.tl.(tid) in
    let wm = Atomic.get t.watermark in
    for idx = 0 to wm - 1 do
      Atomic.set tl.hp.(idx) None
    done;
    Array.fill tl.used_haz 0 (Array.length tl.used_haz) 0;
    Bitmask.reset tl.free_idx;
    ignore (Bitmask.acquire tl.free_idx ~from:0);
    match tl.retired with
    | [] -> ()
    | batch ->
        tl.retired <- [];
        tl.retired_count <- 0;
        Reclaim.Orphan.publish t.orphans t.sink ~tid batch

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk_tl _ =
      let free_idx = Bitmask.create max_haz in
      ignore (Bitmask.acquire free_idx ~from:0) (* scratch slot 0 *);
      {
        hp = Padded.atomic_array max_haz None;
        used_haz = Array.make max_haz 0;
        free_idx;
        retired = [];
        retired_count = 0;
      }
    in
    let t =
      {
        alloc;
        sink;
        tl = Array.init Registry.max_threads mk_tl;
        watermark = Atomic.make 1;
        hps = max_hps;
        threshold = Atomic.make (2 * max_hps);
        pending = Shard.create ();
        n_elided = Shard.create ();
        orphans = Reclaim.Orphan.create ();
        lifecycle = ignore;
      }
    in
    t.lifecycle <- (fun tid -> thread_exit t ~tid);
    Registry.on_quarantine t.lifecycle;
    t

  (* {2 Hazard-index management and pointer handles — identical to the
     PTP-backed implementation, minus the handover drains.} *)

  let get_new_idx t ~tid ~start =
    let tl = t.tl.(tid) in
    match Bitmask.acquire tl.free_idx ~from:(max 1 start) with
    | None -> raise Orc.Out_of_hazard_indexes
    | Some idx ->
        tl.used_haz.(idx) <- 1;
        let rec bump () =
          let cur = Atomic.get t.watermark in
          if cur <= idx then
            if Atomic.compare_and_set t.watermark cur (idx + 1) then ()
            else bump ()
        in
        bump ();
        idx

  let using_idx t ~tid idx =
    if idx <> 0 then t.tl.(tid).used_haz.(idx) <- t.tl.(tid).used_haz.(idx) + 1

  let clear t ~tid st idx ~reuse =
    let tl = t.tl.(tid) in
    let released =
      if (not reuse) && idx <> 0 then begin
        tl.used_haz.(idx) <- tl.used_haz.(idx) - 1;
        tl.used_haz.(idx) = 0
      end
      else false
    in
    if released then begin
      Bitmask.release tl.free_idx idx;
      Atomic.set tl.hp.(idx) None
    end;
    match Link.target st with Some p -> maybe_retire t ~tid p | None -> ()

  module Ptr = struct
    type t = ptr

    let state p = p.st
    let node p = Link.target p.st
    let is_marked p = Link.is_marked p.st
    let is_poison p = Link.is_poison p.st
    let is_null p = match p.st with Link.Null -> true | _ -> false

    let node_exn p =
      match Link.target p.st with
      | Some n -> n
      | None -> invalid_arg "Orc_hp.Ptr.node_exn: null"

    let same_node a b =
      match Link.target a.st, Link.target b.st with
      | Some x, Some y -> x == y
      | None, None -> true
      | Some _, None | None, Some _ -> false

    let retag p st =
      match Link.target st, Link.target p.st with
      | Some a, Some b when a == b -> p.st <- st
      | None, None -> p.st <- st
      | Some _, (Some _ | None) | None, Some _ ->
          invalid_arg "Orc_hp.Ptr.retag: different target"
  end

  let ptr g =
    let p = { st = Link.Null; idx = get_new_idx g.t ~tid:g.tid ~start:1 } in
    g.ptrs <- p :: g.ptrs;
    p

  let ensure_exclusive g p =
    let tl = g.t.tl.(g.tid) in
    if p.idx = 0 || tl.used_haz.(p.idx) > 1 then begin
      if p.idx <> 0 then tl.used_haz.(p.idx) <- tl.used_haz.(p.idx) - 1;
      p.idx <- get_new_idx g.t ~tid:g.tid ~start:1
    end

  let load g link p =
    ensure_exclusive g p;
    let tl = g.t.tl.(g.tid) in
    let old = p.st in
    let rec loop st =
      (match Link.target st with
      | Some n
        when !Reclaim.Scan_set.elide_publish
             &&
             match Atomic.get tl.hp.(p.idx) with
             | Some m -> m == n
             | None -> false ->
          (* slot already publishes [n] (retry, or a mark-only change):
             the earlier store still protects it for every scanner *)
          Shard.incr g.t.n_elided ~tid:g.tid;
          Obs.Sink.on_elide g.t.sink ~tid:g.tid
      | target -> Atomic.set tl.hp.(p.idx) target);
      let st' = Link.get link in
      if st' == st then st else loop st'
    in
    p.st <- loop (Link.get link);
    match Link.target old with
    | Some q when not (Link.same old p.st) -> maybe_retire g.t ~tid:g.tid q
    | Some _ | None -> ()

  let assign g dst src =
    if dst != src then begin
      let tl = g.t.tl.(g.tid) in
      let reuse = src.idx < dst.idx && tl.used_haz.(dst.idx) = 1 in
      clear g.t ~tid:g.tid dst.st dst.idx ~reuse;
      if src.idx < dst.idx then begin
        if not reuse then dst.idx <- get_new_idx g.t ~tid:g.tid ~start:(src.idx + 1);
        Atomic.set tl.hp.(dst.idx) (Link.target src.st)
      end
      else begin
        using_idx g.t ~tid:g.tid src.idx;
        dst.idx <- src.idx
      end;
      dst.st <- src.st
    end

  let run_mk g mk hdr =
    match mk hdr with
    | n -> n
    | exception e ->
        Memdom.Alloc.free g.t.alloc hdr;
        raise e

  let alloc_node g mk =
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    let p = ptr g in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    p.st <- Link.Ptr n;
    p

  let alloc_node_into g p mk =
    let hdr = Memdom.Alloc.hdr g.t.alloc () in
    let n = run_mk g mk hdr in
    ensure_exclusive g p;
    let old = p.st in
    Atomic.set g.t.tl.(g.tid).hp.(p.idx) (Some n);
    p.st <- Link.Ptr n;
    (match Link.target old with
    | Some q when not (q == n) -> maybe_retire g.t ~tid:g.tid q
    | Some _ | None -> ());
    n

  let store g link st =
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ()

  let cas g link ~expected ~desired =
    if Link.cas link expected desired then begin
      let te = Link.target expected and td = Link.target desired in
      (match te, td with
      | Some a, Some b when a == b -> ()
      | _ ->
          (match td with Some n -> inc g.t ~tid:g.tid n | None -> ());
          (match te with Some n -> dec g.t ~tid:g.tid n | None -> ()));
      true
    end
    else false

  let exchange g link st =
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    let old = Link.exchange link st in
    (match Link.target old with Some n -> dec g.t ~tid:g.tid n | None -> ());
    old

  let new_link g st =
    (match Link.target st with Some n -> inc g.t ~tid:g.tid n | None -> ());
    Link.make st

  let with_guard t f =
    let tid = Registry.tid () in
    let g = { t; tid; ptrs = [] } in
    Obs.Sink.guard_begin t.sink ~tid;
    let finally () =
      List.iter (fun p -> clear t ~tid p.st p.idx ~reuse:false) g.ptrs;
      g.ptrs <- [];
      Atomic.set t.tl.(tid).hp.(0) None;
      Obs.Sink.guard_end t.sink ~tid
    in
    Fun.protect ~finally (fun () -> f g)

  (* Quiesced drain: clear all hazards, then scan every thread's retired
     list to a fixed point (a delete can push new cascade entries). *)
  let flush t =
    let tid = Registry.tid () in
    let wm = Atomic.get t.watermark in
    let nreg = Registry.registered () in
    for it = 0 to nreg - 1 do
      for idx = 0 to wm - 1 do
        Atomic.set t.tl.(it).hp.(idx) None
      done
    done;
    (* each round frees at least one level of any pending cascade chain,
       so loop until [pending] stops decreasing (guaranteed to
       terminate: it is non-negative and strictly decreases) *)
    let rec drain () =
      (* freeing a chain link retires its successor, so [pending] can
         stay flat while real progress happens — track the monotone
         freed counter instead *)
      let freed_before = Memdom.Alloc.freed t.alloc in
      for it = 0 to Registry.registered () - 1 do
        let tl = t.tl.(it) in
        let batch = tl.retired in
        tl.retired <- [];
        tl.retired_count <- 0;
        (* adopt every thread's parked objects into the caller's scan *)
        List.iter (fun p -> retire t ~tid p) batch
      done;
      scan t ~tid;
      if Memdom.Alloc.freed t.alloc > freed_before then drain ()
    in
    drain ()
end
