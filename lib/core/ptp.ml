(** Pass-the-pointer (paper §3.1, Algorithm 2) — the paper's manual
    scheme and the first with a *linear* O(Ht) bound on unreclaimed
    objects.

    Protection is hazard-pointer-like.  Retiring is where PTP differs
    from HP/PTB: there is no thread-local retired list at all.  The
    retiring thread scans the published hazard pointers; on a match it
    *passes the pointer* — atomically swaps the object into the
    [handovers] slot paired with that hazard slot, making the protecting
    thread responsible for it — and continues the scan with whatever the
    swap evicted.  Pointers only ever move forward through the scan
    order, so at most one object can sit in each of the [t*H] handover
    slots plus one in the hand of each scanning thread: at most
    [t*(H+1)] unreclaimed objects, ever.

    Clearing a hazard slot drains its handover (Algorithm 2 lines 16–19,
    "optional" in the paper but required for a leak-free shutdown).

    Ablation knobs (global, read at call time; see bench/ablation):
    {!publish_with_exchange} switches the hazard publication between
    [Atomic.set] and [Atomic.exchange] — the paper traces its AMD/Intel
    performance gap to exactly this instruction choice (§5) — and
    {!clear_handover} disables the drain-on-clear. *)

open Atomicx

let publish_with_exchange = ref false
let clear_handover = ref true

module Make (N : Reclaim.Scheme_intf.NODE) :
  Reclaim.Scheme_intf.S with type node = N.t = struct
  type node = N.t

  type t = {
    alloc : Memdom.Alloc.t;
    sink : Obs.Sink.t;
    hps : int;
    hp : node option Atomic.t array array; (* [tid][idx] *)
    handovers : node option Atomic.t array array; (* [tid][idx] *)
    counters : Reclaim.Scheme_intf.Counters.t;
    wd : Obs.Watchdog.t; (* guard-stall stamp table *)
    bg : Reclaim.Channel.t option Atomic.t; (* background drain route *)
    (* PTP has no retired lists, so background mode buffers retires
       here (owner-private, bounded by the bg batch knob) and ships each
       batch as one channel job — one send per batch instead of one
       handover walk per retire. *)
    bg_buf : node list ref array;
    bg_count : int ref array;
    (* batch size comes from the knob record so the controller can
       retune it live; read per retire (one atomic load, no derivation) *)
    mutable tuning : Reclaim.Tuning.t;
    (* strong reference keeping the weakly-registered quarantine
       cleaner alive exactly as long as this scheme *)
    mutable lifecycle : int -> unit;
    (* likewise for the neutralize hook (atomic-state-only clear) *)
    mutable neutralizer : int -> unit;
    (* strong reference keeping the weakly-registered metrics probes
       alive exactly as long as this scheme *)
    mutable metrics : (string * (unit -> int)) list;
  }

  let name = "ptp"
  let max_hps t = t.hps

  let begin_op t ~tid =
    Reclaim.Neutralize.ack ~tid;
    Obs.Watchdog.enter t.wd ~tid;
    Obs.Sink.guard_begin t.sink ~tid

  let publish t ~tid ~idx n =
    if !publish_with_exchange then ignore (Atomic.exchange t.hp.(tid).(idx) n)
    else Atomic.set t.hp.(tid).(idx) n

  let protect_raw t ~tid ~idx n = publish t ~tid ~idx n

  let copy_protection t ~tid ~src ~dst =
    Reclaim.Neutralize.check ~tid;
    publish t ~tid ~idx:dst (Atomic.get t.hp.(tid).(src))

  let get_protected t ~tid ~idx link =
    Reclaim.Neutralize.check ~tid;
    let slot = t.hp.(tid).(idx) in
    let rec loop st =
      (match Link.target st with
      | Some n
        when !Reclaim.Scan_set.elide_publish
             && (match Atomic.get slot with Some m -> m == n | None -> false)
        ->
          (* slot already publishes [n]: the earlier store is still in
             force for every scanner, so skip the publish (and, under
             the exchange flavour, its full fence) *)
          Reclaim.Scheme_intf.Counters.elided t.counters ~tid;
          Obs.Sink.on_elide t.sink ~tid
      | target -> publish t ~tid ~idx target);
      let st' = Link.get link in
      if st' == st then st else loop st'
    in
    loop (Link.get link)

  (* View-plane protection: the hazard slot still holds the node itself
     (the handover walk compares physically), so a word view is derefed
     before publishing and re-derefed after — word equality alone does
     not prove the slot's meaning stayed stable (see hp.ml). *)
  let get_protected_v t ~tid ~idx link =
    Reclaim.Neutralize.check ~tid;
    let slot = t.hp.(tid).(idx) in
    let rec loop v =
      if not (Link.v_has_target v) then begin
        publish t ~tid ~idx None;
        let v' = Link.view link in
        if Link.view_eq v' v then v else loop v'
      end
      else begin
        let n = Link.v_target_exn link v in
        (if
           !Reclaim.Scan_set.elide_publish
           && match Atomic.get slot with Some m -> m == n | None -> false
         then begin
           Reclaim.Scheme_intf.Counters.elided t.counters ~tid;
           Obs.Sink.on_elide t.sink ~tid
         end
         else publish t ~tid ~idx (Some n));
        let v' = Link.view link in
        if
          Link.view_eq v' v
          && ((not (Link.v_is_word v)) || Link.v_target_exn link v == n)
        then v
        else loop v'
      end
    in
    loop (Link.view link)

  let free_node t ~tid n =
    Reclaim.Scheme_intf.Counters.freed t.counters ~tid;
    Memdom.Alloc.free t.alloc (N.hdr n)

  (* Algorithm 2, handoverOrDelete: push [n] forward through the hazard
     scan until it is either handed to a protecting thread or proven
     unprotected and deleted. *)
  (* The scan covers the registered rows only — a thread that never
     registered cannot have published a protection — and skips rows
     whose registry slot has been recycled back to Free (see
     [Registry.in_use]): a dead row's hazards are all cleared, so the
     scan cost tracks the live slot population, not the monotone
     high-water mark. *)
  let handover_or_delete t ~tid n ~start =
    let began = Obs.Sink.scan_begin t.sink in
    let visited = ref 0 in
    let cur = ref (Some n) in
    (try
       for it = start to Registry.registered () - 1 do
         if Registry.in_use it then begin
           let idx = ref 0 in
           while !idx < t.hps do
             match !cur with
             | None -> raise_notrace Exit
             | Some p -> (
                 incr visited;
                 match Atomic.get t.hp.(it).(!idx) with
                 | Some m when m == p -> (
                     let prev =
                       Atomic.exchange t.handovers.(it).(!idx) (Some p)
                     in
                     Obs.Sink.on_handover t.sink ~tid
                       ~uid:(N.hdr p).Memdom.Hdr.uid;
                     cur := prev;
                     match prev with
                     | None -> raise_notrace Exit
                     | Some q -> (
                         (* Check it is not the new pointer (line 31): if the
                            slot protects the evictee, stay on this slot. *)
                         match Atomic.get t.hp.(it).(!idx) with
                         | Some m2 when m2 == q -> ()
                         | Some _ | None -> incr idx))
                 | Some _ | None -> incr idx)
           done
         end
       done
     with Exit -> ());
    Reclaim.Scheme_intf.Counters.scanned t.counters ~tid ~slots:!visited;
    Obs.Sink.scan_end t.sink ~tid ~slots:!visited ~began;
    match !cur with Some p -> free_node t ~tid p | None -> ()

  let set_background t ch = Atomic.set t.bg ch

  let retire t ~tid n =
    Reclaim.Neutralize.check ~tid;
    let h = N.hdr n in
    Memdom.Hdr.mark_retired h;
    h.Memdom.Hdr.retired_ns <-
      Obs.Sink.on_retire t.sink ~tid ~uid:h.Memdom.Hdr.uid;
    Reclaim.Scheme_intf.Counters.retired t.counters ~tid;
    match Atomic.get t.bg with
    | None -> handover_or_delete t ~tid n ~start:0
    | Some ch ->
        t.bg_buf.(tid) := n :: !(t.bg_buf.(tid));
        incr t.bg_count.(tid);
        if !(t.bg_count.(tid)) >= Reclaim.Tuning.bg_batch t.tuning then begin
          let batch = !(t.bg_buf.(tid)) and count = !(t.bg_count.(tid)) in
          t.bg_buf.(tid) := [];
          t.bg_count.(tid) := 0;
          let job ~tid:rtid =
            List.iter
              (fun p -> handover_or_delete t ~tid:rtid p ~start:0)
              batch
          in
          if not (Reclaim.Channel.send ch ~tid ~count job) then
            (* refused (closed/full): inline fallback, single-owner safe
               — the batch left the buffer before the send *)
            List.iter (fun p -> handover_or_delete t ~tid p ~start:0) batch
        end

  let clear t ~tid ~idx =
    Atomic.set t.hp.(tid).(idx) None;
    if !clear_handover then
      match Atomic.get t.handovers.(tid).(idx) with
      | None -> ()
      | Some _ -> (
          match Atomic.exchange t.handovers.(tid).(idx) None with
          | Some p -> handover_or_delete t ~tid p ~start:tid
          | None -> ())

  let end_op t ~tid =
    for idx = 0 to t.hps - 1 do
      clear t ~tid ~idx
    done;
    Obs.Sink.guard_end t.sink ~tid;
    Obs.Watchdog.leave t.wd ~tid

  (* Quarantine cleaner.  PTP has no retired lists, so thread death
     leaves exactly two things behind: published hazards (which would
     trap objects in other threads' scans forever) and parked
     handovers (which have no owner left to drain them on [clear]).
     Lower the hazards *first* — once [hp.(tid)] is all-None, no
     concurrent handover scan can park anything new on this row — then
     re-run each evicted object through the normal handover path on
     the operating thread (the departing thread itself on the exit
     path, the reclaiming survivor under [force_release]). *)
  let orphan t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.hp.(tid).(idx) None
    done;
    let self = Registry.tid () in
    for idx = 0 to t.hps - 1 do
      match Atomic.exchange t.handovers.(tid).(idx) None with
      | Some p -> handover_or_delete t ~tid:self p ~start:0
      | None -> ()
    done;
    (* background buffer: single-owner (departing thread or a reclaimer
       over a provably dead one), so the plain swap is safe here *)
    match !(t.bg_buf.(tid)) with
    | [] -> ()
    | batch ->
        t.bg_buf.(tid) := [];
        t.bg_count.(tid) := 0;
        List.iter (fun p -> handover_or_delete t ~tid:self p ~start:0) batch

  (* Neutralize hook: lower the victim's hazards and re-run its parked
     handovers through the scan — both atomic planes; the owner-private
     background buffer stays put (bounded by the bg batch knob, it
     cannot break the O(Ht) bound). *)
  let neutralize_clear t ~tid =
    for idx = 0 to t.hps - 1 do
      Atomic.set t.hp.(tid).(idx) None
    done;
    let self = Registry.tid () in
    for idx = 0 to t.hps - 1 do
      match Atomic.exchange t.handovers.(tid).(idx) None with
      | Some p -> handover_or_delete t ~tid:self p ~start:0
      | None -> ()
    done

  (* Handover drains re-park or free immediately; nothing pools. *)
  let orphaned _ = 0

  let create ?(max_hps = 8) ?sink alloc =
    let sink =
      match sink with Some s -> s | None -> Memdom.Alloc.sink alloc
    in
    let mk _ = Padded.atomic_array max_hps None in
    let t =
      {
        alloc;
        sink;
        hps = max_hps;
        hp = Array.init Registry.max_threads mk;
        handovers = Array.init Registry.max_threads mk;
        counters = Reclaim.Scheme_intf.Counters.create ();
        wd = Obs.Watchdog.create ();
        bg = Atomic.make None;
        bg_buf = Array.init Registry.max_threads (fun _ -> ref []);
        bg_count = Array.init Registry.max_threads (fun _ -> ref 0);
        tuning = Reclaim.Tuning.create ();
        lifecycle = ignore;
        neutralizer = ignore;
        metrics = [];
      }
    in
    t.lifecycle <- (fun tid -> orphan t ~tid);
    Registry.on_quarantine t.lifecycle;
    t.neutralizer <- (fun tid -> neutralize_clear t ~tid);
    Registry.on_neutralize t.neutralizer;
    t.metrics <-
      Reclaim.Scheme_intf.register_metrics ~scheme:name
        ~stats:(fun () -> Reclaim.Scheme_intf.Counters.stats t.counters)
        ~unreclaimed:(fun () ->
          Reclaim.Scheme_intf.Counters.unreclaimed t.counters)
        ~wd:t.wd ();
    t

  let unreclaimed t = Reclaim.Scheme_intf.Counters.unreclaimed t.counters
  let tuning t = t.tuning
  let set_tuning t tn = t.tuning <- tn
  let stats t = Reclaim.Scheme_intf.Counters.stats t.counters
  let pp_stats fmt t = Reclaim.Scheme_intf.pp_stats_record fmt (stats t)

  (* Drain every handover slot; anything still protected simply parks
     again, anything unprotected is freed.  Unlike the other schemes PTP
     has no retired lists, so this is all a drain can mean. *)
  let flush t =
    let self = Registry.tid () in
    for tid = 0 to Registry.registered () - 1 do
      (match !(t.bg_buf.(tid)) with
      | [] -> ()
      | batch ->
          t.bg_buf.(tid) := [];
          t.bg_count.(tid) := 0;
          List.iter (fun p -> handover_or_delete t ~tid:self p ~start:0) batch);
      for idx = 0 to t.hps - 1 do
        match Atomic.exchange t.handovers.(tid).(idx) None with
        | Some p -> handover_or_delete t ~tid:self p ~start:0
        | None -> ()
      done
    done
end
