(** OrcGC — automatic lock-free memory reclamation (paper §4).

    OrcGC combines per-object reference counting of *hard links* (links
    stored in other objects or roots) with pass-the-pointer protection of
    *local references*.  Deploying it on a data structure follows the
    paper's methodology (§4.1.1) verbatim, modulo OCaml syntax:

    + give every node an embedded {!Memdom.Hdr.t} and list its link
      fields in {!NODE.iter_links};
    + allocate nodes with {!Make.alloc_node} / {!Make.alloc_node_into}
      (the [make_orc] of the paper);
    + mutate shared links only through {!Make.store}, {!Make.cas} and
      {!Make.exchange} (the [orc_atomic] operations);
    + hold local references in {!Make.Ptr} handles owned by a
      {!Make.with_guard} scope (the RAII [orc_ptr]s), reading with
      {!Make.load} and copying with {!Make.assign}.

    No retire or free call appears anywhere in the data structure: an
    object is reclaimed automatically at the first moment its hard-link
    count is zero and no thread protects it (Lemma 1 of the paper). *)

(** {2 The _orc word (Algorithm 3)} *)

val seq_unit : int
(** Increment that bumps the sequence field (bit 24 upward). *)

val bretired : int
(** The BRETIRED ownership bit (bit 23). *)

val orc_zero : int
(** Bias representing a zero hard-link count (bit 22), allowing the
    transient negative counts that CAS-after-increment ordering needs. *)

val ocnt : int -> int
(** Count-plus-BRETIRED portion of an [_orc] word (sequence stripped). *)

val retired_zero : int
(** [ocnt] value of an object with zero links owned by a retirer. *)

val max_haz : int
(** Capacity of each thread's hazard-pointer array. *)

exception Out_of_hazard_indexes
(** Raised when one operation holds more than {!max_haz} live pointer
    handles — a bug in the data structure, not a runtime condition. *)

(** What OrcGC needs to know about a tracked object type. *)
module type NODE = sig
  type t

  val hdr : t -> Memdom.Hdr.t
  (** The header embedded in the node. *)

  val iter_links : t -> (t Atomicx.Link.t -> unit) -> unit
  (** Visit every [orc_atomic] field of the node; the destructor uses it
      to drop the node's outgoing hard links (cascading reclamation
      through the recursive list, §4.1). *)
end

module Make (N : NODE) : sig
  type node = N.t

  type t
  (** One OrcGC instance: the hazard/handover arrays and the allocator
      accounting for one data structure. *)

  type guard
  (** A per-operation protection scope — the lifetime within which
      pointer handles are valid (standing in for C++ block scope). *)

  val name : string

  val create :
    ?max_hps:int ->
    ?sink:Obs.Sink.t ->
    ?arena:node Atomicx.Link.arena ->
    Memdom.Alloc.t ->
    t
  (** [create alloc] builds an instance whose reclaimed objects return to
      [alloc].  [max_hps] is accepted for interface symmetry with the
      manual schemes and ignored (the hazard array is self-sizing).
      [sink] receives lifecycle events (retire, handover, cascade, scan,
      guard) and defaults to [Memdom.Alloc.sink alloc].  [arena] opts the
      structure into tagged-immediate links: links built through
      {!Make.new_link} / {!Make.new_link_v} use it, and [load] on a
      tagged link publishes the target's uid to an unboxed hazard plane
      — the read hot path then allocates nothing.  [create] also
      registers {!thread_exit} with [Atomicx.Registry.on_quarantine],
      so domain exit and [force_release] clean up departing tids
      automatically. *)

  val thread_exit : t -> tid:int -> unit
  (** Quarantine cleaner for a departing [tid]: unpublish its hazards,
      reset its hazard-index bookkeeping (so a recycled tid starts from
      an empty mask) and adopt everything its row still owned — queued
      recursive retires and parked handovers — through the operating
      thread's retire path.  Registered automatically by {!create};
      callable directly only when [tid]'s owner has exited or is
      provably stopped. *)

  val with_guard : t -> (guard -> 'a) -> 'a
  (** Run one data-structure operation.  On exit — normal or exceptional
      — every handle created in the scope is released, freed hazard
      slots are unpublished, and parked handovers are adopted, exactly
      where the C++ [orc_ptr] destructors would run.

      {b Neutralization handshake} (see {!Reclaim.Neutralize}): while a
      neutralizing reclaimer is armed, guard entry and exit acknowledge
      a pending neutralization silently, and {!load}, {!assign}, the
      mutators and {!alloc_node_into} acknowledge and raise
      [Reclaim.Neutralize.Neutralized] — every protection the guard
      held is gone, so the operation must restart under a fresh guard.
      A guard whose protections were expired mid-flight releases only
      its owner-local bookkeeping on exit; retirement of its targets
      has already passed to other threads.  Unarmed, the checks cost
      one shared atomic load each. *)

  (** Local references ([orc_ptr], Algorithm 7). *)
  module Ptr : sig
    type t

    val view : t -> node Atomicx.Link.view
    (** The exact link view this handle read — the value to use as a
        [cas_v] expectation.  On a tagged structure this is a raw word;
        holding or comparing it allocates nothing. *)

    val state : t -> node Atomicx.Link.state
    (** The held view decoded to the variant form (mark bits included).
        On a boxed structure this is the exact box read — usable as a
        physical CAS expectation; on a tagged structure it is a decoded
        (possibly fresh) box, for inspection only. *)

    val node : t -> node option
    val node_exn : t -> node
    val is_marked : t -> bool
    val is_poison : t -> bool
    val is_null : t -> bool
    val same_node : t -> t -> bool

    val retag_v : t -> node Atomicx.Link.view -> unit
    (** Replace the held view by another for the {e same} target — used
        after a successful CAS to keep validating against the value
        actually installed.  Raises [Invalid_argument] on a different
        target. *)

    val retag : t -> node Atomicx.Link.state -> unit
    (** {!retag_v} on the handle's representation of a state. *)
  end

  val ptr : guard -> Ptr.t
  (** A fresh null handle owning a hazard index. *)

  val load : guard -> node Atomicx.Link.t -> Ptr.t -> unit
  (** [load g link p]: protect [link]'s current state in [p] (publish
      and re-validate, Algorithm 2 lines 4–11).  [link] must be
      reachable through a protected node or a root, and must not belong
      to the node [p] itself currently protects. *)

  val assign : guard -> Ptr.t -> Ptr.t -> unit
  (** [assign g dst src]: copy [src]'s reference and protection into
      [dst], observing the index-direction rule of the paper's
      assignment operator (copies only travel in hazard-scan order;
      otherwise a fresh higher index is taken). *)

  val alloc_node : guard -> (Memdom.Hdr.t -> node) -> Ptr.t
  (** [make_orc]: allocate a node (the callback receives its fresh
      header) and return it protected.  If it is never linked anywhere,
      it is reclaimed when the guard ends. *)

  val alloc_node_into : guard -> Ptr.t -> (Memdom.Hdr.t -> node) -> node
  (** Like {!alloc_node} but reusing an existing handle — for retry
      loops that would otherwise exhaust hazard indexes. *)

  (** {2 orc_atomic mutators (Algorithm 4)}

      All three maintain the hard-link counts of the old and new targets
      and trigger retirement when a count reaches zero.  The target of a
      written state must be protected by the caller (held in a live
      [Ptr] or freshly allocated). *)

  val store : guard -> node Atomicx.Link.t -> node Atomicx.Link.state -> unit

  val cas :
    guard ->
    node Atomicx.Link.t ->
    expected:node Atomicx.Link.state ->
    desired:node Atomicx.Link.state ->
    bool
  (** Counts move only on success; a pure mark/flag change on the same
      target moves no counts. *)

  val exchange :
    guard -> node Atomicx.Link.t -> node Atomicx.Link.state -> node Atomicx.Link.state

  val new_link : guard -> node Atomicx.Link.state -> node Atomicx.Link.t
  (** Build a link during single-threaded construction of a node or root
      whose initial target is private or otherwise protected.  The link
      follows the structure's representation (tagged when the instance
      was created with an [arena]). *)

  (** {2 View-plane mutators}

      The same count discipline as the state mutators, operating on raw
      {!Atomicx.Link.view}s — on a tagged structure these paths box
      nothing, and [cas_v] is a genuine single-word compare-and-set. *)

  val store_v : guard -> node Atomicx.Link.t -> node Atomicx.Link.view -> unit

  val cas_v :
    guard ->
    node Atomicx.Link.t ->
    expected:node Atomicx.Link.view ->
    desired:node Atomicx.Link.view ->
    bool
  (** Counts move only on success; a pure mark/flag change on the same
      target moves no counts. *)

  val v_ptr : t -> node -> node Atomicx.Link.view
  (** Clean-pointer view of a node the caller protects, in the
      structure's representation (registers the node in the arena when
      tagged — the caller must own the node privately or hold it
      protected). *)

  val new_link_v : guard -> node Atomicx.Link.view -> node Atomicx.Link.t
  (** {!new_link} on the view plane. *)

  (** {2 Introspection} *)

  val alloc_ctx : t -> Memdom.Alloc.t

  val unreclaimed : t -> int
  (** Objects currently retired (BRETIRED set) but not yet freed — the
      quantity bounded by O(Ht) (Table 1). *)

  type stats = {
    retires : int;  (** objects that ever entered the retired state *)
    handovers : int;  (** successful tryHandover passes (Algorithm 6) *)
    cascades : int;
        (** destructor-triggered recursive retires drained through the
            recursive list (§4.1) *)
    scans : int;  (** tryHandover invocations *)
    scan_slots : int;
        (** hazard slots visited by those invocations — whitebox check
            that scan cost is [registered * watermark] per scan, not
            [Registry.max_threads * watermark] *)
    elided : int;
        (** hazard publishes skipped by [load] because the slot already
            held the target (see {!Reclaim.Scan_set.elide_publish}) *)
  }

  val stats : t -> stats
  (** Monotonic observability counters, for benchmarks and forensics.
      Sharded per thread and aggregated here; a read concurrent with
      operations is exact to within one in-flight delta per thread. *)

  val hazard_watermark : t -> int
  (** [1 +] the highest hazard index ever used by any thread — the
      per-thread width of hazard scans (the H of the O(Ht) bound as
      actually instantiated). *)

  val set_background : t -> Reclaim.Channel.t option -> unit
  (** Background drain mode.  With [Some ch], a mutator that claims a
      zero-count object buffers it thread-locally and ships the batch
      to the reclaimer as a {!Reclaim.Channel.job} — BRETIRED ownership
      travels with the closure, and [retire] revalidates the count
      under the reclaimer's tid exactly as it would inline.  A refused
      send (channel closed or full — reclaimer dead or behind) retires
      the batch inline, so backpressure and reclaimer death degrade to
      the [None] behaviour.  [None] (the default) retires inline.
      Setup/teardown-only knob: flip it while the structure is
      quiescent, or accept that racing retires may use either path for
      one batch.  {!flush} drains the thread-local buffers but not the
      channel — stop or recover the reclaimer first. *)

  val tuning : t -> Reclaim.Tuning.t
  (** The structure's live knob record (fresh per {!create}). *)

  val set_tuning : t -> Reclaim.Tuning.t -> unit
  (** Swap in a (possibly shared) knob record.  The background batch
      size is read per buffered retire, so a retune takes effect on the
      next batch boundary. *)

  val flush : t -> unit
  (** Quiesced drain for tests and shutdown: unpublish every hazard,
      adopt every parked handover and retire the background buffers.
      Destroys all live protections — only call with no concurrent
      operations. *)
end
