(** The paper's evaluation (§5), experiment by experiment.

    Every table and figure of the paper has a generator here; the
    [bench/main.exe] harness runs them all with small defaults and
    [bin/main.exe] exposes each with tunable parameters.  See DESIGN.md
    §3 for the experiment index and EXPERIMENTS.md for measured
    results. *)

type params = {
  threads : int list;  (** thread counts to sweep *)
  duration : float;  (** seconds per data point *)
  list_keys : int;  (** key range for list sets (paper: 10³) *)
  big_keys : int;  (** key range for trees/skip lists (paper: 10⁶) *)
  csv : string option;  (** also append results to this CSV file *)
}

val default : params

val fig1_queues : params -> Report.series list
(** Figures 1/2: enqueue/dequeue pairs on every queue × scheme
    combination.  Raw Mops/s; normalize with {!Report.normalize} for the
    paper's presentation. *)

val fig3_list_schemes : params -> (string * Report.series list) list
(** Figures 3/4: Michael-Harris list, 10³ keys, one table per workload
    mix (50i-50r, 5i-5r-90l, 100l), series = reclamation schemes
    including OrcGC and the no-reclamation ceiling. *)

val fig5_orc_lists : params -> (string * Report.series list) list
(** Figures 5/6: the four linked lists under OrcGC only — including
    Harris and HS, for which no manual scheme is applicable. *)

val fig7_trees : params -> (string * Report.series list) list
(** Figures 7/8: NM-tree under manual schemes + OrcGC, and the two skip
    lists, on the large key range. *)

type bound_row = {
  b_scheme : string;
  b_threads : int;
  b_hps : int;
  b_max_unreclaimed : int;
  b_bound : string;  (** the paper's Table 1 bound formula *)
  b_bound_value : int;  (** the formula evaluated, -1 if unbounded *)
}

val table1_bounds : params -> bound_row list
(** Table 1 (the memory-bound column, measured): drive a write-heavy
    list workload per scheme while sampling the peak number of retired
    but unreclaimed objects, against each scheme's theoretical bound. *)

type mem_row = {
  m_structure : string;
  m_peak_live : int;  (** peak live objects during concurrent churn *)
  m_final_live : int;
  m_reachable : int;
  m_pinned_live : int;
      (** live objects while one stalled reader pins the head of a fully
          removed chain — the paper's footprint mechanism: key-bounded
          for HS-skip, O(1) for CRF-skip *)
  m_pinned_after : int;  (** live objects once the pin is released *)
}

val mem_footprint : params -> mem_row list
(** §5 memory-footprint claim (HS-skip ~19 GB vs CRF-skip <1 GB on the
    authors' testbed): identical churn on both skip lists, sampling live
    objects; the shape to reproduce is HS ≫ CRF. *)

val ablation_publish : params -> Report.series list
(** §5 ablation: PTP hazard publication via [Atomic.exchange] vs
    [Atomic.set] — the instruction choice the paper blames for the
    AMD/Intel gap. *)

val ablation_clear_handover : params -> (string * int) list
(** Ablation of Algorithm 2 lines 16–19 (the "optional" handover drain
    on clear): residual unreclaimed objects after a run, with the drain
    enabled vs disabled. *)

val ext_hashmap : params -> Report.series list
(** Extension beyond the paper's figures: Michael's lock-free hash
    table [18] (write-heavy mix) across HP, EBR, PTP and OrcGC. *)

type backend_row = {
  k_backend : string;
  k_mops : float;
  k_peak_unreclaimed : int;
}

val ablation_backend : params -> backend_row list
(** §4's pluggable-backend remark, measured: the automatic layer over
    the PTP backend vs an HP backend — similar throughput, different
    unreclaimed-memory class. *)

type alloc_row = {
  a_workload : string;  (** msq-ptp | msq-hp | list-hp *)
  a_mode : string;  (** "system" or "pool" *)
  a_ops : int;  (** operations in the measured window *)
  a_mops : float;
  a_hit_rate : float;  (** pool hit rate over the window (0 for system) *)
  a_hits : int;
  a_misses : int;
  a_remote_frees : int;
  a_refills : int;
  a_minor_words : float;  (** minor-heap words allocated in the window *)
  a_minor_collections : int;  (** minor GCs triggered in the window *)
}

val alloc_modes : ?ops:int -> params -> alloc_row list
(** System vs type-stable Pool allocator on steady-state queue and list
    workloads at equal op count ([ops] each, default 200k), single
    domain so the [Gc.quick_stat] deltas are well-defined.  The window
    excludes construction and a warm-up, so the pool numbers price
    steady-state recycling; expected shape: pool hit rate ≥ 0.9 and
    strictly fewer minor words / collections than system. *)

type traced_run = {
  t_name : string;
  t_mops : float;
  t_sink : Obs.Sink.t;  (** holds the event rings and latency histograms *)
}

val traced_queue_runs : ?capacity:int -> params -> traced_run list
(** Enqueue/dequeue pairs on the MS queue under each scheme with an
    active {!Obs.Sink} installed: the sink collects lifecycle events
    (per-thread rings of [capacity] entries) and retire→free / guard /
    scan latency histograms.  Feed the sinks to {!Obs.Trace.combined}
    for a Chrome-trace file and to [Obs.Sink.retire_free_hist] for the
    per-scheme latency quantiles in BENCH_orc.json. *)

val tracing_overhead : params -> float * float
(** [(null_mops, active_mops)] on the ms-orc pairs micro: throughput
    with the compiled-in hooks left disabled (null sink — the default)
    vs with full event capture.  The null number prices the
    instrumentation itself and belongs in EXPERIMENTS.md. *)
