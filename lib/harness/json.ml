(* The JSON core now lives in [Obs.Json] (the observability layer needs
   it below the harness in the dependency order, for trace export and
   validation); re-exporting it here keeps every [Harness.Json.Obj]-style
   call site working. *)
include Obs.Json

let of_series series =
  List
    (List.map
       (fun s ->
         Obj
           [
             ("label", Str s.Report.label);
             ( "points",
               List
                 (List.map
                    (fun (threads, v) ->
                      Obj [ ("threads", Int threads); ("value", Float v) ])
                    s.Report.points) );
           ])
       series)
