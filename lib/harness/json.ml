(* The JSON core now lives in [Obs.Json] (the observability layer needs
   it below the harness in the dependency order, for trace export and
   validation); re-exporting it here keeps every [Harness.Json.Obj]-style
   call site working. *)
include Obs.Json

(* Provenance block stamped into every benchmark JSON: enough to tell
   two BENCH_orc.json artifacts apart without the CI run that produced
   them.  Each field degrades to a placeholder rather than failing —
   benches run outside git checkouts too. *)
let meta () =
  let commit =
    let try_read ic =
      let line = try input_line ic with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      line
    in
    match
      try Some (Unix.open_process_in "git rev-parse HEAD 2>/dev/null")
      with _ -> None
    with
    | None -> "unknown"
    | Some ic -> ( match try_read ic with "" -> "unknown" | c -> c)
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  let now = Unix.gettimeofday () in
  Obj
    [
      ("commit", Str commit);
      ("ocaml", Str Sys.ocaml_version);
      ("host", Str host);
      ("unix_time", Float now);
      ("packed", Bool !Memdom.Hdr.packed);
      ("word_size", Int Sys.word_size);
    ]

(* Merge [sections] into the top-level object already in [path] (if any
   parses), so independent bench invocations writing different sections
   compose into one artifact instead of clobbering each other.  New
   sections win on name collision; a fresh [meta] block is stamped on
   every write. *)
let write_merged path sections =
  let existing =
    match of_file path with
    | Obj kvs -> kvs
    | _ -> []
    | exception (Sys_error _ | Parse_error _) -> []
  in
  let keep =
    List.filter
      (fun (k, _) -> k <> "meta" && not (List.mem_assoc k sections))
      existing
  in
  to_file path (Obj ((("meta", meta ()) :: keep) @ sections))

let of_series series =
  List
    (List.map
       (fun s ->
         Obj
           [
             ("label", Str s.Report.label);
             ( "points",
               List
                 (List.map
                    (fun (threads, v) ->
                      Obj [ ("threads", Int threads); ("value", Float v) ])
                    s.Report.points) );
           ])
       series)
