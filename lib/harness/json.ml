type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* JSON has no nan/inf; map them to null *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  write b j;
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

let of_series series =
  List
    (List.map
       (fun s ->
         Obj
           [
             ("label", Str s.Report.label);
             ( "points",
               List
                 (List.map
                    (fun (threads, v) ->
                      Obj [ ("threads", Int threads); ("value", Float v) ])
                    s.Report.points) );
           ])
       series)
