(** Bench-harness view of the JSON module.

    The type and serializer live in {!Obs.Json} (the observability layer
    sits below the harness and needs them for Chrome-trace export); this
    re-export adds only the harness-specific {!of_series}. *)

include module type of struct
  include Obs.Json
end

val of_series : Report.series list -> t
(** A result table as
    [[{"label": .., "points": [{"threads": .., "value": ..}]}]]. *)

val meta : unit -> t
(** Provenance object: git commit (or ["unknown"] outside a checkout),
    OCaml version, hostname, wall-clock time, header-packing mode and
    word size.  Stamped into benchmark artifacts by {!write_merged}. *)

val write_merged : string -> (string * t) list -> unit
(** Merge [sections] into the top-level object already stored at the
    path (a missing or unparseable file starts empty), replacing
    sections with the same name, refreshing the ["meta"] block, and
    writing the result back.  This is how [bench/main.exe --json]
    composes [--scan], [--pack] and [--metrics] runs into one
    [BENCH_orc.json] instead of clobbering it. *)
