(** Bench-harness view of the JSON module.

    The type and serializer live in {!Obs.Json} (the observability layer
    sits below the harness and needs them for Chrome-trace export); this
    re-export adds only the harness-specific {!of_series}. *)

include module type of struct
  include Obs.Json
end

val of_series : Report.series list -> t
(** A result table as
    [[{"label": .., "points": [{"threads": .., "value": ..}]}]]. *)
