(** Minimal JSON construction and serialization — enough for the bench
    harness to emit machine-readable results ([BENCH_orc.json]) without
    pulling a JSON dependency into the tree. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/inf serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_file : string -> t -> unit

val of_series : Report.series list -> t
(** A result table as
    [[{"label": .., "points": [{"threads": .., "value": ..}]}]]. *)
