(* See the mli.  The zipfian generator is YCSB's: a closed-form
   inverse-CDF draw over the harmonic-number normalizer zeta(n, theta),
   precomputed once at [create] (O(n), amortized over millions of
   draws).  Scrambling spreads the hot head ranks across the keyspace
   with a stateless mix, exactly like YCSB's ScrambledZipfian — without
   it, the hottest keys are 0,1,2,... and adjacent in every ordered
   structure they hit. *)

open Atomicx

let default_theta = 0.99

type dist =
  | Uniform
  | Zipfian of { theta : float }
  | Hotspot of { hot_set : float; hot_ops : float }

type gen =
  | U
  | Z of { theta : float; alpha : float; zetan : float; eta : float }
  | H of { hot_n : int; hot_ops : float }

type t = { rng : Rng.t; n : int; g : gen; scramble : bool }

let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. (float_of_int i ** theta))
  done;
  !s

let create ?(scramble = true) dist ~n ~seed =
  if n < 1 then invalid_arg "Keygen.create: n must be positive";
  let rng = Rng.create seed in
  match dist with
  | Uniform -> { rng; n; g = U; scramble = false }
  | Zipfian { theta } ->
      if theta <= 0. || theta >= 1. then
        invalid_arg "Keygen.create: zipfian theta must be in (0, 1)";
      let zetan = zeta n theta in
      let eta =
        (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
        /. (1. -. (zeta 2 theta /. zetan))
      in
      { rng; n; g = Z { theta; alpha = 1. /. (1. -. theta); zetan; eta }; scramble }
  | Hotspot { hot_set; hot_ops } ->
      if hot_set <= 0. || hot_set >= 1. || hot_ops <= 0. || hot_ops > 1. then
        invalid_arg "Keygen.create: hotspot fractions out of range";
      let hot_n = max 1 (int_of_float (hot_set *. float_of_int n)) in
      { rng; n; g = H { hot_n; hot_ops }; scramble = false }

let rank t =
  match t.g with
  | U -> Rng.int t.rng t.n
  | Z z ->
      let u = Rng.float t.rng in
      let uz = u *. z.zetan in
      if uz < 1. then 0
      else if uz < 1. +. (0.5 ** z.theta) then 1
      else
        min (t.n - 1)
          (int_of_float
             (float_of_int t.n *. (((z.eta *. u) -. z.eta +. 1.) ** z.alpha)))
  | H h ->
      if Rng.float t.rng < h.hot_ops then Rng.int t.rng h.hot_n
      else if h.hot_n >= t.n then Rng.int t.rng t.n
      else h.hot_n + Rng.int t.rng (t.n - h.hot_n)

(* SplitMix64-style finalizer (multipliers truncated to OCaml's 63-bit
   immediates, still odd): stateless, so a rank always scrambles to the
   same key — the distribution's shape is preserved, only relabeled
   (collisions mod n merge a negligible mass for n << 2^60). *)
let mix64 z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let next t =
  let r = rank t in
  if t.scramble then mix64 r land max_int mod t.n else r

type op = Read | Update

type mix = { label : string; read_pct : int }

let mix_a = { label = "A"; read_pct = 50 }
let mix_b = { label = "B"; read_pct = 95 }
let mix_c = { label = "C"; read_pct = 100 }

let next_op t mix =
  if mix.read_pct >= 100 || Rng.int t.rng 100 < mix.read_pct then Read
  else Update
