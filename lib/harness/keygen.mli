(** Deterministic YCSB-style workload generation for the KV-service
    benchmark: key distributions (uniform, zipfian, hotspot) and
    read/update operation mixes.

    Every generator is seeded explicitly from {!Atomicx.Rng} — there is
    no ambient randomness anywhere, so a run is reproducible from its
    master seed: give each worker its own [t] with
    [create dist ~n ~seed:(master lxor (worker_index * some_odd))] and
    the whole benchmark replays bit-for-bit. *)

type t
(** One worker's generator: owns a private {!Atomicx.Rng} stream. *)

val default_theta : float
(** 0.99 — YCSB's zipfian constant. *)

type dist =
  | Uniform
  | Zipfian of { theta : float }
      (** Zipf-distributed ranks over [0, n); [theta] in (0, 1),
          conventionally {!default_theta}.  Rank frequencies follow
          1/rank^theta. *)
  | Hotspot of { hot_set : float; hot_ops : float }
      (** [hot_set] fraction of the keyspace receives [hot_ops]
          fraction of the draws, uniform within each region. *)

val create : ?scramble:bool -> dist -> n:int -> seed:int -> t
(** Generator over the keyspace [0, n).  [scramble] (default [true],
    zipfian only) relabels ranks through a stateless SplitMix64 mix so
    the hot keys scatter across the keyspace instead of clustering at
    0,1,2,... — YCSB's ScrambledZipfian.  Zeta normalization is
    precomputed here: O(n) once, nothing per draw. *)

val next : t -> int
(** Draw a key in [0, n). *)

(** {2 Operation mixes} *)

type op = Read | Update

type mix = { label : string; read_pct : int }

val mix_a : mix
(** YCSB-A: 50% read / 50% update. *)

val mix_b : mix
(** YCSB-B: 95% read / 5% update. *)

val mix_c : mix
(** YCSB-C: read-only. *)

val next_op : t -> mix -> op
(** Draw the next operation kind from the worker's own stream. *)
