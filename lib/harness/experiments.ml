open Atomicx

type params = {
  threads : int list;
  duration : float;
  list_keys : int;
  big_keys : int;
  csv : string option;
}

let default =
  {
    threads = [ 1; 2; 4 ];
    duration = 0.25;
    list_keys = 1_000;
    big_keys = 20_000;
    csv = None;
  }

(* ------------------------------------------------------------------ *)
(* Instantiations of every structure x scheme used by the evaluation.  *)

module Int_item = struct
  type t = int
end

module Msq_hp = Ds.Ms_queue.Make (Int_item) (Reclaim.Hp.Make)
module Msq_ptb = Ds.Ms_queue.Make (Int_item) (Reclaim.Ptb.Make)
module Msq_ebr = Ds.Ms_queue.Make (Int_item) (Reclaim.Ebr.Make)
module Msq_he = Ds.Ms_queue.Make (Int_item) (Reclaim.He.Make)
module Msq_ptp = Ds.Ms_queue.Make (Int_item) (Orc_core.Ptp.Make)
module Msq_leak = Ds.Ms_queue.Make (Int_item) (Reclaim.None_scheme.Leak)
module Msq_orc = Ds.Orc_ms_queue.Make (Int_item)
module Lcrq_hp = Ds.Lcrq.Make (Int_item) (Reclaim.Hp.Make)
module Lcrq_ptp = Ds.Lcrq.Make (Int_item) (Orc_core.Ptp.Make)
module Lcrq_orc = Ds.Orc_lcrq.Make (Int_item)
module Kpq_orc = Ds.Orc_kp_queue.Make (Int_item)
module Turn_orc = Ds.Orc_turn_queue.Make (Int_item)
module Ml_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module Ml_ptb = Ds.Michael_list.Make (Reclaim.Ptb.Make)
module Ml_ebr = Ds.Michael_list.Make (Reclaim.Ebr.Make)
module Ml_he = Ds.Michael_list.Make (Reclaim.He.Make)
module Ml_ibr = Ds.Michael_list.Make (Reclaim.Ibr.Make)
module Ml_ptp = Ds.Michael_list.Make (Orc_core.Ptp.Make)
module Ml_leak = Ds.Michael_list.Make (Reclaim.None_scheme.Leak)
module Ml_orc = Ds.Orc_michael_list.Make ()
module Harris_orc = Ds.Orc_harris_list.Make ()
module Hsl_orc = Ds.Orc_hs_list.Make ()
module Tbkp_orc = Ds.Orc_tbkp_list.Make ()
module Nm_hp = Ds.Nm_tree.Make (Reclaim.Hp.Make)
module Nm_ebr = Ds.Nm_tree.Make (Reclaim.Ebr.Make)
module Nm_he = Ds.Nm_tree.Make (Reclaim.He.Make)
module Nm_ptp = Ds.Nm_tree.Make (Orc_core.Ptp.Make)
module Nm_orc = Ds.Orc_nm_tree.Make ()
module Skip_hs = Ds.Orc_hs_skiplist.Make ()
module Skip_crf = Ds.Orc_crf_skiplist.Make ()
module Hm_hp = Ds.Hash_map.Make (Reclaim.Hp.Make)
module Hm_ebr = Ds.Hash_map.Make (Reclaim.Ebr.Make)
module Hm_ptp = Ds.Hash_map.Make (Orc_core.Ptp.Make)
module Hm_orc = Ds.Orc_hash_map.Make ()

(* ------------------------------------------------------------------ *)
(* First-class adapters so experiments can iterate heterogeneously.    *)

module type QUEUE = sig
  type t

  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
  val destroy : t -> unit
  val unreclaimed : t -> int
  val flush : t -> unit
  val alloc : t -> Memdom.Alloc.t
end

type queue_ops = {
  q_name : string;
  q_enq : int -> unit;
  q_deq : unit -> int option;
  q_destroy : unit -> unit;
  q_unreclaimed : unit -> int;
  q_live : unit -> int;
}

let make_queue name (module Q : QUEUE) () =
  let t = Q.create () in
  {
    q_name = name;
    q_enq = Q.enqueue t;
    q_deq = (fun () -> Q.dequeue t);
    q_destroy =
      (fun () ->
        Q.destroy t;
        Q.flush t);
    q_unreclaimed = (fun () -> Q.unreclaimed t);
    q_live = (fun () -> Memdom.Alloc.live (Q.alloc t));
  }

module type SET = sig
  type t

  val create : ?mode:Memdom.Alloc.mode -> unit -> t
  val add : t -> int -> bool
  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val destroy : t -> unit
  val unreclaimed : t -> int
  val flush : t -> unit
  val alloc : t -> Memdom.Alloc.t
end

type set_ops = {
  s_name : string;
  s_add : int -> bool;
  s_remove : int -> bool;
  s_contains : int -> bool;
  s_destroy : unit -> unit;
  s_unreclaimed : unit -> int;
  s_live : unit -> int;
}

let make_set name (module S : SET) () =
  let t = S.create () in
  {
    s_name = name;
    s_add = S.add t;
    s_remove = S.remove t;
    s_contains = S.contains t;
    s_destroy =
      (fun () ->
        S.destroy t;
        S.flush t);
    s_unreclaimed = (fun () -> S.unreclaimed t);
    s_live = (fun () -> Memdom.Alloc.live (S.alloc t));
  }

let queue_factories =
  [
    make_queue "ms-hp" (module Msq_hp);
    make_queue "ms-ptb" (module Msq_ptb);
    make_queue "ms-ebr" (module Msq_ebr);
    make_queue "ms-he" (module Msq_he);
    make_queue "ms-ptp" (module Msq_ptp);
    make_queue "ms-leak" (module Msq_leak);
    make_queue "ms-orc" (module Msq_orc);
    make_queue "lcrq-hp" (module Lcrq_hp);
    make_queue "lcrq-ptp" (module Lcrq_ptp);
    make_queue "lcrq-orc" (module Lcrq_orc);
    make_queue "kp-orc" (module Kpq_orc);
    make_queue "turn-orc" (module Turn_orc);
  ]

let michael_factories =
  [
    make_set "hp" (module Ml_hp);
    make_set "ptb" (module Ml_ptb);
    make_set "ebr" (module Ml_ebr);
    make_set "he" (module Ml_he);
    make_set "ibr" (module Ml_ibr);
    make_set "ptp" (module Ml_ptp);
    make_set "leak" (module Ml_leak);
    make_set "orc" (module Ml_orc);
  ]

let orc_list_factories =
  [
    make_set "harris-orc" (module Harris_orc);
    make_set "michael-orc" (module Ml_orc);
    make_set "hs-orc" (module Hsl_orc);
    make_set "tbkp-orc" (module Tbkp_orc);
  ]

let tree_factories =
  [
    make_set "nmtree-hp" (module Nm_hp);
    make_set "nmtree-ebr" (module Nm_ebr);
    make_set "nmtree-he" (module Nm_he);
    make_set "nmtree-ptp" (module Nm_ptp);
    make_set "nmtree-orc" (module Nm_orc);
    make_set "hs-skip-orc" (module Skip_hs);
    make_set "crf-skip-orc" (module Skip_crf);
  ]

(* ------------------------------------------------------------------ *)
(* Workload drivers.                                                   *)

let run_queue_pairs mk ~threads ~duration =
  let q = mk () in
  let r =
    Runner.run ~threads ~duration
      ~worker:(fun ~i ~tid:_ ~stop ->
        let rng = Rng.create ((i + 1) * 0x9E3779B9) in
        let count = ref 0 in
        while not (stop ()) do
          q.q_enq (Rng.int rng 1_000_000);
          ignore (q.q_deq ());
          count := !count + 2
        done;
        !count)
      ()
  in
  q.q_destroy ();
  r.Runner.mops

(* Insert every other key in shuffled order: the NM tree is unbalanced,
   so ordered prefill would degenerate it into a list. *)
let prefill s ~keys =
  let ks = Array.init ((keys + 1) / 2) (fun i -> (2 * i) + 1) in
  let rng = Rng.create 0xC0FFEE in
  for i = Array.length ks - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = ks.(i) in
    ks.(i) <- ks.(j);
    ks.(j) <- tmp
  done;
  Array.iter (fun k -> ignore (s.s_add k)) ks

let run_set_mix ?sampler mk ~mix ~threads ~duration ~keys =
  let s = mk () in
  prefill s ~keys;
  let r =
    Runner.run ~threads ~duration
      ?sampler:(Option.map (fun f () -> f s) sampler)
      ~worker:(fun ~i ~tid:_ ~stop ->
        let rng = Rng.create ((i + 1) * 7919) in
        let count = ref 0 in
        while not (stop ()) do
          let k = 1 + Rng.int rng keys in
          (match Workload.pick rng mix with
          | Workload.Add -> ignore (s.s_add k)
          | Workload.Remove -> ignore (s.s_remove k)
          | Workload.Lookup -> ignore (s.s_contains k));
          incr count
        done;
        !count)
      ()
  in
  let final = (s.s_live (), s.s_unreclaimed ()) in
  s.s_destroy ();
  (r.Runner.mops, final)

let sweep factories ~threads ~f =
  List.map
    (fun mk ->
      let name = (mk ()).s_name in
      { Report.label = name; points = List.map (fun t -> (t, f mk t)) threads })
    factories

let maybe_csv p ~title series =
  match p.csv with
  | Some path -> Report.to_csv ~path ~title series
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Figures.                                                            *)

let fig1_queues p =
  let series =
    List.map
      (fun mk ->
        let name = (mk ()).q_name in
        {
          Report.label = name;
          points =
            List.map
              (fun t -> (t, run_queue_pairs mk ~threads:t ~duration:p.duration))
              p.threads;
        })
      queue_factories
  in
  maybe_csv p ~title:"fig1-queues" series;
  series

let per_mix p factories ~keys =
  List.map
    (fun (mix_name, mix) ->
      let series =
        sweep factories ~threads:p.threads ~f:(fun mk t ->
            fst (run_set_mix mk ~mix ~threads:t ~duration:p.duration ~keys))
      in
      maybe_csv p ~title:mix_name series;
      (mix_name, series))
    Workload.standard_mixes

let fig3_list_schemes p = per_mix p michael_factories ~keys:p.list_keys
let fig5_orc_lists p = per_mix p orc_list_factories ~keys:p.list_keys
let fig7_trees p = per_mix p tree_factories ~keys:p.big_keys

(* ------------------------------------------------------------------ *)
(* Table 1: measured memory bounds.                                    *)

type bound_row = {
  b_scheme : string;
  b_threads : int;
  b_hps : int;
  b_max_unreclaimed : int;
  b_bound : string;
  b_bound_value : int;
}

let table1_bounds p =
  let threads = List.fold_left max 1 p.threads in
  let hps = 4 (* max_hps used by the list *) in
  let bound_of scheme ~live =
    (* [threads + 2] accounts for the coordinator and registry slack;
       HP/PTB additionally hold up to one scan threshold of retired
       nodes per thread before scanning.  The threshold is the dynamic
       R = 2*H*t of the live thread population ([Registry.active]), so
       the bound uses the population actually observed during the run
       ([live]) — under a shared test process, earlier suites' staged
       or quarantined slots legitimately inflate it. *)
    match scheme with
    | "ptp" | "orc" -> ("O(Ht)", (threads + 2) * (hps + 1))
    | "hp" | "ptb" ->
        ( "O(Ht^2)",
          ((threads + 2) * 2 * hps * live) + ((threads + 2) * (hps + 1)) )
    | "he" | "ibr" -> ("O(#L*H*t^2)", -1)
    | "ebr" | "leak" -> ("unbounded", -1)
    | _ -> ("?", -1)
  in
  List.map
    (fun mk ->
      let name = (mk ()).s_name in
      let peak = ref 0 in
      let live = ref (threads + 2) in
      let sampler s =
        let u = s.s_unreclaimed () in
        if u > !peak then peak := u;
        let a = Registry.active () in
        if a > !live then live := a
      in
      let _ =
        run_set_mix ~sampler mk ~mix:Workload.write_heavy ~threads
          ~duration:p.duration ~keys:64
      in
      let bound, bound_value = bound_of name ~live:!live in
      {
        b_scheme = name;
        b_threads = threads;
        b_hps = hps;
        b_max_unreclaimed = !peak;
        b_bound = bound;
        b_bound_value = bound_value;
      })
    michael_factories

(* ------------------------------------------------------------------ *)
(* Memory footprint: HS-skip vs CRF-skip (§5).                         *)

type mem_row = {
  m_structure : string;
  m_peak_live : int;
  m_final_live : int;
  m_reachable : int;
  m_pinned_live : int;
  m_pinned_after : int;
}

(* The mechanism behind the paper's 19 GB-vs-1 GB observation: a stalled
   reader pins one removed node; in HS-skip that node's frozen forward
   pointer chains to every node removed after it, so the whole removed
   population stays allocated, while CRF-skip's poisoning severs the
   chain at the first hop.  We reproduce it deterministically: pin the
   first node, remove all [n] keys, and measure live objects while the
   pin is held and after it is released. *)
let pinned_chain_hs n =
  let module S = Skip_hs in
  let t = S.create () in
  for k = 1 to n do
    ignore (S.add t k)
  done;
  let during = ref 0 in
  S.O.with_guard t.S.orc (fun g ->
      let pin = S.O.ptr g in
      S.O.load g t.S.head.S.next.(0) pin;
      for k = 1 to n do
        ignore (S.remove t k)
      done;
      during := Memdom.Alloc.live (S.alloc t));
  S.flush t;
  let after = Memdom.Alloc.live (S.alloc t) in
  S.destroy t;
  S.flush t;
  (!during, after)

let pinned_chain_crf n =
  let module S = Skip_crf in
  let t = S.create () in
  for k = 1 to n do
    ignore (S.add t k)
  done;
  let during = ref 0 in
  S.O.with_guard t.S.orc (fun g ->
      let pin = S.O.ptr g in
      S.O.load g t.S.head.S.next.(0) pin;
      for k = 1 to n do
        ignore (S.remove t k)
      done;
      during := Memdom.Alloc.live (S.alloc t));
  S.flush t;
  let after = Memdom.Alloc.live (S.alloc t) in
  S.destroy t;
  S.flush t;
  (!during, after)

let mem_footprint p =
  let threads = List.fold_left max 1 p.threads in
  let chain_n = min 5_000 p.big_keys in
  List.map
    (fun (mk, pinned) ->
      let name = (mk ()).s_name in
      let peak = ref 0 in
      let sampler s =
        let l = s.s_live () in
        if l > !peak then peak := l
      in
      let _, (final_live, _) =
        run_set_mix ~sampler mk ~mix:Workload.write_heavy ~threads
          ~duration:p.duration ~keys:p.big_keys
      in
      let pinned_live, pinned_after = pinned chain_n in
      (* reachable ~ half the key range on a balanced 50/50 mix *)
      {
        m_structure = name;
        m_peak_live = !peak;
        m_final_live = final_live;
        m_reachable = p.big_keys / 2;
        m_pinned_live = pinned_live;
        m_pinned_after = pinned_after;
      })
    [
      (make_set "hs-skip" (module Skip_hs), pinned_chain_hs);
      (make_set "crf-skip" (module Skip_crf), pinned_chain_crf);
    ]

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)

let ablation_publish p =
  let run label value =
    Orc_core.Ptp.publish_with_exchange := value;
    let points =
      List.map
        (fun t ->
          ( t,
            fst
              (run_set_mix
                 (make_set "ptp" (module Ml_ptp))
                 ~mix:Workload.write_heavy ~threads:t ~duration:p.duration
                 ~keys:p.list_keys) ))
        p.threads
    in
    { Report.label; points }
  in
  let series = [ run "ptp-store" false; run "ptp-exchange" true ] in
  Orc_core.Ptp.publish_with_exchange := false;
  maybe_csv p ~title:"ablation-publish" series;
  series

let ablation_clear_handover p =
  let threads = List.fold_left max 1 p.threads in
  let residual value =
    Orc_core.Ptp.clear_handover := value;
    let _, (_, unreclaimed) =
      run_set_mix
        (make_set "ptp" (module Ml_ptp))
        ~mix:Workload.write_heavy ~threads ~duration:p.duration
        ~keys:p.list_keys
    in
    unreclaimed
  in
  let with_drain = residual true in
  let without_drain = residual false in
  Orc_core.Ptp.clear_handover := true;
  [ ("clear-drains-handover", with_drain); ("no-drain", without_drain) ]

(* Extension (not a paper figure): Michael's hash table [18], the second
   structure of the paper that gives us the list — a sanity check that
   the scheme ranking generalizes beyond pointer-chasing shapes. *)
let ext_hashmap p =
  let factories =
    [
      make_set "hashmap-hp" (module Hm_hp);
      make_set "hashmap-ebr" (module Hm_ebr);
      make_set "hashmap-ptp" (module Hm_ptp);
      make_set "hashmap-orc" (module Hm_orc);
    ]
  in
  let series =
    sweep factories ~threads:p.threads ~f:(fun mk t ->
        fst
          (run_set_mix mk ~mix:Workload.write_heavy ~threads:t
             ~duration:p.duration ~keys:p.list_keys))
  in
  maybe_csv p ~title:"ext-hashmap" series;
  series

(* Backend ablation (paper §4: "most of the existing pointer-based
   reclamation schemes can be used by OrcGC"): the same automatic layer
   over the PTP backend vs an HP backend, on a root-table churn.  The
   claim to observe: equivalent behaviour and throughput, but the HP
   backend's peak unreclaimed population is threshold-bound (quadratic
   class) while PTP's stays linear. *)

type backend_row = {
  k_backend : string;
  k_mops : float;
  k_peak_unreclaimed : int;
}

type bnode = { bhdr : Memdom.Hdr.t; bnext : bnode Atomicx.Link.t }

module Bnode = struct
  type t = bnode

  let hdr n = n.bhdr
  let iter_links n f = f n.bnext
end

module Ob_ptp = Orc_core.Orc.Make (Bnode)
module Ob_hp = Orc_core.Orc_hp.Make (Bnode)

let ablation_backend p =
  let threads = List.fold_left max 1 p.threads in
  let mk_node hdr = { bhdr = hdr; bnext = Atomicx.Link.make Atomicx.Link.Null } in
  let churn ~k_backend ~with_guard ~alloc_node_into ~fresh_ptr ~store ~ptr_state
      ~unreclaimed ~drop =
    let nslots = 16 in
    let roots = Array.init nslots (fun _ -> Atomicx.Link.make Atomicx.Link.Null) in
    let peak = ref 0 in
    let r =
      Runner.run ~threads ~duration:p.duration
        ~sampler:(fun () ->
          let u = unreclaimed () in
          if u > !peak then peak := u)
        ~worker:(fun ~i ~tid:_ ~stop ->
          let rng = Rng.create ((i + 1) * 6700417) in
          let count = ref 0 in
          while not (stop ()) do
            with_guard (fun g ->
                let hp = fresh_ptr g in
                let root = roots.(Rng.int rng nslots) in
                let n = alloc_node_into g hp mk_node in
                store g root (ptr_state n);
                incr count)
          done;
          !count)
        ()
    in
    drop roots;
    { k_backend; k_mops = r.Runner.mops; k_peak_unreclaimed = !peak }
  in
  let ptp_row =
    let alloc = Memdom.Alloc.create "orc-ptp-backend" in
    let o = Ob_ptp.create alloc in
    let row =
      churn ~k_backend:"orc(ptp)"
        ~with_guard:(fun f -> Ob_ptp.with_guard o f)
        ~alloc_node_into:(fun g hp mk -> Ob_ptp.alloc_node_into g hp mk)
        ~fresh_ptr:Ob_ptp.ptr
        ~store:(fun g l st -> Ob_ptp.store g l st)
        ~ptr_state:(fun n -> Atomicx.Link.Ptr n)
        ~unreclaimed:(fun () -> Ob_ptp.unreclaimed o)
        ~drop:(fun roots ->
          Ob_ptp.with_guard o (fun g ->
              Array.iter (fun r -> Ob_ptp.store g r Atomicx.Link.Null) roots);
          Ob_ptp.flush o)
    in
    row
  in
  let hp_row =
    let alloc = Memdom.Alloc.create "orc-hp-backend" in
    let o = Ob_hp.create alloc in
    churn ~k_backend:"orc(hp)"
      ~with_guard:(fun f -> Ob_hp.with_guard o f)
      ~alloc_node_into:(fun g hp mk -> Ob_hp.alloc_node_into g hp mk)
      ~fresh_ptr:Ob_hp.ptr
      ~store:(fun g l st -> Ob_hp.store g l st)
      ~ptr_state:(fun n -> Atomicx.Link.Ptr n)
      ~unreclaimed:(fun () -> Ob_hp.unreclaimed o)
      ~drop:(fun roots ->
        Ob_hp.with_guard o (fun g ->
            Array.iter (fun r -> Ob_hp.store g r Atomicx.Link.Null) roots);
        Ob_hp.flush o)
  in
  [ ptp_row; hp_row ]

(* ------------------------------------------------------------------ *)
(* Allocator modes: System vs the type-stable Pool, at equal op count. *)

type alloc_row = {
  a_workload : string;
  a_mode : string;
  a_ops : int;
  a_mops : float;
  a_hit_rate : float;
  a_hits : int;
  a_misses : int;
  a_remote_frees : int;
  a_refills : int;
  a_minor_words : float;
  a_minor_collections : int;
}

(* Single-domain, fixed-op-count runs on purpose: [Gc.quick_stat] is
   per-domain, so this is the configuration where "minor words / minor
   collections at equal op count" is well-defined.  The counter window
   excludes structure construction and a short warm-up, so Pool numbers
   price steady-state recycling rather than the cold free-list. *)
let alloc_measure ~warm ~window ~alloc ~ops =
  warm ();
  let s0 = Memdom.Stats.take alloc in
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  window ();
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let s1 = Memdom.Stats.take alloc in
  let d = Memdom.Stats.diff s0 s1 in
  ( float_of_int ops /. dt /. 1e6,
    d,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.minor_collections - g0.Gc.minor_collections )

let alloc_queue_run (module Q : QUEUE) ~mode ~ops =
  let t = Q.create ~mode () in
  let pairs n =
    for i = 1 to n do
      Q.enqueue t i;
      ignore (Q.dequeue t)
    done
  in
  let r =
    alloc_measure
      ~warm:(fun () -> pairs 1_000)
      ~window:(fun () -> pairs (ops / 2))
      ~alloc:(Q.alloc t) ~ops
  in
  Q.destroy t;
  Q.flush t;
  r

(* Rotating add/remove over a small key range: every add allocates a
   node and every remove retires one, so at steady state the pool
   recycles the entire working set (misses are bounded by the scheme's
   scan-threshold backlog).  The key range is kept small so per-op
   traversal allocation (boxed link states) doesn't drown the header
   savings the experiment is about. *)
let alloc_list_run (module S : SET) ~mode ~ops =
  let t = S.create ~mode () in
  let keys = 16 in
  let churn n =
    for i = 1 to n do
      let k = 1 + (i mod keys) in
      ignore (S.add t k);
      ignore (S.remove t k)
    done
  in
  let r =
    alloc_measure
      ~warm:(fun () -> churn 1_000)
      ~window:(fun () -> churn (ops / 2))
      ~alloc:(S.alloc t) ~ops
  in
  S.destroy t;
  S.flush t;
  r

let alloc_modes ?(ops = 200_000) (_ : params) =
  let workloads =
    [
      ("msq-ptp", fun ~mode -> alloc_queue_run (module Msq_ptp) ~mode ~ops);
      ("msq-hp", fun ~mode -> alloc_queue_run (module Msq_hp) ~mode ~ops);
      ("list-hp", fun ~mode -> alloc_list_run (module Ml_hp) ~mode ~ops);
    ]
  in
  List.concat_map
    (fun (wname, run) ->
      List.map
        (fun (mname, mode) ->
          let mops, d, minor_words, minor_collections = run ~mode in
          {
            a_workload = wname;
            a_mode = mname;
            a_ops = ops;
            a_mops = mops;
            a_hit_rate = Memdom.Stats.hit_rate d;
            a_hits = d.Memdom.Stats.pool_hits;
            a_misses = d.Memdom.Stats.pool_misses;
            a_remote_frees = d.Memdom.Stats.remote_frees;
            a_refills = d.Memdom.Stats.refills;
            a_minor_words = minor_words;
            a_minor_collections = minor_collections;
          })
        [ ("system", Memdom.Alloc.System); ("pool", Memdom.Alloc.Pool) ])
    workloads

(* ------------------------------------------------------------------ *)
(* Traced runs (observability): the same queue pairs workload with an  *)
(* active event sink installed, so the trace/histogram exporters have  *)
(* real lifecycle data per scheme.                                     *)

type traced_run = { t_name : string; t_mops : float; t_sink : Obs.Sink.t }

let traced_scheme_names =
  [ "ms-hp"; "ms-ptb"; "ms-ebr"; "ms-he"; "ms-ptp"; "ms-orc" ]

let traced_queue_runs ?(capacity = 1 lsl 15) p =
  let threads = List.fold_left max 1 p.threads in
  List.filter_map
    (fun mk ->
      let name = (mk ()).q_name in
      if not (List.mem name traced_scheme_names) then None
      else
        (* The sink must be ambient while the queue (and its internal
           allocator + scheme) is constructed: [run_queue_pairs] builds
           the structure inside, on this thread, so rebinding the
           default here is race-free. *)
        let sink = Obs.Sink.make ~capacity () in
        let mops =
          Obs.Sink.with_default sink (fun () ->
              run_queue_pairs mk ~threads ~duration:p.duration)
        in
        Some { t_name = name; t_mops = mops; t_sink = sink })
    queue_factories

(* Null-sink tracing overhead on the ms-orc micro: the hooks compile to
   one branch when the sink is Null, so these two numbers should agree
   to within noise; the active-sink number prices full event capture. *)
let tracing_overhead p =
  let threads = List.fold_left max 1 p.threads in
  let mk = make_queue "ms-orc" (module Msq_orc) in
  let run () = run_queue_pairs mk ~threads ~duration:p.duration in
  ignore (run ()) (* warm-up *);
  let null_mops = run () in
  let sink = Obs.Sink.make () in
  let active_mops = Obs.Sink.with_default sink (fun () -> run ()) in
  (null_mops, active_mops)
