(** Michael's lock-free list with OrcGC — same algorithm as
    {!Michael_list} but with type annotations only: links are orc-managed,
    local references are guard-scoped [Ptr] handles, and there is no
    retire call; unlinking a node drops its last hard link and OrcGC
    reclaims it once unprotected (paper §4.1.1 methodology).

    The structure opts into tagged-immediate links by passing its arena
    to [O.create]: handles then hold raw words ([O.Ptr.view]), window
    validation compares words ([Link.view_eq] — sound because the
    word's target is hazard-protected, pinning its arena slot), and the
    CASes go through the view-plane mutators, so a clean traversal
    allocates nothing. *)

open Atomicx

module Make () = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module O = Orc_core.Orc.Make (struct
    type t = node

    let hdr n = n.hdr
    let iter_links n f = f n.next
  end)

  type t = {
    head : node;
    tail : node;
    head_root : node Link.t; (* root links keep the sentinels counted *)
    tail_root : node Link.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
    restarts : int Atomic.t; (* traversal restarts (validation failures) *)
  }

  let scheme_name = "orc"

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_michael_list" in
    let arena = Memdom.Handle.arena ~hdr:(fun n -> n.hdr) () in
    let orc = O.create ~arena alloc in
    O.with_guard orc (fun g ->
        let tp =
          O.alloc_node g (fun hdr ->
              { key = max_int; next = O.new_link g Link.Null; hdr })
        in
        let tail = O.Ptr.node_exn tp in
        let hp =
          O.alloc_node g (fun hdr ->
              { key = min_int; next = O.new_link g (Link.Ptr tail); hdr })
        in
        let head = O.Ptr.node_exn hp in
        let head_root = O.new_link g (Link.Ptr head) in
        let tail_root = O.new_link g (Link.Ptr tail) in
        { head; tail; head_root; tail_root; orc; alloc; restarts = Atomic.make 0 })

  let restarts t = Atomic.get t.restarts

  (* find: walk until curr.key >= key, unlinking marked nodes on the way.
     On return, [curr] (protected) is the candidate and the returned link
     is the predecessor link whose current content is [Ptr.view curr] —
     ready to be used as a CAS expectation.  [prev] protects the node
     that owns that link (or is irrelevant when it is the head's). *)
  let rec find t g key ~prev ~curr ~next =
    let prev_link = ref t.head.next in
    O.load g !prev_link curr;
    let restart () =
      Atomic.incr t.restarts;
      find t g key ~prev ~curr ~next
    in
    let rec loop () =
      let c = O.Ptr.node_exn curr in
      O.load g (next_of c) next;
      if not (Link.view_eq (Link.view !prev_link) (O.Ptr.view curr)) then
        restart ()
      else if O.Ptr.is_marked next then begin
        (* curr logically deleted: unlink; its count drops automatically *)
        let unmarked = Link.v_clean (O.Ptr.view next) in
        if O.cas_v g !prev_link ~expected:(O.Ptr.view curr) ~desired:unmarked
        then begin
          O.assign g curr next;
          O.Ptr.retag_v curr unmarked;
          loop ()
        end
        else restart ()
      end
      else if key_of c >= key then (key_of c = key, !prev_link)
      else begin
        O.assign g prev curr;
        O.assign g curr next;
        prev_link := next_of c;
        loop ()
      end
    in
    loop ()

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Orc_michael_list: key out of range"

  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
        fst (find t g key ~prev ~curr ~next))

  let add t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let node = ref None in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if found then false
      else begin
        let n =
          match !node with
          | Some n -> n
          | None ->
              let p =
                O.alloc_node g (fun hdr ->
                    { key; next = O.new_link g Link.Null; hdr })
              in
              let n = O.Ptr.node_exn p in
              node := Some n;
              n
        in
        (* point the private node at curr (counts maintained), then CAS *)
        O.store_v g n.next (O.Ptr.view curr);
        if
          O.cas_v g prev_link ~expected:(O.Ptr.view curr)
            ~desired:(O.v_ptr t.orc n)
        then true
        else begin
          Atomic.incr t.restarts;
          loop ()
        end
      end
    in
    loop ()

  let remove t key =
    check_key key;
    O.with_guard t.orc @@ fun g ->
    let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
    let rec loop () =
      let found, prev_link = find t g key ~prev ~curr ~next in
      if not found then false
      else begin
        let c = O.Ptr.node_exn curr in
        O.load g (next_of c) next;
        if O.Ptr.is_marked next then begin
          Atomic.incr t.restarts;
          loop ()
        end
        else begin
          (* found node always precedes tail — next must have a target *)
          ignore (O.Ptr.node_exn next);
          if
            O.cas_v g (next_of c) ~expected:(O.Ptr.view next)
              ~desired:(Link.v_mark (O.Ptr.view next))
          then begin
            (* attempt physical unlink; otherwise a later find cleans up *)
            if
              not
                (O.cas_v g prev_link ~expected:(O.Ptr.view curr)
                   ~desired:(Link.v_clean (O.Ptr.view next)))
            then ignore (find t g key ~prev ~curr ~next);
            true
          end
          else begin
            Atomic.incr t.restarts;
            loop ()
          end
        end
      end
    in
    loop ()

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  (* Drop the roots and the head's chain: OrcGC cascades. *)
  let destroy t =
    O.with_guard t.orc (fun g ->
        O.store g t.head_root Link.Null;
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
end
