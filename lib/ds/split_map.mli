(** Split-ordered resizable lock-free hash map over a manual
    reclamation scheme — see the implementation header for the
    algorithm and {!Split_order} for the key encoding.  Satisfies
    {!Intf.SET} plus the map-specific introspection below. *)

val initial_buckets : int
(** 2 — every map starts at two buckets and doubles on demand. *)

module Make (_ : Reclaim.Scheme_intf.MAKER) : sig
  include Intf.SET

  val restarts : t -> int
  (** Traversal restarts (validation failures + lost CAS races). *)

  val buckets : t -> int
  (** Current bucket count (power of two). *)

  val grows : t -> int
  (** Directory doublings performed since creation. *)

  val invariant : t -> bool
  (** Quiesced structural check: so-keys strictly increase along the
      list, the walk reaches the tail, and every initialized bucket
      entry targets an unmarked dummy with the bucket's so-key. *)

  val tuning : t -> Reclaim.Tuning.t
  (** The underlying scheme's knob record; its
      {!Reclaim.Tuning.load_factor} drives the grow policy. *)

  val set_tuning : t -> Reclaim.Tuning.t -> unit

  val stats : t -> Reclaim.Scheme_intf.stats
  (** The scheme's unified counters — [retires] counts exactly the
      successful [remove]s, because dummies are never retired. *)
end
