(** Michael's lock-free linked-list set [18] ("Michael-Harris" in the
    paper's figures), parameterized by a manual reclamation scheme — the
    one list of the paper's four that manual schemes *can* handle.

    Hazard indexes: 0 = curr, 1 = next, 2 = prev.  The traversal runs on
    the link view plane: boxed links validate by box identity (strictly
    stronger than the C++ tag comparison); tagged links validate by word
    equality, sound because the word's target is hazard-protected and a
    protected node's arena slot cannot be recycled.  Keys must lie
    strictly between [min_int] and [max_int]. *)

module Make (R : Reclaim.Scheme_intf.MAKER) : sig
  include Intf.SET

  val restarts : t -> int
  (** Traversal restarts (window-validation failures and lost CAS races)
      since [create] — whitebox visibility into contention for tests and
      the pack benchmark. *)
end
