(** Split-ordering arithmetic and the never-moving bucket directory
    shared by {!Split_map} and {!Orc_split_map} (Shalev & Shavit,
    "Split-ordered lists: lock-free extensible hash tables").

    The whole map is {e one} lock-free list sorted by bit-reversed
    hash; buckets are dummy nodes spliced into that list, and the
    table "grows" by doubling a bucket count — no node ever moves, no
    node is retired by a resize, which is exactly the property that
    keeps reclamation traffic (manual retires or orc count flips)
    proportional to real insert/delete work. *)

val hash_bits : int
(** 60 — hashes use 60 bits so an so-key (reversed hash + regular
    bit) stays a tagged immediate below [max_int], leaving [max_int]
    free for the tail sentinel. *)

val max_key : int
(** Largest admissible key, [2^60 - 1].  Keys must lie in
    [[0, max_key]]. *)

val hash : int -> int
(** Fibonacci multiplicative hash onto the 60-bit domain.  The odd
    multiplier makes it a bijection: distinct keys have distinct
    hashes, hence distinct so-keys — traversals compare so-keys
    only. *)

val rev60 : int -> int
(** Bit-reversal of the 60-bit domain (an involution; bit [k] maps to
    bit [59-k]). *)

val regular : int -> int
(** [regular h] is the so-key of a real key with hash [h]:
    [rev60 h] shifted left one with the regular bit set. *)

val dummy : int -> int
(** [dummy b] is the so-key of bucket [b]'s dummy node (regular bit
    clear).  For every table size it sorts before all keys bucket [b]
    holds and after all keys of the preceding bucket. *)

val is_dummy : int -> bool

val bucket_of : hash:int -> size:int -> int
(** The bucket of [hash] in a table of [size] buckets ([size] a power
    of two): the low [log2 size] bits. *)

val parent : int -> int
(** [parent b] (for [b > 0]): [b] with its most significant set bit
    cleared — the bucket whose dummy provably precedes [b]'s position
    in split order, used as the anchor for recursive bucket
    initialization. *)

(** {2 Bucket directory}

    A fixed table of lazily materialized segments of bucket-entry
    links, mirroring the {!Atomicx.Link} slot table: published
    segments never move, so doubling the bucket count is one atomic
    store and costs no copying, no rehash and no retires. *)

val seg_bits : int
val seg_size : int

val max_buckets : int
(** 2^20 — the directory's capacity (1M buckets; at the default load
    factor of 4 that serves 4M keys at ~4 nodes per chain). *)

type 'a dir

val dir_create : unit -> 'a dir

val dir_entry :
  'a dir -> mk_null:(unit -> 'a Atomicx.Link.t) -> int -> 'a Atomicx.Link.t
(** [dir_entry d ~mk_null b] is bucket [b]'s entry link, materializing
    its segment on first touch ([mk_null] builds the segment's fresh
    null links; a raced materialization drops the loser's all-null
    segment, which holds no counts). *)

val dir_iter : 'a dir -> ('a Atomicx.Link.t -> unit) -> unit
(** Visit every entry link of every materialized segment (quiesced
    helpers: destroy, invariant checks). *)
