(** Michael's lock-free list with OrcGC — same algorithm as
    {!Michael_list} with type annotations only; unlinking drops the
    node's last hard link and OrcGC reclaims it once unprotected.
    Opts into tagged-immediate links (word views, unboxed uid hazard
    plane), so a clean traversal allocates nothing. *)

module Make () : sig
  include Intf.SET

  val restarts : t -> int
  (** Traversal restarts (window-validation failures and lost CAS races)
      since [create] — whitebox visibility into contention for tests and
      the pack benchmark. *)
end
