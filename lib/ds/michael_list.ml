(** Michael's lock-free linked-list set [18] ("Michael-Harris" in the
    paper's figures), parameterized by a manual reclamation scheme.

    This is the one list of the paper's four that manual schemes *can*
    handle: a node is marked (logical delete) and then physically
    unlinked by a single CAS, and only the unlinking thread calls retire,
    so retire's precondition — unreachable from the roots — is decidable
    at a fixed program point.

    Hazard indexes: 0 = curr, 1 = next, 2 = prev node.  The traversal
    runs on the link *view* plane: on a boxed link a view is the very
    box stored, so window validation by [Link.view_eq] is the legacy
    box-identity check; on a tagged link it is the raw word, and word
    equality is sound because the word's target (curr) is protected at
    hazard 0 — a protected node's arena slot cannot be recycled, so an
    unchanged word still means the same node.  With a tagged arena a
    clean traversal allocates nothing: views are immediates, CASes are
    word compare-and-sets, and protection goes through
    [S.get_protected_v] (unboxed uid plane on HP).

    Keys must lie strictly between [min_int] and [max_int] (the sentinel
    keys). *)

open Atomicx

module Make (R : Reclaim.Scheme_intf.MAKER) = struct
  type node = { key : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    head : node; (* sentinel, never retired *)
    tail : node; (* sentinel, never retired *)
    scheme : S.t;
    alloc : Memdom.Alloc.t;
    arena : node Link.arena;
    restarts : int Atomic.t; (* traversal restarts (validation failures) *)
  }

  let scheme_name = S.name

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "michael_list" in
    let scheme = S.create ~max_hps:4 alloc in
    let arena = Memdom.Handle.arena ~hdr:(fun n -> n.hdr) () in
    let tail =
      {
        key = max_int;
        next = Link.make_in arena Link.Null;
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    let head =
      {
        key = min_int;
        next = Link.make_in arena (Link.Ptr tail);
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    { head; tail; scheme; alloc; arena; restarts = Atomic.make 0 }

  let restarts t = Atomic.get t.restarts

  let target_exn st =
    match Link.target st with
    | Some n -> n
    | None -> assert false (* the tail sentinel terminates every search *)

  (* The search window, threaded through the traversal in accumulator
     style so a clean pass allocates nothing (no refs, no tuples).  On
     return [true]: curr holds the key, protected at hazard 0, its
     predecessor's link is the last [prev_link] seen by the caller's
     continuation — [find] re-materialises the window for add/remove. *)
  let rec search_from t ~tid key prev_link curr_v =
    let curr = Link.v_target_exn prev_link curr_v in
    let next_v = S.get_protected_v t.scheme ~tid ~idx:1 (next_of curr) in
    if not (Link.view_eq (Link.view prev_link) curr_v) then
      search_restart t ~tid key
    else if Link.v_is_marked next_v then begin
      (* curr is logically deleted: unlink it physically *)
      let unmarked = Link.v_clean next_v in
      if Link.cas_v prev_link curr_v unmarked then begin
        S.retire t.scheme ~tid curr;
        S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
        search_from t ~tid key prev_link unmarked
      end
      else search_restart t ~tid key
    end
    else if key_of curr >= key then key_of curr = key
    else begin
      (* advance: curr becomes prev (copy protections, both held) *)
      S.copy_protection t.scheme ~tid ~src:0 ~dst:2;
      S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
      search_from t ~tid key (next_of curr) next_v
    end

  and search_restart t ~tid key =
    Atomic.incr t.restarts;
    let root = t.head.next in
    search_from t ~tid key root (S.get_protected_v t.scheme ~tid ~idx:0 root)

  let search t ~tid key = search_restart t ~tid key

  (* Window-returning variant for add/remove; the extra ref cells and
     the result tuple are noise only on the mutating paths, which
     allocate anyway (fresh node / retire). *)
  let rec find t ~tid key =
    let prev_link = ref t.head.next in
    let curr_v = ref (S.get_protected_v t.scheme ~tid ~idx:0 !prev_link) in
    let restart () =
      Atomic.incr t.restarts;
      find t ~tid key
    in
    let rec loop () =
      let curr = Link.v_target_exn !prev_link !curr_v in
      let next_v = S.get_protected_v t.scheme ~tid ~idx:1 (next_of curr) in
      if not (Link.view_eq (Link.view !prev_link) !curr_v) then restart ()
      else if Link.v_is_marked next_v then begin
        let unmarked = Link.v_clean next_v in
        if Link.cas_v !prev_link !curr_v unmarked then begin
          S.retire t.scheme ~tid curr;
          curr_v := unmarked;
          S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
          loop ()
        end
        else restart ()
      end
      else if key_of curr >= key then (key_of curr = key, !prev_link, !curr_v)
      else begin
        S.copy_protection t.scheme ~tid ~src:0 ~dst:2;
        prev_link := next_of curr;
        curr_v := next_v;
        S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
        loop ()
      end
    in
    loop ()

  let check_key key =
    if key = min_int || key = max_int then
      invalid_arg "Michael_list: key must be strictly inside (min_int, max_int)"

  let contains t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let found = search t ~tid key in
    S.end_op t.scheme ~tid;
    found

  let add t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_v = find t ~tid key in
      if found then false
      else
        let node =
          {
            key;
            next = Link.make_of_view t.arena curr_v;
            hdr = Memdom.Alloc.hdr t.alloc ();
          }
        in
        if Link.cas_v prev_link curr_v (Link.v_ptr_in t.arena node) then true
        else begin
          (* lost the race: the fresh node was never published *)
          Memdom.Alloc.free t.alloc node.hdr;
          Atomic.incr t.restarts;
          loop ()
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  let remove t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let rec loop () =
      let found, prev_link, curr_v = find t ~tid key in
      if not found then false
      else
        let curr = Link.v_target_exn prev_link curr_v in
        let next_v = S.get_protected_v t.scheme ~tid ~idx:1 (next_of curr) in
        if Link.v_is_marked next_v then begin
          Atomic.incr t.restarts;
          loop ()
        end
        else begin
          (* found node always precedes tail *)
          assert (Link.v_has_target next_v);
          let marked = Link.v_mark next_v in
          if Link.cas_v (next_of curr) next_v marked then begin
            (* try to unlink; on failure find() will clean up *)
            let unmarked = Link.v_clean next_v in
            if Link.cas_v prev_link curr_v unmarked then
              S.retire t.scheme ~tid curr
            else ignore (find t ~tid key);
            true
          end
          else begin
            Atomic.incr t.restarts;
            loop ()
          end
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    r

  (* Sequential helpers (quiesced): collect the keys of nodes that are
     reachable and not logically deleted. *)
  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            walk (if deleted then acc else key_of nx :: acc) nx
    in
    walk [] t.head

  let size t = List.length (to_list t)

  let destroy t =
    let rec free_chain n =
      if n != t.tail then begin
        let nx = target_exn (Link.get n.next) in
        Memdom.Alloc.free t.alloc n.hdr;
        free_chain nx
      end
      else Memdom.Alloc.free t.alloc n.hdr
    in
    (match Link.target (Link.get t.head.next) with
    | Some n -> free_chain n
    | None -> ());
    Memdom.Alloc.free t.alloc t.head.hdr;
    Link.set t.head.next Link.Null;
    S.flush t.scheme

  let unreclaimed t = S.unreclaimed t.scheme
  let flush t = S.flush t.scheme
  let alloc t = t.alloc
end
