(** Split-ordered lock-free hash map (Shalev & Shavit), parameterized
    by a manual reclamation scheme — the resizable successor of
    {!Hash_map}.

    The whole map is one Michael list sorted by so-key
    ({!Split_order}): every bucket is a dummy node spliced into that
    list, the bucket directory is a never-moving segment table of entry
    links, and growing the table is a single atomic doubling of the
    bucket count — no node moves, nothing is rehashed, and (crucially
    for the reclamation story) a resize retires {e nothing}.  Buckets
    are initialized lazily and recursively: bucket [b]'s dummy is
    inserted by a list insert anchored at [parent b]'s dummy.

    Traversal, unlinking and retirement are exactly {!Michael_list}'s
    view-plane window search — hazard indexes 0 = curr, 1 = next,
    2 = prev — just anchored at a bucket entry and ordered by so-key
    instead of key.  Dummies are never marked and never retired (only
    regular so-keys are ever removed), so an entry link, once set,
    points at a live node forever.

    The grow policy reads {!Reclaim.Tuning.load_factor} from the
    scheme's knob record, so the adaptive controller can defer
    doublings under memory pressure.  Keys must lie in
    [[0, Split_order.max_key]]. *)

open Atomicx
module So = Split_order

let initial_buckets = 2

module Make (R : Reclaim.Scheme_intf.MAKER) = struct
  type node = { key : int; so : int; next : node Link.t; hdr : Memdom.Hdr.t }

  module S = R (struct
    type t = node

    let hdr n = n.hdr
  end)

  type t = {
    dir : node So.dir;
    tail : node; (* sentinel, so = max_int, never retired *)
    buckets_a : int Atomic.t; (* current bucket count (power of two) *)
    count : int Atomic.t; (* live regular keys (exact on quiescence) *)
    grows : int Atomic.t;
    scheme : S.t;
    alloc : Memdom.Alloc.t;
    arena : node Link.arena;
    restarts : int Atomic.t;
    mutable probes : (unit -> int) list;
        (* metrics closures are weakly held by the registry; anchoring
           them here keeps the probes alive exactly as long as the map *)
  }

  let scheme_name = S.name

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let so_of n =
    Memdom.Hdr.check_access n.hdr;
    n.so

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let register_metrics t =
    let labels = [ ("map", "split"); ("scheme", S.name) ] in
    let buckets () = Atomic.get t.buckets_a in
    let lf100 () =
      (* observed load factor in hundredths (keys per bucket × 100) *)
      Atomic.get t.count * 100 / max 1 (Atomic.get t.buckets_a)
    in
    let grows () = Atomic.get t.grows in
    let reg = Obs.Metrics.default in
    Obs.Metrics.probe reg ~labels "orcgc_map_buckets" buckets;
    Obs.Metrics.probe reg ~labels "orcgc_map_load_factor" lf100;
    Obs.Metrics.probe reg ~labels ~counter:true "orcgc_map_grows_total" grows;
    [ buckets; lf100; grows ]

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "split_map" in
    let scheme = S.create ~max_hps:4 alloc in
    let arena = Memdom.Handle.arena ~hdr:(fun n -> n.hdr) () in
    let tail =
      {
        key = max_int;
        so = max_int;
        next = Link.make_in arena Link.Null;
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    let head =
      (* bucket 0's dummy: so = 0, first node of the one list *)
      {
        key = 0;
        so = So.dummy 0;
        next = Link.make_in arena (Link.Ptr tail);
        hdr = Memdom.Alloc.hdr alloc ();
      }
    in
    let t =
      {
        dir = So.dir_create ();
        tail;
        buckets_a = Atomic.make initial_buckets;
        count = Atomic.make 0;
        grows = Atomic.make 0;
        scheme;
        alloc;
        arena;
        restarts = Atomic.make 0;
        probes = [];
      }
    in
    let e0 = So.dir_entry t.dir ~mk_null:(fun () -> Link.make_in arena Link.Null) 0 in
    Link.set e0 (Link.Ptr head);
    t.probes <- register_metrics t;
    t

  let restarts t = Atomic.get t.restarts
  let buckets t = Atomic.get t.buckets_a
  let grows t = Atomic.get t.grows
  let mk_null t () = Link.make_in t.arena Link.Null

  (* Michael window-find from bucket entry [e], ordered by so-key.  On
     [true] curr (protected at hazard 0) holds [so]; so-keys are unique
     (bijective hash), so so-equality is key-equality. *)
  let rec find_from t ~tid e so =
    let prev_link = ref e in
    let curr_v = ref (S.get_protected_v t.scheme ~tid ~idx:0 !prev_link) in
    let restart () =
      Atomic.incr t.restarts;
      find_from t ~tid e so
    in
    let rec loop () =
      let curr = Link.v_target_exn !prev_link !curr_v in
      let next_v = S.get_protected_v t.scheme ~tid ~idx:1 (next_of curr) in
      if not (Link.view_eq (Link.view !prev_link) !curr_v) then restart ()
      else if Link.v_is_marked next_v then begin
        let unmarked = Link.v_clean next_v in
        if Link.cas_v !prev_link !curr_v unmarked then begin
          S.retire t.scheme ~tid curr;
          curr_v := unmarked;
          S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
          loop ()
        end
        else restart ()
      end
      else if so_of curr >= so then (so_of curr = so, !prev_link, !curr_v)
      else begin
        S.copy_protection t.scheme ~tid ~src:0 ~dst:2;
        prev_link := next_of curr;
        curr_v := next_v;
        S.copy_protection t.scheme ~tid ~src:1 ~dst:0;
        loop ()
      end
    in
    loop ()

  (* Bucket entry, with lazy recursive initialization: insert the
     dummy via a plain list insert anchored at the parent's dummy,
     then publish it in the entry (idempotent: the dummy for a given
     so-key is unique, so a raced publish installs the same node). *)
  let rec get_entry t ~tid b =
    let e = So.dir_entry t.dir ~mk_null:(mk_null t) b in
    if Link.v_is_null (Link.view e) then init_bucket t ~tid b e;
    e

  and init_bucket t ~tid b e =
    let parent_e = get_entry t ~tid (So.parent b) in
    let so = So.dummy b in
    let rec loop () =
      let found, prev_link, curr_v = find_from t ~tid parent_e so in
      if found then Link.v_target_exn prev_link curr_v
      else
        let n =
          {
            key = b;
            so;
            next = Link.make_of_view t.arena curr_v;
            hdr = Memdom.Alloc.hdr t.alloc ();
          }
        in
        if Link.cas_v prev_link curr_v (Link.v_ptr_in t.arena n) then n
        else begin
          (* lost the race: the fresh dummy was never published *)
          Memdom.Alloc.free t.alloc n.hdr;
          Atomic.incr t.restarts;
          loop ()
        end
    in
    let d = loop () in
    let ev = Link.view e in
    if Link.v_is_null ev then
      ignore (Link.cas_v e ev (Link.v_ptr_in t.arena d))

  let check_key key =
    if key < 0 || key > So.max_key then
      invalid_arg "Split_map: key out of range [0, 2^60)"

  (* Size-triggered doubling, checked after successful adds.  The load
     factor is the scheme's tuning knob, so the adaptive controller
     can defer growth under memory pressure.  One CAS per doubling —
     losers simply observe the new size on their next operation. *)
  let maybe_grow t =
    let size = Atomic.get t.buckets_a in
    if size < So.max_buckets then
      let lf = Reclaim.Tuning.load_factor (S.tuning t.scheme) in
      if
        Atomic.get t.count > lf * size
        && Atomic.compare_and_set t.buckets_a size (2 * size)
      then Atomic.incr t.grows

  let contains t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let h = So.hash key in
    let e =
      get_entry t ~tid (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
    in
    let found, _, _ = find_from t ~tid e (So.regular h) in
    S.end_op t.scheme ~tid;
    found

  let add t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let h = So.hash key in
    let so = So.regular h in
    let e =
      get_entry t ~tid (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
    in
    let rec loop () =
      let found, prev_link, curr_v = find_from t ~tid e so in
      if found then false
      else
        let n =
          {
            key;
            so;
            next = Link.make_of_view t.arena curr_v;
            hdr = Memdom.Alloc.hdr t.alloc ();
          }
        in
        if Link.cas_v prev_link curr_v (Link.v_ptr_in t.arena n) then true
        else begin
          Memdom.Alloc.free t.alloc n.hdr;
          Atomic.incr t.restarts;
          loop ()
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    if r then begin
      Atomic.incr t.count;
      maybe_grow t
    end;
    r

  let remove t key =
    check_key key;
    let tid = Registry.tid () in
    S.begin_op t.scheme ~tid;
    let h = So.hash key in
    let so = So.regular h in
    let e =
      get_entry t ~tid (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
    in
    let rec loop () =
      let found, prev_link, curr_v = find_from t ~tid e so in
      if not found then false
      else
        let curr = Link.v_target_exn prev_link curr_v in
        let next_v = S.get_protected_v t.scheme ~tid ~idx:1 (next_of curr) in
        if Link.v_is_marked next_v then begin
          Atomic.incr t.restarts;
          loop ()
        end
        else begin
          (* a found node precedes the tail, so next has a target *)
          assert (Link.v_has_target next_v);
          let marked = Link.v_mark next_v in
          if Link.cas_v (next_of curr) next_v marked then begin
            let unmarked = Link.v_clean next_v in
            if Link.cas_v prev_link curr_v unmarked then
              S.retire t.scheme ~tid curr
            else ignore (find_from t ~tid e so);
            true
          end
          else begin
            Atomic.incr t.restarts;
            loop ()
          end
        end
    in
    let r = loop () in
    S.end_op t.scheme ~tid;
    if r then Atomic.decr t.count;
    r

  let head_of t =
    match
      Link.target (Link.get (So.dir_entry t.dir ~mk_null:(mk_null t) 0))
    with
    | Some h -> h
    | None -> invalid_arg "Split_map: destroyed"

  (* Quiesced helpers: walk the one list from bucket 0's dummy. *)
  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            let acc =
              if deleted || So.is_dummy nx.so then acc else key_of nx :: acc
            in
            walk acc nx
    in
    List.sort compare (walk [] (head_of t))

  let size t = List.length (to_list t)

  (* Quiesced structural check: so-keys strictly increase along the
     list (so the split ordering held through every grow), the walk
     reaches the tail, and every initialized entry targets an unmarked
     dummy carrying exactly its bucket's so-key. *)
  let invariant t =
    let ok = ref true in
    let rec walk n prev_so =
      if n != t.tail then begin
        if so_of n <= prev_so then ok := false;
        match Link.target (Link.get n.next) with
        | None -> ok := false (* only the tail terminates the list *)
        | Some nx -> walk nx (so_of n)
      end
    in
    walk (head_of t) (-1);
    for b = 0 to Atomic.get t.buckets_a - 1 do
      let e = So.dir_entry t.dir ~mk_null:(mk_null t) b in
      match Link.target (Link.get e) with
      | None -> () (* lazily uninitialized is fine *)
      | Some d ->
          if
            so_of d <> So.dummy b
            || Link.is_marked (Link.get d.next)
          then ok := false
    done;
    !ok

  let destroy t =
    let rec free_chain n =
      let nxt = Link.target (Link.get n.next) in
      Memdom.Alloc.free t.alloc n.hdr;
      match nxt with Some nx -> free_chain nx | None -> ()
    in
    free_chain (head_of t);
    So.dir_iter t.dir (fun e -> Link.set e Link.Null);
    S.flush t.scheme

  let unreclaimed t = S.unreclaimed t.scheme
  let stats t = S.stats t.scheme
  let flush t = S.flush t.scheme
  let alloc t = t.alloc
  let tuning t = S.tuning t.scheme
  let set_tuning t tn = S.set_tuning t.scheme tn
end
