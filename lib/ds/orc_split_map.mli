(** Split-ordered resizable hash map with OrcGC — automatic twin of
    {!Split_map}; see the implementation header.  {!Make} runs on the
    paper's pass-the-pointer backend ("orc"), {!Make_hp} on the
    hazard-pointer backend ablation ("orc-hp"); both satisfy
    {!Intf.SET} plus the introspection below. *)

val initial_buckets : int

module type MAP = sig
  include Intf.SET

  val restarts : t -> int
  val buckets : t -> int
  val grows : t -> int

  val invariant : t -> bool
  (** Quiesced structural check (see {!Split_map.Make.invariant}). *)

  val tuning : t -> Reclaim.Tuning.t
  val set_tuning : t -> Reclaim.Tuning.t -> unit
end

module Make () : MAP
module Make_hp () : MAP
