(** Split-ordered resizable hash map with OrcGC — the automatic twin
    of {!Split_map}, and the structure where split ordering and OrcGC
    compose best: a resize moves no node, so it flips no hard-link
    count and retires nothing; growing under churn adds {e zero}
    reclamation traffic beyond the inserts and deletes themselves.

    Directory entry links are orc links, so a bucket's dummy is kept
    alive by its entry (count from the directory) plus its list
    predecessor — dummies die only at [destroy], when the entries are
    nulled and the one list cascades.

    The core is a functor over the orc backend so the pass-the-pointer
    instance ({!Make}, scheme "orc") and the hazard-pointer-backend
    ablation ({!Make_hp}, scheme "orc-hp") share every line of map
    logic. *)

open Atomicx
module So = Split_order

let initial_buckets = Split_map.initial_buckets

type node = { key : int; so : int; next : node Link.t; hdr : Memdom.Hdr.t }

module N = struct
  type t = node

  let hdr n = n.hdr
  let iter_links n f = f n.next
end

(** What the twins expose: {!Intf.SET} plus map introspection. *)
module type MAP = sig
  include Intf.SET

  val restarts : t -> int
  val buckets : t -> int
  val grows : t -> int
  val invariant : t -> bool
  val tuning : t -> Reclaim.Tuning.t
  val set_tuning : t -> Reclaim.Tuning.t -> unit
end

(** The orc surface the map needs — satisfied by both
    [Orc_core.Orc.Make (N)] and [Orc_core.Orc_hp.Make (N)]. *)
module type CORE = sig
  type t
  type guard

  module Ptr : sig
    type t

    val view : t -> node Link.view
    val node_exn : t -> node
    val is_marked : t -> bool
    val retag_v : t -> node Link.view -> unit
  end

  val name : string

  val create :
    ?max_hps:int -> ?sink:Obs.Sink.t -> ?arena:node Link.arena ->
    Memdom.Alloc.t -> t

  val with_guard : t -> (guard -> 'a) -> 'a
  val ptr : guard -> Ptr.t
  val load : guard -> node Link.t -> Ptr.t -> unit
  val assign : guard -> Ptr.t -> Ptr.t -> unit
  val alloc_node_into : guard -> Ptr.t -> (Memdom.Hdr.t -> node) -> node
  val new_link : guard -> node Link.state -> node Link.t
  val store : guard -> node Link.t -> node Link.state -> unit
  val store_v : guard -> node Link.t -> node Link.view -> unit

  val cas_v :
    guard -> node Link.t ->
    expected:node Link.view -> desired:node Link.view -> bool

  val v_ptr : t -> node -> node Link.view
  val unreclaimed : t -> int
  val flush : t -> unit
  val tuning : t -> Reclaim.Tuning.t
  val set_tuning : t -> Reclaim.Tuning.t -> unit
end

module Impl (O : CORE) = struct
  type nonrec node = node

  type t = {
    dir : node So.dir;
    entry0 : node Link.t; (* bucket 0's entry, materialized at create *)
    tail : node;
    tail_root : node Link.t;
    buckets_a : int Atomic.t;
    count : int Atomic.t;
    grows : int Atomic.t;
    orc : O.t;
    alloc : Memdom.Alloc.t;
    restarts : int Atomic.t;
    mutable probes : (unit -> int) list; (* keep-alive, see Split_map *)
  }

  let scheme_name = O.name

  let next_of n =
    Memdom.Hdr.check_access n.hdr;
    n.next

  let so_of n =
    Memdom.Hdr.check_access n.hdr;
    n.so

  let key_of n =
    Memdom.Hdr.check_access n.hdr;
    n.key

  let register_metrics t =
    let labels = [ ("map", "split"); ("scheme", O.name) ] in
    let buckets () = Atomic.get t.buckets_a in
    let lf100 () =
      Atomic.get t.count * 100 / max 1 (Atomic.get t.buckets_a)
    in
    let grows () = Atomic.get t.grows in
    let reg = Obs.Metrics.default in
    Obs.Metrics.probe reg ~labels "orcgc_map_buckets" buckets;
    Obs.Metrics.probe reg ~labels "orcgc_map_load_factor" lf100;
    Obs.Metrics.probe reg ~labels ~counter:true "orcgc_map_grows_total" grows;
    [ buckets; lf100; grows ]

  let create ?(mode = Memdom.Alloc.System) () =
    let alloc = Memdom.Alloc.create ~mode "orc_split_map" in
    let arena = Memdom.Handle.arena ~hdr:(fun n -> n.hdr) () in
    let orc = O.create ~arena alloc in
    O.with_guard orc (fun g ->
        let tp = O.ptr g in
        let tail =
          O.alloc_node_into g tp (fun hdr ->
              { key = max_int; so = max_int; next = O.new_link g Link.Null; hdr })
        in
        let hp = O.ptr g in
        let head =
          O.alloc_node_into g hp (fun hdr ->
              { key = 0; so = So.dummy 0; next = O.new_link g (Link.Ptr tail); hdr })
        in
        let dir = So.dir_create () in
        let e0 =
          So.dir_entry dir ~mk_null:(fun () -> O.new_link g Link.Null) 0
        in
        let t =
          {
            dir;
            entry0 = e0;
            tail;
            tail_root = O.new_link g (Link.Ptr tail);
            buckets_a = Atomic.make initial_buckets;
            count = Atomic.make 0;
            grows = Atomic.make 0;
            orc;
            alloc;
            restarts = Atomic.make 0;
            probes = [];
          }
        in
        O.store g e0 (Link.Ptr head);
        t.probes <- register_metrics t;
        t)

  let restarts t = Atomic.get t.restarts
  let buckets t = Atomic.get t.buckets_a
  let grows t = Atomic.get t.grows

  (* Michael window-find from entry [e] by so-key; same handle
     discipline as Orc_michael_list.find. *)
  let rec find_from t g e so ~prev ~curr ~next =
    let prev_link = ref e in
    O.load g !prev_link curr;
    let restart () =
      Atomic.incr t.restarts;
      find_from t g e so ~prev ~curr ~next
    in
    let rec loop () =
      let c = O.Ptr.node_exn curr in
      O.load g (next_of c) next;
      if not (Link.view_eq (Link.view !prev_link) (O.Ptr.view curr)) then
        restart ()
      else if O.Ptr.is_marked next then begin
        let unmarked = Link.v_clean (O.Ptr.view next) in
        if O.cas_v g !prev_link ~expected:(O.Ptr.view curr) ~desired:unmarked
        then begin
          O.assign g curr next;
          O.Ptr.retag_v curr unmarked;
          loop ()
        end
        else restart ()
      end
      else if so_of c >= so then (so_of c = so, !prev_link)
      else begin
        O.assign g prev curr;
        O.assign g curr next;
        prev_link := next_of c;
        loop ()
      end
    in
    loop ()

  (* Lazy recursive bucket initialization: the dummy goes in by a list
     insert anchored at the parent's dummy, then one CAS publishes it
     in the entry (idempotent — the dummy for an so-key is unique).
     The [dnode] handle is reused across levels, so initializing a
     20-deep ancestor chain costs no extra hazard indexes. *)
  let rec get_entry t g b ~prev ~curr ~next ~dnode =
    let e = So.dir_entry t.dir ~mk_null:(fun () -> O.new_link g Link.Null) b in
    if Link.v_is_null (Link.view e) then
      init_bucket t g b e ~prev ~curr ~next ~dnode;
    e

  and init_bucket t g b e ~prev ~curr ~next ~dnode =
    let parent_e = get_entry t g (So.parent b) ~prev ~curr ~next ~dnode in
    let so = So.dummy b in
    let rec loop () =
      let found, prev_link = find_from t g parent_e so ~prev ~curr ~next in
      if found then O.Ptr.node_exn curr
      else begin
        let n =
          O.alloc_node_into g dnode (fun hdr ->
              { key = b; so; next = O.new_link g Link.Null; hdr })
        in
        O.store_v g n.next (O.Ptr.view curr);
        if
          O.cas_v g prev_link ~expected:(O.Ptr.view curr)
            ~desired:(O.v_ptr t.orc n)
        then n
        else begin
          Atomic.incr t.restarts;
          loop ()
        end
      end
    in
    let d = loop () in
    (* d is protected (curr or dnode); publish it in the entry *)
    let ev = Link.view e in
    if Link.v_is_null ev then
      ignore (O.cas_v g e ~expected:ev ~desired:(O.v_ptr t.orc d))

  let check_key key =
    if key < 0 || key > So.max_key then
      invalid_arg "Orc_split_map: key out of range [0, 2^60)"

  let maybe_grow t =
    let size = Atomic.get t.buckets_a in
    if size < So.max_buckets then
      let lf = Reclaim.Tuning.load_factor (O.tuning t.orc) in
      if
        Atomic.get t.count > lf * size
        && Atomic.compare_and_set t.buckets_a size (2 * size)
      then Atomic.incr t.grows

  let contains t key =
    check_key key;
    O.with_guard t.orc (fun g ->
        let prev = O.ptr g
        and curr = O.ptr g
        and next = O.ptr g
        and dnode = O.ptr g in
        let h = So.hash key in
        let e =
          get_entry t g
            (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
            ~prev ~curr ~next ~dnode
        in
        fst (find_from t g e (So.regular h) ~prev ~curr ~next))

  let add t key =
    check_key key;
    let r =
      O.with_guard t.orc @@ fun g ->
      let prev = O.ptr g
      and curr = O.ptr g
      and next = O.ptr g
      and dnode = O.ptr g in
      let h = So.hash key in
      let so = So.regular h in
      let e =
        get_entry t g
          (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
          ~prev ~curr ~next ~dnode
      in
      let node = ref None in
      let rec loop () =
        let found, prev_link = find_from t g e so ~prev ~curr ~next in
        if found then false
        else begin
          let n =
            match !node with
            | Some n -> n
            | None ->
                let n =
                  O.alloc_node_into g dnode (fun hdr ->
                      { key; so; next = O.new_link g Link.Null; hdr })
                in
                node := Some n;
                n
          in
          O.store_v g n.next (O.Ptr.view curr);
          if
            O.cas_v g prev_link ~expected:(O.Ptr.view curr)
              ~desired:(O.v_ptr t.orc n)
          then true
          else begin
            Atomic.incr t.restarts;
            loop ()
          end
        end
      in
      loop ()
    in
    if r then begin
      Atomic.incr t.count;
      maybe_grow t
    end;
    r

  let remove t key =
    check_key key;
    let r =
      O.with_guard t.orc @@ fun g ->
      let prev = O.ptr g
      and curr = O.ptr g
      and next = O.ptr g
      and dnode = O.ptr g in
      let h = So.hash key in
      let so = So.regular h in
      let e =
        get_entry t g
          (So.bucket_of ~hash:h ~size:(Atomic.get t.buckets_a))
          ~prev ~curr ~next ~dnode
      in
      let rec loop () =
        let found, prev_link = find_from t g e so ~prev ~curr ~next in
        if not found then false
        else begin
          let c = O.Ptr.node_exn curr in
          O.load g (next_of c) next;
          if O.Ptr.is_marked next then begin
            Atomic.incr t.restarts;
            loop ()
          end
          else begin
            (* a found node precedes the tail — next has a target *)
            ignore (O.Ptr.node_exn next);
            if
              O.cas_v g (next_of c) ~expected:(O.Ptr.view next)
                ~desired:(Link.v_mark (O.Ptr.view next))
            then begin
              if
                not
                  (O.cas_v g prev_link ~expected:(O.Ptr.view curr)
                     ~desired:(Link.v_clean (O.Ptr.view next)))
              then ignore (find_from t g e so ~prev ~curr ~next);
              true
            end
            else begin
              Atomic.incr t.restarts;
              loop ()
            end
          end
        end
      in
      loop ()
    in
    if r then Atomic.decr t.count;
    r

  let head_of t =
    match Link.target (Link.get t.entry0) with
    | Some h -> h
    | None -> invalid_arg "Orc_split_map: destroyed"

  let to_list t =
    let rec walk acc n =
      match Link.target (Link.get n.next) with
      | None -> List.rev acc
      | Some nx ->
          if nx == t.tail then List.rev acc
          else
            let deleted = Link.is_marked (Link.get nx.next) in
            let acc =
              if deleted || So.is_dummy nx.so then acc else key_of nx :: acc
            in
            walk acc nx
    in
    List.sort compare (walk [] (head_of t))

  let size t = List.length (to_list t)

  let invariant t =
    let ok = ref true in
    let rec walk n prev_so =
      if n != t.tail then begin
        if so_of n <= prev_so then ok := false;
        match Link.target (Link.get n.next) with
        | None -> ok := false
        | Some nx -> walk nx (so_of n)
      end
    in
    walk (head_of t) (-1);
    So.dir_iter t.dir (fun e ->
        match Link.target (Link.get e) with
        | None -> ()
        | Some d ->
            if not (So.is_dummy (so_of d)) || Link.is_marked (Link.get d.next)
            then ok := false);
    !ok

  (* Null every entry and the tail root: each store drops one hard
     link, and the one list cascades from bucket 0's dummy. *)
  let destroy t =
    O.with_guard t.orc (fun g ->
        So.dir_iter t.dir (fun e ->
            if not (Link.v_is_null (Link.view e)) then O.store g e Link.Null);
        O.store g t.tail_root Link.Null)

  let unreclaimed t = O.unreclaimed t.orc
  let flush t = O.flush t.orc
  let alloc t = t.alloc
  let tuning t = O.tuning t.orc
  let set_tuning t tn = O.set_tuning t.orc tn
end

module Make () = Impl (Orc_core.Orc.Make (N))
module Make_hp () = Impl (Orc_core.Orc_hp.Make (N))
