(* See the mli.  The representation invariants live here:

   - hashes use exactly [hash_bits] = 60 bits, so a bit-reversed hash
     shifted left one (for the regular bit) still fits a 62-bit OCaml
     immediate with [max_int] left over for the tail sentinel;
   - the multiplier is odd, so [hash] is a bijection of the 60-bit
     domain and distinct keys get distinct so-keys (comparing so-keys
     alone decides equality during traversal);
   - directory segments are never moved once published, mirroring the
     [Atomicx.Link] slot table: growth is one [Atomic.compare_and_set]
     on the bucket count and lazy segment/bucket initialization. *)

let hash_bits = 60
let hash_mask = (1 lsl hash_bits) - 1
let max_key = hash_mask

(* Fibonacci multiplier (same as the fixed maps), odd => invertible
   mod 2^60. *)
let hash key = key * 0x2545F4914F6CDD1D land hash_mask

(* Bit reversal of the 60-bit domain, byte table composed so no
   intermediate exceeds the 62-bit immediate range: the j-th byte of
   [h] lands reversed at bit 52-8j (the top byte of the would-be
   64-bit reversal is shifted out by the >> 4 folded into each
   term). *)
let rev8 =
  Array.init 256 (fun i ->
      let r = ref 0 in
      for b = 0 to 7 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (7 - b))
      done;
      !r)

let rev60 h =
  let t j = rev8.((h lsr (8 * j)) land 0xff) in
  (t 0 lsl 52) lor (t 1 lsl 44) lor (t 2 lsl 36) lor (t 3 lsl 28)
  lor (t 4 lsl 20) lor (t 5 lsl 12) lor (t 6 lsl 4)
  lor (t 7 lsr 4)

(* So-keys: bit 0 is the regular bit (1 = real key, 0 = bucket dummy),
   bits 1..60 the reversed hash.  A dummy's so-key is a prefix-zero
   reversal of its bucket index, so it sorts before every key the
   bucket will ever hold and after every key of the preceding bucket,
   at every table size — the split-ordering invariant. *)
let regular h = (rev60 h lsl 1) lor 1
let dummy b = rev60 b lsl 1
let is_dummy so = so land 1 = 0
let bucket_of ~hash ~size = hash land (size - 1)

(* Parent bucket: clear the most significant set bit.  The parent's
   dummy is the closest initialized anchor that provably precedes
   bucket [b] in split order. *)
let parent b =
  let rec msb acc v = if v <= 1 then acc else msb (acc + 1) (v lsr 1) in
  b land lnot (1 lsl msb 0 b)

(* Bucket directory: a fixed array of lazily materialized segments.
   Published segments never move, so an entry read never races a
   growth copy — the doubling is just [size := 2 * size]. *)
let seg_bits = 10
let seg_size = 1 lsl seg_bits
let n_segs = 1 lsl seg_bits
let max_buckets = n_segs * seg_size

type 'a dir = { segs : 'a Atomicx.Link.t array option Atomic.t array }

let dir_create () = { segs = Array.init n_segs (fun _ -> Atomic.make None) }

let dir_entry dir ~mk_null b =
  let s = b lsr seg_bits in
  let seg =
    match Atomic.get dir.segs.(s) with
    | Some seg -> seg
    | None ->
        (* losing a materialization race drops an array of null links —
           nothing holds a count, the GC takes it *)
        let fresh = Array.init seg_size (fun _ -> mk_null ()) in
        if Atomic.compare_and_set dir.segs.(s) None (Some fresh) then fresh
        else Option.get (Atomic.get dir.segs.(s))
  in
  seg.(b land (seg_size - 1))

let dir_iter dir f =
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | None -> ()
      | Some seg -> Array.iter f seg)
    dir.segs
