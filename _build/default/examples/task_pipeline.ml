(* task_pipeline: a two-stage processing pipeline over lock-free queues.

     dune exec examples/task_pipeline.exe

   Stage 1 (parsers) feeds an LCRQ (high-throughput, FAA-based — a queue
   the normalized-form automatic schemes cannot even be applied to);
   stage 2 (reducers) drains into the wait-free Kogan-Petrank queue —
   the paper's obstacle-1 structure that *only* OrcGC can reclaim —
   whose results the main domain folds.  Every segment, node and
   operation descriptor allocated along the way is reclaimed
   automatically; the final leak check proves it. *)

open Atomicx

module Stage1 = Ds.Orc_lcrq.Make (struct
  type t = int
end)

module Stage2 = Ds.Orc_kp_queue.Make (struct
  type t = int
end)

let () =
  let q1 = Stage1.create () in
  let q2 = Stage2.create () in
  let items = 8_000 in
  let parsers = 2 and reducers = 2 in
  let parsed = Atomic.make 0 in
  let reduced = Atomic.make 0 in

  let workers =
    List.init (parsers + reducers) (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                if i < parsers then
                  (* stage 1: "parse" = produce a token per input *)
                  for k = 1 to items / parsers do
                    Stage1.enqueue q1 ((i * 1_000_000) + k);
                    ignore (Atomic.fetch_and_add parsed 1)
                  done
                else
                  (* stage 2: transform q1 -> q2 *)
                  let continue_ = ref true in
                  while !continue_ do
                    match Stage1.dequeue q1 with
                    | Some v ->
                        Stage2.enqueue q2 (v land 0xFFFF);
                        ignore (Atomic.fetch_and_add reduced 1)
                    | None ->
                        if
                          Atomic.get parsed >= items
                          && Atomic.get reduced >= items
                        then continue_ := false
                        else Domain.cpu_relax ()
                  done)))
  in
  List.iter Domain.join workers;

  (* fold the results *)
  let sum = ref 0 and count = ref 0 in
  let rec drain () =
    match Stage2.dequeue q2 with
    | Some v ->
        sum := !sum + v;
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Printf.printf "pipeline processed %d items (checksum %d)\n" !count !sum;

  Printf.printf "stage-1 segments allocated: %d, stage-2 nodes+descriptors: %d\n"
    (Memdom.Alloc.allocated (Stage1.alloc q1))
    (Memdom.Alloc.allocated (Stage2.alloc q2));

  Stage1.destroy q1;
  Stage1.flush q1;
  Stage2.destroy q2;
  Stage2.flush q2;
  Printf.printf "after teardown: %d + %d live objects (leak-free)\n"
    (Memdom.Alloc.live (Stage1.alloc q1))
    (Memdom.Alloc.live (Stage2.alloc q2))
