(* Reclamation lab: the same lock-free set under different reclamation
   schemes, side by side.

     dune exec examples/reclamation_lab.exe

   Demonstrates (1) how a data structure is parameterized by a manual
   scheme vs annotated for OrcGC, (2) the memory-bound differences the
   paper's Table 1 formalizes, and (3) that the substrate actually
   catches the bug reclamation schemes exist to prevent: retiring too
   early raises Use_after_free instead of corrupting memory. *)

open Atomicx

module L_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module L_ebr = Ds.Michael_list.Make (Reclaim.Ebr.Make)
module L_ptp = Ds.Michael_list.Make (Orc_core.Ptp.Make)
module L_orc = Ds.Orc_michael_list.Make ()

let churn name add remove unreclaimed live flush =
  let stop = Atomic.make false in
  (* sample the retired-but-unreclaimed population while workers run:
     this is the quantity the paper's Table 1 bounds *)
  let peak = ref 0 in
  let watcher =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let u = unreclaimed () in
          if u > !peak then peak := u;
          Domain.cpu_relax ()
        done)
  in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let rng = Rng.create ((i + 1) * 1337) in
                for _ = 1 to 20_000 do
                  let k = 1 + Rng.int rng 128 in
                  if Rng.bool rng then ignore (add k) else ignore (remove k)
                done)))
  in
  List.iter Domain.join domains;
  Atomic.set stop true;
  Domain.join watcher;
  flush ();
  Printf.printf "  %-8s peak-unreclaimed=%-6d final-live=%d\n" name !peak
    (live ())

let () =
  print_endline "churning 4 domains x 20k add/remove on a 128-key set:";

  let hp = L_hp.create () in
  churn "hp" (L_hp.add hp) (L_hp.remove hp)
    (fun () -> L_hp.unreclaimed hp)
    (fun () -> Memdom.Alloc.live (L_hp.alloc hp))
    (fun () -> L_hp.flush hp);

  let ebr = L_ebr.create () in
  churn "ebr" (L_ebr.add ebr) (L_ebr.remove ebr)
    (fun () -> L_ebr.unreclaimed ebr)
    (fun () -> Memdom.Alloc.live (L_ebr.alloc ebr))
    (fun () -> L_ebr.flush ebr);

  let ptp = L_ptp.create () in
  churn "ptp" (L_ptp.add ptp) (L_ptp.remove ptp)
    (fun () -> L_ptp.unreclaimed ptp)
    (fun () -> Memdom.Alloc.live (L_ptp.alloc ptp))
    (fun () -> L_ptp.flush ptp);

  let orc = L_orc.create () in
  churn "orcgc" (L_orc.add orc) (L_orc.remove orc)
    (fun () -> L_orc.unreclaimed orc)
    (fun () -> Memdom.Alloc.live (L_orc.alloc orc))
    (fun () -> L_orc.flush orc);

  (* Negative control: free-at-retire is exactly the bug schemes prevent,
     and the substrate turns it into an exception instead of silent
     corruption. *)
  print_endline "\nnegative control (Unsafe scheme, frees at retire):";
  let module TN = struct
    type t = { hdr : Memdom.Hdr.t; mutable v : int }

    let hdr n = n.hdr
  end in
  let module Unsafe = Reclaim.None_scheme.Unsafe (TN) in
  let alloc = Memdom.Alloc.create "lab" in
  let s = Unsafe.create alloc in
  let tid = Registry.tid () in
  let n = { TN.hdr = Memdom.Alloc.hdr alloc (); v = 42 } in
  let link = Link.make (Link.Ptr n) in
  ignore (Unsafe.get_protected s ~tid ~idx:0 link);
  Unsafe.retire s ~tid n (* frees immediately, despite the protection *);
  (try
     Memdom.Hdr.check_access n.TN.hdr;
     print_endline "  !!! use-after-free went undetected"
   with Memdom.Hdr.Use_after_free what ->
     Printf.printf "  caught Use_after_free(%s), as intended\n" what)
