(* kv_index: a concurrent ordered index built on the paper's CRF skip
   list, compared against the classic HS skip list it improves on.

     dune exec examples/kv_index.exe

   Scenario from the paper's §5: a long-running service whose index sees
   continuous insert/delete churn while readers scan.  With HS-skip a
   single slow reader can pin an arbitrarily long chain of removed nodes
   (the authors measured 19 GB); CRF-skip isolates removed nodes, so the
   same slow reader pins O(1) memory. *)

open Atomicx

module Hs = Ds.Orc_hs_skiplist.Make ()
module Crf = Ds.Orc_crf_skiplist.Make ()

let run_service name ~add ~remove ~contains ~live ~flush ~destroy =
  (* populate the index *)
  let n = 4_000 in
  let rng = Rng.create 7 in
  for _ = 1 to n do
    ignore (add (1 + Rng.int rng 100_000))
  done;

  (* mixed service traffic: 2 writers, 2 readers *)
  let stop = Atomic.make false in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun _ ->
                let rng = Rng.create ((i + 1) * 39916801) in
                let ops = ref 0 in
                while not (Atomic.get stop) do
                  let k = 1 + Rng.int rng 100_000 in
                  if i < 2 then
                    if Rng.bool rng then ignore (add k) else ignore (remove k)
                  else ignore (contains k);
                  incr ops
                done;
                !ops)))
  in
  Thread.delay 0.3;
  Atomic.set stop true;
  let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  flush ();
  Printf.printf "  %-8s %7d ops, %6d objects live after churn\n" name total
    (live ());
  destroy ();
  flush ()

let () =
  print_endline "ordered index under mixed service traffic:";
  let hs = Hs.create () in
  run_service "hs-skip" ~add:(Hs.add hs) ~remove:(Hs.remove hs)
    ~contains:(Hs.contains hs)
    ~live:(fun () -> Memdom.Alloc.live (Hs.alloc hs))
    ~flush:(fun () -> Hs.flush hs)
    ~destroy:(fun () -> Hs.destroy hs);
  let crf = Crf.create () in
  run_service "crf-skip" ~add:(Crf.add crf) ~remove:(Crf.remove crf)
    ~contains:(Crf.contains crf)
    ~live:(fun () -> Memdom.Alloc.live (Crf.alloc crf))
    ~flush:(fun () -> Crf.flush crf)
    ~destroy:(fun () -> Crf.destroy crf);

  (* The stalled-reader scenario, deterministically (cf. bench "mem"). *)
  print_endline "\nstalled reader pinning the head of a removed chain:";
  let rows = Harness.Experiments.mem_footprint
      { Harness.Experiments.default with big_keys = 4_000; duration = 0.05 }
  in
  List.iter
    (fun m ->
      Printf.printf "  %-8s pinned-chain live=%-6d after-unpin=%d\n"
        m.Harness.Experiments.m_structure m.m_pinned_live m.m_pinned_after)
    rows
