examples/quickstart.ml: Atomic Atomicx Domain Ds List Memdom Printf
