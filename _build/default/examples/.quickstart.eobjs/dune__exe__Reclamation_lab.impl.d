examples/reclamation_lab.ml: Atomic Atomicx Domain Ds Link List Memdom Orc_core Printf Reclaim Registry Rng
