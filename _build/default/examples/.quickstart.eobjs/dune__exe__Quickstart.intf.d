examples/quickstart.mli:
