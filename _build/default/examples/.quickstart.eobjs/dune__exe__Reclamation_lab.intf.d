examples/reclamation_lab.mli:
