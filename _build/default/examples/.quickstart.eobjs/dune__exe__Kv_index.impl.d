examples/kv_index.ml: Atomic Atomicx Domain Ds Harness List Memdom Printf Registry Rng Thread
