examples/task_pipeline.mli:
