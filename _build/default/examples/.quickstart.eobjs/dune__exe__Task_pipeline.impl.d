examples/task_pipeline.ml: Atomic Atomicx Domain Ds List Memdom Printf Registry
