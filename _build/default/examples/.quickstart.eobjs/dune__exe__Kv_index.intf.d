examples/kv_index.mli:
