(* Quickstart: a Michael-Scott queue with fully automatic lock-free
   reclamation.

     dune exec examples/quickstart.exe

   The point to notice: the queue code (lib/ds/orc_ms_queue.ml) contains
   no retire or free call anywhere — OrcGC's reference counts detect when
   a dequeued sentinel becomes unreachable and reclaim it once no thread
   protects it.  The explicit-lifecycle substrate lets us *prove* it at
   the end: after dropping the queue's roots, zero objects remain. *)

module Queue = Ds.Orc_ms_queue.Make (struct
  type t = string
end)

let () =
  let q = Queue.create () in

  (* Single-threaded warm-up. *)
  Queue.enqueue q "hello";
  Queue.enqueue q "lock-free";
  Queue.enqueue q "world";
  (match Queue.dequeue q with
  | Some s -> Printf.printf "dequeued %S\n" s
  | None -> assert false);

  (* Four producers and four consumers, real domains. *)
  let producers = 4 and consumers = 4 in
  let per_producer = 5_000 in
  let total = producers * per_producer in
  let received = Atomic.make 0 in
  let domains =
    List.init (producers + consumers) (fun i ->
        Domain.spawn (fun () ->
            Atomicx.Registry.with_tid (fun _tid ->
                if i < producers then
                  for k = 1 to per_producer do
                    Queue.enqueue q (Printf.sprintf "msg-%d-%d" i k)
                  done
                else
                  while Atomic.get received < total do
                    match Queue.dequeue q with
                    | Some _ -> ignore (Atomic.fetch_and_add received 1)
                    | None -> Domain.cpu_relax ()
                  done)))
  in
  List.iter Domain.join domains;
  Printf.printf "passed %d messages through the queue\n" total;

  (* While running, nodes were allocated and reclaimed continuously: *)
  Printf.printf "allocated %d nodes, %d still live (the sentinel + leftovers)\n"
    (Memdom.Alloc.allocated (Queue.alloc q))
    (Memdom.Alloc.live (Queue.alloc q));

  (* Drop the roots: OrcGC cascades through whatever remains. *)
  Queue.destroy q;
  Queue.flush q;
  Printf.printf "after destroy: %d live objects (leak-free)\n"
    (Memdom.Alloc.live (Queue.alloc q))
