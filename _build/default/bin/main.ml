(* orcgc-bench: run individual paper experiments with tunable parameters.

     orcgc-bench fig1 --threads 1,2,4,8 --duration 1.0
     orcgc-bench fig7 --big-keys 1000000 --csv results.csv
     orcgc-bench all

   See DESIGN.md §3 for the experiment index. *)

open Cmdliner

let print_mix_tables title tables =
  List.iter
    (fun (mix, series) ->
      Harness.Report.print_table ~title:(title ^ " / " ^ mix) series)
    tables

let run_experiment name (p : Harness.Experiments.params) =
  let open Harness in
  match name with
  | "fig1" | "fig2" ->
      let s = Experiments.fig1_queues p in
      Report.print_table ~title:"Fig 1/2: queues, enq/deq pairs" s;
      Report.print_table ~title:"Fig 1/2 normalized (vs ms-hp)"
        ~unit_label:"x vs ms-hp"
        (Report.normalize ~base_label:"ms-hp" s)
  | "fig3" | "fig4" ->
      print_mix_tables "Fig 3/4: Michael-Harris list, schemes"
        (Experiments.fig3_list_schemes p)
  | "fig5" | "fig6" ->
      print_mix_tables "Fig 5/6: lists with OrcGC"
        (Experiments.fig5_orc_lists p)
  | "fig7" | "fig8" ->
      print_mix_tables "Fig 7/8: tree and skip lists"
        (Experiments.fig7_trees p)
  | "table1" | "bounds" ->
      Format.printf "@.== Table 1 (measured): peak unreclaimed objects ==@.";
      Format.printf "  %-10s %8s %6s %16s %12s %12s@." "scheme" "threads" "H"
        "peak-unreclaimed" "bound" "bound-value";
      List.iter
        (fun r ->
          Format.printf "  %-10s %8d %6d %16d %12s %12s@."
            r.Experiments.b_scheme r.b_threads r.b_hps r.b_max_unreclaimed
            r.b_bound
            (if r.b_bound_value < 0 then "-"
             else string_of_int r.b_bound_value))
        (Experiments.table1_bounds p)
  | "mem" ->
      Format.printf "@.== Memory footprint: HS-skip vs CRF-skip ==@.";
      Format.printf "  %-12s %12s %12s %12s %14s %14s@." "structure"
        "peak-live" "final-live" "~reachable" "pinned-chain" "after-unpin";
      List.iter
        (fun m ->
          Format.printf "  %-12s %12d %12d %12d %14d %14d@."
            m.Experiments.m_structure m.m_peak_live m.m_final_live
            m.m_reachable m.m_pinned_live m.m_pinned_after)
        (Experiments.mem_footprint p)
  | "hashmap" ->
      Report.print_table ~title:"Extension: Michael hash table (write-heavy)"
        (Experiments.ext_hashmap p)
  | "ablation" ->
      Report.print_table ~title:"Ablation: PTP publish instruction"
        (Experiments.ablation_publish p);
      Format.printf "@.== Ablation: OrcGC protection backend ==@.";
      List.iter
        (fun r ->
          Format.printf "  %-10s %8.3f Mops/s   peak-unreclaimed=%d@."
            r.Experiments.k_backend r.k_mops r.k_peak_unreclaimed)
        (Experiments.ablation_backend p);
      Format.printf "@.== Ablation: handover drain on clear ==@.";
      List.iter
        (fun (label, residual) ->
          Format.printf "  %-24s residual unreclaimed = %d@." label residual)
        (Experiments.ablation_clear_handover p)
  | other -> Format.printf "unknown experiment %S@." other

let all_experiments =
  [ "fig1"; "fig3"; "fig5"; "fig7"; "table1"; "mem"; "ablation"; "hashmap" ]

let exp_arg =
  let doc =
    "Experiment to run: fig1/fig2 (queues), fig3/fig4 (list x schemes), \
     fig5/fig6 (OrcGC lists), fig7/fig8 (tree and skip lists), table1 \
     (memory bounds), mem (footprint), ablation, or all."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts to sweep." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads"; "t" ] ~doc)

let duration_arg =
  let doc = "Seconds per data point." in
  Arg.(value & opt float 0.5 & info [ "duration"; "d" ] ~doc)

let list_keys_arg =
  let doc = "Key range for the linked-list sets (paper: 1000)." in
  Arg.(value & opt int 1_000 & info [ "list-keys" ] ~doc)

let big_keys_arg =
  let doc = "Key range for tree/skip-list sets (paper: 1000000)." in
  Arg.(value & opt int 100_000 & info [ "big-keys" ] ~doc)

let csv_arg =
  let doc = "Append results as CSV rows to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let main exp threads duration list_keys big_keys csv =
  let p =
    { Harness.Experiments.threads; duration; list_keys; big_keys; csv }
  in
  Format.printf "orcgc-bench: %s (threads=%s, %.2fs/point)@." exp
    (String.concat "," (List.map string_of_int threads))
    duration;
  if exp = "all" then List.iter (fun e -> run_experiment e p) all_experiments
  else run_experiment exp p

let cmd =
  let doc = "Reproduce the OrcGC paper's evaluation (PPoPP '21)" in
  let info = Cmd.info "orcgc-bench" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const main $ exp_arg $ threads_arg $ duration_arg $ list_keys_arg
      $ big_keys_arg $ csv_arg)

let () = exit (Cmd.eval cmd)
