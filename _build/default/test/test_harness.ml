(* Tests for the benchmark harness itself: workload mixes, the report
   formatter, the throughput runner, and smoke runs of each experiment
   generator (tiny parameters — correctness of plumbing, not numbers). *)

open Util

let test_mix_percentages () =
  let open Harness.Workload in
  let rng = Atomicx.Rng.create 11 in
  let n = 20_000 in
  let count mix =
    let a = ref 0 and r = ref 0 and l = ref 0 in
    for _ = 1 to n do
      match pick rng mix with
      | Add -> incr a
      | Remove -> incr r
      | Lookup -> incr l
    done;
    (!a, !r, !l)
  in
  let a, r, l = count write_heavy in
  check_int "write-heavy has no lookups" 0 l;
  check_bool "write-heavy balanced" true (abs (a - r) < n / 10);
  let a, r, l = count read_mostly in
  check_bool "read-mostly ~90% lookups" true
    (l > 8 * n / 10 && a < n / 10 && r < n / 10);
  let a, r, l = count read_only in
  check_int "read-only adds" 0 a;
  check_int "read-only removes" 0 r;
  check_int "read-only lookups" n l

let test_mix_labels () =
  check_int "three standard mixes" 3
    (List.length Harness.Workload.standard_mixes);
  let buf = Buffer.create 16 in
  Format.fprintf
    (Format.formatter_of_buffer buf)
    "%a@?" Harness.Workload.pp_mix Harness.Workload.read_mostly;
  check_bool "mix pretty-printer" true (Buffer.contents buf = "5i-5r-90l")

let test_report_normalize () =
  let open Harness.Report in
  let base = { label = "base"; points = [ (1, 2.0); (2, 4.0) ] } in
  let other = { label = "other"; points = [ (1, 4.0); (2, 2.0) ] } in
  match normalize ~base_label:"base" [ base; other ] with
  | [ b; o ] ->
      check_bool "base normalizes to 1" true (b.points = [ (1, 1.0); (2, 1.0) ]);
      check_bool "other scaled" true (o.points = [ (1, 2.0); (2, 0.5) ])
  | _ -> Alcotest.fail "series count changed"

let test_report_table_renders () =
  let open Harness.Report in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  print_table ~title:"t" ~out:fmt
    [ { label = "a"; points = [ (1, 1.5) ] };
      { label = "b"; points = [ (2, 2.5) ] } ];
  let s = Buffer.contents buf in
  check_bool "mentions labels" true
    (String.length s > 0
    && String.index_opt s 'a' <> None
    && String.index_opt s 'b' <> None)

let test_report_csv () =
  let path = Filename.temp_file "orcgc" ".csv" in
  Sys.remove path;
  Harness.Report.to_csv ~path ~title:"x"
    [ { Harness.Report.label = "s"; points = [ (1, 0.5) ] } ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  check_bool "csv header" true (l1 = "# x");
  check_bool "csv row" true (l2 = "s,1,0.500000")

let test_runner_counts_and_stops () =
  let r =
    Harness.Runner.run ~threads:3 ~duration:0.05
      ~worker:(fun ~i:_ ~tid:_ ~stop ->
        let n = ref 0 in
        while not (stop ()) do
          incr n
        done;
        !n)
      ()
  in
  check_int "threads recorded" 3 r.Harness.Runner.threads;
  check_bool "did some work" true (r.total_ops > 0);
  check_bool "elapsed close to requested" true
    (r.elapsed >= 0.04 && r.elapsed < 2.0);
  check_bool "mops consistent" true
    (abs_float (r.mops -. (float_of_int r.total_ops /. r.elapsed /. 1e6))
    < 1e-9)

let test_runner_sampler_runs () =
  let samples = ref 0 in
  let _ =
    Harness.Runner.run ~threads:1 ~duration:0.12 ~sample_every:0.02
      ~sampler:(fun () -> incr samples)
      ~worker:(fun ~i:_ ~tid:_ ~stop ->
        while not (stop ()) do
          Domain.cpu_relax ()
        done;
        0)
      ()
  in
  check_bool "sampler invoked repeatedly" true (!samples >= 3)

let tiny =
  {
    Harness.Experiments.threads = [ 1; 2 ];
    duration = 0.03;
    list_keys = 64;
    big_keys = 256;
    csv = None;
  }

let test_fig1_smoke () =
  let series = Harness.Experiments.fig1_queues tiny in
  check_bool "all queue series present" true (List.length series >= 10);
  List.iter
    (fun s ->
      check_int
        ("points for " ^ s.Harness.Report.label)
        2
        (List.length s.points);
      List.iter (fun (_, v) -> check_bool "positive" true (v > 0.0)) s.points)
    series

let test_fig3_smoke () =
  let tables = Harness.Experiments.fig3_list_schemes tiny in
  check_int "three mixes" 3 (List.length tables);
  List.iter
    (fun (_, series) -> check_bool "schemes present" true (List.length series >= 7))
    tables

let test_table1_smoke () =
  let rows = Harness.Experiments.table1_bounds tiny in
  List.iter
    (fun r ->
      let open Harness.Experiments in
      if r.b_bound_value >= 0 then
        check_bool
          (r.b_scheme ^ " within its bound")
          true
          (r.b_max_unreclaimed <= r.b_bound_value))
    rows;
  (* the linear-bound schemes must beat the quadratic ones *)
  let find n = List.find (fun r -> r.Harness.Experiments.b_scheme = n) rows in
  check_bool "ptp well under quadratic slack" true
    ((find "ptp").b_max_unreclaimed
    <= (find "leak").b_max_unreclaimed)

let test_mem_smoke () =
  let rows = Harness.Experiments.mem_footprint tiny in
  match rows with
  | [ hs; crf ] ->
      let open Harness.Experiments in
      check_bool "hs pins the removed chain" true
        (hs.m_pinned_live > 10 * crf.m_pinned_live);
      check_bool "both collapse after unpin" true
        (hs.m_pinned_after <= 4 && crf.m_pinned_after <= 4)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_smoke () =
  let series = Harness.Experiments.ablation_publish tiny in
  check_int "two publication modes" 2 (List.length series);
  check_bool "knob restored" true
    (not !Orc_core.Ptp.publish_with_exchange);
  let rows = Harness.Experiments.ablation_clear_handover tiny in
  check_int "two drain modes" 2 (List.length rows);
  check_bool "knob restored" true !Orc_core.Ptp.clear_handover

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "workload mix percentages" `Quick
          test_mix_percentages;
        Alcotest.test_case "mix labels" `Quick test_mix_labels;
        Alcotest.test_case "report normalize" `Quick test_report_normalize;
        Alcotest.test_case "report table renders" `Quick
          test_report_table_renders;
        Alcotest.test_case "report csv" `Quick test_report_csv;
        Alcotest.test_case "runner counts and stops" `Quick
          test_runner_counts_and_stops;
        Alcotest.test_case "runner sampler" `Quick test_runner_sampler_runs;
        Alcotest.test_case "fig1 smoke" `Slow test_fig1_smoke;
        Alcotest.test_case "fig3 smoke" `Slow test_fig3_smoke;
        Alcotest.test_case "table1 smoke" `Slow test_table1_smoke;
        Alcotest.test_case "mem footprint smoke" `Slow test_mem_smoke;
        Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
      ] );
  ]
