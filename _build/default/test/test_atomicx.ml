(* Unit and property tests for the atomic-utilities substrate. *)

open Util
open Atomicx

let test_backoff_monotone () =
  let b = Backoff.create ~min:1 ~max:8 () in
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b;
  check_bool "usable after reset" true true

let test_backoff_invalid () =
  Alcotest.check_raises "min<1" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Backoff.create ~min:0 ()));
  Alcotest.check_raises "max<min" (Invalid_argument "Backoff.create")
    (fun () -> ignore (Backoff.create ~min:10 ~max:2 ()))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 c) in
  check_bool "split stream differs" true (xs <> ys)

let prop_rng_int_in_bounds =
  qtest "Rng.int stays in bounds"
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      0 <= v && v < bound)

let prop_rng_float_in_unit =
  qtest "Rng.float in [0,1)" QCheck2.Gen.int (fun seed ->
      let r = Rng.create seed in
      let f = Rng.float r in
      0.0 <= f && f < 1.0)

let test_registry_distinct_tids () =
  let tids = run_domains 8 (fun ~i:_ ~tid -> tid) in
  let uniq = List.sort_uniq compare tids in
  check_int "distinct tids" 8 (List.length uniq);
  List.iter
    (fun tid ->
      check_bool "in range" true (tid >= 0 && tid < Registry.max_threads))
    tids

let test_registry_reuse_after_release () =
  let round () = List.sort compare (run_domains 4 (fun ~i:_ ~tid -> tid)) in
  let r1 = round () in
  let r2 = round () in
  (* with_tid releases slots, so a second wave reuses the same pool *)
  check_bool "slots recycled" true (r1 = r2)

let test_registry_stable_within_domain () =
  run_domains_exn 2 (fun ~i:_ ~tid ->
      for _ = 1 to 10 do
        check_int "stable" tid (Registry.tid ())
      done)

let test_barrier_aligns () =
  let n = 6 in
  let counter = Atomic.make 0 in
  let b = Barrier.create n in
  let seen =
    run_domains n (fun ~i:_ ~tid:_ ->
        ignore (Atomic.fetch_and_add counter 1);
        Barrier.wait b;
        (* after the barrier, every arrival increment must be visible *)
        Atomic.get counter)
  in
  List.iter (fun c -> check_int "all arrived" n c) seen

let test_barrier_reusable () =
  let n = 4 in
  let b = Barrier.create n in
  run_domains_exn n (fun ~i:_ ~tid:_ ->
      for _ = 1 to 100 do
        Barrier.wait b
      done)

let test_link_basics () =
  let l = Link.make Link.Null in
  check_bool "null" true (Link.get l = Link.Null);
  let n = ref 1 in
  Link.set l (Link.Ptr n);
  (match Link.target (Link.get l) with
  | Some x -> check_bool "target" true (x == n)
  | None -> Alcotest.fail "no target");
  check_bool "not marked" false (Link.is_marked (Link.get l));
  Link.set l (Link.Mark n);
  check_bool "marked" true (Link.is_marked (Link.get l));
  check_bool "poison" true (Link.is_poison Link.Poison)

let test_link_cas_physical () =
  let n = ref 1 in
  let l = Link.make (Link.Ptr n) in
  let seen = Link.get l in
  (* CAS against a *fresh* box with equal content must fail... *)
  check_bool "fresh box fails" false (Link.cas l (Link.Ptr n) (Link.Null));
  (* ...while CAS against the loaded box succeeds. *)
  check_bool "loaded box succeeds" true (Link.cas l seen Link.Null);
  check_bool "null now" true (Link.get l = Link.Null)

let test_link_same () =
  let n = ref 1 and m = ref 2 in
  check_bool "null=null" true (Link.same Link.Null Link.Null);
  check_bool "ptr same target" true (Link.same (Link.Ptr n) (Link.Ptr n));
  check_bool "ptr diff target" false (Link.same (Link.Ptr n) (Link.Ptr m));
  check_bool "ptr vs mark" false (Link.same (Link.Ptr n) (Link.Mark n));
  check_bool "poison" true (Link.same Link.Poison Link.Poison)

let test_link_exchange () =
  let n = ref 1 in
  let l = Link.make (Link.Ptr n) in
  let old = Link.exchange l Link.Poison in
  check_bool "old returned" true (Link.same old (Link.Ptr n));
  check_bool "new visible" true (Link.is_poison (Link.get l))

let test_link_cas_parallel_single_winner () =
  (* n domains CAS the same expected box: exactly one must win. *)
  let v = ref 0 in
  let l = Link.make (Link.Ptr v) in
  let seen = Link.get l in
  let winners =
    run_domains 6 (fun ~i ~tid:_ ->
        if Link.cas l seen (Link.Mark (ref i)) then 1 else 0)
  in
  check_int "single winner" 1 (List.fold_left ( + ) 0 winners)

let suite =
  [
    ( "atomicx",
      [
        Alcotest.test_case "backoff monotone+reset" `Quick test_backoff_monotone;
        Alcotest.test_case "backoff rejects bad args" `Quick test_backoff_invalid;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng split independent" `Quick
          test_rng_split_independent;
        prop_rng_int_in_bounds;
        prop_rng_float_in_unit;
        Alcotest.test_case "registry distinct tids" `Quick
          test_registry_distinct_tids;
        Alcotest.test_case "registry reuses released slots" `Quick
          test_registry_reuse_after_release;
        Alcotest.test_case "registry stable within domain" `Quick
          test_registry_stable_within_domain;
        Alcotest.test_case "barrier aligns" `Quick test_barrier_aligns;
        Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
        Alcotest.test_case "link basics" `Quick test_link_basics;
        Alcotest.test_case "link CAS is physical" `Quick test_link_cas_physical;
        Alcotest.test_case "link same" `Quick test_link_same;
        Alcotest.test_case "link exchange" `Quick test_link_exchange;
        Alcotest.test_case "link CAS single winner" `Quick
          test_link_cas_parallel_single_winner;
      ] );
  ]
