(* Natarajan-Mittal BST tests: the shared set battery over the manual
   variants (HP, PTB, HE, PTP) and the OrcGC variant, plus tree-specific
   checks on the flag/tag cleanup machinery. *)

open Util
open Set_battery

module T_hp = Ds.Nm_tree.Make (Reclaim.Hp.Make)
module T_he = Ds.Nm_tree.Make (Reclaim.He.Make)
module T_ptp = Ds.Nm_tree.Make (Orc_core.Ptp.Make)
module T_ebr = Ds.Nm_tree.Make (Reclaim.Ebr.Make)
module T_orc = Ds.Orc_nm_tree.Make ()

module B_hp = Battery (struct let name = "nmtree-hp" end) (T_hp)
module B_he = Battery (struct let name = "nmtree-he" end) (T_he)
module B_ptp = Battery (struct let name = "nmtree-ptp" end) (T_ptp)
module B_ebr = Battery (struct let name = "nmtree-ebr" end) (T_ebr)
module B_orc = Battery (struct let name = "nmtree-orc" end) (T_orc)

(* A larger sequential workload shapes the tree deeper than the battery's
   small key ranges do: exercises multi-level seeks and cleanups. *)
let test_large_sequential () =
  let t = T_orc.create () in
  let n = 2_000 in
  let keys = Array.init n (fun i -> (i * 7919) mod 104729) in
  let model = ref IntSet.empty in
  Array.iter
    (fun k ->
      model := IntSet.add k !model;
      ignore (T_orc.add t k))
    keys;
  check_bool "all inserted, in order" true
    (T_orc.to_list t = IntSet.elements !model);
  Array.iteri
    (fun i k ->
      if i land 1 = 0 then begin
        model := IntSet.remove k !model;
        ignore (T_orc.remove t k)
      end)
    keys;
  check_bool "after removals" true (T_orc.to_list t = IntSet.elements !model);
  T_orc.destroy t;
  T_orc.flush t;
  check_int "no leak" 0 (Memdom.Alloc.live (T_orc.alloc t))

(* Deleting interior keys in an adversarial order forces cleanup paths
   where ancestor != grandparent. *)
let test_delete_all () =
  let t = T_hp.create () in
  let keys = List.init 200 (fun i -> i) in
  List.iter (fun k -> ignore (T_hp.add t k)) keys;
  check_int "size" 200 (T_hp.size t);
  (* remove in an inside-out order *)
  let order = List.sort (fun a b -> compare (a mod 7, a) (b mod 7, b)) keys in
  List.iter (fun k -> check_bool "removed" true (T_hp.remove t k)) order;
  check_int "empty" 0 (T_hp.size t);
  T_hp.destroy t;
  T_hp.flush t;
  check_int "no leak" 0 (Memdom.Alloc.live (T_hp.alloc t))

let suite =
  [
    ("tree:nm-hp", B_hp.cases);
    ("tree:nm-he", B_he.cases);
    ("tree:nm-ebr", B_ebr.cases);
    ("tree:nm-ptp", B_ptp.cases);
    ("tree:nm-orc", B_orc.cases);
    ( "tree:nm-specific",
      [
        Alcotest.test_case "large sequential build/teardown" `Slow
          test_large_sequential;
        Alcotest.test_case "delete-all with deep cleanups" `Quick
          test_delete_all;
      ] );
  ]
