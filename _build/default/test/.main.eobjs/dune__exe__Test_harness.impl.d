test/test_harness.ml: Alcotest Atomicx Buffer Domain Filename Format Harness List Orc_core String Sys Util
