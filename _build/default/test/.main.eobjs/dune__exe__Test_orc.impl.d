test/test_orc.ml: Alcotest Array Atomic Atomicx Domain Link List Memdom Option Orc_core QCheck2 Rng Util
