test/util.ml: Alcotest Atomicx Barrier Domain List QCheck2 QCheck_alcotest Registry
