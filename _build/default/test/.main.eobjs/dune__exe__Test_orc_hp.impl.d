test/test_orc_hp.ml: Alcotest Array Atomicx Link Memdom Orc_core Rng Util
