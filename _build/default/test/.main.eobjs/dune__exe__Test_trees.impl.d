test/test_trees.ml: Alcotest Array Battery Ds IntSet List Memdom Orc_core Reclaim Set_battery Util
