test/test_queues.ml: Alcotest Atomic Domain Ds List Memdom Orc_core Printf QCheck2 Queue Reclaim Util
