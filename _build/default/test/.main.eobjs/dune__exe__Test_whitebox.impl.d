test/test_whitebox.ml: Alcotest Atomicx Link List Memdom Orc_core QCheck2 Util
