test/test_reclaim.ml: Alcotest Array Atomic Atomicx Domain Link Memdom Orc_core Printf Reclaim Registry Rng Util
