test/set_battery.ml: Alcotest Atomic Atomicx Domain Int List Memdom Printf QCheck2 Set Util
