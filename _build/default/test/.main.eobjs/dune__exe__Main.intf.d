test/main.mli:
