test/test_lists.ml: Alcotest Battery Ds Memdom Orc_core Reclaim Set_battery Util
