test/test_memdom.ml: Alcotest List Memdom Util
