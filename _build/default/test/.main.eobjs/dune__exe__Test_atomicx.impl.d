test/test_atomicx.ml: Alcotest Atomic Atomicx Backoff Barrier Link List QCheck2 Registry Rng Util
