test/test_extras.ml: Alcotest Array Atomic Atomicx Buffer Domain Ds Format Link List Memdom Orc_core Padded Printf QCheck2 Reclaim Rng String Util
