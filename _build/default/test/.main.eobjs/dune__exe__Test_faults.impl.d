test/test_faults.ml: Alcotest Atomic Atomicx Domain Ds Link List Memdom Orc_core Printf Reclaim Rng Util
