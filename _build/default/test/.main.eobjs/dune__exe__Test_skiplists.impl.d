test/test_skiplists.ml: Alcotest Atomicx Battery Ds List Memdom Set_battery Util
