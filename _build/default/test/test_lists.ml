(* Linked-list set tests, generic over implementation and scheme.  The
   same battery runs over: Michael's list under every manual scheme, and
   the OrcGC versions of Michael, Harris (original!), and Herlihy-Shavit
   (wait-free lookups) — the latter two being the structures for which no
   manual scheme is applicable (paper §2, obstacles 1-3). *)

open Util

open Set_battery

module M_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module M_ptb = Ds.Michael_list.Make (Reclaim.Ptb.Make)
module M_ebr = Ds.Michael_list.Make (Reclaim.Ebr.Make)
module M_he = Ds.Michael_list.Make (Reclaim.He.Make)
module M_ibr = Ds.Michael_list.Make (Reclaim.Ibr.Make)
module M_ptp = Ds.Michael_list.Make (Orc_core.Ptp.Make)
module M_orc = Ds.Orc_michael_list.Make ()
module Harris_orc = Ds.Orc_harris_list.Make ()
module Hs_orc = Ds.Orc_hs_list.Make ()
module Tbkp_orc = Ds.Orc_tbkp_list.Make ()
module Hm_hp = Ds.Hash_map.Make (Reclaim.Hp.Make)
module Hm_ptp = Ds.Hash_map.Make (Orc_core.Ptp.Make)
module Hm_orc = Ds.Orc_hash_map.Make ()

module B_m_hp = Battery (struct let name = "michael-hp" end) (M_hp)
module B_m_ptb = Battery (struct let name = "michael-ptb" end) (M_ptb)
module B_m_ebr = Battery (struct let name = "michael-ebr" end) (M_ebr)
module B_m_he = Battery (struct let name = "michael-he" end) (M_he)
module B_m_ibr = Battery (struct let name = "michael-ibr" end) (M_ibr)
module B_m_ptp = Battery (struct let name = "michael-ptp" end) (M_ptp)
module B_m_orc = Battery (struct let name = "michael-orc" end) (M_orc)
module B_harris = Battery (struct let name = "harris-orc" end) (Harris_orc)
module B_hs = Battery (struct let name = "hs-orc" end) (Hs_orc)
module B_tbkp = Battery (struct let name = "tbkp-orc" end) (Tbkp_orc)
module B_hm_hp = Battery (struct let name = "hashmap-hp" end) (Hm_hp)
module B_hm_ptp = Battery (struct let name = "hashmap-ptp" end) (Hm_ptp)
module B_hm_orc = Battery (struct let name = "hashmap-orc" end) (Hm_orc)

(* HS-specific: lookups through logically deleted nodes must still be
   answered (and raise nothing) while a writer removes the key. *)
let test_hs_lookup_during_removal () =
  let s = Hs_orc.create () in
  for k = 1 to 50 do
    ignore (Hs_orc.add s k)
  done;
  run_domains_exn 2 (fun ~i ~tid:_ ->
      if i = 0 then
        for k = 1 to 50 do
          ignore (Hs_orc.remove s k);
          ignore (Hs_orc.add s k)
        done
      else
        for _ = 1 to 20 do
          for k = 1 to 50 do
            ignore (Hs_orc.contains s k)
          done
        done);
  Hs_orc.destroy s;
  Hs_orc.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Hs_orc.alloc s))

let suite =
  [
    ("list:michael-hp", B_m_hp.cases);
    ("list:michael-ptb", B_m_ptb.cases);
    ("list:michael-ebr", B_m_ebr.cases);
    ("list:michael-he", B_m_he.cases);
    ("list:michael-ibr", B_m_ibr.cases);
    ("list:michael-ptp", B_m_ptp.cases);
    ("list:michael-orc", B_m_orc.cases);
    ("list:harris-orc", B_harris.cases);
    ("list:hs-orc", B_hs.cases);
    ("list:tbkp-orc", B_tbkp.cases);
    ("hashmap:hp", B_hm_hp.cases);
    ("hashmap:ptp", B_hm_ptp.cases);
    ("hashmap:orc", B_hm_orc.cases);
    ( "list:hs-specific",
      [
        Alcotest.test_case "wait-free lookup during removal" `Slow
          test_hs_lookup_during_removal;
      ] );
  ]
