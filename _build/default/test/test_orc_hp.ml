(* The HP-backed OrcGC variant must satisfy the same automatic-
   reclamation contract as the PTP-backed one (paper §4: the backend is
   pluggable); only the memory bound differs. *)

open Util
open Atomicx

type onode = { hdr : Memdom.Hdr.t; value : int; next : onode Link.t }

module O = Orc_core.Orc_hp.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let fresh () =
  let alloc = Memdom.Alloc.create "orc-hp-test" in
  (alloc, O.create alloc)

let mk v hdr = { hdr; value = v; next = Link.make Link.Null }

let read_value n =
  Memdom.Hdr.check_access n.hdr;
  n.value

let test_root_link_keeps_alive () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  let node =
    O.with_guard o (fun g ->
        let p = O.alloc_node g (mk 42) in
        O.store g root (O.Ptr.state p);
        O.Ptr.node_exn p)
  in
  check_bool "alive via root" false (Memdom.Hdr.is_freed node.hdr);
  check_int "readable" 42 (read_value node);
  O.with_guard o (fun g -> O.store g root Link.Null);
  O.flush o;
  check_bool "freed after unlink+flush" true (Memdom.Hdr.is_freed node.hdr);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

let test_local_ref_pins () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 5) in
      O.store g root (O.Ptr.state p);
      let q = O.ptr g in
      O.load g root q;
      O.store g root Link.Null;
      let n = O.Ptr.node_exn q in
      check_bool "pinned by local ref" false (Memdom.Hdr.is_freed n.hdr);
      check_int "still readable" 5 (read_value n));
  O.flush o;
  check_int "no leak after guard" 0 (Memdom.Alloc.live alloc)

let test_reinsertion_survives () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 9) in
      O.store g root (O.Ptr.state p);
      let q = O.ptr g in
      O.load g root q;
      O.store g root Link.Null;
      O.store g root (O.Ptr.state q));
  (match Link.target (Link.get root) with
  | Some n ->
      check_bool "alive after reinsertion" false (Memdom.Hdr.is_freed n.hdr);
      check_int "value intact" 9 (read_value n)
  | None -> Alcotest.fail "root lost node");
  O.with_guard o (fun g -> O.store g root Link.Null);
  O.flush o;
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

let test_long_chain_cascade_iterative () =
  let alloc, o = fresh () in
  let n = 50_000 in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.ptr g and q = O.ptr g in
      for i = 1 to n do
        O.load g root q;
        let node = O.alloc_node_into g p (mk i) in
        (match O.Ptr.state q with
        | Link.Null -> ()
        | st -> O.store g node.next st);
        O.store g root (Link.Ptr node)
      done);
  check_int "chain allocated" n (Memdom.Alloc.live alloc);
  O.with_guard o (fun g -> O.store g root Link.Null);
  O.flush o;
  check_int "entire chain reclaimed, no stack overflow" 0
    (Memdom.Alloc.live alloc)

let test_concurrent_stress () =
  let alloc, o = fresh () in
  let nslots = 8 in
  let roots = Array.init nslots (fun _ -> Link.make Link.Null) in
  run_domains_exn 4 (fun ~i ~tid:_ ->
      let rng = Rng.create ((i + 1) * 104729) in
      for k = 1 to 2_500 do
        let root = roots.(Rng.int rng nslots) in
        O.with_guard o (fun g ->
            match Rng.int rng 4 with
            | 0 ->
                let p = O.alloc_node g (mk k) in
                O.store g root (O.Ptr.state p)
            | 1 -> O.store g root Link.Null
            | 2 ->
                let q = O.ptr g in
                O.load g root q;
                let p = O.alloc_node g (mk k) in
                ignore
                  (O.cas g root ~expected:(O.Ptr.state q)
                     ~desired:(O.Ptr.state p))
            | _ ->
                let q = O.ptr g in
                O.load g root q;
                (match O.Ptr.node q with
                | Some n -> ignore (read_value n)
                | None -> ()))
      done);
  O.with_guard o (fun g ->
      Array.iter (fun r -> O.store g r Link.Null) roots);
  O.flush o;
  check_int "no leak after stress" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

let suite =
  [
    ( "orc-hp",
      [
        Alcotest.test_case "root link keeps alive" `Quick
          test_root_link_keeps_alive;
        Alcotest.test_case "local ref pins" `Quick test_local_ref_pins;
        Alcotest.test_case "reinsertion survives" `Quick
          test_reinsertion_survives;
        Alcotest.test_case "long chain cascade (iterative)" `Slow
          test_long_chain_cascade_iterative;
        Alcotest.test_case "concurrent stress, no UAF, no leak" `Slow
          test_concurrent_stress;
      ] );
  ]
