(* Shared helpers for the test suites. *)

open Atomicx

(* Run [f ~i ~tid] on [n] domains, all released from a barrier at the
   same instant, and return their results in spawn order. *)
let run_domains n f =
  let barrier = Barrier.create n in
  let doms =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            Registry.with_tid (fun tid ->
                Barrier.wait barrier;
                f ~i ~tid)))
  in
  List.map Domain.join doms

(* Same, but ignore results and re-raise the first worker exception. *)
let run_domains_exn n f =
  let results =
    run_domains n (fun ~i ~tid ->
        match f ~i ~tid with
        | () -> Ok ()
        | exception e -> Error e)
  in
  List.iter (function Ok () -> () | Error e -> raise e) results

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
