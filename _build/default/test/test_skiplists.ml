(* Skip-list tests: the shared set battery over HS-skip and CRF-skip,
   plus the paper's §5 claims: CRF isolates removed nodes (poison) while
   HS keeps them traversable, and CRF's footprint after heavy removal is
   dramatically smaller. *)

open Util
open Set_battery

module Hs = Ds.Orc_hs_skiplist.Make ()
module Crf = Ds.Orc_crf_skiplist.Make ()

module B_hs = Battery (struct let name = "hs-skip" end) (Hs)
module B_crf = Battery (struct let name = "crf-skip" end) (Crf)

(* Sequential sanity over a large key range (multi-level towers). *)
let test_tall_towers () =
  let s = Crf.create () in
  let n = 3_000 in
  for i = 0 to n - 1 do
    ignore (Crf.add s ((i * 37) mod 10_007))
  done;
  let l = Crf.to_list s in
  check_bool "sorted" true (List.sort_uniq compare l = l);
  List.iter (fun k -> check_bool "present" true (Crf.contains s k)) l;
  List.iter (fun k -> check_bool "removed" true (Crf.remove s k)) l;
  check_int "empty" 0 (Crf.size s);
  Crf.destroy s;
  Crf.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Crf.alloc s))

(* CRF's whole point: after removing everything, live memory collapses to
   the sentinels, while the operations raced concurrently. *)
let test_crf_footprint_after_removal () =
  let s = Crf.create () in
  run_domains_exn 4 (fun ~i ~tid:_ ->
      let rng = Atomicx.Rng.create ((i + 1) * 911) in
      for _ = 1 to 2_000 do
        let k = 1 + Atomicx.Rng.int rng 64 in
        if Atomicx.Rng.bool rng then ignore (Crf.add s k)
        else ignore (Crf.remove s k)
      done);
  (* quiesced: stale protections are gone, so live = sentinels + set *)
  Crf.flush s;
  let live = Memdom.Alloc.live (Crf.alloc s) in
  let expected = Crf.size s + 2 in
  check_int "live = reachable after quiesce" expected live;
  Crf.destroy s;
  Crf.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Crf.alloc s))

(* HS keeps removed nodes traversable: a contains racing a remove must
   never raise and never restart (it has no restart path). *)
let test_hs_lookup_during_removal () =
  let s = Hs.create () in
  for k = 1 to 100 do
    ignore (Hs.add s k)
  done;
  run_domains_exn 2 (fun ~i ~tid:_ ->
      if i = 0 then
        for k = 1 to 100 do
          ignore (Hs.remove s k);
          ignore (Hs.add s k)
        done
      else
        for _ = 1 to 10 do
          for k = 1 to 100 do
            ignore (Hs.contains s k)
          done
        done);
  Hs.destroy s;
  Hs.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Hs.alloc s))

let suite =
  [
    ("skiplist:hs", B_hs.cases);
    ("skiplist:crf", B_crf.cases);
    ( "skiplist:specific",
      [
        Alcotest.test_case "tall towers sequential" `Slow test_tall_towers;
        Alcotest.test_case "crf footprint collapses after removal" `Slow
          test_crf_footprint_after_removal;
        Alcotest.test_case "hs lookup during removal" `Slow
          test_hs_lookup_during_removal;
      ] );
  ]
