(* Unit, property and stress tests for OrcGC itself (Algorithms 3–7). *)

open Util
open Atomicx

type onode = { hdr : Memdom.Hdr.t; value : int; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let fresh () =
  let alloc = Memdom.Alloc.create "orc-test" in
  (alloc, O.create alloc)

let mk v hdr = { hdr; value = v; next = Link.make Link.Null }

let read_value n =
  Memdom.Hdr.check_access n.hdr;
  n.value

(* A node allocated but never linked anywhere is reclaimed when its last
   local reference dies at guard exit — the fully automatic path. *)
let test_unlinked_alloc_reclaimed () =
  let alloc, o = fresh () in
  let node =
    O.with_guard o (fun g ->
        let p = O.alloc_node g (mk 1) in
        let n = O.Ptr.node_exn p in
        check_int "accessible inside guard" 1 (read_value n);
        n)
  in
  check_bool "freed at guard exit" true (Memdom.Hdr.is_freed node.hdr);
  check_int "no leak" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* A hard link from a root keeps the object alive across guards; dropping
   the root reclaims it — no retire call anywhere. *)
let test_root_link_keeps_alive () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  let node =
    O.with_guard o (fun g ->
        let p = O.alloc_node g (mk 42) in
        O.store g root (O.Ptr.state p);
        O.Ptr.node_exn p)
  in
  check_bool "alive via root" false (Memdom.Hdr.is_freed node.hdr);
  check_int "readable" 42 (read_value node);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_bool "freed after unlink" true (Memdom.Hdr.is_freed node.hdr);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* A local reference (Ptr) pins a zero-count object; the object is
   reclaimed only when the guard scope ends — the orc_ptr contract. *)
let test_local_ref_pins () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  let node = ref None in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 5) in
      O.store g root (O.Ptr.state p);
      let q = O.ptr g in
      O.load g root q;
      node := O.Ptr.node q;
      (* unlink: count drops to zero but q still protects it *)
      O.store g root Link.Null;
      let n = Option.get !node in
      check_bool "pinned by local ref" false (Memdom.Hdr.is_freed n.hdr);
      check_int "still readable" 5 (read_value n));
  let n = Option.get !node in
  check_bool "reclaimed at guard exit" true (Memdom.Hdr.is_freed n.hdr);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* Obstacle 3 of §2: a node taken out of the structure and re-inserted
   while a local reference exists must not be reclaimed. *)
let test_reinsertion_survives () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 9) in
      O.store g root (O.Ptr.state p);
      let q = O.ptr g in
      O.load g root q;
      O.store g root Link.Null;
      (* temporarily unreachable, possibly already marked retired *)
      O.store g root (O.Ptr.state q));
  (match Link.target (Link.get root) with
  | Some n ->
      check_bool "alive after reinsertion" false (Memdom.Hdr.is_freed n.hdr);
      check_int "value intact" 9 (read_value n)
  | None -> Alcotest.fail "root lost node");
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "no leak" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* Dropping the head of a long chain must cascade through the recursive
   list, not the program stack (paper §4.1). *)
let test_long_chain_cascade () =
  let alloc, o = fresh () in
  let n = 50_000 in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.ptr g in
      let q = O.ptr g in
      for i = 1 to n do
        (* push-front: node.next := old head; root := node *)
        O.load g root q;
        let node = O.alloc_node_into g p (mk i) in
        (match O.Ptr.state q with
        | Link.Null -> ()
        | st -> O.store g node.next st);
        O.store g root (Link.Ptr node)
      done);
  check_int "chain allocated" n (Memdom.Alloc.live alloc);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "entire chain reclaimed" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* cas transitions: a mark change on the same target must not disturb the
   count, while retargeting moves both counts. *)
let test_cas_counts () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let a = O.alloc_node g (mk 1) in
      let b = O.alloc_node g (mk 2) in
      O.store g root (O.Ptr.state a);
      let an = O.Ptr.node_exn a and bn = O.Ptr.node_exn b in
      (* mark transition on same target *)
      let st = Link.get root in
      check_bool "mark cas" true (O.cas g root ~expected:st ~desired:(Link.Mark an));
      check_bool "a alive" false (Memdom.Hdr.is_freed an.hdr);
      (* retarget to b: a loses its only hard link *)
      let st = Link.get root in
      check_bool "retarget cas" true
        (O.cas g root ~expected:st ~desired:(Link.Ptr bn));
      check_bool "a pinned by local ref" false (Memdom.Hdr.is_freed an.hdr));
  (* guard gone: a has no links and no local refs *)
  check_int "only b remains" 1 (Memdom.Alloc.live alloc);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* A failed cas must not move any count. *)
let test_cas_failure_no_count_change () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let a = O.alloc_node g (mk 1) in
      let b = O.alloc_node g (mk 2) in
      O.store g root (O.Ptr.state a);
      (* stale expected: a fresh box never matches physically *)
      check_bool "cas fails" false
        (O.cas g root
           ~expected:(Link.Ptr (O.Ptr.node_exn b))
           ~desired:Link.Null));
  check_int "a still live via root" 1 (Memdom.Alloc.live alloc);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* exchange returns the old state and fixes both counts. *)
let test_exchange () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let a = O.alloc_node g (mk 1) in
      let b = O.alloc_node g (mk 2) in
      O.store g root (O.Ptr.state a);
      let old = O.exchange g root (O.Ptr.state b) in
      check_bool "old was a" true
        (Link.same old (Link.Ptr (O.Ptr.node_exn a))));
  check_int "only b remains" 1 (Memdom.Alloc.live alloc);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* Ptr assignment in both index directions (Algorithm 7): a rotation
   prev <- curr <- next, repeated, must keep protection sound. *)
let test_ptr_rotation () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      (* build a 10-node chain *)
      let p = O.ptr g and q = O.ptr g in
      for i = 1 to 10 do
        O.load g root q;
        let node = O.alloc_node_into g p (mk i) in
        (match O.Ptr.state q with
        | Link.Null -> ()
        | st -> O.store g node.next st);
        O.store g root (Link.Ptr node)
      done);
  O.with_guard o (fun g ->
      let prev = O.ptr g and curr = O.ptr g and next = O.ptr g in
      O.load g root curr;
      let steps = ref 0 in
      let rec walk () =
        match O.Ptr.node curr with
        | None -> ()
        | Some n ->
            incr steps;
            ignore (read_value n);
            O.load g n.next next;
            O.assign g prev curr;
            O.assign g curr next;
            walk ()
      in
      walk ();
      check_int "walked the chain" 10 !steps);
  O.with_guard o (fun g -> O.store g root Link.Null);
  check_int "no leak" 0 (Memdom.Alloc.live alloc)

(* _orc word layout properties. *)
let prop_ocnt_ignores_sequence =
  qtest "ocnt ignores the sequence field"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range (-1000) 1000))
    (fun (s, c) ->
      let word =
        (s * Orc_core.Orc.seq_unit) + Orc_core.Orc.orc_zero + c
      in
      Orc_core.Orc.ocnt word = Orc_core.Orc.orc_zero + c)

let prop_bretired_flag_independent =
  qtest "BRETIRED commutes with count in ocnt"
    QCheck2.Gen.(int_range (-1000) 1000)
    (fun c ->
      let base = Orc_core.Orc.orc_zero + c in
      Orc_core.Orc.ocnt (base + Orc_core.Orc.bretired)
      = base + Orc_core.Orc.bretired)

(* Randomized single-threaded model check: a root table driven by random
   store/cas/load ops must end with live = reachable. *)
let prop_orc_model =
  qtest ~count:60 "random ops conserve live = reachable"
    QCheck2.Gen.(list_size (int_range 20 120) (pair (int_range 0 3) small_nat))
    (fun ops ->
      let alloc, o = fresh () in
      let roots = Array.init 4 (fun _ -> Link.make Link.Null) in
      O.with_guard o (fun g ->
          let p = O.ptr g in
          List.iter
            (fun (r, v) ->
              let root = roots.(r) in
              if v land 1 = 0 then begin
                let n = O.alloc_node_into g p (mk v) in
                O.store g root (Link.Ptr n)
              end
              else O.store g root Link.Null)
            ops);
      let reachable =
        Array.fold_left
          (fun acc r ->
            match Link.get r with Link.Ptr _ -> acc + 1 | _ -> acc)
          0 roots
      in
      let ok = Memdom.Alloc.live alloc = reachable in
      O.with_guard o (fun g ->
          Array.iter (fun r -> O.store g r Link.Null) roots);
      ok && Memdom.Alloc.live alloc = 0)

(* The flagship stress test: concurrent domains hammer a table of root
   links with loads, stores and cas, reading values under protection.
   Any unsound reclamation raises Use_after_free; any missed reclamation
   shows up in the final leak check. *)
let test_concurrent_stress () =
  let alloc, o = fresh () in
  let nslots = 8 in
  let iters = 2_500 in
  let roots = Array.init nslots (fun _ -> Link.make Link.Null) in
  run_domains_exn 4 (fun ~i ~tid:_ ->
      let rng = Rng.create ((i + 1) * 104729) in
      for k = 1 to iters do
        let root = roots.(Rng.int rng nslots) in
        O.with_guard o (fun g ->
            match Rng.int rng 4 with
            | 0 ->
                (* replace with fresh node *)
                let p = O.alloc_node g (mk k) in
                O.store g root (O.Ptr.state p)
            | 1 -> O.store g root Link.Null
            | 2 ->
                (* cas current -> fresh *)
                let q = O.ptr g in
                O.load g root q;
                let p = O.alloc_node g (mk k) in
                ignore
                  (O.cas g root ~expected:(O.Ptr.state q)
                     ~desired:(O.Ptr.state p))
            | _ ->
                (* read *)
                let q = O.ptr g in
                O.load g root q;
                (match O.Ptr.node q with
                | Some n -> ignore (read_value n)
                | None -> ()))
      done);
  (* quiesce and drain *)
  O.with_guard o (fun g ->
      Array.iter (fun r -> O.store g r Link.Null) roots);
  O.flush o;
  check_int "no leak after stress" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

(* Cross-thread handover: a reader pins a node while a writer unlinks it;
   the reader's guard exit must reclaim it. *)
let test_cross_thread_handover () =
  let alloc, o = fresh () in
  let root = Link.make Link.Null in
  O.with_guard o (fun g ->
      let p = O.alloc_node g (mk 1) in
      O.store g root (O.Ptr.state p));
  let pinned = Atomic.make false in
  let release = Atomic.make false in
  run_domains_exn 2 (fun ~i ~tid:_ ->
      if i = 0 then
        (* reader: pin, signal, hold until released *)
        O.with_guard o (fun g ->
            let q = O.ptr g in
            O.load g root q;
            Atomic.set pinned true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            match O.Ptr.node q with
            | Some n -> check_int "readable while pinned" 1 (read_value n)
            | None -> Alcotest.fail "reader lost the node")
      else begin
        (* writer: wait for the pin, unlink, then release the reader *)
        while not (Atomic.get pinned) do
          Domain.cpu_relax ()
        done;
        O.with_guard o (fun g -> O.store g root Link.Null);
        check_int "node survives writer guard" 1 (Memdom.Alloc.live alloc);
        Atomic.set release true
      end);
  (* reader's guard has exited: the handover must have been reclaimed *)
  check_int "reclaimed after reader exit" 0 (Memdom.Alloc.live alloc);
  check_int "nothing pending" 0 (O.unreclaimed o)

let suite =
  [
    ( "orc",
      [
        Alcotest.test_case "unlinked alloc reclaimed" `Quick
          test_unlinked_alloc_reclaimed;
        Alcotest.test_case "root link keeps alive" `Quick
          test_root_link_keeps_alive;
        Alcotest.test_case "local ref pins" `Quick test_local_ref_pins;
        Alcotest.test_case "reinsertion survives (obstacle 3)" `Quick
          test_reinsertion_survives;
        Alcotest.test_case "long chain cascade, constant stack" `Slow
          test_long_chain_cascade;
        Alcotest.test_case "cas count transitions" `Quick test_cas_counts;
        Alcotest.test_case "failed cas moves nothing" `Quick
          test_cas_failure_no_count_change;
        Alcotest.test_case "exchange" `Quick test_exchange;
        Alcotest.test_case "ptr rotation keeps protection" `Quick
          test_ptr_rotation;
        prop_ocnt_ignores_sequence;
        prop_bretired_flag_independent;
        prop_orc_model;
        Alcotest.test_case "concurrent stress, no UAF, no leak" `Slow
          test_concurrent_stress;
        Alcotest.test_case "cross-thread handover" `Quick
          test_cross_thread_handover;
      ] );
  ]
