(* Additional targeted tests: substrate extras (Stats, Padded), the
   reconstructed Turn queue's protocol corners, TBKP outcome exactness,
   NM-tree poisoning, and Orc pointer-handle properties. *)

open Util
open Atomicx

(* ------------------------------------------------------------------ *)
(* Memdom.Stats *)

let test_stats_snapshot_and_diff () =
  let a = Memdom.Alloc.create "stats" in
  let s0 = Memdom.Stats.take a in
  let hs = List.init 5 (fun _ -> Memdom.Alloc.hdr a ()) in
  List.iteri (fun i h -> if i < 2 then Memdom.Alloc.free a h) hs;
  let s1 = Memdom.Stats.take a in
  let d = Memdom.Stats.diff s0 s1 in
  check_int "allocated delta" 5 d.Memdom.Stats.allocated;
  check_int "freed delta" 2 d.Memdom.Stats.freed;
  check_int "live delta" 3 d.Memdom.Stats.live;
  check_int "peak over series" s1.Memdom.Stats.live
    (Memdom.Stats.series_peak [ s0; s1 ])

let test_stats_pp () =
  let a = Memdom.Alloc.create "pp" in
  let buf = Buffer.create 64 in
  Format.fprintf
    (Format.formatter_of_buffer buf)
    "%a@?" Memdom.Stats.pp (Memdom.Stats.take a);
  check_bool "mentions label" true
    (String.length (Buffer.contents buf) > 0)

(* ------------------------------------------------------------------ *)
(* Atomicx.Padded *)

let test_padded_semantics () =
  let arr = Padded.atomic_array 16 0 in
  check_int "length" 16 (Array.length arr);
  Array.iteri (fun i a -> Atomic.set a i) arr;
  Array.iteri (fun i a -> check_int "independent cells" i (Atomic.get a)) arr;
  let m = Padded.atomic_matrix 4 8 "x" in
  check_int "rows" 4 (Array.length m);
  Array.iter (fun row -> check_int "cols" 8 (Array.length row)) m;
  (* distinct atomics, not aliased *)
  Atomic.set m.(0).(0) "y";
  check_bool "no aliasing" true (Atomic.get m.(1).(0) = "x")

(* ------------------------------------------------------------------ *)
(* Turn queue protocol corners *)

module Turn = Ds.Orc_turn_queue.Make (struct
  type t = int
end)

let test_turn_empty_polling_is_clean () =
  (* repeated dequeues on an empty queue allocate and reclaim empty
     markers; none may leak *)
  let q = Turn.create () in
  for _ = 1 to 200 do
    check_bool "empty" true (Turn.dequeue q = None)
  done;
  Turn.enqueue q 1;
  check_bool "then works" true (Turn.dequeue q = Some 1);
  Turn.destroy q;
  Turn.flush q;
  check_int "no leak from markers" 0 (Memdom.Alloc.live (Turn.alloc q))

let test_turn_interleaved_empty_and_items () =
  (* dequeuers racing between empty and non-empty states: the empty-path
     steal and the claim-release logic both get exercised *)
  let q = Turn.create () in
  let produced = 2_000 in
  let got = Atomic.make 0 in
  run_domains_exn 4 (fun ~i ~tid:_ ->
      if i = 0 then
        for k = 1 to produced do
          Turn.enqueue q k;
          if k land 7 = 0 then Domain.cpu_relax ()
        done
      else
        while Atomic.get got < produced do
          match Turn.dequeue q with
          | Some _ -> ignore (Atomic.fetch_and_add got 1)
          | None -> Domain.cpu_relax ()
        done);
  check_int "all items delivered" produced (Atomic.get got);
  Turn.destroy q;
  Turn.flush q;
  check_int "no leak" 0 (Memdom.Alloc.live (Turn.alloc q))

(* ------------------------------------------------------------------ *)
(* TBKP outcome exactness *)

module Tbkp = Ds.Orc_tbkp_list.Make ()

let test_tbkp_outcomes_are_exact () =
  (* n domains all add the same key, then all remove it: exactly one add
     and exactly one remove may succeed per round *)
  let s = Tbkp.create () in
  for round = 1 to 25 do
    let adds =
      run_domains 4 (fun ~i:_ ~tid:_ -> if Tbkp.add s 5 then 1 else 0)
    in
    check_int
      (Printf.sprintf "round %d: one successful add" round)
      1
      (List.fold_left ( + ) 0 adds);
    let removes =
      run_domains 4 (fun ~i:_ ~tid:_ -> if Tbkp.remove s 5 then 1 else 0)
    in
    check_int
      (Printf.sprintf "round %d: one successful remove" round)
      1
      (List.fold_left ( + ) 0 removes);
    check_bool "gone" false (Tbkp.contains s 5)
  done;
  Tbkp.destroy s;
  Tbkp.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Tbkp.alloc s))

let test_tbkp_mixed_same_key () =
  (* adds and removes of one key racing: conservation of successes —
     #successful-adds - #successful-removes = final presence *)
  let s = Tbkp.create () in
  let counts =
    run_domains 4 (fun ~i ~tid:_ ->
        let rng = Rng.create ((i + 1) * 523) in
        let a = ref 0 and r = ref 0 in
        for _ = 1 to 500 do
          if Rng.bool rng then (if Tbkp.add s 9 then incr a)
          else if Tbkp.remove s 9 then incr r
        done;
        (!a, !r))
  in
  let adds = List.fold_left (fun acc (a, _) -> acc + a) 0 counts in
  let removes = List.fold_left (fun acc (_, r) -> acc + r) 0 counts in
  let present = if Tbkp.contains s 9 then 1 else 0 in
  check_int "conservation" present (adds - removes);
  Tbkp.destroy s;
  Tbkp.flush s;
  check_int "no leak" 0 (Memdom.Alloc.live (Tbkp.alloc s))

(* ------------------------------------------------------------------ *)
(* NM-tree: manual variant poisons excised regions *)

module Nm = Ds.Nm_tree.Make (Reclaim.Hp.Make)

let test_nm_poison_makes_searches_restart () =
  (* deep interleavings are probabilistic, but the poisoning machinery
     itself must at least keep heavy delete churn coherent and leak-free
     under concurrent searches *)
  let t = Nm.create () in
  for k = 1 to 400 do
    ignore (Nm.add t k)
  done;
  run_domains_exn 4 (fun ~i ~tid:_ ->
      let rng = Rng.create ((i + 1) * 271) in
      if i < 2 then
        for _ = 1 to 2_000 do
          let k = 1 + Rng.int rng 400 in
          if Rng.bool rng then ignore (Nm.remove t k) else ignore (Nm.add t k)
        done
      else
        for _ = 1 to 2_000 do
          ignore (Nm.contains t (1 + Rng.int rng 400))
        done);
  let l = Nm.to_list t in
  check_bool "coherent" true (List.sort_uniq compare l = l);
  Nm.destroy t;
  Nm.flush t;
  check_int "no leak" 0 (Memdom.Alloc.live (Nm.alloc t))

(* ------------------------------------------------------------------ *)
(* Orc pointer handles: deep assignment chains stay sound *)

type onode = { hdr : Memdom.Hdr.t; v : int; next : onode Link.t }

module O = Orc_core.Orc.Make (struct
  type t = onode

  let hdr n = n.hdr
  let iter_links n f = f n.next
end)

let prop_ptr_assign_chains =
  qtest ~count:40 "random ptr assignment chains keep protection sound"
    QCheck2.Gen.(list_size (int_range 10 80) (int_range 0 5))
    (fun choices ->
      let alloc = Memdom.Alloc.create "ptr-prop" in
      let o = O.create alloc in
      let root = Link.make Link.Null in
      O.with_guard o (fun g ->
          (* build a small ring of handles over a 3-node chain *)
          let mk v hdr = { hdr; v; next = Link.make Link.Null } in
          let a = O.alloc_node g (mk 1) in
          let b = O.alloc_node g (mk 2) in
          let c = O.alloc_node g (mk 3) in
          O.store g (O.Ptr.node_exn a).next (O.Ptr.state b);
          O.store g (O.Ptr.node_exn b).next (O.Ptr.state c);
          O.store g root (O.Ptr.state a);
          let handles = [| O.ptr g; O.ptr g; O.ptr g; O.ptr g |] in
          List.iter
            (fun choice ->
              let h = handles.(choice land 3) in
              (match choice with
              | 0 | 1 | 2 -> O.load g root h
              | 3 -> O.assign g handles.(0) handles.(3)
              | 4 -> O.assign g handles.(3) handles.(1)
              | _ -> (
                  (* walk one step through a protected node *)
                  match O.Ptr.node h with
                  | Some n -> O.load g n.next handles.((choice + 1) land 3)
                  | None -> ()));
              (* every protected handle must be dereferenceable *)
              Array.iter
                (fun h ->
                  match O.Ptr.node h with
                  | Some n ->
                      Memdom.Hdr.check_access n.hdr (* must not raise *)
                  | None -> ())
                handles)
            choices);
      O.with_guard o (fun g -> O.store g root Link.Null);
      O.flush o;
      Memdom.Alloc.live alloc = 0)

let suite =
  [
    ( "extras",
      [
        Alcotest.test_case "stats snapshot+diff" `Quick
          test_stats_snapshot_and_diff;
        Alcotest.test_case "stats pp" `Quick test_stats_pp;
        Alcotest.test_case "padded arrays behave like arrays" `Quick
          test_padded_semantics;
        Alcotest.test_case "turn: empty polling clean" `Quick
          test_turn_empty_polling_is_clean;
        Alcotest.test_case "turn: interleaved empty/non-empty" `Slow
          test_turn_interleaved_empty_and_items;
        Alcotest.test_case "tbkp: outcomes exact" `Slow
          test_tbkp_outcomes_are_exact;
        Alcotest.test_case "tbkp: same-key conservation" `Slow
          test_tbkp_mixed_same_key;
        Alcotest.test_case "nm: delete churn with poisoning" `Slow
          test_nm_poison_makes_searches_restart;
        prop_ptr_assign_chains;
      ] );
  ]
