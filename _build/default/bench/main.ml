(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) with container-friendly defaults, plus a Bechamel
   micro-benchmark suite for single-threaded per-operation costs.

   Output sections map 1:1 onto the paper (see DESIGN.md §3):
     Fig 1/2  - queues, enq/deq pairs (raw and normalized)
     Fig 3/4  - Michael-Harris list across schemes, three mixes
     Fig 5/6  - the four OrcGC-only/annotated lists
     Fig 7/8  - NM-tree and skip lists, large key range
     Table 1  - measured peak unreclaimed objects vs theoretical bounds
     Mem      - HS-skip vs CRF-skip footprint
     Ablation - PTP publish instruction, handover drain on clear

   On this single-machine setup the Intel/AMD pair of each figure
   collapses to one series; EXPERIMENTS.md records the mapping. *)

open Bechamel
open Toolkit

let params =
  {
    Harness.Experiments.threads = [ 1; 2; 4 ];
    duration = 0.15;
    list_keys = 1_000;
    big_keys = 20_000;
    csv = None;
  }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per structure family, measuring the
   single-threaded per-operation cost that dominates the figures'
   1-thread data points. *)

module Q_orc = Ds.Orc_ms_queue.Make (struct
  type t = int
end)

module Q_ptp = Ds.Ms_queue.Make
    (struct
      type t = int
    end)
    (Orc_core.Ptp.Make)

module L_orc = Ds.Orc_michael_list.Make ()
module L_hp = Ds.Michael_list.Make (Reclaim.Hp.Make)
module T_orc = Ds.Orc_nm_tree.Make ()
module S_crf = Ds.Orc_crf_skiplist.Make ()

let micro_tests () =
  let q_orc = Q_orc.create () in
  let q_ptp = Q_ptp.create () in
  let l_orc = L_orc.create () in
  let l_hp = L_hp.create () in
  let t_orc = T_orc.create () in
  let s_crf = S_crf.create () in
  for k = 1 to 512 do
    ignore (L_orc.add l_orc k);
    ignore (L_hp.add l_hp k);
    ignore (T_orc.add t_orc k);
    ignore (S_crf.add s_crf k)
  done;
  [
    Test.make ~name:"msq-orc enq+deq pair"
      (Staged.stage (fun () ->
           Q_orc.enqueue q_orc 1;
           ignore (Q_orc.dequeue q_orc)));
    Test.make ~name:"msq-ptp enq+deq pair"
      (Staged.stage (fun () ->
           Q_ptp.enqueue q_ptp 1;
           ignore (Q_ptp.dequeue q_ptp)));
    Test.make ~name:"list-orc contains"
      (Staged.stage (fun () -> ignore (L_orc.contains l_orc 256)));
    Test.make ~name:"list-hp contains"
      (Staged.stage (fun () -> ignore (L_hp.contains l_hp 256)));
    Test.make ~name:"nmtree-orc contains"
      (Staged.stage (fun () -> ignore (T_orc.contains t_orc 256)));
    Test.make ~name:"crf-skip contains"
      (Staged.stage (fun () -> ignore (S_crf.contains s_crf 256)));
  ]

let run_micro () =
  Format.printf "@.== Bechamel micro-benchmarks (single-threaded ns/op) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "  %-28s %10.1f ns/op@." name est
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    (micro_tests ())

(* ------------------------------------------------------------------ *)

let print_mix_tables title tables =
  List.iter
    (fun (mix, series) ->
      Harness.Report.print_table ~title:(title ^ " / " ^ mix) series)
    tables

let () =
  let open Harness in
  Format.printf "OrcGC reproduction benchmarks (threads: %s, %.2fs/point)@."
    (String.concat "," (List.map string_of_int params.threads))
    params.duration;

  let fig1 = Experiments.fig1_queues params in
  Report.print_table ~title:"Fig 1/2: queues, enq/deq pairs" fig1;
  Report.print_table ~title:"Fig 1/2 normalized (vs ms-hp)"
    ~unit_label:"x vs ms-hp"
    (Report.normalize ~base_label:"ms-hp" fig1);

  print_mix_tables "Fig 3/4: Michael-Harris list, schemes"
    (Experiments.fig3_list_schemes params);

  print_mix_tables "Fig 5/6: lists with OrcGC"
    (Experiments.fig5_orc_lists params);

  print_mix_tables "Fig 7/8: tree and skip lists"
    (Experiments.fig7_trees params);

  Format.printf "@.== Table 1 (measured): peak unreclaimed objects ==@.";
  Format.printf "  %-10s %8s %6s %16s %12s %12s@." "scheme" "threads" "H"
    "peak-unreclaimed" "bound" "bound-value";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8d %6d %16d %12s %12s@."
        r.Experiments.b_scheme r.b_threads r.b_hps r.b_max_unreclaimed
        r.b_bound
        (if r.b_bound_value < 0 then "-" else string_of_int r.b_bound_value))
    (Experiments.table1_bounds params);

  Format.printf "@.== Memory footprint: HS-skip vs CRF-skip (5) ==@.";
  Format.printf "  %-12s %12s %12s %12s %14s %14s@." "structure" "peak-live"
    "final-live" "~reachable" "pinned-chain" "after-unpin";
  List.iter
    (fun m ->
      Format.printf "  %-12s %12d %12d %12d %14d %14d@."
        m.Experiments.m_structure m.m_peak_live m.m_final_live m.m_reachable
        m.m_pinned_live m.m_pinned_after)
    (Experiments.mem_footprint params);

  Report.print_table ~title:"Ablation: PTP publish instruction"
    (Experiments.ablation_publish params);

  Format.printf "@.== Ablation: handover drain on clear (Alg 2 l.16-19) ==@.";
  List.iter
    (fun (label, residual) ->
      Format.printf "  %-24s residual unreclaimed = %d@." label residual)
    (Experiments.ablation_clear_handover params);

  Report.print_table ~title:"Extension: Michael hash table (write-heavy)"
    (Experiments.ext_hashmap params);

  Format.printf "@.== Ablation: OrcGC protection backend (4) ==@.";
  List.iter
    (fun r ->
      Format.printf "  %-10s %8.3f Mops/s   peak-unreclaimed=%d@."
        r.Harness.Experiments.k_backend r.k_mops r.k_peak_unreclaimed)
    (Harness.Experiments.ablation_backend params);


  run_micro ();
  Format.printf "@.done.@."
