type series = { label : string; points : (int * float) list }

let thread_columns series =
  List.concat_map (fun s -> List.map fst s.points) series
  |> List.sort_uniq compare

let print_table ~title ?(unit_label = "Mops/s")
    ?(out = Format.std_formatter) series =
  let cols = thread_columns series in
  let width =
    List.fold_left (fun w s -> max w (String.length s.label)) 12 series
  in
  Format.fprintf out "@.== %s (%s) ==@." title unit_label;
  Format.fprintf out "%-*s" (width + 2) "threads:";
  List.iter (fun c -> Format.fprintf out "%10d" c) cols;
  Format.fprintf out "@.";
  List.iter
    (fun s ->
      Format.fprintf out "%-*s" (width + 2) s.label;
      List.iter
        (fun c ->
          match List.assoc_opt c s.points with
          | Some v -> Format.fprintf out "%10.3f" v
          | None -> Format.fprintf out "%10s" "-")
        cols;
      Format.fprintf out "@.")
    series;
  Format.pp_print_flush out ()

let normalize ?base_label series =
  match series with
  | [] -> []
  | first :: _ ->
      let base =
        match base_label with
        | None -> first
        | Some l -> (
            match List.find_opt (fun s -> s.label = l) series with
            | Some s -> s
            | None -> first)
      in
      List.map
        (fun s ->
          {
            s with
            points =
              List.filter_map
                (fun (t, v) ->
                  match List.assoc_opt t base.points with
                  | Some b when b > 0.0 -> Some (t, v /. b)
                  | Some _ | None -> None)
                s.points;
          })
        series

let to_csv ~path ~title series =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Printf.fprintf oc "# %s\n" title;
  List.iter
    (fun s ->
      List.iter
        (fun (t, v) -> Printf.fprintf oc "%s,%d,%f\n" s.label t v)
        s.points)
    series;
  close_out oc
