lib/harness/runner.ml: Atomic Atomicx Barrier Domain List Registry Thread Unix
