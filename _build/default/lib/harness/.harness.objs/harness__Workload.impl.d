lib/harness/workload.ml: Atomicx Format
