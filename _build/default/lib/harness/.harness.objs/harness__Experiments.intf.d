lib/harness/experiments.mli: Report
