lib/harness/runner.mli:
