lib/harness/experiments.ml: Array Atomicx Ds List Memdom Option Orc_core Reclaim Report Rng Runner Workload
