lib/harness/workload.mli: Atomicx Format
