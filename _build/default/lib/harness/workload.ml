type mix = { add_pct : int; remove_pct : int }

let write_heavy = { add_pct = 50; remove_pct = 50 }
let read_mostly = { add_pct = 5; remove_pct = 5 }
let read_only = { add_pct = 0; remove_pct = 0 }

let standard_mixes =
  [ ("50i-50r", write_heavy); ("5i-5r-90l", read_mostly); ("100l", read_only) ]

let pp_mix fmt m =
  Format.fprintf fmt "%di-%dr-%dl" m.add_pct m.remove_pct
    (100 - m.add_pct - m.remove_pct)

type op = Add | Remove | Lookup

let pick rng m =
  let r = Atomicx.Rng.int rng 100 in
  if r < m.add_pct then Add
  else if r < m.add_pct + m.remove_pct then Remove
  else Lookup
